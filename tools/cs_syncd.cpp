// cs_syncd — standalone clock-synchronization agent daemon.
//
// Launches n SyncAgent automata over a live transport (deterministic
// loopback, threaded loopback, or UDP over localhost), runs the §7
// probe → report → compute → disseminate protocol for the configured
// number of epochs, and prints the converged corrections plus the
// achieved precision.  The heavy lifting lives in src/runtime/daemon.cpp
// (run_live); this binary is flag parsing and reporting.
//
//   cs_syncd --n 8 --transport udp --epochs 2 --json
//
// Exit codes match cs_sync: 0 converged (and, unless --no-check, the
// deterministic-loopback corrections matched the offline pipeline),
// 1 not converged or live/offline mismatch, 2 usage error, 3 error.
#include <time.h>

#include <csignal>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/version.hpp"
#include "core/zones.hpp"
#include "delaymodel/constraint.hpp"
#include "graph/topology.hpp"
#include "io/views_io.hpp"
#include "net/daemon.hpp"
#include "net/server.hpp"
#include "runtime/daemon.hpp"

namespace {

using namespace cs;

constexpr int kExitOk = 0;
constexpr int kExitDivergence = 1;
constexpr int kExitUsage = 2;
constexpr int kExitError = 3;

void print_usage(std::FILE* out) {
  std::fprintf(out, R"(cs_syncd — live clock-synchronization agent daemon

usage: cs_syncd [flags]

  --transport loopback|loopback-threaded|udp   (default loopback)
  --topology NAME --n N    model shape (default complete, 8 agents)
  --lower S --upper S      per-link delay bounds (default [0, 1])
  --model FILE             explicit chronosync-model file instead
  --seed U --skew S        run seed and random start-offset scale
  --delay-scale S --drop P loopback delay/drop injection
  --warmup S --spacing S --rounds N    probe phase, per epoch
  --report-at S --period S --epochs N  epoch schedule
  --grace S                degraded-mode watchdog (0 = wait forever)
  --zones K                split realized precision into intra-/cross-zone
                           components over greedy BFS ~K-node zones
                           (docs/ZONES.md)
  --drift-ppm R --drift-slack S
                           declare an oscillator band of R ppm and a
                           precision slack of S seconds; the epoch period
                           is clamped to S/(2*R*1e-6) so drift between
                           re-syncs never spends more than S, and each
                           epoch reports its drift-adjusted bound
                           (docs/DRIFT.md)
  --byz-plan "SPEC"        Byzantine plan: lying agents corrupt the stamps
                           in their probe/echo payloads.  SPEC is the
                           byz/plan.hpp grammar, e.g.
                           "equivocate f=2 mag=0.05" or
                           "lie-const agents=3 mag=0.02 from=1 until=3";
                           dishonest runs skip the offline cross-check
                           (docs/BYZ.md)
  --leader N --deadline S --trace FILE
  --no-check               skip the offline cross-check
  --json                   machine-readable report
  --version                print the release banner

wire-protocol modes (chronosync-wire v1, docs/NET.md):
  --bind ADDR              bind address for --transport udp endpoints
                           ("127.0.0.1" default, "*" = all interfaces);
                           invalid addresses are a hard error, not a
                           silent loopback fallback
  --listen ADDR:PORT --serve
                           multi-client echo daemon: one epoll (or poll)
                           event loop serving Hello/ProbeBatch sessions
                           from any number of remote agents
  --serve-seconds S        serve duration (0 = until SIGINT/SIGTERM)
  --max-sessions N --idle-timeout S     session-table limits in --serve
  --listen ADDR:PORT --id K --peers A0:P0,A1:P1,...
                           multihost agent K of a LAN run: probe topology
                           neighbors over UDP, report extremes to the
                           leader, converge to the Thm 4.6 corrections
  --base T                 shared clock origin, unix seconds (all daemons
                           of one run must agree; default: next whole
                           second + 1 — pass it explicitly in scripts)
  --start-offset S         this daemon's start offset S_p (default 0)
  --offsets s0,s1,...      leader only: the true offsets; enables the
                           realized-vs-claimed precision check

exit codes: 0 ok, 1 not converged / mismatch, 2 usage error, 3 error
)");
}

double num_flag(const std::string& name, const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    std::fprintf(stderr, "cs_syncd: %s expects a number, got '%s'\n",
                 name.c_str(), value.c_str());
    std::exit(kExitUsage);
  }
  return v;
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, comma - start));
    start = comma + 1;
  }
  return parts;
}

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

double realtime_now() {
  timespec ts{};
  ::clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

using FlagGet =
    std::function<std::string(const std::string&, const std::string&)>;

/// --serve: the multi-client echo daemon (net::SyncServer) on --listen.
int run_serve(const std::map<std::string, std::string>& flags,
              const FlagGet& get) {
  net::SyncServerConfig config;
  config.listen = net::parse_hostport(get("--listen", "127.0.0.1:0"));
  config.agent = static_cast<ProcessorId>(num_flag("--id", get("--id", "0")));
  config.session.max_sessions = static_cast<std::size_t>(
      num_flag("--max-sessions", get("--max-sessions", "100000")));
  config.session.idle_timeout =
      Duration{num_flag("--idle-timeout", get("--idle-timeout", "30"))};
  net::SyncServer server(config);

  const double serve_seconds =
      num_flag("--serve-seconds", get("--serve-seconds", "0"));
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  std::fprintf(stderr, "cs_syncd: serving chronosync-wire v1 on %s\n",
               net::to_string(server.local_address()).c_str());
  const double until =
      serve_seconds > 0.0 ? realtime_now() + serve_seconds : 0.0;
  while (g_stop == 0 && (until == 0.0 || realtime_now() < until))
    server.step(100);

  if (flags.count("--json") != 0) {
    std::string out = "{\"mode\": \"serve\"";
    out += ", \"listen\": \"" + net::to_string(server.local_address()) + "\"";
    out += ", \"sessions\": " + std::to_string(server.active_sessions());
    out += ", \"peak_sessions\": " + std::to_string(server.peak_sessions());
    out += ", \"frames\": " + std::to_string(server.frames_received());
    out += "}";
    std::printf("%s\n", out.c_str());
  } else {
    std::printf("cs_syncd: served %llu frames, %zu sessions (peak %zu)\n",
                static_cast<unsigned long long>(server.frames_received()),
                server.active_sessions(), server.peak_sessions());
  }
  return kExitOk;
}

/// --peers: one agent of a multihost LAN run (net::NetDaemon).
int run_multihost(const std::map<std::string, std::string>& flags,
                  const FlagGet& get, const SystemModel& model) {
  net::NetDaemonConfig config;
  config.model = &model;
  config.id = static_cast<ProcessorId>(num_flag("--id", get("--id", "0")));
  config.leader =
      static_cast<ProcessorId>(num_flag("--leader", get("--leader", "0")));
  for (const std::string& part : split_csv(flags.at("--peers")))
    config.peers.push_back(net::parse_hostport(part));
  if (flags.count("--listen") != 0 && config.id < config.peers.size())
    config.peers[config.id] = net::parse_hostport(flags.at("--listen"));

  // Shared schedule origin: every daemon of the run must use the same
  // value.  The default only works when all daemons launch within the
  // same second — scripts pass --base explicitly.
  config.base = num_flag(
      "--base", get("--base", fmt(std::floor(realtime_now()) + 2.0)));
  config.start_offset =
      Duration{num_flag("--start-offset", get("--start-offset", "0"))};
  config.warmup = Duration{num_flag("--warmup", get("--warmup", "0.3"))};
  config.spacing = Duration{num_flag("--spacing", get("--spacing", "0.05"))};
  config.rounds =
      static_cast<std::size_t>(num_flag("--rounds", get("--rounds", "6")));
  config.report_at =
      Duration{num_flag("--report-at", get("--report-at", "1.2"))};
  config.deadline =
      Duration{num_flag("--deadline", get("--deadline", "15"))};

  net::NetDaemon daemon(config);
  const net::NetDaemonReport report = daemon.run();

  bool ok = report.converged && !report.window_violation;
  std::string realized_note;
  std::optional<double> realized;
  const bool is_leader = config.id == config.leader;

  if (is_leader && report.computed) {
    // Offline cross-check: recompute from the collected (wire-transported,
    // bit-exact) extremes table and compare corrections bitwise.
    const SyncOutcome offline = net::synchronize_from_extremes(
        model, report.collected, config.leader);
    if (offline.corrections != report.corrections) {
      ok = false;
      realized_note = "offline recompute mismatch";
    }
    if (flags.count("--offsets") != 0) {
      std::vector<double> offsets;
      for (const std::string& part : split_csv(flags.at("--offsets")))
        offsets.push_back(num_flag("--offsets", part));
      if (offsets.size() != report.corrections.size()) {
        std::fprintf(stderr, "cs_syncd: --offsets wants one value per agent\n");
        return kExitUsage;
      }
      // Ground truth: corrected clock spread max_p (x_p - S_p) - min_p.
      double lo = report.corrections[0] - offsets[0];
      double hi = lo;
      for (std::size_t p = 1; p < offsets.size(); ++p) {
        const double v = report.corrections[p] - offsets[p];
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      realized = hi - lo;
      if (std::isfinite(report.precision) &&
          *realized > report.precision + 1e-9) {
        ok = false;
        realized_note = "realized precision exceeds the claimed bound";
      }
    }
  }

  if (flags.count("--json") != 0) {
    std::string out = "{\"mode\": \"multihost\"";
    out += ", \"id\": " + std::to_string(config.id);
    out += ", \"leader\": " + std::to_string(config.leader);
    out += ", \"converged\": ";
    out += report.converged ? "true" : "false";
    if (is_leader) {
      out += ", \"computed\": ";
      out += report.computed ? "true" : "false";
    }
    if (report.detected) out += ", \"detected\": true";
    if (report.window_violation) out += ", \"window_violation\": true";
    if (report.converged) {
      out += ", \"precision\": " + fmt(report.precision);
      out += ", \"corrections\": [";
      for (std::size_t p = 0; p < report.corrections.size(); ++p) {
        if (p > 0) out += ", ";
        out += fmt(report.corrections[p]);
      }
      out += "]";
    }
    if (realized) out += ", \"realized\": " + fmt(*realized);
    out += ", \"probes_sent\": " + std::to_string(report.probes_sent);
    out += ", \"observations\": " +
           std::to_string(report.probe_obs + report.echo_obs);
    out += ", \"ambiguous_dropped\": " +
           std::to_string(report.ambiguous_dropped);
    out += ", \"extremes\": [";
    for (std::size_t i = 0; i < report.collected.size(); ++i) {
      const net::ReportedExtremes& r = report.collected[i];
      if (i > 0) out += ", ";
      out += "{\"agent\": " + std::to_string(r.agent) + ", \"dirs\": [";
      for (std::size_t j = 0; j < r.dirs.size(); ++j) {
        const net::DirectionExtremes& d = r.dirs[j];
        if (j > 0) out += ", ";
        out += "[" + std::to_string(d.peer) + ", " + fmt(d.dmin) + ", " +
               fmt(d.dmax) + ", " + std::to_string(d.count) + "]";
      }
      out += "]}";
    }
    out += "]";
    if (!realized_note.empty()) out += ", \"error\": \"" + realized_note + "\"";
    out += "}";
    std::printf("%s\n", out.c_str());
  } else {
    std::printf("cs_syncd: multihost agent %u/%zu (%s)\n", config.id,
                config.peers.size(), is_leader ? "leader" : "follower");
    if (report.converged) {
      std::printf("  precision %s%s%s\n", fmt(report.precision).c_str(),
                  realized ? (" realized " + fmt(*realized)).c_str() : "",
                  report.window_violation ? " WINDOW VIOLATION" : "");
    }
    std::printf("  %llu probes, %llu observations, %llu ambiguous dropped\n",
                static_cast<unsigned long long>(report.probes_sent),
                static_cast<unsigned long long>(report.probe_obs +
                                                report.echo_obs),
                static_cast<unsigned long long>(report.ambiguous_dropped));
    std::printf("%s\n", ok ? "converged"
                           : report.detected ? "DETECTED: inadmissible traffic"
                                             : "NOT CONVERGED");
    if (!realized_note.empty())
      std::printf("ERROR: %s\n", realized_note.c_str());
  }
  return ok ? kExitOk : kExitDivergence;
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "help") {
      print_usage(stdout);
      return kExitOk;
    }
    if (arg == "--version") {
      std::printf("%s\n", kVersionBanner);
      return kExitOk;
    }
    if (arg == "--json" || arg == "--no-check" || arg == "--serve") {
      flags[arg] = "1";
      continue;
    }
    if (arg.rfind("--", 0) != 0 || i + 1 >= argc) {
      std::fprintf(stderr, "cs_syncd: unknown or valueless flag '%s'\n",
                   arg.c_str());
      print_usage(stderr);
      return kExitUsage;
    }
    flags[arg] = argv[++i];
  }
  const auto get = [&](const std::string& name, const std::string& fallback) {
    const auto it = flags.find(name);
    return it == flags.end() ? fallback : it->second;
  };

  try {
    if (flags.count("--serve") != 0) return run_serve(flags, get);

    const auto seed =
        static_cast<std::uint64_t>(num_flag("--seed", get("--seed", "1")));
    Rng rng(seed);
    SystemModel model = [&] {
      if (flags.count("--model") != 0)
        return load_model_file(flags.at("--model"));
      const auto n = static_cast<std::size_t>(
          num_flag("--n", get("--n", "8")));
      SystemModel m(make_named(get("--topology", "complete"), n, rng));
      const double lower = num_flag("--lower", get("--lower", "0"));
      const double upper = num_flag("--upper", get("--upper", "1"));
      for (auto [a, b] : m.topology().links)
        m.set_constraint(make_bounds(a, b, lower, upper));
      return m;
    }();

    if (flags.count("--peers") != 0) return run_multihost(flags, get, model);

    LiveConfig config;
    config.seed = seed;
    config.skew = num_flag("--skew", get("--skew", "0.05"));
    const std::string transport = get("--transport", "loopback");
    if (transport == "loopback") {
      config.transport = LiveTransportKind::kLoopback;
    } else if (transport == "loopback-threaded") {
      config.transport = LiveTransportKind::kLoopbackThreaded;
    } else if (transport == "udp") {
      config.transport = LiveTransportKind::kUdp;
    } else {
      std::fprintf(stderr, "cs_syncd: unknown transport '%s'\n",
                   transport.c_str());
      return kExitUsage;
    }
    config.delay_scale =
        num_flag("--delay-scale", get("--delay-scale", "0.01"));
    config.drop_probability = num_flag("--drop", get("--drop", "0"));
    config.udp.bind_address = get("--bind", "127.0.0.1");
    config.trace_path = get("--trace", "");
    config.offline_check = flags.count("--no-check") == 0;
    config.deadline = Duration{num_flag("--deadline", get("--deadline", "30"))};
    config.agent.warmup = Duration{num_flag("--warmup", get("--warmup", "0.2"))};
    config.agent.spacing =
        Duration{num_flag("--spacing", get("--spacing", "0.05"))};
    config.agent.rounds =
        static_cast<std::size_t>(num_flag("--rounds", get("--rounds", "4")));
    config.agent.report_at =
        Duration{num_flag("--report-at", get("--report-at", "1"))};
    config.agent.period = Duration{num_flag("--period", get("--period", "1"))};
    config.agent.epochs =
        static_cast<std::size_t>(num_flag("--epochs", get("--epochs", "2")));
    config.agent.grace = Duration{num_flag("--grace", get("--grace", "0"))};
    config.agent.leader =
        static_cast<ProcessorId>(num_flag("--leader", get("--leader", "0")));
    config.drift.rho =
        num_flag("--drift-ppm", get("--drift-ppm", "0")) * 1e-6;
    config.drift.slack =
        num_flag("--drift-slack", get("--drift-slack", "0"));
    if ((config.drift.rho > 0.0) != (config.drift.slack > 0.0)) {
      std::fprintf(stderr,
                   "cs_syncd: --drift-ppm and --drift-slack go together\n");
      return kExitUsage;
    }
    if (flags.count("--byz-plan") != 0)
      config.byz = byz::parse_byz_plan(flags.at("--byz-plan"));

    std::optional<ZonePlan> zone_plan;
    if (flags.count("--zones") != 0) {
      const auto target = static_cast<std::size_t>(
          num_flag("--zones", flags.at("--zones")));
      if (target == 0) {
        std::fprintf(stderr, "cs_syncd: --zones expects a size >= 1\n");
        return kExitUsage;
      }
      zone_plan = greedy_bfs_zones(model.topology(), target);
      config.zones = &*zone_plan;
    }

    const LiveReport report = run_live(model, config);
    // A detected epoch is a synchronization outage: the leader rejected the
    // traffic as inadmissible (wrong bounds or a lying agent) and computed
    // no corrections.  That is a failure exit, same as the lab's --check.
    const bool ok = report.converged && report.detected_epochs == 0 &&
                    (!report.checked || report.all_match);

    if (flags.count("--json") != 0) {
      std::string out = "{\"transport\": \"" + report.transport + "\"";
      out += ", \"agents\": " + std::to_string(report.agents);
      out += ", \"converged\": ";
      out += report.converged ? "true" : "false";
      out += ", \"all_match\": ";
      out += report.checked ? (report.all_match ? "true" : "false") : "null";
      if (report.byzantine) {
        out += ", \"byzantine\": true, \"byz_liars\": " +
               std::to_string(report.byz_liars);
      }
      if (report.detected_epochs > 0)
        out += ", \"detected_epochs\": " +
               std::to_string(report.detected_epochs);
      if (config.drift.active()) {
        out += ", \"resync_period\": " + fmt(report.resync_period.sec);
        out += ", \"resync_epochs\": " + std::to_string(report.resync_epochs);
        out += ", \"resync_clamped\": ";
        out += report.resync_clamped ? "true" : "false";
      }
      out += ", \"epochs\": [";
      for (std::size_t k = 0; k < report.epochs.size(); ++k) {
        const LiveEpochReport& ep = report.epochs[k];
        if (k > 0) out += ", ";
        out += "{\"epoch\": " + std::to_string(ep.epoch);
        out += ", \"degraded\": ";
        out += ep.degraded ? "true" : "false";
        if (ep.detected) out += ", \"detected\": true";
        if (ep.claimed_precision && std::isfinite(*ep.claimed_precision))
          out += ", \"precision\": " + fmt(*ep.claimed_precision);
        if (ep.drift_bound)
          out += ", \"drift_bound\": " + fmt(*ep.drift_bound);
        if (ep.realized_precision)
          out += ", \"realized\": " + fmt(*ep.realized_precision);
        if (ep.realized_intra)
          out += ", \"realized_intra\": " + fmt(*ep.realized_intra);
        if (ep.realized_cross)
          out += ", \"realized_cross\": " + fmt(*ep.realized_cross);
        out += ", \"corrections\": [";
        for (std::size_t p = 0; p < ep.corrections.size(); ++p) {
          if (p > 0) out += ", ";
          out += fmt(ep.corrections[p]);
        }
        out += "]}";
      }
      out += "]}";
      std::printf("%s\n", out.c_str());
      return ok ? kExitOk : kExitDivergence;
    }

    std::printf("cs_syncd: %zu agents over %s (%zu events)%s\n",
                report.agents, report.transport.c_str(), report.dispatched,
                report.timed_out ? ", deadline hit" : "");
    if (report.byzantine)
      std::printf("  byzantine: %zu lying agent%s (%s); offline cross-check "
                  "skipped\n",
                  report.byz_liars, report.byz_liars == 1 ? "" : "s",
                  config.byz.describe().c_str());
    if (config.drift.active())
      std::printf("  drift budget: rho %s, slack %s -> period %s, %zu "
                  "epochs%s\n",
                  fmt(config.drift.rho).c_str(),
                  fmt(config.drift.slack).c_str(),
                  fmt(report.resync_period.sec).c_str(), report.resync_epochs,
                  report.resync_clamped ? " (clamped)" : "");
    for (const LiveEpochReport& ep : report.epochs) {
      if (!ep.claimed_precision.has_value()) {
        std::printf("  epoch %zu: not computed (%zu/%zu reports)\n", ep.epoch,
                    ep.reports_absorbed, report.agents);
        continue;
      }
      if (ep.detected) {
        std::printf("  epoch %zu: DETECTED — traffic inadmissible under the "
                    "declared assumptions; no corrections\n",
                    ep.epoch);
        continue;
      }
      std::string split;
      if (ep.drift_bound) split += " drift-bound " + fmt(*ep.drift_bound);
      if (ep.realized_intra && ep.realized_cross)
        split += " intra " + fmt(*ep.realized_intra) + " cross " +
                 fmt(*ep.realized_cross);
      std::printf("  epoch %zu: precision %s realized %s%s%s%s\n", ep.epoch,
                  fmt(*ep.claimed_precision).c_str(),
                  ep.realized_precision ? fmt(*ep.realized_precision).c_str()
                                        : "?",
                  split.c_str(), ep.degraded ? " (degraded)" : "",
                  report.checked
                      ? (ep.matches_offline ? " [offline match]"
                                            : " [OFFLINE MISMATCH]")
                      : "");
    }
    std::printf("%s\n", ok ? "converged"
                           : report.detected_epochs > 0
                                 ? "DETECTED: inadmissible traffic"
                                 : "NOT CONVERGED or mismatch");
    return ok ? kExitOk : kExitDivergence;
  } catch (const Error& e) {
    std::fprintf(stderr, "cs_syncd: error: %s\n", e.what());
    return kExitError;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cs_syncd: error: %s\n", e.what());
    return kExitError;
  }
}
