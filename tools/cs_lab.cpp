// cs_lab — the experiment-campaign driver.
//
//   cs_lab run <spec-file | --preset name> [flags]   expand + execute a
//       campaign across all cores, validate every instance against the
//       paper's claims, and emit JSON/CSV reports
//   cs_lab gen spec --preset <name> [--out file]     write a campaign spec
//   cs_lab gen topo "<family params>" [flags]        write a model file
//   cs_lab report <report.csv>                       re-render a CSV report
//
// Every subcommand takes --help (exit 0); --version prints the release.
// Exit codes: 0 success, 1 validation failure (--check), 2 usage error,
// 3 runtime error.  See docs/LAB.md for the spec grammar, the seed
// derivation contract and the report schemas.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/table.hpp"
#include "common/version.hpp"
#include "io/views_io.hpp"
#include "lab/campaign.hpp"
#include "lab/stats.hpp"

namespace {

using namespace cs;
using namespace cs::lab;

constexpr int kExitOk = 0;
constexpr int kExitCheckFailed = 1;
constexpr int kExitUsage = 2;
constexpr int kExitError = 3;

struct UsageError {
  std::string message;
};

[[noreturn]] void usage_fail(const std::string& message) {
  throw UsageError{message};
}

/// Hand-rolled `--flag value` / `--switch` parser (mirrors cs_sync).
class Args {
 public:
  Args(int argc, char** argv, std::set<std::string> valued,
       std::set<std::string> switches)
      : valued_(std::move(valued)), switches_(std::move(switches)) {
    for (int i = 0; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        positional_.push_back(arg);
        continue;
      }
      if (switches_.count(arg) != 0) {
        set_switches_.insert(arg);
        continue;
      }
      if (valued_.count(arg) == 0) usage_fail("unknown flag '" + arg + "'");
      if (i + 1 >= argc) usage_fail("flag '" + arg + "' needs a value");
      values_[arg] = argv[++i];
    }
  }

  const std::vector<std::string>& positional() const { return positional_; }
  bool on(const std::string& name) const {
    return set_switches_.count(name) != 0;
  }
  bool has(const std::string& name) const { return values_.count(name) != 0; }
  std::string get(const std::string& name,
                  const std::string& fallback = "") const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }

 private:
  std::set<std::string> valued_, switches_, set_switches_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

std::uint64_t parse_u64_flag(const std::string& flag,
                             const std::string& text) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0')
    usage_fail("flag '" + flag + "': '" + text + "' is not an integer");
  return v;
}

void write_file_or_fail(const std::string& path, const std::string& body) {
  std::ofstream os(path);
  if (!os) fail("cannot write " + path);
  os << body;
}

int cmd_run(const Args& args) {
  CampaignSpec spec;
  if (args.has("--preset")) {
    if (args.positional().size() > 1)
      usage_fail("run takes a spec file or --preset, not both");
    spec = preset_campaign(args.get("--preset"));
  } else {
    if (args.positional().size() != 2)
      usage_fail("usage: cs_lab run <spec-file | --preset name> [flags]");
    spec = load_campaign_file(args.positional()[1]);
  }
  if (args.has("--seed"))
    spec.seed = parse_u64_flag("--seed", args.get("--seed"));
  if (args.has("--seeds"))
    spec.seeds_per_cell = static_cast<std::uint32_t>(
        parse_u64_flag("--seeds", args.get("--seeds")));

  Metrics metrics;
  RunOptions options;
  options.threads = static_cast<std::size_t>(
      parse_u64_flag("--threads", args.get("--threads", "0")));
  options.task_threads = static_cast<std::size_t>(
      parse_u64_flag("--task-threads", args.get("--task-threads", "1")));
  if (options.task_threads == 0) options.task_threads = 1;
  options.metrics = &metrics;

  const bool timing = !args.on("--no-timing");
  const CampaignResult result = run_campaign(spec, options);
  const CampaignReport report = aggregate(result);

  if (!args.on("--quiet")) {
    print_report(std::cout, report, timing);
    if (timing)
      std::cout << "pool: " << metrics.counter("lab.pool.steals")
                << " steals across " << metrics.counter("lab.pool.threads")
                << " workers\n";
    // Surface the first few failures verbatim; the JSON only counts them.
    std::size_t shown = 0;
    for (std::size_t i = 0; i < result.results.size() && shown < 5; ++i)
      if (!result.results[i].ok) {
        std::cout << "task " << i << " failed: " << result.results[i].failure
                  << "\n";
        ++shown;
      }
  }

  if (args.has("--json")) {
    std::ostringstream os;
    write_report_json(os, report, timing);
    write_file_or_fail(args.get("--json"), os.str());
    if (!args.on("--quiet"))
      std::cout << "wrote " << args.get("--json") << "\n";
  }
  if (args.has("--csv")) {
    std::ostringstream os;
    write_report_csv(os, report);
    write_file_or_fail(args.get("--csv"), os.str());
    if (!args.on("--quiet")) std::cout << "wrote " << args.get("--csv") << "\n";
  }

  if (args.on("--check") && !report_ok(report)) {
    std::size_t byz_detected = 0;
    for (const CellStats& cell : report.cells) byz_detected += cell.byz_detected;
    std::cout << "check FAILED: failures=" << report.failures
              << " soundness_violations=" << report.soundness_violations
              << " byz_detection_outages=" << byz_detected
              << " thm46_max_gap=" << report.thm46_max_gap << " (tolerance "
              << kThm46Tolerance << ")\n";
    return kExitCheckFailed;
  }
  if (args.on("--check") && !args.on("--quiet"))
    std::cout << "check ok: every fault-free cell matches the Theorem 4.6 "
                 "bound within tolerance\n";
  return kExitOk;
}

int cmd_gen(const Args& args) {
  if (args.positional().size() < 2)
    usage_fail("usage: cs_lab gen <spec|topo> ...");
  const std::string& what = args.positional()[1];
  if (what == "spec") {
    const CampaignSpec spec = preset_campaign(args.get("--preset", "smoke"));
    std::ostringstream os;
    save_campaign(os, spec);
    if (args.has("--out")) {
      write_file_or_fail(args.get("--out"), os.str());
      std::cout << "wrote " << args.get("--out") << "\n";
    } else {
      std::cout << os.str();
    }
    return kExitOk;
  }
  if (what == "topo") {
    if (args.positional().size() != 3)
      usage_fail("usage: cs_lab gen topo \"<family params>\" [flags]");
    const TopoSpec topo_spec = parse_topo_spec(args.positional()[2]);
    Rng rng(parse_u64_flag("--seed", args.get("--seed", "1")));
    const Topology topo = make_topology(topo_spec, rng);
    SystemModel model(topo);
    MixSpec mix;
    // Default mix mirrors the smoke preset; --mix overrides with the
    // campaign-spec grammar, e.g. --mix "alternating 0.002 0.01 0.004".
    mix.kind = "bounds";
    mix.lb = 0.002;
    mix.ub = 0.01;
    if (args.has("--mix")) {
      // Reuse the campaign-spec parser for the mix grammar via a one-line
      // synthetic spec.
      std::istringstream is("chronosync-campaign v1\nseeds 1\ntopology ring 3\n"
                            "mix " + args.get("--mix") + "\n");
      mix = load_campaign(is).mixes.at(0);
    }
    apply_mix(model, mix);
    std::ostringstream os;
    save_model(os, model);
    if (args.has("--out")) {
      write_file_or_fail(args.get("--out"), os.str());
      std::cout << "wrote " << args.get("--out") << " (" << topo.node_count
                << " nodes, " << topo.link_count() << " links)\n";
    } else {
      std::cout << os.str();
    }
    return kExitOk;
  }
  usage_fail("unknown gen target '" + what + "' (spec or topo)");
}

int cmd_report(const Args& args) {
  if (args.positional().size() != 2)
    usage_fail("usage: cs_lab report <report.csv>");
  std::ifstream is(args.positional()[1]);
  if (!is) fail("cannot open " + args.positional()[1]);
  // Re-render the deterministic CSV as the usual fixed-width table.
  std::string line;
  if (!std::getline(is, line)) fail("empty report");
  const auto split = [](const std::string& row) {
    std::vector<std::string> cells;
    std::string cell;
    bool in_quotes = false;
    for (const char ch : row) {
      if (ch == '"') in_quotes = !in_quotes;
      else if (ch == ',' && !in_quotes) {
        cells.push_back(cell);
        cell.clear();
      } else cell += ch;
    }
    cells.push_back(cell);
    return cells;
  };
  Table table(split(line));
  std::size_t columns = split(line).size();
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::vector<std::string> cells = split(line);
    if (cells.size() != columns) fail("malformed report row: " + line);
    table.add_row(std::move(cells));
  }
  table.print(std::cout);
  return kExitOk;
}

void print_usage(std::ostream& os) {
  os << "cs_lab " << kVersion << " — experiment-campaign engine\n\n"
     << "  cs_lab run <spec-file | --preset smoke|toroid|zones|fabric100k|\n"
     << "              drift|drift-noresync|byz|byz-quorum> [flags]\n"
     << "      --threads N    worker threads (0 = all cores)\n"
     << "      --task-threads N  threads *inside* each task (zoned solves;\n"
     << "                     byte-identical results for any value)\n"
     << "      --seed S       override the campaign master seed\n"
     << "      --seeds K      override runs per cell\n"
     << "      --json FILE    write the JSON report\n"
     << "      --csv FILE     write the per-cell CSV report\n"
     << "      --no-timing    omit wall-clock fields (byte-comparable runs)\n"
     << "      --check        exit 1 unless every fault-free cell matches\n"
     << "                     the Theorem 4.6 bound within tolerance\n"
     << "      --quiet        suppress stdout report\n"
     << "  cs_lab gen spec [--preset name] [--out FILE]\n"
     << "  cs_lab gen topo \"<family params>\" [--seed S] [--mix \"...\"]\n"
     << "                 [--out FILE]\n"
     << "  cs_lab report <report.csv>\n\n"
     << "Topology families:";
  for (const std::string& f : topo_families()) os << ' ' << f;
  os << "\nSee docs/LAB.md for the campaign grammar and report schemas.\n";
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args(argc - 1, argv + 1,
                    {"--threads", "--task-threads", "--seed", "--seeds",
                     "--json", "--csv", "--preset", "--out", "--mix"},
                    {"--check", "--no-timing", "--quiet", "--help",
                     "--version"});
    if (args.on("--version")) {
      std::cout << "cs_lab " << kVersion << "\n";
      return kExitOk;
    }
    if (args.on("--help") || args.positional().empty()) {
      print_usage(std::cout);
      return kExitOk;
    }
    const std::string& cmd = args.positional()[0];
    if (cmd == "help") {
      print_usage(std::cout);
      return kExitOk;
    }
    if (cmd == "run") return cmd_run(args);
    if (cmd == "gen") return cmd_gen(args);
    if (cmd == "report") return cmd_report(args);
    usage_fail("unknown subcommand '" + cmd + "'");
  } catch (const UsageError& e) {
    std::cerr << "usage error: " << e.message << "\n\n";
    print_usage(std::cerr);
    return kExitUsage;
  } catch (const cs::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return kExitError;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return kExitError;
  }
}
