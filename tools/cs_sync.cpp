// cs_sync — the command-line driver for the chronosync pipeline.
//
//   cs_sync simulate <out.trace> [flags]   record a run as a replayable trace
//   cs_sync sync <views> <model> [flags]   offline synchronization (§3–§6)
//   cs_sync live [flags]                   live agents over a real transport
//   cs_sync replay <trace> [flags]         deterministic replay + self-check
//   cs_sync diff <a.trace> <b.trace>       structural trace comparison
//   cs_sync metrics <trace> [flags]        replay and dump counters/metrics
//
// Every subcommand takes --json for machine-readable output and --help for
// the flag reference (exit 0); --version prints the release.  Exit codes:
// 0 success, 1 divergences found (replay/diff/live), 2 usage error,
// 3 runtime error.  Run with no arguments for the full flag reference.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/version.hpp"
#include "core/epochs.hpp"
#include "core/synchronizer.hpp"
#include "core/zones.hpp"
#include "runtime/daemon.hpp"
#include "delaymodel/constraint.hpp"
#include "drift/oscillator.hpp"
#include "graph/topology.hpp"
#include "io/views_io.hpp"
#include "proto/beacon.hpp"
#include "proto/ping_pong.hpp"
#include "sim/fault_plan.hpp"
#include "sim/simulator.hpp"
#include "trace/replay.hpp"
#include "trace/writer.hpp"

namespace {

using namespace cs;

constexpr int kExitOk = 0;
constexpr int kExitDivergence = 1;
constexpr int kExitUsage = 2;
constexpr int kExitError = 3;

struct UsageError {
  std::string message;
};

[[noreturn]] void usage_fail(const std::string& message) {
  throw UsageError{message};
}

// ---------------------------------------------------------------------------
// Flag parsing

/// Hand-rolled `--flag value` / `--switch` parser.  Flags may appear in any
/// order, interleaved with positionals; unknown flags are usage errors.
class Args {
 public:
  Args(int argc, char** argv, std::set<std::string> valued,
       std::set<std::string> switches)
      : valued_(std::move(valued)), switches_(std::move(switches)) {
    for (int i = 0; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        positional_.push_back(arg);
        continue;
      }
      if (switches_.count(arg) != 0) {
        set_switches_.insert(arg);
        continue;
      }
      if (valued_.count(arg) == 0) usage_fail("unknown flag '" + arg + "'");
      if (i + 1 >= argc) usage_fail("flag '" + arg + "' needs a value");
      values_[arg] = argv[++i];
    }
  }

  const std::vector<std::string>& positional() const { return positional_; }

  bool on(const std::string& name) const {
    return set_switches_.count(name) != 0;
  }

  bool has(const std::string& name) const {
    return values_.count(name) != 0;
  }

  std::string get(const std::string& name,
                  const std::string& fallback = "") const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }

 private:
  std::set<std::string> valued_, switches_, set_switches_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

double parse_double_flag(const std::string& flag, const std::string& text) {
  if (text == "inf") return std::numeric_limits<double>::infinity();
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0')
    usage_fail("flag '" + flag + "': '" + text + "' is not a number");
  return v;
}

std::uint64_t parse_u64_flag(const std::string& flag,
                             const std::string& text) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || text[0] == '-')
    usage_fail("flag '" + flag + "': '" + text +
               "' is not a non-negative integer");
  return v;
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string part;
  std::istringstream is(text);
  while (std::getline(is, part, sep)) parts.push_back(part);
  return parts;
}

// ---------------------------------------------------------------------------
// Output helpers

std::string num(double v) {
  if (v == std::numeric_limits<double>::infinity()) return "inf";
  if (v == -std::numeric_limits<double>::infinity()) return "-inf";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// JSON number: "inf" is not valid JSON, so infinities become strings.
std::string jnum(double v) {
  if (v == std::numeric_limits<double>::infinity()) return "\"inf\"";
  if (v == -std::numeric_limits<double>::infinity()) return "\"-inf\"";
  return num(v);
}

std::string jstr(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
  return out;
}

std::string jarray(const std::vector<double>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += jnum(values[i]);
  }
  return out + "]";
}

std::string jarray(const std::vector<std::string>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += jstr(values[i]);
  }
  return out + "]";
}

std::string jmap(const std::map<std::string, std::uint64_t>& m) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : m) {
    if (!first) out += ", ";
    first = false;
    out += jstr(k) + ": " + std::to_string(v);
  }
  return out + "}";
}

// ---------------------------------------------------------------------------
// Shared option builders

SyncOptions sync_options_from(const Args& args) {
  SyncOptions opts;
  if (args.has("--root"))
    opts.root = static_cast<NodeId>(
        parse_u64_flag("--root", args.get("--root")));
  const std::string apsp = args.get("--apsp", "johnson");
  if (apsp == "johnson")
    opts.apsp = ApspAlgorithm::kJohnson;
  else if (apsp == "floyd-warshall")
    opts.apsp = ApspAlgorithm::kFloydWarshall;
  else
    usage_fail("--apsp must be johnson or floyd-warshall, got '" + apsp +
               "'");
  const std::string cm = args.get("--cycle-mean", "karp");
  if (cm == "karp")
    opts.cycle_mean = CycleMeanAlgorithm::kKarp;
  else if (cm == "howard")
    opts.cycle_mean = CycleMeanAlgorithm::kHoward;
  else
    usage_fail("--cycle-mean must be karp or howard, got '" + cm + "'");
  const std::string match = args.get("--match", "strict");
  if (match == "strict")
    opts.match = MatchPolicy::kStrict;
  else if (match == "drop-orphans")
    opts.match = MatchPolicy::kDropOrphans;
  else
    usage_fail("--match must be strict or drop-orphans, got '" + match +
               "'");
  return opts;
}

ReplayPlan plan_from(const Args& args) {
  ReplayPlan plan;
  plan.options.sync = sync_options_from(args);
  plan.incremental = !args.on("--rebuild");
  if (args.has("--window"))
    plan.options.window =
        Duration{parse_double_flag("--window", args.get("--window"))};
  if (args.on("--carry")) plan.options.staleness.carry_forward = true;
  if (args.has("--widen")) {
    plan.options.staleness.carry_forward = true;
    plan.options.staleness.widen_per_epoch =
        parse_double_flag("--widen", args.get("--widen"));
  }
  if (args.has("--max-age")) {
    plan.options.staleness.carry_forward = true;
    plan.options.staleness.max_carry_epochs = static_cast<std::size_t>(
        parse_u64_flag("--max-age", args.get("--max-age")));
  }
  if (args.has("--boundaries")) {
    for (const std::string& part :
         split(args.get("--boundaries"), ','))
      plan.boundaries.push_back(
          ClockTime{parse_double_flag("--boundaries", part)});
  }
  return plan;
}

void describe_epoch(std::size_t k, const EpochOutcome& ep) {
  std::printf("epoch %zu  boundary %s  precision %s  coverage %zu/%zu  "
              "carried %zu  paired %zu\n",
              k, num(ep.boundary.sec).c_str(),
              num(ep.sync.optimal_precision.value()).c_str(),
              ep.coverage.observed_directions, ep.coverage.total_directions,
              ep.carried_edges, ep.pairing.paired);
}

std::string epoch_json(const EpochOutcome& ep) {
  std::string out = "{";
  out += "\"boundary\": " + jnum(ep.boundary.sec);
  out += ", \"precision\": " + jnum(ep.sync.optimal_precision.value());
  out += ", \"coverage\": [" +
         std::to_string(ep.coverage.observed_directions) + ", " +
         std::to_string(ep.coverage.total_directions) + "]";
  out += ", \"carried_edges\": " + std::to_string(ep.carried_edges);
  out += ", \"paired\": " + std::to_string(ep.pairing.paired);
  out += ", \"corrections\": " + jarray(ep.sync.corrections);
  out += "}";
  return out;
}

// ---------------------------------------------------------------------------
// simulate

int cmd_simulate(const Args& args) {
  if (args.positional().empty())
    usage_fail("simulate needs an output trace path");
  const std::string out_path = args.positional()[0];

  const std::uint64_t seed =
      parse_u64_flag("--seed", args.get("--seed", "1"));
  Rng rng(seed);

  // The system: an explicit model file, or a generated topology with
  // uniform [lower, upper] bounds on every link.
  SystemModel model = [&] {
    if (args.has("--model")) return load_model_file(args.get("--model"));
    const std::size_t n = static_cast<std::size_t>(
        parse_u64_flag("--n", args.get("--n", "5")));
    SystemModel m(make_named(args.get("--topology", "ring"), n, rng));
    const double lower =
        parse_double_flag("--lower", args.get("--lower", "0.002"));
    const double upper =
        parse_double_flag("--upper", args.get("--upper", "0.010"));
    for (auto [a, b] : m.topology().links)
      m.set_constraint(make_bounds(a, b, lower, upper));
    return m;
  }();
  const std::size_t n = model.processor_count();

  // The interactive part.
  AutomatonFactory factory;
  const std::string proto = args.get("--proto", "ping-pong");
  if (proto == "ping-pong") {
    PingPongParams params;
    params.warmup =
        Duration{parse_double_flag("--warmup", args.get("--warmup", "0.5"))};
    params.spacing = Duration{
        parse_double_flag("--spacing", args.get("--spacing", "0.05"))};
    params.rounds = static_cast<std::size_t>(
        parse_u64_flag("--rounds", args.get("--rounds", "4")));
    factory = make_ping_pong(params);
  } else if (proto == "beacon") {
    BeaconParams params;
    params.warmup =
        Duration{parse_double_flag("--warmup", args.get("--warmup", "0.5"))};
    params.period = Duration{
        parse_double_flag("--period", args.get("--period", "0.1"))};
    params.count = static_cast<std::size_t>(
        parse_u64_flag("--count", args.get("--count", "5")));
    factory = make_beacon(params);
  } else {
    usage_fail("--proto must be ping-pong or beacon, got '" + proto + "'");
  }

  // The environment.
  SimOptions sim_opts;
  sim_opts.seed = seed;
  const double skew = parse_double_flag("--skew", args.get("--skew", "0"));
  if (skew > 0.0) {
    Rng skew_rng = rng.split(0x5EEDu);
    sim_opts.start_offsets = random_start_offsets(n, skew, skew_rng);
  } else {
    sim_opts.start_offsets.assign(n, Duration{0.0});
  }
  if (args.has("--delay-scale"))
    sim_opts.delay_scale =
        parse_double_flag("--delay-scale", args.get("--delay-scale"));

  // --drift R: constant-skew oscillators in [1 - R·1e-6, 1 + R·1e-6] on a
  // dedicated seed stream (docs/DRIFT.md).  Drifting rates step outside
  // the paper's model, so admissibility enforcement is turned off — the
  // recorded trace still replays bit-identically (rates are recorded).
  const double drift_ppm =
      parse_double_flag("--drift", args.get("--drift", "0"));
  if (drift_ppm < 0.0) usage_fail("--drift wants a ppm value >= 0");
  if (drift_ppm > 0.0) {
    drift::OscillatorSpec osc;
    osc.kind = drift::OscillatorSpec::Kind::kConstant;
    osc.ppm = drift_ppm;
    drift::draw_oscillators(osc, n, seed ^ 0xD21F705C1ULL).apply(sim_opts);
  }

  FaultPlan faults;
  bool any_faults = false;
  faults.seed = parse_u64_flag("--fault-seed",
                               args.get("--fault-seed", "64279"));
  if (args.has("--drop")) {
    faults.default_link.drop_probability =
        parse_double_flag("--drop", args.get("--drop"));
    any_faults = true;
  }
  if (args.has("--dup")) {
    faults.default_link.duplicate_probability =
        parse_double_flag("--dup", args.get("--dup"));
    any_faults = true;
  }
  if (args.has("--spike")) {
    faults.default_link.spike_probability =
        parse_double_flag("--spike", args.get("--spike"));
    faults.default_link.spike_magnitude = parse_double_flag(
        "--spike-mag", args.get("--spike-mag", "0.05"));
    any_faults = true;
  }
  if (args.has("--down")) {
    // --down a:b:from:until — a link outage window.
    const auto parts = split(args.get("--down"), ':');
    if (parts.size() != 4) usage_fail("--down wants a:b:from:until");
    const auto a =
        static_cast<ProcessorId>(parse_u64_flag("--down", parts[0]));
    const auto b =
        static_cast<ProcessorId>(parse_u64_flag("--down", parts[1]));
    faults.link(a, b).down.push_back(
        TimeWindow{RealTime{parse_double_flag("--down", parts[2])},
                   RealTime{parse_double_flag("--down", parts[3])}});
    any_faults = true;
  }
  if (args.has("--crash")) {
    // --crash pid:from[:until] — a processor crash window.
    const auto parts = split(args.get("--crash"), ':');
    if (parts.size() != 2 && parts.size() != 3)
      usage_fail("--crash wants pid:from[:until]");
    const auto pid =
        static_cast<ProcessorId>(parse_u64_flag("--crash", parts[0]));
    const RealTime from{parse_double_flag("--crash", parts[1])};
    if (parts.size() == 3)
      faults.crash(pid, from,
                   RealTime{parse_double_flag("--crash", parts[2])});
    else
      faults.crash(pid, from);
    any_faults = true;
  }
  if (any_faults) sim_opts.faults = &faults;

  const ReplayPlan plan = plan_from(args);

  TraceWriter writer(out_path);
  const RecordResult result =
      record_run(model, factory, sim_opts, plan, writer);

  if (args.has("--views"))
    save_views_file(args.get("--views"), result.sim.execution.views());

  if (args.on("--json")) {
    std::string out = "{\"trace\": " + jstr(out_path);
    out += ", \"processors\": " + std::to_string(n);
    out += ", \"seed\": " + std::to_string(seed);
    out += ", \"delivered\": " +
           std::to_string(result.sim.delivered_messages);
    out += ", \"fault_dropped\": " +
           std::to_string(result.sim.fault_dropped_messages);
    out += ", \"epochs\": [";
    for (std::size_t k = 0; k < result.epochs.size(); ++k) {
      if (k > 0) out += ", ";
      out += epoch_json(result.epochs[k]);
    }
    out += "]}";
    std::printf("%s\n", out.c_str());
    return kExitOk;
  }

  std::printf("recorded %s: %zu processors, %zu events, %zu epochs\n",
              out_path.c_str(), n, writer.trace().events.size(),
              result.epochs.size());
  std::printf("delivered %zu  lost %zu  fault-dropped %zu  duplicated %zu  "
              "crash-dropped %zu\n",
              result.sim.delivered_messages, result.sim.lost_messages,
              result.sim.fault_dropped_messages,
              result.sim.duplicated_messages,
              result.sim.crash_dropped_deliveries);
  for (std::size_t k = 0; k < result.epochs.size(); ++k)
    describe_epoch(k, result.epochs[k]);
  return kExitOk;
}

// ---------------------------------------------------------------------------
// sync

int cmd_sync(const Args& args) {
  if (args.positional().size() != 2)
    usage_fail("sync needs exactly <views-file> <model-file>");
  const std::vector<View> views = load_views_file(args.positional()[0]);
  const SystemModel model = load_model_file(args.positional()[1]);
  const SyncOptions opts = sync_options_from(args);

  if (args.has("--zones")) {
    // Zone-hierarchical composition (Thm 5.5/5.6): per-zone SHIFTS, leader
    // quotient, composed bound.  Reports the per-zone breakdown alongside
    // the composed corrections.
    const std::size_t target = static_cast<std::size_t>(
        parse_u64_flag("--zones", args.get("--zones")));
    if (target == 0) usage_fail("--zones wants a target zone size >= 1");
    const ZonePlan plan = greedy_bfs_zones(model.topology(), target);
    const ZonedOutcome z = synchronize_zoned(model, views, plan, opts);

    if (args.on("--json")) {
      std::string out =
          "{\"precision\": " + jnum(z.composed_bound.value());
      out += ", \"bounded\": ";
      out += z.bounded() ? "true" : "false";
      out += ", \"zone_count\": " + std::to_string(z.plan.count);
      out += ", \"max_zone_a_max\": " + jnum(z.max_zone_a_max);
      out += ", \"quotient_a_max\": " + jnum(z.quotient_a_max.value());
      out += ", \"zones\": [";
      for (std::size_t i = 0; i < z.zones.size(); ++i) {
        const ZoneStats& zs = z.zones[i];
        if (i > 0) out += ", ";
        out += "{\"leader\": " + std::to_string(zs.leader);
        out += ", \"size\": " + std::to_string(zs.size);
        out += ", \"bounded\": ";
        out += zs.bounded ? "true" : "false";
        out += ", \"a_max\": " +
               jnum(zs.bounded ? zs.a_max
                               : std::numeric_limits<double>::infinity());
        out += ", \"thm46_gap\": " + jnum(zs.thm46_gap) + "}";
      }
      out += "], \"corrections\": " + jarray(z.corrections) + "}";
      std::printf("%s\n", out.c_str());
      return kExitOk;
    }

    std::printf("composed precision %s  (%zu zones, max zone A^max %s, "
                "quotient A^max %s)\n",
                num(z.composed_bound.value()).c_str(), z.plan.count,
                num(z.max_zone_a_max).c_str(),
                num(z.quotient_a_max.value()).c_str());
    for (std::size_t i = 0; i < z.zones.size(); ++i)
      std::printf("zone %zu  leader %u  size %u  A^max %s  thm4.6 gap %s\n",
                  i, static_cast<unsigned>(z.zones[i].leader),
                  static_cast<unsigned>(z.zones[i].size),
                  num(z.zones[i].bounded
                          ? z.zones[i].a_max
                          : std::numeric_limits<double>::infinity())
                      .c_str(),
                  num(z.zones[i].thm46_gap).c_str());
    for (std::size_t p = 0; p < z.corrections.size(); ++p)
      std::printf("correction %zu %s\n", p, num(z.corrections[p]).c_str());
    return kExitOk;
  }

  const SyncOutcome outcome = synchronize(model, views, opts);

  if (args.on("--json")) {
    std::string out = "{\"precision\": " +
                      jnum(outcome.optimal_precision.value());
    out += ", \"bounded\": ";
    out += outcome.bounded() ? "true" : "false";
    out += ", \"corrections\": " + jarray(outcome.corrections);
    if (!outcome.bounded())
      out += ", \"component_precision\": " +
             jarray(outcome.component_precision);
    out += "}";
    std::printf("%s\n", out.c_str());
    return kExitOk;
  }

  std::printf("precision %s\n",
              num(outcome.optimal_precision.value()).c_str());
  for (std::size_t p = 0; p < outcome.corrections.size(); ++p)
    std::printf("correction %zu %s\n", p,
                num(outcome.corrections[p]).c_str());
  if (!outcome.bounded())
    for (std::size_t c = 0; c < outcome.component_precision.size(); ++c)
      std::printf("component %zu precision %s\n", c,
                  num(outcome.component_precision[c]).c_str());
  return kExitOk;
}

// ---------------------------------------------------------------------------
// replay

int cmd_replay(const Args& args) {
  if (args.positional().size() != 1)
    usage_fail("replay needs exactly one <trace-file>");
  const Trace trace = load_trace_file(args.positional()[0]);
  const ReplayResult result = replay(trace);

  if (args.has("--rerecord"))
    save_trace_file(args.get("--rerecord"), rerecorded(trace, result));

  if (args.on("--json")) {
    std::string out = "{\"epochs\": " + std::to_string(result.epochs.size());
    out += ", \"match\": ";
    out += result.matches_recording() ? "true" : "false";
    out += ", \"divergences\": " + jarray(result.divergences) + "}";
    std::printf("%s\n", out.c_str());
  } else {
    for (std::size_t k = 0; k < result.epochs.size(); ++k)
      describe_epoch(k, result.epochs[k]);
    if (result.matches_recording()) {
      std::printf("replay matches the recording (%zu events, %zu epochs)\n",
                  trace.events.size(), result.epochs.size());
    } else {
      for (const std::string& d : result.divergences)
        std::printf("divergence: %s\n", d.c_str());
    }
  }
  return result.matches_recording() ? kExitOk : kExitDivergence;
}

// ---------------------------------------------------------------------------
// diff

int cmd_diff(const Args& args) {
  if (args.positional().size() != 2)
    usage_fail("diff needs exactly <a.trace> <b.trace>");
  const Trace a = load_trace_file(args.positional()[0]);
  const Trace b = load_trace_file(args.positional()[1]);
  const std::size_t cap = static_cast<std::size_t>(
      parse_u64_flag("--max-reports", args.get("--max-reports", "16")));
  const std::vector<std::string> divergences = diff_traces(a, b, cap);

  if (args.on("--json")) {
    std::string out = "{\"equal\": ";
    out += divergences.empty() ? "true" : "false";
    out += ", \"divergences\": " + jarray(divergences) + "}";
    std::printf("%s\n", out.c_str());
  } else if (divergences.empty()) {
    std::printf("traces are structurally identical\n");
  } else {
    for (const std::string& d : divergences)
      std::printf("diff: %s\n", d.c_str());
  }
  return divergences.empty() ? kExitOk : kExitDivergence;
}

// ---------------------------------------------------------------------------
// metrics

int cmd_metrics(const Args& args) {
  if (args.positional().size() != 1)
    usage_fail("metrics needs exactly one <trace-file>");
  const Trace trace = load_trace_file(args.positional()[0]);
  const ReplayResult result = replay(trace);

  if (args.on("--json")) {
    std::string out = "{\n\"tallies\": " + jmap(trace.tallies);
    out += ",\n\"recorded_counters\": " + jmap(trace.counters);
    out += ",\n\"replayed\": " + result.metrics.to_json(2);
    out += "\n}";
    std::printf("%s\n", out.c_str());
    return kExitOk;
  }

  for (const auto& [name, value] : trace.tallies)
    std::printf("tally %s %llu\n", name.c_str(),
                static_cast<unsigned long long>(value));
  for (const auto& [name, value] : result.metrics.counters())
    std::printf("counter %s %llu\n", name.c_str(),
                static_cast<unsigned long long>(value));
  return kExitOk;
}

// ---------------------------------------------------------------------------
// live

int cmd_live(const Args& args) {
  const std::uint64_t seed =
      parse_u64_flag("--seed", args.get("--seed", "1"));
  Rng rng(seed);

  SystemModel model = [&] {
    if (args.has("--model")) return load_model_file(args.get("--model"));
    const std::size_t n = static_cast<std::size_t>(
        parse_u64_flag("--n", args.get("--n", "8")));
    SystemModel m(make_named(args.get("--topology", "complete"), n, rng));
    const double lower =
        parse_double_flag("--lower", args.get("--lower", "0"));
    const double upper =
        parse_double_flag("--upper", args.get("--upper", "1"));
    for (auto [a, b] : m.topology().links)
      m.set_constraint(make_bounds(a, b, lower, upper));
    return m;
  }();

  LiveConfig config;
  config.seed = seed;
  config.skew = parse_double_flag("--skew", args.get("--skew", "0.05"));
  const std::string transport = args.get("--transport", "loopback");
  if (transport == "loopback")
    config.transport = LiveTransportKind::kLoopback;
  else if (transport == "loopback-threaded")
    config.transport = LiveTransportKind::kLoopbackThreaded;
  else if (transport == "udp")
    config.transport = LiveTransportKind::kUdp;
  else
    usage_fail("--transport must be loopback, loopback-threaded or udp, "
               "got '" + transport + "'");
  config.delay_scale = parse_double_flag(
      "--delay-scale", args.get("--delay-scale", "0.01"));
  config.drop_probability =
      parse_double_flag("--drop", args.get("--drop", "0"));
  config.trace_path = args.get("--trace", "");
  config.offline_check = !args.on("--no-check");
  config.deadline =
      Duration{parse_double_flag("--deadline", args.get("--deadline", "30"))};

  config.agent.warmup =
      Duration{parse_double_flag("--warmup", args.get("--warmup", "0.2"))};
  config.agent.spacing = Duration{
      parse_double_flag("--spacing", args.get("--spacing", "0.05"))};
  config.agent.rounds = static_cast<std::size_t>(
      parse_u64_flag("--rounds", args.get("--rounds", "4")));
  config.agent.report_at = Duration{
      parse_double_flag("--report-at", args.get("--report-at", "1"))};
  config.agent.period =
      Duration{parse_double_flag("--period", args.get("--period", "1"))};
  config.agent.epochs = static_cast<std::size_t>(
      parse_u64_flag("--epochs", args.get("--epochs", "2")));
  config.agent.grace =
      Duration{parse_double_flag("--grace", args.get("--grace", "0"))};
  config.agent.leader = static_cast<ProcessorId>(
      parse_u64_flag("--leader", args.get("--leader", "0")));
  config.agent.sync = sync_options_from(args);
  config.drift.rho =
      parse_double_flag("--drift-ppm", args.get("--drift-ppm", "0")) * 1e-6;
  config.drift.slack =
      parse_double_flag("--drift-slack", args.get("--drift-slack", "0"));
  if ((config.drift.rho > 0.0) != (config.drift.slack > 0.0))
    usage_fail("--drift-ppm and --drift-slack go together");

  std::optional<ZonePlan> zone_plan;
  if (args.has("--zones")) {
    const std::size_t target = static_cast<std::size_t>(
        parse_u64_flag("--zones", args.get("--zones")));
    if (target == 0) usage_fail("--zones wants a target zone size >= 1");
    zone_plan = greedy_bfs_zones(model.topology(), target);
    config.zones = &*zone_plan;
  }

  const LiveReport report = run_live(model, config);
  const bool ok =
      report.converged && (!report.checked || report.all_match);

  if (args.on("--json")) {
    std::string out = "{\"transport\": " + jstr(report.transport);
    out += ", \"agents\": " + std::to_string(report.agents);
    out += ", \"seed\": " + std::to_string(seed);
    out += ", \"converged\": ";
    out += report.converged ? "true" : "false";
    out += ", \"checked\": ";
    out += report.checked ? "true" : "false";
    out += ", \"all_match\": ";
    out += report.all_match ? "true" : "false";
    out += ", \"dispatched\": " + std::to_string(report.dispatched);
    out += ", \"epochs\": [";
    for (std::size_t k = 0; k < report.epochs.size(); ++k) {
      const LiveEpochReport& ep = report.epochs[k];
      if (k > 0) out += ", ";
      out += "{\"epoch\": " + std::to_string(ep.epoch);
      out += ", \"boundary\": " + jnum(ep.boundary.sec);
      out += ", \"computed\": ";
      out += ep.claimed_precision.has_value() ? "true" : "false";
      if (ep.claimed_precision.has_value())
        out += ", \"precision\": " + jnum(*ep.claimed_precision);
      if (ep.drift_bound.has_value())
        out += ", \"drift_bound\": " + jnum(*ep.drift_bound);
      if (ep.realized_precision.has_value())
        out += ", \"realized\": " + jnum(*ep.realized_precision);
      if (ep.realized_intra.has_value())
        out += ", \"realized_intra\": " + jnum(*ep.realized_intra);
      if (ep.realized_cross.has_value())
        out += ", \"realized_cross\": " + jnum(*ep.realized_cross);
      if (ep.offline_precision.has_value())
        out += ", \"offline_precision\": " + jnum(*ep.offline_precision);
      out += ", \"degraded\": ";
      out += ep.degraded ? "true" : "false";
      out += ", \"matches_offline\": ";
      out += ep.matches_offline ? "true" : "false";
      out += ", \"reports\": " + std::to_string(ep.reports_absorbed);
      out += ", \"acks\": " + std::to_string(ep.acks);
      out += ", \"corrections\": " + jarray(ep.corrections);
      out += "}";
    }
    out += "], \"metrics\": " + report.metrics.to_json(0) + "}";
    std::printf("%s\n", out.c_str());
    return ok ? kExitOk : kExitDivergence;
  }

  std::printf("live run: %zu agents over %s, %zu events dispatched%s\n",
              report.agents, report.transport.c_str(), report.dispatched,
              report.timed_out ? " (deadline hit)" : "");
  if (config.drift.active())
    std::printf("drift budget: rho %s slack %s -> period %s, %zu epochs%s\n",
                num(config.drift.rho).c_str(),
                num(config.drift.slack).c_str(),
                num(report.resync_period.sec).c_str(), report.resync_epochs,
                report.resync_clamped ? " (clamped)" : "");
  for (const LiveEpochReport& ep : report.epochs) {
    if (!ep.claimed_precision.has_value()) {
      std::printf("epoch %zu  boundary %s  NOT COMPUTED (%zu/%zu reports)\n",
                  ep.epoch, num(ep.boundary.sec).c_str(),
                  ep.reports_absorbed, report.agents);
      continue;
    }
    std::printf("epoch %zu  boundary %s  precision %s  realized %s%s",
                ep.epoch, num(ep.boundary.sec).c_str(),
                num(*ep.claimed_precision).c_str(),
                ep.realized_precision ? num(*ep.realized_precision).c_str()
                                      : "?",
                ep.degraded ? "  DEGRADED" : "");
    if (ep.realized_intra.has_value() && ep.realized_cross.has_value())
      std::printf("  intra %s  cross %s", num(*ep.realized_intra).c_str(),
                  num(*ep.realized_cross).c_str());
    if (ep.offline_precision.has_value())
      std::printf("  offline %s  %s", num(*ep.offline_precision).c_str(),
                  ep.matches_offline ? "match" : "MISMATCH");
    std::printf("\n");
  }
  std::printf("%s\n", ok ? (report.converged ? "converged" : "ok")
                         : "NOT CONVERGED or live/offline mismatch");
  return ok ? kExitOk : kExitDivergence;
}

// ---------------------------------------------------------------------------

void print_usage(std::FILE* out) {
  std::fprintf(out, R"(cs_sync — chronosync pipeline driver

usage: cs_sync <subcommand> [args] [flags]

subcommands:
  simulate <out.trace>     record a simulated run as a replayable trace
  sync <views> <model>     offline synchronization from interchange files
                           (--zones K: Thm 5.5/5.6 zone composition over
                           greedy BFS zones of ~K nodes, with the per-zone
                           breakdown)
  replay <trace>           deterministic replay, verified vs. the recording
  diff <a.trace> <b.trace> structural trace comparison
  metrics <trace>          replay and dump tallies/counters
  live                     run n sync agents over a live transport
  version                  print the release banner (also --version)

common flags:
  --json                   machine-readable output
  --root N --apsp johnson|floyd-warshall --cycle-mean karp|howard
  --match strict|drop-orphans

simulate flags:
  --topology ring|line|star|complete|... --n N --lower S --upper S
  --model FILE             use an explicit chronosync-model file instead
  --proto ping-pong|beacon --rounds N --spacing S --warmup S
  --period S --count N     (beacon)
  --seed U --skew S --delay-scale S
  --drift R                constant-skew oscillators, band R ppm
                           (docs/DRIFT.md; disables the admissibility check)
  --drop P --dup P --spike P --spike-mag S --fault-seed U
  --down a:b:from:until    link outage window
  --crash pid:from[:until] processor crash window
  --boundaries t1,t2,...   epoch schedule (default: one epoch over all)
  --window S --carry --widen S --max-age N --rebuild
  --views FILE             also dump the views interchange file

replay flags:
  --rerecord FILE          write the trace with replayed outcomes

diff flags:
  --max-reports N          divergence report cap (default 16)

live flags:
  --transport loopback|loopback-threaded|udp   (default loopback)
  --topology/--n/--lower/--upper/--model       as for simulate
  --seed U --skew S --delay-scale S --drop P   (loopback transports)
  --warmup S --spacing S --rounds N            probe phase, per epoch
  --report-at S --period S --epochs N          epoch schedule
  --grace S                degraded-mode watchdog (0 = wait forever)
  --leader N --deadline S --trace FILE
  --zones K                split realized precision per-zone vs cross-zone
  --drift-ppm R --drift-slack S   drift budget: clamp the epoch period so
                           band-R clocks drift at most S between re-syncs
  --no-check               skip the offline cross-check

exit codes: 0 ok, 1 divergence found, 2 usage error, 3 runtime error
any '<subcommand> --help' prints this reference and exits 0
)");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "--help") == 0 ||
      std::strcmp(argv[1], "help") == 0) {
    print_usage(argc < 2 ? stderr : stdout);
    return argc < 2 ? kExitUsage : kExitOk;
  }
  const std::string command = argv[1];
  if (command == "--version" || command == "version") {
    std::printf("%s\n", kVersionBanner);
    return kExitOk;
  }
  // `cs_sync <sub> --help` is a request for the reference, not a flag
  // error: honor it before flag validation, uniformly across subcommands.
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      print_usage(stdout);
      return kExitOk;
    }
  }
  try {
    const std::set<std::string> valued{
        "--root",     "--apsp",      "--cycle-mean", "--match",
        "--topology", "--n",         "--lower",      "--upper",
        "--model",    "--proto",     "--rounds",     "--spacing",
        "--warmup",   "--period",    "--count",      "--seed",
        "--skew",     "--delay-scale", "--drop",     "--dup",
        "--spike",    "--spike-mag", "--fault-seed", "--down",
        "--crash",    "--boundaries", "--window",    "--widen",
        "--max-age",  "--views",     "--rerecord",   "--max-reports",
        "--transport", "--report-at", "--epochs",    "--grace",
        "--leader",   "--deadline",  "--trace",      "--zones",
        "--drift",    "--drift-ppm", "--drift-slack"};
    const std::set<std::string> switches{"--json", "--carry", "--rebuild",
                                         "--no-check"};
    const Args args(argc - 2, argv + 2, valued, switches);

    if (command == "simulate") return cmd_simulate(args);
    if (command == "sync") return cmd_sync(args);
    if (command == "replay") return cmd_replay(args);
    if (command == "diff") return cmd_diff(args);
    if (command == "metrics") return cmd_metrics(args);
    if (command == "live") return cmd_live(args);
    usage_fail("unknown subcommand '" + command + "'");
  } catch (const UsageError& e) {
    std::fprintf(stderr, "cs_sync: usage error: %s\n", e.message.c_str());
    std::fprintf(stderr, "run 'cs_sync help' for the flag reference\n");
    return kExitUsage;
  } catch (const Error& e) {
    std::fprintf(stderr, "cs_sync: error: %s\n", e.what());
    return kExitError;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cs_sync: error: %s\n", e.what());
    return kExitError;
  }
}
