// Clock-rate (drift) extension: sim-level behavior.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <string>

#include "common/error.hpp"
#include "core/synchronizer.hpp"
#include "proto/ping_pong.hpp"
#include "sim/clock.hpp"
#include "sim/simulator.hpp"
#include "support/builders.hpp"

namespace cs {
namespace {

TEST(Clock, RateOneIsIdentity) {
  const Clock c(RealTime{2.0});
  EXPECT_DOUBLE_EQ(c.at(RealTime{3.5}).sec, 1.5);
  EXPECT_DOUBLE_EQ(c.real(ClockTime{1.5}).sec, 3.5);
}

TEST(Clock, RateScalesBothWays) {
  const Clock c(RealTime{1.0}, 2.0);
  EXPECT_DOUBLE_EQ(c.at(RealTime{2.0}).sec, 2.0);  // 1s real = 2s clock
  EXPECT_DOUBLE_EQ(c.real(ClockTime{2.0}).sec, 2.0);
  // Round trip at arbitrary points.
  for (double t : {0.0, 0.3, 7.7}) {
    const RealTime rt{t};
    EXPECT_NEAR(c.real(c.at(rt)).sec, t, 1e-12);
  }
}

TEST(Clock, RejectsInvalidRatesWithAThrownError) {
  // A real thrown Error, not a debug-only assert: these must fire in
  // release builds too, because campaign specs and CLI flags feed rates in
  // from user input (NDEBUG regression coverage lives right here — the
  // default CI build is Release).
  EXPECT_THROW(Clock(RealTime{0.0}, 0.0), Error);
  EXPECT_THROW(Clock(RealTime{0.0}, -1.0), Error);
  EXPECT_THROW(Clock(RealTime{0.0}, std::nan("")), Error);
  EXPECT_THROW(Clock(RealTime{0.0}, std::numeric_limits<double>::infinity()),
               Error);
  EXPECT_THROW(validated_clock_rate(-0.0), Error);
  EXPECT_NO_THROW(Clock(RealTime{0.0}, 1e-9));
  // The message names the offending value.
  try {
    validated_clock_rate(-2.0);
    FAIL() << "expected a throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("clock rate"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("-2.0"), std::string::npos);
  }
}

TEST(RateSchedule, ValidatesItsSegments) {
  EXPECT_THROW(RateSchedule({}), Error);
  EXPECT_THROW(RateSchedule({{1.0, 1.0}}), Error);  // must start at 0
  EXPECT_THROW(RateSchedule({{0.0, 1.0}, {0.0, 1.1}}), Error);  // not increasing
  EXPECT_THROW(RateSchedule({{0.0, 1.0}, {2.0, -1.0}}), Error);  // bad rate
  EXPECT_NO_THROW(RateSchedule({{0.0, 0.5}, {1.0, 2.0}}));
}

TEST(RateSchedule, PiecewiseClockIsExactlyInvertible) {
  // 1s at rate 2, then 1s at rate 0.5, then rate 1 forever.
  const RateSchedule s({{0.0, 2.0}, {1.0, 0.5}, {2.0, 1.0}});
  EXPECT_DOUBLE_EQ(s.rate_at(0.5), 2.0);
  EXPECT_DOUBLE_EQ(s.rate_at(1.5), 0.5);
  EXPECT_DOUBLE_EQ(s.rate_at(10.0), 1.0);   // last rate extends forever
  EXPECT_DOUBLE_EQ(s.rate_at(-1.0), 2.0);   // first rate extends backward
  EXPECT_DOUBLE_EQ(s.clock_at(1.0), 2.0);
  EXPECT_DOUBLE_EQ(s.clock_at(2.0), 2.5);
  EXPECT_DOUBLE_EQ(s.clock_at(3.0), 3.5);
  for (double t : {0.0, 0.7, 1.0, 1.9, 2.0, 5.3})
    EXPECT_NEAR(s.elapsed_at(s.clock_at(t)), t, 1e-12) << t;
}

TEST(RateSchedule, DrivesAClockThroughBothConversions) {
  const auto schedule =
      std::make_shared<const RateSchedule>(std::vector<RateSegment>{
          {0.0, 1.0 + 1e-4}, {10.0, 1.0 - 1e-4}});
  const Clock c(RealTime{5.0}, schedule);
  EXPECT_DOUBLE_EQ(c.rate(), 1.0 + 1e-4);
  EXPECT_DOUBLE_EQ(c.at(RealTime{15.0}).sec, 10.0 * (1.0 + 1e-4));
  for (double t : {5.0, 9.9, 15.0, 30.0})
    EXPECT_NEAR(c.real(c.at(RealTime{t})).sec, t, 1e-12) << t;
  // A null schedule degenerates to rate exactly 1.
  const Clock unit(RealTime{1.0}, std::shared_ptr<const RateSchedule>{});
  EXPECT_DOUBLE_EQ(unit.rate(), 1.0);
  EXPECT_DOUBLE_EQ(unit.at(RealTime{2.5}).sec, 1.5);
}

TEST(DriftSim, EmptyRatesMeansNoDrift) {
  const SystemModel model = test::bounded_model(make_line(2), 0.01, 0.02);
  const SimResult r = test::run_ping_pong(model, 3, 0.1);
  EXPECT_TRUE(model.admissible(r.execution));
}

TEST(DriftSim, UnitRatesAllowedWithAdmissibilityCheck) {
  SystemModel model = test::bounded_model(make_line(2), 0.01, 0.02);
  SimOptions opts;
  opts.start_offsets.assign(2, Duration{0.0});
  opts.clock_rates = {1.0, 1.0};
  opts.seed = 1;
  EXPECT_NO_THROW(simulate(model, make_ping_pong({}), opts));
}

TEST(DriftSim, DriftWithAdmissibilityCheckRejected) {
  SystemModel model = test::bounded_model(make_line(2), 0.01, 0.02);
  SimOptions opts;
  opts.start_offsets.assign(2, Duration{0.0});
  opts.clock_rates = {1.0, 1.0001};
  EXPECT_THROW(simulate(model, make_ping_pong({}), opts), Error);
}

TEST(DriftSim, RateValidation) {
  SystemModel model = test::bounded_model(make_line(2), 0.01, 0.02);
  SimOptions opts;
  opts.start_offsets.assign(2, Duration{0.0});
  opts.clock_rates = {1.0};  // wrong size
  EXPECT_THROW(simulate(model, make_ping_pong({}), opts), Error);
  opts.clock_rates = {1.0, -0.5};
  EXPECT_THROW(simulate(model, make_ping_pong({}), opts), Error);
}

TEST(DriftSim, FastClockFiresTimersEarlier) {
  // A processor with rate 2 reaches clock time `warmup` in half the real
  // time, so its pings are *sent* earlier in real time; the view still
  // shows the configured clock times.
  SystemModel model{make_line(2)};
  SimOptions opts;
  opts.start_offsets.assign(2, Duration{0.0});
  opts.clock_rates = {2.0, 1.0};
  opts.check_admissible = false;
  opts.seed = 5;
  PingPongParams params;
  params.warmup = Duration{1.0};
  params.rounds = 1;
  const SimResult r = simulate(model, make_ping_pong(params), opts);
  const auto views = r.execution.views();
  // Each processor's view shows its *ping* going out at clock time 1.0
  // regardless of rate (clock-driven behavior); p1 may have answered p0's
  // early ping with a pong before that.
  for (const View& v : views) {
    const auto sends = v.sends();
    ASSERT_FALSE(sends.empty());
    EXPECT_TRUE(std::any_of(sends.begin(), sends.end(), [](const auto& e) {
      return e.when.sec == 1.0;
    }));
  }
  // But p0's ping must have been *received* by p1 before p1's own send
  // happened (p0 reached clock 1.0 at real 0.5, delays ~0.1).
  const auto& p1_events = views[1].events;
  std::size_t recv_idx = 0, send_idx = 0;
  for (std::size_t i = 0; i < p1_events.size(); ++i) {
    if (p1_events[i].kind == EventKind::kReceive && recv_idx == 0)
      recv_idx = i;
    if (p1_events[i].kind == EventKind::kSend && send_idx == 0) send_idx = i;
  }
  EXPECT_LT(recv_idx, send_idx);
}

TEST(DriftSim, SmallDriftStillSynchronizable) {
  // End-to-end sanity for E9: tiny drift, pipeline still produces finite
  // corrections close to the drift-free ones.
  SystemModel model = test::bounded_model(make_ring(4), 0.002, 0.010);
  Rng rng(9);
  SimOptions opts;
  opts.start_offsets = random_start_offsets(4, 0.2, rng);
  opts.seed = 9;
  PingPongParams params;
  params.warmup = Duration{0.3};

  const SimResult clean = simulate(model, make_ping_pong(params), opts);

  opts.clock_rates = {1.0 + 1e-6, 1.0 - 1e-6, 1.0, 1.0 + 5e-7};
  opts.check_admissible = false;
  const SimResult drifty = simulate(model, make_ping_pong(params), opts);

  const auto clean_views = clean.execution.views();
  const auto drift_views = drifty.execution.views();
  const auto a = synchronize(model, clean_views);
  const auto b = synchronize(model, drift_views);
  ASSERT_TRUE(b.bounded());
  for (std::size_t p = 0; p < 4; ++p)
    EXPECT_NEAR(a.corrections[p], b.corrections[p], 1e-4);
}

}  // namespace
}  // namespace cs
