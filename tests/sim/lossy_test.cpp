// Failure injection: message loss.
#include <gtest/gtest.h>

#include "core/precision.hpp"
#include "core/synchronizer.hpp"
#include "proto/beacon.hpp"
#include "proto/ping_pong.hpp"
#include "support/builders.hpp"

namespace cs {
namespace {

std::vector<std::unique_ptr<DelaySampler>> lossy_samplers(
    const SystemModel& model, double lb, double ub, double loss) {
  std::vector<std::unique_ptr<DelaySampler>> out;
  for (std::size_t i = 0; i < model.topology().link_count(); ++i)
    out.push_back(
        make_lossy_sampler(make_uniform_sampler(lb, ub, lb, ub), loss));
  return out;
}

TEST(Lossy, TotalLossDeliversNothing) {
  SystemModel model = test::bounded_model(make_ring(4), 0.01, 0.05);
  SimOptions opts;
  opts.start_offsets.assign(4, Duration{0.0});
  opts.seed = 3;
  const SimResult r = simulate(model, make_ping_pong({}),
                               lossy_samplers(model, 0.01, 0.05, 1.0), opts);
  EXPECT_EQ(r.delivered_messages, 0u);
  EXPECT_GT(r.lost_messages, 0u);
  // Sends still appear in views; the instance is simply uninformative.
  const auto views = r.execution.views();
  EXPECT_FALSE(views[0].sends().empty());
  const SyncOutcome out = synchronize(model, views);
  EXPECT_FALSE(out.bounded());
}

TEST(Lossy, PartialLossStaysSoundAndAdmissible) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SystemModel model = test::bounded_model(make_complete(5), 0.01, 0.05);
    Rng rng(seed);
    SimOptions opts;
    opts.start_offsets = random_start_offsets(5, 0.2, rng);
    opts.seed = seed;
    PingPongParams params;
    params.warmup = Duration{0.3};
    params.rounds = 6;
    const SimResult r =
        simulate(model, make_ping_pong(params),
                 lossy_samplers(model, 0.01, 0.05, 0.4), opts);
    EXPECT_GT(r.lost_messages, 0u);
    EXPECT_GT(r.delivered_messages, 0u);
    EXPECT_TRUE(model.admissible(r.execution));
    const auto views = r.execution.views();
    const SyncOutcome out = synchronize(model, views);
    if (out.bounded()) {
      EXPECT_LE(realized_precision(r.execution.start_times(),
                                   out.corrections),
                out.optimal_precision.finite() + 1e-9);
    }
  }
}

TEST(Lossy, LossDegradesPrecisionMonotonically) {
  // Same delay stream with increasing loss: fewer observations, looser
  // (or equal) guaranteed precision.  Beacons are timer-driven, so the set
  // of sends — and hence the per-link draw sequence — is identical across
  // loss rates, and the delivered message sets shrink monotonically.
  SystemModel model = test::bounded_model(make_ring(5), 0.01, 0.05);
  double prev = 0.0;
  for (const double loss : {0.0, 0.3, 0.6}) {
    Rng rng(42);
    SimOptions opts;
    opts.start_offsets = random_start_offsets(5, 0.2, rng);
    opts.seed = 42;
    BeaconParams params;
    params.warmup = Duration{0.3};
    params.count = 10;
    const SimResult r =
        simulate(model, make_beacon(params),
                 lossy_samplers(model, 0.01, 0.05, loss), opts);
    const auto views = r.execution.views();
    const SyncOutcome out = synchronize(model, views);
    ASSERT_TRUE(out.bounded()) << "loss=" << loss;
    EXPECT_GE(out.optimal_precision.finite() + 1e-12, prev)
        << "loss=" << loss;
    prev = out.optimal_precision.finite();
  }
}

TEST(Lossy, ReorderingHandled) {
  // Wide uniform delays reorder messages heavily: a later-sent probe often
  // arrives first.  Pairing and estimation must be oblivious to ordering.
  SystemModel model = test::bounded_model(make_line(2), 0.001, 0.5);
  SimOptions opts;
  opts.start_offsets.assign(2, Duration{0.0});
  opts.seed = 8;
  PingPongParams params;
  params.warmup = Duration{0.1};
  params.spacing = Duration{0.01};  // spacing << delay spread
  params.rounds = 20;
  const SimResult r = simulate(model, make_ping_pong(params), opts);

  // Verify reordering actually occurred: receives out of msg-id order.
  const auto views = r.execution.views();
  bool reordered = false;
  MessageId last = 0;
  for (const ViewEvent& e : views[1].events) {
    if (e.kind != EventKind::kReceive) continue;
    if (e.msg < last) reordered = true;
    last = std::max(last, e.msg);
  }
  EXPECT_TRUE(reordered);

  const SyncOutcome out = synchronize(model, views);
  ASSERT_TRUE(out.bounded());
  EXPECT_LE(realized_precision(r.execution.start_times(), out.corrections),
            out.optimal_precision.finite() + 1e-9);
}

}  // namespace
}  // namespace cs
