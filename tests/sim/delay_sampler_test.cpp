#include "sim/delay_sampler.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"

namespace cs {
namespace {

TEST(DelaySampler, ConstantPerDirection) {
  Rng rng(1);
  auto s = make_constant_sampler(0.1, 0.2);
  EXPECT_DOUBLE_EQ(s->sample(true, RealTime{}, rng), 0.1);
  EXPECT_DOUBLE_EQ(s->sample(false, RealTime{}, rng), 0.2);
}

TEST(DelaySampler, UniformWithinRange) {
  Rng rng(2);
  auto s = make_uniform_sampler(0.1, 0.3, 0.5, 0.9);
  for (int i = 0; i < 1000; ++i) {
    const double ab = s->sample(true, RealTime{}, rng);
    EXPECT_GE(ab, 0.1);
    EXPECT_LE(ab, 0.3);
    const double ba = s->sample(false, RealTime{}, rng);
    EXPECT_GE(ba, 0.5);
    EXPECT_LE(ba, 0.9);
  }
}

TEST(DelaySampler, ShiftedExponentialRespectsBounds) {
  Rng rng(3);
  auto s = make_shifted_exponential_sampler(0.05, 0.1, 0.4);
  for (int i = 0; i < 1000; ++i) {
    const double d = s->sample(true, RealTime{}, rng);
    EXPECT_GE(d, 0.05);
    EXPECT_LE(d, 0.4);
  }
}

TEST(DelaySampler, ShiftedParetoAboveLowerBound) {
  Rng rng(4);
  auto s = make_shifted_pareto_sampler(0.02, 0.01, 1.5);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(s->sample(true, RealTime{}, rng), 0.02);
}

TEST(DelaySampler, BiasCorrelatedWithinWindow) {
  Rng rng(5);
  const double center = 0.3, bias = 0.1;
  auto s = make_bias_correlated_sampler(center, bias);
  double lo = 1e9, hi = -1e9;
  for (int i = 0; i < 2000; ++i) {
    const double d = s->sample(i % 2 == 0, RealTime{}, rng);
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  EXPECT_GE(lo, center - bias / 2.0 - 1e-12);
  EXPECT_LE(hi, center + bias / 2.0 + 1e-12);
  EXPECT_LE(hi - lo, bias + 1e-12);
}

class AdmissibleSamplerTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AdmissibleSamplerTest, OutputAdmissibleUnderConstraint) {
  Rng setup(GetParam());
  std::vector<std::unique_ptr<LinkConstraint>> constraints;
  constraints.push_back(make_bounds(0, 1, 0.01, 0.05));
  constraints.push_back(make_lower_bound_only(0, 1, 0.02));
  constraints.push_back(make_no_bounds(0, 1));
  constraints.push_back(make_bias(0, 1, 0.015));
  {
    std::vector<std::unique_ptr<LinkConstraint>> parts;
    parts.push_back(make_bounds(0, 1, 0.01, 0.08));
    parts.push_back(make_bias(0, 1, 0.02));
    constraints.push_back(make_composite(0, 1, std::move(parts)));
  }

  for (const auto& c : constraints) {
    Rng rng(GetParam() * 977 + 13);
    auto sampler = make_admissible_sampler(*c, /*scale=*/0.05, setup);
    LinkDelays delays;
    for (int i = 0; i < 200; ++i) {
      delays.a_to_b.push_back(sampler->sample(true, RealTime{}, rng));
      delays.b_to_a.push_back(sampler->sample(false, RealTime{}, rng));
    }
    EXPECT_TRUE(c->admits(delays)) << c->describe();
    for (double d : delays.a_to_b) EXPECT_GE(d, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdmissibleSamplerTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(DelaySampler, FactoriesRejectInvalidConfigs) {
  // Regression: these used to be assert()s (no-ops in release), letting
  // constraint-violating samplers generate inadmissible executions
  // silently.  Every factory must throw cs::Error instead.
  EXPECT_THROW(make_uniform_sampler(0.3, 0.1, 0.1, 0.3), Error);
  EXPECT_THROW(make_uniform_sampler(0.1, 0.3, 0.3, 0.1), Error);
  EXPECT_THROW(make_shifted_exponential_sampler(0.05, 0.0), Error);
  // Clip ub below lb: the min-clip would emit below the lower bound.
  EXPECT_THROW(make_shifted_exponential_sampler(0.05, 0.1, 0.04), Error);
  EXPECT_THROW(make_shifted_pareto_sampler(0.02, 0.0, 1.5), Error);
  EXPECT_THROW(make_shifted_pareto_sampler(0.02, 0.01, -1.0), Error);
  EXPECT_THROW(make_shifted_pareto_sampler(0.05, 0.01, 1.5, 0.04), Error);
  EXPECT_THROW(make_bias_correlated_sampler(0.3, -0.1), Error);
  // Floor past the window's upper edge: uniform(lo, hi) with hi < lo
  // would emit *below* the floor.
  EXPECT_THROW(make_bias_correlated_sampler(0.3, 0.1, 0.4), Error);
  EXPECT_THROW(
      make_drifting_congestion_sampler(0.3, 0.1, 0.0, 0.05), Error);
  EXPECT_THROW(
      make_drifting_congestion_sampler(0.1, 0.2, 1.0, 0.05), Error);
  EXPECT_THROW(
      make_lossy_sampler(make_constant_sampler(0.1, 0.1), 1.5), Error);
  EXPECT_THROW(
      make_lossy_sampler(make_constant_sampler(0.1, 0.1), -0.1), Error);
}

TEST(DelaySampler, BiasFloorClipsWithoutEmptyingTheWindow) {
  // floor inside [center - bias/2, center + bias/2] is legitimate
  // clipping, not an error — and the floor must hold.
  Rng rng(6);
  auto s = make_bias_correlated_sampler(0.05, 0.2, 0.03);
  for (int i = 0; i < 1000; ++i) {
    const double d = s->sample(i % 2 == 0, RealTime{}, rng);
    EXPECT_GE(d, 0.03);
    EXPECT_LE(d, 0.05 + 0.1 + 1e-12);
  }
}

TEST(AdmissibleSampler, JointlyUnsatisfiableThrows) {
  // Bounds force the two directions at least 1.0 apart, bias allows 0.1.
  std::vector<std::unique_ptr<LinkConstraint>> parts;
  parts.push_back(make_bounds(0, 1, Interval{ExtReal{0.0}, ExtReal{0.1}},
                              Interval{ExtReal{2.0}, ExtReal{3.0}}));
  parts.push_back(make_bias(0, 1, 0.1));
  const auto c = make_composite(0, 1, std::move(parts));
  Rng rng(9);
  EXPECT_THROW(make_admissible_sampler(*c, 0.05, rng), InvalidAssumption);
}

}  // namespace
}  // namespace cs
