#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace cs {
namespace {

SimEvent start_event(ProcessorId p) {
  SimEvent e;
  e.kind = SimEvent::Kind::kStart;
  e.processor = p;
  return e;
}

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  q.push(RealTime{3.0}, start_event(3));
  q.push(RealTime{1.0}, start_event(1));
  q.push(RealTime{2.0}, start_event(2));
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.next_time(), RealTime{1.0});
  EXPECT_EQ(q.pop().processor, 1u);
  EXPECT_EQ(q.pop().processor, 2u);
  EXPECT_EQ(q.pop().processor, 3u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, FifoOnTies) {
  EventQueue q;
  for (ProcessorId p = 0; p < 5; ++p) q.push(RealTime{1.0}, start_event(p));
  for (ProcessorId p = 0; p < 5; ++p) EXPECT_EQ(q.pop().processor, p);
}

TEST(EventQueue, InterleavedPushPop) {
  EventQueue q;
  q.push(RealTime{5.0}, start_event(5));
  q.push(RealTime{1.0}, start_event(1));
  EXPECT_EQ(q.pop().processor, 1u);
  q.push(RealTime{3.0}, start_event(3));
  EXPECT_EQ(q.pop().processor, 3u);
  EXPECT_EQ(q.pop().processor, 5u);
}

TEST(EventQueue, NegativeTimesSupported) {
  // Shifted executions can have events before real time 0.
  EventQueue q;
  q.push(RealTime{0.0}, start_event(0));
  q.push(RealTime{-1.0}, start_event(1));
  EXPECT_EQ(q.pop().processor, 1u);
}

TEST(EventQueue, EmptyQueueThrowsInsteadOfUb) {
  // Regression: next_time()/pop() on an empty queue used to be undefined
  // behavior in release builds; they must throw.
  EventQueue q;
  EXPECT_THROW(q.next_time(), Error);
  EXPECT_THROW(q.pop(), Error);
  // A drained queue behaves like a never-filled one.
  q.push(RealTime{1.0}, start_event(0));
  q.pop();
  EXPECT_THROW(q.next_time(), Error);
  EXPECT_THROW(q.pop(), Error);
}

}  // namespace
}  // namespace cs
