// Fault injection: drops, duplication, spikes, link outages, crashes —
// and the determinism contract (fixed seeds => identical traces and
// identical fault metrics).
#include "sim/fault_plan.hpp"

#include <gtest/gtest.h>

#include <map>

#include "common/error.hpp"
#include "graph/topology.hpp"
#include "model/pairing.hpp"
#include "proto/beacon.hpp"
#include "sim/simulator.hpp"
#include "support/builders.hpp"

namespace cs {
namespace {

SimOptions base_options(std::size_t n, std::uint64_t seed,
                        const FaultPlan* plan, Metrics* metrics) {
  SimOptions opts;
  opts.start_offsets.assign(n, Duration{0.0});
  opts.seed = seed;
  opts.faults = plan;
  opts.metrics = metrics;
  return opts;
}

BeaconParams dense_beacons() {
  BeaconParams params;
  params.warmup = Duration{0.3};
  params.period = Duration{0.05};
  params.count = 20;
  return params;
}

TEST(FaultPlan, ValidatesParameters) {
  const SystemModel model = test::bounded_model(make_ring(3), 0.01, 0.05);
  {
    FaultPlan plan;
    plan.default_link.drop_probability = 1.5;
    EXPECT_THROW(FaultInjector(plan, 3, nullptr), Error);
  }
  {
    FaultPlan plan;
    plan.link(0, 1).duplicate_lag = -0.1;
    EXPECT_THROW(FaultInjector(plan, 3, nullptr), Error);
  }
  {
    FaultPlan plan;
    plan.default_link.spike_probability = 0.5;  // magnitude left at 0
    EXPECT_THROW(FaultInjector(plan, 3, nullptr), Error);
  }
  {
    FaultPlan plan;
    plan.default_link.down.push_back(
        TimeWindow{RealTime{2.0}, RealTime{1.0}});
    EXPECT_THROW(FaultInjector(plan, 3, nullptr), Error);
  }
  {
    FaultPlan plan;
    plan.crash(0, RealTime{3.0}, RealTime{1.0});
    EXPECT_THROW(
        simulate(model, make_beacon(dense_beacons()),
                 base_options(3, 1, &plan, nullptr)),
        Error);
  }
}

TEST(FaultPlan, CrashWindowMustNotCoverStart) {
  const SystemModel model = test::bounded_model(make_line(2), 0.01, 0.05);
  FaultPlan plan;
  plan.crash(1, RealTime{-1.0}, RealTime{0.5});  // start is at 0
  EXPECT_THROW(simulate(model, make_beacon(dense_beacons()),
                        base_options(2, 1, &plan, nullptr)),
               Error);
}

TEST(FaultPlan, DeterministicGivenSeeds) {
  const SystemModel model = test::bounded_model(make_ring(5), 0.01, 0.05);
  FaultPlan plan;
  plan.default_link.drop_probability = 0.3;
  plan.default_link.duplicate_probability = 0.2;
  plan.default_link.spike_probability = 0.1;
  plan.default_link.spike_magnitude = 0.2;
  plan.crash(2, RealTime{0.8}, RealTime{1.2});

  auto run = [&](Metrics& m) {
    return simulate(model, make_beacon(dense_beacons()),
                    base_options(5, 7, &plan, &m));
  };
  Metrics m1, m2;
  const SimResult r1 = run(m1);
  const SimResult r2 = run(m2);
  EXPECT_EQ(r1.execution.views(), r2.execution.views());
  EXPECT_EQ(r1.delivered_messages, r2.delivered_messages);
  EXPECT_EQ(r1.fault_dropped_messages, r2.fault_dropped_messages);
  EXPECT_EQ(r1.duplicated_messages, r2.duplicated_messages);
  EXPECT_EQ(r1.crash_dropped_deliveries, r2.crash_dropped_deliveries);
  EXPECT_EQ(r1.suppressed_timers, r2.suppressed_timers);
  EXPECT_EQ(m1.counters(), m2.counters());
  EXPECT_GT(m1.counter("fault.dropped"), 0u);
  EXPECT_GT(m1.counter("fault.duplicated"), 0u);
  EXPECT_GT(m1.counter("fault.delay_spikes"), 0u);
}

TEST(FaultPlan, DropsReduceDeliveriesAndStayAdmissible) {
  const SystemModel model = test::bounded_model(make_complete(4), 0.01, 0.05);
  Metrics metrics;
  FaultPlan plan;
  plan.default_link.drop_probability = 0.4;
  const SimResult faulty =
      simulate(model, make_beacon(dense_beacons()),
               base_options(4, 11, &plan, &metrics));
  const SimResult clean = simulate(model, make_beacon(dense_beacons()),
                                   base_options(4, 11, nullptr, nullptr));
  EXPECT_EQ(metrics.counter("fault.dropped"),
            faulty.fault_dropped_messages);
  EXPECT_GT(faulty.fault_dropped_messages, 0u);
  EXPECT_EQ(clean.delivered_messages,
            faulty.delivered_messages + faulty.fault_dropped_messages);
  // Omission faults keep the execution admissible, and the simulator's own
  // post-hoc check stayed on (it would have thrown otherwise).
  EXPECT_TRUE(model.admissible(faulty.execution));
}

TEST(FaultPlan, DuplicationRedeliversSameId) {
  const SystemModel model = test::bounded_model(make_line(2), 0.01, 0.05);
  Metrics metrics;
  FaultPlan plan;
  plan.default_link.duplicate_probability = 1.0;
  plan.default_link.duplicate_lag = 0.01;
  const SimResult r = simulate(model, make_beacon(dense_beacons()),
                               base_options(2, 3, &plan, &metrics));
  EXPECT_GT(r.duplicated_messages, 0u);
  EXPECT_EQ(r.duplicated_messages, metrics.counter("fault.duplicated"));

  // Every message id is received exactly twice.
  const auto views = r.execution.views();
  std::map<MessageId, std::size_t> copies;
  for (const View& v : views)
    for (const ViewEvent& e : v.events)
      if (e.kind == EventKind::kReceive) ++copies[e.msg];
  ASSERT_FALSE(copies.empty());
  for (const auto& [id, n] : copies) EXPECT_EQ(n, 2u) << "msg " << id;

  // Strict pairing rejects the duplicates; orphan-dropping pairing keeps
  // exactly one copy per send.
  EXPECT_THROW(pair_messages(views, MatchPolicy::kStrict),
               InvalidExecution);
  PairingStats stats;
  const auto paired =
      pair_messages(views, MatchPolicy::kDropOrphans, &stats);
  EXPECT_EQ(paired.size(), copies.size());
  EXPECT_EQ(stats.duplicate_receives, copies.size());
}

TEST(FaultPlan, LinkDownWindowSilencesTheLink) {
  const SystemModel model = test::bounded_model(make_line(2), 0.01, 0.05);
  Metrics metrics;
  FaultPlan plan;
  // Link is down for the whole run: beacons start at 0.3.
  plan.link(0, 1).down.push_back(TimeWindow{RealTime{0.0}});
  const SimResult r = simulate(model, make_beacon(dense_beacons()),
                               base_options(2, 5, &plan, &metrics));
  EXPECT_EQ(r.delivered_messages, 0u);
  EXPECT_GT(metrics.counter("fault.link_down_drops"), 0u);
  EXPECT_EQ(r.fault_dropped_messages,
            metrics.counter("fault.link_down_drops"));
}

TEST(FaultPlan, CrashedProcessorReceivesNothingAndMissesTimers) {
  const SystemModel model = test::bounded_model(make_ring(4), 0.01, 0.05);
  Metrics metrics;
  FaultPlan plan;
  plan.crash(2, RealTime{0.1});  // no restart; beacons begin at 0.3
  const SimResult r = simulate(model, make_beacon(dense_beacons()),
                               base_options(4, 9, &plan, &metrics));
  EXPECT_GT(r.crash_dropped_deliveries, 0u);
  EXPECT_GT(r.suppressed_timers, 0u);
  const auto views = r.execution.views();
  EXPECT_TRUE(views[2].receives().empty());
  EXPECT_TRUE(views[2].sends().empty());
  // The survivors keep talking among themselves.
  EXPECT_FALSE(views[0].receives().empty());
}

TEST(FaultPlan, CrashRestartResumesDeliveries) {
  const SystemModel model = test::bounded_model(make_line(2), 0.001, 0.002);
  Metrics metrics;
  FaultPlan plan;
  plan.crash(1, RealTime{0.4}, RealTime{0.8});
  const SimResult r = simulate(model, make_beacon(dense_beacons()),
                               base_options(2, 13, &plan, &metrics));
  EXPECT_GT(r.crash_dropped_deliveries, 0u);
  // Beacons run from 0.3 to ~1.3; receives exist before 0.4 and after 0.8
  // on processor 1's clock (rate 1, start offset 0).
  bool before = false, after = false;
  for (const ViewEvent& e : r.execution.views()[1].receives()) {
    if (e.when < ClockTime{0.4}) before = true;
    if (e.when >= ClockTime{0.8}) after = true;
  }
  EXPECT_TRUE(before);
  EXPECT_TRUE(after);
}

TEST(FaultPlan, SpikesViolateAssumptionsAndSkipTheCheck) {
  const SystemModel model = test::bounded_model(make_line(2), 0.01, 0.05);
  FaultPlan plan;
  plan.default_link.spike_probability = 1.0;
  plan.default_link.spike_magnitude = 1.0;
  // check_admissible stays at its default (true): the simulator must skip
  // it for a spiking plan rather than reject its own execution.
  const SimResult r = simulate(model, make_beacon(dense_beacons()),
                               base_options(2, 17, &plan, nullptr));
  EXPECT_GT(r.delivered_messages, 0u);
  EXPECT_FALSE(model.admissible(r.execution));
}

TEST(FaultPlan, BaseDelayStreamAlignedWithFaultFreeRun) {
  // Timer-driven beacons send the same messages in the same order whether
  // or not faults fire, and fault randomness lives on separate streams —
  // so every message delivered in BOTH runs must realize the same delay.
  const SystemModel model = test::bounded_model(make_line(2), 0.01, 0.05);
  FaultPlan plan;
  plan.default_link.drop_probability = 0.5;
  const SimResult faulty = simulate(model, make_beacon(dense_beacons()),
                                    base_options(2, 23, &plan, nullptr));
  const SimResult clean = simulate(model, make_beacon(dense_beacons()),
                                   base_options(2, 23, nullptr, nullptr));

  std::map<MessageId, double> clean_delay;
  for (const TracedMessage& t : trace_messages(clean.execution))
    clean_delay[t.msg.id] = t.delay().sec;
  std::size_t compared = 0;
  for (const TracedMessage& t : trace_messages(faulty.execution)) {
    const auto it = clean_delay.find(t.msg.id);
    ASSERT_NE(it, clean_delay.end());
    EXPECT_DOUBLE_EQ(t.delay().sec, it->second);
    ++compared;
  }
  EXPECT_GT(compared, 0u);
  EXPECT_LT(compared, clean_delay.size());  // some were dropped
}

}  // namespace
}  // namespace cs
