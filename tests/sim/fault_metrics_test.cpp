// Consistency of the two fault-accounting channels: the SimResult summary
// tallies and the "fault.*" counters in SimOptions::metrics must describe
// the same run (docs/FAULTS.md pins the schema).

#include <gtest/gtest.h>

#include "common/metrics.hpp"
#include "proto/beacon.hpp"
#include "sim/fault_plan.hpp"
#include "sim/simulator.hpp"
#include "support/builders.hpp"

namespace cs {
namespace {

TEST(FaultMetrics, TalliesMatchCounters) {
  SystemModel model = test::bounded_model(make_ring(6), 0.002, 0.010);

  FaultPlan plan;
  plan.seed = 99;
  plan.default_link.drop_probability = 0.2;
  plan.default_link.duplicate_probability = 0.1;
  plan.default_link.spike_probability = 0.1;
  plan.default_link.spike_magnitude = 0.02;
  plan.link(2, 3).down.push_back(TimeWindow{RealTime{0.5}, RealTime{1.5}});
  plan.crash(5, RealTime{1.0});

  Metrics metrics;
  SimOptions opts;
  opts.start_offsets.assign(6, Duration{0.0});
  opts.seed = 17;
  opts.faults = &plan;
  opts.metrics = &metrics;

  BeaconParams probe;
  probe.warmup = Duration{0.1};
  probe.period = Duration{0.05};
  probe.count = 50;
  const SimResult sim = simulate(model, make_beacon(probe), opts);

  // The run must actually exercise every fault path, or the assertions
  // below are vacuous.
  ASSERT_GT(sim.fault_dropped_messages, 0u);
  ASSERT_GT(sim.duplicated_messages, 0u);
  ASSERT_GT(sim.crash_dropped_deliveries, 0u);
  ASSERT_GT(metrics.counter("fault.link_down_drops"), 0u);
  ASSERT_GT(metrics.counter("fault.delay_spikes"), 0u);

  // SimResult folds random drops and outage drops into one tally; the
  // counters carry the split.
  EXPECT_EQ(sim.fault_dropped_messages,
            metrics.counter("fault.dropped") +
                metrics.counter("fault.link_down_drops"));
  EXPECT_EQ(sim.duplicated_messages, metrics.counter("fault.duplicated"));
  EXPECT_EQ(sim.crash_dropped_deliveries,
            metrics.counter("fault.crash_dropped_deliveries"));
  EXPECT_EQ(sim.suppressed_timers,
            metrics.counter("fault.suppressed_timers"));
}

TEST(FaultMetrics, FaultFreeRunHasZeroFaultCounters) {
  SystemModel model = test::bounded_model(make_ring(4), 0.002, 0.010);
  Metrics metrics;
  SimOptions opts;
  opts.start_offsets.assign(4, Duration{0.0});
  opts.seed = 3;
  opts.metrics = &metrics;

  BeaconParams probe;
  probe.warmup = Duration{0.1};
  probe.period = Duration{0.05};
  probe.count = 10;
  const SimResult sim = simulate(model, make_beacon(probe), opts);

  EXPECT_EQ(sim.fault_dropped_messages, 0u);
  EXPECT_EQ(sim.duplicated_messages, 0u);
  EXPECT_EQ(sim.crash_dropped_deliveries, 0u);
  EXPECT_EQ(sim.suppressed_timers, 0u);
  for (const auto& [name, value] : metrics.counters())
    if (name.rfind("fault.", 0) == 0)
      EXPECT_EQ(value, 0u) << name;
}

}  // namespace
}  // namespace cs
