#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "proto/ping_pong.hpp"
#include "support/builders.hpp"

namespace cs {
namespace {

TEST(Simulator, DeterministicGivenSeed) {
  const SystemModel model = test::bounded_model(make_ring(4), 0.01, 0.05);
  const SimResult a = test::run_ping_pong(model, /*seed=*/7, /*skew=*/0.3);
  const SimResult b = test::run_ping_pong(model, /*seed=*/7, /*skew=*/0.3);
  EXPECT_TRUE(a.execution.equivalent_to(b.execution));
  // Full equality including real times: same start times too.
  for (ProcessorId p = 0; p < 4; ++p)
    EXPECT_EQ(a.execution.start_times()[p], b.execution.start_times()[p]);
  EXPECT_EQ(a.delivered_messages, b.delivered_messages);
}

TEST(Simulator, DifferentSeedsDiffer) {
  const SystemModel model = test::bounded_model(make_ring(4), 0.01, 0.05);
  const SimResult a = test::run_ping_pong(model, 7, 0.3);
  const SimResult b = test::run_ping_pong(model, 8, 0.3);
  EXPECT_FALSE(a.execution.equivalent_to(b.execution));
}

TEST(Simulator, PingPongMessageCount) {
  // Each of n processors sends `rounds` pings to each neighbor, each ping
  // is answered by one pong: total = 2 * rounds * directed-link-count.
  const std::size_t rounds = 3;
  const SystemModel model = test::bounded_model(make_ring(5), 0.01, 0.05);
  const SimResult r = test::run_ping_pong(model, 3, 0.2, rounds);
  const std::size_t directed_links = 2 * model.topology().link_count();
  EXPECT_EQ(r.delivered_messages, 2 * rounds * directed_links);
}

TEST(Simulator, ExecutionIsAdmissible) {
  const SystemModel model = test::bounded_model(make_complete(4), 0.02, 0.09);
  const SimResult r = test::run_ping_pong(model, 11, 0.5);
  EXPECT_TRUE(model.admissible(r.execution));
}

TEST(Simulator, DelaysWithinDeclaredBounds) {
  const SystemModel model = test::bounded_model(make_line(3), 0.02, 0.04);
  const SimResult r = test::run_ping_pong(model, 5, 0.1);
  for (const TracedMessage& m : trace_messages(r.execution)) {
    EXPECT_GE(m.delay().sec, 0.02 - 1e-12);
    EXPECT_LE(m.delay().sec, 0.04 + 1e-12);
  }
}

TEST(Simulator, StartOffsetsRespected) {
  SystemModel model = test::bounded_model(make_line(2), 0.01, 0.02);
  SimOptions opts;
  opts.start_offsets = {Duration{0.25}, Duration{1.75}};
  opts.seed = 1;
  PingPongParams params;
  params.warmup = Duration{2.0};  // exceeds the start skew
  const SimResult r = simulate(model, make_ping_pong(params), opts);
  EXPECT_EQ(r.execution.start_times()[0], RealTime{0.25});
  EXPECT_EQ(r.execution.start_times()[1], RealTime{1.75});
}

TEST(Simulator, RejectsWrongOffsetCount) {
  SystemModel model = test::bounded_model(make_line(2), 0.01, 0.02);
  SimOptions opts;
  opts.start_offsets = {Duration{0.0}};
  EXPECT_THROW(simulate(model, make_ping_pong({}), opts), Error);
}

TEST(Simulator, RejectsNegativeOffsets) {
  SystemModel model = test::bounded_model(make_line(2), 0.01, 0.02);
  SimOptions opts;
  opts.start_offsets = {Duration{0.0}, Duration{-0.1}};
  EXPECT_THROW(simulate(model, make_ping_pong({}), opts), Error);
}

// Automaton that misbehaves: sends to a non-neighbor.
class BadSender final : public Automaton {
 public:
  void on_start(Context& ctx) override {
    if (ctx.self() == 0) ctx.send(2, Payload{});
  }
  void on_message(Context&, const Message&) override {}
  void on_timer(Context&, ClockTime) override {}
};

TEST(Simulator, SendToNonNeighborThrows) {
  SystemModel model = test::bounded_model(make_line(3), 0.01, 0.02);
  SimOptions opts;
  opts.start_offsets.assign(3, Duration{0.0});
  const AutomatonFactory factory = [](ProcessorId) {
    return std::make_unique<BadSender>();
  };
  EXPECT_THROW(simulate(model, factory, opts), Error);
}

// Automaton that sets a timer in the past.
class PastTimer final : public Automaton {
 public:
  void on_start(Context& ctx) override {
    ctx.set_timer(ctx.now() - Duration{1.0});
  }
  void on_message(Context&, const Message&) override {}
  void on_timer(Context&, ClockTime) override {}
};

TEST(Simulator, PastTimerThrows) {
  SystemModel model = test::bounded_model(make_line(2), 0.01, 0.02);
  SimOptions opts;
  opts.start_offsets.assign(2, Duration{0.0});
  const AutomatonFactory factory = [](ProcessorId) {
    return std::make_unique<PastTimer>();
  };
  EXPECT_THROW(simulate(model, factory, opts), Error);
}

// Automaton that sends immediately at start (no warmup): deliveries that
// would land before the receiver's start must be deferred, not crash.
class EagerSender final : public Automaton {
 public:
  void on_start(Context& ctx) override {
    for (ProcessorId nb : ctx.neighbors()) ctx.send(nb, Payload{});
  }
  void on_message(Context&, const Message&) override {}
  void on_timer(Context&, ClockTime) override {}
};

TEST(Simulator, DeliveryBeforeReceiverStartIsDeferred) {
  SystemModel model{make_line(2)};  // no-bounds constraints
  SimOptions opts;
  opts.start_offsets = {Duration{0.0}, Duration{5.0}};  // huge skew
  opts.seed = 3;
  opts.delay_scale = 0.01;  // delays far smaller than the skew
  const AutomatonFactory factory = [](ProcessorId) {
    return std::make_unique<EagerSender>();
  };
  const SimResult r = simulate(model, factory, opts);
  EXPECT_EQ(r.delivered_messages, 2u);
  // The message 0 -> 1 waited for 1's start: its actual delay ~5s.
  for (const TracedMessage& m : trace_messages(r.execution))
    if (m.msg.from == 0) {
      EXPECT_GE(m.delay().sec, 5.0 - 1e-9);
    }
}

// Automaton that floods itself forever: the runaway guard must trip.
class InfiniteLoop final : public Automaton {
 public:
  void on_start(Context& ctx) override { bounce(ctx); }
  void on_message(Context& ctx, const Message&) override { bounce(ctx); }
  void on_timer(Context&, ClockTime) override {}

 private:
  static void bounce(Context& ctx) {
    for (ProcessorId nb : ctx.neighbors()) ctx.send(nb, Payload{});
  }
};

TEST(Simulator, MaxEventsGuard) {
  SystemModel model{make_line(2)};
  SimOptions opts;
  opts.start_offsets.assign(2, Duration{0.0});
  opts.max_events = 1000;
  const AutomatonFactory factory = [](ProcessorId) {
    return std::make_unique<InfiniteLoop>();
  };
  EXPECT_THROW(simulate(model, factory, opts), Error);
}

TEST(Simulator, TimerEventsRecordedInViews) {
  SystemModel model = test::bounded_model(make_line(2), 0.01, 0.02);
  SimOptions opts;
  opts.start_offsets.assign(2, Duration{0.0});
  opts.seed = 1;
  PingPongParams params;
  params.rounds = 2;
  const SimResult r = simulate(model, make_ping_pong(params), opts);
  const auto views = r.execution.views();
  std::size_t sets = 0, fires = 0;
  for (const ViewEvent& e : views[0].events) {
    sets += (e.kind == EventKind::kTimerSet);
    fires += (e.kind == EventKind::kTimerFire);
  }
  EXPECT_EQ(sets, 2u);
  EXPECT_EQ(fires, 2u);
}

TEST(Simulator, CustomSamplersPerLink) {
  SystemModel model = test::bounded_model(make_line(2), 0.0, 1.0);
  SimOptions opts;
  opts.start_offsets.assign(2, Duration{0.0});
  std::vector<std::unique_ptr<DelaySampler>> samplers;
  samplers.push_back(make_constant_sampler(0.123, 0.456));
  const SimResult r =
      simulate(model, make_ping_pong({}), std::move(samplers), opts);
  for (const TracedMessage& m : trace_messages(r.execution)) {
    const double expect = (m.msg.from == 0) ? 0.123 : 0.456;
    EXPECT_NEAR(m.delay().sec, expect, 1e-12);
  }
}

TEST(Simulator, AdmissibilityCheckCatchesBadSamplers) {
  SystemModel model = test::bounded_model(make_line(2), 0.01, 0.02);
  SimOptions opts;
  opts.start_offsets.assign(2, Duration{0.0});
  std::vector<std::unique_ptr<DelaySampler>> samplers;
  samplers.push_back(make_constant_sampler(0.5, 0.5));  // way above ub
  EXPECT_THROW(
      simulate(model, make_ping_pong({}), std::move(samplers), opts),
      InvalidExecution);
}

}  // namespace
}  // namespace cs
