// Payload integrity through the simulator: what an automaton sends is what
// the peer's on_message receives, verbatim.
#include <gtest/gtest.h>

#include "support/builders.hpp"

namespace cs {
namespace {

struct Received {
  std::vector<Payload> payloads;
};

class EchoProbe final : public Automaton {
 public:
  EchoProbe(ProcessorId self, Received* sink) : self_(self), sink_(sink) {}

  void on_start(Context& ctx) override {
    if (self_ != 0) return;
    Payload p;
    p.tag = 0xBEEF;
    p.data = {1.5, -2.25, 1e-9, 0.0};
    ctx.send(1, p);
  }

  void on_message(Context& ctx, const Message& msg) override {
    sink_->payloads.push_back(msg.payload);
    if (msg.payload.tag == 0xBEEF) {
      Payload back;
      back.tag = 0xCAFE;
      back.data = msg.payload.data;  // echo
      back.data.push_back(static_cast<double>(msg.from));
      ctx.send(msg.from, back);
    }
  }

  void on_timer(Context&, ClockTime) override {}

 private:
  ProcessorId self_;
  Received* sink_;
};

TEST(Payload, RoundTripsThroughTheSimulator) {
  SystemModel model = test::bounded_model(make_line(2), 0.001, 0.002);
  Received sink;
  SimOptions opts;
  opts.start_offsets.assign(2, Duration{0.0});
  opts.seed = 1;
  const AutomatonFactory factory = [&sink](ProcessorId p) {
    return std::make_unique<EchoProbe>(p, &sink);
  };
  const SimResult r = simulate(model, factory, opts);
  EXPECT_EQ(r.delivered_messages, 2u);
  ASSERT_EQ(sink.payloads.size(), 2u);

  const Payload& probe = sink.payloads[0];
  EXPECT_EQ(probe.tag, 0xBEEFu);
  ASSERT_EQ(probe.data.size(), 4u);
  EXPECT_DOUBLE_EQ(probe.data[0], 1.5);
  EXPECT_DOUBLE_EQ(probe.data[1], -2.25);
  EXPECT_DOUBLE_EQ(probe.data[2], 1e-9);

  const Payload& echo = sink.payloads[1];
  EXPECT_EQ(echo.tag, 0xCAFEu);
  ASSERT_EQ(echo.data.size(), 5u);
  EXPECT_DOUBLE_EQ(echo.data[4], 0.0);  // echoed sender id
}

TEST(Payload, NeighborsAreSortedAndCorrect) {
  SystemModel model = test::bounded_model(make_star(4), 0.001, 0.002);
  std::vector<std::vector<ProcessorId>> seen(4);
  struct Snoop final : Automaton {
    std::vector<ProcessorId>* out;
    explicit Snoop(std::vector<ProcessorId>* o) : out(o) {}
    void on_start(Context& ctx) override {
      out->assign(ctx.neighbors().begin(), ctx.neighbors().end());
    }
    void on_message(Context&, const Message&) override {}
    void on_timer(Context&, ClockTime) override {}
  };
  SimOptions opts;
  opts.start_offsets.assign(4, Duration{0.0});
  const AutomatonFactory factory = [&seen](ProcessorId p) {
    return std::make_unique<Snoop>(&seen[p]);
  };
  simulate(model, factory, opts);
  EXPECT_EQ(seen[0], (std::vector<ProcessorId>{1, 2, 3}));
  for (ProcessorId p = 1; p < 4; ++p)
    EXPECT_EQ(seen[p], std::vector<ProcessorId>{0});
}

}  // namespace
}  // namespace cs
