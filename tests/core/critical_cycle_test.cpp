#include "core/critical_cycle.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/synchronizer.hpp"
#include "support/builders.hpp"

namespace cs {
namespace {

/// Mean m̃s-weight of a returned cycle.
double cycle_mean_of(const DistanceMatrix& ms,
                     const std::vector<NodeId>& cycle) {
  double total = 0.0;
  for (std::size_t i = 0; i < cycle.size(); ++i)
    total += ms.at(cycle[i], cycle[(i + 1) % cycle.size()]);
  return total / static_cast<double>(cycle.size());
}

TEST(CriticalCycle, TwoNode) {
  DistanceMatrix ms(2);
  ms.at(0, 1) = 0.3;
  ms.at(1, 0) = 0.5;
  const auto cycle = critical_cycle(ms, 0.4);
  ASSERT_EQ(cycle.size(), 2u);
  EXPECT_NEAR(cycle_mean_of(ms, cycle), 0.4, 1e-12);
}

TEST(CriticalCycle, PicksTheBindingCycle) {
  // Two 2-cycles: {0,1} with mean 1.0 and {2,3} with mean 3.0; the
  // critical cycle must be the latter.
  DistanceMatrix ms(4);
  ms.at(0, 1) = 1.0;
  ms.at(1, 0) = 1.0;
  ms.at(2, 3) = 3.0;
  ms.at(3, 2) = 3.0;
  // Cross entries small so they never bind.
  for (NodeId p : {0u, 1u})
    for (NodeId q : {2u, 3u}) {
      ms.at(p, q) = -5.0;
      ms.at(q, p) = -5.0;
    }
  const auto cycle = critical_cycle(ms, 3.0);
  ASSERT_FALSE(cycle.empty());
  const std::set<NodeId> members(cycle.begin(), cycle.end());
  EXPECT_TRUE(members == std::set<NodeId>({2, 3}));
  EXPECT_NEAR(cycle_mean_of(ms, cycle), 3.0, 1e-12);
}

TEST(CriticalCycle, SingleProcessorEmpty) {
  EXPECT_TRUE(critical_cycle(DistanceMatrix(1), 0.0).empty());
}

TEST(CriticalCycle, NoTightCycleWhenAMaxTooLarge) {
  DistanceMatrix ms(2);
  ms.at(0, 1) = 0.3;
  ms.at(1, 0) = 0.5;
  EXPECT_TRUE(critical_cycle(ms, 10.0).empty());
}

class CriticalCycleProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(CriticalCycleProperty, WitnessAttainsOptimalPrecision) {
  // On real pipeline outputs, the witness cycle's mean must equal A^max.
  Rng topo_rng(99);
  SystemModel model =
      test::bounded_model(make_connected_gnp(7, 0.4, topo_rng), 0.01, 0.05);
  const SimResult sim = test::run_ping_pong(model, GetParam(), 0.3);
  const auto views = sim.execution.views();
  const SyncOutcome out = synchronize(model, views);
  ASSERT_TRUE(out.bounded());
  const auto cycle =
      critical_cycle(out.ms_estimates, out.optimal_precision.finite());
  ASSERT_GE(cycle.size(), 2u);
  // All cycle nodes distinct.
  const std::set<NodeId> members(cycle.begin(), cycle.end());
  EXPECT_EQ(members.size(), cycle.size());
  EXPECT_NEAR(cycle_mean_of(out.ms_estimates, cycle),
              out.optimal_precision.finite(), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CriticalCycleProperty,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace cs
