#include "core/precision.hpp"

#include <gtest/gtest.h>

namespace cs {
namespace {

TEST(Precision, RealizedZeroWhenPerfectlyCorrected) {
  const std::vector<RealTime> starts{RealTime{1.0}, RealTime{3.5}};
  const std::vector<double> x{1.0, 3.5};
  EXPECT_DOUBLE_EQ(realized_precision(starts, x), 0.0);
}

TEST(Precision, RealizedIsMaxPairwise) {
  const std::vector<RealTime> starts{RealTime{0.0}, RealTime{1.0},
                                     RealTime{5.0}};
  const std::vector<double> x{0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(realized_precision(starts, x), 5.0);
}

TEST(Precision, RealizedSymmetricInSign) {
  const std::vector<RealTime> starts{RealTime{0.0}, RealTime{2.0}};
  const std::vector<double> a{0.0, 0.0};
  const std::vector<double> b{0.0, 4.0};  // overcorrect the other way
  EXPECT_DOUBLE_EQ(realized_precision(starts, a), 2.0);
  EXPECT_DOUBLE_EQ(realized_precision(starts, b), 2.0);
}

TEST(Precision, GuaranteedFormula) {
  // ρ̄(x) = max_{p≠q} [ m̃s(p,q) - x_p + x_q ].
  DistanceMatrix ms(2);
  ms.at(0, 1) = 0.3;
  ms.at(1, 0) = 0.5;
  const std::vector<double> zero{0.0, 0.0};
  EXPECT_DOUBLE_EQ(guaranteed_precision(ms, zero).finite(), 0.5);
  const std::vector<double> x{0.0, 0.1};  // balances the two pairs
  EXPECT_DOUBLE_EQ(guaranteed_precision(ms, x).finite(), 0.4);
}

TEST(Precision, GuaranteedInfiniteWhenPairUnbounded) {
  DistanceMatrix ms(2);
  ms.at(0, 1) = 0.3;  // ms(1,0) stays +inf
  const std::vector<double> zero{0.0, 0.0};
  EXPECT_TRUE(guaranteed_precision(ms, zero).is_pos_inf());
  // The finite-restricted variant keeps the finite direction's term —
  // regression: it used to skip the pair entirely when *either* direction
  // was infinite, under-reporting the worst-case skew of a one-way-bounded
  // link as 0.
  EXPECT_DOUBLE_EQ(guaranteed_precision_finite(ms, zero), 0.3);
}

TEST(Precision, GuaranteedFiniteSkipsOnlyTheInfiniteDirection) {
  DistanceMatrix ms(3);
  ms.at(0, 1) = 0.3;
  ms.at(1, 0) = 0.1;
  ms.at(0, 2) = 9.0;  // (0,2) one-way only: the finite direction counts
  const std::vector<double> zero(3, 0.0);
  EXPECT_DOUBLE_EQ(guaranteed_precision_finite(ms, zero), 9.0);
  // Corrections can discharge the one-way term like any other.
  const std::vector<double> x{0.0, 0.0, -8.8};
  EXPECT_DOUBLE_EQ(guaranteed_precision_finite(ms, x), 0.3);
}

TEST(Precision, GuaranteedFiniteOneWayBoundedLinkRegression) {
  // One-way-bounded link p0 -> p1 (e.g. beacon traffic heard in one
  // direction only): m̃s(0,1) finite, m̃s(1,0) = +inf.  The worst-case skew
  // under x = 0 is exactly m̃s(0,1), not 0.
  DistanceMatrix ms(2);
  ms.at(0, 1) = 5.0;
  const std::vector<double> zero{0.0, 0.0};
  EXPECT_DOUBLE_EQ(guaranteed_precision_finite(ms, zero), 5.0);
}

TEST(Precision, SingleProcessor) {
  const std::vector<RealTime> starts{RealTime{4.0}};
  const std::vector<double> x{0.0};
  EXPECT_DOUBLE_EQ(realized_precision(starts, x), 0.0);
  EXPECT_DOUBLE_EQ(guaranteed_precision(DistanceMatrix(1), x).finite(), 0.0);
}

}  // namespace
}  // namespace cs
