#include "core/precision.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "common/error.hpp"

namespace cs {
namespace {

TEST(Precision, RealizedZeroWhenPerfectlyCorrected) {
  const std::vector<RealTime> starts{RealTime{1.0}, RealTime{3.5}};
  const std::vector<double> x{1.0, 3.5};
  EXPECT_DOUBLE_EQ(realized_precision(starts, x), 0.0);
}

TEST(Precision, RealizedIsMaxPairwise) {
  const std::vector<RealTime> starts{RealTime{0.0}, RealTime{1.0},
                                     RealTime{5.0}};
  const std::vector<double> x{0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(realized_precision(starts, x), 5.0);
}

TEST(Precision, RealizedSymmetricInSign) {
  const std::vector<RealTime> starts{RealTime{0.0}, RealTime{2.0}};
  const std::vector<double> a{0.0, 0.0};
  const std::vector<double> b{0.0, 4.0};  // overcorrect the other way
  EXPECT_DOUBLE_EQ(realized_precision(starts, a), 2.0);
  EXPECT_DOUBLE_EQ(realized_precision(starts, b), 2.0);
}

TEST(Precision, GuaranteedFormula) {
  // ρ̄(x) = max_{p≠q} [ m̃s(p,q) - x_p + x_q ].
  DistanceMatrix ms(2);
  ms.at(0, 1) = 0.3;
  ms.at(1, 0) = 0.5;
  const std::vector<double> zero{0.0, 0.0};
  EXPECT_DOUBLE_EQ(guaranteed_precision(ms, zero).finite(), 0.5);
  const std::vector<double> x{0.0, 0.1};  // balances the two pairs
  EXPECT_DOUBLE_EQ(guaranteed_precision(ms, x).finite(), 0.4);
}

TEST(Precision, GuaranteedInfiniteWhenPairUnbounded) {
  DistanceMatrix ms(2);
  ms.at(0, 1) = 0.3;  // ms(1,0) stays +inf
  const std::vector<double> zero{0.0, 0.0};
  EXPECT_TRUE(guaranteed_precision(ms, zero).is_pos_inf());
  // The finite-restricted variant keeps the finite direction's term —
  // regression: it used to skip the pair entirely when *either* direction
  // was infinite, under-reporting the worst-case skew of a one-way-bounded
  // link as 0.
  EXPECT_DOUBLE_EQ(guaranteed_precision_finite(ms, zero), 0.3);
}

TEST(Precision, GuaranteedFiniteSkipsOnlyTheInfiniteDirection) {
  DistanceMatrix ms(3);
  ms.at(0, 1) = 0.3;
  ms.at(1, 0) = 0.1;
  ms.at(0, 2) = 9.0;  // (0,2) one-way only: the finite direction counts
  const std::vector<double> zero(3, 0.0);
  EXPECT_DOUBLE_EQ(guaranteed_precision_finite(ms, zero), 9.0);
  // Corrections can discharge the one-way term like any other.
  const std::vector<double> x{0.0, 0.0, -8.8};
  EXPECT_DOUBLE_EQ(guaranteed_precision_finite(ms, x), 0.3);
}

TEST(Precision, GuaranteedFiniteOneWayBoundedLinkRegression) {
  // One-way-bounded link p0 -> p1 (e.g. beacon traffic heard in one
  // direction only): m̃s(0,1) finite, m̃s(1,0) = +inf.  The worst-case skew
  // under x = 0 is exactly m̃s(0,1), not 0.
  DistanceMatrix ms(2);
  ms.at(0, 1) = 5.0;
  const std::vector<double> zero{0.0, 0.0};
  EXPECT_DOUBLE_EQ(guaranteed_precision_finite(ms, zero), 5.0);
}

TEST(Precision, SingleProcessor) {
  const std::vector<RealTime> starts{RealTime{4.0}};
  const std::vector<double> x{0.0};
  EXPECT_DOUBLE_EQ(realized_precision(starts, x), 0.0);
  EXPECT_DOUBLE_EQ(guaranteed_precision(DistanceMatrix(1), x).finite(), 0.0);
}

TEST(Precision, EmptyAndSingletonAreZeroNotNaN) {
  // Regression: singleton / empty components (a crashed-away leader, a
  // spine with no rack) must report a *defined* precision of 0, never the
  // NaN or -inf an empty max-fold used to produce.
  EXPECT_DOUBLE_EQ(realized_precision({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(
      guaranteed_precision(DistanceMatrix(0), std::vector<double>{})
          .finite(),
      0.0);
  EXPECT_DOUBLE_EQ(
      guaranteed_precision_finite(DistanceMatrix(1), std::vector<double>{0.0}),
      0.0);
}

TEST(Precision, RealizedRejectsSizeMismatch) {
  const std::vector<RealTime> starts{RealTime{0.0}, RealTime{1.0}};
  const std::vector<double> x{0.0};
  EXPECT_THROW(realized_precision(starts, x), InvalidExecution);
}

TEST(Precision, RealizedRejectsNaNCorrections) {
  const std::vector<RealTime> starts{RealTime{0.0}, RealTime{1.0}};
  const std::vector<double> x{0.0,
                              std::numeric_limits<double>::quiet_NaN()};
  EXPECT_THROW(realized_precision(starts, x), InvalidExecution);
}

TEST(Precision, GuaranteedRejectsMismatchAndNaN) {
  DistanceMatrix ms(2);
  ms.at(0, 1) = 0.3;
  ms.at(1, 0) = 0.5;
  EXPECT_THROW(guaranteed_precision(ms, std::vector<double>{0.0}),
               InvalidExecution);
  EXPECT_THROW(guaranteed_precision_finite(ms, std::vector<double>{0.0}),
               InvalidExecution);
  const std::vector<double> nan_x{
      0.0, std::numeric_limits<double>::quiet_NaN()};
  EXPECT_THROW(guaranteed_precision(ms, nan_x), InvalidExecution);
  EXPECT_THROW(guaranteed_precision_finite(ms, nan_x), InvalidExecution);
}

}  // namespace
}  // namespace cs
