#include "core/epochs.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/precision.hpp"
#include "support/builders.hpp"

namespace cs {
namespace {

TEST(ViewPrefix, KeepsStartAndEarlierEvents) {
  const Execution e = test::two_node_execution(0.0, 0.0, {0.5, 0.6}, {});
  const View full = e.views()[0];
  // Sends at clock ~10 and ~11 (builder spacing); cut between them.
  const View cut = full.prefix(ClockTime{10.5});
  EXPECT_EQ(cut.sends().size(), 1u);
  EXPECT_EQ(cut.events.front().kind, EventKind::kStart);
  const View none = full.prefix(ClockTime{0.0});
  EXPECT_EQ(none.events.size(), 1u);  // just the start event
}

TEST(PairMessages, DropOrphansPolicy) {
  // Receiver's prefix keeps a receive whose send is cut away at the
  // sender's side.
  const Execution e = test::two_node_execution(5.0, 0.0, {0.5}, {});
  // Send at sender clock 15 (builder base); prefix below that drops it.
  auto views = e.views();
  views[0] = views[0].prefix(ClockTime{10.0});  // drops the send
  EXPECT_THROW(pair_messages(views, MatchPolicy::kStrict),
               InvalidExecution);
  EXPECT_TRUE(pair_messages(views, MatchPolicy::kDropOrphans).empty());
}

TEST(Epochs, BoundariesMustIncrease) {
  SystemModel model = test::bounded_model(make_line(2), 0.01, 0.05);
  const SimResult sim = test::run_ping_pong(model, 1, 0.1);
  const auto views = sim.execution.views();
  const std::vector<ClockTime> bad{ClockTime{2.0}, ClockTime{1.0}};
  EXPECT_THROW(epochal_synchronize(model, views, bad), Error);
}

TEST(Epochs, PrecisionTightensWithMoreTraffic) {
  // Drift-free: each later epoch sees a superset of the probes, so the
  // per-epoch optimal precision is non-increasing.
  SystemModel model = test::bounded_model(make_ring(4), 0.005, 0.02);
  Rng rng(7);
  SimOptions opts;
  opts.start_offsets = random_start_offsets(4, 0.2, rng);
  opts.seed = 7;
  PingPongParams params;
  params.warmup = Duration{0.3};
  params.spacing = Duration{0.5};
  params.rounds = 8;  // probes at clock 0.3, 0.8, ..., 3.8
  const SimResult sim = simulate(model, make_ping_pong(params), opts);
  const auto views = sim.execution.views();

  const std::vector<ClockTime> boundaries{
      ClockTime{1.0}, ClockTime{2.0}, ClockTime{3.0}, ClockTime{10.0}};
  const auto epochs = epochal_synchronize(model, views, boundaries);
  ASSERT_EQ(epochs.size(), 4u);
  double prev = kInfDist;
  for (const EpochOutcome& ep : epochs) {
    ASSERT_TRUE(ep.sync.bounded());
    EXPECT_LE(ep.sync.optimal_precision.finite(), prev + 1e-12);
    prev = ep.sync.optimal_precision.finite();
  }

  // The final epoch sees everything: it must match the full-view run.
  const SyncOutcome full = synchronize(model, views);
  EXPECT_NEAR(epochs.back().sync.optimal_precision.finite(),
              full.optimal_precision.finite(), 1e-12);
}

TEST(Epochs, EarlyEpochBeforeTrafficIsUnbounded) {
  SystemModel model = test::bounded_model(make_line(3), 0.005, 0.02);
  const SimResult sim = test::run_ping_pong(model, 2, 0.1);
  const auto views = sim.execution.views();
  const std::vector<ClockTime> boundaries{ClockTime{0.01}, ClockTime{50.0}};
  const auto epochs = epochal_synchronize(model, views, boundaries);
  EXPECT_FALSE(epochs[0].sync.bounded());
  EXPECT_TRUE(epochs[1].sync.bounded());
}

TEST(Epochs, CorrectionsSoundAtEveryEpoch) {
  SystemModel model = test::bounded_model(make_ring(5), 0.005, 0.02);
  Rng rng(21);
  SimOptions opts;
  opts.start_offsets = random_start_offsets(5, 0.2, rng);
  opts.seed = 21;
  PingPongParams params;
  params.warmup = Duration{0.3};
  params.spacing = Duration{0.4};
  params.rounds = 6;
  const SimResult sim = simulate(model, make_ping_pong(params), opts);
  const auto views = sim.execution.views();
  const auto starts = sim.execution.start_times();

  const std::vector<ClockTime> boundaries{ClockTime{1.0}, ClockTime{2.0},
                                          ClockTime{5.0}};
  for (const EpochOutcome& ep :
       epochal_synchronize(model, views, boundaries)) {
    if (!ep.sync.bounded()) continue;
    EXPECT_LE(realized_precision(starts, ep.sync.corrections),
              ep.sync.optimal_precision.finite() + 1e-9);
  }
}

}  // namespace
}  // namespace cs
