#include "core/report.hpp"

#include <gtest/gtest.h>

#include "support/builders.hpp"

namespace cs {
namespace {

TEST(Report, BoundedInstanceContainsKeySections) {
  SystemModel model = test::bounded_model(make_ring(4), 0.01, 0.05);
  const SimResult sim = test::run_ping_pong(model, 5, 0.2);
  const auto views = sim.execution.views();
  const SyncOutcome out = synchronize(model, views);
  const std::string report = format_report(model, out);

  EXPECT_NE(report.find("guaranteed precision:"), std::string::npos);
  EXPECT_NE(report.find("corrections:"), std::string::npos);
  EXPECT_NE(report.find("critical cycle:"), std::string::npos);
  EXPECT_NE(report.find("shift estimates"), std::string::npos);
  EXPECT_NE(report.find("bounds[0.01,0.05]"), std::string::npos);
  EXPECT_EQ(report.find("unbounded"), std::string::npos);
}

TEST(Report, UnboundedInstanceListsComponents) {
  SystemModel model = test::lower_bound_model(make_line(2), 0.01);
  const Execution e = test::two_node_execution(0.0, 0.0, {0.5}, {});
  const auto views = e.views();
  const SyncOutcome out = synchronize(model, views);
  const std::string report = format_report(model, out);
  EXPECT_NE(report.find("unbounded"), std::string::npos);
  EXPECT_NE(report.find("component"), std::string::npos);
}

TEST(Dot, WellFormedAndHighlightsCriticalCycle) {
  SystemModel model = test::bounded_model(make_ring(4), 0.01, 0.05);
  const SimResult sim = test::run_ping_pong(model, 6, 0.2);
  const auto views = sim.execution.views();
  const SyncOutcome out = synchronize(model, views);
  const std::string dot = to_dot(out);

  EXPECT_EQ(dot.rfind("digraph mls {", 0), 0u);
  EXPECT_NE(dot.find("p0 ->"), std::string::npos);
  EXPECT_NE(dot.find("color=red"), std::string::npos);
  EXPECT_NE(dot.find("}\n"), std::string::npos);
  // Every processor appears as a node.
  for (int p = 0; p < 4; ++p)
    EXPECT_NE(dot.find("p" + std::to_string(p) + " [label="),
              std::string::npos);
}

}  // namespace
}  // namespace cs
