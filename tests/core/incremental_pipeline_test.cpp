// Equivalence of the incremental, instrumented epoch pipeline with the
// from-scratch oracle (ISSUE 1 tentpole): incremental APSP + warm-started
// Howard must reproduce the from-scratch results to 1e-12 across randomized
// epoch sequences with single-edge perturbations, including perturbations
// that flip a link from bounded to unbounded (§4's A^max = ∞ case, where
// the finiteness components split).
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/epochs.hpp"
#include "core/incremental.hpp"
#include "core/shifts.hpp"
#include "graph/incremental_apsp.hpp"
#include "graph/johnson.hpp"
#include "support/builders.hpp"

namespace cs {
namespace {

constexpr double kTol = 1e-12;

void expect_shifts_match(const ShiftsResult& got, const ShiftsResult& want,
                         const std::string& context) {
  ASSERT_EQ(got.corrections.size(), want.corrections.size()) << context;
  EXPECT_EQ(got.a_max.is_finite(), want.a_max.is_finite()) << context;
  if (got.a_max.is_finite() && want.a_max.is_finite()) {
    EXPECT_NEAR(got.a_max.finite(), want.a_max.finite(), kTol) << context;
  }
  ASSERT_EQ(got.components.component_count, want.components.component_count)
      << context;
  EXPECT_EQ(got.components.component, want.components.component) << context;
  for (std::size_t c = 0; c < got.component_a_max.size(); ++c)
    EXPECT_NEAR(got.component_a_max[c], want.component_a_max[c], kTol)
        << context << " component " << c;
  for (std::size_t p = 0; p < got.corrections.size(); ++p)
    EXPECT_NEAR(got.corrections[p], want.corrections[p], kTol)
        << context << " processor " << p;
}

/// 200 randomized epoch sequences at the m̃s level: per epoch one edge of
/// the m̃ls graph is perturbed (tightened, loosened, dropped to +inf, or
/// re-added), the incremental closure feeds compute_shifts with Howard
/// warm-started from the previous epoch, and the result must match the
/// from-scratch Johnson + cold-start pipeline.
TEST(IncrementalPipelineProperty, TwoHundredPerturbedEpochSequences) {
  std::size_t unbounded_epochs_seen = 0;
  for (std::uint64_t seq = 0; seq < 200; ++seq) {
    Rng rng(5000 + seq);
    const std::size_t n = 4 + rng.uniform_int(10);

    // Bidirectional ring of m̃ls entries plus chords — shaped like real
    // shift-estimate graphs (both directions present, small positive
    // weights), with enough randomness to move the critical cycle around.
    struct E {
      NodeId a, b;
      double w;
      bool alive;
    };
    std::vector<E> edges;
    for (NodeId v = 0; v < n; ++v) {
      const NodeId u = static_cast<NodeId>((v + 1) % n);
      edges.push_back({v, u, rng.uniform(0.05, 0.5), true});
      edges.push_back({u, v, rng.uniform(0.05, 0.5), true});
    }
    const std::size_t chords = rng.uniform_int(n);
    for (std::size_t c = 0; c < chords; ++c) {
      const NodeId a = static_cast<NodeId>(rng.uniform_int(n));
      const NodeId b = static_cast<NodeId>(rng.uniform_int(n));
      if (a != b) edges.push_back({a, b, rng.uniform(0.05, 0.5), true});
    }

    auto build = [&] {
      Digraph g(n);
      for (const E& e : edges)
        if (e.alive) g.add_edge(e.a, e.b, e.w);
      return g;
    };

    IncrementalApsp inc;
    std::vector<NodeId> warm_policy;

    const std::size_t epochs = 6;
    for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
      if (epoch > 0) {
        // Single-edge perturbation per epoch.
        E& e = edges[rng.uniform_int(edges.size())];
        switch (rng.uniform_int(4)) {
          case 0:
            e.w *= rng.uniform(0.5, 1.0);  // tighten (the realistic delta)
            break;
          case 1:
            e.w *= rng.uniform(1.0, 2.0);  // loosen
            break;
          case 2:
            e.alive = false;  // bounded -> unbounded flip
            break;
          default:
            e.alive = true;  // (re)appears
            break;
        }
      }
      const Digraph mls = build();
      const std::string context =
          "seq " + std::to_string(seq) + " epoch " + std::to_string(epoch);

      // From-scratch oracle: full Johnson closure + cold Howard.
      const auto oracle_ms = johnson(mls);
      ASSERT_TRUE(oracle_ms.has_value()) << context;
      const ShiftsResult oracle =
          compute_shifts(*oracle_ms, 0, CycleMeanAlgorithm::kHoward);

      // Incremental path: delta-updated closure + warm-started Howard.
      ASSERT_TRUE(inc.update(mls)) << context;
      ShiftsOptions options;
      options.algorithm = CycleMeanAlgorithm::kHoward;
      if (!warm_policy.empty()) options.warm_policy = &warm_policy;
      const ShiftsResult incremental =
          compute_shifts(inc.distances(), options);
      warm_policy = incremental.policy;

      expect_shifts_match(incremental, oracle, context);
      if (!oracle.a_max.is_finite()) ++unbounded_epochs_seen;

      // Cross-check against the paper's prescribed algorithm too.
      const ShiftsResult karp =
          compute_shifts(*oracle_ms, 0, CycleMeanAlgorithm::kKarp);
      EXPECT_EQ(karp.a_max.is_finite(), incremental.a_max.is_finite())
          << context;
      if (karp.a_max.is_finite() && incremental.a_max.is_finite()) {
        EXPECT_NEAR(karp.a_max.finite(), incremental.a_max.finite(), 1e-9)
            << context;
      }
    }
  }
  // The perturbation mix must actually exercise the component-split path.
  EXPECT_GT(unbounded_epochs_seen, 20u);
}

/// End-to-end equivalence on simulated traffic: the incremental epoch
/// driver must reproduce epochal_synchronize() on growing view prefixes.
TEST(IncrementalPipeline, EpochalDriverMatchesFromScratch) {
  for (std::uint64_t seed : {3u, 17u, 42u}) {
    SystemModel model = test::bounded_model(make_ring(6), 0.005, 0.02);
    Rng rng(seed);
    SimOptions opts;
    opts.start_offsets = random_start_offsets(6, 0.3, rng);
    opts.seed = seed;
    PingPongParams params;
    params.warmup = Duration{0.4};
    params.spacing = Duration{0.4};
    params.rounds = 8;
    const SimResult sim = simulate(model, make_ping_pong(params), opts);
    const auto views = sim.execution.views();

    const std::vector<ClockTime> boundaries{
        ClockTime{0.01}, ClockTime{1.0}, ClockTime{1.5}, ClockTime{2.0},
        ClockTime{2.5},  ClockTime{3.0}, ClockTime{10.0}};

    SyncOptions options;
    options.cycle_mean = CycleMeanAlgorithm::kHoward;
    Metrics metrics;
    SyncOptions inc_options = options;
    inc_options.metrics = &metrics;

    const auto scratch =
        epochal_synchronize(model, views, boundaries, options);
    const auto incremental = epochal_synchronize_incremental(
        model, views, boundaries, inc_options);

    ASSERT_EQ(scratch.size(), incremental.size());
    for (std::size_t k = 0; k < scratch.size(); ++k) {
      const SyncOutcome& a = scratch[k].sync;
      const SyncOutcome& b = incremental[k].sync;
      EXPECT_EQ(a.bounded(), b.bounded()) << "epoch " << k;
      if (a.bounded() && b.bounded()) {
        EXPECT_NEAR(a.optimal_precision.finite(),
                    b.optimal_precision.finite(), kTol)
            << "epoch " << k;
      }
      ASSERT_EQ(a.corrections.size(), b.corrections.size());
      for (std::size_t p = 0; p < a.corrections.size(); ++p)
        EXPECT_NEAR(a.corrections[p], b.corrections[p], kTol)
            << "epoch " << k << " processor " << p;
    }

    // The instrumentation saw every epoch, and later epochs (same node set,
    // small m̃ls delta) actually took the incremental path.
    EXPECT_EQ(metrics.counter("pipeline.epochs"), boundaries.size());
    EXPECT_GE(metrics.counter("apsp.incremental_updates"), 1u);
    EXPECT_NE(metrics.series("stage.global_estimates_seconds"), nullptr);
    EXPECT_NE(metrics.series("stage.shifts_seconds"), nullptr);
  }
}

/// The incremental synchronizer honors the synchronize() error contract and
/// recovers after an inadmissible epoch.
TEST(IncrementalPipeline, MalformedViewsRejected) {
  SystemModel model = test::bounded_model(make_line(2), 0.01, 0.05);
  const SimResult sim = test::run_ping_pong(model, 9, 0.1);
  auto views = sim.execution.views();

  IncrementalSynchronizer sync(model);
  std::vector<View> swapped{views[1], views[0]};
  EXPECT_THROW((void)sync.step(swapped), InvalidExecution);
  EXPECT_NO_THROW((void)sync.step(views));
}

}  // namespace
}  // namespace cs
