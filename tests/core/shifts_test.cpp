// SHIFTS (Theorem 4.6) on hand-analyzable instances.
#include "core/shifts.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "core/precision.hpp"

namespace cs {
namespace {

DistanceMatrix matrix2(double ms01, double ms10) {
  DistanceMatrix m(2);
  m.at(0, 1) = ms01;
  m.at(1, 0) = ms10;
  return m;
}

TEST(Shifts, TwoNodeAnalytic) {
  // A^max for two nodes is the 2-cycle mean (m̃s(0,1) + m̃s(1,0)) / 2.
  const ShiftsResult r = compute_shifts(matrix2(0.3, 0.5));
  EXPECT_TRUE(r.bounded());
  EXPECT_NEAR(r.a_max.finite(), 0.4, 1e-12);
  // Corrections: x_0 = 0 (root), x_1 = w(0,1) = A - m̃s(0,1) = 0.1.
  EXPECT_NEAR(r.corrections[0], 0.0, 1e-12);
  EXPECT_NEAR(r.corrections[1], 0.1, 1e-12);
}

TEST(Shifts, TwoNodeNegativeEstimates) {
  // m̃s entries may be negative (large start skew); A^max stays >= 0
  // because ms(0,1) + ms(1,0) >= 0.
  const ShiftsResult r = compute_shifts(matrix2(-2.0, 2.5));
  EXPECT_NEAR(r.a_max.finite(), 0.25, 1e-12);
  EXPECT_NEAR(r.corrections[1], 2.25, 1e-12);
}

TEST(Shifts, SingleProcessor) {
  const DistanceMatrix m(1);
  const ShiftsResult r = compute_shifts(m);
  EXPECT_TRUE(r.bounded());
  EXPECT_NEAR(r.a_max.finite(), 0.0, 1e-12);
  EXPECT_EQ(r.corrections.size(), 1u);
}

TEST(Shifts, ZeroUncertainty) {
  // m̃s(p,q) = -m̃s(q,p): delays fully known; perfect sync achievable.
  const ShiftsResult r = compute_shifts(matrix2(1.5, -1.5));
  EXPECT_NEAR(r.a_max.finite(), 0.0, 1e-12);
  EXPECT_NEAR(r.corrections[1], -1.5, 1e-12);
}

TEST(Shifts, TriangleMaxCycleDominates) {
  // 3 nodes; pairwise 2-cycle means 1.0, but the 3-cycle 0->1->2->0 has
  // mean 3.0 and must dominate.
  DistanceMatrix m(3);
  const double big = 3.0, small = -1.0;
  m.at(0, 1) = big;
  m.at(1, 2) = big;
  m.at(2, 0) = big;
  m.at(1, 0) = small;
  m.at(2, 1) = small;
  m.at(0, 2) = small;
  const ShiftsResult r = compute_shifts(m);
  EXPECT_NEAR(r.a_max.finite(), 3.0, 1e-12);
}

TEST(Shifts, GuaranteedPrecisionEqualsAMax) {
  DistanceMatrix m(3);
  m.at(0, 1) = 0.4;
  m.at(1, 0) = 0.1;
  m.at(1, 2) = 0.2;
  m.at(2, 1) = 0.3;
  m.at(0, 2) = 0.6;
  m.at(2, 0) = 0.05;
  const ShiftsResult r = compute_shifts(m);
  const ExtReal rho = guaranteed_precision(m, r.corrections);
  EXPECT_NEAR(rho.finite(), r.a_max.finite(), 1e-12);
}

TEST(Shifts, RootChoiceIsGaugeOnly) {
  DistanceMatrix m(3);
  m.at(0, 1) = 0.4;
  m.at(1, 0) = 0.1;
  m.at(1, 2) = 0.2;
  m.at(2, 1) = 0.3;
  m.at(0, 2) = 0.6;
  m.at(2, 0) = 0.05;
  const ShiftsResult r0 = compute_shifts(m, 0);
  const ShiftsResult r2 = compute_shifts(m, 2);
  EXPECT_NEAR(r0.a_max.finite(), r2.a_max.finite(), 1e-12);
  const double shift = r0.corrections[0] - r2.corrections[0];
  for (int p = 0; p < 3; ++p)
    EXPECT_NEAR(r0.corrections[p] - r2.corrections[p], shift, 1e-9);
  EXPECT_NEAR(guaranteed_precision(m, r0.corrections).finite(),
              guaranteed_precision(m, r2.corrections).finite(), 1e-9);
}

TEST(Shifts, UnboundedInstanceSplitsIntoComponents) {
  // Pairs {0,1} and {2,3} have finite mutual estimates; across the split
  // only one direction is finite, so the instance is unbounded.
  DistanceMatrix m(4);
  m.at(0, 1) = 0.2;
  m.at(1, 0) = 0.2;
  m.at(2, 3) = 0.4;
  m.at(3, 2) = 0.4;
  m.at(0, 2) = 1.0;  // one-way info only
  m.at(0, 3) = 1.4;
  m.at(1, 2) = 1.0;
  m.at(1, 3) = 1.4;
  const ShiftsResult r = compute_shifts(m);
  EXPECT_FALSE(r.bounded());
  EXPECT_TRUE(r.a_max.is_pos_inf());
  EXPECT_EQ(r.components.component_count, 2u);
  EXPECT_EQ(r.components.component[0], r.components.component[1]);
  EXPECT_EQ(r.components.component[2], r.components.component[3]);
  // Per-component precision is the 2-cycle mean of each pair.
  std::vector<double> amax = r.component_a_max;
  std::sort(amax.begin(), amax.end());
  EXPECT_NEAR(amax[0], 0.2, 1e-12);
  EXPECT_NEAR(amax[1], 0.4, 1e-12);
}

TEST(Shifts, AllIsolatedProcessors) {
  DistanceMatrix m(3);  // all off-diagonal +inf
  const ShiftsResult r = compute_shifts(m);
  EXPECT_FALSE(r.bounded());
  EXPECT_EQ(r.components.component_count, 3u);
  for (double c : r.corrections) EXPECT_DOUBLE_EQ(c, 0.0);
}

TEST(Shifts, EmptyInstanceThrows) {
  EXPECT_THROW(compute_shifts(DistanceMatrix(0)), Error);
}

TEST(Shifts, RootOutOfRangeThrows) {
  EXPECT_THROW(compute_shifts(DistanceMatrix(2), 5), Error);
}

TEST(Shifts, NonFiniteEstimateThrowsInsteadOfGarbageCorrections) {
  // Regression: a NaN m̃s entry (broken upstream estimator) used to slide
  // through — the max-cycle mean went NaN, every Bellman–Ford relaxation
  // comparison went false, non-root distances stayed +inf, and a
  // release-mode no-op assert let the +inf be stored as a "correction".
  // The pipeline must refuse with cs::Error instead.
  DistanceMatrix m(3);
  m.at(0, 1) = 0.3;
  m.at(1, 0) = 0.5;
  m.at(0, 2) = 0.2;
  m.at(2, 0) = 0.4;
  m.at(1, 2) = std::numeric_limits<double>::quiet_NaN();
  m.at(2, 1) = 0.1;
  EXPECT_THROW(compute_shifts(m), Error);
  EXPECT_THROW(compute_shifts(m, 0, CycleMeanAlgorithm::kHoward), Error);
}

TEST(Shifts, FloatNoiseCycleAbsorbedInOneTolerantPass) {
  // Regression for the bump-retry hack: weights w = Ã^max − m̃s put the
  // critical cycle at weight exactly 0, so float rounding can leave it at
  // ~-1 ulp.  The tolerant Bellman–Ford pass must absorb that without
  // retry loops — observable through metrics: exactly one shifts run, no
  // negative-cycle error, and sound corrections.
  DistanceMatrix m(3);
  // Entries chosen so (a_max - ms) sums round unfavourably: thirds are
  // inexact in binary.
  const double third = 1.0 / 3.0;
  m.at(0, 1) = third;
  m.at(1, 0) = third + 1e-16;
  m.at(0, 2) = 0.1 + third;
  m.at(2, 0) = 0.1 - third;
  m.at(1, 2) = third * 2;
  m.at(2, 1) = 0.2 - third;
  Metrics metrics;
  ShiftsOptions options;
  options.metrics = &metrics;
  const ShiftsResult r = compute_shifts(m, options);
  EXPECT_TRUE(r.bounded());
  EXPECT_EQ(metrics.counter("shifts.runs"), 1u);
  // Soundness: ρ̄(x) = Ã^max for the SHIFTS corrections (to tolerance).
  EXPECT_NEAR(guaranteed_precision(m, r.corrections).finite(),
              r.a_max.finite(), 1e-9);
}

TEST(Shifts, HowardPolicyExposedAndAcceptedAsWarmStart) {
  DistanceMatrix m(3);
  m.at(0, 1) = 0.3;
  m.at(1, 0) = 0.5;
  m.at(0, 2) = 0.2;
  m.at(2, 0) = 0.4;
  m.at(1, 2) = 0.6;
  m.at(2, 1) = 0.1;
  ShiftsOptions cold;
  cold.algorithm = CycleMeanAlgorithm::kHoward;
  const ShiftsResult first = compute_shifts(m, cold);
  ASSERT_EQ(first.policy.size(), 3u);

  Metrics metrics;
  ShiftsOptions warm = cold;
  warm.metrics = &metrics;
  warm.warm_policy = &first.policy;
  const ShiftsResult second = compute_shifts(m, warm);
  EXPECT_EQ(metrics.counter("cycle_mean.howard_warm_starts"), 1u);
  EXPECT_NEAR(second.a_max.finite(), first.a_max.finite(), 1e-15);
  for (std::size_t p = 0; p < 3; ++p)
    EXPECT_NEAR(second.corrections[p], first.corrections[p], 1e-15);
  // Karp stays policy-free.
  EXPECT_TRUE(compute_shifts(m).policy.empty());
}

}  // namespace
}  // namespace cs
