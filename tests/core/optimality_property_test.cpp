// The paper's main theorems as executable properties, swept over
// topology × delay model × seed (TEST_P).
//
// For each generated admissible execution:
//   P1  Tightness (Thm 4.6): the guaranteed precision of the SHIFTS
//       corrections equals Ã^max.
//   P2  Lower bound (Thm 4.4): no perturbed correction vector has better
//       guaranteed precision than Ã^max.
//   P3  Soundness: the realized precision on the actual execution is at
//       most Ã^max (it is one member of the equivalence class).
//   P4  Claim 3.1: corrections are a function of the views alone —
//       recomputing on a shifted-but-equivalent execution changes nothing.
//   P5  Estimate consistency (Thm 5.5 + Lemma 5.3): m̃s(p,q) computed from
//       views equals ms(p,q) from ground truth plus S_p - S_q.
//   P6  Adversary realizability (Lemma 5.3): the shift vector
//       dist_mls(p,·)/γ yields an admissible, equivalent execution whose
//       realized precision approaches Ã^max as γ -> 1 when anchored at the
//       worst pair.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "core/adversary.hpp"
#include "core/local_estimates.hpp"
#include "core/precision.hpp"
#include "core/synchronizer.hpp"
#include "delaymodel/windowed_bias.hpp"
#include "support/builders.hpp"

namespace cs {
namespace {

enum class ModelKind {
  kBounds,
  kLowerOnly,
  kNoBounds,
  kBias,
  kComposite,
  kWindowed
};

std::string kind_name(ModelKind k) {
  switch (k) {
    case ModelKind::kBounds: return "bounds";
    case ModelKind::kLowerOnly: return "lower";
    case ModelKind::kNoBounds: return "nobounds";
    case ModelKind::kBias: return "bias";
    case ModelKind::kComposite: return "composite";
    case ModelKind::kWindowed: return "windowed";
  }
  return "?";
}

SystemModel build_model(const std::string& topo_name, ModelKind kind,
                        std::uint64_t seed) {
  Rng rng(seed);
  Topology topo = make_named(topo_name, 6, rng);
  switch (kind) {
    case ModelKind::kBounds:
      return test::bounded_model(std::move(topo), 0.01, 0.05);
    case ModelKind::kLowerOnly:
      return test::lower_bound_model(std::move(topo), 0.01);
    case ModelKind::kNoBounds:
      return SystemModel(std::move(topo));
    case ModelKind::kBias:
      return test::bias_model(std::move(topo), 0.02);
    case ModelKind::kComposite:
      return test::bounded_bias_model(std::move(topo), 0.01, 0.08, 0.03);
    case ModelKind::kWindowed: {
      SystemModel m(std::move(topo));
      for (auto [a, b] : m.topology().links)
        m.set_constraint(make_windowed_bias(a, b, 0.02, 0.5));
      return m;
    }
  }
  return SystemModel(Topology{});
}

using Param = std::tuple<std::string, ModelKind, std::uint64_t>;

class OptimalityProperty : public ::testing::TestWithParam<Param> {
 protected:
  static constexpr double kTol = 1e-9;
};

TEST_P(OptimalityProperty, TheoremsHold) {
  const auto& [topo_name, kind, seed] = GetParam();
  const SystemModel model = build_model(topo_name, kind, seed);
  const SimResult sim = test::run_ping_pong(model, seed, /*skew=*/0.3);
  ASSERT_TRUE(model.admissible(sim.execution));

  const std::vector<View> views = sim.execution.views();
  const SyncOutcome out = synchronize(model, views);
  ASSERT_TRUE(out.bounded())
      << "ping-pong in both directions must bound every instance";
  const double a_max = out.optimal_precision.finite();
  EXPECT_GE(a_max, -kTol);

  // P1: tightness.
  EXPECT_NEAR(guaranteed_precision(out.ms_estimates, out.corrections)
                  .finite(),
              a_max, kTol);

  // P2: no perturbation does better.
  Rng rng(seed * 31 + 7);
  const std::size_t n = model.processor_count();
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<double> x = out.corrections;
    for (double& v : x) v += rng.uniform(-0.05, 0.05);
    EXPECT_GE(guaranteed_precision(out.ms_estimates, x).finite(),
              a_max - kTol);
  }
  // ... including some entirely unrelated vectors.
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> x(n);
    for (double& v : x) v = rng.uniform(-1.0, 1.0);
    EXPECT_GE(guaranteed_precision(out.ms_estimates, x).finite(),
              a_max - kTol);
  }

  // P3: the actual execution respects the guarantee.
  const auto starts = sim.execution.start_times();
  EXPECT_LE(realized_precision(starts, out.corrections), a_max + kTol);

  // P4: Claim 3.1 — equivalent executions give identical corrections.
  std::vector<Duration> arbitrary(n);
  for (auto& s : arbitrary) s = Duration{rng.uniform(-0.5, 0.5)};
  const Execution shifted = sim.execution.shifted(arbitrary);
  ASSERT_TRUE(shifted.equivalent_to(sim.execution));
  const auto shifted_views = shifted.views();
  const SyncOutcome out2 = synchronize(model, shifted_views);
  for (std::size_t p = 0; p < n; ++p)
    EXPECT_DOUBLE_EQ(out.corrections[p], out2.corrections[p]);

  // P5: m̃s = ms + (S_p - S_q).
  const Digraph mls_actual = local_shifts_actual(model, sim.execution);
  const DistanceMatrix ms_actual = global_shift_estimates(mls_actual);
  for (std::size_t p = 0; p < n; ++p)
    for (std::size_t q = 0; q < n; ++q) {
      if (p == q) continue;
      ASSERT_NE(ms_actual.at(p, q), kInfDist);
      EXPECT_NEAR(out.ms_estimates.at(p, q),
                  ms_actual.at(p, q) + starts[p].sec - starts[q].sec, 1e-9);
    }

  // P6: adversarial realizability.  Anchor at the argmax pair of
  // ρ̄ = m̃s(p,q) - x_p + x_q and shift everyone by dist_mls(p,·)/γ.
  // Skipped for the windowed model: its admissible-shift sets can violate
  // Assumption 1 (non-interval), in which case the Lemma 5.3 construction
  // is not guaranteed to stay admissible (see windowed_bias.hpp).
  if (kind == ModelKind::kWindowed) return;
  std::size_t worst_p = 0, worst_q = 1;
  double worst = -kInfDist;
  for (std::size_t p = 0; p < n; ++p)
    for (std::size_t q = 0; q < n; ++q) {
      if (p == q) continue;
      const double v =
          out.ms_estimates.at(p, q) - out.corrections[p] + out.corrections[q];
      if (v > worst) {
        worst = v;
        worst_p = p;
        worst_q = q;
      }
    }
  const double gamma = 1.0 + 1e-6;
  const std::vector<Duration> adv = adversarial_shifts(
      mls_actual, static_cast<NodeId>(worst_p), gamma);
  const Execution stretched = sim.execution.shifted(adv);
  EXPECT_TRUE(model.admissible(stretched));
  EXPECT_TRUE(stretched.equivalent_to(sim.execution));
  const double realized =
      realized_precision(stretched.start_times(), out.corrections);
  EXPECT_LE(realized, a_max + kTol);
  EXPECT_GE(realized, a_max - 1e-4 - kTol)
      << "worst pair (" << worst_p << "," << worst_q << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OptimalityProperty,
    ::testing::Combine(
        ::testing::Values("line", "ring", "star", "complete", "gnp"),
        ::testing::Values(ModelKind::kBounds, ModelKind::kLowerOnly,
                          ModelKind::kNoBounds, ModelKind::kBias,
                          ModelKind::kComposite, ModelKind::kWindowed),
        ::testing::Values(1u, 2u, 3u)),
    [](const ::testing::TestParamInfo<Param>& info) {
      return std::get<0>(info.param) + "_" +
             kind_name(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace cs
