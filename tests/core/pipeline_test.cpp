// local_estimates + global_estimates on hand-built executions, checking the
// §5/§6 plumbing end to end against closed-form expectations.
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "core/global_estimates.hpp"
#include "core/local_estimates.hpp"
#include "core/synchronizer.hpp"
#include "support/builders.hpp"

namespace cs {
namespace {

double edge_weight(const Digraph& g, NodeId from, NodeId to) {
  for (EdgeId e : g.out_edges(from))
    if (g.edge(e).to == to) return g.edge(e).weight;
  return kInfDist;
}

TEST(LocalEstimates, TwoNodeBoundsFormula) {
  const double lb = 0.1, ub = 0.6;
  const double s0 = 1.0, s1 = 2.0;
  const Execution e = test::two_node_execution(s0, s1, {0.2, 0.4}, {0.5});
  SystemModel model = test::bounded_model(make_line(2), lb, ub);
  const auto views = e.views();
  const Digraph mls = local_shift_estimates(model, views);

  // m̃ls(0,1) = min(ub - d̃max(1,0), d̃min(0,1) - lb)
  // d̃(0->1) = d + s0 - s1 = d - 1; d̃(1->0) = d + 1.
  const double mls01 = std::min(ub - (0.5 + 1.0), (0.2 - 1.0) - lb);
  const double mls10 = std::min(ub - (0.4 - 1.0), (0.5 + 1.0) - lb);
  EXPECT_NEAR(edge_weight(mls, 0, 1), mls01, 1e-12);
  EXPECT_NEAR(edge_weight(mls, 1, 0), mls10, 1e-12);
}

TEST(LocalEstimates, ActualVsEstimatedDifferByStartSkew) {
  // m̃ls(p,q) = mls(p,q) + S_p - S_q (definition in §5.3).
  const double s0 = 0.5, s1 = 2.5;
  const Execution e = test::two_node_execution(s0, s1, {0.3, 0.7}, {0.4});
  SystemModel model = test::bounded_model(make_line(2), 0.1, 1.0);
  const auto views = e.views();
  const Digraph est = local_shift_estimates(model, views);
  const Digraph act = local_shifts_actual(model, e);
  EXPECT_NEAR(edge_weight(est, 0, 1), edge_weight(act, 0, 1) + s0 - s1,
              1e-12);
  EXPECT_NEAR(edge_weight(est, 1, 0), edge_weight(act, 1, 0) + s1 - s0,
              1e-12);
}

TEST(GlobalEstimates, PathSumsOnALine) {
  // On a 3-node line the only route 0 -> 2 is through 1; Thm 5.5 says
  // m̃s(0,2) = m̃ls(0,1) + m̃ls(1,2).
  SystemModel model = test::bounded_model(make_line(3), 0.01, 0.05);
  const SimResult r = test::run_ping_pong(model, 21, 0.4);
  const auto views = r.execution.views();
  const Digraph mls = local_shift_estimates(model, views);
  const DistanceMatrix ms = global_shift_estimates(mls);
  EXPECT_NEAR(ms.at(0, 2),
              edge_weight(mls, 0, 1) + edge_weight(mls, 1, 2), 1e-9);
  EXPECT_NEAR(ms.at(2, 0),
              edge_weight(mls, 2, 1) + edge_weight(mls, 1, 0), 1e-9);
}

TEST(GlobalEstimates, JohnsonAndFloydAgree) {
  SystemModel model = test::bounded_model(make_ring(6), 0.01, 0.05);
  const SimResult r = test::run_ping_pong(model, 22, 0.4);
  const auto views = r.execution.views();
  const Digraph mls = local_shift_estimates(model, views);
  const DistanceMatrix a =
      global_shift_estimates(mls, ApspAlgorithm::kJohnson);
  const DistanceMatrix b =
      global_shift_estimates(mls, ApspAlgorithm::kFloydWarshall);
  for (std::size_t i = 0; i < a.size(); ++i)
    for (std::size_t j = 0; j < a.size(); ++j)
      EXPECT_NEAR(a.at(i, j), b.at(i, j), 1e-9);
}

TEST(GlobalEstimates, InconsistentViewsThrow) {
  // An execution violating the declared bounds produces a negative m̃ls
  // cycle, which GLOBAL ESTIMATES must reject.
  const Execution e = test::two_node_execution(0.0, 0.0, {0.9}, {0.9});
  SystemModel model = test::bounded_model(make_line(2), 0.1, 0.3);
  const auto views = e.views();
  const Digraph mls = local_shift_estimates(model, views);
  EXPECT_THROW(global_shift_estimates(mls), InvalidAssumption);
}

TEST(Synchronizer, TwoNodeAnalyticPrecision) {
  // Single message each way under [lb, ub]: the optimal precision is
  //   ( min(ub - d2, d1 - lb) + min(ub - d1, d2 - lb) ) / 2.
  const double lb = 0.1, ub = 0.6, d1 = 0.2, d2 = 0.5;
  const Execution e = test::two_node_execution(1.3, 0.4, {d1}, {d2});
  SystemModel model = test::bounded_model(make_line(2), lb, ub);
  const auto views = e.views();
  const SyncOutcome out = synchronize(model, views);
  const double expected =
      (std::min(ub - d2, d1 - lb) + std::min(ub - d1, d2 - lb)) / 2.0;
  EXPECT_NEAR(out.optimal_precision.finite(), expected, 1e-12);
}

TEST(Synchronizer, TwoNodeBiasAnalyticPrecision) {
  // Bias model: mls(p,q) = min(dmin(p,q), (b + dmin(p,q) - dmax(q,p))/2).
  const double b = 0.2, d1 = 0.5, d2 = 0.6;
  const Execution e = test::two_node_execution(2.0, 0.0, {d1}, {d2});
  SystemModel model = test::bias_model(make_line(2), b);
  const auto views = e.views();
  const SyncOutcome out = synchronize(model, views);
  const double mls01 = std::min(d1, (b + d1 - d2) / 2.0);
  const double mls10 = std::min(d2, (b + d2 - d1) / 2.0);
  EXPECT_NEAR(out.optimal_precision.finite(), (mls01 + mls10) / 2.0, 1e-9);
}

TEST(Synchronizer, AlgorithmChoicesAgree) {
  // Karp/Howard x Johnson/Floyd-Warshall must produce identical outcomes.
  Rng topo_rng(55);
  SystemModel model = test::bounded_model(
      make_connected_gnp(8, 0.35, topo_rng), 0.005, 0.03);
  const SimResult sim = test::run_ping_pong(model, 17, 0.25);
  const auto views = sim.execution.views();

  std::vector<SyncOutcome> outs;
  for (auto apsp : {ApspAlgorithm::kJohnson, ApspAlgorithm::kFloydWarshall})
    for (auto cm : {CycleMeanAlgorithm::kKarp, CycleMeanAlgorithm::kHoward}) {
      SyncOptions opt;
      opt.apsp = apsp;
      opt.cycle_mean = cm;
      outs.push_back(synchronize(model, views, opt));
    }
  for (std::size_t i = 1; i < outs.size(); ++i) {
    EXPECT_NEAR(outs[i].optimal_precision.finite(),
                outs[0].optimal_precision.finite(), 1e-9);
    for (std::size_t p = 0; p < outs[0].corrections.size(); ++p)
      EXPECT_NEAR(outs[i].corrections[p], outs[0].corrections[p], 1e-9);
  }
}

TEST(Synchronizer, ValidatesViewOrder) {
  SystemModel model = test::bounded_model(make_line(2), 0.0, 1.0);
  const Execution e = test::two_node_execution(0.0, 0.0, {0.5}, {0.5});
  auto views = e.views();
  std::swap(views[0], views[1]);
  EXPECT_THROW(synchronize(model, views), InvalidExecution);
  views.pop_back();
  std::vector<View> one{views[0]};
  EXPECT_THROW(synchronize(model, one), InvalidExecution);
}

TEST(Synchronizer, OneWayTrafficBoundsVsLowerBoundOnly) {
  // Same one-directional traffic; finite upper bounds keep the instance
  // bounded, lower-bound-only assumptions do not.
  const Execution e = test::two_node_execution(0.3, 0.9, {0.2, 0.3}, {});
  const auto views = e.views();

  SystemModel bounded = test::bounded_model(make_line(2), 0.1, 0.5);
  const SyncOutcome a = synchronize(bounded, views);
  EXPECT_TRUE(a.bounded());

  SystemModel lower_only = test::lower_bound_model(make_line(2), 0.1);
  const SyncOutcome b = synchronize(lower_only, views);
  EXPECT_FALSE(b.bounded());
  EXPECT_EQ(b.components.component_count, 2u);
}

}  // namespace
}  // namespace cs
