// End-to-end pipeline over the windowed-bias extension: realistic traffic
// where delays drift across probe epochs but stay symmetric within them.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/global_estimates.hpp"
#include "core/local_estimates.hpp"
#include "core/precision.hpp"
#include "core/synchronizer.hpp"
#include "delaymodel/windowed_bias.hpp"
#include "support/builders.hpp"

namespace cs {
namespace {

/// Two-processor execution with explicit (send clock, delay) per message.
Execution timed_two_node(double s0, double s1,
                         const std::vector<TimedObs>& msgs_01,
                         const std::vector<TimedObs>& msgs_10) {
  struct Pending {
    ProcessorId pid;
    double clock;
    ViewEvent ev;
  };
  std::vector<Pending> events;
  MessageId next_id = 1;
  auto emit = [&](ProcessorId from, ProcessorId to, const TimedObs& m,
                  double s_from, double s_to) {
    const MessageId id = next_id++;
    ViewEvent send;
    send.kind = EventKind::kSend;
    send.when = ClockTime{m.send};
    send.msg = id;
    send.peer = to;
    events.push_back({from, m.send, send});
    const double recv_clock = s_from + m.send + m.delay - s_to;
    ViewEvent recv;
    recv.kind = EventKind::kReceive;
    recv.when = ClockTime{recv_clock};
    recv.msg = id;
    recv.peer = from;
    events.push_back({to, recv_clock, recv});
  };
  for (const TimedObs& m : msgs_01) emit(0, 1, m, s0, s1);
  for (const TimedObs& m : msgs_10) emit(1, 0, m, s1, s0);
  std::stable_sort(events.begin(), events.end(),
                   [](const Pending& x, const Pending& y) {
                     return x.clock < y.clock;
                   });
  std::vector<History> hs;
  hs.emplace_back(0, RealTime{s0});
  hs.emplace_back(1, RealTime{s1});
  for (const Pending& p : events) hs[p.pid].append(p.ev);
  return Execution(std::move(hs));
}

/// Probe epochs 100s apart; delays symmetric within an epoch (±0.01 around
/// a center) but the center drifts from 0.5 to 0.8 between epochs.
Execution drifting_epochs(double s0, double s1) {
  return timed_two_node(
      s0, s1,
      {{10.0, 0.50}, {10.2, 0.51}, {110.0, 0.80}, {110.2, 0.81}},
      {{10.1, 0.49}, {10.3, 0.50}, {110.1, 0.79}, {110.3, 0.80}});
}

TEST(WindowedPipeline, SynchronizesWhatPlainBiasRejects) {
  const Execution exec = drifting_epochs(0.4, 1.7);
  const auto views = exec.views();

  // Windowed model: admissible, bounded, sound.
  SystemModel windowed{make_line(2)};
  windowed.set_constraint(make_windowed_bias(0, 1, 0.05, 5.0));
  ASSERT_TRUE(windowed.admissible(exec));
  const SyncOutcome out = synchronize(windowed, views);
  ASSERT_TRUE(out.bounded());
  EXPECT_LE(realized_precision(exec.start_times(), out.corrections),
            out.optimal_precision.finite() + 1e-9);
  // Within-epoch symmetry (±0.01 around the center, bias 0.05) makes the
  // instance tightly synchronizable despite the 0.3s cross-epoch drift.
  EXPECT_LT(out.optimal_precision.finite(), 0.06);

  // Plain bias with the same b: the cross-epoch pairs violate it, and the
  // pipeline detects the contradiction.
  SystemModel plain{make_line(2)};
  plain.set_constraint(make_bias(0, 1, 0.05));
  EXPECT_FALSE(plain.admissible(exec));
  EXPECT_THROW(synchronize(plain, views), InvalidAssumption);
}

TEST(WindowedPipeline, EstimateConsistency) {
  // m̃s = ms + (S_p - S_q) must hold on the timed path too.
  const double s0 = 0.9, s1 = 0.2;
  const Execution exec = drifting_epochs(s0, s1);
  const auto views = exec.views();
  SystemModel model{make_line(2)};
  model.set_constraint(make_windowed_bias(0, 1, 0.05, 5.0));

  const Digraph mls_est = local_shift_estimates(model, views);
  const Digraph mls_act = local_shifts_actual(model, exec);
  const DistanceMatrix est = global_shift_estimates(mls_est);
  const DistanceMatrix act = global_shift_estimates(mls_act);
  EXPECT_NEAR(est.at(0, 1), act.at(0, 1) + s0 - s1, 1e-9);
  EXPECT_NEAR(est.at(1, 0), act.at(1, 0) + s1 - s0, 1e-9);
}

TEST(WindowedPipeline, WideWindowMatchesPlainBiasPrecision) {
  // With W larger than the whole trace span, windowed == plain bias.
  const Execution exec = timed_two_node(
      0.5, 0.1, {{10.0, 0.50}, {10.2, 0.52}}, {{10.1, 0.49}, {10.3, 0.51}});
  const auto views = exec.views();

  SystemModel windowed{make_line(2)};
  windowed.set_constraint(make_windowed_bias(0, 1, 0.05, 1e6));
  SystemModel plain{make_line(2)};
  plain.set_constraint(make_bias(0, 1, 0.05));

  const SyncOutcome w = synchronize(windowed, views);
  const SyncOutcome p = synchronize(plain, views);
  EXPECT_NEAR(w.optimal_precision.finite(), p.optimal_precision.finite(),
              1e-9);
  for (int i = 0; i < 2; ++i)
    EXPECT_NEAR(w.corrections[i], p.corrections[i], 1e-9);
}

TEST(WindowedPipeline, CompositeWithBoundsOnRealTraffic) {
  const Execution exec = drifting_epochs(0.0, 0.3);
  const auto views = exec.views();
  SystemModel model{make_line(2)};
  std::vector<std::unique_ptr<LinkConstraint>> parts;
  parts.push_back(make_bounds(0, 1, 0.4, 1.0));
  parts.push_back(make_windowed_bias(0, 1, 0.05, 5.0));
  model.set_constraint(make_composite(0, 1, std::move(parts)));
  ASSERT_TRUE(model.admissible(exec));
  const SyncOutcome out = synchronize(model, views);
  ASSERT_TRUE(out.bounded());

  // The composite can only tighten relative to windowed alone.
  SystemModel windowed_only{make_line(2)};
  windowed_only.set_constraint(make_windowed_bias(0, 1, 0.05, 5.0));
  const SyncOutcome w = synchronize(windowed_only, views);
  EXPECT_LE(out.optimal_precision.finite(),
            w.optimal_precision.finite() + 1e-9);
}

TEST(WindowedPipeline, SimulatedDriftingCongestion) {
  // Full simulator path: delays follow a sinusoidal congestion process
  // (period 2s, amplitude 30ms, jitter 5ms).  Within W = 0.1s the center
  // moves at most ~9.4ms, so a windowed bias of 16ms is *true*; across the
  // 1.6s probing span centers swing ~60ms, so a global bias of 16ms is
  // *false*.  The windowed model must admit, synchronize, and stay sound.
  SystemModel windowed{make_ring(4)};
  for (auto [a, b] : windowed.topology().links)
    windowed.set_constraint(make_windowed_bias(a, b, 0.016, 0.1));

  Rng rng(33);
  SimOptions opts;
  opts.start_offsets = random_start_offsets(4, 0.2, rng);
  opts.seed = 33;
  std::vector<std::unique_ptr<DelaySampler>> samplers;
  for (std::size_t i = 0; i < windowed.topology().link_count(); ++i)
    samplers.push_back(make_drifting_congestion_sampler(
        /*base=*/0.05, /*amplitude=*/0.03, /*period=*/2.0,
        /*jitter=*/0.005));
  PingPongParams probe;
  probe.warmup = Duration{0.3};
  probe.spacing = Duration{0.1};
  probe.rounds = 16;
  const SimResult sim =
      simulate(windowed, make_ping_pong(probe), std::move(samplers), opts);
  // check_admissible defaulted to true: reaching here proves the windowed
  // assumption held on the generated traffic.

  const auto views = sim.execution.views();
  const SyncOutcome out = synchronize(windowed, views);
  ASSERT_TRUE(out.bounded());
  EXPECT_LE(realized_precision(sim.execution.start_times(),
                               out.corrections),
            out.optimal_precision.finite() + 1e-9);

  // The same traffic falsifies a *global* bias of the same magnitude.
  SystemModel plain{make_ring(4)};
  for (auto [a, b] : plain.topology().links)
    plain.set_constraint(make_bias(a, b, 0.016));
  EXPECT_FALSE(plain.admissible(sim.execution));
}

}  // namespace
}  // namespace cs
