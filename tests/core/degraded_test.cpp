// Degraded-mode synchronization: coverage census, staleness carry-forward,
// fault-equivalence of the pairing layer, and the end-to-end acceptance
// scenario (lossy epoch + crashed processor => per-component report, not an
// exception).
#include "core/degraded.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_set>

#include "core/epochs.hpp"
#include "graph/topology.hpp"
#include "proto/beacon.hpp"
#include "sim/fault_plan.hpp"
#include "sim/simulator.hpp"
#include "support/builders.hpp"

namespace cs {
namespace {

BeaconParams steady_beacons(std::size_t count) {
  BeaconParams params;
  params.warmup = Duration{0.1};
  params.period = Duration{0.1};
  params.count = count;
  return params;
}

SimOptions zero_skew_options(std::size_t n, std::uint64_t seed,
                             const FaultPlan* plan = nullptr,
                             Metrics* metrics = nullptr) {
  SimOptions opts;
  opts.start_offsets.assign(n, Duration{0.0});
  opts.seed = seed;
  opts.faults = plan;
  opts.metrics = metrics;
  return opts;
}

std::set<std::set<NodeId>> component_sets(const SccResult& scc) {
  std::set<std::set<NodeId>> out;
  for (const auto& members : scc.members())
    out.insert(std::set<NodeId>(members.begin(), members.end()));
  return out;
}

TEST(LinkCoverage, CensusesBothDirectionsOfEveryLink) {
  const SystemModel model = test::bounded_model(make_line(3), 0.01, 0.05);
  LinkTraffic traffic;
  traffic.add(0, 1, TimedObs{0.0, 0.03});
  traffic.add(0, 1, TimedObs{1.0, 0.04});
  traffic.add(1, 0, TimedObs{0.5, 0.03});
  // Link 1-2 is silent in both directions.
  const LinkCoverage cov = link_coverage(model, traffic);
  ASSERT_EQ(cov.total_directions, 4u);  // two links, two directions each
  ASSERT_EQ(cov.directions.size(), 4u);
  EXPECT_EQ(cov.observed_directions, 2u);
  EXPECT_DOUBLE_EQ(cov.fraction(), 0.5);
  // Topology order: (0->1, 1->0), (1->2, 2->1).
  EXPECT_EQ(cov.directions[0].observations, 2u);
  EXPECT_EQ(cov.directions[1].observations, 1u);
  EXPECT_EQ(cov.directions[2].observations, 0u);
  EXPECT_EQ(cov.directions[3].observations, 0u);
}

TEST(MlsCarry, IdentityWhenDisabled) {
  MlsCarry carry(StalenessOptions{});  // carry_forward is false
  Digraph g(2);
  g.add_edge(0, 1, 1.0);
  const Digraph out1 = carry.apply(g);
  EXPECT_EQ(out1.edge_count(), 1u);
  const Digraph empty(2);
  const Digraph out2 = carry.apply(empty);
  EXPECT_EQ(out2.edge_count(), 0u);  // nothing remembered
  EXPECT_EQ(carry.last_carried(), 0u);
}

TEST(MlsCarry, WidensByAgeAndExpires) {
  StalenessOptions opts;
  opts.carry_forward = true;
  opts.widen_per_epoch = 0.1;
  opts.max_carry_epochs = 2;
  MlsCarry carry(opts);

  Digraph fresh(2);
  fresh.add_edge(0, 1, 1.0);
  fresh.add_edge(1, 0, 2.0);
  EXPECT_EQ(carry.apply(fresh).edge_count(), 2u);
  EXPECT_EQ(carry.last_carried(), 0u);

  // Epoch 2: only 0->1 observed, tighter.  1->0 carried at age 1.
  Digraph partial(2);
  partial.add_edge(0, 1, 0.5);
  const Digraph out2 = carry.apply(partial);
  ASSERT_EQ(out2.edge_count(), 2u);
  EXPECT_EQ(carry.last_carried(), 1u);
  double w01 = 0.0, w10 = 0.0;
  for (const Edge& e : out2.edges()) (e.from == 0 ? w01 : w10) = e.weight;
  EXPECT_DOUBLE_EQ(w01, 0.5);
  EXPECT_DOUBLE_EQ(w10, 2.0 + 0.1);

  // Epoch 3: nothing observed.  0->1 age 1, 1->0 age 2 — both carried.
  const Digraph out3 = carry.apply(Digraph(2));
  ASSERT_EQ(out3.edge_count(), 2u);
  EXPECT_EQ(carry.last_carried(), 2u);
  for (const Edge& e : out3.edges())
    (e.from == 0 ? w01 : w10) = e.weight;
  EXPECT_DOUBLE_EQ(w01, 0.5 + 0.1);
  EXPECT_DOUBLE_EQ(w10, 2.0 + 0.2);

  // Epoch 4: 1->0 would be age 3 > max_carry_epochs — expired.
  const Digraph out4 = carry.apply(Digraph(2));
  ASSERT_EQ(out4.edge_count(), 1u);
  EXPECT_EQ(carry.last_carried(), 1u);
  EXPECT_EQ(out4.edges()[0].from, 0u);
  EXPECT_DOUBLE_EQ(out4.edges()[0].weight, 0.5 + 0.2);

  carry.reset();
  EXPECT_EQ(carry.apply(Digraph(2)).edge_count(), 0u);
}

TEST(MlsCarry, ResetsOnInstanceShapeChange) {
  StalenessOptions opts;
  opts.carry_forward = true;
  MlsCarry carry(opts);
  Digraph g2(2);
  g2.add_edge(0, 1, 1.0);
  carry.apply(g2);
  // Different node count: the memory must not leak across instances.
  const Digraph out = carry.apply(Digraph(3));
  EXPECT_EQ(out.edge_count(), 0u);
  EXPECT_EQ(carry.last_carried(), 0u);
}

// Satellite property: under omission + duplication faults, pairing with
// kDropOrphans over the faulty views must recover exactly the surviving
// message set — and the pipeline must produce the same corrections as a
// strict run over views with the duplicate re-deliveries scrubbed out.
TEST(FaultEquivalence, DropOrphansMatchesCleanedStrictRun) {
  const SystemModel model = test::bounded_model(make_complete(4), 0.01, 0.05);
  FaultPlan plan;
  plan.default_link.drop_probability = 0.2;
  plan.default_link.duplicate_probability = 0.3;
  plan.default_link.duplicate_lag = 0.01;
  const SimResult sim =
      simulate(model, make_beacon(steady_beacons(15)),
               zero_skew_options(4, 31, &plan));
  ASSERT_GT(sim.fault_dropped_messages, 0u);
  ASSERT_GT(sim.duplicated_messages, 0u);
  const auto faulty = sim.execution.views();

  // Scrub the duplicates by hand: keep only the first receive of each id.
  std::vector<View> cleaned = faulty;
  for (View& v : cleaned) {
    std::unordered_set<MessageId> seen;
    std::vector<ViewEvent> kept;
    kept.reserve(v.events.size());
    for (const ViewEvent& e : v.events) {
      if (e.kind == EventKind::kReceive && !seen.insert(e.msg).second)
        continue;
      kept.push_back(e);
    }
    v.events = std::move(kept);
  }

  // Pairing under kDropOrphans counts every dropped send as unreceived and
  // pairs each surviving message exactly once.
  PairingStats stats;
  const auto paired =
      pair_messages(faulty, MatchPolicy::kDropOrphans, &stats);
  const auto strict = pair_messages(cleaned, MatchPolicy::kStrict);
  ASSERT_EQ(paired.size(), strict.size());
  std::set<MessageId> ids;
  for (const PairedMessage& m : paired) ids.insert(m.id);
  EXPECT_EQ(ids.size(), paired.size());  // no id paired twice
  EXPECT_EQ(stats.unreceived_sends, sim.fault_dropped_messages);
  EXPECT_EQ(stats.duplicate_receives, sim.duplicated_messages);
  // A dropped message has no receive, hence can never be paired.
  std::unordered_set<MessageId> received;
  for (const View& v : faulty)
    for (const ViewEvent& e : v.receives()) received.insert(e.msg);
  for (const MessageId id : ids) EXPECT_TRUE(received.contains(id));

  // Same surviving message set => same corrections, exactly.
  SyncOptions tolerant;
  tolerant.match = MatchPolicy::kDropOrphans;
  const SyncOutcome a = synchronize(model, faulty, tolerant);
  const SyncOutcome b = synchronize(model, cleaned);
  ASSERT_TRUE(a.bounded());
  ASSERT_TRUE(b.bounded());
  EXPECT_DOUBLE_EQ(a.optimal_precision.finite(),
                   b.optimal_precision.finite());
  ASSERT_EQ(a.corrections.size(), b.corrections.size());
  for (std::size_t p = 0; p < a.corrections.size(); ++p)
    EXPECT_DOUBLE_EQ(a.corrections[p], b.corrections[p]);
}

// Sliding-window epochs with an outage: without carry-forward the epoch
// whose window saw no 1<->2 traffic is partitioned; with carry-forward its
// precision stays bounded, widened by staleness.
TEST(DegradedEpochs, CarryForwardBridgesAnOutage) {
  const SystemModel model = test::bounded_model(make_line(3), 0.001, 0.003);
  FaultPlan plan;
  plan.link(1, 2).down.push_back(TimeWindow{RealTime{1.0}});
  const SimResult sim =
      simulate(model, make_beacon(steady_beacons(40)),
               zero_skew_options(3, 41, &plan));
  const auto views = sim.execution.views();
  const std::vector<ClockTime> boundaries{ClockTime{1.0}, ClockTime{1.8},
                                          ClockTime{2.6}};
  EpochOptions opts;
  opts.window = Duration{0.8};  // sliding window: old probes age out

  const auto starved = epochal_synchronize(model, views, boundaries, opts);
  ASSERT_EQ(starved.size(), 3u);
  EXPECT_TRUE(starved[0].sync.bounded());  // outage starts at 1.0
  EXPECT_FALSE(starved[2].sync.bounded());
  EXPECT_LT(starved[2].coverage.fraction(), 1.0);
  EXPECT_EQ(starved[2].carried_edges, 0u);
  EXPECT_EQ(component_sets(starved[2].sync.components),
            (std::set<std::set<NodeId>>{{0, 1}, {2}}));

  opts.staleness.carry_forward = true;
  opts.staleness.widen_per_epoch = 0.01;
  const auto carried = epochal_synchronize(model, views, boundaries, opts);
  ASSERT_TRUE(carried[2].sync.bounded());
  EXPECT_GT(carried[2].carried_edges, 0u);
  // Staleness widening can only loosen the guarantee of the first epoch.
  EXPECT_GE(carried[2].sync.optimal_precision.finite(),
            carried[0].sync.optimal_precision.finite() - 1e-12);

  // Both drivers agree in degraded mode too.
  const auto incr =
      epochal_synchronize_incremental(model, views, boundaries, opts);
  ASSERT_EQ(incr.size(), carried.size());
  for (std::size_t k = 0; k < incr.size(); ++k) {
    ASSERT_EQ(incr[k].sync.bounded(), carried[k].sync.bounded());
    ASSERT_EQ(incr[k].carried_edges, carried[k].carried_edges);
    for (std::size_t p = 0; p < incr[k].sync.corrections.size(); ++p)
      EXPECT_NEAR(incr[k].sync.corrections[p],
                  carried[k].sync.corrections[p], 1e-9);
  }
}

TEST(DegradedEpochs, CarriedEdgesExpireIntoPartition) {
  const SystemModel model = test::bounded_model(make_line(3), 0.001, 0.003);
  FaultPlan plan;
  plan.link(1, 2).down.push_back(TimeWindow{RealTime{1.0}});
  const SimResult sim =
      simulate(model, make_beacon(steady_beacons(40)),
               zero_skew_options(3, 43, &plan));
  const auto views = sim.execution.views();
  const std::vector<ClockTime> boundaries{ClockTime{1.0}, ClockTime{1.8},
                                          ClockTime{2.6}, ClockTime{3.4}};
  EpochOptions opts;
  opts.window = Duration{0.8};
  opts.staleness.carry_forward = true;
  opts.staleness.widen_per_epoch = 0.01;
  opts.staleness.max_carry_epochs = 1;

  const auto epochs = epochal_synchronize(model, views, boundaries, opts);
  ASSERT_EQ(epochs.size(), 4u);
  EXPECT_TRUE(epochs[1].sync.bounded());   // age 1: still carried
  EXPECT_GT(epochs[1].carried_edges, 0u);
  EXPECT_FALSE(epochs[2].sync.bounded());  // age 2 > max: expired
  EXPECT_FALSE(epochs[3].sync.bounded());
}

// The ISSUE's end-to-end acceptance scenario: a 20%-loss epoch with a
// crashed processor yields finite per-component corrections and a correct
// component report instead of an exception.
TEST(DegradedEpochs, LossyEpochWithCrashReportsPerComponentPrecision) {
  const SystemModel model = test::bounded_model(make_ring(4), 0.01, 0.05);
  Metrics metrics;
  FaultPlan plan;
  plan.default_link.drop_probability = 0.2;
  plan.crash(3, RealTime{0.05});  // crashed before any beacon fires
  SimOptions sim_opts = zero_skew_options(4, 47, &plan, &metrics);
  const SimResult sim =
      simulate(model, make_beacon(steady_beacons(20)), sim_opts);
  const auto views = sim.execution.views();

  EpochOptions opts;
  opts.sync.metrics = &metrics;
  const std::vector<ClockTime> boundaries{ClockTime{10.0}};
  const auto epochs = epochal_synchronize(model, views, boundaries, opts);
  ASSERT_EQ(epochs.size(), 1u);
  const EpochOutcome& ep = epochs[0];

  // Partitioned, not thrown: overall precision is +inf but every processor
  // still gets a finite correction and every component a finite precision.
  EXPECT_FALSE(ep.sync.bounded());
  ASSERT_EQ(ep.sync.corrections.size(), 4u);
  for (const double c : ep.sync.corrections) EXPECT_TRUE(std::isfinite(c));
  EXPECT_EQ(component_sets(ep.sync.components),
            (std::set<std::set<NodeId>>{{0, 1, 2}, {3}}));
  ASSERT_EQ(ep.sync.component_precision.size(),
            ep.sync.components.component_count);
  for (const double p : ep.sync.component_precision) {
    EXPECT_TRUE(std::isfinite(p));
    EXPECT_GE(p, 0.0);
  }

  // The coverage census names the starved directions: both links of the
  // crashed processor, both ways.
  std::size_t starved = 0;
  for (const DirectedCoverage& d : ep.coverage.directions)
    if (d.observations == 0) {
      ++starved;
      EXPECT_TRUE(d.from == 3 || d.to == 3);
    }
  EXPECT_EQ(starved, 4u);
  EXPECT_EQ(metrics.counter("degraded.unobserved_directions"), 4u);
  EXPECT_EQ(metrics.counter("pipeline.epochs"), 1u);
  EXPECT_GT(metrics.counter("fault.dropped"), 0u);
}

}  // namespace
}  // namespace cs
