// Byte-identity of compute_shifts across thread counts.
//
// ShiftsOptions::threads shards per-finiteness-component solves across the
// work-stealing pool.  Components write disjoint slices of the result and
// all float work stays inside one component, so the outputs must be
// BIT-identical — not merely close — for any worker count, under both
// cycle-mean algorithms and with warm-started Howard.  This is the same
// contract the campaign engine pins for whole-campaign output.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "core/shifts.hpp"
#include "graph/arena.hpp"

namespace cs {
namespace {

/// m̃s matrix with `blocks` finiteness components: dense consistent shifts
/// inside each block (closure of per-node offsets plus non-negative noise),
/// +inf across blocks.  Built to be a valid shortest-path closure so SHIFTS
/// accepts it.
DistanceMatrix blocky_ms(std::size_t n, std::size_t blocks, Rng& rng) {
  DistanceMatrix ms(n);
  std::vector<std::size_t> block_of(n);
  for (std::size_t v = 0; v < n; ++v) block_of[v] = v % blocks;

  // Within a block: ms(p, q) = x(q) - x(p) + slack, then Floyd–Warshall
  // closed so triangle inequality holds exactly.
  std::vector<double> x(n);
  for (double& xi : x) xi = rng.uniform(-1.0, 1.0);
  for (std::size_t p = 0; p < n; ++p)
    for (std::size_t q = 0; q < n; ++q) {
      if (p == q) continue;
      if (block_of[p] == block_of[q])
        ms.at(p, q) = x[q] - x[p] + rng.uniform(0.0, 0.5);
      else
        ms.at(p, q) = kInfDist;
    }
  for (std::size_t k = 0; k < n; ++k)
    for (std::size_t i = 0; i < n; ++i) {
      if (ms.at(i, k) == kInfDist) continue;
      for (std::size_t j = 0; j < n; ++j) {
        if (ms.at(k, j) == kInfDist) continue;
        const double via = ms.at(i, k) + ms.at(k, j);
        if (via < ms.at(i, j)) ms.at(i, j) = via;
      }
    }
  return ms;
}

/// Bitwise equality for doubles (covers -0.0 vs 0.0 and any NaN payload).
bool bits_equal(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

void expect_identical(const ShiftsResult& a, const ShiftsResult& b) {
  EXPECT_TRUE(bits_equal(a.corrections, b.corrections));
  EXPECT_TRUE(bits_equal(a.component_a_max, b.component_a_max));
  EXPECT_EQ(a.components.component, b.components.component);
  EXPECT_EQ(a.components.component_count, b.components.component_count);
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.a_max.is_finite(), b.a_max.is_finite());
  if (a.a_max.is_finite()) EXPECT_EQ(a.a_max.finite(), b.a_max.finite());
}

TEST(ShiftsThreads, ByteIdenticalAcrossThreadCountsKarp) {
  Rng rng(42);
  for (std::size_t n : {7u, 16u, 33u}) {
    for (std::size_t blocks : {2u, 3u, 5u}) {
      const DistanceMatrix ms = blocky_ms(n, blocks, rng);
      ShiftsOptions serial;
      serial.algorithm = CycleMeanAlgorithm::kKarp;
      const ShiftsResult ref = compute_shifts(ms, serial);
      for (std::size_t threads : {2u, 4u, 7u}) {
        ShiftsOptions par = serial;
        par.threads = threads;
        expect_identical(ref, compute_shifts(ms, par));
      }
    }
  }
}

TEST(ShiftsThreads, ByteIdenticalAcrossThreadCountsHoward) {
  Rng rng(43);
  const DistanceMatrix ms = blocky_ms(24, 4, rng);
  Metrics metrics;

  ShiftsOptions serial;
  serial.algorithm = CycleMeanAlgorithm::kHoward;
  serial.metrics = &metrics;
  const ShiftsResult cold = compute_shifts(ms, serial);

  ShiftsOptions par = serial;
  par.threads = 4;
  expect_identical(cold, compute_shifts(ms, par));

  // Warm-started second epoch: the policy feedback loop must also be
  // thread-count independent.
  ShiftsOptions warm_serial = serial;
  warm_serial.warm_policy = &cold.policy;
  ShiftsOptions warm_par = par;
  warm_par.warm_policy = &cold.policy;
  expect_identical(compute_shifts(ms, warm_serial),
                   compute_shifts(ms, warm_par));
}

TEST(ShiftsThreads, ArenaOptionMatchesPrivateArena) {
  Rng rng(44);
  const DistanceMatrix ms = blocky_ms(18, 3, rng);
  ShiftsOptions plain;
  const ShiftsResult ref = compute_shifts(ms, plain);

  EpochArena arena;
  ShiftsOptions with_arena;
  with_arena.arena = &arena;
  // Reused across epochs, as the incremental synchronizer drives it.
  for (int epoch = 0; epoch < 3; ++epoch)
    expect_identical(ref, compute_shifts(ms, with_arena));
}

TEST(ShiftsThreads, SingleComponentIgnoresThreadOption) {
  Rng rng(45);
  const DistanceMatrix ms = blocky_ms(12, 1, rng);
  ShiftsOptions serial;
  ShiftsOptions par;
  par.threads = 8;
  const ShiftsResult a = compute_shifts(ms, serial);
  const ShiftsResult b = compute_shifts(ms, par);
  expect_identical(a, b);
  EXPECT_TRUE(a.bounded());
}

}  // namespace
}  // namespace cs
