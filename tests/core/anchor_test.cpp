#include "core/anchor.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/precision.hpp"
#include "core/synchronizer.hpp"
#include "support/builders.hpp"

namespace cs {
namespace {

TEST(Anchor, ShiftsWholeComponentByConstant) {
  SystemModel model = test::bounded_model(make_ring(4), 0.01, 0.05);
  const SimResult sim = test::run_ping_pong(model, 3, 0.2);
  const auto views = sim.execution.views();
  const SyncOutcome out = synchronize(model, views);
  ASSERT_TRUE(out.bounded());

  const double external = -1.234;  // reference knows its absolute offset
  const auto anchored = anchor_to_reference(out.corrections, out.components,
                                            2, external);
  EXPECT_DOUBLE_EQ(anchored[2], external);
  // Pairwise differences (and hence precision) unchanged.
  for (std::size_t p = 0; p < 4; ++p)
    for (std::size_t q = 0; q < 4; ++q)
      EXPECT_NEAR(anchored[p] - anchored[q],
                  out.corrections[p] - out.corrections[q], 1e-12);
  EXPECT_NEAR(
      guaranteed_precision(out.ms_estimates, anchored).finite(),
      out.optimal_precision.finite(), 1e-9);
}

TEST(Anchor, TouchesOnlyReferenceComponent) {
  // Silent-odd beacons on a star + lower bounds: several components.
  SystemModel model = test::lower_bound_model(make_star(4), 0.01);
  const Execution e = test::two_node_execution(0.1, 0.2, {0.5}, {});
  // Build a 4-processor execution with traffic only 0 -> 1.
  std::vector<History> hs;
  hs.push_back(e.history(0));
  hs.push_back(e.history(1));
  hs.emplace_back(2, RealTime{0.0});
  hs.emplace_back(3, RealTime{0.0});
  const Execution exec{std::move(hs)};
  const auto views = exec.views();
  const SyncOutcome out = synchronize(model, views);
  ASSERT_FALSE(out.bounded());

  const auto anchored =
      anchor_to_reference(out.corrections, out.components, 0, 5.0);
  EXPECT_DOUBLE_EQ(anchored[0], 5.0);
  // Processors in other components keep their corrections.
  for (std::size_t p = 1; p < 4; ++p) {
    if (out.components.component[p] != out.components.component[0]) {
      EXPECT_DOUBLE_EQ(anchored[p], out.corrections[p]);
    }
  }
}

TEST(Anchor, Validation) {
  SccResult comps;
  comps.component = {0, 0};
  comps.component_count = 1;
  const std::vector<double> x{0.0, 1.0};
  EXPECT_THROW(anchor_to_reference(x, comps, 7, 0.0), Error);
  SccResult wrong;
  wrong.component = {0};
  wrong.component_count = 1;
  EXPECT_THROW(anchor_to_reference(x, wrong, 0, 0.0), Error);
}

}  // namespace
}  // namespace cs
