// Zone-hierarchical synchronization (core/zones.hpp): plan constructors,
// Thm 5.5/5.6 composition properties against the dense pipeline, the
// thread-count determinism contract, and the zoned realized-precision
// splitter.
#include "core/zones.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "core/precision.hpp"
#include "core/synchronizer.hpp"
#include "support/builders.hpp"

namespace cs {
namespace {

constexpr double kTol = 1e-9;

// ---------------------------------------------------------------------------
// Plan constructors

TEST(ZonePlanBuilders, AssignmentDensifiesSparseLabels) {
  // Labels 7, 7, 1000000, 7, 3: first-appearance densification must map
  // them to 0, 0, 1, 0, 2 without allocating label-sized arrays.
  const std::vector<std::uint32_t> raw{7, 7, 1000000, 7, 3};
  const ZonePlan plan = zone_plan_from_assignment(raw);
  EXPECT_EQ(plan.count, 3u);
  EXPECT_EQ(plan.zone_of,
            (std::vector<std::uint32_t>{0, 0, 1, 0, 2}));
  const auto members = plan.members();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0], (std::vector<NodeId>{0, 1, 3}));
  EXPECT_EQ(members[1], (std::vector<NodeId>{2}));
  EXPECT_EQ(members[2], (std::vector<NodeId>{4}));
}

TEST(ZonePlanBuilders, AssignmentRejectsEmpty) {
  EXPECT_THROW(zone_plan_from_assignment({}), Error);
}

TEST(ZonePlanBuilders, GreedyBfsCoversEveryNodeOnce) {
  Rng rng(99);
  const Topology topo = make_connected_gnp(40, 0.15, rng);
  for (const std::size_t target : {1u, 5u, 13u, 40u, 100u}) {
    const ZonePlan plan = greedy_bfs_zones(topo, target);
    ASSERT_EQ(plan.zone_of.size(), topo.node_count);
    ASSERT_GE(plan.count, 1u);
    std::vector<std::size_t> sizes(plan.count, 0);
    for (const std::uint32_t z : plan.zone_of) {
      ASSERT_LT(z, plan.count);
      ++sizes[z];
    }
    for (std::size_t z = 0; z < plan.count; ++z) {
      EXPECT_GE(sizes[z], 1u) << "empty zone " << z;
      EXPECT_LE(sizes[z], target);
    }
  }
  // target >= n on a connected graph is a single zone.
  EXPECT_EQ(greedy_bfs_zones(topo, topo.node_count).count, 1u);
}

TEST(ZonePlanBuilders, DatacenterZonesMatchRackStructure) {
  // dc 2 3 4: nodes 0..1 spines, 2..4 ToRs, 5..16 hosts rack-major.
  const ZonePlan plan = datacenter_zones(2, 3, 4);
  EXPECT_EQ(plan.count, 5u);  // 2 spine singletons + 3 racks
  EXPECT_EQ(plan.zone_of.size(), 2u + 3u + 12u);
  EXPECT_EQ(plan.zone_of[0], 0u);
  EXPECT_EQ(plan.zone_of[1], 1u);
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(plan.zone_of[2 + r], 2u + r);          // ToR
    for (std::size_t h = 0; h < 4; ++h)
      EXPECT_EQ(plan.zone_of[5 + r * 4 + h], 2u + r);  // its hosts
    EXPECT_EQ(plan.leaders[2 + r], NodeId(2 + r));   // ToR leads its rack
  }
}

// ---------------------------------------------------------------------------
// Composition vs the dense pipeline

SyncOptions serial_opts() {
  SyncOptions opts;
  opts.threads = 1;
  return opts;
}

TEST(ZonedSync, SingleZoneIsBitIdenticalToDense) {
  for (const std::uint64_t seed : {3u, 17u, 29u}) {
    SystemModel model = test::bounded_model(make_ring(9), 0.002, 0.01);
    const SimResult run = test::run_ping_pong(model, seed, 0.3);
    const auto views = run.execution.views();

    const SyncOutcome dense = synchronize(model, views, serial_opts());
    ASSERT_TRUE(dense.bounded());

    const std::vector<std::uint32_t> all_zero(9, 0);
    const ZonePlan plan = zone_plan_from_assignment(all_zero);
    const ZonedOutcome zoned =
        synchronize_zoned(model, views, plan, serial_opts());

    ASSERT_TRUE(zoned.bounded());
    // Exact equality, not near: one zone rooted at the gauge root IS the
    // dense pipeline (same APSP, same SHIFTS, no re-gauge).
    EXPECT_EQ(zoned.composed_bound.finite(),
              dense.optimal_precision.finite());
    ASSERT_EQ(zoned.corrections.size(), dense.corrections.size());
    for (std::size_t p = 0; p < dense.corrections.size(); ++p)
      EXPECT_EQ(zoned.corrections[p], dense.corrections[p]) << "p=" << p;
  }
}

TEST(ZonedSync, ComposedBoundContainsDenseAndRealized) {
  // Property sweep: small graphs, zones in {1, 2, 4} (via target sizes).
  // Invariants: composed bound >= dense Ã^max, realized precision of the
  // composed corrections <= composed bound, per-zone Thm 4.6 gaps ~ 0.
  for (const std::uint64_t seed : {5u, 11u, 42u}) {
    Rng rng(seed);
    const Topology topo = make_connected_gnp(24, 0.2, rng);
    SystemModel model = test::bounded_model(topo, 0.002, 0.01);
    const SimResult run = test::run_ping_pong(model, seed * 7 + 1, 0.3);
    const auto views = run.execution.views();
    const auto starts = run.execution.start_times();

    const SyncOutcome dense = synchronize(model, views, serial_opts());
    ASSERT_TRUE(dense.bounded());
    const double dense_opt = dense.optimal_precision.finite();

    for (const std::size_t target : {24u, 12u, 6u}) {
      const ZonePlan plan = greedy_bfs_zones(topo, target);
      const ZonedOutcome zoned =
          synchronize_zoned(model, views, plan, serial_opts());
      ASSERT_TRUE(zoned.bounded())
          << "target " << target << " zones " << plan.count;
      const double bound = zoned.composed_bound.finite();
      EXPECT_GE(bound, dense_opt - kTol)
          << "composed bound below the instance optimum";
      const double realized =
          realized_precision(starts, zoned.corrections);
      EXPECT_LE(realized, bound + kTol) << "composed bound unsound";
      for (const ZoneStats& z : zoned.zones) {
        EXPECT_TRUE(z.bounded);
        EXPECT_LE(z.thm46_gap, kTol);
      }
      EXPECT_LE(zoned.quotient_thm46_gap, kTol);
      // Gauge: the composed corrections are rooted like the dense ones.
      EXPECT_EQ(zoned.corrections[0], 0.0);
    }
  }
}

TEST(ZonedSync, ThreadCountDoesNotChangeABit) {
  Rng rng(7);
  const Topology topo = make_connected_gnp(32, 0.15, rng);
  SystemModel model = test::bounded_model(topo, 0.002, 0.01);
  const SimResult run = test::run_ping_pong(model, 123, 0.25);
  const auto views = run.execution.views();
  const ZonePlan plan = greedy_bfs_zones(topo, 8);

  SyncOptions serial = serial_opts();
  SyncOptions wide = serial_opts();
  wide.threads = 4;
  const ZonedOutcome a = synchronize_zoned(model, views, plan, serial);
  const ZonedOutcome b = synchronize_zoned(model, views, plan, wide);

  ASSERT_EQ(a.corrections.size(), b.corrections.size());
  for (std::size_t p = 0; p < a.corrections.size(); ++p)
    EXPECT_EQ(a.corrections[p], b.corrections[p]) << "p=" << p;
  EXPECT_EQ(a.composed_bound.value(), b.composed_bound.value());
  ASSERT_EQ(a.zones.size(), b.zones.size());
  for (std::size_t z = 0; z < a.zones.size(); ++z)
    EXPECT_EQ(a.zones[z].a_max, b.zones[z].a_max);
}

TEST(ZonedSync, SyncOptionsZonesRoutesThroughSynchronize) {
  // options.zones on the facade must yield the composed corrections and
  // report the composed bound as optimal_precision.
  SystemModel model = test::bounded_model(make_ring(12), 0.002, 0.01);
  const SimResult run = test::run_ping_pong(model, 31, 0.3);
  const auto views = run.execution.views();
  const ZonePlan plan = greedy_bfs_zones(model.topology(), 4);

  const ZonedOutcome direct =
      synchronize_zoned(model, views, plan, serial_opts());
  SyncOptions opts = serial_opts();
  opts.zones = &plan;
  const SyncOutcome faced = synchronize(model, views, opts);

  ASSERT_TRUE(faced.bounded());
  EXPECT_EQ(faced.optimal_precision.finite(),
            direct.composed_bound.finite());
  EXPECT_EQ(faced.corrections, direct.corrections);
  EXPECT_EQ(faced.ms_estimates.size(), 0u);  // never materialized
  EXPECT_EQ(faced.components.component_count, 1u);
}

// ---------------------------------------------------------------------------
// Realized-precision splitter

TEST(ZoneRealizedPrecision, MatchesBruteForceSplit) {
  Rng rng(404);
  const std::size_t n = 37;
  std::vector<std::uint32_t> assignment(n);
  std::vector<RealTime> starts(n);
  std::vector<double> x(n);
  for (std::size_t p = 0; p < n; ++p) {
    assignment[p] = static_cast<std::uint32_t>(rng.uniform_int(5));
    starts[p] = RealTime{rng.uniform(0.0, 3.0)};
    x[p] = rng.uniform(-1.0, 1.0);
  }
  const ZonePlan plan = zone_plan_from_assignment(assignment);
  const ZoneRealized got = realized_precision_zoned(starts, x, plan);

  double overall = 0.0, intra = 0.0, cross = 0.0;
  for (std::size_t p = 0; p < n; ++p)
    for (std::size_t q = 0; q < n; ++q) {
      const double d = (starts[p].sec - x[p]) - (starts[q].sec - x[q]);
      overall = std::max(overall, d);
      if (plan.zone_of[p] == plan.zone_of[q])
        intra = std::max(intra, d);
      else
        cross = std::max(cross, d);
    }
  EXPECT_DOUBLE_EQ(got.overall, overall);
  EXPECT_DOUBLE_EQ(got.intra, intra);
  EXPECT_DOUBLE_EQ(got.cross, cross);
  EXPECT_EQ(got.overall, realized_precision(starts, x));
}

TEST(ZoneRealizedPrecision, RejectsSizeMismatch) {
  const ZonePlan plan =
      zone_plan_from_assignment(std::vector<std::uint32_t>{0, 0, 1});
  const std::vector<RealTime> starts{RealTime{0.0}, RealTime{1.0}};
  const std::vector<double> x{0.0, 0.0, 0.0};
  EXPECT_THROW(realized_precision_zoned(starts, x, plan), InvalidExecution);
}

}  // namespace
}  // namespace cs
