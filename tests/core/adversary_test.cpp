#include "core/adversary.hpp"

#include <gtest/gtest.h>

#include "core/local_estimates.hpp"
#include "support/builders.hpp"

namespace cs {
namespace {

TEST(Adversary, AnchorStaysPut) {
  Digraph mls(3);
  mls.add_edge(0, 1, 0.5);
  mls.add_edge(1, 0, 0.5);
  mls.add_edge(1, 2, 0.25);
  mls.add_edge(2, 1, 0.25);
  const auto shifts = adversarial_shifts(mls, 0, 2.0);
  EXPECT_DOUBLE_EQ(shifts[0].sec, 0.0);
  EXPECT_DOUBLE_EQ(shifts[1].sec, 0.25);       // 0.5 / gamma
  EXPECT_DOUBLE_EQ(shifts[2].sec, 0.375);      // (0.5 + 0.25) / gamma
}

TEST(Adversary, UnreachableNodesUnshifted) {
  Digraph mls(3);
  mls.add_edge(0, 1, 0.5);  // node 2 isolated
  const auto shifts = adversarial_shifts(mls, 0, 1.5);
  EXPECT_DOUBLE_EQ(shifts[2].sec, 0.0);
}

TEST(Adversary, ProducesAdmissibleEquivalentExecution) {
  const SystemModel model = test::bounded_model(make_ring(5), 0.01, 0.06);
  const SimResult sim = test::run_ping_pong(model, 77, 0.2);
  const Digraph mls = local_shifts_actual(model, sim.execution);
  for (NodeId anchor = 0; anchor < 5; ++anchor) {
    const auto shifts = adversarial_shifts(mls, anchor, 1.000001);
    const Execution stretched = sim.execution.shifted(shifts);
    EXPECT_TRUE(stretched.equivalent_to(sim.execution));
    EXPECT_TRUE(model.admissible(stretched)) << "anchor " << anchor;
  }
}

TEST(Adversary, GammaScalesLinearly) {
  Digraph mls(2);
  mls.add_edge(0, 1, 1.0);
  mls.add_edge(1, 0, 1.0);
  const auto near = adversarial_shifts(mls, 0, 1.0 + 1e-9);
  const auto far = adversarial_shifts(mls, 0, 4.0);
  EXPECT_NEAR(near[1].sec, 1.0, 1e-8);
  EXPECT_DOUBLE_EQ(far[1].sec, 0.25);
}

}  // namespace
}  // namespace cs
