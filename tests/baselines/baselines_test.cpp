// Baseline algorithms: correctness on easy instances, and the central
// comparative fact — no baseline ever achieves better guaranteed precision
// than SHIFTS (Theorem 4.4 applied to their correction vectors).
#include <gtest/gtest.h>

#include "baselines/cristian.hpp"
#include "baselines/hmm.hpp"
#include "baselines/lundelius_lynch.hpp"
#include "baselines/midpoint.hpp"
#include "baselines/spanning_tree.hpp"
#include "common/error.hpp"
#include "core/precision.hpp"
#include "core/synchronizer.hpp"
#include "support/builders.hpp"

namespace cs {
namespace {

TEST(SpanningTree, PropagatesDeltasExactly) {
  // Line 0-1-2 with known Δ estimates: corrections accumulate.
  const Topology topo = make_line(3);
  const DeltaEstimator delta = [](ProcessorId p, ProcessorId q) {
    // Pretend S = {0.0, 1.0, 3.0}: Δ(p,q) = S_p - S_q.
    const double s[] = {0.0, 1.0, 3.0};
    return s[p] - s[q];
  };
  const auto x = tree_corrections(topo, 0, delta);
  EXPECT_DOUBLE_EQ(x[0], 0.0);
  EXPECT_DOUBLE_EQ(x[1], 1.0);
  EXPECT_DOUBLE_EQ(x[2], 3.0);
  // Gauge check: S_p - x_p constant.
}

TEST(Cristian, ExactOnSymmetricConstantDelays) {
  // With equal constant delays both ways, the RTT midpoint recovers the
  // skew exactly.
  SystemModel model = test::bounded_model(make_line(3), 0.0, 1.0);
  SimOptions opts;
  opts.start_offsets = {Duration{0.0}, Duration{0.4}, Duration{0.9}};
  opts.seed = 1;
  std::vector<std::unique_ptr<DelaySampler>> samplers;
  samplers.push_back(make_constant_sampler(0.05, 0.05));
  samplers.push_back(make_constant_sampler(0.08, 0.08));
  PingPongParams pp;
  pp.warmup = Duration{1.0};
  const SimResult sim =
      simulate(model, make_ping_pong(pp), std::move(samplers), opts);
  const auto views = sim.execution.views();
  const auto x = cristian_corrections(model, views);
  EXPECT_NEAR(realized_precision(sim.execution.start_times(), x), 0.0,
              1e-9);
}

TEST(Cristian, ThrowsWithoutBidirectionalTraffic) {
  const Execution e = test::two_node_execution(0.0, 0.0, {0.5}, {});
  SystemModel model{make_line(2)};
  const auto views = e.views();
  EXPECT_THROW(cristian_corrections(model, views), InvalidExecution);
}

TEST(Midpoint, DeltaIsIntervalMidpoint) {
  // Bounds [0, 1], single messages d̃(0->1) = 0.6, d̃(1->0) = 0.2:
  // Δ ∈ [-(m̃ls(1,0)), m̃ls(0,1)] = [-(min(1-0.6, 0.2-0)), min(1-0.2, 0.6)]
  //   = [-0.2, 0.6] -> midpoint 0.2.
  const Execution e = test::two_node_execution(0.0, 0.0, {0.6}, {0.2});
  SystemModel model = test::bounded_model(make_line(2), 0.0, 1.0);
  const auto views = e.views();
  const LinkStats stats = LinkStats::estimated_from_views(views);
  EXPECT_NEAR(midpoint_delta(model, stats, 0, 1), 0.2, 1e-12);
  EXPECT_NEAR(midpoint_delta(model, stats, 1, 0), -0.2, 1e-12);
}

TEST(Midpoint, FallbackWhenOneSideUnbounded) {
  // Lower-bound-only with one-way traffic: only one endpoint finite.
  const Execution e = test::two_node_execution(0.0, 0.0, {0.5}, {});
  SystemModel model = test::lower_bound_model(make_line(2), 0.1);
  const auto views = e.views();
  const LinkStats stats = LinkStats::estimated_from_views(views);
  // m̃ls(0,1) = 0.5 - 0.1 = 0.4 finite; m̃ls(1,0) infinite.
  EXPECT_NEAR(midpoint_delta(model, stats, 0, 1), 0.4, 1e-12);
}

TEST(TreeMidpoint, MatchesOptimalOnTwoNodes) {
  // For a single link, midpoint = SHIFTS up to gauge: guaranteed precision
  // must coincide.
  const Execution e = test::two_node_execution(1.0, 0.2, {0.3, 0.5}, {0.4});
  SystemModel model = test::bounded_model(make_line(2), 0.1, 0.8);
  const auto views = e.views();
  const SyncOutcome opt = synchronize(model, views);
  const auto mid = tree_midpoint_corrections(model, views);
  EXPECT_NEAR(
      guaranteed_precision(opt.ms_estimates, mid).finite(),
      opt.optimal_precision.finite(), 1e-12);
}

TEST(LundeliusLynch, RequiresCompleteTopology) {
  SystemModel model = test::bounded_model(make_ring(4), 0.0, 1.0);
  const SimResult sim = test::run_ping_pong(model, 5, 0.2);
  const auto views = sim.execution.views();
  EXPECT_THROW(lundelius_lynch_corrections(model, views),
               InvalidAssumption);
}

TEST(LundeliusLynch, WorstCaseBoundHolds) {
  // [LL84]: realized precision <= (1 - 1/n)(ub - lb) in every execution.
  const double lb = 0.01, ub = 0.06;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    SystemModel model = test::bounded_model(make_complete(4), lb, ub);
    const SimResult sim = test::run_ping_pong(model, seed, 0.3);
    const auto views = sim.execution.views();
    const auto x = lundelius_lynch_corrections(model, views);
    const double bound = (1.0 - 1.0 / 4.0) * (ub - lb);
    EXPECT_LE(realized_precision(sim.execution.start_times(), x),
              bound + 1e-9);
  }
}

TEST(HmmOneShot, UsesOnlyFirstMessages) {
  // Later probes tighten the estimate; the one-shot baseline must ignore
  // them, so feeding extra *better* probes must not change its output.
  const Execution few = test::two_node_execution(0.5, 0.0, {0.5}, {0.5});
  const Execution many =
      test::two_node_execution(0.5, 0.0, {0.5, 0.21}, {0.5, 0.22});
  SystemModel model = test::bounded_model(make_line(2), 0.2, 0.8);
  const auto views_few = few.views();
  const auto views_many = many.views();
  const SyncOutcome a = hmm_one_shot(model, views_few);
  const SyncOutcome b = hmm_one_shot(model, views_many);
  EXPECT_NEAR(a.optimal_precision.finite(), b.optimal_precision.finite(),
              1e-12);
  // The full pipeline, in contrast, improves with the extra probes.
  const SyncOutcome full = synchronize(model, views_many);
  EXPECT_LT(full.optimal_precision.finite(),
            b.optimal_precision.finite() - 1e-9);
}

using DominanceParam = std::tuple<std::string, std::uint64_t>;

class BaselineDominance : public ::testing::TestWithParam<DominanceParam> {
};

TEST_P(BaselineDominance, OptimalIsNeverBeaten) {
  const auto& [topo_name, seed] = GetParam();
  Rng topo_rng(seed);
  SystemModel model =
      test::bounded_model(make_named(topo_name, 5, topo_rng), 0.01, 0.05);
  const bool complete_graph =
      model.topology().link_count() == 5u * 4u / 2u;
  const SimResult sim = test::run_ping_pong(model, seed, 0.3);
  const auto views = sim.execution.views();
  const SyncOutcome opt = synchronize(model, views);
  const double a_max = opt.optimal_precision.finite();

  const auto check = [&](const std::vector<double>& x, const char* name) {
    EXPECT_GE(guaranteed_precision(opt.ms_estimates, x).finite(),
              a_max - 1e-9)
        << name;
  };
  check(cristian_corrections(model, views), "cristian");
  check(tree_midpoint_corrections(model, views), "tree_midpoint");
  check(hmm_one_shot(model, views).corrections, "hmm_one_shot");
  if (complete_graph)
    check(lundelius_lynch_corrections(model, views), "lundelius_lynch");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BaselineDominance,
    ::testing::Combine(::testing::Values("line", "ring", "star", "complete",
                                         "gnp"),
                       ::testing::Values(1u, 2u, 3u, 4u)),
    [](const ::testing::TestParamInfo<DominanceParam>& info) {
      return std::get<0>(info.param) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace cs
