// Oscillator draws (drift/oscillator.hpp): determinism, band discipline,
// and the constant/walk split.

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <string>

#include "drift/oscillator.hpp"
#include "sim/simulator.hpp"

namespace cs::drift {
namespace {

OscillatorSpec constant_spec(double ppm) {
  OscillatorSpec spec;
  spec.kind = OscillatorSpec::Kind::kConstant;
  spec.ppm = ppm;
  return spec;
}

OscillatorSpec walk_spec(double ppm, double step_ppm, double interval,
                         double horizon) {
  OscillatorSpec spec;
  spec.kind = OscillatorSpec::Kind::kRandomWalk;
  spec.ppm = ppm;
  spec.step_ppm = step_ppm;
  spec.interval = interval;
  spec.horizon = horizon;
  return spec;
}

TEST(DriftOscillator, DrawIsAPureFunctionOfSpecAndSeed) {
  const OscillatorSpec spec = constant_spec(200.0);
  const DriftAssignment a = draw_oscillators(spec, 6, 42);
  const DriftAssignment b = draw_oscillators(spec, 6, 42);
  EXPECT_EQ(a.rates, b.rates);
  const DriftAssignment c = draw_oscillators(spec, 6, 43);
  EXPECT_NE(a.rates, c.rates);
}

TEST(DriftOscillator, AddingProcessorsNeverPerturbsExistingClocks) {
  // Per-processor streams: rates[p] depends only on (seed, p).
  const OscillatorSpec spec = constant_spec(150.0);
  const DriftAssignment small = draw_oscillators(spec, 3, 7);
  const DriftAssignment large = draw_oscillators(spec, 8, 7);
  for (std::size_t p = 0; p < 3; ++p)
    EXPECT_DOUBLE_EQ(small.rates[p], large.rates[p]) << p;
}

TEST(DriftOscillator, ConstantDrawRespectsTheDeclaredBand) {
  const double ppm = 300.0;
  const DriftAssignment a = draw_oscillators(constant_spec(ppm), 64, 5);
  ASSERT_EQ(a.rates.size(), 64u);
  EXPECT_TRUE(a.schedules.empty());
  EXPECT_DOUBLE_EQ(a.rho, ppm * 1e-6);
  bool any_non_unit = false;
  for (const double r : a.rates) {
    EXPECT_GE(r, 1.0 - ppm * 1e-6);
    EXPECT_LE(r, 1.0 + ppm * 1e-6);
    if (r != 1.0) any_non_unit = true;
  }
  EXPECT_TRUE(any_non_unit);
}

TEST(DriftOscillator, WalkSchedulesStartAtTheDrawnRateAndStayBanded) {
  const double ppm = 200.0;
  const OscillatorSpec spec = walk_spec(ppm, 50.0, 5.0, 60.0);
  const DriftAssignment a = draw_oscillators(spec, 8, 11);
  ASSERT_EQ(a.schedules.size(), 8u);
  for (std::size_t p = 0; p < 8; ++p) {
    ASSERT_TRUE(a.schedules[p]) << p;
    EXPECT_DOUBLE_EQ(a.schedules[p]->rate_at(0.0), a.rates[p]) << p;
    // Sample the whole horizon (and beyond: last rate extends) against
    // the band and the per-step bound.
    double prev = a.schedules[p]->rate_at(0.0);
    for (double t = 0.0; t <= 70.0; t += 5.0) {
      const double r = a.schedules[p]->rate_at(t);
      EXPECT_GE(r, 1.0 - ppm * 1e-6) << p << " @ " << t;
      EXPECT_LE(r, 1.0 + ppm * 1e-6) << p << " @ " << t;
      EXPECT_LE(std::abs(r - prev), 50e-6 + 1e-15) << p << " @ " << t;
      prev = r;
    }
  }
}

TEST(DriftOscillator, NoneSpecDrawsUnitRates) {
  const DriftAssignment a = draw_oscillators(OscillatorSpec{}, 4, 1);
  EXPECT_FALSE(a.drifting());
  EXPECT_DOUBLE_EQ(a.rho, 0.0);
  ASSERT_EQ(a.rates.size(), 4u);
  for (const double r : a.rates) EXPECT_DOUBLE_EQ(r, 1.0);
  SimOptions opts;
  opts.check_admissible = true;
  a.apply(opts);
  EXPECT_EQ(opts.clock_rates, a.rates);
  EXPECT_TRUE(opts.check_admissible);  // drift-free draws leave the check on
}

TEST(DriftOscillator, ApplyInstallsRatesAndDisablesAdmissibility) {
  const DriftAssignment a = draw_oscillators(constant_spec(100.0), 5, 3);
  SimOptions opts;
  opts.check_admissible = true;
  a.apply(opts);
  EXPECT_EQ(opts.clock_rates, a.rates);
  EXPECT_FALSE(opts.check_admissible);
}

TEST(DriftOscillator, GroundTruthClockMatchesTheDraw) {
  // The offset is the processor's real start time: the clock reads 0
  // there and advances at the drawn rate.
  const DriftAssignment a = draw_oscillators(constant_spec(100.0), 4, 9);
  const Clock c = a.clock(2, Duration{0.5});
  EXPECT_DOUBLE_EQ(c.at(RealTime{0.5}).sec, 0.0);
  EXPECT_NEAR(c.at(RealTime{10.5}).sec, 10.0 * a.rates[2], 1e-12);
  EXPECT_DOUBLE_EQ(c.rate(), a.rates[2]);
}

TEST(DriftOscillator, DescribeNamesTheModel) {
  EXPECT_NE(constant_spec(100.0).describe().find("const"), std::string::npos);
  EXPECT_NE(walk_spec(100.0, 10.0, 1.0, 60.0).describe().find("walk"),
            std::string::npos);
  EXPECT_FALSE(OscillatorSpec{}.drifting());
  EXPECT_TRUE(constant_spec(100.0).drifting());
  EXPECT_FALSE(constant_spec(0.0).drifting());
}

}  // namespace
}  // namespace cs::drift
