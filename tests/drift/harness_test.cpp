// The shared drift trial (drift/harness.hpp): the end-to-end unit the lab
// drift axis and bench_e17_drift both sit on.

#include <gtest/gtest.h>

#include <cstddef>

#include "drift/harness.hpp"
#include "sim/simulator.hpp"
#include "support/builders.hpp"

namespace cs::drift {
namespace {

// Ring of 4, declared band [1 ms, 25 ms]; actual delays from the middle
// quarter (the E9b discipline the harness documents).
DriftTrialConfig small_trial(double ppm, double resync, double horizon) {
  DriftTrialConfig config;
  config.oscillator.kind = OscillatorSpec::Kind::kConstant;
  config.oscillator.ppm = ppm;
  config.resync = resync;
  config.horizon = horizon;
  config.skew = 0.25;
  config.sample_lo = 0.001 + 0.375 * 0.024;
  config.sample_hi = 0.001 + 0.625 * 0.024;
  config.sim_seed = 11;
  config.drift_seed = 12;
  Rng rng(11);
  config.start_offsets = random_start_offsets(4, config.skew, rng);
  return config;
}

TEST(DriftHarness, ResyncTrialIsSoundEpochByEpoch) {
  const SystemModel model = test::bounded_model(make_ring(4), 0.001, 0.025);
  const DriftTrialConfig config = small_trial(200.0, 10.0, 40.0);
  const DriftTrialResult r = run_drift_trial(model, config);
  ASSERT_TRUE(r.ok) << r.failure;
  EXPECT_TRUE(r.sound);
  EXPECT_EQ(r.epochs, 3u);  // boundaries at 10, 20, 30; the last holds to 40
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_DOUBLE_EQ(r.window, 10.0);
  for (const DriftEpochRow& row : r.rows) {
    EXPECT_TRUE(row.sound) << "epoch at " << row.boundary;
    EXPECT_LE(row.realized, row.bound + config.tolerance);
    // The drift-adjusted bound always sits above the claimed precision.
    EXPECT_GE(row.bound, row.claimed);
  }
  // Thm 4.6 cross-check held on every epoch.
  EXPECT_LE(r.thm46_gap, 1e-9);
  // The estimator actually fit rates (it had >= min_count traffic).
  EXPECT_GT(r.directions_fitted, 0u);
  // Fitted pairwise slopes respect the 2ρ clamp.
  EXPECT_LE(r.max_abs_slope, 2.0 * 200e-6 + 1e-12);
  EXPECT_GT(r.delivered, 0u);
}

TEST(DriftHarness, TrialsAreDeterministic) {
  const SystemModel model = test::bounded_model(make_ring(4), 0.001, 0.025);
  const DriftTrialConfig config = small_trial(150.0, 10.0, 30.0);
  const DriftTrialResult a = run_drift_trial(model, config);
  const DriftTrialResult b = run_drift_trial(model, config);
  ASSERT_TRUE(a.ok) << a.failure;
  EXPECT_EQ(a.epochs, b.epochs);
  EXPECT_DOUBLE_EQ(a.claimed_max, b.claimed_max);
  EXPECT_DOUBLE_EQ(a.realized_max, b.realized_max);
  EXPECT_DOUBLE_EQ(a.bound_max, b.bound_max);
  EXPECT_EQ(a.events, b.events);
}

TEST(DriftHarness, DisabledResyncHoldsASingleEpochToTheHorizon) {
  const SystemModel model = test::bounded_model(make_ring(4), 0.001, 0.025);
  DriftTrialConfig config = small_trial(200.0, 0.0, 80.0);
  // A draw whose rate spread is wide enough that 60 s of unchecked drift
  // visibly outgrows the 20 s window's slack (most draws do; this one by
  // a ~1.5x margin, so the expectation is not knife-edge).
  config.sim_seed = 9;
  config.drift_seed = 10;
  Rng rng(9);
  config.start_offsets = random_start_offsets(4, config.skew, rng);
  const DriftTrialResult r = run_drift_trial(model, config);
  ASSERT_TRUE(r.ok) << r.failure;
  EXPECT_EQ(r.epochs, 1u);
  // One sync at H/4 held for 60 s of 200 ppm drift: the spread outgrows
  // the bound — the violation the no-resync lab preset demonstrates.
  EXPECT_FALSE(r.sound);
}

TEST(DriftHarness, BadConfigurationsFailWithoutThrowing) {
  const SystemModel model = test::bounded_model(make_ring(4), 0.001, 0.025);
  DriftTrialConfig config = small_trial(100.0, 10.0, 40.0);
  config.start_offsets.clear();  // required input missing
  const DriftTrialResult missing = run_drift_trial(model, config);
  EXPECT_FALSE(missing.ok);
  EXPECT_FALSE(missing.failure.empty());

  DriftTrialConfig zero = small_trial(100.0, 10.0, 0.0);  // no horizon
  const DriftTrialResult r = run_drift_trial(model, zero);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.failure.empty());
}

}  // namespace
}  // namespace cs::drift
