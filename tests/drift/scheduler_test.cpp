// Re-sync budget arithmetic (drift/scheduler.hpp).  The ResyncScheduler
// suite is a ThreadSanitizer target alongside the Live suite (see ci.yml):
// plan_resync runs inside run_live ahead of the multi-threaded host.

#include <gtest/gtest.h>

#include <limits>

#include "drift/scheduler.hpp"

namespace cs::drift {
namespace {

TEST(ResyncScheduler, SlackIsLinearInElapsedTime) {
  EXPECT_DOUBLE_EQ(drift_slack(100e-6, 10.0), 2.0 * 100e-6 * 10.0);
  EXPECT_DOUBLE_EQ(drift_slack(0.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(drift_slack(100e-6, 0.0), 0.0);
  EXPECT_GE(drift_slack(100e-6, -1.0), 0.0);  // never negative
}

TEST(ResyncScheduler, MaxIntervalInvertsTheSlack) {
  const double rho = 200e-6;
  const double slack = 0.004;
  const double interval = max_resync_interval(rho, slack);
  EXPECT_DOUBLE_EQ(interval, slack / (2.0 * rho));
  // Round trip: spending exactly the interval consumes exactly the slack.
  EXPECT_DOUBLE_EQ(drift_slack(rho, interval), slack);
  // Drift-free clocks never need re-sync.
  EXPECT_EQ(max_resync_interval(0.0, slack),
            std::numeric_limits<double>::infinity());
}

TEST(ResyncScheduler, AdjustedBoundAddsWindowAndIntervalTerms) {
  const double claimed = 0.01;
  const double rho = 100e-6;
  EXPECT_DOUBLE_EQ(drift_adjusted_bound(claimed, rho, 10.0, 5.0),
                   claimed + 2.0 * rho * 15.0);
  // No drift, no adjustment.
  EXPECT_DOUBLE_EQ(drift_adjusted_bound(claimed, 0.0, 10.0, 5.0), claimed);
  // Re-sync disabled drops only the interval term.
  EXPECT_DOUBLE_EQ(drift_adjusted_bound(claimed, rho, 10.0, 0.0),
                   claimed + 2.0 * rho * 10.0);
}

TEST(ResyncScheduler, InactiveBudgetLeavesTheRequestAlone) {
  const ResyncPlan plan = plan_resync(DriftBudget{}, Duration{5.0}, 3);
  EXPECT_DOUBLE_EQ(plan.period.sec, 5.0);
  EXPECT_EQ(plan.epochs, 3u);
  EXPECT_FALSE(plan.clamped);
}

TEST(ResyncScheduler, OverlongPeriodIsClampedAndCoverageKept) {
  // rho 100 ppm, slack 0.4 ms -> max interval 2 s; a requested 5 s x 3
  // epochs (15 s of coverage) becomes 2 s x >= 8 epochs.
  DriftBudget budget;
  budget.rho = 100e-6;
  budget.slack = 0.0004;
  const ResyncPlan plan = plan_resync(budget, Duration{5.0}, 3);
  EXPECT_TRUE(plan.clamped);
  EXPECT_DOUBLE_EQ(plan.period.sec, 2.0);
  EXPECT_GE(plan.period.sec * static_cast<double>(plan.epochs),
            15.0 - 1e-9);
}

TEST(ResyncScheduler, CompliantPeriodIsNotClamped) {
  DriftBudget budget;
  budget.rho = 100e-6;
  budget.slack = 0.01;  // max interval 50 s
  const ResyncPlan plan = plan_resync(budget, Duration{5.0}, 3);
  EXPECT_FALSE(plan.clamped);
  EXPECT_DOUBLE_EQ(plan.period.sec, 5.0);
  EXPECT_EQ(plan.epochs, 3u);
}

}  // namespace
}  // namespace cs::drift
