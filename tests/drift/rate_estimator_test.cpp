// Detrending rate estimator (drift/rate_estimator.hpp): OLS recovery,
// windowing, clamping, re-anchoring and the raw fallback.

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "delaymodel/link_stats.hpp"
#include "drift/rate_estimator.hpp"

namespace cs::drift {
namespace {

// d̃(t) = intercept + slope * t, exactly linear — OLS must recover it.
std::vector<TimedObs> linear_obs(double intercept, double slope,
                                 std::size_t count, double spacing) {
  std::vector<TimedObs> obs;
  for (std::size_t i = 0; i < count; ++i) {
    const double t = static_cast<double>(i) * spacing;
    obs.push_back({t, intercept + slope * t});
  }
  return obs;
}

TEST(RateEstimator, FitRecoversASyntheticSlopeExactly) {
  const auto obs = linear_obs(0.015, 2e-4, 20, 0.5);
  const RateFit fit = fit_rate(obs);
  ASSERT_TRUE(fit.usable());
  EXPECT_EQ(fit.count, 20u);
  EXPECT_NEAR(fit.slope, 2e-4, 1e-12);
  EXPECT_NEAR(fit.intercept, 0.015, 1e-12);
  // Noise-free data leaves no residual spread.
  EXPECT_NEAR(fit.residual_min, 0.0, 1e-12);
  EXPECT_NEAR(fit.residual_max, 0.0, 1e-12);
}

TEST(RateEstimator, ResidualExtremesBracketTheOutliers) {
  auto obs = linear_obs(0.010, 1e-4, 10, 1.0);
  obs.push_back({4.5, 0.010 + 1e-4 * 4.5 + 0.002});  // high outlier
  obs.push_back({5.5, 0.010 + 1e-4 * 5.5 - 0.001});  // low outlier
  const RateFit fit = fit_rate(obs);
  EXPECT_GT(fit.residual_max, 0.0015);
  EXPECT_LT(fit.residual_min, -0.0005);
}

TEST(RateEstimator, DegenerateInputsFallBackGracefully) {
  // Fewer than two points: slope 0, intercept = mean.
  const std::vector<TimedObs> one = {{3.0, 0.02}};
  const RateFit f1 = fit_rate(one);
  EXPECT_FALSE(f1.usable());
  EXPECT_DOUBLE_EQ(f1.slope, 0.0);
  EXPECT_DOUBLE_EQ(f1.intercept, 0.02);
  // Zero send-time spread: same degenerate shape, both points kept.
  const std::vector<TimedObs> stacked = {{3.0, 0.02}, {3.0, 0.04}};
  const RateFit f2 = fit_rate(stacked);
  EXPECT_EQ(f2.count, 2u);
  EXPECT_DOUBLE_EQ(f2.slope, 0.0);
  EXPECT_DOUBLE_EQ(f2.intercept, 0.03);
  EXPECT_EQ(fit_rate({}).count, 0u);
}

TEST(RateEstimator, ReanchorsTheExtremesAtTheBoundary) {
  // Pure linear growth: raw extremes over [0, 9.5] span ~1.9 ms, but the
  // detrended estimate "as of T = 10" collapses to the predicted value.
  const auto obs = linear_obs(0.015, 2e-4, 20, 0.5);
  DriftWindowOptions options;
  options.boundary = 10.0;
  const DirectedStats stats = drift_adjusted_stats(obs, options);
  ASSERT_EQ(stats.count, 20u);
  const double at_boundary = 0.015 + 2e-4 * 10.0;
  EXPECT_NEAR(stats.dmin.value(), at_boundary, 1e-9);
  EXPECT_NEAR(stats.dmax.value(), at_boundary, 1e-9);
  // Naive raw extremes over the same window would have spanned ~1.9 ms.
  EXPECT_LT(stats.dmax.value() - stats.dmin.value(), 1e-6);
}

TEST(RateEstimator, GuardWidensBothExtremes) {
  const auto obs = linear_obs(0.015, 0.0, 10, 1.0);
  DriftWindowOptions options;
  options.boundary = 10.0;
  options.guard = 0.001;
  const DirectedStats stats = drift_adjusted_stats(obs, options);
  EXPECT_NEAR(stats.dmin.value(), 0.014, 1e-12);
  EXPECT_NEAR(stats.dmax.value(), 0.016, 1e-12);
}

TEST(RateEstimator, SlopeClampKeepsExtrapolationPhysical) {
  // Actual slope 5e-4 but the declared budget admits only 2e-4: the
  // re-anchored value must use the clamped slope.
  const auto obs = linear_obs(0.010, 5e-4, 10, 1.0);
  DriftWindowOptions clamped;
  clamped.boundary = 20.0;
  clamped.max_slope = 2e-4;
  const DirectedStats s = drift_adjusted_stats(obs, clamped);
  DriftWindowOptions free = clamped;
  free.max_slope = 0.0;  // unclamped
  const DirectedStats f = drift_adjusted_stats(obs, free);
  EXPECT_LT(s.dmax.value(), f.dmax.value());
  // The clamp leaves unexplained trend in the residuals, so the clamped
  // estimate is *wider*, never tighter, than the true spread.
  EXPECT_GT(s.dmax.value() - s.dmin.value(),
            f.dmax.value() - f.dmin.value());
}

TEST(RateEstimator, WindowAndBoundaryFilterObservations) {
  const auto obs = linear_obs(0.015, 0.0, 20, 1.0);  // sends at 0..19
  DriftWindowOptions options;
  options.boundary = 10.0;  // sends at 10..19 are invisible
  options.window = 5.0;     // and only [5, 10) stays
  const DirectedStats stats = drift_adjusted_stats(obs, options);
  EXPECT_EQ(stats.count, 5u);
  // Everything filtered out -> empty stats, i.e. edge absence downstream.
  options.window = 0.001;
  const DirectedStats empty = drift_adjusted_stats(obs, options);
  EXPECT_EQ(empty.count, 0u);
  EXPECT_TRUE(empty.dmin.is_pos_inf());
  EXPECT_TRUE(empty.dmax.is_neg_inf());
}

TEST(RateEstimator, BelowMinCountFallsBackToRawExtremes) {
  const std::vector<TimedObs> obs = {{1.0, 0.012}, {2.0, 0.018}};
  DriftWindowOptions options;
  options.boundary = 10.0;
  options.min_count = 3;  // too few to trust a fit
  const DirectedStats stats = drift_adjusted_stats(obs, options);
  EXPECT_EQ(stats.count, 2u);
  EXPECT_DOUBLE_EQ(stats.dmin.value(), 0.012);
  EXPECT_DOUBLE_EQ(stats.dmax.value(), 0.018);
}

}  // namespace
}  // namespace cs::drift
