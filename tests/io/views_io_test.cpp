#include "io/views_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "core/synchronizer.hpp"
#include "delaymodel/windowed_bias.hpp"
#include "support/builders.hpp"

namespace cs {
namespace {

TEST(ViewsIo, RoundTripExact) {
  SystemModel model = test::bounded_model(make_ring(4), 0.01, 0.05);
  const SimResult sim = test::run_ping_pong(model, 7, 0.3);
  const auto views = sim.execution.views();

  std::stringstream ss;
  save_views(ss, views);
  const auto loaded = load_views(ss);
  ASSERT_EQ(loaded.size(), views.size());
  for (std::size_t i = 0; i < views.size(); ++i)
    EXPECT_EQ(loaded[i], views[i]) << "view " << i;
}

TEST(ViewsIo, RoundTripPreservesPipelineOutput) {
  // The acid test: the pipeline must produce bit-identical corrections
  // from reloaded views.
  SystemModel model = test::bounded_model(make_complete(4), 0.005, 0.03);
  const SimResult sim = test::run_ping_pong(model, 11, 0.2);
  const auto views = sim.execution.views();

  std::stringstream ss;
  save_views(ss, views);
  const auto loaded = load_views(ss);

  const SyncOutcome a = synchronize(model, views);
  const SyncOutcome b = synchronize(model, loaded);
  for (std::size_t p = 0; p < 4; ++p)
    EXPECT_DOUBLE_EQ(a.corrections[p], b.corrections[p]);
  EXPECT_DOUBLE_EQ(a.optimal_precision.value(),
                   b.optimal_precision.value());
}

TEST(ViewsIo, CommentsAndBlankLinesIgnored) {
  std::stringstream ss;
  ss << "# a comment\n\nchronosync-views v1\n"
     << "# another\nprocessors 1\nview 0 1\nS 0\n";
  const auto views = load_views(ss);
  ASSERT_EQ(views.size(), 1u);
  EXPECT_EQ(views[0].events.size(), 1u);
}

TEST(ViewsIo, RejectsGarbage) {
  {
    std::stringstream ss("not a header\n");
    EXPECT_THROW(load_views(ss), Error);
  }
  {
    std::stringstream ss("chronosync-views v1\nprocessors 1\nview 0 1\nX\n");
    EXPECT_THROW(load_views(ss), Error);
  }
  {
    std::stringstream ss(
        "chronosync-views v1\nprocessors 1\nview 0 1\nD abc 1 0\n");
    EXPECT_THROW(load_views(ss), Error);
  }
  {
    // Wrong pid order.
    std::stringstream ss(
        "chronosync-views v1\nprocessors 2\nview 1 1\nS 0\nview 0 1\nS 0\n");
    EXPECT_THROW(load_views(ss), Error);
  }
}

TEST(ModelIo, RoundTripAllKinds) {
  Topology topo{5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}}};
  SystemModel model(std::move(topo));
  model.set_constraint(make_bounds(0, 1, 0.001, 0.004));
  model.set_constraint(make_lower_bound_only(1, 2, 0.002));
  model.set_constraint(make_bias(2, 3, 0.01));
  model.set_constraint(make_windowed_bias(3, 4, 0.01, 2.5));
  // 0-4 keeps the default no-bounds.

  std::stringstream ss;
  save_model(ss, model);
  const SystemModel loaded = load_model(ss);
  ASSERT_EQ(loaded.processor_count(), 5u);
  ASSERT_EQ(loaded.topology().link_count(), 5u);
  EXPECT_EQ(loaded.constraint(0, 1).describe(),
            model.constraint(0, 1).describe());
  EXPECT_EQ(loaded.constraint(1, 2).describe(),
            model.constraint(1, 2).describe());
  EXPECT_EQ(loaded.constraint(2, 3).describe(),
            model.constraint(2, 3).describe());
  EXPECT_EQ(loaded.constraint(3, 4).describe(),
            model.constraint(3, 4).describe());
  EXPECT_EQ(loaded.constraint(0, 4).describe(),
            model.constraint(0, 4).describe());
}

TEST(ModelIo, RepeatedLinkLinesConjoin) {
  std::stringstream ss(
      "chronosync-model v1\nprocessors 2\n"
      "link 0 1 bounds 0.001 0.02\nlink 0 1 bias 0.005\n");
  const SystemModel model = load_model(ss);
  EXPECT_EQ(model.constraint(0, 1).describe(),
            "bounds[0.001,0.02]/[0.001,0.02] & bias[0.005]");
}

TEST(ModelIo, RoundTripComposite) {
  Topology topo{2, {{0, 1}}};
  SystemModel model(std::move(topo));
  std::vector<std::unique_ptr<LinkConstraint>> parts;
  parts.push_back(make_bounds(0, 1, 0.001, 0.02));
  parts.push_back(make_bias(0, 1, 0.005));
  model.set_constraint(make_composite(0, 1, std::move(parts)));

  std::stringstream ss;
  save_model(ss, model);
  const SystemModel loaded = load_model(ss);
  EXPECT_EQ(loaded.constraint(0, 1).describe(),
            model.constraint(0, 1).describe());
}

TEST(ModelIo, RejectsBadInput) {
  {
    std::stringstream ss("chronosync-model v1\nprocessors 2\nlink 0 5 none\n");
    EXPECT_THROW(load_model(ss), Error);
  }
  {
    std::stringstream ss(
        "chronosync-model v1\nprocessors 2\nlink 0 1 warp 3\n");
    EXPECT_THROW(load_model(ss), Error);
  }
}

TEST(ViewsIo, FileHelpersRejectMissingPaths) {
  EXPECT_THROW(load_views_file("/nonexistent/dir/views.txt"), Error);
  EXPECT_THROW(load_model_file("/nonexistent/dir/model.txt"), Error);
}

}  // namespace
}  // namespace cs
