// Malformed-input behavior of the interchange parsers: every rejection
// must carry the 1-based line number and the offending token, so a
// mis-assembled log from a real deployment is diagnosable from the message
// alone.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/error.hpp"
#include "io/views_io.hpp"

namespace cs {
namespace {

std::string views_error(const std::string& doc) {
  std::istringstream is(doc);
  try {
    load_views(is);
  } catch (const Error& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected load_views to reject:\n" << doc;
  return "";
}

std::string model_error(const std::string& doc) {
  std::istringstream is(doc);
  try {
    load_model(is);
  } catch (const Error& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected load_model to reject:\n" << doc;
  return "";
}

TEST(ViewsIoErrors, TruncatedFileNamesLineAndContext) {
  const std::string msg = views_error(
      "chronosync-views v1\nprocessors 2\nview 0 2\nS 0\n");
  EXPECT_NE(msg.find("line 5"), std::string::npos) << msg;
  EXPECT_NE(msg.find("view 0 declares 2 events"), std::string::npos) << msg;
}

TEST(ViewsIoErrors, MissingViewBlockNamesProcessor) {
  const std::string msg = views_error(
      "chronosync-views v1\nprocessors 3\nview 0 1\nS 0\n");
  EXPECT_NE(msg.find("line 5"), std::string::npos) << msg;
  EXPECT_NE(msg.find("processor 1 of 3"), std::string::npos) << msg;
}

TEST(ViewsIoErrors, UnknownEventTagIsNamed) {
  const std::string msg = views_error(
      "chronosync-views v1\nprocessors 1\nview 0 1\nQ 0.5\n");
  EXPECT_NE(msg.find("line 4"), std::string::npos) << msg;
  EXPECT_NE(msg.find("unknown event tag 'Q'"), std::string::npos) << msg;
}

TEST(ViewsIoErrors, WrongFieldCountIsDistinctFromUnknownTag) {
  const std::string msg = views_error(
      "chronosync-views v1\nprocessors 1\nview 0 1\nD 0.5 7\n");
  EXPECT_NE(msg.find("line 4"), std::string::npos) << msg;
  EXPECT_NE(msg.find("wrong field count"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'D'"), std::string::npos) << msg;
}

TEST(ViewsIoErrors, EventCountMismatchDetectedAtNextViewHeader) {
  const std::string msg = views_error(
      "chronosync-views v1\nprocessors 2\nview 0 3\nS 0\nview 1 1\nS 0\n");
  EXPECT_NE(msg.find("line 5"), std::string::npos) << msg;
  EXPECT_NE(msg.find("event count mismatch"), std::string::npos) << msg;
}

TEST(ViewsIoErrors, DuplicateViewBlockRejected) {
  const std::string msg = views_error(
      "chronosync-views v1\nprocessors 2\nview 0 1\nS 0\nview 0 1\nS 0\n");
  EXPECT_NE(msg.find("line 5"), std::string::npos) << msg;
  EXPECT_NE(msg.find("duplicate view block for processor 0"),
            std::string::npos)
      << msg;
}

TEST(ViewsIoErrors, OutOfOrderViewStillRejected) {
  // Pinned behavior: pid order is required (ahead-of-order pids are order
  // errors, not duplicates).
  const std::string msg = views_error(
      "chronosync-views v1\nprocessors 2\nview 1 1\nS 0\nview 0 1\nS 0\n");
  EXPECT_NE(msg.find("pid order"), std::string::npos) << msg;
}

TEST(ViewsIoErrors, BadMessageIdNamesToken) {
  const std::string msg = views_error(
      "chronosync-views v1\nprocessors 1\nview 0 1\nD 0.5 12x 0\n");
  EXPECT_NE(msg.find("line 4"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'12x'"), std::string::npos) << msg;
}

TEST(ViewsIoErrors, NegativeMessageIdRejected) {
  const std::string msg = views_error(
      "chronosync-views v1\nprocessors 1\nview 0 1\nD 0.5 -3 0\n");
  EXPECT_NE(msg.find("'-3'"), std::string::npos) << msg;
}

TEST(ViewsIoErrors, BadHeaderNamesOffendingLine) {
  const std::string msg = views_error("chronosync-views v2\n");
  EXPECT_NE(msg.find("line 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("chronosync-views v2"), std::string::npos) << msg;
}

TEST(ViewsIoErrors, EmptyStreamReportsLineOne) {
  const std::string msg = views_error("");
  EXPECT_NE(msg.find("line 1"), std::string::npos) << msg;
}

TEST(ModelIoErrors, EndpointOutOfRangeNamesEndpointAndCount) {
  const std::string msg = model_error(
      "chronosync-model v1\nprocessors 2\nlink 0 5 none\n");
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("endpoint 5"), std::string::npos) << msg;
  EXPECT_NE(msg.find("processors 2"), std::string::npos) << msg;
}

TEST(ModelIoErrors, WrongFieldCountForKnownKind) {
  const std::string msg = model_error(
      "chronosync-model v1\nprocessors 2\nlink 0 1 bounds 0.001\n");
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("wrong field count"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'bounds'"), std::string::npos) << msg;
}

TEST(ModelIoErrors, UnknownKindIsNamed) {
  const std::string msg = model_error(
      "chronosync-model v1\nprocessors 2\nlink 0 1 warp 3\n");
  EXPECT_NE(msg.find("unknown link kind 'warp'"), std::string::npos) << msg;
}

TEST(ModelIoErrors, BadProcessorCountNamesToken) {
  const std::string msg = model_error(
      "chronosync-model v1\nprocessors two\n");
  EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'two'"), std::string::npos) << msg;
}

}  // namespace
}  // namespace cs
