// End-to-end tests of the cs_sync binary: the CLI must agree bit-for-bit
// with the in-process library on the same inputs, and its exit codes must
// follow the documented contract (0 ok, 1 divergence, 2 usage, 3 error).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "core/synchronizer.hpp"
#include "io/views_io.hpp"
#include "support/builders.hpp"

#ifndef CS_SYNC_BIN
#error "CS_SYNC_BIN must point at the cs_sync executable"
#endif
#ifndef CS_TEST_DATA_DIR
#error "CS_TEST_DATA_DIR must point at tests/data"
#endif

namespace cs {
namespace {

struct RunResult {
  int exit_code{-1};
  std::string output;
};

RunResult run(const std::string& args) {
  const std::string cmd = std::string(CS_SYNC_BIN) + " " + args + " 2>&1";
  std::FILE* pipe = ::popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  RunResult r;
  if (pipe == nullptr) return r;
  char buf[4096];
  while (std::fgets(buf, sizeof buf, pipe) != nullptr) r.output += buf;
  const int status = ::pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

std::string golden(const std::string& name) {
  return std::string(CS_TEST_DATA_DIR) + "/" + name;
}

TEST(CsSyncCli, SyncMatchesInProcessBitForBit) {
  // The acceptance round-trip: save views + model to disk, run the binary,
  // parse its corrections back, and compare against synchronize() exactly.
  SystemModel model = test::bounded_model(make_complete(4), 0.005, 0.03);
  const SimResult sim = test::run_ping_pong(model, 11, 0.2);
  const std::vector<View> views = sim.execution.views();

  const std::string dir = ::testing::TempDir();
  const std::string views_path = dir + "/cs_sync_test.views";
  const std::string model_path = dir + "/cs_sync_test.model";
  save_views_file(views_path, views);
  save_model_file(model_path, model);

  const RunResult r = run("sync " + views_path + " " + model_path);
  ASSERT_EQ(r.exit_code, 0) << r.output;

  const SyncOutcome expected = synchronize(model, views);

  std::vector<double> cli_corrections(4, 0.0);
  double cli_precision = -1.0;
  std::size_t seen = 0;
  std::istringstream lines(r.output);
  std::string line;
  while (std::getline(lines, line)) {
    unsigned pid = 0;
    char val[64];
    if (std::sscanf(line.c_str(), "correction %u %63s", &pid, val) == 2) {
      ASSERT_LT(pid, 4u);
      cli_corrections[pid] = std::strtod(val, nullptr);
      ++seen;
    } else if (std::sscanf(line.c_str(), "precision %63s", val) == 1) {
      cli_precision = std::strtod(val, nullptr);
    }
  }
  ASSERT_EQ(seen, 4u) << r.output;
  // %.17g round-trips doubles exactly: bitwise equality, not tolerance.
  EXPECT_EQ(cli_precision, expected.optimal_precision.value());
  for (std::size_t p = 0; p < 4; ++p)
    EXPECT_EQ(cli_corrections[p], expected.corrections[p]) << "pid " << p;
}

TEST(CsSyncCli, ReplayGoldenSucceeds) {
  const RunResult r = run("replay " + golden("golden_clean.trace"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("replay matches the recording"),
            std::string::npos)
      << r.output;
}

TEST(CsSyncCli, ReplayJsonReportsMatch) {
  const RunResult r =
      run("replay " + golden("golden_faulty.trace") + " --json");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("\"match\": true"), std::string::npos) << r.output;
}

TEST(CsSyncCli, DiffIdenticalTracesExitsZero) {
  const std::string path = golden("golden_clean.trace");
  const RunResult r = run("diff " + path + " " + path);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(CsSyncCli, DiffDifferentTracesExitsOne) {
  const RunResult r = run("diff " + golden("golden_clean.trace") + " " +
                          golden("golden_faulty.trace"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("diff:"), std::string::npos) << r.output;
}

TEST(CsSyncCli, RecordReplayRoundTripInTempDir) {
  const std::string dir = ::testing::TempDir();
  const std::string trace_path = dir + "/cs_sync_test.trace";
  const RunResult rec =
      run("simulate " + trace_path + " --seed 9 --skew 0.1 --n 4");
  ASSERT_EQ(rec.exit_code, 0) << rec.output;

  const RunResult rep = run("replay " + trace_path);
  EXPECT_EQ(rep.exit_code, 0) << rep.output;

  // Re-record the replayed outcomes; a clean replay must diff clean.
  const std::string again = dir + "/cs_sync_test2.trace";
  const RunResult rer =
      run("replay " + trace_path + " --rerecord " + again);
  ASSERT_EQ(rer.exit_code, 0) << rer.output;
  const RunResult diff = run("diff " + trace_path + " " + again);
  EXPECT_EQ(diff.exit_code, 0) << diff.output;
}

TEST(CsSyncCli, MetricsJsonIsWellFormedEnough) {
  const RunResult r =
      run("metrics " + golden("golden_faulty.trace") + " --json");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("\"tallies\""), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("\"counters\""), std::string::npos) << r.output;
}

TEST(CsSyncCli, ExitCodeContract) {
  EXPECT_EQ(run("frobnicate").exit_code, 2);           // unknown subcommand
  EXPECT_EQ(run("sync only_one_arg").exit_code, 2);    // wrong arity
  EXPECT_EQ(run("replay /nonexistent.trace").exit_code, 3);  // runtime error
  EXPECT_EQ(run("help").exit_code, 0);
}

TEST(CsSyncCli, VersionPrintsBannerAndExitsZero) {
  for (const char* spelling : {"--version", "version"}) {
    const RunResult r = run(spelling);
    EXPECT_EQ(r.exit_code, 0) << spelling;
    EXPECT_NE(r.output.find("chronosync"), std::string::npos) << r.output;
    // A version number, not just a name.
    EXPECT_NE(r.output.find_first_of("0123456789"), std::string::npos);
  }
}

TEST(CsSyncCli, HelpAfterAnySubcommandExitsZero) {
  // `cs_sync <sub> --help` is a documentation request, not a flag error:
  // exit 0 with the usage text on stdout, uniformly across subcommands.
  for (const char* sub :
       {"simulate", "sync", "replay", "diff", "metrics", "live"}) {
    const RunResult r = run(std::string(sub) + " --help");
    EXPECT_EQ(r.exit_code, 0) << sub << ": " << r.output;
    EXPECT_NE(r.output.find("usage:"), std::string::npos) << sub;
  }
}

TEST(CsSyncCli, LiveLoopbackConvergesAndMatchesOffline) {
  const RunResult r =
      run("live --n 6 --epochs 2 --seed 4 --json");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("\"converged\": true"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"all_match\": true"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"matches_offline\": true"), std::string::npos)
      << r.output;
}

TEST(CsSyncCli, LiveRecordedTraceReplays) {
  const std::string trace_path = ::testing::TempDir() + "/cs_live.trace";
  const RunResult live =
      run("live --n 4 --seed 8 --trace " + trace_path);
  ASSERT_EQ(live.exit_code, 0) << live.output;
  const RunResult rep = run("replay " + trace_path);
  EXPECT_EQ(rep.exit_code, 0) << rep.output;
}

TEST(CsSyncCli, LiveRejectsBadTransport) {
  EXPECT_EQ(run("live --transport carrier-pigeon").exit_code, 2);
}

}  // namespace
}  // namespace cs
