// End-to-end tests of the cs_lab binary: exit-code contract (0 ok,
// 1 check failure, 2 usage, 3 error), spec generation round-trips, and the
// headline determinism regression — the aggregated JSON and CSV of a
// campaign must be byte-identical for --threads 1 and --threads 4.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "io/views_io.hpp"
#include "lab/spec.hpp"

#ifndef CS_LAB_BIN
#error "CS_LAB_BIN must point at the cs_lab executable"
#endif

namespace cs::lab {
namespace {

struct RunResult {
  int exit_code{-1};
  std::string output;
};

RunResult run(const std::string& args) {
  const std::string cmd = std::string(CS_LAB_BIN) + " " + args + " 2>&1";
  std::FILE* pipe = ::popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  RunResult r;
  if (pipe == nullptr) return r;
  char buf[4096];
  while (std::fgets(buf, sizeof buf, pipe) != nullptr) r.output += buf;
  const int status = ::pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  EXPECT_TRUE(is.good()) << path;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

std::string tmp(const std::string& name) {
  return ::testing::TempDir() + "/cs_lab_" + name;
}

TEST(CsLabCli, VersionAndHelpExitZero) {
  EXPECT_EQ(run("--version").exit_code, 0);
  const RunResult help = run("--help");
  EXPECT_EQ(help.exit_code, 0);
  EXPECT_NE(help.output.find("cs_lab run"), std::string::npos);
}

TEST(CsLabCli, UsageErrorsExitTwo) {
  EXPECT_EQ(run("frobnicate").exit_code, 2);
  EXPECT_EQ(run("run").exit_code, 2);
  EXPECT_EQ(run("run --bogus-flag x").exit_code, 2);
  EXPECT_EQ(run("gen").exit_code, 2);
}

TEST(CsLabCli, RuntimeErrorsExitThree) {
  EXPECT_EQ(run("run /nonexistent/campaign.spec").exit_code, 3);
  EXPECT_EQ(run("run --preset no-such-preset").exit_code, 3);
  EXPECT_EQ(run("report /nonexistent/report.csv").exit_code, 3);
}

TEST(CsLabCli, GenSpecRoundTripsThroughRun) {
  const std::string spec_path = tmp("roundtrip.spec");
  ASSERT_EQ(run("gen spec --preset smoke --out " + spec_path).exit_code, 0);
  const CampaignSpec spec = load_campaign_file(spec_path);
  EXPECT_EQ(spec.name, "smoke");
  EXPECT_EQ(spec.seed, 2026u);
}

TEST(CsLabCli, GenTopoEmitsALoadableModel) {
  const std::string model_path = tmp("toroid.model");
  ASSERT_EQ(
      run("gen topo \"toroid 3x3\" --seed 5 --out " + model_path).exit_code,
      0);
  const SystemModel model = load_model_file(model_path);
  EXPECT_EQ(model.processor_count(), 9u);
  EXPECT_EQ(model.topology().link_count(), 18u);
}

TEST(CsLabCli, ThreadCountDoesNotChangeTheReportBytes) {
  // The acceptance regression: a multi-cell campaign (with a faulty arm)
  // run serially and with 4 workers must emit byte-identical --no-timing
  // JSON and CSV reports.
  const std::string spec_path = tmp("det.spec");
  std::ofstream os(spec_path);
  os << "chronosync-campaign v1\n"
        "name det\nseed 17\nseeds 2\nprotocol pingpong 3\n"
        "skew 0.2\ndelay-scale 0.05\n"
        "topology ring 5\ntopology toroid 3x3\n"
        "mix bounds 0.002 0.008\nfaults none\nfaults drop 0.2\n";
  os.close();

  const std::string j1 = tmp("det_t1.json"), c1 = tmp("det_t1.csv");
  const std::string j4 = tmp("det_t4.json"), c4 = tmp("det_t4.csv");
  ASSERT_EQ(run("run " + spec_path + " --threads 1 --no-timing --quiet"
                " --json " + j1 + " --csv " + c1).exit_code, 0);
  ASSERT_EQ(run("run " + spec_path + " --threads 4 --no-timing --quiet"
                " --json " + j4 + " --csv " + c4).exit_code, 0);
  EXPECT_EQ(slurp(j1), slurp(j4));
  EXPECT_EQ(slurp(c1), slurp(c4));
  EXPECT_NE(slurp(j1).find("\"tool\": \"cs_lab\""), std::string::npos);
}

TEST(CsLabCli, ZoneCampaignReportBytesSurviveAnyThreadSplit) {
  // Same determinism contract for the zones axis: campaign-level workers
  // (--threads) and intra-task zone solvers (--task-threads) must both be
  // invisible in the --no-timing reports.
  const std::string spec_path = tmp("zones.spec");
  std::ofstream os(spec_path);
  os << "chronosync-campaign v1\n"
        "name zonedet\nseed 31\nseeds 2\nprotocol pingpong 3\n"
        "skew 0.2\ndelay-scale 0.05\n"
        "topology dc 2 3 4\ntopology ba 18 2\n"
        "mix bounds 0.002 0.008\nfaults none\n"
        "zones none\nzones natural\nzones size 6\n";
  os.close();

  const std::string j1 = tmp("zones_t1.json"), c1 = tmp("zones_t1.csv");
  const std::string j4 = tmp("zones_t4.json"), c4 = tmp("zones_t4.csv");
  ASSERT_EQ(run("run " + spec_path + " --threads 1 --task-threads 1"
                " --no-timing --quiet --check --json " + j1 +
                " --csv " + c1).exit_code, 0);
  ASSERT_EQ(run("run " + spec_path + " --threads 4 --task-threads 4"
                " --no-timing --quiet --check --json " + j4 +
                " --csv " + c4).exit_code, 0);
  EXPECT_EQ(slurp(j1), slurp(j4));
  EXPECT_EQ(slurp(c1), slurp(c4));
  EXPECT_NE(slurp(j1).find("\"zones\": \"natural\""), std::string::npos);
  EXPECT_NE(slurp(c1).find(",zones,"), std::string::npos);
}

TEST(CsLabCli, CheckPassesOnTheZonesPreset) {
  const RunResult r =
      run("run --preset zones --seeds 1 --threads 2 --check --quiet");
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(CsLabCli, CheckPassesOnTheSmokePreset) {
  const RunResult r =
      run("run --preset smoke --seeds 1 --threads 2 --check --quiet");
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(CsLabCli, ReportRendersTheCsv) {
  const std::string spec_path = tmp("report.spec");
  std::ofstream os(spec_path);
  os << "chronosync-campaign v1\n"
        "name report\nseed 3\nseeds 1\nprotocol pingpong 2\n"
        "topology ring 4\nmix bounds 0.002 0.008\nfaults none\n";
  os.close();
  const std::string csv = tmp("report.csv");
  ASSERT_EQ(run("run " + spec_path + " --quiet --csv " + csv).exit_code, 0);
  const RunResult r = run("report " + csv);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("ring 4"), std::string::npos);
  EXPECT_NE(r.output.find("thm46_max_gap"), std::string::npos);
}

}  // namespace
}  // namespace cs::lab
