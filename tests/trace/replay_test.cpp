// Deterministic replay: a recorded trace alone must reproduce the full
// epoch pipeline bit-for-bit — views, corrections, precision, counters —
// with no simulator and no RNG in the loop.

#include "trace/replay.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "core/synchronizer.hpp"
#include "proto/beacon.hpp"
#include "sim/fault_plan.hpp"
#include "support/builders.hpp"
#include "trace/writer.hpp"

namespace cs {
namespace {

struct Recorded {
  Trace trace;
  RecordResult result;
};

/// Record a run in memory and parse the serialized trace back.
Recorded record(const SystemModel& model, const AutomatonFactory& factory,
                const SimOptions& sim_options, const ReplayPlan& plan) {
  std::stringstream ss;
  TraceWriter writer(ss);
  Recorded r;
  r.result = record_run(model, factory, sim_options, plan, writer);
  r.trace = load_trace(ss);
  return r;
}

Recorded record_clean() {
  SystemModel model = test::bounded_model(make_ring(5), 0.002, 0.010);
  SimOptions opts;
  opts.seed = 42;
  opts.start_offsets = {Duration{0.02}, Duration{0.08}, Duration{0.04},
                        Duration{0.05}, Duration{0.19}};
  PingPongParams probe;
  return record(model, make_ping_pong(probe), opts, ReplayPlan{});
}

Recorded record_faulty(FaultPlan& faults) {
  SystemModel model = test::bounded_model(make_ring(6), 0.002, 0.010);
  faults.seed = 99;
  faults.default_link.drop_probability = 0.2;
  faults.crash(5, RealTime{1.5});

  SimOptions opts;
  opts.seed = 7;
  opts.start_offsets.assign(6, Duration{0.0});
  opts.faults = &faults;

  BeaconParams probe;
  probe.warmup = Duration{0.1};
  probe.period = Duration{0.05};
  probe.count = 40;

  ReplayPlan plan;
  plan.boundaries = {ClockTime{0.8}, ClockTime{1.4}, ClockTime{2.0}};
  plan.options.window = Duration{0.6};
  plan.options.staleness.carry_forward = true;
  plan.options.staleness.widen_per_epoch = 0.005;
  plan.options.staleness.max_carry_epochs = 2;
  return record(model, make_beacon(probe), opts, plan);
}

TEST(Replay, ViewsRebuiltBitIdentical) {
  const Recorded r = record_clean();
  const std::vector<View> rebuilt = views_from_trace(r.trace);
  const std::vector<View> original = r.result.sim.execution.views();
  ASSERT_EQ(rebuilt.size(), original.size());
  for (std::size_t p = 0; p < original.size(); ++p)
    EXPECT_EQ(rebuilt[p], original[p]) << "view " << p;
}

TEST(Replay, CleanRunMatchesRecording) {
  const Recorded r = record_clean();
  const ReplayResult replayed = replay(r.trace);
  EXPECT_TRUE(replayed.matches_recording())
      << (replayed.divergences.empty() ? "" : replayed.divergences.front());

  // Bit-identical against the in-process run, not just self-consistent.
  ASSERT_EQ(replayed.epochs.size(), r.result.epochs.size());
  for (std::size_t k = 0; k < replayed.epochs.size(); ++k) {
    const SyncOutcome& a = replayed.epochs[k].sync;
    const SyncOutcome& b = r.result.epochs[k].sync;
    EXPECT_EQ(a.optimal_precision.value(), b.optimal_precision.value());
    ASSERT_EQ(a.corrections.size(), b.corrections.size());
    for (std::size_t p = 0; p < a.corrections.size(); ++p)
      EXPECT_EQ(a.corrections[p], b.corrections[p]) << "epoch " << k
                                                    << " pid " << p;
  }
}

TEST(Replay, FaultyWindowedRunMatchesRecording) {
  FaultPlan faults;
  const Recorded r = record_faulty(faults);
  ASSERT_GT(r.result.sim.fault_dropped_messages, 0u);
  ASSERT_GT(r.result.sim.crash_dropped_deliveries, 0u);

  const ReplayResult replayed = replay(r.trace);
  EXPECT_TRUE(replayed.matches_recording())
      << (replayed.divergences.empty() ? "" : replayed.divergences.front());
}

TEST(Replay, FaultCountersReproducedFromEventsAlone) {
  FaultPlan faults;
  const Recorded r = record_faulty(faults);
  const ReplayResult replayed = replay(r.trace);

  // The replay had no FaultInjector: its fault.* counters are tallied
  // purely from the event records, and must agree with the live run's.
  EXPECT_EQ(replayed.metrics.counter("fault.dropped"),
            r.result.metrics.counter("fault.dropped"));
  EXPECT_EQ(replayed.metrics.counter("fault.link_down_drops"),
            r.result.metrics.counter("fault.link_down_drops"));
  EXPECT_EQ(replayed.metrics.counter("fault.crash_dropped_deliveries"),
            r.result.metrics.counter("fault.crash_dropped_deliveries"));
  EXPECT_EQ(replayed.metrics.counter("fault.suppressed_timers"),
            r.result.metrics.counter("fault.suppressed_timers"));
  EXPECT_EQ(replayed.metrics.counter("pipeline.epochs"),
            r.result.metrics.counter("pipeline.epochs"));
}

TEST(Replay, PerturbedDeliveryDiverges) {
  const Recorded r = record_clean();

  // Shift the run's first delivery 1ms earlier: that sample becomes the
  // binding minimum for its direction, so the replayed outcome must
  // diverge from the recording — and the report names epoch and field.
  Trace perturbed = r.trace;
  bool done = false;
  for (TraceEvent& ev : perturbed.events) {
    if (done || ev.kind != TraceEvent::Kind::kDeliver) continue;
    ev.clock.sec -= 0.001;
    done = true;
  }
  ASSERT_TRUE(done);

  const ReplayResult replayed = replay(perturbed);
  EXPECT_FALSE(replayed.matches_recording());
  ASSERT_FALSE(replayed.divergences.empty());
  EXPECT_NE(replayed.divergences.front().find("epoch 0"), std::string::npos)
      << replayed.divergences.front();
}

TEST(Replay, RerecordedTraceDiffsClean) {
  const Recorded r = record_clean();
  const ReplayResult replayed = replay(r.trace);
  const Trace again = rerecorded(r.trace, replayed);
  EXPECT_TRUE(diff_traces(r.trace, again).empty());
}

TEST(Replay, DiffReportsFirstDivergentEvent) {
  const Recorded r = record_clean();
  Trace perturbed = r.trace;
  ASSERT_GT(perturbed.events.size(), 10u);
  perturbed.events[10].clock.sec += 0.001;

  const std::vector<std::string> diffs = diff_traces(r.trace, perturbed);
  ASSERT_FALSE(diffs.empty());
  EXPECT_NE(diffs.front().find("event 10"), std::string::npos)
      << diffs.front();
}

TEST(Replay, DiffCapRespected) {
  const Recorded r = record_clean();
  Trace perturbed = r.trace;
  for (TraceEvent& ev : perturbed.events)
    if (ev.kind == TraceEvent::Kind::kDeliver) ev.clock.sec += 0.001;

  const std::vector<std::string> diffs = diff_traces(r.trace, perturbed, 4);
  // 4 reports + 1 "suppressed" summary line.
  EXPECT_EQ(diffs.size(), 5u);
  EXPECT_NE(diffs.back().find("suppressed"), std::string::npos);
}

TEST(Replay, RebuildPipelineAlsoReplays) {
  SystemModel model = test::bounded_model(make_ring(4), 0.002, 0.010);
  SimOptions opts;
  opts.seed = 5;
  opts.start_offsets.assign(4, Duration{0.0});
  ReplayPlan plan;
  plan.incremental = false;
  plan.boundaries = {ClockTime{0.8}, ClockTime{1.2}};

  const Recorded r =
      record(model, make_ping_pong(PingPongParams{}), opts, plan);
  EXPECT_FALSE(r.trace.plan.incremental);
  const ReplayResult replayed = replay(r.trace);
  EXPECT_TRUE(replayed.matches_recording())
      << (replayed.divergences.empty() ? "" : replayed.divergences.front());
}

TEST(Replay, EventForUnknownProcessorRejected) {
  Recorded r = record_clean();
  r.trace.events.front().a = 99;
  EXPECT_THROW(replay(r.trace), Error);
}

}  // namespace
}  // namespace cs
