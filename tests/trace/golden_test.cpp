// Golden traces: checked-in recordings that every build must replay
// bit-identically.  A failure here means the pipeline's numeric behavior
// changed — either an intentional algorithm change (regenerate via
// tests/data/regen.sh and audit the diff) or a regression.
//
// Replaying a golden uses only the parser and IEEE arithmetic — no
// simulator, no RNG, no libm-dependent sampling — so these are stable
// across platforms and toolchains.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "trace/replay.hpp"
#include "trace/trace.hpp"

#ifndef CS_TEST_DATA_DIR
#error "CS_TEST_DATA_DIR must point at tests/data"
#endif

namespace cs {
namespace {

std::string data_path(const std::string& name) {
  return std::string(CS_TEST_DATA_DIR) + "/" + name;
}

class GoldenTrace : public ::testing::TestWithParam<const char*> {};

TEST_P(GoldenTrace, ReplaysBitIdentically) {
  const Trace trace = load_trace_file(data_path(GetParam()));
  ASSERT_FALSE(trace.recorded.empty()) << "golden has no recorded outcomes";
  const ReplayResult result = replay(trace);
  EXPECT_TRUE(result.matches_recording()) << [&] {
    std::string all;
    for (const std::string& d : result.divergences) all += d + "\n";
    return all;
  }();
}

TEST_P(GoldenTrace, SerializationRoundTripIsStable) {
  const Trace trace = load_trace_file(data_path(GetParam()));
  std::stringstream ss;
  save_trace(ss, trace);
  const Trace back = load_trace(ss);
  EXPECT_TRUE(diff_traces(trace, back).empty());

  // Byte-stable too: the on-disk golden is exactly what save_trace emits
  // (so regenerating without a pipeline change produces no diff noise).
  std::ifstream file(data_path(GetParam()));
  std::ostringstream disk;
  disk << file.rdbuf();
  EXPECT_EQ(ss.str(), disk.str());
}

TEST_P(GoldenTrace, RerecordingIsIdempotent) {
  const Trace trace = load_trace_file(data_path(GetParam()));
  const ReplayResult result = replay(trace);
  EXPECT_TRUE(diff_traces(trace, rerecorded(trace, result)).empty());
}

INSTANTIATE_TEST_SUITE_P(Goldens, GoldenTrace,
                         ::testing::Values("golden_clean.trace",
                                           "golden_faulty.trace",
                                           "golden_windowed.trace",
                                           "golden_drifting.trace"),
                         [](const auto& info) {
                           std::string name = info.param;
                           return name.substr(7, name.find('.') - 7);
                         });

// The drifting golden pins the non-unit `rate` header lines (docs/DRIFT.md)
// through the full round trip: they must be present, inside the declared
// 150 ppm band, and preserved bit-for-bit by replay + rerecord.
TEST(GoldenDriftingTrace, NonUnitRatesSurviveTheRoundTrip) {
  const Trace trace = load_trace_file(data_path("golden_drifting.trace"));
  ASSERT_EQ(trace.rates.size(), trace.processors);
  bool any_non_unit = false;
  for (const double r : trace.rates) {
    EXPECT_GE(r, 1.0 - 150e-6);
    EXPECT_LE(r, 1.0 + 150e-6);
    if (r != 1.0) any_non_unit = true;
  }
  EXPECT_TRUE(any_non_unit) << "golden_drifting.trace has all-unit rates";

  const ReplayResult result = replay(trace);
  const Trace back = rerecorded(trace, result);
  EXPECT_EQ(back.rates, trace.rates);
  EXPECT_TRUE(diff_traces(trace, back).empty());
}

}  // namespace
}  // namespace cs
