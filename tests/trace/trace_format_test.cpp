// The trace format: round-trip exactness over every record kind, and
// line-numbered rejection of malformed input.

#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/error.hpp"
#include "io/views_io.hpp"
#include "support/builders.hpp"
#include "trace/writer.hpp"

namespace cs {
namespace {

/// A synthetic trace exercising every event kind, every loss cause, and
/// every serialized plan knob away from its default.
Trace exhaustive_trace() {
  Trace t;
  t.seed = 0xDEADBEEFu;
  t.processors = 3;
  t.starts = {0.0, 0.125, 0.0625};
  t.rates = {1.0, 1.0001, 0.9999};

  std::ostringstream model_os;
  save_model(model_os, test::bounded_model(make_ring(3), 0.002, 0.01));
  t.model_text = model_os.str();

  t.plan.incremental = false;
  t.plan.options.sync.root = 1;
  t.plan.options.sync.apsp = ApspAlgorithm::kFloydWarshall;
  t.plan.options.sync.cycle_mean = CycleMeanAlgorithm::kHoward;
  t.plan.options.sync.match = MatchPolicy::kDropOrphans;
  t.plan.options.window = Duration{0.75};
  t.plan.options.staleness.carry_forward = true;
  t.plan.options.staleness.widen_per_epoch = 0.005;
  t.plan.options.staleness.max_carry_epochs = 2;
  t.plan.boundaries = {ClockTime{0.5}, ClockTime{1.0}};

  TraceEvent ev;
  ev.kind = TraceEvent::Kind::kSend;
  ev.real = RealTime{0.1};
  ev.a = 0;
  ev.b = 1;
  ev.msg = 7;
  ev.clock = ClockTime{0.0999999999999999};
  t.events.push_back(ev);
  ev = TraceEvent{};
  ev.kind = TraceEvent::Kind::kDeliver;
  ev.real = RealTime{0.105};
  ev.a = 1;
  ev.b = 0;
  ev.msg = 7;
  ev.clock = ClockTime{0.2050000000000001};
  t.events.push_back(ev);
  ev = TraceEvent{};
  ev.kind = TraceEvent::Kind::kLoss;
  ev.real = RealTime{0.2};
  ev.a = 1;
  ev.b = 2;
  ev.msg = 8;
  ev.cause = LossCause::kFaultDrop;
  t.events.push_back(ev);
  ev.cause = LossCause::kLinkDown;
  ev.msg = 9;
  t.events.push_back(ev);
  ev.cause = LossCause::kSampler;
  ev.msg = 10;
  t.events.push_back(ev);
  ev = TraceEvent{};
  ev.kind = TraceEvent::Kind::kCrashDrop;
  ev.real = RealTime{0.3};
  ev.a = 2;
  ev.b = 1;
  ev.msg = 11;
  t.events.push_back(ev);
  ev = TraceEvent{};
  ev.kind = TraceEvent::Kind::kDuplicate;
  ev.real = RealTime{0.31};
  ev.a = 0;
  ev.b = 2;
  ev.msg = 12;
  ev.extra = 0.0123456789012345678;
  t.events.push_back(ev);
  ev.kind = TraceEvent::Kind::kSpike;
  ev.msg = 13;
  ev.extra = 0.025;
  t.events.push_back(ev);
  ev = TraceEvent{};
  ev.kind = TraceEvent::Kind::kTimerSet;
  ev.real = RealTime{0.4};
  ev.a = 1;
  ev.clock = ClockTime{0.5};
  ev.timer_at = ClockTime{0.55};
  t.events.push_back(ev);
  ev.kind = TraceEvent::Kind::kTimerFire;
  ev.clock = ClockTime{0.55};
  t.events.push_back(ev);
  ev = TraceEvent{};
  ev.kind = TraceEvent::Kind::kTimerSuppressed;
  ev.real = RealTime{0.6};
  ev.a = 2;
  ev.timer_at = ClockTime{0.7};
  t.events.push_back(ev);

  t.tallies = {{"delivered", 1}, {"lost", 1}, {"fault_dropped", 2}};

  EpochRecord rec;
  rec.boundary = ClockTime{0.5};
  rec.precision = ExtReal{0.001};
  rec.carried_edges = 2;
  rec.observed_directions = 5;
  rec.total_directions = 6;
  rec.pairing.paired = 10;
  rec.pairing.orphan_receives = 1;
  rec.corrections = {0.0, -0.1234567890123456789, 0.5};
  t.recorded.push_back(rec);
  rec.boundary = ClockTime{1.0};
  rec.precision = ExtReal::infinity();
  rec.component_precision = {0.001, 0.002};
  t.recorded.push_back(rec);

  t.counters = {{"fault.dropped", 2}, {"pipeline.epochs", 2}};
  return t;
}

TEST(TraceFormat, RoundTripExact) {
  const Trace t = exhaustive_trace();
  std::stringstream ss;
  save_trace(ss, t);
  const Trace back = load_trace(ss);

  EXPECT_EQ(back.seed, t.seed);
  EXPECT_EQ(back.processors, t.processors);
  EXPECT_EQ(back.starts, t.starts);
  EXPECT_EQ(back.rates, t.rates);
  EXPECT_EQ(back.model_text, t.model_text);
  EXPECT_EQ(back.plan.incremental, t.plan.incremental);
  EXPECT_EQ(back.plan.options.sync.root, t.plan.options.sync.root);
  EXPECT_EQ(back.plan.options.sync.apsp, t.plan.options.sync.apsp);
  EXPECT_EQ(back.plan.options.sync.cycle_mean,
            t.plan.options.sync.cycle_mean);
  EXPECT_EQ(back.plan.options.sync.match, t.plan.options.sync.match);
  EXPECT_EQ(back.plan.options.window.sec, t.plan.options.window.sec);
  EXPECT_EQ(back.plan.options.staleness.carry_forward,
            t.plan.options.staleness.carry_forward);
  EXPECT_EQ(back.plan.options.staleness.widen_per_epoch,
            t.plan.options.staleness.widen_per_epoch);
  EXPECT_EQ(back.plan.options.staleness.max_carry_epochs,
            t.plan.options.staleness.max_carry_epochs);
  ASSERT_EQ(back.plan.boundaries.size(), t.plan.boundaries.size());
  for (std::size_t i = 0; i < t.plan.boundaries.size(); ++i)
    EXPECT_EQ(back.plan.boundaries[i].sec, t.plan.boundaries[i].sec);
  EXPECT_EQ(back.events, t.events);
  EXPECT_EQ(back.tallies, t.tallies);
  ASSERT_EQ(back.recorded.size(), t.recorded.size());
  for (std::size_t i = 0; i < t.recorded.size(); ++i)
    EXPECT_EQ(back.recorded[i], t.recorded[i]) << "outcome " << i;
  EXPECT_EQ(back.counters, t.counters);
}

TEST(TraceFormat, SerializationIsDeterministic) {
  const Trace t = exhaustive_trace();
  std::stringstream a, b;
  save_trace(a, t);
  save_trace(b, t);
  EXPECT_EQ(a.str(), b.str());

  // Save → load → save is a fixed point.
  std::stringstream c(a.str());
  const Trace back = load_trace(c);
  std::stringstream d;
  save_trace(d, back);
  EXPECT_EQ(d.str(), a.str());
}

TEST(TraceFormat, EmbeddedModelParses) {
  const Trace t = exhaustive_trace();
  const SystemModel model = t.model();
  EXPECT_EQ(model.processor_count(), 3u);
  EXPECT_EQ(model.topology().link_count(), 3u);
}

std::string trace_error(const std::string& doc) {
  std::istringstream is(doc);
  try {
    load_trace(is);
  } catch (const Error& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected load_trace to reject:\n" << doc;
  return "";
}

/// The serialized exhaustive trace with one line rewritten (empty `to`
/// deletes the line).
std::string mutate_line(std::size_t line_no_1based, const std::string& to) {
  std::stringstream ss;
  save_trace(ss, exhaustive_trace());
  std::istringstream in(ss.str());
  std::ostringstream out;
  std::string line;
  std::size_t n = 0;
  while (std::getline(in, line)) {
    ++n;
    if (n == line_no_1based) {
      if (!to.empty()) out << to << '\n';
    } else {
      out << line << '\n';
    }
  }
  return out.str();
}

TEST(TraceFormatErrors, BadHeader) {
  const std::string msg = trace_error("chronosync-trace v9\n");
  EXPECT_NE(msg.find("line 1"), std::string::npos) << msg;
}

TEST(TraceFormatErrors, TruncatedStream) {
  // Drop everything from the events on: the terminator goes missing.
  std::stringstream ss;
  save_trace(ss, exhaustive_trace());
  const std::string full = ss.str();
  const std::string cut = full.substr(0, full.find("event "));
  const std::string msg = trace_error(cut);
  EXPECT_NE(msg.find("end trace"), std::string::npos) << msg;
}

TEST(TraceFormatErrors, BadEventTagNamesLineAndToken) {
  std::stringstream ss;
  save_trace(ss, exhaustive_trace());
  std::string doc = ss.str();
  const std::size_t pos = doc.find("event D");
  ASSERT_NE(pos, std::string::npos);
  doc.replace(pos, 7, "event Q");
  const std::string msg = trace_error(doc);
  EXPECT_NE(msg.find("'Q'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("line"), std::string::npos) << msg;
}

TEST(TraceFormatErrors, EventFieldCountMismatch) {
  std::stringstream ss;
  save_trace(ss, exhaustive_trace());
  std::istringstream in(ss.str());
  std::ostringstream out;
  std::string line;
  std::size_t event_line = 0, n = 0;
  while (std::getline(in, line)) {
    ++n;
    if (line.rfind("event D", 0) == 0 && event_line == 0) {
      event_line = n;
      // Drop the trailing clock field.
      line = line.substr(0, line.rfind(' '));
    }
    out << line << '\n';
  }
  ASSERT_GT(event_line, 0u);
  const std::string msg = trace_error(out.str());
  EXPECT_NE(msg.find("line " + std::to_string(event_line)),
            std::string::npos)
      << msg;
}

TEST(TraceFormatErrors, BadNumberNamesToken) {
  const std::string msg = trace_error(mutate_line(3, "seed banana"));
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'banana'"), std::string::npos) << msg;
}

TEST(TraceFormatErrors, MissingModelRejected) {
  std::stringstream ss;
  save_trace(ss, exhaustive_trace());
  std::string doc = ss.str();
  const std::size_t from = doc.find("begin model");
  const std::size_t to = doc.find("end model");
  ASSERT_NE(from, std::string::npos);
  ASSERT_NE(to, std::string::npos);
  doc.erase(from, to + 10 - from);
  EXPECT_THROW({
    std::istringstream is(doc);
    load_trace(is);
  }, Error);
}

TEST(TraceWriterApi, FinishTwiceThrows) {
  std::ostringstream os;
  TraceWriter writer(os);
  writer.finish();
  EXPECT_THROW(writer.finish(), Error);
}

}  // namespace
}  // namespace cs
