// CompositeConstraint: Theorem 5.6 — under an intersection of local
// assumption sets, mls is the min of the per-set mls values, and
// admissibility is the conjunction.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "delaymodel/constraint.hpp"
#include "delaymodel/numeric_mls.hpp"

namespace cs {
namespace {

std::unique_ptr<LinkConstraint> bounds_and_bias(double lb, double ub,
                                                double bias) {
  std::vector<std::unique_ptr<LinkConstraint>> parts;
  parts.push_back(make_bounds(0, 1, lb, ub));
  parts.push_back(make_bias(0, 1, bias));
  return make_composite(0, 1, std::move(parts));
}

TEST(CompositeConstraint, AdmitsIsConjunction) {
  const auto c = bounds_and_bias(0.1, 1.0, 0.2);
  EXPECT_TRUE(c->admits({{0.5}, {0.6}}));
  EXPECT_FALSE(c->admits({{0.05}, {0.1}}));  // bounds violated
  EXPECT_FALSE(c->admits({{0.3}, {0.9}}));   // bias violated
}

TEST(CompositeConstraint, MlsIsMinOfParts) {
  const auto composite = bounds_and_bias(0.1, 1.0, 0.2);
  const auto bounds = make_bounds(0, 1, 0.1, 1.0);
  const auto bias = make_bias(0, 1, 0.2);

  DirectedStats ab, ba;
  ab.add(0.5);
  ab.add(0.62);
  ba.add(0.55);

  for (ProcessorId p : {0u, 1u}) {
    const DirectedStats& pq = (p == 0) ? ab : ba;
    const DirectedStats& qp = (p == 0) ? ba : ab;
    const ExtReal expect =
        min(bounds->mls(p, pq, qp), bias->mls(p, pq, qp));
    EXPECT_EQ(composite->mls(p, pq, qp), expect);
  }
}

TEST(CompositeConstraint, EndpointsMustMatch) {
  std::vector<std::unique_ptr<LinkConstraint>> parts;
  parts.push_back(make_bounds(0, 2, 0.0, 1.0));
  EXPECT_THROW(make_composite(0, 1, std::move(parts)), InvalidAssumption);
}

TEST(CompositeConstraint, EmptyRejected) {
  EXPECT_THROW(make_composite(0, 1, {}), InvalidAssumption);
}

TEST(CompositeConstraint, Describe) {
  EXPECT_EQ(bounds_and_bias(0.0, 1.0, 0.5)->describe(),
            "bounds[0,1]/[0,1] & bias[0.5]");
}

class CompositeMlsProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(CompositeMlsProperty, ClosedFormMatchesNumericOracle) {
  // The decomposition theorem's min-composition must agree with the oracle
  // applied to the *joint* admissibility predicate.
  Rng rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    const double lb = rng.uniform(0.0, 0.5);
    const double ub = lb + rng.uniform(0.2, 1.5);
    const double bias = rng.uniform(0.05, ub - lb);
    const auto c = bounds_and_bias(lb, ub, bias);

    // Admissible generator: window of width <= bias inside [lb, ub].
    const double center = rng.uniform(lb + bias / 2.0, ub - bias / 2.0);
    LinkDelays obs;
    const auto n_ab = 1 + rng.uniform_int(3);
    const auto n_ba = 1 + rng.uniform_int(3);
    for (std::uint64_t i = 0; i < n_ab; ++i)
      obs.a_to_b.push_back(
          rng.uniform(center - bias / 2.0, center + bias / 2.0));
    for (std::uint64_t i = 0; i < n_ba; ++i)
      obs.b_to_a.push_back(
          rng.uniform(center - bias / 2.0, center + bias / 2.0));
    ASSERT_TRUE(c->admits(obs));

    DirectedStats ab, ba;
    for (double d : obs.a_to_b) ab.add(d);
    for (double d : obs.b_to_a) ba.add(d);

    for (ProcessorId p : {0u, 1u}) {
      const DirectedStats& pq = (p == 0) ? ab : ba;
      const DirectedStats& qp = (p == 0) ? ba : ab;
      const ExtReal closed = c->mls(p, pq, qp);
      const ExtReal numeric = numeric_mls(*c, obs, p, /*cap=*/1e6);
      ASSERT_TRUE(closed.is_finite());
      EXPECT_NEAR(closed.finite(), numeric.finite(), 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompositeMlsProperty,
                         ::testing::Values(3, 6, 9, 12));

}  // namespace
}  // namespace cs
