#include "delaymodel/assignment.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "support/builders.hpp"

namespace cs {
namespace {

TEST(SystemModel, LinksDefaultToNoBounds) {
  const SystemModel m{make_line(3)};
  EXPECT_TRUE(m.has_link(0, 1));
  EXPECT_TRUE(m.has_link(1, 0));  // order-insensitive
  EXPECT_FALSE(m.has_link(0, 2));
  EXPECT_EQ(m.constraint(0, 1).describe(), "bounds[0,+inf]/[0,+inf]");
}

TEST(SystemModel, SetConstraintReplacesAndValidates) {
  SystemModel m{make_line(3)};
  m.set_constraint(make_bounds(1, 2, 0.1, 0.2));
  EXPECT_EQ(m.constraint(2, 1).describe(), "bounds[0.1,0.2]/[0.1,0.2]");
  EXPECT_THROW(m.set_constraint(make_bounds(0, 2, 0.1, 0.2)),
               InvalidAssumption);
}

TEST(SystemModel, ConstraintThrowsOnNonLink) {
  const SystemModel m{make_line(3)};
  EXPECT_THROW(m.constraint(0, 2), InvalidAssumption);
}

TEST(SystemModel, AdmissibleChecksEveryLink) {
  SystemModel m = test::bounded_model(make_line(3), 0.1, 0.5);
  {
    const Execution good =
        test::two_node_execution(0.0, 1.0, {0.2, 0.3}, {0.4});
    // two_node_execution only uses processors 0 and 1; extend with an idle
    // processor 2.
    std::vector<History> hs;
    hs.push_back(good.history(0));
    hs.push_back(good.history(1));
    hs.emplace_back(2, RealTime{0.0});
    EXPECT_TRUE(m.admissible(Execution(std::move(hs))));
  }
  {
    const Execution bad = test::two_node_execution(0.0, 1.0, {0.7}, {});
    std::vector<History> hs;
    hs.push_back(bad.history(0));
    hs.push_back(bad.history(1));
    hs.emplace_back(2, RealTime{0.0});
    EXPECT_FALSE(m.admissible(Execution(std::move(hs))));
  }
}

TEST(SystemModel, MessageAcrossNonLinkThrows) {
  // two_node_execution sends 0<->1 but the topology only links 0-2 and 1-2.
  SystemModel m{Topology{3, {{0, 2}, {1, 2}}}};
  const Execution e = test::two_node_execution(0.0, 0.0, {0.5}, {});
  std::vector<History> hs;
  hs.push_back(e.history(0));
  hs.push_back(e.history(1));
  hs.emplace_back(2, RealTime{0.0});
  EXPECT_THROW(m.admissible(Execution(std::move(hs))), InvalidExecution);
}

TEST(SystemModel, LinkDelaysOrientation) {
  SystemModel m{make_line(2)};
  const Execution e = test::two_node_execution(0.0, 0.0, {0.25}, {0.75});
  const LinkDelays d = m.link_delays(e, 1, 0);  // reversed query order
  ASSERT_EQ(d.a_to_b.size(), 1u);
  ASSERT_EQ(d.b_to_a.size(), 1u);
  EXPECT_NEAR(d.a_to_b[0], 0.25, 1e-12);
  EXPECT_NEAR(d.b_to_a[0], 0.75, 1e-12);
}

}  // namespace
}  // namespace cs
