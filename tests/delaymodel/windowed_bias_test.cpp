// WindowedBiasConstraint: the §6.2 "sent around the same time"
// generalization.
#include "delaymodel/windowed_bias.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "delaymodel/numeric_mls.hpp"

namespace cs {
namespace {

TimedObs obs(double send, double delay) { return TimedObs{send, delay}; }

TEST(WindowedBias, PairsInWindowConstrained) {
  const auto c = make_windowed_bias(0, 1, /*bias=*/0.1, /*window=*/1.0);
  // Sent 0.5 apart (inside window), delays differ by 0.3 > 0.1: reject.
  TimedLinkDelays d;
  d.a_to_b = {obs(10.0, 0.5)};
  d.b_to_a = {obs(10.5, 0.2)};
  EXPECT_FALSE(c->admits_timed(d));
}

TEST(WindowedBias, PairsOutsideWindowUnconstrained) {
  const auto c = make_windowed_bias(0, 1, 0.1, 1.0);
  // Same delays, but sent 5 apart: fine.
  TimedLinkDelays d;
  d.a_to_b = {obs(10.0, 0.5)};
  d.b_to_a = {obs(15.0, 0.2)};
  EXPECT_TRUE(c->admits_timed(d));
}

TEST(WindowedBias, NonNegativityAlwaysEnforced) {
  const auto c = make_windowed_bias(0, 1, 10.0, 1.0);
  TimedLinkDelays d;
  d.a_to_b = {obs(10.0, -0.01)};
  EXPECT_FALSE(c->admits_timed(d));
}

TEST(WindowedBias, InfiniteWindowMatchesPlainBias) {
  const double bias = 0.15;
  const auto windowed = make_windowed_bias(0, 1, bias, 1e12);
  const auto plain = make_bias(0, 1, bias);
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    TimedLinkDelays d;
    LinkDelays plain_d;
    for (int i = 0; i < 3; ++i) {
      const double da = rng.uniform(0.0, 0.4);
      const double db = rng.uniform(0.0, 0.4);
      d.a_to_b.push_back(obs(rng.uniform(0.0, 100.0), da));
      d.b_to_a.push_back(obs(rng.uniform(0.0, 100.0), db));
      plain_d.a_to_b.push_back(da);
      plain_d.b_to_a.push_back(db);
    }
    EXPECT_EQ(windowed->admits_timed(d), plain->admits(plain_d));
  }
}

TEST(WindowedBias, RejectsNegativeParameters) {
  EXPECT_THROW(make_windowed_bias(0, 1, -0.1, 1.0), InvalidAssumption);
  EXPECT_THROW(make_windowed_bias(0, 1, 0.1, -1.0), InvalidAssumption);
}

TEST(WindowedBias, MlsLargerThanPlainBiasWhenPairsFarApart) {
  // One message each way, sent far apart: the windowed model leaves the
  // pair unconstrained, so only non-negativity binds (mls = dmin forward),
  // while plain bias would clamp much harder.
  const double bias = 0.01;
  const auto windowed = make_windowed_bias(0, 1, bias, 1.0);
  const auto plain = make_bias(0, 1, bias);

  TimedLinkDelays d;
  d.a_to_b = {obs(0.0, 0.5)};
  d.b_to_a = {obs(50.0, 0.4)};

  const ExtReal w_mls = windowed->mls_timed(0, d.a_to_b, d.b_to_a);
  DirectedStats spq, sqp;
  spq.add(0.5);
  sqp.add(0.4);
  const ExtReal p_mls = plain->mls(0, spq, sqp);

  EXPECT_NEAR(w_mls.finite(), 0.5, 1e-9);  // only non-negativity
  EXPECT_LT(p_mls.finite(), w_mls.finite());
}

TEST(WindowedBias, MlsAccountsForPairsEnteringWindowUnderShift) {
  // The subtle case: the pair starts *outside* the window, but shifting q
  // earlier moves it in (Δ + s hits the window), at which point the bias
  // condition must hold.  Δ = send_i - send_j = -3; window [-1, 1] in
  // Δ+s means s in [2, 4] puts the pair in-window.  Delays d_i = 1.0,
  // d_j = 1.0: in-window condition |d_i - d_j - 2s| <= b fails for
  // s in [2, 4] (|{-2s}| = 2s >= 4 > b).  Non-negativity allows s <= 1.0.
  // So the admissible set is [.., 1.0] and mls = 1.0 — the window never
  // actually binds below the ceiling.
  const auto c = make_windowed_bias(0, 1, 0.5, 1.0);
  TimedLinkDelays d;
  d.a_to_b = {obs(10.0, 1.0)};
  d.b_to_a = {obs(13.0, 1.0)};
  EXPECT_NEAR(c->mls_timed(0, d.a_to_b, d.b_to_a).finite(), 1.0, 1e-9);

  // Now give the forward message a large delay so non-negativity is loose
  // (ceiling 5.0); the window region [2, 4] is inadmissible, but [4, 5]
  // is admissible again — the set is disconnected and the supremum is the
  // ceiling 5.0.  (Documented behavior: sup of the whole set.)
  TimedLinkDelays d2;
  d2.a_to_b = {obs(10.0, 5.0)};
  d2.b_to_a = {obs(13.0, 1.0)};
  EXPECT_NEAR(c->mls_timed(0, d2.a_to_b, d2.b_to_a).finite(), 5.0, 1e-9);
}

TEST(WindowedBias, MlsNoForwardTrafficIsInfinite) {
  const auto c = make_windowed_bias(0, 1, 0.1, 1.0);
  TimedLinkDelays d;
  d.b_to_a = {obs(0.0, 0.3)};
  EXPECT_TRUE(c->mls_timed(0, d.a_to_b, d.b_to_a).is_pos_inf());
}

TEST(WindowedBias, UntimedFallbacksAreConservative) {
  const auto c = make_windowed_bias(0, 1, 0.1, 1.0);
  // admits(): stricter than admits_timed (treats all pairs in-window).
  EXPECT_FALSE(c->admits({{0.5}, {0.2}}));
  // mls(): looser than mls_timed (only non-negativity).
  DirectedStats spq, sqp;
  spq.add(0.5);
  sqp.add(0.2);
  EXPECT_NEAR(c->mls(0, spq, sqp).finite(), 0.5, 1e-12);
}

class WindowedBiasProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(WindowedBiasProperty, BreakpointSweepMatchesNumericOracle) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 15; ++trial) {
    const double bias = rng.uniform(0.05, 0.3);
    const double window = rng.uniform(0.5, 3.0);
    const auto c = make_windowed_bias(0, 1, bias, window);

    // Build admissible traffic: clustered sends; delays drift between
    // clusters but stay within `bias` inside each cluster.
    TimedLinkDelays d;
    const int clusters = 1 + static_cast<int>(rng.uniform_int(3));
    for (int k = 0; k < clusters; ++k) {
      const double t0 = k * (window * 4.0);
      const double center = rng.uniform(bias, 1.0);
      const auto n_ab = 1 + rng.uniform_int(2);
      const auto n_ba = 1 + rng.uniform_int(2);
      for (std::uint64_t i = 0; i < n_ab; ++i)
        d.a_to_b.push_back(obs(t0 + rng.uniform(0.0, window / 4.0),
                               center + rng.uniform(-bias / 2, bias / 2)));
      for (std::uint64_t i = 0; i < n_ba; ++i)
        d.b_to_a.push_back(obs(t0 + rng.uniform(0.0, window / 4.0),
                               center + rng.uniform(-bias / 2, bias / 2)));
    }
    ASSERT_TRUE(c->admits_timed(d));

    for (ProcessorId p : {0u, 1u}) {
      const auto& pq = (p == 0) ? d.a_to_b : d.b_to_a;
      const auto& qp = (p == 0) ? d.b_to_a : d.a_to_b;
      const ExtReal sweep = c->mls_timed(p, pq, qp);
      const ExtReal oracle =
          numeric_mls_timed(*c, d, p, /*cap=*/50.0, /*resolution=*/5e-4);
      if (sweep.is_pos_inf()) {
        EXPECT_TRUE(oracle.is_pos_inf());
      } else {
        ASSERT_TRUE(oracle.is_finite());
        EXPECT_NEAR(sweep.finite(), oracle.finite(), 2e-3)
            << "p=" << p << " bias=" << bias << " W=" << window;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WindowedBiasProperty,
                         ::testing::Values(2, 4, 6, 8));

TEST(WindowedBias, CompositeWithBoundsUsesTimedPath) {
  std::vector<std::unique_ptr<LinkConstraint>> parts;
  parts.push_back(make_bounds(0, 1, 0.0, 2.0));
  parts.push_back(make_windowed_bias(0, 1, 0.1, 1.0));
  const auto c = make_composite(0, 1, std::move(parts));

  TimedLinkDelays d;
  d.a_to_b = {obs(0.0, 0.5)};
  d.b_to_a = {obs(50.0, 0.2)};  // far apart: windowed part is vacuous
  EXPECT_TRUE(c->admits_timed(d));
  // mls_timed = min(bounds part, windowed part) = min(ub - dmax = 1.8,
  // dmin - lb = 0.5, windowed = 0.5) = 0.5.
  EXPECT_NEAR(c->mls_timed(0, d.a_to_b, d.b_to_a).finite(), 0.5, 1e-9);
}

TEST(WindowedBias, Describe) {
  EXPECT_EQ(make_windowed_bias(0, 1, 0.25, 2.0)->describe(),
            "wbias[0.25,W=2]");
}

}  // namespace
}  // namespace cs
