#include "delaymodel/link_stats.hpp"

#include <gtest/gtest.h>

#include "support/builders.hpp"

namespace cs {
namespace {

TEST(DirectedStats, TracksExtremesAndCount) {
  DirectedStats s;
  EXPECT_TRUE(s.dmin.is_pos_inf());
  EXPECT_TRUE(s.dmax.is_neg_inf());
  EXPECT_EQ(s.count, 0u);
  s.add(0.5);
  s.add(0.2);
  s.add(0.9);
  EXPECT_DOUBLE_EQ(s.dmin.finite(), 0.2);
  EXPECT_DOUBLE_EQ(s.dmax.finite(), 0.9);
  EXPECT_EQ(s.count, 3u);
}

TEST(LinkStats, MissingDirectionIsEmpty) {
  LinkStats s;
  const DirectedStats& d = s.direction(3, 4);
  EXPECT_EQ(d.count, 0u);
  EXPECT_TRUE(d.dmin.is_pos_inf());
}

TEST(LinkStats, DirectionsAreIndependent) {
  LinkStats s;
  s.add(0, 1, 0.5);
  s.add(1, 0, 0.9);
  EXPECT_DOUBLE_EQ(s.direction(0, 1).dmin.finite(), 0.5);
  EXPECT_DOUBLE_EQ(s.direction(1, 0).dmin.finite(), 0.9);
}

TEST(LinkStats, EstimatedVsActualDifferByStartSkew) {
  // d̃ = d + S_from - S_to, so the per-direction extremes differ by exactly
  // the start-time difference.
  const double s0 = 1.5, s1 = 4.0;
  const Execution e =
      test::two_node_execution(s0, s1, {0.3, 0.8}, {0.2, 0.4});
  const auto views = e.views();
  const LinkStats est = LinkStats::estimated_from_views(views);
  const LinkStats act = LinkStats::actual_from_execution(e);

  EXPECT_NEAR(est.direction(0, 1).dmin.finite(),
              act.direction(0, 1).dmin.finite() + s0 - s1, 1e-12);
  EXPECT_NEAR(est.direction(0, 1).dmax.finite(),
              act.direction(0, 1).dmax.finite() + s0 - s1, 1e-12);
  EXPECT_NEAR(est.direction(1, 0).dmin.finite(),
              act.direction(1, 0).dmin.finite() + s1 - s0, 1e-12);
  EXPECT_EQ(est.direction(0, 1).count, 2u);
  EXPECT_EQ(est.direction(1, 0).count, 2u);
}

TEST(LinkStats, ActualMatchesConstructedDelays) {
  const Execution e = test::two_node_execution(0.0, 0.0, {0.3, 0.8}, {});
  const LinkStats act = LinkStats::actual_from_execution(e);
  EXPECT_NEAR(act.direction(0, 1).dmin.finite(), 0.3, 1e-12);
  EXPECT_NEAR(act.direction(0, 1).dmax.finite(), 0.8, 1e-12);
  EXPECT_EQ(act.direction(1, 0).count, 0u);
}

}  // namespace
}  // namespace cs
