#include "delaymodel/numeric_mls.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace cs {
namespace {

TEST(ShiftLinkDelays, SignConvention) {
  // Shifting q = b w.r.t. p = a by s: a->b delays shrink, b->a grow.
  const LinkDelays obs{{1.0}, {2.0}};
  const LinkDelays shifted = shift_link_delays(obs, /*p=*/0, /*a=*/0, 0.25);
  EXPECT_NEAR(shifted.a_to_b[0], 0.75, 1e-12);
  EXPECT_NEAR(shifted.b_to_a[0], 2.25, 1e-12);
  // Mirrored when p = b.
  const LinkDelays mirrored = shift_link_delays(obs, /*p=*/1, /*a=*/0, 0.25);
  EXPECT_NEAR(mirrored.a_to_b[0], 1.25, 1e-12);
  EXPECT_NEAR(mirrored.b_to_a[0], 1.75, 1e-12);
}

TEST(NumericMls, KnownBoundsAnswer) {
  const auto c = make_bounds(0, 1, 1.0, 4.0);
  // Forward slack = 2 - 1 = 1, reverse slack = 4 - 3 = 1 -> mls = 1.
  const ExtReal m = numeric_mls(*c, {{2.0}, {3.0}}, 0);
  EXPECT_NEAR(m.finite(), 1.0, 1e-6);
}

TEST(NumericMls, UnboundedReportedAsInfinity) {
  const auto c = make_lower_bound_only(0, 1, 0.0);
  // Shifting p=1 (i.e. q=0): 1->0 delays shrink (lb 0 eventually binds at
  // s=delay), 0->1 grow without limit.  With no 1->0 traffic, unbounded.
  const ExtReal m = numeric_mls(*c, {{0.5}, {}}, 1, /*cap=*/100.0);
  EXPECT_TRUE(m.is_pos_inf());
}

TEST(NumericMls, RequiresAdmissibleStart) {
  const auto c = make_bounds(0, 1, 1.0, 2.0);
  EXPECT_THROW(numeric_mls(*c, {{5.0}, {}}, 0), InvalidAssumption);
}

TEST(NumericMls, ZeroWhenNoSlack) {
  const auto c = make_bounds(0, 1, 1.0, 1.0);
  const ExtReal m = numeric_mls(*c, {{1.0}, {1.0}}, 0);
  EXPECT_NEAR(m.finite(), 0.0, 1e-6);
}

}  // namespace
}  // namespace cs
