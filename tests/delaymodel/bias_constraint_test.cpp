// BiasConstraint: admissibility and the Lemma 6.5 / Cor 6.6 closed form,
// cross-checked against the numeric shift oracle.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "delaymodel/constraint.hpp"
#include "delaymodel/numeric_mls.hpp"

namespace cs {
namespace {

DirectedStats stats_of(std::initializer_list<double> delays) {
  DirectedStats s;
  for (double d : delays) s.add(d);
  return s;
}

TEST(BiasConstraint, AdmitsWithinBias) {
  const auto c = make_bias(0, 1, 0.2);
  EXPECT_TRUE(c->admits({{0.5, 0.6}, {0.45, 0.55}}));
  EXPECT_FALSE(c->admits({{0.5}, {0.1}}));   // differ by 0.4 > 0.2
  EXPECT_FALSE(c->admits({{0.5}, {0.8}}));   // differ by 0.3 > 0.2
}

TEST(BiasConstraint, RequiresNonNegativeDelays) {
  const auto c = make_bias(0, 1, 10.0);
  EXPECT_FALSE(c->admits({{-0.1}, {0.0}}));
  EXPECT_FALSE(c->admits({{0.1}, {-0.2}}));
}

TEST(BiasConstraint, OneDirectionOnlyIsVacuous) {
  const auto c = make_bias(0, 1, 0.01);
  EXPECT_TRUE(c->admits({{0.5, 5.0}, {}}));  // no opposite pair to compare
}

TEST(BiasConstraint, RejectsNegativeBias) {
  EXPECT_THROW(make_bias(0, 1, -0.5), InvalidAssumption);
}

TEST(BiasConstraint, MlsClosedForm) {
  // mls(p,q) = min( dmin(p,q), (b + dmin(p,q) - dmax(q,p)) / 2 ).
  const auto c = make_bias(0, 1, 0.3);
  // dmin(0,1)=0.5, dmax(1,0)=0.6 -> min(0.5, (0.3+0.5-0.6)/2 = 0.1) = 0.1.
  EXPECT_NEAR(c->mls(0, stats_of({0.5}), stats_of({0.6})).finite(), 0.1,
              1e-12);
  // Non-negativity binds: dmin small, reverse light.
  // dmin=0.05, dmax(q,p)=0.0 -> min(0.05, (0.3+0.05)/2=0.175) = 0.05.
  EXPECT_NEAR(c->mls(0, stats_of({0.05}), stats_of({0.0})).finite(), 0.05,
              1e-12);
}

TEST(BiasConstraint, MlsNoReverseTraffic) {
  const auto c = make_bias(0, 1, 0.3);
  // dmax(q,p) = -inf makes the bias term +inf; non-negativity remains.
  EXPECT_NEAR(c->mls(0, stats_of({0.7}), DirectedStats{}).finite(), 0.7,
              1e-12);
}

TEST(BiasConstraint, MlsNoForwardTraffic) {
  const auto c = make_bias(0, 1, 0.3);
  EXPECT_TRUE(c->mls(0, DirectedStats{}, stats_of({0.5})).is_pos_inf());
}

class BiasMlsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BiasMlsProperty, ClosedFormMatchesNumericOracle) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    const double bias = rng.uniform(0.05, 1.0);
    const auto c = make_bias(0, 1, bias);

    // Generate admissible delays: all within a window of width <= bias.
    const double center = rng.uniform(bias / 2.0, 2.0);
    const double lo = std::max(0.0, center - bias / 2.0);
    const double hi = center + bias / 2.0;
    LinkDelays obs;
    const auto n_ab = 1 + rng.uniform_int(4);
    const auto n_ba = 1 + rng.uniform_int(4);
    for (std::uint64_t i = 0; i < n_ab; ++i)
      obs.a_to_b.push_back(rng.uniform(lo, hi));
    for (std::uint64_t i = 0; i < n_ba; ++i)
      obs.b_to_a.push_back(rng.uniform(lo, hi));
    ASSERT_TRUE(c->admits(obs));

    DirectedStats ab, ba;
    for (double d : obs.a_to_b) ab.add(d);
    for (double d : obs.b_to_a) ba.add(d);

    for (ProcessorId p : {0u, 1u}) {
      const ExtReal closed =
          (p == 0) ? c->mls(0, ab, ba) : c->mls(1, ba, ab);
      const ExtReal numeric = numeric_mls(*c, obs, p, /*cap=*/1e6);
      ASSERT_TRUE(closed.is_finite());
      ASSERT_TRUE(numeric.is_finite());
      EXPECT_NEAR(closed.finite(), numeric.finite(), 1e-6)
          << "p=" << p << " bias=" << bias;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BiasMlsProperty,
                         ::testing::Values(7, 14, 21, 28, 35, 42));

TEST(BiasConstraint, Describe) {
  EXPECT_EQ(make_bias(0, 1, 0.25)->describe(), "bias[0.25]");
}

}  // namespace
}  // namespace cs
