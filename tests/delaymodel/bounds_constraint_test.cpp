// BoundsConstraint: admissibility and the Lemma 6.2 / Cor 6.3 closed form,
// cross-checked against the numeric shift oracle.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "delaymodel/constraint.hpp"
#include "delaymodel/numeric_mls.hpp"

namespace cs {
namespace {

DirectedStats stats_of(std::initializer_list<double> delays) {
  DirectedStats s;
  for (double d : delays) s.add(d);
  return s;
}

TEST(BoundsConstraint, AdmitsWithinBounds) {
  const auto c = make_bounds(0, 1, 0.1, 0.5);
  EXPECT_TRUE(c->admits({{0.1, 0.3, 0.5}, {0.2}}));
  EXPECT_FALSE(c->admits({{0.05}, {}}));   // below lb
  EXPECT_FALSE(c->admits({{}, {0.6}}));    // above ub
  EXPECT_TRUE(c->admits({{}, {}}));        // vacuous
}

TEST(BoundsConstraint, AsymmetricDirections) {
  const Interval ab{ExtReal{0.0}, ExtReal{1.0}};
  const Interval ba{ExtReal{2.0}, ExtReal{3.0}};
  const auto c = make_bounds(0, 1, ab, ba);
  EXPECT_TRUE(c->admits({{0.5}, {2.5}}));
  EXPECT_FALSE(c->admits({{2.5}, {0.5}}));
}

TEST(BoundsConstraint, RejectsInvalidConfig) {
  EXPECT_THROW(BoundsConstraint(1, 0, Interval{}, Interval{}),
               InvalidAssumption);  // endpoints out of order
  EXPECT_THROW(
      make_bounds(0, 1, Interval{ExtReal{-0.1}, ExtReal{1.0}}, Interval{}),
      InvalidAssumption);  // negative lower bound
}

TEST(BoundsConstraint, MlsClosedFormBothTermsActive) {
  // mls(p,q) = min( ub(q,p) - dmax(q,p), dmin(p,q) - lb(p,q) ).
  const auto c = make_bounds(0, 1, 1.0, 4.0);
  // Direction p=0: dmin(0,1)=2 => forward slack 2-1=1;
  // reverse dmax(1,0)=3 => slack 4-3=1 -> mls=1.
  EXPECT_DOUBLE_EQ(
      c->mls(0, stats_of({2.0, 2.5}), stats_of({3.0})).finite(), 1.0);
  // Tighter reverse: dmax(1,0)=3.8 => min(0.2, 1.0) = 0.2.
  EXPECT_NEAR(c->mls(0, stats_of({2.0}), stats_of({3.8})).finite(), 0.2,
              1e-12);
}

TEST(BoundsConstraint, MlsInfiniteUpperBound) {
  const auto c = make_lower_bound_only(0, 1, 0.5);
  // Reverse slack infinite; forward slack = dmin - lb.
  EXPECT_NEAR(c->mls(0, stats_of({1.2}), stats_of({0.9})).finite(), 0.7,
              1e-12);
  // No forward traffic either: mls infinite.
  EXPECT_TRUE(c->mls(0, DirectedStats{}, stats_of({0.9})).is_pos_inf());
}

TEST(BoundsConstraint, MlsNoTrafficFiniteUb) {
  const auto c = make_bounds(0, 1, 0.0, 1.0);
  // No messages at all: mls = ub(q,p) - (-inf)?  No: dmax = -inf makes the
  // reverse slack +inf, dmin = +inf makes the forward slack +inf.
  EXPECT_TRUE(c->mls(0, DirectedStats{}, DirectedStats{}).is_pos_inf());
  // Only reverse traffic: mls = ub - dmax finite.
  EXPECT_NEAR(c->mls(0, DirectedStats{}, stats_of({0.4})).finite(), 0.6,
              1e-12);
}

TEST(BoundsConstraint, NoBoundsModelMlsIsDmin) {
  // Cor 6.4 specialization: lb = 0, ub = inf => mls(p,q) = dmin(p,q).
  const auto c = make_no_bounds(0, 1);
  EXPECT_NEAR(c->mls(0, stats_of({0.8, 1.4}), stats_of({2.0})).finite(), 0.8,
              1e-12);
}

TEST(BoundsConstraint, ZeroUncertaintyMlsIsZero) {
  // lb == ub: delays are known exactly; no shift is admissible.
  const auto c = make_bounds(0, 1, 0.3, 0.3);
  EXPECT_NEAR(c->mls(0, stats_of({0.3}), stats_of({0.3})).finite(), 0.0,
              1e-12);
}

class BoundsMlsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BoundsMlsProperty, ClosedFormMatchesNumericOracle) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    const double lb = rng.uniform(0.0, 1.0);
    const double ub = lb + rng.uniform(0.01, 2.0);
    const bool infinite_ub = rng.uniform01() < 0.3;
    const auto c = infinite_ub ? make_lower_bound_only(0, 1, lb)
                               : make_bounds(0, 1, lb, ub);
    const double hi = infinite_ub ? lb + 2.0 : ub;

    LinkDelays obs;
    const auto n_ab = 1 + rng.uniform_int(4);
    const auto n_ba = 1 + rng.uniform_int(4);
    for (std::uint64_t i = 0; i < n_ab; ++i)
      obs.a_to_b.push_back(rng.uniform(lb, hi));
    for (std::uint64_t i = 0; i < n_ba; ++i)
      obs.b_to_a.push_back(rng.uniform(lb, hi));

    DirectedStats ab, ba;
    for (double d : obs.a_to_b) ab.add(d);
    for (double d : obs.b_to_a) ba.add(d);

    for (ProcessorId p : {0u, 1u}) {
      const ExtReal closed =
          (p == 0) ? c->mls(0, ab, ba) : c->mls(1, ba, ab);
      const ExtReal numeric = numeric_mls(*c, obs, p, /*cap=*/1e6);
      if (closed.is_pos_inf()) {
        EXPECT_TRUE(numeric.is_pos_inf());
      } else {
        ASSERT_TRUE(numeric.is_finite());
        EXPECT_NEAR(closed.finite(), numeric.finite(), 1e-6)
            << "p=" << p << " lb=" << lb << " ub=" << ub;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundsMlsProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

class AsymmetricBoundsProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AsymmetricBoundsProperty, ClosedFormMatchesNumericOracle) {
  // Directions with independent [lb, ub] intervals — the orientation
  // bookkeeping in BoundsConstraint::mls is what this targets.
  Rng rng(GetParam() * 1009 + 3);
  for (int trial = 0; trial < 30; ++trial) {
    const double lb_ab = rng.uniform(0.0, 1.0);
    const double ub_ab = lb_ab + rng.uniform(0.05, 2.0);
    const double lb_ba = rng.uniform(0.0, 1.5);
    const double ub_ba = lb_ba + rng.uniform(0.05, 1.0);
    const auto c = make_bounds(0, 1, Interval{ExtReal{lb_ab}, ExtReal{ub_ab}},
                               Interval{ExtReal{lb_ba}, ExtReal{ub_ba}});

    LinkDelays obs;
    const auto n_ab = 1 + rng.uniform_int(3);
    const auto n_ba = 1 + rng.uniform_int(3);
    for (std::uint64_t i = 0; i < n_ab; ++i)
      obs.a_to_b.push_back(rng.uniform(lb_ab, ub_ab));
    for (std::uint64_t i = 0; i < n_ba; ++i)
      obs.b_to_a.push_back(rng.uniform(lb_ba, ub_ba));

    DirectedStats ab, ba;
    for (double d : obs.a_to_b) ab.add(d);
    for (double d : obs.b_to_a) ba.add(d);

    for (ProcessorId p : {0u, 1u}) {
      const ExtReal closed =
          (p == 0) ? c->mls(0, ab, ba) : c->mls(1, ba, ab);
      const ExtReal numeric = numeric_mls(*c, obs, p, /*cap=*/1e6);
      ASSERT_TRUE(numeric.is_finite());
      EXPECT_NEAR(closed.finite(), numeric.finite(), 1e-6)
          << "p=" << p << " ab=[" << lb_ab << "," << ub_ab << "] ba=["
          << lb_ba << "," << ub_ba << "]";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AsymmetricBoundsProperty,
                         ::testing::Values(1, 2, 3, 4));

TEST(BoundsConstraint, Describe) {
  EXPECT_EQ(make_bounds(0, 1, 0.5, 2.0)->describe(),
            "bounds[0.5,2]/[0.5,2]");
  EXPECT_EQ(make_no_bounds(0, 1)->describe(), "bounds[0,+inf]/[0,+inf]");
}

}  // namespace
}  // namespace cs
