#!/usr/bin/env sh
# Regenerate the golden traces.  Run from the repo root after building:
#
#   cmake --build build -j --target cs_sync && sh tests/data/regen.sh
#
# Only do this after an *intentional* pipeline change, and audit the diff:
# the goldens pin the bit-exact numeric behavior of the epoch pipeline.
# The recorded events depend on this machine's libm via the delay samplers,
# so regeneration rewrites every event line — what must stay invariant
# across regenerations on any platform is that replay matches the recording.
set -eu
cd "$(dirname "$0")"
CS_SYNC=${CS_SYNC:-../../build/tools/cs_sync}

# Fault-free: 5-ring, ping-pong probing, one epoch over everything.
"$CS_SYNC" simulate golden_clean.trace \
  --topology ring --n 5 --seed 42 --skew 0.2

# 20% message loss plus a crashed processor, three cumulative epochs.
"$CS_SYNC" simulate golden_faulty.trace \
  --topology ring --n 6 --seed 7 --proto beacon \
  --warmup 0.1 --period 0.05 --count 40 \
  --drop 0.2 --crash 5:1.5 --fault-seed 99 \
  --boundaries 0.8,1.4,2.0

# Sliding-window epochs with staleness carry-forward over the same faults.
"$CS_SYNC" simulate golden_windowed.trace \
  --topology ring --n 6 --seed 7 --skew 0.1 --proto beacon \
  --warmup 0.1 --period 0.05 --count 40 \
  --drop 0.2 --crash 5:1.5 --fault-seed 99 \
  --boundaries 0.8,1.4,2.0 --window 0.6 \
  --carry --widen 0.005 --max-age 2

# Drifting clocks: constant-skew oscillators in a 150 ppm band (docs/
# DRIFT.md).  Pins the non-unit `rate` header lines through the replay /
# rerecord / diff round trip.
"$CS_SYNC" simulate golden_drifting.trace \
  --topology ring --n 5 --seed 9 --skew 0.1 --drift 150
