// EventLoop reactor: dispatch, interest updates, removal-during-callback
// safety, and the cross-thread wake — on both backends where available.
#include "net/event_loop.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <array>
#include <chrono>
#include <thread>

#include "common/error.hpp"

namespace cs::net {
namespace {

struct Pipe {
  Pipe() { EXPECT_EQ(::pipe(fds.data()), 0); }
  ~Pipe() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
  int read_end() const { return fds[0]; }
  int write_end() const { return fds[1]; }
  void put(char c) { EXPECT_EQ(::write(fds[1], &c, 1), 1); }
  char get() {
    char c = 0;
    EXPECT_EQ(::read(fds[0], &c, 1), 1);
    return c;
  }
  std::array<int, 2> fds{-1, -1};
};

class EventLoopBackends : public ::testing::TestWithParam<LoopBackend> {};

TEST_P(EventLoopBackends, DispatchesReadableCallback) {
  EventLoop loop(GetParam());
  Pipe pipe;
  int reads = 0;
  loop.add(pipe.read_end(), /*want_read=*/true, /*want_write=*/false,
           [&](bool readable, bool) {
             EXPECT_TRUE(readable);
             ++reads;
             pipe.get();
           });
  EXPECT_EQ(loop.watched(), 1u);

  EXPECT_EQ(loop.poll_once(0), 0);  // nothing pending
  pipe.put('x');
  EXPECT_EQ(loop.poll_once(1000), 1);
  EXPECT_EQ(reads, 1);
  EXPECT_EQ(loop.poll_once(0), 0);  // drained
}

TEST_P(EventLoopBackends, ModifyTogglesWriteInterest) {
  EventLoop loop(GetParam());
  Pipe pipe;
  int writables = 0;
  // A fresh pipe's write end is immediately writable.
  loop.add(pipe.write_end(), /*want_read=*/false, /*want_write=*/false,
           [&](bool, bool writable) {
             if (writable) ++writables;
           });
  EXPECT_EQ(loop.poll_once(0), 0);  // no interest, no dispatch

  loop.modify(pipe.write_end(), /*want_read=*/false, /*want_write=*/true);
  EXPECT_EQ(loop.poll_once(1000), 1);
  EXPECT_EQ(writables, 1);

  loop.modify(pipe.write_end(), /*want_read=*/false, /*want_write=*/false);
  EXPECT_EQ(loop.poll_once(0), 0);
  EXPECT_EQ(writables, 1);
}

TEST_P(EventLoopBackends, RemoveDuringOwnCallbackIsSafe) {
  EventLoop loop(GetParam());
  Pipe a;
  Pipe b;
  int a_calls = 0;
  int b_calls = 0;
  // a's callback removes BOTH descriptors while both are ready; b's
  // callback must then be skipped even though b was in the ready set.
  loop.add(a.read_end(), true, false, [&](bool, bool) {
    ++a_calls;
    loop.remove(a.read_end());
    loop.remove(b.read_end());
  });
  loop.add(b.read_end(), true, false, [&](bool, bool) { ++b_calls; });
  a.put('1');
  b.put('2');
  loop.poll_once(1000);
  EXPECT_EQ(a_calls, 1);
  EXPECT_EQ(b_calls, 0);
  EXPECT_EQ(loop.watched(), 0u);

  // The loop keeps working after the mid-dispatch removals.
  Pipe c;
  int c_calls = 0;
  loop.add(c.read_end(), true, false, [&](bool, bool) {
    ++c_calls;
    c.get();
  });
  c.put('3');
  EXPECT_EQ(loop.poll_once(1000), 1);
  EXPECT_EQ(c_calls, 1);
}

TEST_P(EventLoopBackends, RemoveUnknownFdIsIgnored) {
  EventLoop loop(GetParam());
  loop.remove(12345);  // no throw, no effect
  EXPECT_EQ(loop.watched(), 0u);
}

TEST_P(EventLoopBackends, DuplicateAddThrows) {
  EventLoop loop(GetParam());
  Pipe pipe;
  loop.add(pipe.read_end(), true, false, [](bool, bool) {});
  EXPECT_THROW(loop.add(pipe.read_end(), true, false, [](bool, bool) {}),
               Error);
}

TEST_P(EventLoopBackends, WakeInterruptsBlockedPoll) {
  EventLoop loop(GetParam());
  Pipe pipe;  // watched but never written: poll would block full timeout
  loop.add(pipe.read_end(), true, false, [](bool, bool) {});

  const auto start = std::chrono::steady_clock::now();
  std::thread waker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    loop.wake();
  });
  const int dispatched = loop.poll_once(10'000);
  waker.join();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(dispatched, 0);  // wake pipe is not counted
  EXPECT_LT(elapsed, std::chrono::seconds(5));
}

TEST_P(EventLoopBackends, WakeBeforePollReturnsImmediately) {
  EventLoop loop(GetParam());
  loop.wake();
  const auto start = std::chrono::steady_clock::now();
  loop.poll_once(10'000);
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds(5));
  // The wake is consumed: the next nonblocking poll has nothing.
  EXPECT_EQ(loop.poll_once(0), 0);
}

INSTANTIATE_TEST_SUITE_P(Backends, EventLoopBackends,
#ifdef __linux__
                         ::testing::Values(LoopBackend::kEpoll,
                                           LoopBackend::kPoll),
#else
                         ::testing::Values(LoopBackend::kPoll),
#endif
                         [](const auto& info) {
                           return info.param == LoopBackend::kEpoll
                                      ? "Epoll"
                                      : "Poll";
                         });

#ifdef __linux__
TEST(EventLoopBackend, AutoPicksEpollOnLinux) {
  EventLoop loop(LoopBackend::kAuto);
  EXPECT_TRUE(loop.using_epoll());
}
#endif

TEST(EventLoopBackend, PollBackendReportsNoEpoll) {
  EventLoop loop(LoopBackend::kPoll);
  EXPECT_FALSE(loop.using_epoll());
}

}  // namespace
}  // namespace cs::net
