// SyncServer over real loopback sockets: handshake, probe echoing, typed
// refusal of garbage, window rejection, and many concurrent clients.
#include "net/server.hpp"

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/metrics.hpp"
#include "net/timestamp.hpp"
#include "net/wire.hpp"

namespace cs::net {
namespace {

// A raw UDP client: one loopback socket with a short receive timeout.
struct Client {
  int fd{-1};
  SocketAddress addr = loopback(0);

  Client() {
    fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in sa;
    to_sockaddr(addr, sa);
    EXPECT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof sa),
              0);
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len),
              0);
    addr.port = ntohs(bound.sin_port);
    timeval tv{0, 200'000};  // 200ms
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  }
  ~Client() {
    if (fd >= 0) ::close(fd);
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  void send(const SocketAddress& to, const std::vector<std::uint8_t>& bytes) {
    sockaddr_in dst;
    to_sockaddr(to, dst);
    EXPECT_EQ(::sendto(fd, bytes.data(), bytes.size(), 0,
                       reinterpret_cast<const sockaddr*>(&dst), sizeof dst),
              static_cast<ssize_t>(bytes.size()));
  }
  void send(const SocketAddress& to, const Frame& frame) {
    send(to, encode(frame));
  }

  std::optional<Frame> recv_frame() {
    std::vector<std::uint8_t> buf(kMaxDatagramBytes);
    const ssize_t got = ::recv(fd, buf.data(), buf.size(), 0);
    if (got <= 0) return std::nullopt;  // timeout
    const DecodeResult result = decode(
        std::span<const std::uint8_t>(buf.data(),
                                      static_cast<std::size_t>(got)));
    if (!result.ok()) return std::nullopt;
    return result.frame;
  }
};

class SyncServerTest : public ::testing::Test {
 protected:
  // Injectable clock so idle expiry is driven, not slept through.
  double clock_now_ = 100.0;

  std::unique_ptr<SyncServer> make_server(SyncServerConfig config = {}) {
    config.agent = 42;
    config.metrics = &metrics_;
    config.clock = [this] { return clock_now_; };
    return std::make_unique<SyncServer>(std::move(config));
  }

  // Exchange: send, let the server run one iteration, read the reply.
  std::optional<Frame> roundtrip(SyncServer& server, Client& client,
                                 const Frame& frame) {
    client.send(server.local_address(), frame);
    server.step(200);
    return client.recv_frame();
  }

  Hello good_hello(std::uint32_t agent) const {
    return Hello{agent, to_ticks(clock_now_)};
  }

  Metrics metrics_;
};

TEST_F(SyncServerTest, HelloHandshakeEstablishesSession) {
  auto server = make_server();
  Client client;
  const auto reply = roundtrip(*server, client, Frame{good_hello(7)});
  ASSERT_TRUE(reply.has_value());
  const auto* ack = std::get_if<HelloAck>(&reply->body);
  ASSERT_NE(ack, nullptr);
  EXPECT_EQ(ack->agent, 42u);
  // The ack's stamp is the server's own clock — within the window of ours.
  EXPECT_LT(std::abs(ack->clock_ticks - to_ticks(clock_now_)),
            kTimestampHalfWindow / 4);
  EXPECT_EQ(metrics_.counter("runtime.net.sessions_created"), 1u);
  EXPECT_EQ(metrics_.counter("runtime.net.hello_window_reject"), 0u);
}

TEST_F(SyncServerTest, ProbeBatchIsEchoedSampleForSample) {
  auto server = make_server();
  Client client;
  ASSERT_TRUE(roundtrip(*server, client, Frame{good_hello(7)}).has_value());

  ProbeBatch probe;
  probe.from = 7;
  probe.to = 42;
  const std::int64_t send_ticks = to_ticks(clock_now_);
  probe.samples = {{101, compress24(send_ticks)},
                   {102, compress24(send_ticks + 3)},
                   {103, compress24(send_ticks + 9)}};
  const auto reply = roundtrip(*server, client, Frame{probe});
  ASSERT_TRUE(reply.has_value());
  const auto* echo = std::get_if<EchoBatch>(&reply->body);
  ASSERT_NE(echo, nullptr);
  EXPECT_EQ(echo->from, 42u);
  EXPECT_EQ(echo->to, 7u);
  // N:M amortization: one reply frame echoes every sample of the probe
  // datagram, each keeping its seq + send stamp and sharing one recv stamp.
  ASSERT_EQ(echo->samples.size(), probe.samples.size());
  for (std::size_t i = 0; i < probe.samples.size(); ++i) {
    EXPECT_EQ(echo->samples[i].seq, probe.samples[i].seq);
    EXPECT_EQ(echo->samples[i].t_send24, probe.samples[i].t_send24);
    EXPECT_EQ(echo->samples[i].t_recv24, echo->samples[0].t_recv24);
  }
}

TEST_F(SyncServerTest, ProbeBeforeHelloIsServed) {
  // kImplicit sessions: probing without a handshake still gets echoes (the
  // window check is the client's loss in that case, not a protocol error).
  auto server = make_server();
  Client client;
  ProbeBatch probe;
  probe.from = 3;
  probe.to = 42;
  probe.samples = {{1, compress24(to_ticks(clock_now_))}};
  const auto reply = roundtrip(*server, client, Frame{probe});
  ASSERT_TRUE(reply.has_value());
  EXPECT_NE(std::get_if<EchoBatch>(&reply->body), nullptr);
}

TEST_F(SyncServerTest, GarbageDatagramLeavesNoSessionBehind) {
  auto server = make_server();
  Client client;
  client.send(server->local_address(),
              std::vector<std::uint8_t>{0xDE, 0xAD, 0xBE, 0xEF, 0x00});
  server->step(200);
  EXPECT_EQ(metrics_.counter("runtime.net.decode_error"), 1u);
  EXPECT_EQ(metrics_.counter("runtime.net.sessions_created"), 0u);
  EXPECT_FALSE(client.recv_frame().has_value());

  // The provisional session was dropped: a sweep sees an empty table.
  clock_now_ += 10.0;
  server->step(0);
  EXPECT_EQ(server->active_sessions(), 0u);
}

TEST_F(SyncServerTest, HelloOutsideClockWindowIsRejected) {
  auto server = make_server();
  Client client;
  // A clock a full window away would wrap compact stamps silently — the
  // server must refuse at handshake time, loudly.
  Hello skewed{7, to_ticks(clock_now_) + kTimestampWindow};
  client.send(server->local_address(), Frame{skewed});
  server->step(200);
  EXPECT_FALSE(client.recv_frame().has_value());
  EXPECT_EQ(metrics_.counter("runtime.net.hello_window_reject"), 1u);
  EXPECT_EQ(metrics_.counter("runtime.net.sessions_created"), 0u);
}

TEST_F(SyncServerTest, ByeClosesTheSession) {
  auto server = make_server();
  Client client;
  ASSERT_TRUE(roundtrip(*server, client, Frame{good_hello(7)}).has_value());
  client.send(server->local_address(), Frame{Bye{7}});
  server->step(200);
  clock_now_ += 10.0;
  server->step(0);  // sweep publishes the size
  EXPECT_EQ(server->active_sessions(), 0u);

  // The peer can come back: a fresh Hello re-establishes.
  ASSERT_TRUE(roundtrip(*server, client, Frame{good_hello(7)}).has_value());
  EXPECT_EQ(metrics_.counter("runtime.net.sessions_created"), 2u);
}

TEST_F(SyncServerTest, IdleSessionsAreSwept) {
  SyncServerConfig config;
  config.session.idle_timeout = Duration{5.0};
  auto server = make_server(std::move(config));
  Client client;
  ASSERT_TRUE(roundtrip(*server, client, Frame{good_hello(7)}).has_value());

  clock_now_ += 60.0;  // way past idle_timeout and the sweep period
  server->step(0);
  EXPECT_EQ(metrics_.counter("runtime.net.sessions_expired"), 1u);
  EXPECT_EQ(server->active_sessions(), 0u);
}

TEST_F(SyncServerTest, ManyConcurrentClientsAreMultiplexed) {
  auto server = make_server();
  constexpr std::size_t kClients = 64;
  std::vector<std::unique_ptr<Client>> clients;
  for (std::size_t i = 0; i < kClients; ++i) {
    clients.push_back(std::make_unique<Client>());
    clients.back()->send(server->local_address(),
                         Frame{good_hello(static_cast<std::uint32_t>(i))});
  }
  // Drain everything (several iterations: one step may batch many).
  for (int i = 0; i < 50; ++i) server->step(10);

  std::size_t acked = 0;
  for (auto& client : clients) {
    const auto reply = client->recv_frame();
    if (reply.has_value() &&
        std::get_if<HelloAck>(&reply->body) != nullptr)
      ++acked;
  }
  EXPECT_EQ(acked, kClients);
  EXPECT_EQ(metrics_.counter("runtime.net.sessions_created"), kClients);
  clock_now_ += 2.0;  // past the sweep period: publishes the counters
  server->step(0);
  EXPECT_GE(server->peak_sessions(), kClients);
}

TEST_F(SyncServerTest, MultipleFramesInOneDatagramAllHandled) {
  auto server = make_server();
  Client client;
  ProbeBatch probe;
  probe.from = 7;
  probe.to = 42;
  probe.samples = {{1, compress24(to_ticks(clock_now_))}};
  std::vector<std::uint8_t> datagram;
  encode(Frame{good_hello(7)}, datagram);
  encode(Frame{probe}, datagram);
  client.send(server->local_address(), datagram);
  server->step(200);

  // Two replies: a HelloAck datagram and an EchoBatch datagram.
  const auto first = client.recv_frame();
  const auto second = client.recv_frame();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_NE(std::get_if<HelloAck>(&first->body), nullptr);
  EXPECT_NE(std::get_if<EchoBatch>(&second->body), nullptr);
}

TEST_F(SyncServerTest, TruncatedOversizeDatagramIsCountedAndDropped) {
  auto server = make_server();
  Client client;
  // Larger than the server's receive buffer is impossible to trigger here
  // (the buffer is max-datagram sized), but MSG_TRUNC accounting is covered
  // at the transport layer; this test pins the decode path: a valid header
  // with a torn-off body is a typed error, not a crash.
  std::vector<std::uint8_t> torn = encode(Frame{good_hello(1)});
  torn.resize(torn.size() / 2);
  client.send(server->local_address(), torn);
  server->step(200);
  EXPECT_EQ(metrics_.counter("runtime.net.decode_error"), 1u);
  EXPECT_FALSE(client.recv_frame().has_value());
}

}  // namespace
}  // namespace cs::net
