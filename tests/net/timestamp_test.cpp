// 24-bit compressed timestamps: exact reconstruction inside the window,
// the ±1-tick edges of the guard band, and the documented wrap failure.
#include "net/timestamp.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "common/rng.hpp"

namespace cs::net {
namespace {

TEST(Ticks, ConversionRoundTripsMicroseconds) {
  EXPECT_EQ(to_ticks(0.0), 0);
  EXPECT_EQ(to_ticks(1.0), 1'000'000);
  EXPECT_EQ(to_ticks(-2.5), -2'500'000);
  EXPECT_DOUBLE_EQ(from_ticks(to_ticks(1234.567891)), 1234.567891);
  // Round-to-nearest, not truncation.
  EXPECT_EQ(to_ticks(1e-6 * 0.6), 1);
}

TEST(Reconstruct, ExactWithinHalfWindow) {
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    const std::int64_t ref =
        static_cast<std::int64_t>(rng.uniform_int(1ull << 40));
    // True stamps strictly inside the unambiguous zone.
    const std::int64_t offset =
        static_cast<std::int64_t>(
            rng.uniform_int(2 * (kTimestampHalfWindow - kDefaultGuardTicks))) -
        (kTimestampHalfWindow - kDefaultGuardTicks);
    const std::int64_t truth = ref + offset;
    const Reconstructed r = reconstruct24(compress24(truth), ref);
    EXPECT_EQ(r.ticks, truth);
    EXPECT_FALSE(r.ambiguous) << "offset " << offset;
  }
}

TEST(Reconstruct, GuardBandEdgesPlusMinusOneTick) {
  const std::int64_t ref = 987'654'321'000;
  const std::int64_t guard = kDefaultGuardTicks;
  // Innermost still-ambiguous offset: margin == guard.
  const std::int64_t edge = kTimestampHalfWindow - guard;
  struct Case {
    std::int64_t offset;
    bool ambiguous;
  } cases[] = {
      {edge - 1, false},  // margin = guard + 1: trusted
      {edge, true},       // margin = guard: flagged
      {edge + 1, true},   // deeper in: flagged
      {-(edge - 1), false},
      {-edge, true},
      {-(edge + 1), true},
  };
  for (const Case& c : cases) {
    const Reconstructed r = reconstruct24(compress24(ref + c.offset), ref);
    EXPECT_EQ(r.ticks, ref + c.offset) << "offset " << c.offset;
    EXPECT_EQ(r.ambiguous, c.ambiguous) << "offset " << c.offset;
  }
}

TEST(Reconstruct, HalfWindowBoundaryWrapsToOtherSide) {
  const std::int64_t ref = 50'000'000;
  // +2^23 is indistinguishable from -2^23: the recentering maps it there.
  const Reconstructed r =
      reconstruct24(compress24(ref + kTimestampHalfWindow), ref);
  EXPECT_EQ(r.ticks, ref - kTimestampHalfWindow);
  EXPECT_TRUE(r.ambiguous);
}

TEST(Reconstruct, FullWrapIsSilentlyWrong) {
  // The documented failure mode (docs/NET.md): a stamp a whole window away
  // reconstructs to the wrong value with no flag.  The Hello full-width
  // check exists precisely because this case cannot be detected here.
  const std::int64_t ref = 300'000'000;
  const std::int64_t truth = ref + kTimestampWindow + 5;
  const Reconstructed r = reconstruct24(compress24(truth), ref);
  EXPECT_EQ(r.ticks, ref + 5);  // window-shifted
  EXPECT_FALSE(r.ambiguous);
}

TEST(Reconstruct, ZeroGuardTrustsEverythingButTheEdge) {
  const std::int64_t ref = 1'000'000;
  const Reconstructed inside =
      reconstruct24(compress24(ref + kTimestampHalfWindow - 1), ref, 0);
  EXPECT_FALSE(inside.ambiguous);
  const Reconstructed edge =
      reconstruct24(compress24(ref - kTimestampHalfWindow), ref, 0);
  EXPECT_TRUE(edge.ambiguous);  // margin == 0 <= guard 0
}

TEST(Reconstruct, NegativeLocalClocksCompressConsistently) {
  // Daemons start before their shared base: clocks go negative.  Two's
  // complement truncation keeps reconstruction exact there too.
  const std::int64_t ref = -1'234'567;
  const std::int64_t truth = ref + 42;
  const Reconstructed r = reconstruct24(compress24(truth), ref);
  EXPECT_EQ(r.ticks, truth);
  EXPECT_FALSE(r.ambiguous);
}

}  // namespace
}  // namespace cs::net
