// NetDaemon end-to-end: N in-process daemons over real loopback sockets
// converge to identical, offline-reproducible Thm 4.6 corrections; plus
// the report codec and the constructor's config validation.
#include "net/daemon.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/error.hpp"
#include "net/server.hpp"
#include "support/builders.hpp"

namespace cs::net {
namespace {

double realtime_now() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

// Reserve n distinct ephemeral loopback ports: bind, record, release.
// (The tiny reuse race is acceptable in the test environment; daemons
// throw loudly on a bind collision rather than misbehaving.)
std::vector<SocketAddress> reserve_ports(std::size_t n) {
  std::vector<SocketAddress> addrs(n, loopback(0));
  std::vector<int> fds;
  for (std::size_t i = 0; i < n; ++i) fds.push_back(open_udp_socket(addrs[i]));
  for (const int fd : fds) ::close(fd);
  return addrs;
}

double spread(const std::vector<double>& values) {
  const auto [lo, hi] = std::minmax_element(values.begin(), values.end());
  return *hi - *lo;
}

TEST(ExtremesCodec, RoundTripsAndRejectsMalformedPayloads) {
  const std::vector<DirectionExtremes> dirs = {
      {1, 0.00002, 0.00413, 17},
      {3, 0.1, 0.1, 1},
      {7, -0.5, 2.25, 123456789},
  };
  const std::vector<double> payload = encode_extremes(dirs);
  std::vector<DirectionExtremes> back;
  ASSERT_TRUE(decode_extremes(payload, back));
  EXPECT_EQ(back, dirs);

  // Empty report: zero directions is legal.
  std::vector<DirectionExtremes> none;
  ASSERT_TRUE(decode_extremes(encode_extremes({}), none));
  EXPECT_TRUE(none.empty());

  // Malformed: truncated payload, count/length mismatch, absurd count.
  std::vector<double> torn(payload.begin(), payload.end() - 1);
  EXPECT_FALSE(decode_extremes(torn, back));
  EXPECT_FALSE(decode_extremes(std::vector<double>{2.0, 1.0, 0.0, 0.0, 1.0},
                               back));
  EXPECT_FALSE(decode_extremes(std::vector<double>{1e18}, back));
  EXPECT_FALSE(decode_extremes(std::vector<double>{}, back));
}

TEST(NetDaemonConfigValidation, RejectsMalformedSetups) {
  const SystemModel model = test::bounded_model(make_complete(3), 0.0, 0.05);
  const double base = realtime_now() + 5.0;

  auto good = [&] {
    NetDaemonConfig config;
    config.peers = std::vector<SocketAddress>(3, loopback(0));
    config.model = &model;
    config.base = base;
    return config;
  };

  {  // model is mandatory
    NetDaemonConfig config = good();
    config.model = nullptr;
    EXPECT_THROW(NetDaemon{config}, Error);
  }
  {  // one address per processor
    NetDaemonConfig config = good();
    config.peers.pop_back();
    EXPECT_THROW(NetDaemon{config}, Error);
  }
  {  // id / leader in range
    NetDaemonConfig config = good();
    config.id = 3;
    EXPECT_THROW(NetDaemon{config}, Error);
    config.id = 0;
    config.leader = 99;
    EXPECT_THROW(NetDaemon{config}, Error);
  }
  {  // the boundary must follow the last probe round
    NetDaemonConfig config = good();
    config.warmup = Duration{0.1};
    config.spacing = Duration{0.1};
    config.rounds = 20;
    config.report_at = Duration{1.2};  // 0.1 + 20*0.1 = 2.1 > 1.2
    EXPECT_THROW(NetDaemon{config}, Error);
  }
  {  // the deadline must follow the boundary
    NetDaemonConfig config = good();
    config.deadline = config.report_at;
    EXPECT_THROW(NetDaemon{config}, Error);
  }
  {  // a base already past the schedule can never probe
    NetDaemonConfig config = good();
    config.base = realtime_now() - 100.0;
    EXPECT_THROW(NetDaemon{config}, Error);
  }
}

// The ISSUE acceptance run, in-process: four daemons on real UDP sockets,
// distinct start offsets, one leader.  Every daemon must converge to the
// SAME corrections, the leader's compute must be reproducible offline from
// its collected extremes bit for bit, and the realized corrected-clock
// spread must respect the claimed (optimal) precision.
TEST(NetDaemonConvergence, FourDaemonsOverLoopbackMatchOfflineBitForBit) {
  constexpr std::size_t kN = 4;
  const SystemModel model = test::bounded_model(make_complete(kN), 0.0, 0.05);
  const std::vector<double> offsets = {0.0, 0.013, 0.027, 0.041};
  const std::vector<SocketAddress> peers = reserve_ports(kN);
  const double base = realtime_now() + 0.3;

  std::vector<NetDaemonReport> reports(kN);
  std::vector<std::thread> threads;
  for (std::size_t p = 0; p < kN; ++p) {
    threads.emplace_back([&, p] {
      NetDaemonConfig config;
      config.id = static_cast<ProcessorId>(p);
      config.peers = peers;
      config.leader = 0;
      config.model = &model;
      config.base = base;
      config.start_offset = Duration{offsets[p]};
      config.warmup = Duration{0.05};
      config.spacing = Duration{0.02};
      config.rounds = 4;
      config.report_at = Duration{0.4};
      config.retry = Duration{0.05};
      config.linger = Duration{0.3};
      config.deadline = Duration{10.0};
      NetDaemon daemon(config);
      reports[p] = daemon.run();
    });
  }
  for (std::thread& t : threads) t.join();

  const NetDaemonReport& leader = reports[0];
  ASSERT_TRUE(leader.computed) << "leader did not collect all reports";
  EXPECT_FALSE(leader.detected);
  EXPECT_FALSE(leader.window_violation);
  ASSERT_EQ(leader.collected.size(), kN);
  ASSERT_TRUE(std::isfinite(leader.precision));

  for (std::size_t p = 0; p < kN; ++p) {
    ASSERT_TRUE(reports[p].converged) << "daemon " << p;
    ASSERT_EQ(reports[p].corrections.size(), kN) << "daemon " << p;
    // The corrections datagram is canonical full-width doubles: every
    // daemon holds the leader's vector bit for bit, not approximately.
    EXPECT_EQ(reports[p].corrections, leader.corrections) << "daemon " << p;
    EXPECT_EQ(reports[p].precision, leader.precision) << "daemon " << p;
    EXPECT_GT(reports[p].probe_obs, 0u) << "daemon " << p;
    EXPECT_GT(reports[p].echo_obs, 0u) << "daemon " << p;
    EXPECT_EQ(reports[p].ambiguous_dropped, 0u) << "daemon " << p;
  }

  // Offline cross-check (Lemma 6.2/6.5: the extremes are a sufficient
  // statistic): rerunning the pipeline from the leader's collected table
  // reproduces exactly what was flooded.
  const SyncOutcome offline =
      synchronize_from_extremes(model, leader.collected, /*root=*/0);
  EXPECT_EQ(offline.corrections, leader.corrections);
  ASSERT_TRUE(offline.optimal_precision.is_finite());
  EXPECT_EQ(offline.optimal_precision.value(), leader.precision);

  // Thm 4.6 realized: corrected clock of p is local + x_p, local clocks
  // differ by the start offsets, so the corrected spread is
  // spread(x_p - S_p) — within the claimed optimal precision.
  std::vector<double> corrected(kN);
  for (std::size_t p = 0; p < kN; ++p)
    corrected[p] = leader.corrections[p] - offsets[p];
  EXPECT_LE(spread(corrected), leader.precision + 1e-9);
}

TEST(NetDaemonConvergence, RingTopologyProbesOnlyItsLinks) {
  // A 4-ring: each daemon has exactly two neighbors; the protocol must
  // still converge using only the topology's links.
  constexpr std::size_t kN = 4;
  const SystemModel model = test::bounded_model(make_ring(kN), 0.0, 0.05);
  const std::vector<SocketAddress> peers = reserve_ports(kN);
  const double base = realtime_now() + 0.3;

  std::vector<NetDaemonReport> reports(kN);
  std::vector<std::thread> threads;
  for (std::size_t p = 0; p < kN; ++p) {
    threads.emplace_back([&, p] {
      NetDaemonConfig config;
      config.id = static_cast<ProcessorId>(p);
      config.peers = peers;
      config.model = &model;
      config.base = base;
      config.start_offset = Duration{0.005 * static_cast<double>(p)};
      config.warmup = Duration{0.05};
      config.spacing = Duration{0.02};
      config.rounds = 4;
      config.report_at = Duration{0.3};
      config.retry = Duration{0.05};
      config.linger = Duration{0.3};
      config.deadline = Duration{10.0};
      NetDaemon daemon(config);
      reports[p] = daemon.run();
    });
  }
  for (std::thread& t : threads) t.join();

  ASSERT_TRUE(reports[0].computed);
  for (std::size_t p = 0; p < kN; ++p) {
    ASSERT_TRUE(reports[p].converged) << "daemon " << p;
    EXPECT_EQ(reports[p].corrections, reports[0].corrections);
  }
  // Ring: each daemon observed exactly its two incoming directions.
  for (const ReportedExtremes& r : reports[0].collected)
    EXPECT_EQ(r.dirs.size(), 2u) << "agent " << r.agent;
}

}  // namespace
}  // namespace cs::net
