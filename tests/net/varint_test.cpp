// LEB128 varint codec: exact round-trips, boundary widths, and the typed
// refusals (truncation, 64-bit overflow) the wire decoder builds on.
#include "net/varint.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.hpp"

namespace cs::net {
namespace {

std::vector<std::uint8_t> enc(std::uint64_t v) {
  std::vector<std::uint8_t> out;
  put_varint(out, v);
  return out;
}

TEST(Varint, RoundTripsBoundaryValues) {
  const std::uint64_t cases[] = {
      0,
      1,
      127,
      128,
      (1u << 14) - 1,
      1u << 14,
      (1u << 21) - 1,
      1ull << 35,
      (1ull << 63) - 1,
      1ull << 63,
      std::numeric_limits<std::uint64_t>::max(),
  };
  for (const std::uint64_t v : cases) {
    const auto bytes = enc(v);
    EXPECT_EQ(bytes.size(), varint_size(v));
    const VarintResult r = get_varint(bytes.data(), bytes.size());
    ASSERT_TRUE(r.ok()) << v;
    EXPECT_EQ(r.value, v);
    EXPECT_EQ(r.consumed, bytes.size());
  }
}

TEST(Varint, WidthsMatchLeb128) {
  EXPECT_EQ(varint_size(0), 1u);
  EXPECT_EQ(varint_size(127), 1u);
  EXPECT_EQ(varint_size(128), 2u);
  EXPECT_EQ(varint_size((1u << 14) - 1), 2u);
  EXPECT_EQ(varint_size(1u << 14), 3u);
  EXPECT_EQ(varint_size(std::numeric_limits<std::uint64_t>::max()),
            kMaxVarintBytes);
}

TEST(Varint, RandomRoundTripProperty) {
  Rng rng(20260809);
  for (int i = 0; i < 20000; ++i) {
    // Skew toward small values but cover the full width range.
    const int shift = static_cast<int>(rng.uniform_int(64));
    const std::uint64_t v = rng.next() >> shift;
    const auto bytes = enc(v);
    const VarintResult r = get_varint(bytes.data(), bytes.size());
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value, v);
    EXPECT_EQ(r.consumed, bytes.size());
  }
}

TEST(Varint, EveryTruncationIsRefused) {
  const auto bytes = enc(std::numeric_limits<std::uint64_t>::max());
  ASSERT_EQ(bytes.size(), kMaxVarintBytes);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const VarintResult r = get_varint(bytes.data(), len);
    EXPECT_FALSE(r.ok()) << "prefix length " << len;
    EXPECT_EQ(r.consumed, 0u);
  }
}

TEST(Varint, OverflowBeyond64BitsIsRefused) {
  // Ten continuation groups followed by more payload than bit 63 can hold.
  std::vector<std::uint8_t> bytes(kMaxVarintBytes, 0xFF);
  bytes.back() = 0x7F;  // terminated, but the 10th group carries > 1 bit
  const VarintResult r = get_varint(bytes.data(), bytes.size());
  EXPECT_FALSE(r.ok());

  // An eleventh byte can never be legal, terminated or not.
  std::vector<std::uint8_t> eleven(kMaxVarintBytes + 1, 0x80);
  eleven.back() = 0x00;
  EXPECT_FALSE(get_varint(eleven.data(), eleven.size()).ok());
}

TEST(Varint, MaxValueTenthByteIsAccepted) {
  // uint64 max ends in a 10th group of exactly 0x01 — legal.
  std::vector<std::uint8_t> bytes(kMaxVarintBytes, 0xFF);
  bytes.back() = 0x01;
  const VarintResult r = get_varint(bytes.data(), bytes.size());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value, std::numeric_limits<std::uint64_t>::max());
}

}  // namespace
}  // namespace cs::net
