// chronosync-wire v1 codec: round-trip property tests (including
// timestamp-window edges), multi-frame datagram walking, the
// malformed-frame corpus with its typed errors, and a mutation fuzz pass
// asserting decoding never throws — the suites CI also runs under
// ASan + UBSan.
#include "net/wire.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.hpp"

namespace cs::net {
namespace {

Frame random_frame(Rng& rng) {
  switch (rng.uniform_int(6)) {
    case 0: {
      FullMessage m;
      m.id = rng.next() >> rng.uniform_int(64);
      m.from = static_cast<std::uint32_t>(rng.uniform_int(1 << 20));
      m.to = static_cast<std::uint32_t>(rng.uniform_int(1 << 20));
      m.tag = static_cast<std::uint32_t>(rng.uniform_int(256));
      const std::size_t n = rng.uniform_int(17);
      for (std::size_t i = 0; i < n; ++i) {
        double v = rng.uniform(-1e12, 1e12);
        if (rng.uniform_int(16) == 0)
          v = std::numeric_limits<double>::infinity();
        m.data.push_back(v);
      }
      return Frame{std::move(m)};
    }
    case 1: {
      ProbeBatch b;
      b.from = static_cast<std::uint32_t>(rng.uniform_int(1024));
      b.to = static_cast<std::uint32_t>(rng.uniform_int(1024));
      const std::size_t n = rng.uniform_int(32);
      for (std::size_t i = 0; i < n; ++i)
        b.samples.push_back(ProbeSample{
            rng.next() >> rng.uniform_int(64),
            static_cast<std::uint32_t>(rng.uniform_int(kTimestampMask + 1))});
      return Frame{std::move(b)};
    }
    case 2: {
      EchoBatch b;
      b.from = static_cast<std::uint32_t>(rng.uniform_int(1024));
      b.to = static_cast<std::uint32_t>(rng.uniform_int(1024));
      b.eseq = rng.next() >> rng.uniform_int(64);
      b.t_reply24 =
          static_cast<std::uint32_t>(rng.uniform_int(kTimestampMask + 1));
      const std::size_t n = rng.uniform_int(32);
      for (std::size_t i = 0; i < n; ++i)
        b.samples.push_back(EchoSample{
            rng.next() >> rng.uniform_int(64),
            static_cast<std::uint32_t>(rng.uniform_int(kTimestampMask + 1)),
            static_cast<std::uint32_t>(rng.uniform_int(kTimestampMask + 1))});
      return Frame{std::move(b)};
    }
    case 3:
      return Frame{Hello{static_cast<std::uint32_t>(rng.uniform_int(1 << 16)),
                         static_cast<std::int64_t>(rng.next())}};
    case 4:
      return Frame{
          HelloAck{static_cast<std::uint32_t>(rng.uniform_int(1 << 16)),
                   static_cast<std::int64_t>(rng.next())}};
    default:
      return Frame{Bye{static_cast<std::uint32_t>(rng.uniform_int(1 << 16))}};
  }
}

TEST(WireCodec, RandomFramesRoundTripExactly) {
  Rng rng(20260809);
  for (int i = 0; i < 5000; ++i) {
    const Frame frame = random_frame(rng);
    const std::vector<std::uint8_t> bytes = encode(frame);
    const DecodeResult result = decode(bytes);
    ASSERT_TRUE(result.ok()) << to_string(result.error);
    EXPECT_EQ(result.frame, frame);
    EXPECT_EQ(result.consumed, bytes.size());
  }
}

TEST(WireCodec, WindowEdgeStampsSurviveTheWire) {
  // Stamps at and around the reconstruction window edges must round-trip
  // bit-exactly; ambiguity is the *reconstruction* layer's concern, the
  // codec may not disturb the bits (±1 tick checks truncation math).
  const std::int64_t ref = 1'000'000'000;
  for (const std::int64_t offset :
       {std::int64_t{0}, kTimestampHalfWindow - 1, kTimestampHalfWindow,
        kTimestampHalfWindow + 1, -kTimestampHalfWindow + 1,
        -kTimestampHalfWindow, kTimestampWindow - 1}) {
    ProbeBatch b;
    b.from = 1;
    b.to = 2;
    b.samples.push_back(ProbeSample{9, compress24(ref + offset)});
    const DecodeResult result = decode(encode(Frame{b}));
    ASSERT_TRUE(result.ok());
    const auto& probe = std::get<ProbeBatch>(result.frame.body);
    EXPECT_EQ(probe.samples[0].t_send24, compress24(ref + offset))
        << "offset " << offset;
  }
}

TEST(WireCodec, DoublesTravelAsExactBitPatterns) {
  FullMessage m;
  m.data = {0.1, -0.0, std::numeric_limits<double>::infinity(),
            std::numeric_limits<double>::denorm_min(),
            std::nextafter(1.0, 2.0)};
  const DecodeResult result = decode(encode(Frame{m}));
  ASSERT_TRUE(result.ok());
  const auto& back = std::get<FullMessage>(result.frame.body);
  ASSERT_EQ(back.data.size(), m.data.size());
  for (std::size_t i = 0; i < m.data.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back.data[i]),
              std::bit_cast<std::uint64_t>(m.data[i]))
        << i;
  }
}

TEST(WireCodec, ConcatenatedFramesWalkWithDecodePrefix) {
  Rng rng(99);
  std::vector<Frame> frames;
  std::vector<std::uint8_t> datagram;
  for (int i = 0; i < 7; ++i) {
    frames.push_back(random_frame(rng));
    encode(frames.back(), datagram);
  }
  std::span<const std::uint8_t> view(datagram);
  for (const Frame& expected : frames) {
    const DecodeResult result = decode_prefix(view);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.frame, expected);
    view = view.subspan(result.consumed);
  }
  EXPECT_TRUE(view.empty());
}

// ---- malformed-frame corpus -------------------------------------------

TEST(WireCorpus, BadMagic) {
  std::vector<std::uint8_t> bytes = encode(Frame{Bye{1}});
  bytes[0] ^= 0xFF;
  EXPECT_EQ(decode(bytes).error, DecodeError::kBadMagic);
  std::vector<std::uint8_t> second = encode(Frame{Bye{1}});
  second[1] ^= 0x01;
  EXPECT_EQ(decode(second).error, DecodeError::kBadMagic);
}

TEST(WireCorpus, BadVersion) {
  std::vector<std::uint8_t> bytes = encode(Frame{Bye{1}});
  bytes[2] = 2;
  EXPECT_EQ(decode(bytes).error, DecodeError::kBadVersion);
}

TEST(WireCorpus, BadType) {
  std::vector<std::uint8_t> bytes = encode(Frame{Bye{1}});
  bytes[3] = 0x7F;
  EXPECT_EQ(decode(bytes).error, DecodeError::kBadType);
  bytes[3] = 0;
  EXPECT_EQ(decode(bytes).error, DecodeError::kBadType);
}

TEST(WireCorpus, EveryTruncationOfEveryFrameTypeIsRefusedTyped) {
  // A truncated frame is kShortFrame when the cut lands mid-field, or
  // kCountOverflow when it lands inside a batch whose declared count no
  // longer fits the remaining bytes.  Either way: typed refusal, never a
  // successful decode of a torso.
  Rng rng(5);
  for (int i = 0; i < 60; ++i) {
    const std::vector<std::uint8_t> bytes = encode(random_frame(rng));
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      const DecodeResult result =
          decode(std::span<const std::uint8_t>(bytes.data(), len));
      ASSERT_FALSE(result.ok()) << "prefix " << len << "/" << bytes.size();
      EXPECT_TRUE(result.error == DecodeError::kShortFrame ||
                  result.error == DecodeError::kCountOverflow)
          << "prefix " << len << "/" << bytes.size() << ": "
          << to_string(result.error);
    }
  }
}

TEST(WireCorpus, VarintOverflowInBody) {
  // Full frame whose id field is 10 bytes of 0xFF (overflow past 64 bits).
  std::vector<std::uint8_t> bytes = {kMagic0, kMagic1, kWireVersion,
                                     static_cast<std::uint8_t>(
                                         FrameType::kFull)};
  for (int i = 0; i < 10; ++i) bytes.push_back(0xFF);
  bytes.push_back(0x7F);
  // Ample tail so the failure cannot be classified as a short frame.
  for (int i = 0; i < 16; ++i) bytes.push_back(0x00);
  EXPECT_EQ(decode(bytes).error, DecodeError::kVarintOverflow);
}

TEST(WireCorpus, HostileSampleCountIsRefusedBeforeAllocation) {
  // ProbeBatch claiming 2^40 samples with a 4-byte body: the count check
  // must reject against the remaining byte budget, not allocate.
  std::vector<std::uint8_t> bytes = {kMagic0, kMagic1, kWireVersion,
                                     static_cast<std::uint8_t>(
                                         FrameType::kProbeBatch)};
  put_varint(bytes, 1);             // from
  put_varint(bytes, 2);             // to
  put_varint(bytes, 1ull << 40);    // samples "count"
  put_varint(bytes, 3);             // a lone stray byte of body
  EXPECT_EQ(decode(bytes).error, DecodeError::kCountOverflow);
}

TEST(WireCorpus, TrailingBytesOnlyFromWholeFrameDecode) {
  std::vector<std::uint8_t> bytes = encode(Frame{Bye{3}});
  bytes.push_back(0xAB);
  EXPECT_EQ(decode(bytes).error, DecodeError::kTrailingBytes);
  // decode_prefix leaves the tail for the next frame instead.
  const DecodeResult prefix = decode_prefix(bytes);
  ASSERT_TRUE(prefix.ok());
  EXPECT_EQ(prefix.consumed, bytes.size() - 1);
}

TEST(WireCorpus, EmptyAndHeaderOnlyInputs) {
  EXPECT_EQ(decode(std::span<const std::uint8_t>{}).error,
            DecodeError::kShortFrame);
  const std::uint8_t header[] = {kMagic0, kMagic1, kWireVersion,
                                 static_cast<std::uint8_t>(FrameType::kBye)};
  EXPECT_EQ(decode(std::span<const std::uint8_t>(header, 3)).error,
            DecodeError::kShortFrame);
}

// ---- mutation fuzz ----------------------------------------------------

TEST(WireFuzz, MutatedFramesNeverThrowAndNeverReadOutOfBounds) {
  // Total decoding: any byte soup must come back as a typed error or a
  // valid frame — never an exception, never UB (ASan/UBSan enforce the
  // out-of-bounds half in the sanitizer CI job).
  Rng rng(424242);
  for (int i = 0; i < 4000; ++i) {
    std::vector<std::uint8_t> bytes = encode(random_frame(rng));
    const std::size_t mutations = 1 + rng.uniform_int(8);
    for (std::size_t m = 0; m < mutations; ++m) {
      switch (rng.uniform_int(3)) {
        case 0:  // flip a byte
          if (!bytes.empty())
            bytes[rng.uniform_int(bytes.size())] ^=
                static_cast<std::uint8_t>(1 + rng.uniform_int(255));
          break;
        case 1:  // truncate
          bytes.resize(rng.uniform_int(bytes.size() + 1));
          break;
        default:  // append junk
          bytes.push_back(static_cast<std::uint8_t>(rng.uniform_int(256)));
          break;
      }
    }
    const DecodeResult result = decode(bytes);  // must not throw
    if (result.ok()) {
      EXPECT_EQ(result.consumed, bytes.size());
    }
  }
}

TEST(WireFuzz, PureGarbageDatagramsDecodeToTypedErrors) {
  Rng rng(1717);
  for (int i = 0; i < 4000; ++i) {
    std::vector<std::uint8_t> bytes(rng.uniform_int(96));
    for (std::uint8_t& b : bytes)
      b = static_cast<std::uint8_t>(rng.uniform_int(256));
    const DecodeResult result = decode(bytes);
    if (result.ok()) {
      EXPECT_EQ(result.consumed, bytes.size());
    }
  }
}

// ---- budgets ----------------------------------------------------------

TEST(WireBudget, MaxFullDoublesFitsOneDatagram) {
  const std::size_t doubles = max_full_doubles();
  EXPECT_LE(max_full_frame_bytes(doubles), kMaxDatagramBytes);
  EXPECT_GT(max_full_frame_bytes(doubles + 1), kMaxDatagramBytes);

  FullMessage m;
  m.id = std::numeric_limits<std::uint64_t>::max();  // worst-case varints
  m.from = m.to = m.tag = std::numeric_limits<std::uint32_t>::max();
  m.data.assign(doubles, 1.0);
  EXPECT_LE(encode(Frame{m}).size(), kMaxDatagramBytes);
}

TEST(WireBudget, CompactBatchBeatsFullWidthPerSample) {
  // The design point: N samples in one ProbeBatch must cost far less than
  // N Full frames.  (BENCH_net.json quantifies the ≥3× epoch-level win.)
  ProbeBatch batch;
  batch.from = 1;
  batch.to = 2;
  std::size_t full_bytes = 0;
  for (std::uint64_t s = 0; s < 16; ++s) {
    batch.samples.push_back(ProbeSample{s, compress24(123456 + s)});
    FullMessage m;
    m.id = s;
    m.from = 1;
    m.to = 2;
    m.tag = 20;
    m.data = {1.5, 2.5};  // stamp + echo payload, legacy shape
    full_bytes += encode(Frame{m}).size();
  }
  const std::size_t compact_bytes = encode(Frame{batch}).size();
  EXPECT_LT(compact_bytes * 3, full_bytes);
}

}  // namespace
}  // namespace cs::net
