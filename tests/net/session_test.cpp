// SessionTable: capacity caps, idle expiry, and the per-session
// backpressure byte budget behind the daemon's send queues.
#include "net/session.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace cs::net {
namespace {

SocketAddress peer(std::uint16_t port) { return loopback(port); }

std::vector<std::uint8_t> datagram(std::size_t bytes) {
  return std::vector<std::uint8_t>(bytes, 0xAB);
}

TEST(SessionTable, FindOrCreateThenFind) {
  SessionTable table(SessionConfig{});
  EXPECT_EQ(table.find(peer(1)), nullptr);

  Session* s = table.find_or_create(peer(1), 10.0);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->state, Session::State::kImplicit);
  EXPECT_EQ(s->last_seen, 10.0);
  EXPECT_EQ(table.size(), 1u);

  // Same peer: same session, idle clock refreshed.
  Session* again = table.find_or_create(peer(1), 12.0);
  EXPECT_EQ(again, s);
  EXPECT_EQ(again->last_seen, 12.0);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.find(peer(1)), s);
}

TEST(SessionTable, MaxSessionsRefusesNewPeersOnly) {
  SessionConfig config;
  config.max_sessions = 2;
  SessionTable table(config);
  ASSERT_NE(table.find_or_create(peer(1), 0.0), nullptr);
  ASSERT_NE(table.find_or_create(peer(2), 0.0), nullptr);
  EXPECT_EQ(table.find_or_create(peer(3), 0.0), nullptr);  // at cap
  // Known peers still resolve at cap.
  EXPECT_NE(table.find_or_create(peer(1), 1.0), nullptr);
  // Closing frees a slot.
  EXPECT_TRUE(table.close(peer(2)));
  EXPECT_NE(table.find_or_create(peer(3), 1.0), nullptr);
}

TEST(SessionTable, CloseReportsWhetherSessionExisted) {
  SessionTable table(SessionConfig{});
  EXPECT_FALSE(table.close(peer(9)));
  table.find_or_create(peer(9), 0.0);
  EXPECT_TRUE(table.close(peer(9)));
  EXPECT_FALSE(table.close(peer(9)));
  EXPECT_EQ(table.size(), 0u);
}

TEST(SessionTable, PeakSizeTracksHighWaterMark) {
  SessionTable table(SessionConfig{});
  table.find_or_create(peer(1), 0.0);
  table.find_or_create(peer(2), 0.0);
  table.find_or_create(peer(3), 0.0);
  table.close(peer(1));
  table.close(peer(2));
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.peak_size(), 3u);
}

TEST(SessionTable, ExpireIdleErasesOnlyStaleSessions) {
  SessionConfig config;
  config.idle_timeout = Duration{5.0};
  SessionTable table(config);
  table.find_or_create(peer(1), 0.0);   // stale at t=10
  table.find_or_create(peer(2), 8.0);   // fresh
  Session* touched = table.find_or_create(peer(3), 0.0);
  table.touch(*touched, 9.0);           // refreshed → fresh

  std::vector<std::uint16_t> expired_ports;
  const std::size_t expired = table.expire_idle(
      10.0, [&](Session& s) { expired_ports.push_back(s.peer.port); });
  EXPECT_EQ(expired, 1u);
  ASSERT_EQ(expired_ports.size(), 1u);
  EXPECT_EQ(expired_ports[0], 1);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.find(peer(1)), nullptr);
}

TEST(SessionTable, NonPositiveIdleTimeoutNeverExpires) {
  SessionConfig config;
  config.idle_timeout = Duration{0.0};
  SessionTable table(config);
  table.find_or_create(peer(1), 0.0);
  EXPECT_EQ(table.expire_idle(1e9), 0u);
  EXPECT_EQ(table.size(), 1u);
}

TEST(SessionTable, EnqueueRespectsByteBudget) {
  SessionConfig config;
  config.max_queue_bytes = 100;
  SessionTable table(config);
  Session* s = table.find_or_create(peer(1), 0.0);
  ASSERT_NE(s, nullptr);

  EXPECT_TRUE(table.enqueue(*s, datagram(60)));
  EXPECT_TRUE(table.enqueue(*s, datagram(40)));  // exactly at budget
  EXPECT_EQ(s->queued_bytes, 100u);
  EXPECT_EQ(table.total_queued_bytes(), 100u);

  // One byte past the budget: the NEW datagram is dropped and counted —
  // never the queued ones (they are already promised to the wire).
  EXPECT_FALSE(table.enqueue(*s, datagram(1)));
  EXPECT_EQ(s->dropped_backpressure, 1u);
  EXPECT_EQ(s->send_queue.size(), 2u);
  EXPECT_EQ(s->queued_bytes, 100u);
}

TEST(SessionTable, DequeueIsFifoAndSettlesAccounting) {
  SessionTable table(SessionConfig{});
  Session* s = table.find_or_create(peer(1), 0.0);
  std::vector<std::uint8_t> first{1, 2, 3};
  std::vector<std::uint8_t> second{4, 5};
  ASSERT_TRUE(table.enqueue(*s, first));
  ASSERT_TRUE(table.enqueue(*s, second));
  EXPECT_EQ(table.total_queued_bytes(), 5u);

  EXPECT_EQ(table.dequeue(*s), first);
  EXPECT_EQ(table.total_queued_bytes(), 2u);
  EXPECT_EQ(table.dequeue(*s), second);
  EXPECT_EQ(table.total_queued_bytes(), 0u);
  EXPECT_EQ(s->queued_bytes, 0u);
  EXPECT_TRUE(table.dequeue(*s).empty());  // dry queue: empty vector
}

TEST(SessionTable, QueueAccountingSpansSessionsAndExpiry) {
  SessionConfig config;
  config.idle_timeout = Duration{1.0};
  SessionTable table(config);
  Session* a = table.find_or_create(peer(1), 0.0);
  Session* b = table.find_or_create(peer(2), 100.0);
  ASSERT_TRUE(table.enqueue(*a, datagram(30)));
  ASSERT_TRUE(table.enqueue(*b, datagram(50)));
  EXPECT_EQ(table.total_queued_bytes(), 80u);

  // Expiring a session releases its queued bytes from the global count.
  EXPECT_EQ(table.expire_idle(100.0), 1u);
  EXPECT_EQ(table.total_queued_bytes(), 50u);
  table.close(peer(2));
  EXPECT_EQ(table.total_queued_bytes(), 0u);
}

}  // namespace
}  // namespace cs::net
