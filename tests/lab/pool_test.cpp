// The work-stealing executor: every index runs exactly once for any thread
// count, exceptions propagate, and the telemetry counters add up.  These
// tests are the ThreadSanitizer targets for the pool (see ci.yml).

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "common/metrics.hpp"
#include "lab/pool.hpp"

namespace cs::lab {
namespace {

TEST(Pool, ResolveThreadsNeverZero) {
  EXPECT_EQ(resolve_threads(1), 1u);
  EXPECT_EQ(resolve_threads(7), 7u);
  EXPECT_GE(resolve_threads(0), 1u);
}

TEST(Pool, RunsEveryIndexExactlyOnce) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    constexpr std::size_t kCount = 257;
    std::vector<std::atomic<int>> hits(kCount);
    PoolOptions options;
    options.threads = threads;
    run_indexed(kCount, [&](std::size_t i) { ++hits[i]; }, options);
    for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(Pool, SingleThreadRunsInIndexOrder) {
  std::vector<std::size_t> order;
  PoolOptions options;
  options.threads = 1;
  run_indexed(5, [&](std::size_t i) { order.push_back(i); }, options);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(Pool, MoreThreadsThanTasks) {
  std::vector<std::atomic<int>> hits(3);
  PoolOptions options;
  options.threads = 16;
  run_indexed(3, [&](std::size_t i) { ++hits[i]; }, options);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(Pool, ZeroTasksIsANoOp) {
  run_indexed(0, [](std::size_t) { FAIL() << "no task should run"; });
}

TEST(Pool, FirstExceptionPropagatesAfterDrain) {
  PoolOptions options;
  options.threads = 4;
  std::atomic<int> ran{0};
  EXPECT_THROW(
      run_indexed(
          64,
          [&](std::size_t i) {
            ++ran;
            if (i == 13) throw std::runtime_error("task 13 failed");
          },
          options),
      std::runtime_error);
  EXPECT_GE(ran.load(), 1);
}

TEST(Pool, TelemetryCountersAddUp) {
  Metrics metrics;
  PoolOptions options;
  options.threads = 3;
  options.metrics = &metrics;
  run_indexed(50, [](std::size_t) {}, options);
  EXPECT_EQ(metrics.counter("lab.pool.tasks"), 50u);
  EXPECT_EQ(metrics.counter("lab.pool.threads"), 3u);
}

TEST(Pool, UnbalancedLoadStillCompletes) {
  // Front-load the work so idle workers must steal to finish; correctness
  // (not the steal count, which is scheduling-dependent) is the invariant.
  constexpr std::size_t kCount = 64;
  std::vector<std::atomic<int>> hits(kCount);
  PoolOptions options;
  options.threads = 4;
  run_indexed(
      kCount,
      [&](std::size_t i) {
        volatile std::size_t sink = 0;
        for (std::size_t k = 0; k < (i < 4 ? 200000u : 10u); ++k)
          sink = sink + k;
        ++hits[i];
      },
      options);
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1);
}

}  // namespace
}  // namespace cs::lab
