// Golden model files, one per topology generator family, produced by
//
//   cs_lab gen topo "<family params>" --seed 1
//       --mix "alternating 0.002 0.01 0.004" --out tests/data/lab/<name>.model
//
// Each golden must load through io/ and byte-round-trip through save_model,
// and its structure must match the family's invariants.  A mismatch means
// either the generators or the model serialization changed — both are
// compatibility breaks that deserve a deliberate regeneration (see
// tests/data/lab/README.md).

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "io/views_io.hpp"
#include "lab/topo.hpp"

#ifndef CS_TEST_DATA_DIR
#error "CS_TEST_DATA_DIR must point at tests/data"
#endif

namespace cs::lab {
namespace {

struct Golden {
  const char* file;
  const char* spec;
  std::size_t links;
};

constexpr Golden kGoldens[] = {
    {"ring_5.model", "ring 5", 5},
    {"line_4.model", "line 4", 3},
    {"grid_3x3.model", "grid 3x3", 12},
    {"torus_3x3.model", "torus 3x3", 18},
    {"toroid_3x3x3.model", "toroid 3x3x3", 81},
    {"hypercube_3.model", "hypercube 3", 12},
    {"er_8_03.model", "er 8 0.3", 16},
    {"ba_8_2.model", "ba 8 2", 13},
    {"dc_2_2_2.model", "dc 2 2 2", 8},
};

std::string golden_path(const std::string& name) {
  return std::string(CS_TEST_DATA_DIR) + "/lab/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  EXPECT_TRUE(is.good()) << path;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

TEST(GoldenModels, EveryFamilyLoadsAndRoundTripsByteForByte) {
  for (const Golden& g : kGoldens) {
    const std::string text = slurp(golden_path(g.file));
    std::istringstream is(text);
    const SystemModel model = load_model(is);
    std::ostringstream out;
    save_model(out, model);
    EXPECT_EQ(out.str(), text) << g.file;
  }
}

TEST(GoldenModels, StructureMatchesTheSpec) {
  for (const Golden& g : kGoldens) {
    const TopoSpec spec = parse_topo_spec(g.spec);
    std::istringstream is(slurp(golden_path(g.file)));
    const SystemModel model = load_model(is);
    EXPECT_EQ(model.processor_count(), spec.node_count()) << g.file;
    EXPECT_EQ(model.topology().link_count(), g.links) << g.file;
    EXPECT_TRUE(model.topology().connected()) << g.file;
  }
}

TEST(GoldenModels, GeneratorsReproduceTheGoldenWiring) {
  // Every family must regenerate the exact link list the golden was created
  // from: structurally for the deterministic families, via the seed-1 Rng
  // stream for the randomized ones.  This pins generator evolution — a
  // changed wiring order is a compatibility break for recorded campaigns.
  for (const Golden& g : kGoldens) {
    const TopoSpec spec = parse_topo_spec(g.spec);
    Rng rng(1);
    const Topology fresh = make_topology(spec, rng);
    std::istringstream is(slurp(golden_path(g.file)));
    const SystemModel model = load_model(is);
    EXPECT_EQ(model.topology().links, fresh.links) << g.file;
  }
}

}  // namespace
}  // namespace cs::lab
