// Aggregation and reporting: streaming quantiles, per-cell folds, the
// report_ok validation gate, and the byte-identical-output regression — a
// campaign aggregated after a serial run and after a parallel run must
// render the exact same bytes of (timing-free) JSON and CSV.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "lab/stats.hpp"

namespace cs::lab {
namespace {

CampaignSpec two_cell_campaign() {
  std::istringstream is(
      "chronosync-campaign v1\n"
      "name stats\n"
      "seed 31\n"
      "seeds 3\n"
      "protocol pingpong 3\n"
      "skew 0.2\n"
      "delay-scale 0.05\n"
      "topology ring 4\n"
      "mix bounds 0.002 0.008\n"
      "faults none\n"
      "faults drop 0.3\n");
  return load_campaign(is);
}

TEST(Reservoir, ExactUnderCapacity) {
  ReservoirQuantiles q(8, 1);
  for (const double x : {5.0, 1.0, 3.0, 2.0, 4.0}) q.add(x);
  EXPECT_TRUE(q.exact());
  EXPECT_EQ(q.count(), 5u);
  EXPECT_DOUBLE_EQ(q.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(q.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(q.quantile(1.0), 5.0);
}

TEST(Reservoir, EmptyQuantileIsZero) {
  const ReservoirQuantiles q(8, 1);
  EXPECT_DOUBLE_EQ(q.quantile(0.5), 0.0);
}

TEST(Reservoir, SampledBeyondCapacityStaysInRange) {
  ReservoirQuantiles q(32, 7);
  for (int i = 0; i < 10000; ++i) q.add(static_cast<double>(i % 100));
  EXPECT_FALSE(q.exact());
  EXPECT_EQ(q.count(), 10000u);
  EXPECT_GE(q.quantile(0.0), 0.0);
  EXPECT_LE(q.quantile(1.0), 99.0);
  // A uniform 0..99 stream should put the median loosely near 50.
  EXPECT_GT(q.quantile(0.5), 20.0);
  EXPECT_LT(q.quantile(0.5), 80.0);
}

TEST(Reservoir, DeterministicForEqualSeeds) {
  ReservoirQuantiles a(16, 3), b(16, 3);
  for (int i = 0; i < 5000; ++i) {
    a.add(static_cast<double>(i));
    b.add(static_cast<double>(i));
  }
  for (const double q : {0.1, 0.5, 0.9})
    EXPECT_DOUBLE_EQ(a.quantile(q), b.quantile(q));
}

TEST(Reservoir, SingleSampleIsEveryQuantile) {
  ReservoirQuantiles q(8, 1);
  q.add(7.25);
  for (const double p : {0.0, 0.5, 0.95, 0.99, 1.0})
    EXPECT_DOUBLE_EQ(q.quantile(p), 7.25);
}

TEST(Reservoir, TailQuantilesClampToMaxWhenSampleIsSmall) {
  // p95 with fewer than 10 samples (and p99 with fewer than 50) cannot be
  // resolved by interpolation; they must report the max observed, never a
  // value below something actually seen.
  ReservoirQuantiles five(1024, 1);
  for (const double x : {5.0, 1.0, 3.0, 2.0, 4.0}) five.add(x);
  EXPECT_DOUBLE_EQ(five.quantile(0.95), 5.0);
  EXPECT_DOUBLE_EQ(five.quantile(0.99), 5.0);

  ReservoirQuantiles fifty(1024, 1);
  for (int i = 1; i <= 50; ++i) fifty.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(fifty.quantile(0.99), 50.0);
  // With 10+ samples p95 starts interpolating strictly inside the range.
  EXPECT_LT(fifty.quantile(0.95), 50.0);
  EXPECT_GT(fifty.quantile(0.95), 47.0);
}

TEST(Reservoir, FewerSamplesThanCapacityMatchesDirectQuantiles) {
  // n < k (reservoir never sampled): quantiles are exact over the inputs.
  ReservoirQuantiles q(1024, 9);
  for (int i = 1; i <= 20; ++i) q.add(static_cast<double>(i));
  EXPECT_TRUE(q.exact());
  EXPECT_DOUBLE_EQ(q.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(q.quantile(0.5), 10.5);  // Hazen: (v[9]+v[10])/2
  EXPECT_DOUBLE_EQ(q.quantile(1.0), 20.0);
}

/// Minimal RFC 4180 line parser: splits on unquoted commas, strips field
/// quotes, un-doubles embedded quotes.
std::vector<std::string> parse_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char ch = line[i];
    if (in_quotes) {
      if (ch == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += ch;
      }
    } else if (ch == '"') {
      in_quotes = true;
    } else if (ch == ',') {
      fields.push_back(cur);
      cur.clear();
    } else {
      cur += ch;
    }
  }
  fields.push_back(cur);
  return fields;
}

TEST(Reports, CsvRoundTripsCommasAndQuotesInSpecStrings) {
  // Hand-built report whose describe() strings carry every character CSV
  // treats specially; the row must parse back field-for-field.
  CampaignReport report;
  CellStats cell(1);
  cell.cell = 0;
  cell.topology = "ring, 5 \"wide\"";
  cell.mix = "bounds 0.002,0.008";
  cell.faults = "say \"hi\", twice";
  cell.nodes = 5;
  cell.tasks = 3;
  report.cells.push_back(std::move(cell));

  std::ostringstream os;
  write_report_csv(os, report);
  std::istringstream is(os.str());
  std::string header, row;
  ASSERT_TRUE(std::getline(is, header));
  ASSERT_TRUE(std::getline(is, row));

  const std::vector<std::string> head = parse_csv_line(header);
  const std::vector<std::string> fields = parse_csv_line(row);
  ASSERT_EQ(fields.size(), head.size());
  EXPECT_EQ(fields[0], "0");
  EXPECT_EQ(fields[1], "ring, 5 \"wide\"");
  EXPECT_EQ(fields[2], "5");
  EXPECT_EQ(fields[3], "bounds 0.002,0.008");
  EXPECT_EQ(fields[4], "say \"hi\", twice");
  EXPECT_EQ(fields[5], "3");
}

TEST(Aggregate, FoldsTasksIntoDeclaredCells) {
  const CampaignSpec spec = two_cell_campaign();
  const CampaignResult result = run_campaign(spec, {});
  const CampaignReport report = aggregate(result);
  ASSERT_EQ(report.cells.size(), 2u);
  EXPECT_EQ(report.tasks, 6u);
  EXPECT_EQ(report.cells[0].tasks, 3u);
  EXPECT_EQ(report.cells[1].tasks, 3u);
  EXPECT_FALSE(report.cells[0].faulty);
  EXPECT_TRUE(report.cells[1].faulty);
  EXPECT_EQ(report.cells[0].dropped, 0u);
  EXPECT_GT(report.cells[1].dropped, 0u);
  EXPECT_EQ(report.failures, 0u);
  EXPECT_TRUE(report_ok(report));
}

TEST(Aggregate, ReportOkGates) {
  const CampaignSpec spec = two_cell_campaign();
  CampaignReport report = aggregate(run_campaign(spec, {}));
  EXPECT_TRUE(report_ok(report));

  CampaignReport failed = report;
  failed.failures = 1;
  EXPECT_FALSE(report_ok(failed));

  CampaignReport unsound = report;
  unsound.soundness_violations = 1;
  EXPECT_FALSE(report_ok(unsound));

  CampaignReport gapped = report;
  gapped.cells[0].thm46_max_gap = 1e-3;  // fault-free cell: gate trips
  EXPECT_FALSE(report_ok(gapped));
  gapped.cells[0].thm46_max_gap = 0.0;
  gapped.cells[1].thm46_max_gap = 1e-3;  // faulty cell: exempt
  EXPECT_TRUE(report_ok(gapped));
}

TEST(Reports, JsonAndCsvAreByteIdenticalAcrossThreadCounts) {
  // Satellite regression for the determinism contract: aggregate a serial
  // and a 4-thread run of the same campaign and byte-compare the rendered
  // timing-free JSON and the CSV.
  const CampaignSpec spec = two_cell_campaign();
  RunOptions serial;
  serial.threads = 1;
  RunOptions parallel;
  parallel.threads = 4;
  const CampaignReport a = aggregate(run_campaign(spec, serial));
  const CampaignReport b = aggregate(run_campaign(spec, parallel));

  std::ostringstream ja, jb, ca, cb;
  write_report_json(ja, a, /*include_timing=*/false);
  write_report_json(jb, b, /*include_timing=*/false);
  EXPECT_EQ(ja.str(), jb.str());
  write_report_csv(ca, a);
  write_report_csv(cb, b);
  EXPECT_EQ(ca.str(), cb.str());
}

TEST(Reports, TimingSectionOnlyWhenRequested) {
  const CampaignReport report =
      aggregate(run_campaign(two_cell_campaign(), {}));
  std::ostringstream with, without;
  write_report_json(with, report, /*include_timing=*/true);
  write_report_json(without, report, /*include_timing=*/false);
  EXPECT_NE(with.str().find("\"timing\""), std::string::npos);
  EXPECT_EQ(without.str().find("\"timing\""), std::string::npos);
  EXPECT_EQ(without.str().find("seconds"), std::string::npos);
}

TEST(Reports, CsvHasOneRowPerCellAndStableHeader) {
  const CampaignReport report =
      aggregate(run_campaign(two_cell_campaign(), {}));
  std::ostringstream os;
  write_report_csv(os, report);
  std::istringstream is(os.str());
  std::string line;
  ASSERT_TRUE(std::getline(is, line));
  EXPECT_EQ(line.rfind("cell,topology,nodes,mix,faults,tasks", 0), 0u);
  std::size_t rows = 0;
  while (std::getline(is, line))
    if (!line.empty()) ++rows;
  EXPECT_EQ(rows, report.cells.size());
}

TEST(Reports, PrintReportMentionsTheSummaryLine) {
  const CampaignReport report =
      aggregate(run_campaign(two_cell_campaign(), {}));
  std::ostringstream os;
  print_report(os, report, /*include_timing=*/false);
  EXPECT_NE(os.str().find("campaign 'stats'"), std::string::npos);
  EXPECT_NE(os.str().find("Thm 4.6 gap"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Zones axis

CampaignSpec zoned_cells_campaign() {
  std::istringstream is(
      "chronosync-campaign v1\n"
      "name zstats\n"
      "seed 41\n"
      "seeds 2\n"
      "protocol pingpong 3\n"
      "skew 0.2\n"
      "delay-scale 0.05\n"
      "topology dc 1 2 3\n"
      "mix bounds 0.002 0.008\n"
      "faults none\n"
      "zones none\n"
      "zones natural\n");
  return load_campaign(is);
}

TEST(AggregateZones, CellsSplitByZoneArmInOdometerOrder) {
  const CampaignSpec spec = zoned_cells_campaign();
  const CampaignReport report = aggregate(run_campaign(spec, {}));
  ASSERT_EQ(report.cells.size(), 2u);
  EXPECT_EQ(report.cells[0].zones, "none");
  EXPECT_FALSE(report.cells[0].zoned);
  EXPECT_EQ(report.cells[0].zone_count, 0u);
  EXPECT_EQ(report.cells[1].zones, "natural");
  EXPECT_TRUE(report.cells[1].zoned);
  EXPECT_GT(report.cells[1].zone_count, 1u);
  EXPECT_GT(report.cells[1].zone_max_size, 0u);
  EXPECT_EQ(report.cells[0].tasks, 2u);
  EXPECT_EQ(report.cells[1].tasks, 2u);
  // The zoned arm's per-zone Thm 4.6 equality feeds the standard gate.
  EXPECT_TRUE(report_ok(report));
}

TEST(AggregateZones, ZoneColumnsAppendAfterThePinnedPrefix) {
  const CampaignReport report =
      aggregate(run_campaign(zoned_cells_campaign(), {}));
  std::ostringstream os;
  write_report_csv(os, report);
  std::istringstream is(os.str());
  std::string header;
  ASSERT_TRUE(std::getline(is, header));
  // The pinned downstream interface stays put; zone columns go at the end.
  EXPECT_EQ(header.rfind("cell,topology,nodes,mix,faults,tasks", 0), 0u);
  EXPECT_NE(header.find(",zones,zone_count,zone_max_size,zone_a_max_max,"
                        "realized_intra_max,realized_cross_max"),
            std::string::npos);
  const std::vector<std::string> head = parse_csv_line(header);
  std::string row;
  while (std::getline(is, row)) {
    if (row.empty()) continue;
    EXPECT_EQ(parse_csv_line(row).size(), head.size());
  }

  std::ostringstream js;
  write_report_json(js, report, /*include_timing=*/false);
  EXPECT_NE(js.str().find("\"zones\": \"natural\""), std::string::npos);
  EXPECT_NE(js.str().find("\"realized_cross_max\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Byzantine axis

CampaignSpec byz_cells_campaign() {
  // A consistent lie-const liar is gauge-equivalent to an honest agent
  // whose clock started earlier (Lemma 4.1), so the adversarial cell stays
  // clean — the test exercises the byz bookkeeping, not detection.
  std::istringstream is(
      "chronosync-campaign v1\n"
      "name bstats\n"
      "seed 46\n"
      "seeds 2\n"
      "protocol pingpong 3\n"
      "skew 0.25\n"
      "delay-scale 0.05\n"
      "topology complete 4\n"
      "mix bounds 0.001 0.101\n"
      "faults none\n"
      "byz none\n"
      "byz lie-const f=1 mag=0.01\n");
  return load_campaign(is);
}

TEST(AggregateByz, CellsSplitByByzArmInOdometerOrder) {
  const CampaignSpec spec = byz_cells_campaign();
  const CampaignReport report = aggregate(run_campaign(spec, {}));
  ASSERT_EQ(report.cells.size(), 2u);
  EXPECT_EQ(report.cells[0].byz, "none");
  EXPECT_FALSE(report.cells[0].byzantine);
  EXPECT_EQ(report.cells[0].byz_epochs, 0u);
  EXPECT_EQ(report.cells[0].byz_lied_stamps, 0u);
  EXPECT_TRUE(report.cells[1].byzantine);
  EXPECT_EQ(report.cells[1].tasks, 2u);
  // Harness schedule: 3 epoch boundaries per task, summed over the cell.
  EXPECT_EQ(report.cells[1].byz_epochs, 6u);
  EXPECT_GT(report.cells[1].byz_lied_stamps, 0u);
}

TEST(AggregateByz, ByzColumnsAppendAfterTheDriftBlock) {
  const CampaignReport report =
      aggregate(run_campaign(byz_cells_campaign(), {}));
  std::ostringstream os;
  write_report_csv(os, report);
  std::istringstream is(os.str());
  std::string header;
  ASSERT_TRUE(std::getline(is, header));
  // The pinned downstream interface stays put; byz columns go at the end.
  EXPECT_EQ(header.rfind("cell,topology,nodes,mix,faults,tasks", 0), 0u);
  EXPECT_NE(header.find(",byz,byz_epochs,byz_detected,byz_violations,"
                        "byz_lied_stamps,byz_quorum_dropped"),
            std::string::npos);
  const std::vector<std::string> head = parse_csv_line(header);
  std::string row;
  while (std::getline(is, row)) {
    if (row.empty()) continue;
    EXPECT_EQ(parse_csv_line(row).size(), head.size());
  }

  std::ostringstream js;
  write_report_json(js, report, /*include_timing=*/false);
  EXPECT_NE(js.str().find("\"byzantine\": true"), std::string::npos);
  EXPECT_NE(js.str().find("\"byz_lied_stamps\""), std::string::npos);
}

}  // namespace
}  // namespace cs::lab
