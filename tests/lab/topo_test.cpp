// Structural invariants of the procedural topology generators: node and
// edge counts, connectivity, degree regularity on tori, and distribution
// sanity on the randomized families.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "lab/topo.hpp"

namespace cs::lab {
namespace {

std::vector<std::size_t> degrees(const Topology& t) {
  std::vector<std::size_t> deg(t.node_count, 0);
  for (const auto& [a, b] : t.links) {
    ++deg.at(a);
    ++deg.at(b);
  }
  return deg;
}

bool no_duplicate_links(const Topology& t) {
  auto sorted = t.links;
  for (auto& [a, b] : sorted)
    if (a > b) std::swap(a, b);
  std::sort(sorted.begin(), sorted.end());
  return std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end();
}

TEST(Toroid, OddAryMToroidIsRegularDegree2m) {
  // k_i >= 3 everywhere: every node has exactly two neighbors per
  // dimension, so |E| = m * n.
  const std::size_t dims[] = {3, 5, 7};
  const Topology t = make_toroid(dims);
  EXPECT_EQ(t.node_count, 105u);
  EXPECT_EQ(t.link_count(), 3u * 105u);
  EXPECT_TRUE(t.connected());
  EXPECT_TRUE(no_duplicate_links(t));
  for (const std::size_t d : degrees(t)) EXPECT_EQ(d, 6u);
}

TEST(Toroid, SideOfTwoCollapsesWraparound) {
  // k = 2: the +1 and -1 neighbors coincide, so the dimension contributes
  // one link per node pair, not two.
  const std::size_t dims[] = {2, 2};
  const Topology t = make_toroid(dims);
  EXPECT_EQ(t.node_count, 4u);
  EXPECT_EQ(t.link_count(), 4u);  // a 4-cycle, not a multigraph
  EXPECT_TRUE(t.connected());
  for (const std::size_t d : degrees(t)) EXPECT_EQ(d, 2u);
}

TEST(Toroid, SideOfOneIsDegenerate) {
  // k = 1 dimensions add no links; toroid 1x5 is a 5-ring.
  const std::size_t dims[] = {1, 5};
  const Topology t = make_toroid(dims);
  EXPECT_EQ(t.node_count, 5u);
  EXPECT_EQ(t.link_count(), 5u);
  EXPECT_TRUE(t.connected());
  for (const std::size_t d : degrees(t)) EXPECT_EQ(d, 2u);
}

TEST(Toroid, TorusMatchesTwoDimensionalToroid) {
  const Topology torus = make_torus(3, 5);
  const std::size_t dims[] = {3, 5};
  const Topology toroid = make_toroid(dims);
  EXPECT_EQ(torus.node_count, toroid.node_count);
  EXPECT_EQ(torus.links, toroid.links);
  EXPECT_EQ(torus.link_count(), 2u * 15u);
}

TEST(Hypercube, DimensionDRegularWithD2PowDm1Edges) {
  const Topology t = make_hypercube(4);
  EXPECT_EQ(t.node_count, 16u);
  EXPECT_EQ(t.link_count(), 4u * 8u);  // d * 2^(d-1)
  EXPECT_TRUE(t.connected());
  EXPECT_TRUE(no_duplicate_links(t));
  for (const std::size_t d : degrees(t)) EXPECT_EQ(d, 4u);
}

TEST(Hypercube, DimensionZeroIsASingleNode) {
  const Topology t = make_hypercube(0);
  EXPECT_EQ(t.node_count, 1u);
  EXPECT_EQ(t.link_count(), 0u);
}

TEST(ErdosRenyi, ConnectedWithExactNodeCount) {
  Rng rng(7);
  const Topology t = make_erdos_renyi(24, 0.15, rng);
  EXPECT_EQ(t.node_count, 24u);
  EXPECT_TRUE(t.connected());
  EXPECT_TRUE(no_duplicate_links(t));
  EXPECT_GE(t.link_count(), 23u);  // at least a spanning tree
}

TEST(ErdosRenyi, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  EXPECT_EQ(make_erdos_renyi(20, 0.2, a).links,
            make_erdos_renyi(20, 0.2, b).links);
}

TEST(BarabasiAlbert, EdgeCountAndMinimumDegree) {
  Rng rng(5);
  const std::size_t n = 60, m = 2;
  const Topology t = make_barabasi_albert(n, m, rng);
  EXPECT_EQ(t.node_count, n);
  // Complete core of m+1 nodes, then m links per arrival.
  EXPECT_EQ(t.link_count(), m * (m + 1) / 2 + (n - (m + 1)) * m);
  EXPECT_TRUE(t.connected());
  EXPECT_TRUE(no_duplicate_links(t));
  for (const std::size_t d : degrees(t)) EXPECT_GE(d, m);
}

TEST(BarabasiAlbert, PreferentialAttachmentGrowsAHeavyTail) {
  // Power-law sanity: the hubs of a BA graph vastly out-degree the median
  // node — far beyond anything a same-size ER graph produces.
  Rng rng(11);
  const Topology t = make_barabasi_albert(200, 2, rng);
  std::vector<std::size_t> deg = degrees(t);
  std::sort(deg.begin(), deg.end());
  const std::size_t median = deg[deg.size() / 2];
  const std::size_t max = deg.back();
  EXPECT_LE(median, 3u);       // most nodes keep roughly their m links
  EXPECT_GE(max, 4u * median); // hubs dominate
}

TEST(Circulant, StrideChordsMakeASixRegularRing) {
  // The lab's circulant family is the ring plus stride-2 and stride-3
  // chords; for n > 6 no stride wraps onto another, so the graph is
  // 6-regular with exactly 3n links (the byz presets' 9-node instance).
  Rng rng(1);
  const Topology t = make_topology(parse_topo_spec("circulant 9"), rng);
  EXPECT_EQ(t.node_count, 9u);
  EXPECT_EQ(t.links.size(), 27u);
  EXPECT_TRUE(no_duplicate_links(t));
  for (std::size_t d : degrees(t)) EXPECT_EQ(d, 6u);
}

TEST(Datacenter, SpineTorHostFabric) {
  const Topology t = make_datacenter(2, 3, 4);
  EXPECT_EQ(t.node_count, 2u + 3u + 12u);
  EXPECT_EQ(t.link_count(), 2u * 3u + 12u);  // bipartite core + host uplinks
  EXPECT_TRUE(t.connected());
  EXPECT_TRUE(no_duplicate_links(t));
  const std::vector<std::size_t> deg = degrees(t);
  for (std::size_t s = 0; s < 2; ++s) EXPECT_EQ(deg[s], 3u);      // spines
  for (std::size_t r = 0; r < 3; ++r) EXPECT_EQ(deg[2 + r], 6u);  // ToRs
  for (std::size_t h = 0; h < 12; ++h) EXPECT_EQ(deg[5 + h], 1u); // hosts
}

TEST(TopoSpec, ParseDescribeRoundTrip) {
  for (const char* text :
       {"ring 6", "line 4", "grid 3x4", "torus 3x5", "toroid 3x5x7",
        "hypercube 3", "er 10 0.2", "ba 12 2", "dc 2 3 4"}) {
    const TopoSpec spec = parse_topo_spec(text);
    EXPECT_EQ(spec.describe(), text);
    Rng rng(1);
    EXPECT_EQ(make_topology(spec, rng).node_count, spec.node_count());
  }
}

TEST(TopoSpec, OddAryToroidPredicate) {
  EXPECT_TRUE(parse_topo_spec("toroid 3x5x7").odd_ary_toroid());
  EXPECT_TRUE(parse_topo_spec("torus 5x5").odd_ary_toroid());
  EXPECT_TRUE(parse_topo_spec("ring 9").odd_ary_toroid());
  EXPECT_FALSE(parse_topo_spec("toroid 3x4").odd_ary_toroid());
  EXPECT_FALSE(parse_topo_spec("toroid 1x5").odd_ary_toroid());
  EXPECT_FALSE(parse_topo_spec("ring 6").odd_ary_toroid());
  EXPECT_FALSE(parse_topo_spec("hypercube 3").odd_ary_toroid());
}

TEST(TopoSpec, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_topo_spec(""), Error);
  EXPECT_THROW(parse_topo_spec("blob 4"), Error);
  EXPECT_THROW(parse_topo_spec("ring"), Error);
  EXPECT_THROW(parse_topo_spec("ring six"), Error);
  EXPECT_THROW(parse_topo_spec("grid 3x4x5"), Error);
  EXPECT_THROW(parse_topo_spec("toroid 3y5"), Error);
  EXPECT_THROW(parse_topo_spec("er 10"), Error);
  EXPECT_THROW(parse_topo_spec("er 10 huh"), Error);
  EXPECT_THROW(parse_topo_spec("dc 2 3"), Error);
}

TEST(TopoSpec, RejectsInvalidParameters) {
  Rng rng(1);
  EXPECT_THROW(make_topology(parse_topo_spec("er 10 1.5"), rng), Error);
  EXPECT_THROW(make_topology(parse_topo_spec("toroid 0x3"), rng), Error);
  EXPECT_THROW(make_topology(parse_topo_spec("ba 10 0"), rng), Error);
}

TEST(TopoSpec, FamilyListCoversTheGrammar) {
  Rng rng(3);
  for (const std::string& family : topo_families()) {
    std::string text = family + " 4";
    if (family == "grid" || family == "torus") text = family + " 2x2";
    if (family == "toroid") text = "toroid 3x3";
    if (family == "hypercube") text = "hypercube 2";
    if (family == "er") text = "er 6 0.5";
    if (family == "ba") text = "ba 6 2";
    if (family == "dc") text = "dc 2 2 2";
    const TopoSpec spec = parse_topo_spec(text);
    const Topology t = make_topology(spec, rng);
    EXPECT_EQ(t.node_count, spec.node_count()) << text;
    EXPECT_TRUE(t.connected()) << text;
  }
}

}  // namespace
}  // namespace cs::lab
