// Campaign spec grammar: parse/save round-trips, odometer expansion,
// per-link mix assignment, and diagnostics with 1-based line numbers.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/error.hpp"
#include "lab/spec.hpp"
#include "support/builders.hpp"

namespace cs::lab {
namespace {

CampaignSpec parse(const std::string& text) {
  std::istringstream is(text);
  return load_campaign(is);
}

std::string expect_error(const std::string& text) {
  try {
    parse(text);
  } catch (const Error& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected a parse error for: " << text;
  return "";
}

constexpr const char kMinimalSpec[] =
    "chronosync-campaign v1\n"
    "name mini\n"
    "seed 7\n"
    "seeds 2\n"
    "protocol beacon 0.25 10\n"
    "skew 0.5\n"
    "delay-scale 0.05\n"
    "topology ring 4\n"
    "topology toroid 3x3\n"
    "mix bounds 0.001 0.004\n"
    "mix lower 0.002\n"
    "faults none\n"
    "faults drop 0.25 crash 1 2.5 3.5\n";

TEST(CampaignSpec, ParsesEveryDirective) {
  const CampaignSpec spec = parse(kMinimalSpec);
  EXPECT_EQ(spec.name, "mini");
  EXPECT_EQ(spec.seed, 7u);
  EXPECT_EQ(spec.seeds_per_cell, 2u);
  EXPECT_EQ(spec.protocol.kind, "beacon");
  EXPECT_DOUBLE_EQ(spec.protocol.period, 0.25);
  EXPECT_EQ(spec.protocol.count, 10u);
  EXPECT_DOUBLE_EQ(spec.skew, 0.5);
  EXPECT_DOUBLE_EQ(spec.delay_scale, 0.05);
  ASSERT_EQ(spec.topologies.size(), 2u);
  EXPECT_EQ(spec.topologies[1].describe(), "toroid 3x3");
  ASSERT_EQ(spec.mixes.size(), 2u);
  EXPECT_EQ(spec.mixes[1].kind, "lower");
  ASSERT_EQ(spec.faults.size(), 2u);
  EXPECT_FALSE(spec.faults[0].faulty());
  EXPECT_TRUE(spec.faults[1].has_crash);
  EXPECT_EQ(spec.faults[1].crash_pid, 1u);
  EXPECT_EQ(spec.cell_count(), 2u * 2u * 2u);
  EXPECT_EQ(spec.task_count(), 16u);
}

TEST(CampaignSpec, SaveLoadRoundTripsExactly) {
  const CampaignSpec spec = parse(kMinimalSpec);
  std::ostringstream first;
  save_campaign(first, spec);
  std::istringstream is(first.str());
  std::ostringstream second;
  save_campaign(second, load_campaign(is));
  EXPECT_EQ(first.str(), second.str());
}

TEST(CampaignSpec, CommentsAndBlankLinesIgnored) {
  const CampaignSpec spec = parse(
      "chronosync-campaign v1\n\n# a comment\nseeds 1  # trailing\n"
      "topology ring 3\nmix bounds 0.001 0.002\n");
  EXPECT_EQ(spec.seeds_per_cell, 1u);
  ASSERT_EQ(spec.faults.size(), 1u);  // defaulted to fault-free
  EXPECT_FALSE(spec.faults[0].faulty());
}

TEST(CampaignSpec, DiagnosticsCarryLineNumbers) {
  EXPECT_NE(expect_error("chronosync-campaign v1\nseeds 1\nbogus 3\n")
                .find("line 3"),
            std::string::npos);
  EXPECT_NE(expect_error("chronosync-campaign v1\nseeds one\n")
                .find("'one'"),
            std::string::npos);
  EXPECT_NE(expect_error("not-a-campaign\n").find("header"),
            std::string::npos);
  EXPECT_NE(expect_error("chronosync-campaign v1\ntopology ring 3\n"
                         "mix bounds 0.001 0.002\n")
                .find("seeds"),
            std::string::npos);
  EXPECT_NE(expect_error("chronosync-campaign v1\nseeds 1\n"
                         "topology ring 3\nmix bounds 0.001 0.002\n"
                         "faults drop 1.5\n")
                .find("[0, 1]"),
            std::string::npos);
}

TEST(CampaignSpec, ExpandIsTheDeclarationOrderOdometer) {
  const CampaignSpec spec = parse(kMinimalSpec);
  const std::vector<TaskSpec> tasks = expand(spec);
  ASSERT_EQ(tasks.size(), 16u);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(tasks[i].index, i);
    // Seed index cycles fastest, then faults, then mixes, then topologies.
    EXPECT_EQ(tasks[i].seed_index, i % 2);
    EXPECT_EQ(tasks[i].fault_id, (i / 2) % 2);
    EXPECT_EQ(tasks[i].mix_id, (i / 4) % 2);
    EXPECT_EQ(tasks[i].topology_id, i / 8);
    EXPECT_EQ(tasks[i].cell_id(spec), i / 2);
  }
}

TEST(CampaignSpec, ExpandRejectsEmptyAxes) {
  CampaignSpec spec;
  spec.seeds_per_cell = 1;
  EXPECT_THROW(expand(spec), Error);
}

TEST(CampaignSpec, ApplyMixCoversEveryLink) {
  for (const char* kind :
       {"bounds", "lower", "bias", "composite", "alternating"}) {
    SystemModel model{make_ring(5)};
    MixSpec mix;
    mix.kind = kind;
    mix.lb = 0.001;
    mix.ub = 0.004;
    mix.bias = 0.002;
    apply_mix(model, mix);
    for (const auto& [a, b] : model.topology().links)
      EXPECT_FALSE(model.constraint(a, b).describe().empty()) << kind;
  }
}

TEST(CampaignSpec, AlternatingMixIsHeterogeneous) {
  SystemModel model{make_ring(6)};
  MixSpec mix;
  mix.kind = "alternating";
  mix.lb = 0.001;
  mix.ub = 0.004;
  mix.bias = 0.002;
  apply_mix(model, mix);
  const auto& links = model.topology().links;
  // Links 0 and 1 fall in different i%3 classes: bounds vs bias.
  EXPECT_NE(model.constraint(links[0].first, links[0].second).describe(),
            model.constraint(links[1].first, links[1].second).describe());
}

TEST(CampaignSpec, ApplyMixRejectsUnknownKind) {
  SystemModel model{make_ring(3)};
  MixSpec mix;
  mix.kind = "wormhole";
  EXPECT_THROW(apply_mix(model, mix), Error);
}

TEST(CampaignSpec, SmokePresetIsValid) {
  const CampaignSpec spec = preset_campaign("smoke");
  EXPECT_EQ(expand(spec).size(), spec.task_count());
  EXPECT_GE(spec.topologies.size(), 5u);  // multi-family by design
}

TEST(CampaignSpec, ToroidPresetMeetsTheAcceptanceFloor) {
  // The acceptance campaign: >= 200 tasks, all odd-ary toroids, fault-free.
  const CampaignSpec spec = preset_campaign("toroid");
  EXPECT_GE(spec.task_count(), 200u);
  for (const TopoSpec& t : spec.topologies)
    EXPECT_TRUE(t.odd_ary_toroid()) << t.describe();
  for (const FaultSpec& f : spec.faults) EXPECT_FALSE(f.faulty());
}

TEST(CampaignSpec, UnknownPresetFails) {
  EXPECT_THROW(preset_campaign("nope"), Error);
}

// ---------------------------------------------------------------------------
// Zones axis

TEST(CampaignSpecZones, ParsesAndRoundTripsEveryArmKind) {
  const CampaignSpec spec = parse(
      "chronosync-campaign v1\nseeds 1\ntopology dc 2 3 4\n"
      "mix bounds 0.001 0.004\n"
      "zones none\nzones size 6\nzones natural\n");
  ASSERT_EQ(spec.zones.size(), 3u);
  EXPECT_EQ(spec.zones[0].kind, "none");
  EXPECT_FALSE(spec.zones[0].zoned());
  EXPECT_EQ(spec.zones[1].kind, "size");
  EXPECT_EQ(spec.zones[1].size, 6u);
  EXPECT_TRUE(spec.zones[1].zoned());
  EXPECT_EQ(spec.zones[2].kind, "natural");
  EXPECT_EQ(spec.zone_arm_count(), 3u);
  EXPECT_EQ(spec.cell_count(), 3u);

  std::ostringstream first;
  save_campaign(first, spec);
  std::istringstream is(first.str());
  std::ostringstream second;
  save_campaign(second, load_campaign(is));
  EXPECT_EQ(first.str(), second.str());
}

TEST(CampaignSpecZones, NoZonesLineKeepsThePreZonesExpansion) {
  // Back-compat: a spec without any `zones` directive expands to exactly
  // the same task list as before the axis existed — one implicit dense arm,
  // zone_id 0 everywhere, identical indices and cell ids.
  const CampaignSpec spec = parse(kMinimalSpec);
  EXPECT_TRUE(spec.zones.empty());
  EXPECT_EQ(spec.zone_arm_count(), 1u);
  EXPECT_FALSE(spec.zone_arm(0).zoned());
  const std::vector<TaskSpec> tasks = expand(spec);
  ASSERT_EQ(tasks.size(), 16u);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(tasks[i].zone_id, 0u);
    EXPECT_EQ(tasks[i].cell_id(spec), i / 2);
  }
}

TEST(CampaignSpecZones, ZonesCycleBetweenFaultsAndSeeds) {
  const CampaignSpec spec = parse(
      "chronosync-campaign v1\nseeds 2\ntopology ring 4\ntopology ring 6\n"
      "mix bounds 0.001 0.004\nzones none\nzones size 3\nzones natural\n");
  const std::vector<TaskSpec> tasks = expand(spec);
  ASSERT_EQ(tasks.size(), 2u * 1u * 1u * 3u * 2u);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(tasks[i].index, i);
    EXPECT_EQ(tasks[i].seed_index, i % 2);
    EXPECT_EQ(tasks[i].zone_id, (i / 2) % 3);
    EXPECT_EQ(tasks[i].topology_id, i / 6);
    EXPECT_EQ(tasks[i].cell_id(spec), i / 2);
  }
}

TEST(CampaignSpecZones, MalformedZonesLinesAreDiagnosed) {
  EXPECT_NE(expect_error("chronosync-campaign v1\nseeds 1\n"
                         "topology ring 3\nmix bounds 0.001 0.002\n"
                         "zones banana\n")
                .find("banana"),
            std::string::npos);
  EXPECT_NE(expect_error("chronosync-campaign v1\nseeds 1\n"
                         "topology ring 3\nmix bounds 0.001 0.002\n"
                         "zones size 0\n")
                .find("zone size"),
            std::string::npos);
}

TEST(CampaignSpecZones, CrossProductOverflowIsAnErrorNotAWrap) {
  // Regression: the expansion index arithmetic used to wrap silently at
  // std::size_t, yielding a tiny bogus task list.  The counts must throw.
  CampaignSpec spec;
  spec.seeds_per_cell = 4;
  TopoSpec ring;
  ring.family = "ring";
  ring.dims = {4};
  // 2^16 arms on each of the four axes: the cross product is 2^64, one past
  // what std::size_t holds, while each axis is still cheaply allocatable.
  const std::size_t many = std::size_t(1) << 16;
  spec.topologies.assign(many, ring);
  spec.mixes.assign(many, MixSpec{"bounds", 0.001, 0.004, 0.0});
  spec.faults.assign(many, FaultSpec{});
  spec.zones.assign(many, ZoneAxisSpec{});
  EXPECT_THROW(spec.cell_count(), Error);
  EXPECT_THROW(spec.task_count(), Error);
  EXPECT_THROW(expand(spec), Error);
}

TEST(CampaignSpecZones, ZonesPresetSweepsTheAxis) {
  const CampaignSpec spec = preset_campaign("zones");
  EXPECT_GE(spec.zones.size(), 3u);  // none + natural + size arms
  bool has_dense = false, has_zoned = false;
  for (const ZoneAxisSpec& z : spec.zones)
    (z.zoned() ? has_zoned : has_dense) = true;
  EXPECT_TRUE(has_dense);
  EXPECT_TRUE(has_zoned);
  EXPECT_EQ(expand(spec).size(), spec.task_count());
}

TEST(CampaignSpecZones, Fabric100kPresetIsHundredKScale) {
  const CampaignSpec spec = preset_campaign("fabric100k");
  ASSERT_EQ(spec.topologies.size(), 1u);
  EXPECT_GE(spec.topologies[0].node_count(), 100'000u);
  ASSERT_EQ(spec.zones.size(), 1u);
  EXPECT_TRUE(spec.zones[0].zoned());
}

// ---------------------------------------------------------------------------
// Drift axis

TEST(CampaignSpecDrift, ParsesAndRoundTripsEveryArmKind) {
  const CampaignSpec spec = parse(
      std::string(kMinimalSpec) +
      "drift none\n"
      "drift const 200 resync 10\n"
      "drift walk 150 40 resync 5 horizon 30\n"
      "drift const 100 resync 0 horizon 60\n");
  ASSERT_EQ(spec.drifts.size(), 4u);
  EXPECT_EQ(spec.drifts[0].kind, "none");
  EXPECT_FALSE(spec.drifts[0].drifting());
  EXPECT_EQ(spec.drifts[1].kind, "const");
  EXPECT_DOUBLE_EQ(spec.drifts[1].ppm, 200.0);
  EXPECT_DOUBLE_EQ(spec.drifts[1].resync, 10.0);
  EXPECT_DOUBLE_EQ(spec.drifts[1].horizon_or_default(), 40.0);
  EXPECT_TRUE(spec.drifts[1].drifting());
  EXPECT_DOUBLE_EQ(spec.drifts[1].rho(), 200e-6);
  EXPECT_EQ(spec.drifts[2].kind, "walk");
  EXPECT_DOUBLE_EQ(spec.drifts[2].step_ppm, 40.0);
  EXPECT_DOUBLE_EQ(spec.drifts[2].horizon, 30.0);
  EXPECT_DOUBLE_EQ(spec.drifts[3].resync, 0.0);
  EXPECT_DOUBLE_EQ(spec.drifts[3].horizon_or_default(), 60.0);

  std::ostringstream os;
  save_campaign(os, spec);
  const CampaignSpec back = parse(os.str());
  ASSERT_EQ(back.drifts.size(), spec.drifts.size());
  for (std::size_t i = 0; i < spec.drifts.size(); ++i)
    EXPECT_EQ(back.drifts[i].describe(), spec.drifts[i].describe()) << i;
}

TEST(CampaignSpecDrift, NoDriftLineKeepsThePreDriftExpansion) {
  const CampaignSpec spec = parse(kMinimalSpec);
  EXPECT_TRUE(spec.drifts.empty());
  EXPECT_EQ(spec.drift_arm_count(), 1u);
  EXPECT_FALSE(spec.drift_arm(0).drifting());
  // 2 topologies x 2 mixes x 2 faults x 1 zone x 1 drift x 2 seeds.
  EXPECT_EQ(expand(spec).size(), 16u);
}

TEST(CampaignSpecDrift, DriftIsTheInnermostCellAxis) {
  const CampaignSpec spec = parse(
      std::string(kMinimalSpec) + "drift none\ndrift const 200 resync 10\n");
  const std::vector<TaskSpec> tasks = expand(spec);
  ASSERT_EQ(tasks.size(), 32u);
  // Seeds cycle fastest, then drift, then zones (absent), then faults.
  EXPECT_EQ(tasks[0].drift_id, 0u);
  EXPECT_EQ(tasks[1].drift_id, 0u);
  EXPECT_EQ(tasks[2].drift_id, 1u);
  EXPECT_EQ(tasks[2].fault_id, tasks[0].fault_id);
  EXPECT_EQ(tasks[4].fault_id, 1u);
  for (const TaskSpec& t : tasks) EXPECT_EQ(t.cell_id(spec), t.index / 2);
}

TEST(CampaignSpecDrift, MalformedDriftLinesAreDiagnosed) {
  const std::string base(kMinimalSpec);
  EXPECT_NE(expect_error(base + "drift banana\n").find("line 14"),
            std::string::npos);
  expect_error(base + "drift const 0 resync 10\n");       // ppm must be > 0
  expect_error(base + "drift const 200 resync -1\n");     // bad interval
  expect_error(base + "drift const 200 resync 0\n");      // needs horizon
  expect_error(base + "drift walk 200 0 resync 10\n");    // bad step
  expect_error(base + "drift const 200 10\n");            // missing keyword
  expect_error(base + "drift const 200 resync 10 span 4\n");
}

TEST(CampaignSpecDrift, DriftPresetsSweepBothOscillatorModels) {
  const CampaignSpec with = preset_campaign("drift");
  ASSERT_EQ(with.drifts.size(), 2u);
  EXPECT_EQ(with.drifts[0].kind, "const");
  EXPECT_EQ(with.drifts[1].kind, "walk");
  for (const DriftAxisSpec& d : with.drifts) {
    EXPECT_TRUE(d.drifting());
    EXPECT_GT(d.resync, 0.0);
  }

  const CampaignSpec without = preset_campaign("drift-noresync");
  ASSERT_EQ(without.drifts.size(), 2u);
  for (const DriftAxisSpec& d : without.drifts) {
    EXPECT_DOUBLE_EQ(d.resync, 0.0);
    EXPECT_GT(d.horizon, 0.0);  // resync 0 requires an explicit horizon
  }
}

// ---------------------------------------------------------------------------
// Byzantine axis

TEST(CampaignSpecByz, ParsesAndRoundTripsEveryArmKind) {
  const CampaignSpec spec = parse(
      std::string(kMinimalSpec) +
      "byz none\n"
      "byz lie-const f=1 mag=0.01\n"
      "byz equivocate f=2 mag=0.09 est=quorum tol=0.003\n"
      "byz replay f=1 mag=0.05 est=trimmed\n");
  ASSERT_EQ(spec.byz.size(), 4u);
  EXPECT_EQ(spec.byz[0].kind, "none");
  EXPECT_FALSE(spec.byz[0].byzantine());
  EXPECT_EQ(spec.byz[1].kind, "lie-const");
  EXPECT_TRUE(spec.byz[1].byzantine());
  EXPECT_EQ(spec.byz[1].f, 1u);
  EXPECT_DOUBLE_EQ(spec.byz[1].magnitude, 0.01);
  EXPECT_EQ(spec.byz[1].estimator, "naive");  // the default
  EXPECT_EQ(spec.byz[2].kind, "equivocate");
  EXPECT_EQ(spec.byz[2].f, 2u);
  EXPECT_EQ(spec.byz[2].estimator, "quorum");
  EXPECT_DOUBLE_EQ(spec.byz[2].quorum_tolerance, 0.003);
  EXPECT_EQ(spec.byz[3].kind, "replay");
  EXPECT_EQ(spec.byz[3].estimator, "trimmed");

  std::ostringstream os;
  save_campaign(os, spec);
  const CampaignSpec back = parse(os.str());
  ASSERT_EQ(back.byz.size(), spec.byz.size());
  for (std::size_t i = 0; i < spec.byz.size(); ++i)
    EXPECT_EQ(back.byz[i].describe(), spec.byz[i].describe()) << i;
}

TEST(CampaignSpecByz, NoByzLineKeepsThePreByzExpansion) {
  const CampaignSpec spec = parse(kMinimalSpec);
  EXPECT_TRUE(spec.byz.empty());
  EXPECT_EQ(spec.byz_arm_count(), 1u);
  EXPECT_FALSE(spec.byz_arm(0).byzantine());
  // 2 topologies x 2 mixes x 2 faults x 1 zone x 1 drift x 1 byz x 2 seeds.
  EXPECT_EQ(expand(spec).size(), 16u);
}

TEST(CampaignSpecByz, ByzIsTheInnermostCellAxis) {
  const CampaignSpec spec = parse(
      std::string(kMinimalSpec) + "byz none\nbyz lie-const f=1 mag=0.01\n");
  const std::vector<TaskSpec> tasks = expand(spec);
  ASSERT_EQ(tasks.size(), 32u);
  // Seeds cycle fastest, then byz, then drift (absent), then faults.
  EXPECT_EQ(tasks[0].byz_id, 0u);
  EXPECT_EQ(tasks[1].byz_id, 0u);
  EXPECT_EQ(tasks[2].byz_id, 1u);
  EXPECT_EQ(tasks[2].drift_id, tasks[0].drift_id);
  EXPECT_EQ(tasks[2].fault_id, tasks[0].fault_id);
  EXPECT_EQ(tasks[4].fault_id, 1u);
  for (const TaskSpec& t : tasks) EXPECT_EQ(t.cell_id(spec), t.index / 2);
}

TEST(CampaignSpecByz, MalformedByzLinesAreDiagnosed) {
  const std::string base(kMinimalSpec);
  EXPECT_NE(expect_error(base + "byz banana f=1 mag=0.1\n").find("line 14"),
            std::string::npos);
  expect_error(base + "byz\n");                              // no behavior
  expect_error(base + "byz none extra\n");
  expect_error(base + "byz lie-const mag=0.1\n");            // no f
  expect_error(base + "byz lie-const f=0 mag=0.1\n");        // f must be >= 1
  expect_error(base + "byz lie-const f=1\n");                // no mag
  expect_error(base + "byz lie-const f=1 mag=-0.1\n");       // bad magnitude
  expect_error(base + "byz lie-const f=1 0.1\n");            // not key=value
  expect_error(base + "byz lie-const f=1 mag=0.1 est=median\n");
  expect_error(base + "byz lie-const f=1 mag=0.1 tol=0\n");
  expect_error(base + "byz lie-const f=1 mag=0.1 window=2\n");
}

TEST(CampaignSpecByz, ByzPresetsPitNaiveAgainstQuorum) {
  // "byz" leaves the adversary undefended and must fail --check; the
  // quorum preset runs the identical arms defended and must pass.
  const CampaignSpec naive = preset_campaign("byz");
  EXPECT_EQ(naive.topologies.size(), 2u);
  ASSERT_EQ(naive.byz.size(), 2u);
  for (const ByzAxisSpec& b : naive.byz) {
    EXPECT_EQ(b.kind, "equivocate");
    EXPECT_TRUE(b.byzantine());
    EXPECT_EQ(b.estimator, "naive");
    EXPECT_GT(b.magnitude, 0.0);
  }
  EXPECT_EQ(naive.byz[0].f, 1u);
  EXPECT_EQ(naive.byz[1].f, 2u);

  const CampaignSpec quorum = preset_campaign("byz-quorum");
  // Clique only: the chorded ring's path diversity is too thin against
  // adjacent equivocators for the quorum majority (see preset comment).
  EXPECT_EQ(quorum.topologies.size(), 1u);
  ASSERT_EQ(quorum.byz.size(), 2u);
  for (const ByzAxisSpec& b : quorum.byz) {
    EXPECT_EQ(b.estimator, "quorum");
    EXPECT_GT(b.quorum_tolerance, 0.0);
  }
  // Same adversary, same seeds — only the defense differs.
  EXPECT_EQ(quorum.seed, naive.seed);
  EXPECT_DOUBLE_EQ(quorum.byz[0].magnitude, naive.byz[0].magnitude);
}

}  // namespace
}  // namespace cs::lab
