// The campaign runner: seed derivation, per-task validation against the
// paper's claims, and scheduling-independent results.  The Campaign suite
// is a ThreadSanitizer target (see ci.yml).

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "common/error.hpp"
#include "lab/campaign.hpp"
#include "lab/stats.hpp"

namespace cs::lab {
namespace {

CampaignSpec tiny_campaign() {
  std::istringstream is(
      "chronosync-campaign v1\n"
      "name tiny\n"
      "seed 99\n"
      "seeds 2\n"
      "protocol pingpong 3\n"
      "skew 0.2\n"
      "delay-scale 0.05\n"
      "topology ring 5\n"
      "topology toroid 3x3\n"
      "mix bounds 0.002 0.008\n"
      "faults none\n"
      "faults drop 0.2\n");
  return load_campaign(is);
}

TEST(TaskSeed, DerivationIsAPureInjectiveLookingHash) {
  // Pure function of (seed, stream) …
  EXPECT_EQ(derive_task_seed(1, 0), derive_task_seed(1, 0));
  // … with no collisions across a healthy range of tasks and campaigns.
  std::set<std::uint64_t> seen;
  for (std::uint64_t campaign : {1ull, 2ull, 1807ull, 2026ull})
    for (std::uint64_t stream = 0; stream < 1000; ++stream)
      EXPECT_TRUE(seen.insert(derive_task_seed(campaign, stream)).second)
          << campaign << "/" << stream;
}

TEST(TaskSeed, NeighboringStreamsDecorrelate) {
  // Consecutive task indices must not produce near-identical seeds.
  const std::uint64_t a = derive_task_seed(7, 0);
  const std::uint64_t b = derive_task_seed(7, 1);
  int differing_bits = 0;
  for (std::uint64_t x = a ^ b; x != 0; x &= x - 1) ++differing_bits;
  EXPECT_GE(differing_bits, 16);
}

TEST(Campaign, FaultFreeTaskMeetsTheorem46WithinTolerance) {
  const CampaignSpec spec = tiny_campaign();
  const std::vector<TaskSpec> tasks = expand(spec);
  const TaskResult r = run_task(spec, tasks[0]);
  ASSERT_TRUE(r.ok) << r.failure;
  EXPECT_TRUE(r.bounded);
  EXPECT_GT(r.claimed, 0.0);
  EXPECT_LE(r.thm46_gap, kThm46Tolerance);
  EXPECT_TRUE(r.sound);
  EXPECT_EQ(r.nodes, 5u);
  EXPECT_EQ(r.links, 5u);
  EXPECT_EQ(r.dropped, 0u);
  EXPECT_GT(r.events, 0u);
}

TEST(Campaign, FaultyTaskStaysSound) {
  const CampaignSpec spec = tiny_campaign();
  const std::vector<TaskSpec> tasks = expand(spec);
  // Task index 2: ring 5, drop 0.2, seed_index 0.
  ASSERT_EQ(tasks[2].fault_id, 1u);
  const TaskResult r = run_task(spec, tasks[2]);
  ASSERT_TRUE(r.ok) << r.failure;
  EXPECT_GT(r.dropped, 0u);
  EXPECT_TRUE(r.sound);
}

TEST(Campaign, TaskResultsAreReproducible) {
  const CampaignSpec spec = tiny_campaign();
  const std::vector<TaskSpec> tasks = expand(spec);
  const TaskResult a = run_task(spec, tasks[3]);
  const TaskResult b = run_task(spec, tasks[3]);
  EXPECT_EQ(a.claimed, b.claimed);
  EXPECT_EQ(a.guaranteed, b.guaranteed);
  EXPECT_EQ(a.realized, b.realized);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.dropped, b.dropped);
}

TEST(Campaign, ResultsIdenticalForAnyThreadCount) {
  // The determinism contract at the library layer: every deterministic
  // TaskResult field is bit-identical between a serial and a parallel run.
  const CampaignSpec spec = tiny_campaign();
  RunOptions serial;
  serial.threads = 1;
  RunOptions parallel;
  parallel.threads = 4;
  const CampaignResult a = run_campaign(spec, serial);
  const CampaignResult b = run_campaign(spec, parallel);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].ok, b.results[i].ok) << i;
    EXPECT_EQ(a.results[i].bounded, b.results[i].bounded) << i;
    EXPECT_EQ(a.results[i].claimed, b.results[i].claimed) << i;
    EXPECT_EQ(a.results[i].guaranteed, b.results[i].guaranteed) << i;
    EXPECT_EQ(a.results[i].realized, b.results[i].realized) << i;
    EXPECT_EQ(a.results[i].thm46_gap, b.results[i].thm46_gap) << i;
    EXPECT_EQ(a.results[i].events, b.results[i].events) << i;
    EXPECT_EQ(a.results[i].delivered, b.results[i].delivered) << i;
    EXPECT_EQ(a.results[i].dropped, b.results[i].dropped) << i;
  }
}

TEST(Campaign, MetricsCountTaskOutcomes) {
  const CampaignSpec spec = tiny_campaign();
  Metrics metrics;
  RunOptions options;
  options.threads = 2;
  options.metrics = &metrics;
  const CampaignResult result = run_campaign(spec, options);
  EXPECT_EQ(metrics.counter("lab.tasks_ok") + metrics.counter("lab.tasks_failed"),
            result.results.size());
  EXPECT_EQ(metrics.counter("lab.pool.tasks"), result.results.size());
}

TEST(Campaign, UnknownProtocolSurfacesAsTaskFailure) {
  CampaignSpec spec = tiny_campaign();
  spec.protocol.kind = "smoke-signals";
  const TaskResult r = run_task(spec, expand(spec)[0]);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.failure.find("protocol"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Zones axis

CampaignSpec zoned_campaign() {
  std::istringstream is(
      "chronosync-campaign v1\n"
      "name zoned\n"
      "seed 77\n"
      "seeds 2\n"
      "protocol pingpong 3\n"
      "skew 0.2\n"
      "delay-scale 0.05\n"
      "topology dc 2 3 4\n"
      "mix bounds 0.002 0.008\n"
      "faults none\n"
      "zones none\n"
      "zones natural\n"
      "zones size 6\n");
  return load_campaign(is);
}

TEST(CampaignZones, ZonedArmsStaySoundAndMeetPerZoneTheorem46) {
  const CampaignSpec spec = zoned_campaign();
  for (const TaskSpec& task : expand(spec)) {
    const TaskResult r = run_task(spec, task);
    ASSERT_TRUE(r.ok) << r.failure;
    ASSERT_TRUE(r.bounded);
    EXPECT_TRUE(r.sound) << "zone arm " << task.zone_id;
    // thm46_gap is the per-zone + quotient equality residual on zoned
    // arms and the dense residual otherwise; both must sit at rounding
    // noise on this fault-free campaign.
    EXPECT_LE(r.thm46_gap, kThm46Tolerance);
    if (spec.zone_arm(task.zone_id).zoned()) {
      EXPECT_TRUE(r.zoned);
      EXPECT_GT(r.zone_count, 1u);
      EXPECT_GT(r.zone_max_size, 0u);
      EXPECT_LE(r.realized_intra, r.claimed + kThm46Tolerance);
      EXPECT_LE(r.realized_cross, r.claimed + kThm46Tolerance);
      // Zoned `claimed` is the composed (upper) bound: it must dominate
      // the realized spread but can exceed the per-zone optima.
      EXPECT_GE(r.claimed, r.zone_a_max_max - kThm46Tolerance);
    } else {
      EXPECT_FALSE(r.zoned);
      EXPECT_EQ(r.zone_count, 0u);
    }
  }
}

TEST(CampaignZones, DenseArmMatchesAZonelessRunBitForBit) {
  // Arm "zones none" must not perturb the task seed stream or the dense
  // pipeline: compare against the same campaign without the zones axis.
  CampaignSpec with = zoned_campaign();
  with.zones = {ZoneAxisSpec{}};  // only the dense arm
  CampaignSpec without = zoned_campaign();
  without.zones.clear();
  const std::vector<TaskSpec> wt = expand(with);
  const std::vector<TaskSpec> wo = expand(without);
  ASSERT_EQ(wt.size(), wo.size());
  for (std::size_t i = 0; i < wt.size(); ++i) {
    const TaskResult a = run_task(with, wt[i]);
    const TaskResult b = run_task(without, wo[i]);
    ASSERT_TRUE(a.ok && b.ok);
    EXPECT_EQ(a.claimed, b.claimed) << i;
    EXPECT_EQ(a.realized, b.realized) << i;
    EXPECT_EQ(a.guaranteed, b.guaranteed) << i;
  }
}

TEST(CampaignZones, TaskThreadsDoNotChangeZonedResults) {
  const CampaignSpec spec = zoned_campaign();
  const std::vector<TaskSpec> tasks = expand(spec);
  for (const TaskSpec& task : tasks) {
    if (!spec.zone_arm(task.zone_id).zoned()) continue;
    const TaskResult a = run_task(spec, task, kThm46Tolerance, 1);
    const TaskResult b = run_task(spec, task, kThm46Tolerance, 4);
    EXPECT_EQ(a.claimed, b.claimed);
    EXPECT_EQ(a.realized, b.realized);
    EXPECT_EQ(a.realized_intra, b.realized_intra);
    EXPECT_EQ(a.realized_cross, b.realized_cross);
    EXPECT_EQ(a.zone_a_max_max, b.zone_a_max_max);
    break;  // one zoned cell suffices; the CLI test sweeps the campaign
  }
}

// ---------------------------------------------------------------------------
// Drift axis

CampaignSpec drifting_campaign() {
  std::istringstream is(
      "chronosync-campaign v1\n"
      "name drifting\n"
      "seed 17\n"
      "seeds 1\n"
      "protocol pingpong 3\n"
      "skew 0.25\n"
      "delay-scale 0.05\n"
      "topology ring 5\n"
      "mix bounds 0.001 0.025\n"
      "faults none\n"
      "drift const 200 resync 10\n"
      "drift walk 200 50 resync 10\n");
  return load_campaign(is);
}

TEST(CampaignDrift, DriftingArmsWithResyncStayWithinTheAdjustedBound) {
  const CampaignSpec spec = drifting_campaign();
  for (const TaskSpec& task : expand(spec)) {
    const TaskResult r = run_task(spec, task);
    ASSERT_TRUE(r.ok) << r.failure;
    ASSERT_TRUE(r.bounded);
    EXPECT_TRUE(r.drifting);
    EXPECT_GT(r.drift_epochs, 1u);
    EXPECT_DOUBLE_EQ(r.drift_rho, 200e-6);
    // Drift-adjusted soundness: realized vs claimed + 2rho(W + I), checked
    // at every epoch inside the harness; `sound` folds every epoch.
    EXPECT_TRUE(r.sound) << "drift arm " << task.drift_id;
    EXPECT_GE(r.drift_bound, r.claimed);
    // Thm 4.6 equality holds per epoch on the drift-adjusted instances.
    EXPECT_LE(r.thm46_gap, kThm46Tolerance);
    // The fitted rate differences stay within the physical maximum 2rho
    // (the estimator clamps there).
    EXPECT_LE(r.drift_slope, 2.0 * r.drift_rho + 1e-12);
  }
}

TEST(CampaignDrift, DisablingResyncViolatesTheBound) {
  // The demonstration at the heart of docs/DRIFT.md: the same oscillators
  // held for a long horizon without re-synchronization drift past the
  // bound the single sync promised.
  CampaignSpec spec = drifting_campaign();
  for (DriftAxisSpec& d : spec.drifts) {
    d.resync = 0.0;
    d.horizon = 80.0;
  }
  bool any_violation = false;
  for (const TaskSpec& task : expand(spec)) {
    const TaskResult r = run_task(spec, task);
    ASSERT_TRUE(r.ok) << r.failure;
    if (!r.sound) any_violation = true;
  }
  EXPECT_TRUE(any_violation)
      << "no-resync arms stayed inside the bound; the violation "
         "demonstration lost its teeth";
}

TEST(CampaignDrift, DriftArmsDoNotComposeWithFaultsOrZones) {
  CampaignSpec spec = drifting_campaign();
  FaultSpec drop;
  drop.drop = 0.2;
  spec.faults.push_back(drop);
  spec.zones.push_back(ZoneAxisSpec{});
  spec.zones.push_back(ZoneAxisSpec{"size", 3});
  bool saw_fault_reject = false, saw_zone_reject = false;
  for (const TaskSpec& task : expand(spec)) {
    const TaskResult r = run_task(spec, task);
    const bool faulty = spec.faults[task.fault_id].faulty();
    const bool zoned = spec.zone_arm(task.zone_id).zoned();
    if (faulty || zoned) {
      EXPECT_FALSE(r.ok);
      if (faulty && !r.ok) saw_fault_reject = true;
      if (!faulty && zoned && !r.ok) saw_zone_reject = true;
    } else {
      EXPECT_TRUE(r.ok) << r.failure;
    }
  }
  EXPECT_TRUE(saw_fault_reject);
  EXPECT_TRUE(saw_zone_reject);
}

TEST(CampaignDrift, DriftReportsAreByteIdenticalForAnyThreadCount) {
  // The full-report determinism contract for drift campaigns (the analogue
  // of the cs_lab CLI --threads 1 vs 4 cmp in CI): deterministic JSON and
  // CSV renderings byte-compare across thread counts.
  const CampaignSpec spec = preset_campaign("drift");
  RunOptions serial;
  serial.threads = 1;
  RunOptions parallel;
  parallel.threads = 4;
  const CampaignReport a = aggregate(run_campaign(spec, serial));
  const CampaignReport b = aggregate(run_campaign(spec, parallel));

  std::ostringstream ja, jb, ca, cb;
  write_report_json(ja, a, /*include_timing=*/false);
  write_report_json(jb, b, /*include_timing=*/false);
  write_report_csv(ca, a);
  write_report_csv(cb, b);
  EXPECT_EQ(ja.str(), jb.str());
  EXPECT_EQ(ca.str(), cb.str());
}

}  // namespace
}  // namespace cs::lab
