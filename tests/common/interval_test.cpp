#include "common/interval.hpp"

#include <gtest/gtest.h>

namespace cs {
namespace {

TEST(Interval, DefaultIsNoBounds) {
  const Interval iv;
  EXPECT_EQ(iv.lo(), ExtReal{0.0});
  EXPECT_TRUE(iv.hi().is_pos_inf());
  EXPECT_TRUE(iv.contains(0.0));
  EXPECT_TRUE(iv.contains(1e12));
  EXPECT_FALSE(iv.contains(-1e-9));
}

TEST(Interval, Contains) {
  const Interval iv{ExtReal{1.0}, ExtReal{2.0}};
  EXPECT_TRUE(iv.contains(1.0));
  EXPECT_TRUE(iv.contains(2.0));
  EXPECT_TRUE(iv.contains(1.5));
  EXPECT_FALSE(iv.contains(0.999));
  EXPECT_FALSE(iv.contains(2.001));
}

TEST(Interval, Width) {
  EXPECT_EQ((Interval{ExtReal{1.0}, ExtReal{3.5}}).width(), ExtReal{2.5});
  EXPECT_TRUE((Interval{ExtReal{0.0}, ExtReal::infinity()}).width()
                  .is_pos_inf());
}

TEST(Interval, PointInterval) {
  const Interval iv{ExtReal{2.0}, ExtReal{2.0}};
  EXPECT_TRUE(iv.is_point());
  EXPECT_TRUE(iv.contains(2.0));
  EXPECT_EQ(iv.width(), ExtReal{0.0});
}

TEST(Interval, Intersect) {
  const Interval a{ExtReal{0.0}, ExtReal{5.0}};
  const Interval b{ExtReal{3.0}, ExtReal{9.0}};
  const Interval c = a.intersect(b);
  EXPECT_EQ(c.lo(), ExtReal{3.0});
  EXPECT_EQ(c.hi(), ExtReal{5.0});
}

TEST(Interval, IntersectWithUnbounded) {
  const Interval a{ExtReal{1.0}, ExtReal::infinity()};
  const Interval b{ExtReal{0.0}, ExtReal{4.0}};
  const Interval c = a.intersect(b);
  EXPECT_EQ(c.lo(), ExtReal{1.0});
  EXPECT_EQ(c.hi(), ExtReal{4.0});
}

}  // namespace
}  // namespace cs
