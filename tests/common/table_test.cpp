#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/extreal.hpp"

namespace cs {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "2.5"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| name "), std::string::npos);
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  // Header separator row present.
  EXPECT_NE(s.find("|--"), std::string::npos);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(1.5), "1.5");
  EXPECT_EQ(Table::num(0.000125, 3), "0.000125");
  EXPECT_EQ(Table::num(ExtReal::infinity()), "+inf");
  EXPECT_EQ(Table::num(ExtReal{2.0}), "2");
}

}  // namespace
}  // namespace cs
