#include "common/extreal.hpp"

#include <gtest/gtest.h>

namespace cs {
namespace {

TEST(ExtReal, FiniteArithmetic) {
  const ExtReal a{2.5};
  const ExtReal b{-1.0};
  EXPECT_DOUBLE_EQ((a + b).value(), 1.5);
  EXPECT_DOUBLE_EQ((a - b).value(), 3.5);
  EXPECT_DOUBLE_EQ((-a).value(), -2.5);
  EXPECT_DOUBLE_EQ((a / 2.0).value(), 1.25);
}

TEST(ExtReal, InfinityClassification) {
  EXPECT_TRUE(ExtReal::infinity().is_pos_inf());
  EXPECT_TRUE(ExtReal::neg_infinity().is_neg_inf());
  EXPECT_FALSE(ExtReal::infinity().is_finite());
  EXPECT_TRUE(ExtReal{0.0}.is_finite());
}

TEST(ExtReal, InfinityAbsorbsFinite) {
  const ExtReal inf = ExtReal::infinity();
  EXPECT_TRUE((inf + ExtReal{5.0}).is_pos_inf());
  EXPECT_TRUE((inf - ExtReal{5.0}).is_pos_inf());
  EXPECT_TRUE((ExtReal{3.0} - inf).is_neg_inf());
  EXPECT_TRUE((inf / 2.0).is_pos_inf());
}

TEST(ExtReal, SubtractingNegInfinityFromPosInfinity) {
  // (+inf) - (-inf) = (+inf) + (+inf) = +inf is well-defined.
  EXPECT_TRUE((ExtReal::infinity() - ExtReal::neg_infinity()).is_pos_inf());
}

TEST(ExtReal, Ordering) {
  EXPECT_LT(ExtReal::neg_infinity(), ExtReal{-1e300});
  EXPECT_LT(ExtReal{1e300}, ExtReal::infinity());
  EXPECT_LT(ExtReal{1.0}, ExtReal{2.0});
  EXPECT_EQ(ExtReal::infinity(), ExtReal::infinity());
}

TEST(ExtReal, MinMax) {
  EXPECT_EQ(min(ExtReal{1.0}, ExtReal::infinity()), ExtReal{1.0});
  EXPECT_EQ(max(ExtReal{1.0}, ExtReal::infinity()), ExtReal::infinity());
  EXPECT_EQ(min(ExtReal::neg_infinity(), ExtReal{0.0}),
            ExtReal::neg_infinity());
}

TEST(ExtReal, Str) {
  EXPECT_EQ(ExtReal::infinity().str(), "+inf");
  EXPECT_EQ(ExtReal::neg_infinity().str(), "-inf");
  EXPECT_EQ(ExtReal{2.0}.str(), "2");
}

TEST(ExtReal, FiniteAccessor) {
  EXPECT_DOUBLE_EQ(ExtReal{7.0}.finite(), 7.0);
}

}  // namespace
}  // namespace cs
