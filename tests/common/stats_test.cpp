#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace cs {
namespace {

TEST(Accumulator, BasicMoments) {
  Accumulator a;
  for (double x : {1.0, 2.0, 3.0, 4.0}) a.add(x);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.5);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 4.0);
  EXPECT_DOUBLE_EQ(a.sum(), 10.0);
  EXPECT_NEAR(a.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Accumulator, SingleValue) {
  Accumulator a;
  a.add(7.0);
  EXPECT_DOUBLE_EQ(a.mean(), 7.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 7.0);
  EXPECT_DOUBLE_EQ(a.max(), 7.0);
}

TEST(Accumulator, NegativeValues) {
  Accumulator a;
  for (double x : {-5.0, -1.0, 3.0}) a.add(x);
  EXPECT_DOUBLE_EQ(a.mean(), -1.0);
  EXPECT_DOUBLE_EQ(a.min(), -5.0);
  EXPECT_DOUBLE_EQ(a.max(), 3.0);
}

TEST(Percentile, Endpoints) {
  const std::vector<double> xs{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 2.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.75), 7.5);
}

TEST(Percentile, SingleElement) {
  const std::vector<double> xs{42.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.3), 42.0);
}

TEST(MeanStddev, MatchesAccumulator) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
  EXPECT_NEAR(stddev(xs), std::sqrt(2.5), 1e-12);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bin 0
  h.add(9.9);    // bin 4
  h.add(-3.0);   // clamps to bin 0
  h.add(100.0);  // clamps to bin 4
  h.add(5.0);    // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, RenderShape) {
  Histogram h(0.0, 1.0, 3);
  h.add(0.1);
  h.add(0.1);
  h.add(0.9);
  const auto lines = h.render(10);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("##"), std::string::npos);
}

}  // namespace
}  // namespace cs
