#include "common/metrics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace cs {
namespace {

TEST(MetricSeries, MergeOfEmptyIsIdentity) {
  MetricSeries a;
  a.count = 3;
  a.sum = 9.0;
  a.min = 2.0;
  a.max = 4.0;

  // Regression: a never-observed series is zero-initialized; folding it in
  // must not drag min to 0 (or max, for all-negative observations).
  MetricSeries empty;
  a.merge(empty);
  EXPECT_EQ(a.count, 3u);
  EXPECT_DOUBLE_EQ(a.sum, 9.0);
  EXPECT_DOUBLE_EQ(a.min, 2.0);
  EXPECT_DOUBLE_EQ(a.max, 4.0);
}

TEST(MetricSeries, MergeIntoEmptyAdoptsOther) {
  MetricSeries a;
  MetricSeries b;
  b.count = 2;
  b.sum = -6.0;
  b.min = -4.0;
  b.max = -2.0;
  a.merge(b);
  EXPECT_EQ(a.count, 2u);
  EXPECT_DOUBLE_EQ(a.sum, -6.0);
  EXPECT_DOUBLE_EQ(a.min, -4.0);
  EXPECT_DOUBLE_EQ(a.max, -2.0);  // not poisoned to 0 by a's zero state
}

TEST(MetricSeries, MergeFoldsBothSummaries) {
  MetricSeries a;
  a.count = 1;
  a.sum = 5.0;
  a.min = 5.0;
  a.max = 5.0;
  MetricSeries b;
  b.count = 2;
  b.sum = 3.0;
  b.min = 1.0;
  b.max = 2.0;
  a.merge(b);
  EXPECT_EQ(a.count, 3u);
  EXPECT_DOUBLE_EQ(a.sum, 8.0);
  EXPECT_DOUBLE_EQ(a.min, 1.0);
  EXPECT_DOUBLE_EQ(a.max, 5.0);
}

TEST(Metrics, MergePreservesSeriesBoundsAcrossRuns) {
  // The original bug: Metrics::merge value-initialized the destination
  // series, so every merged series acquired min = 0 (and max = 0 for
  // negative-valued series) regardless of the actual observations.
  Metrics run1;
  run1.observe("stage.seconds", 5.0);
  Metrics run2;
  run2.observe("stage.seconds", 7.0);

  Metrics total;
  total.merge(run1);
  total.merge(run2);

  const MetricSeries* s = total.series("stage.seconds");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, 2u);
  EXPECT_DOUBLE_EQ(s->sum, 12.0);
  EXPECT_DOUBLE_EQ(s->min, 5.0);  // was 0.0 before the fix
  EXPECT_DOUBLE_EQ(s->max, 7.0);
}

TEST(Metrics, MergeAllNegativeSeries) {
  Metrics run;
  run.observe("drift", -3.0);
  run.observe("drift", -1.0);

  Metrics total;
  total.merge(run);
  const MetricSeries* s = total.series("drift");
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->min, -3.0);
  EXPECT_DOUBLE_EQ(s->max, -1.0);  // was 0.0 before the fix
}

TEST(Metrics, MergeAddsCounters) {
  Metrics a;
  a.increment("x", 2);
  Metrics b;
  b.increment("x", 3);
  b.increment("y");
  a.merge(b);
  EXPECT_EQ(a.counter("x"), 5u);
  EXPECT_EQ(a.counter("y"), 1u);
}

TEST(Metrics, SelfMergeIsANoOp) {
  // merge(*this) must neither deadlock (one lock, taken twice) nor
  // double every counter.
  Metrics m;
  m.increment("x", 4);
  m.observe("s", 2.0);
  m.merge(m);
  EXPECT_EQ(m.counter("x"), 4u);
  EXPECT_EQ(m.series_snapshot("s").count, 1u);
}

// The concurrency contract (see the header): increment/observe/merge and
// the point reads may race freely from many threads.  These tests are the
// ThreadSanitizer targets of the CI `tsan` job — without the internal
// mutex they fail under TSan and (for the totals) usually in plain runs.

TEST(MetricsConcurrency, ParallelIncrementsAllLand) {
  Metrics m;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&m] {
      for (int i = 0; i < kPerThread; ++i) {
        m.increment("shared");
        m.observe("dwell", 0.001 * (i % 7));
      }
    });
  for (auto& w : workers) w.join();

  EXPECT_EQ(m.counter("shared"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(m.series_snapshot("dwell").count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsConcurrency, ProducersRaceAMergingAggregator) {
  // The daemon shape: transport threads observe into per-run sinks while
  // an aggregator folds finished runs into a total and reads points.
  Metrics total;
  Metrics live;
  std::atomic<bool> stop{false};

  std::vector<std::thread> producers;
  for (int t = 0; t < 4; ++t)
    producers.emplace_back([&live, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        live.increment("events");
        live.observe("latency", 0.25);
      }
    });

  for (int round = 0; round < 50; ++round) {
    Metrics batch;
    batch.increment("rounds");
    batch.observe("latency", 1.0);
    total.merge(batch);
    total.merge(live);  // snapshot-merge while producers keep appending
    (void)total.counter("rounds");
    (void)total.series_snapshot("latency");
  }
  stop.store(true);
  for (auto& p : producers) p.join();

  EXPECT_EQ(total.counter("rounds"), 50u);
  EXPECT_GE(total.series_snapshot("latency").count, 50u);
  const MetricSeries latency = total.series_snapshot("latency");
  EXPECT_DOUBLE_EQ(latency.max, 1.0);
  EXPECT_GT(latency.count, 0u);
}

TEST(MetricsConcurrency, ConcurrentTimersRecordEveryScope) {
  Metrics m;
  constexpr int kThreads = 6;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&m] {
      for (int i = 0; i < 100; ++i)
        auto timer = Metrics::scoped(&m, "scope.seconds");
    });
  for (auto& w : workers) w.join();
  EXPECT_EQ(m.series_snapshot("scope.seconds").count, kThreads * 100u);
  EXPECT_GE(m.series_snapshot("scope.seconds").min, 0.0);
}

}  // namespace
}  // namespace cs
