#include "common/metrics.hpp"

#include <gtest/gtest.h>

namespace cs {
namespace {

TEST(MetricSeries, MergeOfEmptyIsIdentity) {
  MetricSeries a;
  a.count = 3;
  a.sum = 9.0;
  a.min = 2.0;
  a.max = 4.0;

  // Regression: a never-observed series is zero-initialized; folding it in
  // must not drag min to 0 (or max, for all-negative observations).
  MetricSeries empty;
  a.merge(empty);
  EXPECT_EQ(a.count, 3u);
  EXPECT_DOUBLE_EQ(a.sum, 9.0);
  EXPECT_DOUBLE_EQ(a.min, 2.0);
  EXPECT_DOUBLE_EQ(a.max, 4.0);
}

TEST(MetricSeries, MergeIntoEmptyAdoptsOther) {
  MetricSeries a;
  MetricSeries b;
  b.count = 2;
  b.sum = -6.0;
  b.min = -4.0;
  b.max = -2.0;
  a.merge(b);
  EXPECT_EQ(a.count, 2u);
  EXPECT_DOUBLE_EQ(a.sum, -6.0);
  EXPECT_DOUBLE_EQ(a.min, -4.0);
  EXPECT_DOUBLE_EQ(a.max, -2.0);  // not poisoned to 0 by a's zero state
}

TEST(MetricSeries, MergeFoldsBothSummaries) {
  MetricSeries a;
  a.count = 1;
  a.sum = 5.0;
  a.min = 5.0;
  a.max = 5.0;
  MetricSeries b;
  b.count = 2;
  b.sum = 3.0;
  b.min = 1.0;
  b.max = 2.0;
  a.merge(b);
  EXPECT_EQ(a.count, 3u);
  EXPECT_DOUBLE_EQ(a.sum, 8.0);
  EXPECT_DOUBLE_EQ(a.min, 1.0);
  EXPECT_DOUBLE_EQ(a.max, 5.0);
}

TEST(Metrics, MergePreservesSeriesBoundsAcrossRuns) {
  // The original bug: Metrics::merge value-initialized the destination
  // series, so every merged series acquired min = 0 (and max = 0 for
  // negative-valued series) regardless of the actual observations.
  Metrics run1;
  run1.observe("stage.seconds", 5.0);
  Metrics run2;
  run2.observe("stage.seconds", 7.0);

  Metrics total;
  total.merge(run1);
  total.merge(run2);

  const MetricSeries* s = total.series("stage.seconds");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, 2u);
  EXPECT_DOUBLE_EQ(s->sum, 12.0);
  EXPECT_DOUBLE_EQ(s->min, 5.0);  // was 0.0 before the fix
  EXPECT_DOUBLE_EQ(s->max, 7.0);
}

TEST(Metrics, MergeAllNegativeSeries) {
  Metrics run;
  run.observe("drift", -3.0);
  run.observe("drift", -1.0);

  Metrics total;
  total.merge(run);
  const MetricSeries* s = total.series("drift");
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->min, -3.0);
  EXPECT_DOUBLE_EQ(s->max, -1.0);  // was 0.0 before the fix
}

TEST(Metrics, MergeAddsCounters) {
  Metrics a;
  a.increment("x", 2);
  Metrics b;
  b.increment("x", 3);
  b.increment("y");
  a.merge(b);
  EXPECT_EQ(a.counter("x"), 5u);
  EXPECT_EQ(a.counter("y"), 1u);
}

}  // namespace
}  // namespace cs
