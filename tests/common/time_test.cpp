#include "common/time.hpp"

#include <gtest/gtest.h>

namespace cs {
namespace {

TEST(Duration, Arithmetic) {
  const Duration a{2.0}, b{0.5};
  EXPECT_DOUBLE_EQ((a + b).sec, 2.5);
  EXPECT_DOUBLE_EQ((a - b).sec, 1.5);
  EXPECT_DOUBLE_EQ((-a).sec, -2.0);
  EXPECT_DOUBLE_EQ((a * 3.0).sec, 6.0);
  EXPECT_DOUBLE_EQ((3.0 * a).sec, 6.0);
  EXPECT_DOUBLE_EQ((a / 4.0).sec, 0.5);
  Duration c{1.0};
  c += b;
  EXPECT_DOUBLE_EQ(c.sec, 1.5);
  c -= a;
  EXPECT_DOUBLE_EQ(c.sec, -0.5);
}

TEST(Duration, Helpers) {
  EXPECT_DOUBLE_EQ(seconds(2.0).sec, 2.0);
  EXPECT_DOUBLE_EQ(millis(250.0).sec, 0.25);
  EXPECT_DOUBLE_EQ(micros(1500.0).sec, 0.0015);
}

TEST(Duration, Ordering) {
  EXPECT_LT(Duration{1.0}, Duration{2.0});
  EXPECT_EQ(Duration{1.0}, Duration{1.0});
  EXPECT_GT(Duration{-0.5}, Duration{-1.0});
}

TEST(RealTime, InstantArithmetic) {
  const RealTime t{10.0};
  EXPECT_DOUBLE_EQ((t + Duration{2.0}).sec, 12.0);
  EXPECT_DOUBLE_EQ((t - Duration{2.0}).sec, 8.0);
  EXPECT_DOUBLE_EQ((RealTime{12.0} - t).sec, 2.0);
  EXPECT_LT(t, RealTime{10.5});
}

TEST(ClockTime, InstantArithmetic) {
  const ClockTime c{5.0};
  EXPECT_DOUBLE_EQ((c + Duration{1.0}).sec, 6.0);
  EXPECT_DOUBLE_EQ((c - ClockTime{2.0}).sec, 3.0);
  EXPECT_GT(c, ClockTime{4.9});
}

// The point of the strong types: RealTime and ClockTime must NOT mix.
// (Compile-time property; documented here, enforced by the type system.)
static_assert(!std::is_convertible_v<RealTime, ClockTime>);
static_assert(!std::is_convertible_v<ClockTime, RealTime>);
static_assert(!std::is_convertible_v<double, RealTime>);
static_assert(!std::is_convertible_v<Duration, double>);

}  // namespace
}  // namespace cs
