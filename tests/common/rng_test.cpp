#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace cs {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 4);
}

TEST(Rng, Uniform01Range) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, Uniform01MeanApproximatelyHalf) {
  Rng r(11);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += r.uniform01();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformIntInRangeAndCoversValues) {
  Rng r(13);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniform_int(10);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  for (int c : counts) EXPECT_GT(c, 700);  // roughly uniform
}

TEST(Rng, ExponentialMean) {
  Rng r(17);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += r.exponential(4.0);
  EXPECT_NEAR(sum / kN, 0.25, 0.01);
}

TEST(Rng, ExponentialNonNegative) {
  Rng r(19);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(r.exponential(1.0), 0.0);
}

TEST(Rng, NormalMoments) {
  Rng r(23);
  double sum = 0.0, sum2 = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double x = r.normal(2.0, 3.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / kN;
  const double var = sum2 / kN - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.2);
}

TEST(Rng, ParetoAtLeastScale) {
  Rng r(29);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(r.pareto(0.5, 2.0), 0.5);
}

TEST(Rng, SplitStreamsIndependentAndDeterministic) {
  const Rng base(99);
  Rng s0 = base.split(0);
  Rng s1 = base.split(1);
  Rng s0b = base.split(0);
  int equal01 = 0;
  for (int i = 0; i < 64; ++i) {
    const auto a = s0.next();
    EXPECT_EQ(a, s0b.next());
    equal01 += (a == s1.next());
  }
  EXPECT_LT(equal01, 4);
}

}  // namespace
}  // namespace cs
