// Robust estimation (core/robust.hpp): the f = 0 honesty tax is zero.
//
// The property the subsystem is allowed to ship on: with no liars, every
// robust variant — MAD-trimmed folds, quorum validation, and the two
// combined — produces the *bit-identical* outcome of the naive pipeline,
// across 50 random instances.  Robustness must cost nothing when there is
// nothing to be robust against.

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "core/robust.hpp"
#include "core/synchronizer.hpp"
#include "delaymodel/link_stats.hpp"
#include "support/builders.hpp"

namespace cs {
namespace {

Topology instance_topology(std::size_t i, Rng& rng) {
  switch (i % 3) {
    case 0: return make_complete(5);
    case 1: return make_ring(6);
    default: return make_connected_gnp(7, 0.6, rng);
  }
}

RobustOptions robust_variant(std::size_t v, double tolerance) {
  RobustOptions r;
  if (v == 1 || v == 3) {
    r.trim = true;
    r.trim_gate = 6.0;
  }
  if (v == 2 || v == 3) {
    r.quorum = 3;
    r.quorum_tolerance = tolerance;
  }
  return r;
}

TEST(RobustHonestyTax, FiftyRandomInstancesAreBitIdentical) {
  for (std::size_t i = 0; i < 50; ++i) {
    const std::uint64_t seed = 1000 + i;
    Rng topo_rng(seed);
    const SystemModel model =
        test::bounded_model(instance_topology(i, topo_rng), 0.01, 0.11);
    // Enough rounds that every direction's empirical MAD reflects the
    // delay band: for uniform delays the extreme deviation sits near
    // 2 MADs, far inside the 6-MAD gate.  (With a handful of samples the
    // MAD itself is noise and the gate can fire on honest traffic — the
    // trim-backfire regime docs/BYZ.md tells operators to stay out of.)
    const SimResult sim = test::run_ping_pong(model, seed, 0.2, 12);
    const std::vector<View> views = sim.execution.views();

    SyncOptions naive;
    const SyncOutcome base = synchronize(model, views, naive);

    // Honest routes always corroborate within the declared band's width,
    // so a full-width per-hop tolerance keeps quorum from firing.
    for (std::size_t v = 1; v <= 3; ++v) {
      SyncOptions opts;
      opts.robust = robust_variant(v, 0.10);
      const SyncOutcome out = synchronize(model, views, opts);
      ASSERT_EQ(out.corrections.size(), base.corrections.size())
          << "instance " << i << " variant " << v;
      for (std::size_t p = 0; p < base.corrections.size(); ++p)
        EXPECT_EQ(out.corrections[p], base.corrections[p])
            << "instance " << i << " variant " << v << " processor " << p;
      EXPECT_EQ(out.optimal_precision.finite(),
                base.optimal_precision.finite())
          << "instance " << i << " variant " << v;
    }
  }
}

TEST(RobustTrim, HonestTrafficIsAnElementForElementCopy) {
  const SystemModel model = test::bounded_model(make_complete(4), 0.0, 1.0);
  const SimResult sim = test::run_ping_pong(model, 77, 0.2);
  const LinkTraffic traffic = LinkTraffic::estimated_from_views(
      sim.execution.views(), MatchPolicy::kDropOrphans);
  Metrics metrics;
  const LinkTraffic trimmed = trimmed_traffic(traffic, model, 6.0, &metrics);
  const std::size_t n = model.processor_count();
  for (ProcessorId p = 0; p < n; ++p)
    for (ProcessorId q = 0; q < n; ++q) {
      const auto before = traffic.direction(p, q);
      const auto after = trimmed.direction(p, q);
      ASSERT_EQ(after.size(), before.size()) << p << "->" << q;
      for (std::size_t i = 0; i < before.size(); ++i) {
        EXPECT_EQ(after[i].send, before[i].send);
        EXPECT_EQ(after[i].delay, before[i].delay);
      }
    }
  EXPECT_EQ(metrics.counter("robust.trimmed_observations"), 0u);
}

TEST(RobustQuorum, HonestMlsGraphSurvivesValidation) {
  const SystemModel model = test::bounded_model(make_complete(5), 0.0, 1.0);
  const SimResult sim = test::run_ping_pong(model, 78, 0.2);
  const SyncOutcome base = synchronize(model, sim.execution.views(), {});
  RobustOptions options;
  options.quorum = 3;
  options.quorum_tolerance = 1.0;
  Metrics metrics;
  const Digraph validated =
      quorum_validated_mls(base.mls_graph, options, &metrics);
  EXPECT_EQ(validated.edge_count(), base.mls_graph.edge_count());
  EXPECT_EQ(metrics.counter("robust.quorum_dropped_edges"), 0u);
}

}  // namespace
}  // namespace cs
