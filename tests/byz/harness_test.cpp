// run_byz_trial end to end: honest trials are clean, a calibrated
// equivocation silently violates the naive pipeline, quorum validation
// rescues the same instance, and a bounded attack recovers in a finite,
// measured number of epochs.  The arms mirror bench_e18_byz.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "byz/harness.hpp"
#include "support/builders.hpp"

namespace cs::byz {
namespace {

constexpr double kLb = 0.001;
constexpr double kUb = 0.101;

std::vector<Duration> offsets(std::size_t n, double skew,
                              std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Duration> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(Duration{skew * rng.uniform01()});
  return out;
}

// The calibrated complete-6 arm from E18: middle-quarter sampling leaves
// slack for sub-threshold lies, sim_seed 13 / offset seed 25 is a seed
// pair where mag 0.09 equivocation slips past detection.
ByzTrialConfig complete6_config() {
  ByzTrialConfig config;
  config.horizon = 32.0;
  config.interval = 8.0;
  config.skew = 0.25;
  config.sample_lo = kLb + 0.375 * (kUb - kLb);
  config.sample_hi = kLb + 0.625 * (kUb - kLb);
  config.sim_seed = 13;
  config.start_offsets = offsets(6, config.skew, 25);
  return config;
}

TEST(ByzHarness, HonestTrialIsClean) {
  const SystemModel model = test::bounded_model(make_complete(6), kLb, kUb);
  ByzTrialConfig config = complete6_config();
  const ByzTrialResult r = run_byz_trial(model, config);
  ASSERT_TRUE(r.ok) << r.failure;
  EXPECT_EQ(r.epochs, 3u);
  EXPECT_EQ(r.detected_epochs, 0u);
  EXPECT_EQ(r.violations, 0u);
  EXPECT_TRUE(r.sound);
  EXPECT_EQ(r.lied_stamps, 0u);
  EXPECT_LE(r.thm46_gap, 1e-9);
  EXPECT_GE(r.claimed_honest_max, r.realized_honest_max);
}

TEST(ByzHarness, CalibratedEquivocationSilentlyViolatesNaive) {
  const SystemModel model = test::bounded_model(make_complete(6), kLb, kUb);
  ByzTrialConfig config = complete6_config();
  config.plan.behavior = Behavior::kEquivocate;
  config.plan.f = 1;
  config.plan.magnitude = 0.09;
  config.plan.seed = 0xB12A;
  const ByzTrialResult r = run_byz_trial(model, config);
  ASSERT_TRUE(r.ok) << r.failure;
  EXPECT_GT(r.lied_stamps, 0u);
  // The silent failure the robust estimators exist for: undetected epochs
  // whose published bound the honest agents measurably exceed.
  EXPECT_EQ(r.violations, 2u);
  EXPECT_FALSE(r.sound);
  EXPECT_GT(r.realized_honest_max, r.claimed_honest_max);
}

TEST(ByzHarness, QuorumValidationRescuesTheSameInstance) {
  const SystemModel model = test::bounded_model(make_complete(6), kLb, kUb);
  ByzTrialConfig config = complete6_config();
  config.plan.behavior = Behavior::kEquivocate;
  config.plan.f = 1;
  config.plan.magnitude = 0.09;
  config.plan.seed = 0xB12A;
  config.robust.quorum = 3;
  config.robust.quorum_tolerance = 0.002;
  const ByzTrialResult r = run_byz_trial(model, config);
  ASSERT_TRUE(r.ok) << r.failure;
  // Detection outages are permitted (loud, nobody misled); silence is not.
  EXPECT_EQ(r.violations, 0u);
  EXPECT_TRUE(r.sound);
}

TEST(ByzHarness, BoundedAttackRecoversInFiniteEpochs) {
  const SystemModel model = test::bounded_model(make_complete(6), kLb, kUb);
  ByzTrialConfig config = complete6_config();
  config.horizon = 48.0;
  config.plan.behavior = Behavior::kEquivocate;
  config.plan.f = 1;
  config.plan.magnitude = 0.09;
  config.plan.seed = 0xB12A;
  config.plan.until = 16.0;
  const ByzTrialResult r = run_byz_trial(model, config);
  ASSERT_TRUE(r.ok) << r.failure;
  ASSERT_TRUE(r.recovery_measured);
  EXPECT_TRUE(r.recovered);
  // Sliding windows shed the poisoned observations within the horizon.
  EXPECT_LT(r.recovery_epochs, r.epochs);
}

TEST(ByzHarness, TrialsAreDeterministic) {
  const SystemModel model = test::bounded_model(make_complete(6), kLb, kUb);
  ByzTrialConfig config = complete6_config();
  config.plan.behavior = Behavior::kEquivocate;
  config.plan.f = 2;
  config.plan.magnitude = 0.09;
  config.plan.seed = 0xB12A;
  const ByzTrialResult a = run_byz_trial(model, config);
  const ByzTrialResult b = run_byz_trial(model, config);
  ASSERT_TRUE(a.ok) << a.failure;
  ASSERT_TRUE(b.ok) << b.failure;
  EXPECT_EQ(a.lied_stamps, b.lied_stamps);
  EXPECT_EQ(a.detected_epochs, b.detected_epochs);
  EXPECT_EQ(a.violations, b.violations);
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(a.rows[i].detected, b.rows[i].detected);
    EXPECT_DOUBLE_EQ(a.rows[i].claimed_honest, b.rows[i].claimed_honest);
    EXPECT_DOUBLE_EQ(a.rows[i].realized_honest, b.rows[i].realized_honest);
  }
}

TEST(ByzHarness, ConfigErrorsComeBackAsFailures) {
  const SystemModel model = test::bounded_model(make_complete(6), kLb, kUb);
  {
    ByzTrialConfig config = complete6_config();
    config.start_offsets.pop_back();
    const ByzTrialResult r = run_byz_trial(model, config);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.failure.find("start offset"), std::string::npos);
  }
  {
    ByzTrialConfig config = complete6_config();
    config.horizon = 0.0;
    EXPECT_FALSE(run_byz_trial(model, config).ok);
  }
  {
    ByzTrialConfig config = complete6_config();
    config.sample_lo = 0.0;
    config.sample_hi = 0.0;
    EXPECT_FALSE(run_byz_trial(model, config).ok);
  }
}

}  // namespace
}  // namespace cs::byz
