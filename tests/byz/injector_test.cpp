// ByzInjector inside the simulator: monotone histories, the gauge
// invariance of consistent lies, and the RNG-composition contract with
// FaultPlan (independent streams, any order, no double-consumed draws).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "byz/injector.hpp"
#include "core/synchronizer.hpp"
#include "proto/ping_pong.hpp"
#include "sim/fault_plan.hpp"
#include "sim/simulator.hpp"
#include "support/builders.hpp"

namespace cs::byz {
namespace {

SimOptions base_options(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  SimOptions opts;
  opts.start_offsets = random_start_offsets(n, 0.2, rng);
  opts.seed = seed;
  opts.delay_scale = 0.05;
  return opts;
}

SimResult run(const SystemModel& model, SimOptions opts) {
  PingPongParams params;
  params.warmup = Duration{0.3};
  params.rounds = 4;
  return simulate(model, make_ping_pong(params), opts);
}

ByzPlan const_liar(ProcessorId pid, double mag) {
  ByzPlan plan;
  plan.seed = 0xB12A;
  AgentPlan a;
  a.pid = pid;
  a.behavior = Behavior::kLieConst;
  a.magnitude = mag;
  plan.add(a);
  return plan;
}

TEST(ByzInjector, HonestPlanPassesStampsThrough) {
  const SystemModel model = test::bounded_model(make_complete(4), 0.0, 1.0);
  SimOptions honest = base_options(4, 21);
  const SimResult ref = run(model, honest);

  ByzPlan plan;  // empty = honest
  ByzInjector tamper(plan, 4);
  EXPECT_TRUE(tamper.honest());
  SimOptions tampered = base_options(4, 21);
  tampered.tamper = &tamper;
  const SimResult out = run(model, tampered);
  EXPECT_EQ(tamper.lied_stamps(), 0u);
  EXPECT_EQ(out.execution.views(), ref.execution.views());
}

TEST(ByzInjector, HistoriesStayMonotoneUnderEveryBehavior) {
  const SystemModel model = test::bounded_model(make_complete(4), 0.0, 1.0);
  for (const Behavior b : {Behavior::kLieConst, Behavior::kLieRamp,
                           Behavior::kLieRandom, Behavior::kReplay,
                           Behavior::kEquivocate}) {
    ByzPlan plan;
    plan.seed = 0xB12A;
    AgentPlan a;
    a.pid = 1;
    a.behavior = b;
    a.magnitude = 0.2;
    plan.add(a);
    ByzInjector tamper(plan, 4);
    SimOptions opts = base_options(4, 22);
    opts.tamper = &tamper;
    // Histories enforce monotone clock order on insertion, so a rewinding
    // tamper would throw inside simulate(); finishing is the assertion.
    const SimResult out = run(model, opts);
    EXPECT_GT(out.delivered_messages, 0u);
  }
}

TEST(ByzInjector, ConsistentConstLieIsGaugeInvariant) {
  // lie-const shifts every stamp of the liar by the same amount — exactly
  // an honest processor whose clock started `mag` earlier (Lemma 4.1 on
  // the clock axis).  The instance optimum must not move, and the liar's
  // correction must absorb the shift.
  const SystemModel model = test::bounded_model(make_complete(5), 0.0, 1.0);
  SimOptions honest = base_options(5, 23);
  const SimResult ref = run(model, honest);

  const double mag = 0.05;
  const ByzPlan plan = const_liar(2, mag);
  ByzInjector tamper(plan, 5);
  SimOptions tampered = base_options(5, 23);
  tampered.tamper = &tamper;
  const SimResult out = run(model, tampered);
  EXPECT_GT(tamper.lied_stamps(), 0u);

  const SyncOutcome a = synchronize(model, ref.execution.views(), {});
  const SyncOutcome b = synchronize(model, out.execution.views(), {});
  ASSERT_TRUE(a.bounded());
  ASSERT_TRUE(b.bounded());
  EXPECT_NEAR(a.optimal_precision.finite(), b.optimal_precision.finite(),
              1e-9);
  // Corrections are root-anchored; relative to any honest agent the liar's
  // correction moves by exactly -mag while honest pairs stay put.
  ASSERT_EQ(a.corrections.size(), b.corrections.size());
  for (std::size_t p = 0; p < a.corrections.size(); ++p) {
    const double shift =
        (b.corrections[p] - b.corrections[0]) -
        (a.corrections[p] - a.corrections[0]);
    EXPECT_NEAR(shift, p == 2 ? -mag : 0.0, 1e-9) << "processor " << p;
  }
}

TEST(ByzInjector, ByzDoesNotPerturbDelaysOrFaultDecisions) {
  // Satellite regression: the Byzantine streams are split from the plan's
  // own seed, so turning lies on must not move a single delay draw or
  // fault decision.  Honest agents' views are untouched records of the
  // physical run — bitwise equality proves the schedule did not move.
  const SystemModel model = test::bounded_model(make_complete(5), 0.0, 1.0);
  FaultPlan faults;
  faults.seed = 0xFA17;
  faults.default_link.drop_probability = 0.2;

  SimOptions plain = base_options(5, 24);
  plain.faults = &faults;
  const SimResult ref = run(model, plain);

  ByzPlan plan;
  plan.seed = 0xB12A;
  AgentPlan a;
  a.pid = 3;
  a.behavior = Behavior::kLieRandom;
  a.magnitude = 0.03;
  plan.add(a);
  ByzInjector tamper(plan, 5);
  SimOptions lying = base_options(5, 24);
  lying.faults = &faults;
  lying.tamper = &tamper;
  const SimResult out = run(model, lying);

  EXPECT_GT(ref.fault_dropped_messages, 0u);
  EXPECT_EQ(out.fault_dropped_messages, ref.fault_dropped_messages);
  EXPECT_EQ(out.delivered_messages, ref.delivered_messages);
  const std::vector<View> va = ref.execution.views();
  const std::vector<View> vb = out.execution.views();
  ASSERT_EQ(va.size(), vb.size());
  for (std::size_t p = 0; p < va.size(); ++p) {
    if (p == 3) continue;  // the liar's own record differs by design
    EXPECT_EQ(va[p], vb[p]) << "honest processor " << p;
  }
  EXPECT_NE(va[3], vb[3]);
}

TEST(ByzInjector, FaultPlanPresenceDoesNotPerturbTheLies) {
  // The mirror image: a fault plan that never fires (zero probabilities)
  // must leave every tampered stamp bit-identical — the Byzantine streams
  // never read from the fault streams.
  const SystemModel model = test::bounded_model(make_complete(5), 0.0, 1.0);
  const ByzPlan plan = const_liar(1, 0.04);

  ByzInjector t1(plan, 5);
  SimOptions alone = base_options(5, 25);
  alone.tamper = &t1;
  const SimResult a = run(model, alone);

  FaultPlan quiet;
  quiet.seed = 0xDEAD;  // different fault seed, zero effect
  ByzInjector t2(plan, 5);
  SimOptions with_faults = base_options(5, 25);
  with_faults.faults = &quiet;
  with_faults.tamper = &t2;
  const SimResult b = run(model, with_faults);

  EXPECT_EQ(t1.lied_stamps(), t2.lied_stamps());
  EXPECT_EQ(a.execution.views(), b.execution.views());
}

}  // namespace
}  // namespace cs::byz
