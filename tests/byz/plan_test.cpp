// ByzPlan: grammar, resolution, and the lie kernels (byz/plan.hpp).

#include <gtest/gtest.h>

#include <cmath>

#include "byz/plan.hpp"
#include "common/error.hpp"

namespace cs::byz {
namespace {

TEST(ByzPlanGrammar, ParsesEveryKey) {
  const ByzPlanSpec spec = parse_byz_plan(
      "lie-ramp f=2 mag=0.05 ramp=4 from=1 until=9 seed=77");
  EXPECT_EQ(spec.behavior, Behavior::kLieRamp);
  EXPECT_EQ(spec.f, 2u);
  EXPECT_DOUBLE_EQ(spec.magnitude, 0.05);
  EXPECT_DOUBLE_EQ(spec.ramp_span, 4.0);
  EXPECT_DOUBLE_EQ(spec.from, 1.0);
  EXPECT_DOUBLE_EQ(spec.until, 9.0);
  EXPECT_EQ(spec.seed, 77u);
}

TEST(ByzPlanGrammar, ExplicitAgentListParses) {
  const ByzPlanSpec spec = parse_byz_plan("equivocate agents=1,3 mag=0.02");
  ASSERT_EQ(spec.agents.size(), 2u);
  EXPECT_EQ(spec.agents[0], 1u);
  EXPECT_EQ(spec.agents[1], 3u);
}

TEST(ByzPlanGrammar, DescribeReparsesToTheSameSpec) {
  const ByzPlanSpec spec =
      parse_byz_plan("lie-const agents=0,2 mag=0.01 from=2 until=6");
  const ByzPlanSpec again = parse_byz_plan(spec.describe());
  EXPECT_EQ(again.behavior, spec.behavior);
  EXPECT_EQ(again.agents, spec.agents);
  EXPECT_DOUBLE_EQ(again.magnitude, spec.magnitude);
  EXPECT_DOUBLE_EQ(again.from, spec.from);
  EXPECT_DOUBLE_EQ(again.until, spec.until);
}

TEST(ByzPlanGrammar, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_byz_plan(""), Error);
  EXPECT_THROW(parse_byz_plan("subvert f=1 mag=0.1"), Error);
  EXPECT_THROW(parse_byz_plan("lie-const mag=0.1"), Error);          // no f
  EXPECT_THROW(parse_byz_plan("lie-const f=1"), Error);              // no mag
  EXPECT_THROW(parse_byz_plan("lie-const f=1 mag=x"), Error);
  EXPECT_THROW(parse_byz_plan("lie-const f=1 mag=0.1 bogus=3"), Error);
  EXPECT_THROW(parse_byz_plan("lie-const f=1 mag=0.1 from=5 until=2"),
               Error);
  EXPECT_THROW(parse_byz_plan("none extra"), Error);
}

TEST(ByzPlanResolve, ExplicitAgentsOutOfRangeThrow) {
  const ByzPlanSpec spec = parse_byz_plan("lie-const agents=7 mag=0.1");
  EXPECT_THROW(resolve_byz_plan(spec, 4), Error);
}

TEST(ByzPlanResolve, RandomAssignmentIsSeedDeterministic) {
  ByzPlanSpec spec = parse_byz_plan("equivocate f=2 mag=0.1 seed=5");
  const ByzPlan a = resolve_byz_plan(spec, 9);
  const ByzPlan b = resolve_byz_plan(spec, 9);
  ASSERT_EQ(a.agents().size(), 2u);
  ASSERT_EQ(b.agents().size(), 2u);
  EXPECT_EQ(a.agents()[0].pid, b.agents()[0].pid);
  EXPECT_EQ(a.agents()[1].pid, b.agents()[1].pid);
  spec.seed = 6;
  EXPECT_EQ(resolve_byz_plan(spec, 9).liar_count(), 2u);
}

TEST(ByzPlanResolve, HonestSpecResolvesToHonestPlan) {
  const ByzPlan plan = resolve_byz_plan(parse_byz_plan("none"), 5);
  EXPECT_TRUE(plan.honest());
  EXPECT_EQ(plan.liar_count(), 0u);
}

TEST(ByzPlan, DuplicateAssignmentThrows) {
  ByzPlan plan;
  AgentPlan a;
  a.pid = 2;
  a.behavior = Behavior::kLieConst;
  a.magnitude = 0.1;
  plan.add(a);
  EXPECT_THROW(plan.add(a), Error);
}

AgentPlan liar(Behavior b, double mag) {
  AgentPlan a;
  a.pid = 1;
  a.behavior = b;
  a.magnitude = mag;
  return a;
}

TEST(LieStamp, HistoryFloorNeverRewinds) {
  // Replay repeats the previous truth — without the clamp the recorded
  // history would go backwards and History would reject it.
  const AgentPlan a = liar(Behavior::kReplay, 0.0);
  Rng rng(3);
  ClockTime last{}, floor{};
  const ClockTime s1 =
      lie_stamp(a, 9, EventKind::kSend, ClockTime{1.0}, 0, rng, last, floor);
  const ClockTime s2 =
      lie_stamp(a, 9, EventKind::kSend, ClockTime{2.0}, 0, rng, last, floor);
  const ClockTime s3 =
      lie_stamp(a, 9, EventKind::kSend, ClockTime{3.0}, 0, rng, last, floor);
  EXPECT_LE(s1.sec, s2.sec);
  EXPECT_LE(s2.sec, s3.sec);
  // Replay of truth 3.0 reports the previous truth 2.0, clamped to the
  // floor the 2.0-replay already set.
  EXPECT_DOUBLE_EQ(s3.sec, 2.0);
}

TEST(LieStamp, OneDrawPerCallKeepsStreamsAligned) {
  // Two different behaviors consume identical stream positions, so runs
  // differing only in behavior parameters stay stream-aligned.
  Rng a(17), b(17);
  ClockTime la{}, fa{}, lb{}, fb{};
  const AgentPlan constant = liar(Behavior::kLieConst, 0.01);
  const AgentPlan random = liar(Behavior::kLieRandom, 0.01);
  for (int i = 1; i <= 5; ++i) {
    lie_stamp(constant, 9, EventKind::kSend, ClockTime{double(i)}, 0, a, la,
              fa);
    lie_stamp(random, 9, EventKind::kSend, ClockTime{double(i)}, 0, b, lb,
              fb);
  }
  EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
}

TEST(LiePayloadStamp, EquivocationIsSignCoordinated) {
  // Peers above the liar are told one story, peers below the opposite, at
  // per-peer magnitudes inside [3/8, 1/2] of mag — the coordinated
  // adversary quorum validation exists for.
  AgentPlan a = liar(Behavior::kEquivocate, 0.08);
  a.pid = 2;
  for (ProcessorId peer : {0u, 1u, 3u, 4u}) {
    Rng rng(5);
    ClockTime last{};
    const ClockTime out =
        lie_payload_stamp(a, 9, ClockTime{10.0}, peer, rng, last);
    const double off = out.sec - 10.0;
    if (peer > a.pid)
      EXPECT_GT(off, 0.0) << "peer " << peer;
    else
      EXPECT_LT(off, 0.0) << "peer " << peer;
    EXPECT_GE(std::fabs(off), 0.375 * a.magnitude - 1e-12);
    EXPECT_LE(std::fabs(off), 0.5 * a.magnitude + 1e-12);
  }
}

TEST(LiePayloadStamp, InactiveWindowPassesTruthThrough) {
  AgentPlan a = liar(Behavior::kLieConst, 0.05);
  a.from = 5.0;
  a.until = 8.0;
  Rng rng(5);
  ClockTime last{};
  EXPECT_DOUBLE_EQ(
      lie_payload_stamp(a, 9, ClockTime{2.0}, 0, rng, last).sec, 2.0);
  EXPECT_DOUBLE_EQ(
      lie_payload_stamp(a, 9, ClockTime{6.0}, 0, rng, last).sec, 6.05);
  EXPECT_DOUBLE_EQ(
      lie_payload_stamp(a, 9, ClockTime{9.0}, 0, rng, last).sec, 9.0);
}

}  // namespace
}  // namespace cs::byz
