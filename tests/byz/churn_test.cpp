// Link churn (byz/churn.hpp): duty-cycle compilation into FaultPlan down
// windows, composition over existing plans, and the census regression —
// a disappeared link is absent, whatever stale traffic the window holds.

#include <gtest/gtest.h>

#include <vector>

#include "byz/churn.hpp"
#include "common/error.hpp"
#include "core/degraded.hpp"
#include "delaymodel/link_stats.hpp"
#include "support/builders.hpp"

namespace cs::byz {
namespace {

TEST(Churn, CompilesDutyCycleDownWindows) {
  const Topology topo = make_ring(4);
  ChurnSpec spec;
  spec.period = 10.0;
  spec.duty = 0.6;
  spec.horizon = 30.0;
  FaultPlan plan;
  apply_churn(spec, topo, plan);

  // Every link churns (links defaults to all); the duty cycle is exact, so
  // sampling the horizon finds each link dark (1 - duty) of the time.
  for (auto [a, b] : topo.links) {
    const LinkFaults& lf = plan.link_faults(a, b);
    ASSERT_FALSE(lf.down.empty());
    const int samples = 3000;
    int dark = 0;
    for (int i = 0; i < samples; ++i)
      if (lf.down_at(RealTime{spec.horizon * i / samples})) ++dark;
    EXPECT_NEAR(static_cast<double>(dark) / samples, 1.0 - spec.duty, 0.01);
  }
}

TEST(Churn, DeterministicAndPhaseStaggered) {
  const Topology topo = make_complete(5);
  ChurnSpec spec;
  spec.period = 8.0;
  spec.duty = 0.5;
  spec.horizon = 16.0;
  spec.links = 4;
  FaultPlan a, b;
  apply_churn(spec, topo, a);
  apply_churn(spec, topo, b);

  std::size_t churning = 0;
  bool phases_differ = false;
  double first_phase = -1.0;
  for (auto [p, q] : topo.links) {
    const LinkFaults& fa = a.link_faults(p, q);
    const LinkFaults& fb = b.link_faults(p, q);
    ASSERT_EQ(fa.down.size(), fb.down.size());
    for (std::size_t i = 0; i < fa.down.size(); ++i) {
      EXPECT_DOUBLE_EQ(fa.down[i].from.sec, fb.down[i].from.sec);
      EXPECT_DOUBLE_EQ(fa.down[i].until.sec, fb.down[i].until.sec);
    }
    if (!fa.down.empty()) {
      ++churning;
      if (first_phase < 0.0)
        first_phase = fa.down.front().from.sec;
      else if (fa.down.front().from.sec != first_phase)
        phases_differ = true;
    }
  }
  EXPECT_EQ(churning, 4u);
  EXPECT_TRUE(phases_differ);
}

TEST(Churn, LayersOverAnExistingPlanWithoutTouchingIt) {
  const Topology topo = make_ring(4);
  FaultPlan plan;
  plan.default_link.drop_probability = 0.1;
  plan.link(0, 1).duplicate_probability = 0.2;

  ChurnSpec spec;
  spec.period = 10.0;
  spec.duty = 0.5;
  spec.horizon = 20.0;
  apply_churn(spec, topo, plan);

  EXPECT_DOUBLE_EQ(plan.link_faults(0, 1).duplicate_probability, 0.2);
  EXPECT_DOUBLE_EQ(plan.link_faults(1, 2).drop_probability, 0.1);
  EXPECT_FALSE(plan.link_faults(0, 1).down.empty());
}

TEST(Churn, RejectsInvalidSpecs) {
  const Topology topo = make_ring(3);
  FaultPlan plan;
  ChurnSpec bad;
  bad.period = 5.0;
  bad.duty = 0.0;  // nothing would ever be up
  bad.horizon = 10.0;
  EXPECT_THROW(apply_churn(bad, topo, plan), Error);
  bad.duty = 1.5;
  EXPECT_THROW(apply_churn(bad, topo, plan), Error);
  bad.duty = 0.5;
  bad.horizon = 0.0;  // active churn with no horizon
  EXPECT_THROW(apply_churn(bad, topo, plan), Error);
}

TEST(Churn, LinksDownAtMatchesTheCompiledWindows) {
  const Topology topo = make_ring(4);
  ChurnSpec spec;
  spec.period = 10.0;
  spec.duty = 0.5;
  spec.horizon = 20.0;
  FaultPlan plan;
  apply_churn(spec, topo, plan);
  for (double t : {0.0, 3.0, 7.0, 12.0, 19.0}) {
    const std::vector<bool> down =
        links_down_at(plan, topo, RealTime{t});
    ASSERT_EQ(down.size(), topo.link_count());
    for (std::size_t i = 0; i < topo.link_count(); ++i) {
      const auto [a, b] = topo.links[i];
      EXPECT_EQ(down[i], plan.link_faults(a, b).down_at(RealTime{t}));
    }
  }
}

TEST(ChurnCensus, DisappearedLinkIsAbsentNotStale) {
  // Satellite regression: traffic still holds observations for a link that
  // churned dark — the census must report the link absent anyway, both
  // directions, rather than counting the stale window as coverage.
  const SystemModel model = test::bounded_model(make_complete(4), 0.0, 1.0);
  const SimResult sim = test::run_ping_pong(model, 31, 0.2);
  const std::vector<View> views = sim.execution.views();
  const LinkTraffic traffic = LinkTraffic::estimated_from_views(
      views, MatchPolicy::kDropOrphans);

  const LinkCoverage full = link_coverage(model, traffic);
  ASSERT_EQ(full.absent_directions, 0u);
  ASSERT_EQ(full.observed_directions, full.total_directions);

  std::vector<bool> down(model.topology().link_count(), false);
  down[2] = true;
  const LinkCoverage censored = link_coverage(model, traffic, down);
  EXPECT_EQ(censored.absent_directions, 2u);
  EXPECT_EQ(censored.observed_directions, full.observed_directions - 2);
  EXPECT_LT(censored.fraction(), 1.0);
}

}  // namespace
}  // namespace cs::byz
