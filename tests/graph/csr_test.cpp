// CSR core vs pointer-based Digraph: the algorithm ports must agree
// EXACTLY — not to tolerance — on Bellman–Ford distances, Karp cycle
// means, SCC partitions, Dijkstra distances and Johnson closures, for
// every golden model topology and a sweep of random ER/BA instances.
// Exact equality is what lets the CSR hot path replace the Digraph path
// underneath the golden-trace replay tests without re-pinning them.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "graph/arena.hpp"
#include "graph/csr.hpp"
#include "graph/cycle_mean.hpp"
#include "graph/dijkstra.hpp"
#include "graph/johnson.hpp"
#include "io/views_io.hpp"

#ifndef CS_TEST_DATA_DIR
#error "CS_TEST_DATA_DIR must point at tests/data"
#endif

namespace cs {
namespace {

constexpr const char* kGoldenModels[] = {
    "ring_5", "line_4",      "grid_3x3",    "torus_3x3", "toroid_3x3x3",
    "hypercube_3", "er_8_03", "ba_8_2",      "dc_2_2_2",
};

SystemModel load_golden(const std::string& name) {
  const std::string path =
      std::string(CS_TEST_DATA_DIR) + "/lab/" + name + ".model";
  std::ifstream is(path);
  EXPECT_TRUE(is.good()) << path;
  return load_model(is);
}

/// Directed graph over a golden topology with deterministic weights.
/// `mixed_sign` draws from [-0.3, 1.0] (exercises negative edges and the
/// occasional negative cycle); otherwise [0.0, 1.0] (Dijkstra-safe).
Digraph weighted_from_topology(const Topology& topo, Rng& rng,
                               bool mixed_sign) {
  Digraph g(topo.node_count);
  const auto draw = [&] {
    return mixed_sign ? rng.uniform(-0.3, 1.0) : rng.uniform(0.0, 1.0);
  };
  for (auto [a, b] : topo.links) {
    g.add_edge(a, b, draw());
    g.add_edge(b, a, draw());
  }
  return g;
}

Digraph random_er(Rng& rng, std::size_t n, double p, bool mixed_sign) {
  Digraph g(n);
  const auto draw = [&] {
    return mixed_sign ? rng.uniform(-0.3, 1.0) : rng.uniform(0.0, 1.0);
  };
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = 0; v < n; ++v)
      if (u != v && rng.uniform01() < p) g.add_edge(u, v, draw());
  return g;
}

Digraph random_ba(Rng& rng, std::size_t n, bool mixed_sign) {
  Digraph g(n);
  const auto draw = [&] {
    return mixed_sign ? rng.uniform(-0.3, 1.0) : rng.uniform(0.0, 1.0);
  };
  for (NodeId v = 1; v < n; ++v) {
    const std::size_t attach = v < 2 ? 1 : 2;
    for (std::size_t k = 0; k < attach; ++k) {
      const NodeId u = static_cast<NodeId>(rng.uniform_int(v));
      g.add_edge(u, v, draw());
      g.add_edge(v, u, draw());
    }
  }
  return g;
}

/// All the exact-agreement checks for one graph with possibly-negative
/// weights (Bellman–Ford, Karp, SCC, Johnson).
void expect_csr_matches_digraph(const Digraph& g, const std::string& what) {
  const CsrGraph csr(g);
  const CsrView view = csr.view();
  ASSERT_EQ(view.node_count(), g.node_count()) << what;
  ASSERT_EQ(view.arc_count(), g.edge_count()) << what;

  // SCC partition: identical component ids, not merely the same partition.
  const SccResult a = strongly_connected_components(g);
  const SccResult b = strongly_connected_components_csr(view);
  EXPECT_EQ(a.component_count, b.component_count) << what;
  EXPECT_EQ(a.component, b.component) << what;

  // Karp min cycle mean, with and without a caller arena.
  const std::optional<double> karp_ref = min_cycle_mean_karp(g);
  EpochArena arena;
  const std::optional<double> karp_csr =
      min_cycle_mean_karp_csr(view, &arena);
  ASSERT_EQ(karp_ref.has_value(), karp_csr.has_value()) << what;
  if (karp_ref) EXPECT_EQ(*karp_ref, *karp_csr) << what;
  EXPECT_EQ(min_cycle_mean_karp_csr(view), karp_csr) << what;

  // Bellman–Ford distances from every source (negative-cycle verdicts must
  // agree too).
  for (NodeId s = 0; s < g.node_count(); ++s) {
    const auto ref = bellman_ford(g, s);
    const auto got = bellman_ford_csr(view, s);
    ASSERT_EQ(ref.has_value(), got.has_value()) << what << " source " << s;
    if (ref) EXPECT_EQ(ref->dist, *got) << what << " source " << s;
  }

  // Johnson closure: the arena variant must reproduce johnson() exactly.
  const auto ref_m = johnson(g);
  DistanceMatrix got_m;
  arena.reset();
  const bool ok = johnson_into(g, got_m, arena);
  ASSERT_EQ(ref_m.has_value(), ok) << what;
  if (ref_m) {
    const std::size_t n = g.node_count();
    ASSERT_EQ(got_m.size(), n) << what;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        EXPECT_EQ(ref_m->at(i, j), got_m.at(i, j))
            << what << " (" << i << "," << j << ")";
  }
}

/// Dijkstra agreement for one non-negative graph.
void expect_dijkstra_matches(const Digraph& g, const std::string& what) {
  const CsrGraph csr(g);
  const CsrView view = csr.view();
  const std::size_t n = g.node_count();
  std::vector<double> dist(n);
  std::vector<std::pair<double, NodeId>> heap;
  for (NodeId s = 0; s < n; ++s) {
    const ShortestPaths ref = dijkstra(g, s);
    dijkstra_csr(view, s, dist, heap);
    EXPECT_EQ(ref.dist, dist) << what << " source " << s;
  }
}

/// (from, to, weight) multiset equality between the forward and transpose
/// views — the transpose must be a pure re-grouping of the same arcs.
void expect_transpose_consistent(const Digraph& g, const std::string& what) {
  const CsrGraph csr(g);
  using Arc = std::tuple<NodeId, NodeId, double>;
  std::vector<Arc> fwd, rev;
  const CsrView f = csr.view();
  const CsrView t = csr.transpose();
  ASSERT_EQ(f.arc_count(), t.arc_count()) << what;
  for (NodeId v = 0; v < f.node_count(); ++v)
    for (std::uint32_t a = f.row_ptr[v]; a < f.row_ptr[v + 1]; ++a)
      fwd.emplace_back(v, f.head[a], f.weight[a]);
  for (NodeId v = 0; v < t.node_count(); ++v)
    for (std::uint32_t a = t.row_ptr[v]; a < t.row_ptr[v + 1]; ++a)
      rev.emplace_back(t.head[a], v, t.weight[a]);  // head is the SOURCE here
  std::sort(fwd.begin(), fwd.end());
  std::sort(rev.begin(), rev.end());
  EXPECT_EQ(fwd, rev) << what;
}

TEST(CsrEquivalence, GoldenModelTopologies) {
  Rng rng(20260808);
  for (const char* name : kGoldenModels) {
    const SystemModel model = load_golden(name);
    expect_csr_matches_digraph(
        weighted_from_topology(model.topology(), rng, true), name);
    expect_dijkstra_matches(
        weighted_from_topology(model.topology(), rng, false), name);
    expect_transpose_consistent(
        weighted_from_topology(model.topology(), rng, true), name);
  }
}

TEST(CsrEquivalence, RandomErdosRenyiInstances) {
  Rng rng(7);
  for (int t = 0; t < 50; ++t) {
    const std::size_t n = 3 + rng.uniform_int(22);
    const double p = 0.08 + 0.4 * rng.uniform01();
    const std::string what = "er#" + std::to_string(t);
    expect_csr_matches_digraph(random_er(rng, n, p, true), what);
    expect_dijkstra_matches(random_er(rng, n, p, false), what);
  }
}

TEST(CsrEquivalence, RandomPreferentialAttachmentInstances) {
  Rng rng(11);
  for (int t = 0; t < 50; ++t) {
    const std::size_t n = 3 + rng.uniform_int(30);
    const std::string what = "ba#" + std::to_string(t);
    expect_csr_matches_digraph(random_ba(rng, n, true), what);
    expect_dijkstra_matches(random_ba(rng, n, false), what);
    expect_transpose_consistent(random_ba(rng, n, true), what);
  }
}

TEST(CsrEquivalence, EmptyAndSingletonGraphs) {
  expect_csr_matches_digraph(Digraph(0), "empty");
  expect_csr_matches_digraph(Digraph(1), "singleton");
  Digraph self_loop(1);
  self_loop.add_edge(0, 0, -0.5);
  expect_csr_matches_digraph(self_loop, "self-loop");
}

TEST(EpochArenaTest, ResetRetainsCapacityAcrossEpochs) {
  Rng rng(3);
  const Digraph g = random_er(rng, 24, 0.3, true);
  const CsrGraph csr(g);
  EpochArena arena;

  const auto first = min_cycle_mean_karp_csr(csr.view(), &arena);
  const std::size_t reserved = arena.bytes_reserved();
  EXPECT_GT(reserved, 0u);
  for (int epoch = 0; epoch < 10; ++epoch) {
    arena.reset();
    EXPECT_EQ(min_cycle_mean_karp_csr(csr.view(), &arena), first);
    // Same allocation pattern after reset() => no new chunks, ever.
    EXPECT_EQ(arena.bytes_reserved(), reserved);
  }
}

TEST(EpochArenaTest, AllocFillAndAlignment) {
  EpochArena arena;
  const std::span<double> a = arena.alloc_fill<double>(7, 1.5);
  const std::span<std::uint32_t> b = arena.alloc_fill<std::uint32_t>(3, 9);
  const std::span<double> c = arena.alloc<double>(1000000);  // forces growth
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a.data()) % alignof(double), 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c.data()) % alignof(double), 0u);
  for (double x : a) EXPECT_EQ(x, 1.5);
  for (std::uint32_t x : b) EXPECT_EQ(x, 9u);
  // Earlier allocations stay intact after growth into a new chunk.
  EXPECT_EQ(a[0], 1.5);
  EXPECT_EQ(b[2], 9u);
}

}  // namespace
}  // namespace cs
