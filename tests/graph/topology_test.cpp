#include "graph/topology.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"

namespace cs {
namespace {

void expect_well_formed(const Topology& t) {
  std::set<std::pair<NodeId, NodeId>> seen;
  for (auto [a, b] : t.links) {
    EXPECT_LT(a, b) << "links must be canonically ordered";
    EXPECT_LT(b, t.node_count);
    EXPECT_TRUE(seen.insert({a, b}).second) << "duplicate link";
  }
}

TEST(Topology, Line) {
  const Topology t = make_line(5);
  EXPECT_EQ(t.node_count, 5u);
  EXPECT_EQ(t.link_count(), 4u);
  EXPECT_TRUE(t.connected());
  expect_well_formed(t);
}

TEST(Topology, Ring) {
  const Topology t = make_ring(6);
  EXPECT_EQ(t.link_count(), 6u);
  EXPECT_TRUE(t.connected());
  expect_well_formed(t);
  const auto adj = t.adjacency();
  for (const auto& nbrs : adj) EXPECT_EQ(nbrs.size(), 2u);
}

TEST(Topology, Star) {
  const Topology t = make_star(7);
  EXPECT_EQ(t.link_count(), 6u);
  EXPECT_TRUE(t.connected());
  EXPECT_EQ(t.adjacency()[0].size(), 6u);
  expect_well_formed(t);
}

TEST(Topology, Complete) {
  const Topology t = make_complete(6);
  EXPECT_EQ(t.link_count(), 15u);
  EXPECT_TRUE(t.connected());
  expect_well_formed(t);
}

TEST(Topology, Grid) {
  const Topology t = make_grid(3, 4);
  EXPECT_EQ(t.node_count, 12u);
  EXPECT_EQ(t.link_count(), 3u * 3 + 2u * 4);  // 2*w*h - w - h
  EXPECT_TRUE(t.connected());
  expect_well_formed(t);
}

TEST(Topology, RandomTree) {
  Rng rng(3);
  const Topology t = make_random_tree(20, rng);
  EXPECT_EQ(t.link_count(), 19u);
  EXPECT_TRUE(t.connected());
  expect_well_formed(t);
}

TEST(Topology, ConnectedGnp) {
  Rng rng(4);
  for (double p : {0.0, 0.3, 1.0}) {
    const Topology t = make_connected_gnp(12, p, rng);
    EXPECT_TRUE(t.connected());
    EXPECT_GE(t.link_count(), 11u);
    expect_well_formed(t);
  }
  const Topology full = make_connected_gnp(6, 1.0, rng);
  EXPECT_EQ(full.link_count(), 15u);
}

TEST(Topology, Wan) {
  Rng rng(5);
  const Topology t = make_wan(30, 5, rng);
  EXPECT_EQ(t.node_count, 30u);
  EXPECT_TRUE(t.connected());
  expect_well_formed(t);
}

TEST(Topology, SingleAndTwoNodeEdgeCases) {
  EXPECT_TRUE(make_line(1).connected());
  EXPECT_EQ(make_line(1).link_count(), 0u);
  EXPECT_TRUE(make_line(2).connected());
  EXPECT_TRUE(make_star(2).connected());
  EXPECT_TRUE(make_complete(1).connected());
}

TEST(Topology, DisconnectedDetected) {
  Topology t{4, {{0, 1}, {2, 3}}};
  EXPECT_FALSE(t.connected());
}

TEST(Topology, MakeNamed) {
  Rng rng(6);
  for (const char* name :
       {"line", "ring", "star", "complete", "grid", "tree", "gnp", "wan"}) {
    const Topology t = make_named(name, 12, rng);
    EXPECT_TRUE(t.connected()) << name;
    EXPECT_GE(t.node_count, 12u) << name;
  }
  EXPECT_THROW(make_named("moebius", 12, rng), Error);
}

}  // namespace
}  // namespace cs
