#include "graph/cycle_mean.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace cs {
namespace {

TEST(CycleMean, AcyclicHasNone) {
  Digraph g(3);
  g.add_edge(0, 1, 5.0);
  g.add_edge(1, 2, -3.0);
  EXPECT_FALSE(max_cycle_mean_karp(g).has_value());
  EXPECT_FALSE(max_cycle_mean_bsearch(g).has_value());
  EXPECT_FALSE(max_cycle_mean_brute(g).has_value());
}

TEST(CycleMean, SelfLoop) {
  Digraph g(2);
  g.add_edge(0, 0, 4.0);
  g.add_edge(0, 1, 100.0);
  const auto m = max_cycle_mean_karp(g);
  ASSERT_TRUE(m.has_value());
  EXPECT_DOUBLE_EQ(*m, 4.0);
}

TEST(CycleMean, TwoCycle) {
  Digraph g(2);
  g.add_edge(0, 1, 3.0);
  g.add_edge(1, 0, 5.0);
  const auto m = max_cycle_mean_karp(g);
  ASSERT_TRUE(m.has_value());
  EXPECT_DOUBLE_EQ(*m, 4.0);
}

TEST(CycleMean, PicksBestOfTwoCycles) {
  // Cycle A: 0-1 mean 2; cycle B: 2-3 mean 6.
  Digraph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 0, 3.0);
  g.add_edge(2, 3, 5.0);
  g.add_edge(3, 2, 7.0);
  g.add_edge(1, 2, -100.0);
  const auto m = max_cycle_mean_karp(g);
  ASSERT_TRUE(m.has_value());
  EXPECT_DOUBLE_EQ(*m, 6.0);
}

TEST(CycleMean, LongCycleBeatsShort) {
  // Triangle with mean 10 vs 2-cycle with mean 9.
  Digraph g(3);
  g.add_edge(0, 1, 10.0);
  g.add_edge(1, 2, 10.0);
  g.add_edge(2, 0, 10.0);
  g.add_edge(0, 2, 8.0);  // with 2->0: mean 9
  const auto m = max_cycle_mean_karp(g);
  ASSERT_TRUE(m.has_value());
  EXPECT_DOUBLE_EQ(*m, 10.0);
}

TEST(CycleMean, NegativeWeights) {
  Digraph g(2);
  g.add_edge(0, 1, -3.0);
  g.add_edge(1, 0, -5.0);
  const auto m = max_cycle_mean_karp(g);
  ASSERT_TRUE(m.has_value());
  EXPECT_DOUBLE_EQ(*m, -4.0);
}

TEST(CycleMean, MinIsNegatedMaxOfNegation) {
  Digraph g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 0, 4.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 1, 1.0);
  const auto mn = min_cycle_mean_karp(g);
  ASSERT_TRUE(mn.has_value());
  EXPECT_DOUBLE_EQ(*mn, 1.0);
}

class CycleMeanRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CycleMeanRandom, KarpMatchesBruteForce) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 2 + rng.uniform_int(6);
    Digraph g(n);
    const std::size_t edges = 1 + rng.uniform_int(2 * n);
    for (std::size_t e = 0; e < edges; ++e)
      g.add_edge(static_cast<NodeId>(rng.uniform_int(n)),
                 static_cast<NodeId>(rng.uniform_int(n)),
                 rng.uniform(-10.0, 10.0));
    const auto brute = max_cycle_mean_brute(g);
    const auto karp = max_cycle_mean_karp(g);
    ASSERT_EQ(brute.has_value(), karp.has_value());
    if (brute) {
      EXPECT_NEAR(*brute, *karp, 1e-9);
    }
  }
}

TEST_P(CycleMeanRandom, BsearchMatchesKarp) {
  Rng rng(GetParam() ^ 0xabcdef);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 2 + rng.uniform_int(8);
    Digraph g(n);
    // Guarantee at least one cycle via a ring, then add noise edges.
    for (NodeId v = 0; v < n; ++v)
      g.add_edge(v, static_cast<NodeId>((v + 1) % n), rng.uniform(-5.0, 5.0));
    for (std::size_t e = 0; e < n; ++e)
      g.add_edge(static_cast<NodeId>(rng.uniform_int(n)),
                 static_cast<NodeId>(rng.uniform_int(n)),
                 rng.uniform(-5.0, 5.0));
    const auto karp = max_cycle_mean_karp(g);
    const auto bs = max_cycle_mean_bsearch(g, 1e-10);
    ASSERT_TRUE(karp.has_value());
    ASSERT_TRUE(bs.has_value());
    EXPECT_NEAR(*karp, *bs, 1e-7);
  }
}

TEST_P(CycleMeanRandom, HowardMatchesBruteForce) {
  Rng rng(GetParam() ^ 0x5eed);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 2 + rng.uniform_int(6);
    Digraph g(n);
    const std::size_t edges = 1 + rng.uniform_int(2 * n);
    for (std::size_t e = 0; e < edges; ++e)
      g.add_edge(static_cast<NodeId>(rng.uniform_int(n)),
                 static_cast<NodeId>(rng.uniform_int(n)),
                 rng.uniform(-10.0, 10.0));
    const auto brute = max_cycle_mean_brute(g);
    const auto howard = max_cycle_mean_howard(g);
    ASSERT_EQ(brute.has_value(), howard.has_value());
    if (brute) {
      EXPECT_NEAR(*brute, *howard, 1e-9);
    }
  }
}

TEST_P(CycleMeanRandom, HowardMatchesKarpOnDenseGraphs) {
  Rng rng(GetParam() * 77 + 5);
  for (int trial = 0; trial < 5; ++trial) {
    const std::size_t n = 4 + rng.uniform_int(12);
    Digraph g(n);
    for (NodeId p = 0; p < n; ++p)
      for (NodeId q = 0; q < n; ++q)
        if (p != q) g.add_edge(p, q, rng.uniform(-5.0, 5.0));
    const auto karp = max_cycle_mean_karp(g);
    const auto howard = max_cycle_mean_howard(g);
    ASSERT_TRUE(karp && howard);
    EXPECT_NEAR(*karp, *howard, 1e-9);
  }
}

TEST(CycleMean, HowardHandlesSelfLoopsAndComponents) {
  Digraph g(4);
  g.add_edge(0, 0, 4.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 1, 7.0);
  // Node 3 isolated: no cycle through it.
  const auto m = max_cycle_mean_howard(g);
  ASSERT_TRUE(m.has_value());
  EXPECT_DOUBLE_EQ(*m, 4.0);
}

TEST(CycleMean, HowardAcyclicHasNone) {
  Digraph g(3);
  g.add_edge(0, 1, 5.0);
  g.add_edge(1, 2, 5.0);
  EXPECT_FALSE(max_cycle_mean_howard(g).has_value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CycleMeanRandom,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(CycleMean, DisconnectedComponentsBothConsidered) {
  Digraph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 0, 1.0);
  g.add_edge(2, 3, 9.0);
  g.add_edge(3, 2, 9.0);
  const auto m = max_cycle_mean_karp(g);
  ASSERT_TRUE(m.has_value());
  EXPECT_DOUBLE_EQ(*m, 9.0);
}

}  // namespace
}  // namespace cs
