#include "graph/scc.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"

namespace cs {
namespace {

TEST(Scc, SingleNode) {
  const Digraph g(1);
  const SccResult r = strongly_connected_components(g);
  EXPECT_EQ(r.component_count, 1u);
  EXPECT_EQ(r.component[0], 0u);
}

TEST(Scc, TwoCycles) {
  // {0,1} and {2,3} cycles joined by 1->2.
  Digraph g(4);
  g.add_edge(0, 1, 0);
  g.add_edge(1, 0, 0);
  g.add_edge(2, 3, 0);
  g.add_edge(3, 2, 0);
  g.add_edge(1, 2, 0);
  const SccResult r = strongly_connected_components(g);
  EXPECT_EQ(r.component_count, 2u);
  EXPECT_EQ(r.component[0], r.component[1]);
  EXPECT_EQ(r.component[2], r.component[3]);
  EXPECT_NE(r.component[0], r.component[2]);
  // Reverse topological order: the edge 1->2 goes from higher to lower id.
  EXPECT_GT(r.component[1], r.component[2]);
}

TEST(Scc, AcyclicAllSingletons) {
  Digraph g(4);
  g.add_edge(0, 1, 0);
  g.add_edge(1, 2, 0);
  g.add_edge(2, 3, 0);
  const SccResult r = strongly_connected_components(g);
  EXPECT_EQ(r.component_count, 4u);
}

TEST(Scc, FullCycleOneComponent) {
  Digraph g(5);
  for (NodeId v = 0; v < 5; ++v) g.add_edge(v, (v + 1) % 5, 0);
  const SccResult r = strongly_connected_components(g);
  EXPECT_EQ(r.component_count, 1u);
}

TEST(Scc, MembersGroupsEveryNodeOnce) {
  Digraph g(6);
  g.add_edge(0, 1, 0);
  g.add_edge(1, 0, 0);
  g.add_edge(2, 3, 0);
  const SccResult r = strongly_connected_components(g);
  const auto groups = r.members();
  std::size_t total = 0;
  for (const auto& grp : groups) total += grp.size();
  EXPECT_EQ(total, 6u);
  for (std::size_t c = 0; c < groups.size(); ++c)
    for (NodeId v : groups[c]) EXPECT_EQ(r.component[v], c);
}

/// Brute-force mutual reachability oracle.
std::vector<std::vector<bool>> reachability(const Digraph& g) {
  const std::size_t n = g.node_count();
  std::vector<std::vector<bool>> r(n, std::vector<bool>(n, false));
  for (NodeId s = 0; s < n; ++s) {
    std::vector<NodeId> stack{s};
    r[s][s] = true;
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (EdgeId e : g.out_edges(v)) {
        const NodeId w = g.edge(e).to;
        if (!r[s][w]) {
          r[s][w] = true;
          stack.push_back(w);
        }
      }
    }
  }
  return r;
}

TEST(Scc, RandomGraphsMatchReachabilityOracle) {
  Rng rng(31);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 2 + rng.uniform_int(8);
    Digraph g(n);
    const std::size_t edges = rng.uniform_int(3 * n);
    for (std::size_t e = 0; e < edges; ++e)
      g.add_edge(static_cast<NodeId>(rng.uniform_int(n)),
                 static_cast<NodeId>(rng.uniform_int(n)), 0.0);
    const SccResult scc = strongly_connected_components(g);
    const auto reach = reachability(g);
    for (NodeId u = 0; u < n; ++u)
      for (NodeId v = 0; v < n; ++v) {
        const bool same = scc.component[u] == scc.component[v];
        const bool mutual = reach[u][v] && reach[v][u];
        EXPECT_EQ(same, mutual) << "nodes " << u << "," << v;
      }
  }
}

}  // namespace
}  // namespace cs
