// Shortest-path predecessor chains: the `pred` fields of Bellman-Ford and
// Dijkstra must reconstruct paths whose weights equal the distances.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/bellman_ford.hpp"
#include "graph/dijkstra.hpp"

namespace cs {
namespace {

/// Walks pred[] from `target` back to `source`; returns the path weight,
/// or nullopt if the chain is broken.
std::optional<double> walk_back(const Digraph& g, const ShortestPaths& sp,
                                NodeId source, NodeId target) {
  double total = 0.0;
  NodeId cur = target;
  std::size_t hops = 0;
  while (cur != source) {
    if (!sp.pred[cur] || ++hops > g.node_count()) return std::nullopt;
    const Edge& e = g.edge(*sp.pred[cur]);
    if (e.to != cur) return std::nullopt;
    total += e.weight;
    cur = e.from;
  }
  return total;
}

TEST(PathReconstruction, BellmanFordChainsAreConsistent) {
  Rng rng(91);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = 3 + rng.uniform_int(8);
    std::vector<double> h(n);
    for (auto& x : h) x = rng.uniform(-5.0, 5.0);
    Digraph g(n);
    for (std::size_t e = 0; e < 4 * n; ++e) {
      const auto u = static_cast<NodeId>(rng.uniform_int(n));
      const auto v = static_cast<NodeId>(rng.uniform_int(n));
      if (u == v) continue;
      g.add_edge(u, v, rng.uniform(0.0, 3.0) + h[v] - h[u]);
    }
    const auto sp = bellman_ford(g, 0);
    ASSERT_TRUE(sp.has_value());
    for (NodeId v = 1; v < n; ++v) {
      if (sp->dist[v] == kInfDist) {
        EXPECT_FALSE(sp->pred[v].has_value());
        continue;
      }
      const auto w = walk_back(g, *sp, 0, v);
      ASSERT_TRUE(w.has_value()) << "broken chain at " << v;
      EXPECT_NEAR(*w, sp->dist[v], 1e-9);
    }
  }
}

TEST(PathReconstruction, DijkstraChainsAreConsistent) {
  Rng rng(92);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = 3 + rng.uniform_int(8);
    Digraph g(n);
    for (std::size_t e = 0; e < 4 * n; ++e) {
      const auto u = static_cast<NodeId>(rng.uniform_int(n));
      const auto v = static_cast<NodeId>(rng.uniform_int(n));
      if (u == v) continue;
      // Include zero-weight edges: a classic tie-handling trap.
      g.add_edge(u, v, rng.uniform01() < 0.2 ? 0.0 : rng.uniform(0.0, 3.0));
    }
    const ShortestPaths sp = dijkstra(g, 0);
    for (NodeId v = 1; v < n; ++v) {
      if (sp.dist[v] == kInfDist) continue;
      const auto w = walk_back(g, sp, 0, v);
      ASSERT_TRUE(w.has_value());
      EXPECT_NEAR(*w, sp.dist[v], 1e-12);
    }
  }
}

TEST(PathReconstruction, SourcePredIsEmpty) {
  Digraph g(2);
  g.add_edge(0, 1, 1.0);
  const auto bf = bellman_ford(g, 0);
  EXPECT_FALSE(bf->pred[0].has_value());
  const auto dj = dijkstra(g, 0);
  EXPECT_FALSE(dj.pred[0].has_value());
}

}  // namespace
}  // namespace cs
