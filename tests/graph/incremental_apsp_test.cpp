#include "graph/incremental_apsp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "graph/johnson.hpp"

namespace cs {
namespace {

void expect_matrices_match(const DistanceMatrix& got,
                           const DistanceMatrix& want, double tol = 1e-12) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    for (std::size_t j = 0; j < got.size(); ++j) {
      const double a = got.at(i, j);
      const double b = want.at(i, j);
      if (a == kInfDist || b == kInfDist) {
        EXPECT_EQ(a, b) << "(" << i << "," << j << ")";
      } else {
        EXPECT_NEAR(a, b, tol) << "(" << i << "," << j << ")";
      }
    }
}

Digraph diamond() {
  Digraph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 2, 4.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(1, 3, 6.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(3, 0, 2.0);
  return g;
}

TEST(IncrementalApsp, ColdUpdateEqualsRebuild) {
  const Digraph g = diamond();
  IncrementalApsp inc;
  ASSERT_TRUE(inc.update(g));
  EXPECT_FALSE(inc.last_step().incremental);  // cold start = rebuild
  expect_matrices_match(inc.distances(), *johnson(g));
}

TEST(IncrementalApsp, EdgeDecreaseIsIncrementalAndExact) {
  Digraph g = diamond();
  IncrementalApsp inc;
  ASSERT_TRUE(inc.update(g));

  g.set_weight(1, 0.5);  // 0->2 cheaper
  ASSERT_TRUE(inc.update(g));
  EXPECT_TRUE(inc.last_step().incremental);
  EXPECT_EQ(inc.last_step().decreased_edges, 1u);
  EXPECT_EQ(inc.last_step().increased_edges, 0u);
  expect_matrices_match(inc.distances(), *johnson(g));
}

TEST(IncrementalApsp, EdgeIncreaseRecomputesOnlyAffectedRows) {
  Digraph g = diamond();
  // Threshold of 1.0: never fall back, exercise the restricted recompute.
  IncrementalApsp inc(IncrementalApspOptions{/*max_dirty_fraction=*/1.0});
  ASSERT_TRUE(inc.update(g));

  g.set_weight(0, 9.0);  // 0->1 was on shortest paths out of 0 and 3
  ASSERT_TRUE(inc.update(g));
  EXPECT_TRUE(inc.last_step().incremental);
  EXPECT_EQ(inc.last_step().increased_edges, 1u);
  EXPECT_GT(inc.last_step().dirty_rows, 0u);
  expect_matrices_match(inc.distances(), *johnson(g));
}

TEST(IncrementalApsp, EdgeRemovalSplitsReachability) {
  Digraph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 0, 1.0);
  IncrementalApsp inc;
  ASSERT_TRUE(inc.update(g));
  EXPECT_EQ(inc.distances().at(2, 1), 2.0);

  Digraph cut(3);  // drop 2->0: node 2 can no longer reach anyone
  cut.add_edge(0, 1, 1.0);
  cut.add_edge(1, 2, 1.0);
  ASSERT_TRUE(inc.update(cut));
  expect_matrices_match(inc.distances(), *johnson(cut));
  EXPECT_EQ(inc.distances().at(2, 0), kInfDist);
  EXPECT_EQ(inc.distances().at(2, 1), kInfDist);
  EXPECT_EQ(inc.distances().at(2, 2), 0.0);
}

TEST(IncrementalApsp, EdgeInsertionConnectsComponents) {
  Digraph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 0, 1.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(3, 2, 1.0);
  IncrementalApsp inc;
  ASSERT_TRUE(inc.update(g));
  EXPECT_EQ(inc.distances().at(0, 3), kInfDist);

  g.add_edge(1, 2, 0.5);
  ASSERT_TRUE(inc.update(g));
  EXPECT_TRUE(inc.last_step().incremental);
  expect_matrices_match(inc.distances(), *johnson(g));
  EXPECT_NEAR(inc.distances().at(0, 3), 2.5, 1e-12);
}

TEST(IncrementalApsp, NegativeWeightsSupported) {
  Digraph g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, -1.0);
  g.add_edge(2, 0, 0.5);
  IncrementalApsp inc;
  ASSERT_TRUE(inc.update(g));
  expect_matrices_match(inc.distances(), *johnson(g));

  g.set_weight(0, 0.6);  // decrease; cycle weight stays 0.6-1.0+0.5 = 0.1
  ASSERT_TRUE(inc.update(g));
  expect_matrices_match(inc.distances(), *johnson(g));
}

TEST(IncrementalApsp, DecreaseCreatingNegativeCycleIsRejected) {
  Digraph g(2);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 0, 1.0);
  IncrementalApsp inc;
  ASSERT_TRUE(inc.update(g));

  g.set_weight(0, -2.0);  // cycle weight -1
  EXPECT_FALSE(inc.update(g));
  EXPECT_FALSE(inc.valid());

  // Recovery: a consistent graph rebuilds cleanly.
  g.set_weight(0, 1.0);
  ASSERT_TRUE(inc.update(g));
  EXPECT_TRUE(inc.valid());
  expect_matrices_match(inc.distances(), *johnson(g));
}

TEST(IncrementalApsp, NodeCountChangeFallsBackToRebuild) {
  IncrementalApsp inc;
  ASSERT_TRUE(inc.update(diamond()));
  Digraph bigger(5);
  bigger.add_edge(0, 4, 1.0);
  ASSERT_TRUE(inc.update(bigger));
  EXPECT_FALSE(inc.last_step().incremental);
  expect_matrices_match(inc.distances(), *johnson(bigger));
}

TEST(IncrementalApsp, LargeDeltaFallsBackToRebuild) {
  Rng rng(11);
  const std::size_t n = 12;
  Digraph g(n);
  for (NodeId v = 0; v < n; ++v)
    g.add_edge(v, static_cast<NodeId>((v + 1) % n), rng.uniform(0.1, 1.0));
  IncrementalApsp inc(IncrementalApspOptions{/*max_dirty_fraction=*/0.25});
  ASSERT_TRUE(inc.update(g));

  // Increase every ring edge: all rows dirty, way past the threshold.
  Digraph heavier(n);
  for (const Edge& e : g.edges())
    heavier.add_edge(e.from, e.to, e.weight + 1.0);
  Metrics metrics;
  inc.set_metrics(&metrics);
  ASSERT_TRUE(inc.update(heavier));
  EXPECT_FALSE(inc.last_step().incremental);
  EXPECT_EQ(metrics.counter("apsp.dirty_fallbacks"), 1u);
  expect_matrices_match(inc.distances(), *johnson(heavier));
}

TEST(IncrementalApsp, MetricsCountersTrackUpdateKinds) {
  Metrics metrics;
  IncrementalApsp inc(IncrementalApspOptions{}, &metrics);
  Digraph g = diamond();
  ASSERT_TRUE(inc.update(g));              // rebuild
  g.set_weight(2, 0.25);                   // decrease -> incremental
  ASSERT_TRUE(inc.update(g));
  EXPECT_EQ(metrics.counter("apsp.full_rebuilds"), 1u);
  EXPECT_EQ(metrics.counter("apsp.incremental_updates"), 1u);
}

using Path = IncrementalApsp::StepStats::Path;

/// Counter-accounting audit: exactly one Path per call, pinned per
/// perturbation type, with the counters ticking in lockstep.  This is the
/// regression net for the "from_scratch_runs: 50 / incremental_hit_rate: 0"
/// question in BENCH_pipeline.json's from-scratch arms: those arms never
/// call update() at all (they run global_shift_estimates, which ticks
/// "apsp.from_scratch_runs"), so an IncrementalApsp driven through update()
/// must never tick that counter — asserted below.
TEST(IncrementalApspPath, EveryBranchReportsItsPath) {
  Metrics metrics;
  IncrementalApsp inc(IncrementalApspOptions{}, &metrics);
  EXPECT_EQ(inc.last_step().path, Path::kNone);

  // Cold start.
  Digraph g = diamond();
  ASSERT_TRUE(inc.update(g));
  EXPECT_EQ(inc.last_step().path, Path::kColdBuild);
  EXPECT_EQ(metrics.counter("apsp.full_rebuilds"), 1u);

  // Identical graph: empty delta.
  ASSERT_TRUE(inc.update(g));
  EXPECT_EQ(inc.last_step().path, Path::kNoChange);
  EXPECT_EQ(metrics.counter("apsp.incremental_updates"), 1u);

  // Single decrease: in-place delta.
  g.set_weight(2, 0.25);
  ASSERT_TRUE(inc.update(g));
  EXPECT_EQ(inc.last_step().path, Path::kIncremental);
  EXPECT_EQ(metrics.counter("apsp.incremental_updates"), 2u);

  // Node count change.
  Digraph bigger(5);
  bigger.add_edge(0, 4, 1.0);
  ASSERT_TRUE(inc.update(bigger));
  EXPECT_EQ(inc.last_step().path, Path::kResizeBuild);
  EXPECT_EQ(metrics.counter("apsp.full_rebuilds"), 2u);

  // Direct rebuild.
  ASSERT_TRUE(inc.rebuild(bigger));
  EXPECT_EQ(inc.last_step().path, Path::kExplicitRebuild);
  EXPECT_EQ(metrics.counter("apsp.full_rebuilds"), 3u);

  // Driving the delta path never ticks the from-scratch pipeline counter:
  // that one belongs to global_shift_estimates (see BENCH_pipeline.json).
  EXPECT_EQ(metrics.counter("apsp.from_scratch_runs"), 0u);
}

TEST(IncrementalApspPath, DirtyFallbackReportsItsPathAndBothCounters) {
  Metrics metrics;
  Rng rng(17);
  const std::size_t n = 12;
  Digraph g(n);
  for (NodeId v = 0; v < n; ++v)
    g.add_edge(v, static_cast<NodeId>((v + 1) % n), rng.uniform(0.1, 1.0));
  IncrementalApsp inc(IncrementalApspOptions{/*max_dirty_fraction=*/0.25},
                      &metrics);
  ASSERT_TRUE(inc.update(g));
  EXPECT_EQ(inc.last_step().path, Path::kColdBuild);

  Digraph heavier(n);
  for (const Edge& e : g.edges())
    heavier.add_edge(e.from, e.to, e.weight + 1.0);
  ASSERT_TRUE(inc.update(heavier));
  EXPECT_EQ(inc.last_step().path, Path::kDirtyFallback);
  EXPECT_EQ(metrics.counter("apsp.dirty_fallbacks"), 1u);
  EXPECT_EQ(metrics.counter("apsp.full_rebuilds"), 2u);  // cold + fallback
  EXPECT_EQ(metrics.counter("apsp.incremental_updates"), 0u);
}

TEST(IncrementalApspPath, IncreaseWithinThresholdStaysIncremental) {
  IncrementalApsp inc(IncrementalApspOptions{/*max_dirty_fraction=*/1.0});
  Digraph g = diamond();
  ASSERT_TRUE(inc.update(g));
  g.set_weight(0, 9.0);
  ASSERT_TRUE(inc.update(g));
  EXPECT_EQ(inc.last_step().path, Path::kIncremental);
  EXPECT_GT(inc.last_step().dirty_rows, 0u);
}

/// Randomized equivalence sweep: random sparse digraphs under random
/// single-edge perturbations (reweight both ways, remove, insert) must track
/// the from-scratch closure exactly.
TEST(IncrementalApspProperty, RandomPerturbationSequencesMatchJohnson) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    Rng rng(1000 + seed);
    const std::size_t n = 4 + rng.uniform_int(12);
    // Base: a ring (guaranteed cycle) plus random chords.
    std::vector<Edge> edges;
    for (NodeId v = 0; v < n; ++v)
      edges.push_back(
          {v, static_cast<NodeId>((v + 1) % n), rng.uniform(0.1, 1.0)});
    const std::size_t chords = rng.uniform_int(2 * n);
    for (std::size_t c = 0; c < chords; ++c) {
      const NodeId a = static_cast<NodeId>(rng.uniform_int(n));
      const NodeId b = static_cast<NodeId>(rng.uniform_int(n));
      if (a != b) edges.push_back({a, b, rng.uniform(0.1, 1.0)});
    }

    auto build = [&] {
      Digraph g(n);
      for (const Edge& e : edges) g.add_edge(e.from, e.to, e.weight);
      return g;
    };

    // Odd seeds force the restricted recompute path even for huge deltas;
    // even seeds exercise the default fallback policy.
    IncrementalApsp inc(
        IncrementalApspOptions{seed % 2 == 1 ? 1.0 : 0.25});
    ASSERT_TRUE(inc.update(build()));

    for (int epoch = 0; epoch < 12; ++epoch) {
      switch (rng.uniform_int(4)) {
        case 0: {  // tighten one edge (the realistic epoch delta)
          Edge& e = edges[rng.uniform_int(edges.size())];
          e.weight *= rng.uniform(0.3, 1.0);
          break;
        }
        case 1: {  // loosen one edge
          Edge& e = edges[rng.uniform_int(edges.size())];
          e.weight *= rng.uniform(1.0, 3.0);
          break;
        }
        case 2: {  // flip a link to unbounded (remove)
          if (edges.size() > 1)
            edges.erase(edges.begin() +
                        static_cast<std::ptrdiff_t>(
                            rng.uniform_int(edges.size())));
          break;
        }
        default: {  // new finite link
          const NodeId a = static_cast<NodeId>(rng.uniform_int(n));
          const NodeId b = static_cast<NodeId>(rng.uniform_int(n));
          if (a != b) edges.push_back({a, b, rng.uniform(0.1, 1.0)});
          break;
        }
      }
      const Digraph g = build();
      ASSERT_TRUE(inc.update(g)) << "seed " << seed << " epoch " << epoch;
      const auto oracle = johnson(g);
      ASSERT_TRUE(oracle.has_value());
      expect_matrices_match(inc.distances(), *oracle, 1e-11);
    }
  }
}

}  // namespace
}  // namespace cs
