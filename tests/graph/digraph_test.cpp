#include "graph/digraph.hpp"

#include <gtest/gtest.h>

namespace cs {
namespace {

TEST(Digraph, ConstructionAndCounts) {
  Digraph g(3);
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 0u);
  const NodeId v = g.add_node();
  EXPECT_EQ(v, 3u);
  EXPECT_EQ(g.node_count(), 4u);
}

TEST(Digraph, EdgesAndAdjacency) {
  Digraph g(3);
  const EdgeId e0 = g.add_edge(0, 1, 2.5);
  const EdgeId e1 = g.add_edge(0, 2, -1.0);
  g.add_edge(1, 2, 0.0);

  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_EQ(g.edge(e0).to, 1u);
  EXPECT_DOUBLE_EQ(g.edge(e1).weight, -1.0);
  ASSERT_EQ(g.out_edges(0).size(), 2u);
  EXPECT_EQ(g.out_edges(2).size(), 0u);
}

TEST(Digraph, SetWeight) {
  Digraph g(2);
  const EdgeId e = g.add_edge(0, 1, 1.0);
  g.set_weight(e, 7.0);
  EXPECT_DOUBLE_EQ(g.edge(e).weight, 7.0);
}

TEST(Digraph, ParallelEdgesAllowed) {
  Digraph g(2);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 1, 2.0);
  EXPECT_EQ(g.out_edges(0).size(), 2u);
}

TEST(Digraph, Reversed) {
  Digraph g(3);
  g.add_edge(0, 1, 1.5);
  g.add_edge(1, 2, 2.5);
  const Digraph r = g.reversed();
  EXPECT_EQ(r.node_count(), 3u);
  EXPECT_EQ(r.edge(0).from, 1u);
  EXPECT_EQ(r.edge(0).to, 0u);
  EXPECT_DOUBLE_EQ(r.edge(0).weight, 1.5);
  EXPECT_EQ(r.out_edges(2).size(), 1u);
}

TEST(Digraph, SelfLoop) {
  Digraph g(1);
  g.add_edge(0, 0, -3.0);
  EXPECT_EQ(g.out_edges(0).size(), 1u);
}

}  // namespace
}  // namespace cs
