// Bellman–Ford, Dijkstra, Floyd–Warshall and Johnson, cross-validated.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/bellman_ford.hpp"
#include "graph/dijkstra.hpp"
#include "graph/floyd_warshall.hpp"
#include "graph/johnson.hpp"

namespace cs {
namespace {

Digraph diamond() {
  // 0 -> 1 -> 3, 0 -> 2 -> 3, with 0->2->3 cheaper.
  Digraph g(4);
  g.add_edge(0, 1, 5.0);
  g.add_edge(1, 3, 5.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(2, 3, 2.0);
  return g;
}

TEST(BellmanFord, SimplePaths) {
  const auto sp = bellman_ford(diamond(), 0);
  ASSERT_TRUE(sp.has_value());
  EXPECT_DOUBLE_EQ(sp->dist[0], 0.0);
  EXPECT_DOUBLE_EQ(sp->dist[1], 5.0);
  EXPECT_DOUBLE_EQ(sp->dist[2], 1.0);
  EXPECT_DOUBLE_EQ(sp->dist[3], 3.0);
}

TEST(BellmanFord, NegativeWeightsNoCycle) {
  Digraph g(3);
  g.add_edge(0, 1, 4.0);
  g.add_edge(0, 2, 6.0);
  g.add_edge(1, 2, -3.0);
  const auto sp = bellman_ford(g, 0);
  ASSERT_TRUE(sp.has_value());
  EXPECT_DOUBLE_EQ(sp->dist[2], 1.0);
}

TEST(BellmanFord, Unreachable) {
  Digraph g(3);
  g.add_edge(0, 1, 1.0);
  const auto sp = bellman_ford(g, 0);
  ASSERT_TRUE(sp.has_value());
  EXPECT_EQ(sp->dist[2], kInfDist);
  EXPECT_FALSE(sp->pred[2].has_value());
}

TEST(BellmanFord, DetectsReachableNegativeCycle) {
  Digraph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, -2.0);
  g.add_edge(2, 1, 1.0);
  EXPECT_FALSE(bellman_ford(g, 0).has_value());
}

TEST(BellmanFord, IgnoresUnreachableNegativeCycle) {
  Digraph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, -2.0);
  g.add_edge(3, 2, 1.0);
  EXPECT_TRUE(bellman_ford(g, 0).has_value());
  EXPECT_TRUE(has_negative_cycle(g));
}

TEST(HasNegativeCycle, ZeroCycleIsNotNegative) {
  Digraph g(2);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 0, -1.0);
  EXPECT_FALSE(has_negative_cycle(g));
}

TEST(BellmanFord, EpsilonToleratesFloatNoiseCycle) {
  // Regression: relax_all used to be called with a hard-coded epsilon of
  // 0.0, so a cycle of weight -1 ulp — pure float rounding where the theory
  // guarantees weight exactly 0 (SHIFTS' critical cycle) — was reported as
  // a negative cycle.  The plumbed-through tolerance absorbs it.
  Digraph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 0.5);
  g.add_edge(2, 1, -0.5 - 1e-15);  // "zero" cycle off by float noise
  EXPECT_FALSE(bellman_ford(g, 0).has_value());  // exact mode still rejects
  const auto sp = bellman_ford(g, 0, 1e-12);
  ASSERT_TRUE(sp.has_value());
  EXPECT_NEAR(sp->dist[1], 1.0, 1e-11);
  EXPECT_NEAR(sp->dist[2], 1.5, 1e-11);
}

TEST(BellmanFord, EpsilonStillDetectsDecisivelyNegativeCycle) {
  Digraph g(2);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 0, -1.001);
  EXPECT_FALSE(bellman_ford(g, 0, 1e-9).has_value());
}

TEST(Dijkstra, MatchesBellmanFordOnNonNegative) {
  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    Digraph g(8);
    for (int e = 0; e < 20; ++e) {
      const auto u = static_cast<NodeId>(rng.uniform_int(8));
      const auto v = static_cast<NodeId>(rng.uniform_int(8));
      if (u == v) continue;
      g.add_edge(u, v, rng.uniform(0.0, 10.0));
    }
    const auto bf = bellman_ford(g, 0);
    const ShortestPaths dj = dijkstra(g, 0);
    ASSERT_TRUE(bf.has_value());
    for (NodeId v = 0; v < 8; ++v) {
      if (bf->dist[v] == kInfDist) {
        EXPECT_EQ(dj.dist[v], kInfDist) << "node " << v;
      } else {
        EXPECT_NEAR(bf->dist[v], dj.dist[v], 1e-12) << "node " << v;
      }
    }
  }
}

TEST(FloydWarshall, SmallGraph) {
  const auto m = floyd_warshall(diamond());
  ASSERT_TRUE(m.has_value());
  EXPECT_DOUBLE_EQ(m->at(0, 3), 3.0);
  EXPECT_DOUBLE_EQ(m->at(1, 3), 5.0);
  EXPECT_EQ(m->at(3, 0), kInfDist);
  EXPECT_DOUBLE_EQ(m->at(2, 2), 0.0);
}

TEST(FloydWarshall, DetectsNegativeCycle) {
  Digraph g(2);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 0, -2.0);
  EXPECT_FALSE(floyd_warshall(g).has_value());
}

TEST(Johnson, MatchesFloydWarshallWithNegativeWeights) {
  Rng rng(17);
  for (int trial = 0; trial < 30; ++trial) {
    // Build weights from node potentials plus a non-negative part; such
    // graphs never contain negative cycles but have many negative edges.
    const std::size_t n = 3 + rng.uniform_int(7);
    std::vector<double> h(n);
    for (auto& x : h) x = rng.uniform(-10.0, 10.0);
    Digraph g(n);
    const std::size_t edges = n * 3;
    for (std::size_t e = 0; e < edges; ++e) {
      const auto u = static_cast<NodeId>(rng.uniform_int(n));
      const auto v = static_cast<NodeId>(rng.uniform_int(n));
      if (u == v) continue;
      g.add_edge(u, v, rng.uniform(0.0, 5.0) + h[v] - h[u]);
    }
    const auto fw = floyd_warshall(g);
    const auto jo = johnson(g);
    ASSERT_TRUE(fw.has_value());
    ASSERT_TRUE(jo.has_value());
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) {
        if (fw->at(i, j) == kInfDist) {
          EXPECT_EQ(jo->at(i, j), kInfDist);
        } else {
          EXPECT_NEAR(fw->at(i, j), jo->at(i, j), 1e-9);
        }
      }
  }
}

TEST(Johnson, DetectsNegativeCycle) {
  Digraph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, -5.0);
  g.add_edge(2, 0, 1.0);
  EXPECT_FALSE(johnson(g).has_value());
}

}  // namespace
}  // namespace cs
