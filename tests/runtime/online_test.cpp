// OnlineEstimator and OnlineViewBuilder unit tests: the epoch-cut
// predicate must agree with the offline View::prefix × kDropOrphans
// semantics, duplicates must be ignored keep-earliest, and the windowed
// stats must expire silent directions.

#include <gtest/gtest.h>

#include "runtime/online.hpp"

namespace cs {
namespace {

ClockTime ct(double sec) { return ClockTime{sec}; }

TEST(OnlineEstimator, BanksExtremesPerDirection) {
  OnlineEstimator est;
  est.ingest(1, 10, ct(0.0), ct(0.030));
  est.ingest(1, 11, ct(0.1), ct(0.112));
  est.ingest(2, 12, ct(0.2), ct(0.290));

  const DirectedStats from1 = est.stats(1);
  EXPECT_EQ(from1.count, 2u);
  EXPECT_DOUBLE_EQ(from1.dmin.finite(), 0.012);
  EXPECT_DOUBLE_EQ(from1.dmax.finite(), 0.030);
  EXPECT_EQ(est.stats(2).count, 1u);
  EXPECT_EQ(est.stats(3).count, 0u);
  EXPECT_EQ(est.total_observations(), 3u);
}

TEST(OnlineEstimator, DuplicateMessageIdsKeepEarliest) {
  OnlineEstimator est;
  est.ingest(1, 10, ct(0.0), ct(0.020));
  // A redelivery of the same message id with a later (larger d̃) stamp
  // must not widen the extremes.
  est.ingest(1, 10, ct(0.0), ct(0.500));
  EXPECT_EQ(est.stats(1).count, 1u);
  EXPECT_DOUBLE_EQ(est.stats(1).dmax.finite(), 0.020);
  EXPECT_EQ(est.total_observations(), 1u);
}

TEST(OnlineEstimator, TakeReportAppliesThePrefixCut) {
  OnlineEstimator est;
  est.ingest(1, 10, ct(0.10), ct(0.15));  // both < 1: inside the cut
  est.ingest(1, 11, ct(0.95), ct(1.05));  // recv >= 1: orphaned at T=1
  est.ingest(1, 12, ct(1.00), ct(1.10));  // send == T: strictly-before fails

  const std::vector<ReportObs> cut1 = est.take_report(ct(1.0));
  ASSERT_EQ(cut1.size(), 1u);
  EXPECT_EQ(cut1[0].peer, 1u);
  EXPECT_DOUBLE_EQ(cut1[0].obs.send, 0.10);

  // The next cumulative cut reports only the delta: the two observations
  // that crossed the T=1 boundary, not the one already reported.
  const std::vector<ReportObs> cut2 = est.take_report(ct(2.0));
  ASSERT_EQ(cut2.size(), 2u);
  EXPECT_DOUBLE_EQ(cut2[0].obs.send, 0.95);
  EXPECT_DOUBLE_EQ(cut2[1].obs.send, 1.00);

  EXPECT_TRUE(est.take_report(ct(3.0)).empty());
}

TEST(OnlineEstimator, TakeReportOrdersByPeerThenIngest) {
  OnlineEstimator est;
  est.ingest(3, 20, ct(0.3), ct(0.35));
  est.ingest(1, 21, ct(0.1), ct(0.15));
  est.ingest(3, 22, ct(0.2), ct(0.25));

  const std::vector<ReportObs> cut = est.take_report(ct(1.0));
  ASSERT_EQ(cut.size(), 3u);
  EXPECT_EQ(cut[0].peer, 1u);
  EXPECT_EQ(cut[1].peer, 3u);
  EXPECT_DOUBLE_EQ(cut[1].obs.send, 0.3);  // ingest order within peer
  EXPECT_EQ(cut[2].peer, 3u);
  EXPECT_DOUBLE_EQ(cut[2].obs.send, 0.2);
}

TEST(OnlineEstimator, WindowStatsExpireSilentDirections) {
  OnlineEstimator est;
  est.ingest(1, 10, ct(0.10), ct(0.15));
  est.ingest(1, 11, ct(2.00), ct(2.04));

  // Window [1.1, 2.1): only the second observation was received inside.
  const double d2 = 2.04 - 2.00;  // the exact double the estimator computes
  const DirectedStats recent = est.window_stats(1, ct(2.1), Duration{1.0});
  EXPECT_EQ(recent.count, 1u);
  EXPECT_DOUBLE_EQ(recent.dmin.finite(), d2);

  // Window [4, 5): the direction has gone silent entirely.
  EXPECT_EQ(est.window_stats(1, ct(5.0), Duration{1.0}).count, 0u);

  // The running (never-expiring) extremes still cover everything.
  EXPECT_EQ(est.stats(1).count, 2u);
  EXPECT_DOUBLE_EQ(est.stats(1).dmin.finite(), d2);
  EXPECT_DOUBLE_EQ(est.stats(1).dmax.finite(), 0.15 - 0.10);
}

TEST(OnlineViewBuilder, AppendsEventsPerProcessor) {
  OnlineViewBuilder builder(2);
  builder.start(0);
  builder.start(1);
  builder.send(0, ct(0.1), 1, 1);
  builder.receive(1, ct(0.2), 1, 0);
  builder.timer_set(0, ct(0.1), ct(0.5));
  builder.timer_fire(0, ct(0.5), ct(0.5));

  ASSERT_EQ(builder.views().size(), 2u);
  // start + send + timer_set + timer_fire; start + receive.
  EXPECT_EQ(builder.views()[0].events.size(), 4u);
  EXPECT_EQ(builder.views()[1].events.size(), 2u);
  EXPECT_EQ(builder.views()[0].sends().size(), 1u);
  EXPECT_EQ(builder.views()[1].receives().size(), 1u);
}

}  // namespace
}  // namespace cs
