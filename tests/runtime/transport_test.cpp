// Transport-layer tests: the deterministic loopback must make whole runs a
// pure function of (model, factory, seed) — byte-identical traces across
// runs — and live traces must replay through the standard trace pipeline.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "runtime/daemon.hpp"
#include "support/builders.hpp"
#include "trace/replay.hpp"
#include "trace/trace.hpp"

namespace cs {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

LiveConfig virtual_config(std::uint64_t seed, std::size_t epochs) {
  LiveConfig config;
  config.seed = seed;
  config.transport = LiveTransportKind::kLoopback;
  config.agent.epochs = epochs;
  return config;
}

TEST(LoopbackDeterminism, IdenticalSeedsProduceByteIdenticalTraces) {
  SystemModel model = test::bounded_model(make_complete(5), 0.001, 0.02);
  const std::string dir = ::testing::TempDir();
  const std::string path_a = dir + "/transport_det_a.trace";
  const std::string path_b = dir + "/transport_det_b.trace";

  LiveConfig config = virtual_config(7, 2);
  config.trace_path = path_a;
  const LiveReport a = run_live(model, config);
  config.trace_path = path_b;
  const LiveReport b = run_live(model, config);

  ASSERT_TRUE(a.converged);
  ASSERT_TRUE(b.converged);
  EXPECT_EQ(a.dispatched, b.dispatched);
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (std::size_t k = 0; k < a.epochs.size(); ++k) {
    EXPECT_EQ(a.epochs[k].corrections, b.epochs[k].corrections);
    EXPECT_EQ(a.epochs[k].claimed_precision, b.epochs[k].claimed_precision);
  }

  const std::string bytes_a = slurp(path_a);
  ASSERT_FALSE(bytes_a.empty());
  EXPECT_EQ(bytes_a, slurp(path_b));
}

TEST(LoopbackDeterminism, DifferentSeedsDiverge) {
  SystemModel model = test::bounded_model(make_complete(4), 0.001, 0.02);
  const LiveReport a = run_live(model, virtual_config(1, 1));
  const LiveReport b = run_live(model, virtual_config(2, 1));
  ASSERT_TRUE(a.converged && b.converged);
  // Different seeds draw different start offsets and delays; the protocol
  // outcome has no reason to coincide.
  EXPECT_NE(a.epochs[0].corrections, b.epochs[0].corrections);
}

TEST(LiveTrace, RecordedRunReplaysCleanly) {
  SystemModel model = test::bounded_model(make_ring(6), 0.002, 0.05);
  const std::string path = ::testing::TempDir() + "/live_replay.trace";

  LiveConfig config = virtual_config(13, 2);
  config.trace_path = path;
  const LiveReport live = run_live(model, config);
  ASSERT_TRUE(live.converged);
  ASSERT_TRUE(live.all_match);

  // The recorded live run flows through the same replay machinery as
  // simulator traces: views reconstruct, the pipeline recomputes, and
  // the outcomes reconcile against the recording.
  const Trace trace = load_trace_file(path);
  const ReplayResult result = replay(trace);
  EXPECT_TRUE(result.matches_recording()) << [&] {
    std::string all;
    for (const auto& d : result.divergences) all += d + "\n";
    return all;
  }();
}

TEST(LiveTrace, ControlTrafficIsFilteredFromTheRecording) {
  SystemModel model = test::bounded_model(make_complete(4), 0.001, 0.02);
  const std::string path = ::testing::TempDir() + "/live_filtered.trace";

  LiveConfig config = virtual_config(3, 1);
  config.trace_path = path;
  const LiveReport live = run_live(model, config);
  ASSERT_TRUE(live.converged);

  // Only probe/echo traffic (tags 20/21) may appear in the trace; the §7
  // report and correction floods are control plane, filtered so the
  // recorded views equal what the pipeline analyzed.
  const Trace trace = load_trace_file(path);
  std::size_t sends = 0;
  for (const auto& ev : trace.events)
    if (ev.kind == TraceEvent::Kind::kSend) ++sends;
  // Probe rounds: n agents × rounds × (n-1) neighbors, plus one echo per
  // delivered probe — all far less than the full message count including
  // floods.  The precise check: every recorded send has a matching id
  // space with no gaps bigger than the flood traffic would leave.
  EXPECT_GT(sends, 0u);
  EXPECT_LT(sends, live.dispatched);
}

}  // namespace
}  // namespace cs
