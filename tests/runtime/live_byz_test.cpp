// Live runtime under a Byzantine plan (docs/BYZ.md): payload lies are
// one-sided — the liar corrupts the stamps it *sends*, while every honest
// receive report stays truthful — so the leader's m̃ls graph goes
// inadmissible as soon as the lie exceeds the per-2-cycle slack, and the
// epoch becomes a loud detection outage instead of a silent bad bound.

#include <gtest/gtest.h>

#include <cmath>

#include "byz/plan.hpp"
#include "runtime/daemon.hpp"
#include "support/builders.hpp"

namespace cs {
namespace {

TEST(LiveByz, OversizedEquivocationIsDetectedEveryEpoch) {
  // mag = 0.05 dwarfs the slack the middle of a 100 ms band leaves, so
  // each epoch's GLOBAL ESTIMATES throws and the leader floods an outage
  // notice: the protocol still terminates, nobody is handed a bound.
  SystemModel model = test::bounded_model(make_complete(6), 0.001, 0.101);
  LiveConfig config;
  config.seed = 42;
  config.agent.epochs = 2;
  config.byz = byz::parse_byz_plan("equivocate f=1 mag=0.05");

  const LiveReport report = run_live(model, config);
  EXPECT_TRUE(report.byzantine);
  EXPECT_EQ(report.byz_liars, 1u);
  ASSERT_EQ(report.epochs.size(), 2u);
  EXPECT_EQ(report.detected_epochs, 2u);
  for (const LiveEpochReport& ep : report.epochs) {
    EXPECT_TRUE(ep.detected);
    ASSERT_TRUE(ep.claimed_precision.has_value());
    EXPECT_TRUE(std::isinf(*ep.claimed_precision));
  }
  // Recorded views carry the ground truth, not the lies, so the offline
  // cross-check is meaningless on dishonest runs and must be skipped.
  EXPECT_FALSE(report.checked);
  EXPECT_GT(report.metrics.counter("runtime.detected_epochs"), 0u);
}

TEST(LiveByz, SubSlackLieStaysAdmissibleButUnchecked) {
  // A 2 ms lie hides inside the slack of a wide band: every epoch stays
  // admissible and converges.  The run is still flagged Byzantine and the
  // offline comparison is still skipped — admissible does not mean honest.
  SystemModel model = test::bounded_model(make_complete(6), 0.0, 0.5);
  LiveConfig config;
  config.seed = 42;
  config.agent.epochs = 2;
  config.byz = byz::parse_byz_plan("lie-const f=1 mag=0.002");

  const LiveReport report = run_live(model, config);
  EXPECT_TRUE(report.byzantine);
  EXPECT_TRUE(report.converged);
  EXPECT_EQ(report.detected_epochs, 0u);
  EXPECT_FALSE(report.checked);
  for (const LiveEpochReport& ep : report.epochs) {
    EXPECT_FALSE(ep.detected);
    ASSERT_TRUE(ep.claimed_precision.has_value());
    EXPECT_TRUE(std::isfinite(*ep.claimed_precision));
  }
}

TEST(LiveByz, HonestPlanLeavesTheRunUnflaggedAndChecked) {
  SystemModel model = test::bounded_model(make_complete(6), 0.001, 0.101);
  LiveConfig config;
  config.seed = 42;
  config.agent.epochs = 2;
  config.byz = byz::parse_byz_plan("none");

  const LiveReport report = run_live(model, config);
  EXPECT_FALSE(report.byzantine);
  EXPECT_EQ(report.byz_liars, 0u);
  EXPECT_EQ(report.detected_epochs, 0u);
  ASSERT_TRUE(report.converged);
  ASSERT_TRUE(report.checked);
  EXPECT_TRUE(report.all_match);
}

}  // namespace
}  // namespace cs
