// End-to-end live-runtime tests: the §7 agent protocol over every
// transport.  The acceptance contract (ISSUE 4 / docs/RUNTIME.md):
//
//   * deterministic loopback — converged corrections equal the offline
//     pipeline over the recorded views bit-for-bit, every epoch;
//   * every transport — realized precision (ground-truth corrected-clock
//     spread) within the claimed bound, Thm 4.6 live;
//   * faults + grace watchdog — degraded epochs still compute, the run
//     never silently hangs.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "runtime/daemon.hpp"
#include "support/builders.hpp"

namespace cs {
namespace {

void expect_realized_within_bound(const LiveReport& report) {
  for (const LiveEpochReport& ep : report.epochs) {
    ASSERT_TRUE(ep.claimed_precision.has_value()) << "epoch " << ep.epoch;
    ASSERT_TRUE(ep.realized_precision.has_value()) << "epoch " << ep.epoch;
    // Thm 4.6: on admissible runs the realized spread of corrected clocks
    // is bounded by the claimed (optimal) precision.
    EXPECT_LE(*ep.realized_precision, *ep.claimed_precision)
        << "epoch " << ep.epoch;
  }
}

TEST(LiveLoopback, EightAgentsMatchOfflineBitForBit) {
  SystemModel model = test::bounded_model(make_complete(8), 0.001, 0.05);
  LiveConfig config;
  config.seed = 42;
  config.agent.epochs = 3;

  const LiveReport report = run_live(model, config);
  EXPECT_EQ(report.transport, "loopback");
  EXPECT_EQ(report.agents, 8u);
  ASSERT_TRUE(report.converged);
  ASSERT_TRUE(report.checked);
  EXPECT_TRUE(report.all_match);
  ASSERT_EQ(report.epochs.size(), 3u);
  for (const LiveEpochReport& ep : report.epochs) {
    EXPECT_FALSE(ep.degraded);
    EXPECT_EQ(ep.reports_absorbed, 8u);
    EXPECT_EQ(ep.acks, 8u);
    EXPECT_TRUE(ep.matches_offline);
    // Bit-for-bit, not approximately: same views, same pipeline.
    EXPECT_EQ(ep.corrections, ep.offline_corrections);
    EXPECT_EQ(ep.claimed_precision, ep.offline_precision);
  }
  expect_realized_within_bound(report);
  EXPECT_GT(report.metrics.counter("runtime.dispatched"), 0u);
  EXPECT_GT(report.metrics.counter("runtime.delivered"), 0u);
}

TEST(LiveLoopback, LaterEpochsOnlyTightenThePrecision) {
  // Cumulative traffic ⇒ the m̃ls graph only gains edges ⇒ the optimal
  // precision is non-increasing across epochs (§7's observation).
  SystemModel model = test::bounded_model(make_complete(6), 0.0, 0.1);
  LiveConfig config;
  config.seed = 5;
  config.agent.epochs = 3;

  const LiveReport report = run_live(model, config);
  ASSERT_TRUE(report.converged);
  for (std::size_t k = 1; k < report.epochs.size(); ++k)
    EXPECT_LE(*report.epochs[k].claimed_precision,
              *report.epochs[k - 1].claimed_precision);
}

TEST(LiveLoopback, SparseTopologyConvergesToo) {
  SystemModel model = test::bounded_model(make_ring(8), 0.002, 0.03);
  LiveConfig config;
  config.seed = 17;
  const LiveReport report = run_live(model, config);
  ASSERT_TRUE(report.converged);
  EXPECT_TRUE(report.all_match);
  expect_realized_within_bound(report);
}

TEST(LiveLoopback, GraceWatchdogComputesDegradedEpochsUnderDrop) {
  SystemModel model = test::bounded_model(make_complete(6), 0.001, 0.05);
  LiveConfig config;
  config.seed = 23;
  config.drop_probability = 0.4;  // heavy injected loss
  config.agent.epochs = 2;
  config.agent.grace = Duration{0.5};

  const LiveReport report = run_live(model, config);
  // Under 40% loss convergence (full dissemination) is not guaranteed —
  // but the watchdog guarantees every epoch still *computes* instead of
  // the leader hanging forever on missing reports.
  ASSERT_EQ(report.epochs.size(), 2u);
  for (const LiveEpochReport& ep : report.epochs) {
    EXPECT_TRUE(ep.claimed_precision.has_value()) << "epoch " << ep.epoch;
    EXPECT_GE(ep.reports_absorbed, 1u);
    EXPECT_EQ(ep.degraded, ep.reports_absorbed < report.agents);
  }
  EXPECT_GT(report.metrics.counter("runtime.dropped"), 0u);
}

TEST(LiveLoopback, NoGraceAndTotalLossMeansNoConvergenceNotAHang) {
  // Historic hazard: with reports lost and no watchdog the leader waits
  // forever.  In virtual time the heap simply drains — run_live must
  // return (not converged) rather than spin.
  SystemModel model = test::bounded_model(make_complete(4), 0.001, 0.05);
  LiveConfig config;
  config.seed = 3;
  // Highest injectable loss rate ([0, 1) enforced): with this seed nothing
  // the protocol needs survives the wire.
  config.drop_probability = 0.999;
  const LiveReport report = run_live(model, config);
  EXPECT_FALSE(report.converged);
  EXPECT_FALSE(report.epochs[0].claimed_precision.has_value());
}

TEST(LiveThreaded, EightAgentsConvergeOnWallClock) {
  SystemModel model = test::bounded_model(make_complete(8), 0.0, 1.0);
  LiveConfig config;
  config.seed = 11;
  config.transport = LiveTransportKind::kLoopbackThreaded;
  config.delay_scale = 0.005;
  config.agent.warmup = Duration{0.05};
  config.agent.spacing = Duration{0.02};
  config.agent.report_at = Duration{0.3};
  config.agent.period = Duration{0.3};
  config.deadline = Duration{20.0};

  const LiveReport report = run_live(model, config);
  EXPECT_EQ(report.transport, "loopback-threaded");
  ASSERT_TRUE(report.converged) << "timed_out=" << report.timed_out;
  // The offline check runs over the views of the *actual* wall-clock run,
  // so the bit-for-bit contract holds on threaded transports too.
  EXPECT_TRUE(report.all_match);
  expect_realized_within_bound(report);
  // Mailbox dwell was measured for every cross-thread delivery.
  EXPECT_GT(
      report.metrics.series_snapshot("runtime.ingest_latency_seconds").count,
      0u);
}

TEST(LiveUdp, EightAgentsOverRealSocketsStayWithinTheBound) {
  // Real localhost datagrams: delays are genuinely positive and tiny, so
  // an admissible model needs lower bound 0.  Thm 4.6 then applies to the
  // real run: realized precision within the claimed bound.
  SystemModel model = test::bounded_model(make_complete(8), 0.0, 1.0);
  LiveConfig config;
  config.seed = 29;
  config.transport = LiveTransportKind::kUdp;
  config.agent.warmup = Duration{0.05};
  config.agent.spacing = Duration{0.02};
  config.agent.report_at = Duration{0.3};
  config.agent.period = Duration{0.3};
  config.deadline = Duration{20.0};

  const LiveReport report = run_live(model, config);
  EXPECT_EQ(report.transport, "udp");
  ASSERT_TRUE(report.converged) << "timed_out=" << report.timed_out;
  expect_realized_within_bound(report);
}

TEST(LiveResync, DriftBudgetClampsThePeriodAndKeepsCoverage) {
  // rho 100 ppm, slack 0.1 ms -> max re-sync interval 0.5 s.  The default
  // 1 s x 1-epoch schedule violates it, so run_live must clamp the period
  // and stretch the epoch count to preserve the covered span.
  SystemModel model = test::bounded_model(make_complete(6), 0.001, 0.05);
  LiveConfig config;
  config.seed = 31;
  config.drift.rho = 100e-6;
  config.drift.slack = 0.0001;

  const LiveReport report = run_live(model, config);
  ASSERT_TRUE(report.converged);
  EXPECT_TRUE(report.resync_clamped);
  EXPECT_DOUBLE_EQ(report.resync_period.sec, 0.5);
  EXPECT_GE(report.resync_epochs, 2u);
  EXPECT_EQ(report.epochs.size(), report.resync_epochs);
  // Every epoch publishes the drift-adjusted bound = claimed + slack.
  for (const LiveEpochReport& ep : report.epochs) {
    ASSERT_TRUE(ep.claimed_precision.has_value()) << "epoch " << ep.epoch;
    ASSERT_TRUE(ep.drift_bound.has_value()) << "epoch " << ep.epoch;
    EXPECT_DOUBLE_EQ(*ep.drift_bound,
                     *ep.claimed_precision + config.drift.slack);
  }
  expect_realized_within_bound(report);
  EXPECT_EQ(report.metrics.counter("runtime.drift.clamped"), 1u);
  EXPECT_GT(report.metrics.series_snapshot("runtime.drift.epoch_bound").count,
            0u);
}

TEST(LiveResync, CompliantScheduleRunsUnmodified) {
  SystemModel model = test::bounded_model(make_complete(4), 0.001, 0.05);
  LiveConfig config;
  config.seed = 37;
  config.agent.epochs = 2;
  config.drift.rho = 100e-6;
  config.drift.slack = 0.01;  // max interval 50 s >> the 5 s default period

  const LiveReport report = run_live(model, config);
  ASSERT_TRUE(report.converged);
  EXPECT_FALSE(report.resync_clamped);
  EXPECT_EQ(report.resync_epochs, 2u);
  EXPECT_EQ(report.metrics.counter("runtime.drift.clamped"), 0u);
  for (const LiveEpochReport& ep : report.epochs)
    EXPECT_TRUE(ep.drift_bound.has_value());
}

TEST(LiveResync, InactiveBudgetLeavesReportsDriftFree) {
  SystemModel model = test::bounded_model(make_complete(4), 0.001, 0.05);
  LiveConfig config;
  config.seed = 41;
  config.agent.epochs = 2;
  const LiveReport report = run_live(model, config);
  ASSERT_TRUE(report.converged);
  EXPECT_FALSE(report.resync_clamped);
  for (const LiveEpochReport& ep : report.epochs)
    EXPECT_FALSE(ep.drift_bound.has_value());
}

TEST(LiveConfigValidation, RejectsBadSchedules) {
  SystemModel model = test::bounded_model(make_complete(3), 0.001, 0.05);
  LiveConfig config;
  config.agent.report_at = Duration{0.1};  // before the probe phase ends
  EXPECT_THROW(run_live(model, config), Error);

  LiveConfig leader;
  leader.agent.leader = 7;  // out of range for n = 3
  EXPECT_THROW(run_live(model, leader), Error);
}

}  // namespace
}  // namespace cs
