// Regression tests for the UdpTransport receive-path error handling.
//
// The historical bug: recv_loop treated every poll() outcome <= 0 as a
// timeout and looped.  A descriptor that vanishes (EBADF / POLLNVAL —
// poll() returns *immediately*) therefore busy-spun the receive thread
// forever with no error surfaced anywhere.  The loop must instead classify
// errors, back off boundedly, record runtime.udp.poll_error, and give the
// endpoint up as failed.
#include "runtime/udp_transport.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "common/metrics.hpp"

namespace cs {
namespace {

using namespace std::chrono_literals;

TEST(UdpTransportErrors, ClosedFdSurfacesFailureInsteadOfBusySpin) {
  UdpTransport transport(1);
  Metrics metrics;
  transport.set_metrics(&metrics);
  std::atomic<int> notified{0};
  std::string detail;
  transport.set_error_handler([&](ProcessorId pid, const std::string& what) {
    EXPECT_EQ(pid, 0u);
    detail = what;
    notified.fetch_add(1);
  });
  transport.open(0, [](WireMessage) {});
  transport.start();

  // Rip the socket out from under the receive loop.  Pre-fix, the loop
  // spun on POLLNVAL forever and this test timed out waiting below.
  transport.close_endpoint(0);

  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (transport.failed_endpoints() == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(5ms);

  EXPECT_EQ(transport.failed_endpoints(), 1u);
  EXPECT_GE(metrics.counter("runtime.udp.poll_error"), 1u);
  EXPECT_EQ(metrics.counter("runtime.udp.endpoint_failed"), 1u);
  EXPECT_EQ(notified.load(), 1);
  EXPECT_NE(detail.find("endpoint 0"), std::string::npos) << detail;
  transport.stop();
}

TEST(UdpTransportErrors, HealthyEndpointsReportNoFailures) {
  UdpTransport transport(2);
  Metrics metrics;
  transport.set_metrics(&metrics);
  std::atomic<int> delivered{0};
  transport.open(0, [](WireMessage) {});
  transport.open(1, [&](WireMessage msg) {
    EXPECT_EQ(msg.payload.tag, 7u);
    delivered.fetch_add(1);
  });
  transport.start();

  WireMessage msg;
  msg.id = 1;
  msg.from = 0;
  msg.to = 1;
  msg.payload.tag = 7;
  msg.payload.data = {1.5, -2.5};
  ASSERT_TRUE(transport.send(msg));

  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (delivered.load() == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(2ms);

  EXPECT_EQ(delivered.load(), 1);
  EXPECT_EQ(transport.failed_endpoints(), 0u);
  EXPECT_EQ(metrics.counter("runtime.udp.poll_error"), 0u);
  transport.stop();
}

}  // namespace
}  // namespace cs
