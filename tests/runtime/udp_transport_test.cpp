// Regression tests for the UdpTransport receive-path error handling.
//
// The historical bug: recv_loop treated every poll() outcome <= 0 as a
// timeout and looped.  A descriptor that vanishes (EBADF / POLLNVAL —
// poll() returns *immediately*) therefore busy-spun the receive thread
// forever with no error surfaced anywhere.  The loop must instead classify
// errors, back off boundedly, record runtime.udp.poll_error, and give the
// endpoint up as failed.
#include "runtime/udp_transport.hpp"

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "net/address.hpp"

namespace cs {
namespace {

using namespace std::chrono_literals;

TEST(UdpTransportErrors, ClosedFdSurfacesFailureInsteadOfBusySpin) {
  UdpTransport transport(1);
  Metrics metrics;
  transport.set_metrics(&metrics);
  std::atomic<int> notified{0};
  std::string detail;
  transport.set_error_handler([&](ProcessorId pid, const std::string& what) {
    EXPECT_EQ(pid, 0u);
    detail = what;
    notified.fetch_add(1);
  });
  transport.open(0, [](WireMessage) {});
  transport.start();

  // Rip the socket out from under the receive loop.  Pre-fix, the loop
  // spun on POLLNVAL forever and this test timed out waiting below.
  transport.close_endpoint(0);

  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (transport.failed_endpoints() == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(5ms);

  EXPECT_EQ(transport.failed_endpoints(), 1u);
  EXPECT_GE(metrics.counter("runtime.udp.poll_error"), 1u);
  EXPECT_EQ(metrics.counter("runtime.udp.endpoint_failed"), 1u);
  EXPECT_EQ(notified.load(), 1);
  EXPECT_NE(detail.find("endpoint 0"), std::string::npos) << detail;
  transport.stop();
}

TEST(UdpTransportErrors, HealthyEndpointsReportNoFailures) {
  UdpTransport transport(2);
  Metrics metrics;
  transport.set_metrics(&metrics);
  std::atomic<int> delivered{0};
  transport.open(0, [](WireMessage) {});
  transport.open(1, [&](WireMessage msg) {
    EXPECT_EQ(msg.payload.tag, 7u);
    delivered.fetch_add(1);
  });
  transport.start();

  WireMessage msg;
  msg.id = 1;
  msg.from = 0;
  msg.to = 1;
  msg.payload.tag = 7;
  msg.payload.data = {1.5, -2.5};
  ASSERT_TRUE(transport.send(msg));

  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (delivered.load() == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(2ms);

  EXPECT_EQ(delivered.load(), 1);
  EXPECT_EQ(transport.failed_endpoints(), 0u);
  EXPECT_EQ(metrics.counter("runtime.udp.poll_error"), 0u);
  transport.stop();
}

// Sends raw bytes at an endpoint, bypassing the wire codec — the hostile
// peer the receive path must survive.
void send_raw(const net::SocketAddress& to, const std::vector<std::uint8_t>& bytes) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in dst;
  net::to_sockaddr(to, dst);
  EXPECT_EQ(::sendto(fd, bytes.data(), bytes.size(), 0,
                     reinterpret_cast<const sockaddr*>(&dst), sizeof dst),
            static_cast<ssize_t>(bytes.size()));
  ::close(fd);
}

TEST(UdpTransportWire, TruncatedDatagramIsCountedAndNeverDelivered) {
  // ISSUE satellite (a): a datagram larger than the receive buffer arrives
  // with MSG_TRUNC set.  Pre-fix the torso was decoded as if complete; now
  // it must be dropped and counted, with nothing reaching the sink.
  UdpTransportOptions options;
  options.recv_buffer_bytes = 64;
  UdpTransport transport(1, options);
  Metrics metrics;
  transport.set_metrics(&metrics);
  std::atomic<int> delivered{0};
  transport.open(0, [&](WireMessage) { delivered.fetch_add(1); });
  transport.start();

  send_raw(transport.address_of(0), std::vector<std::uint8_t>(200, 0x55));

  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (metrics.counter("runtime.udp.recv_truncated") == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(2ms);

  EXPECT_EQ(metrics.counter("runtime.udp.recv_truncated"), 1u);
  // Dropped before decode: the torso is not a decode error, and the sink
  // never saw it.
  EXPECT_EQ(metrics.counter("runtime.udp.decode_error"), 0u);
  EXPECT_EQ(delivered.load(), 0);
  EXPECT_EQ(transport.failed_endpoints(), 0u);
  transport.stop();
}

TEST(UdpTransportWire, GarbageDatagramCountsDecodeErrorNotDelivery) {
  UdpTransport transport(1);
  Metrics metrics;
  transport.set_metrics(&metrics);
  std::atomic<int> delivered{0};
  transport.open(0, [&](WireMessage) { delivered.fetch_add(1); });
  transport.start();

  send_raw(transport.address_of(0),
           std::vector<std::uint8_t>{0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01});

  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (metrics.counter("runtime.udp.decode_error") == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(2ms);

  EXPECT_EQ(metrics.counter("runtime.udp.decode_error"), 1u);
  EXPECT_EQ(delivered.load(), 0);
  EXPECT_EQ(transport.failed_endpoints(), 0u);
  transport.stop();
}

TEST(UdpTransportWire, InvalidBindAddressThrowsInsteadOfFallingBack) {
  // ISSUE satellite (b): a bad bind address must be a loud cs::Error at
  // construction — never a silent loopback fallback.
  UdpTransportOptions bad;
  bad.bind_address = "999.1.2.3";
  EXPECT_THROW(UdpTransport(1, bad), Error);
  bad.bind_address = "not-an-address";
  EXPECT_THROW(UdpTransport(1, bad), Error);

  UdpTransportOptions tiny;
  tiny.recv_buffer_bytes = 2;  // cannot hold even a frame header
  EXPECT_THROW(UdpTransport(1, tiny), Error);
}

TEST(UdpTransportWire, BindsConfiguredAddress) {
  UdpTransportOptions options;
  options.bind_address = "127.0.0.1";
  UdpTransport transport(1, options);
  transport.open(0, [](WireMessage) {});
  EXPECT_EQ(net::to_string(transport.address_of(0)),
            "127.0.0.1:" + std::to_string(transport.port_of(0)));
  // "*" (INADDR_ANY) is accepted too.
  UdpTransportOptions any;
  any.bind_address = "*";
  UdpTransport wildcard(1, any);
  wildcard.open(0, [](WireMessage) {});
  EXPECT_NE(wildcard.port_of(0), 0);
}

}  // namespace
}  // namespace cs
