// Shared fixtures for the test suites: canned system models, protocol runs,
// and hand-built executions with exactly controlled delays.
#pragma once

#include <cstdint>
#include <vector>

#include "delaymodel/assignment.hpp"
#include "proto/ping_pong.hpp"
#include "sim/simulator.hpp"

namespace cs::test {

/// SystemModel with the same symmetric [lb, ub] bounds on every link.
SystemModel bounded_model(Topology topo, double lb, double ub);

/// SystemModel with only a lower bound on every link.
SystemModel lower_bound_model(Topology topo, double lb);

/// SystemModel with a round-trip bias bound on every link.
SystemModel bias_model(Topology topo, double bias);

/// SystemModel with bounds AND bias on every link (composite).
SystemModel bounded_bias_model(Topology topo, double lb, double ub,
                               double bias);

/// Run the ping-pong protocol under the model with random start offsets in
/// [0, max_skew]; returns the execution with ground truth.
SimResult run_ping_pong(const SystemModel& model, std::uint64_t seed,
                        double max_skew, std::size_t rounds = 4);

/// Hand-built two-processor execution: p0 starts at real time s0, p1 at s1;
/// messages 0->1 realize exactly `delays_01` (sent at evenly spaced clock
/// times), and messages 1->0 realize `delays_10`.  All events land at
/// non-negative clock times.
Execution two_node_execution(double s0, double s1,
                             const std::vector<double>& delays_01,
                             const std::vector<double>& delays_10);

}  // namespace cs::test
