#include "support/builders.hpp"

#include <algorithm>
#include <utility>

namespace cs::test {

SystemModel bounded_model(Topology topo, double lb, double ub) {
  SystemModel m(std::move(topo));
  for (auto [a, b] : m.topology().links)
    m.set_constraint(make_bounds(a, b, lb, ub));
  return m;
}

SystemModel lower_bound_model(Topology topo, double lb) {
  SystemModel m(std::move(topo));
  for (auto [a, b] : m.topology().links)
    m.set_constraint(make_lower_bound_only(a, b, lb));
  return m;
}

SystemModel bias_model(Topology topo, double bias) {
  SystemModel m(std::move(topo));
  for (auto [a, b] : m.topology().links)
    m.set_constraint(make_bias(a, b, bias));
  return m;
}

SystemModel bounded_bias_model(Topology topo, double lb, double ub,
                               double bias) {
  SystemModel m(std::move(topo));
  for (auto [a, b] : m.topology().links) {
    std::vector<std::unique_ptr<LinkConstraint>> parts;
    parts.push_back(make_bounds(a, b, lb, ub));
    parts.push_back(make_bias(a, b, bias));
    m.set_constraint(make_composite(a, b, std::move(parts)));
  }
  return m;
}

SimResult run_ping_pong(const SystemModel& model, std::uint64_t seed,
                        double max_skew, std::size_t rounds) {
  Rng rng(seed);
  SimOptions opts;
  opts.start_offsets =
      random_start_offsets(model.processor_count(), max_skew, rng);
  opts.seed = seed;
  PingPongParams params;
  params.warmup = Duration{max_skew + 0.1};
  params.rounds = rounds;
  return simulate(model, make_ping_pong(params), opts);
}

Execution two_node_execution(double s0, double s1,
                             const std::vector<double>& delays_01,
                             const std::vector<double>& delays_10) {
  // Send clock times spaced far enough apart that ordering is trivial, and
  // with a base offset large enough that every receive clock is positive.
  const double base = 10.0 + std::max(s0, s1);
  const double spacing = 1.0;

  struct Pending {
    ProcessorId pid;
    double clock;
    ViewEvent ev;
  };
  std::vector<Pending> events;
  MessageId next_id = 1;

  auto emit = [&](ProcessorId from, ProcessorId to, double send_clock,
                  double delay, double s_from, double s_to) {
    const MessageId id = next_id++;
    ViewEvent send;
    send.kind = EventKind::kSend;
    send.when = ClockTime{send_clock};
    send.msg = id;
    send.peer = to;
    events.push_back({from, send_clock, send});

    const double recv_real = s_from + send_clock + delay;
    const double recv_clock = recv_real - s_to;
    ViewEvent recv;
    recv.kind = EventKind::kReceive;
    recv.when = ClockTime{recv_clock};
    recv.msg = id;
    recv.peer = from;
    events.push_back({to, recv_clock, recv});
  };

  for (std::size_t i = 0; i < delays_01.size(); ++i)
    emit(0, 1, base + spacing * static_cast<double>(i), delays_01[i], s0, s1);
  for (std::size_t i = 0; i < delays_10.size(); ++i)
    emit(1, 0, base + spacing * static_cast<double>(i), delays_10[i], s1, s0);

  std::stable_sort(events.begin(), events.end(),
                   [](const Pending& x, const Pending& y) {
                     return x.clock < y.clock;
                   });

  std::vector<History> histories;
  histories.emplace_back(0, RealTime{s0});
  histories.emplace_back(1, RealTime{s1});
  for (const Pending& p : events) histories[p.pid].append(p.ev);
  return Execution(std::move(histories));
}

}  // namespace cs::test
