// Probing protocols driving the pipeline end to end.
#include <gtest/gtest.h>

#include "core/precision.hpp"
#include "core/synchronizer.hpp"
#include "proto/beacon.hpp"
#include "proto/flood.hpp"
#include "proto/ping_pong.hpp"
#include "support/builders.hpp"

namespace cs {
namespace {

SimOptions options_for(const SystemModel& model, std::uint64_t seed,
                       double skew) {
  Rng rng(seed);
  SimOptions opts;
  opts.start_offsets =
      random_start_offsets(model.processor_count(), skew, rng);
  opts.seed = seed;
  return opts;
}

TEST(Beacon, BidirectionalBeaconsBoundTheInstance) {
  SystemModel model = test::bounded_model(make_ring(5), 0.01, 0.05);
  BeaconParams params;
  params.warmup = Duration{0.5};
  params.count = 3;
  const SimResult sim =
      simulate(model, make_beacon(params), options_for(model, 4, 0.3));
  // n nodes x 2 neighbors x count beacons, one-way each.
  EXPECT_EQ(sim.delivered_messages, 5u * 2u * 3u);
  const auto views = sim.execution.views();
  const SyncOutcome out = synchronize(model, views);
  EXPECT_TRUE(out.bounded());
  EXPECT_LE(realized_precision(sim.execution.start_times(),
                               out.corrections),
            out.optimal_precision.finite() + 1e-9);
}

TEST(Beacon, OneWayTrafficUnderLowerBoundsIsUnbounded) {
  // Odd processors stay silent; on a star with hub 0 every link sees
  // traffic in at most one direction.  Lower-bound-only assumptions then
  // give no finite estimate in the reverse orientation.
  SystemModel model = test::lower_bound_model(make_star(4), 0.01);
  BeaconParams params;
  params.everyone_beacons = false;
  const SimResult sim =
      simulate(model, make_beacon(params), options_for(model, 5, 0.2));
  const auto views = sim.execution.views();
  const SyncOutcome out = synchronize(model, views);
  EXPECT_FALSE(out.bounded());
  EXPECT_GT(out.components.component_count, 1u);
}

TEST(Beacon, OneWayTrafficUnderFiniteBoundsIsBounded) {
  // Same silent-odd traffic, but finite upper bounds make the reverse
  // orientation informative (Cor 6.3's ub - d̃max term).
  SystemModel model = test::bounded_model(make_star(4), 0.01, 0.05);
  BeaconParams params;
  params.everyone_beacons = false;
  const SimResult sim =
      simulate(model, make_beacon(params), options_for(model, 6, 0.2));
  const auto views = sim.execution.views();
  const SyncOutcome out = synchronize(model, views);
  EXPECT_TRUE(out.bounded());
}

TEST(Flood, TokensTraverseTheNetwork) {
  SystemModel model = test::bounded_model(make_line(6), 0.001, 0.002);
  FloodParams params;
  params.ttl = 10;
  const SimResult sim =
      simulate(model, make_flood(params), options_for(model, 7, 0.1));
  // Every processor sees every other processor's token at least once, so
  // at least n*(n-1) receive events... conservatively just require plenty
  // of traffic and a bounded instance.
  EXPECT_GE(sim.delivered_messages, 2u * 5u);
  const auto views = sim.execution.views();
  const SyncOutcome out = synchronize(model, views);
  EXPECT_TRUE(out.bounded());
}

TEST(Flood, TtlZeroDoesNotPropagate) {
  SystemModel model = test::bounded_model(make_line(3), 0.001, 0.002);
  FloodParams params;
  params.ttl = 0;
  const SimResult sim =
      simulate(model, make_flood(params), options_for(model, 8, 0.1));
  // Each origin reaches only direct neighbors: line has 2*2 directed
  // neighbor pairs.
  EXPECT_EQ(sim.delivered_messages, 4u);
}

TEST(PingPong, ZeroRoundsMeansSilence) {
  SystemModel model = test::bounded_model(make_line(3), 0.01, 0.02);
  PingPongParams params;
  params.rounds = 0;
  const SimResult sim =
      simulate(model, make_ping_pong(params), options_for(model, 9, 0.1));
  EXPECT_EQ(sim.delivered_messages, 0u);
  // No information at all: every pair unbounded, per-node components.
  const auto views = sim.execution.views();
  const SyncOutcome out = synchronize(model, views);
  EXPECT_FALSE(out.bounded());
  EXPECT_EQ(out.components.component_count, 3u);
  for (double c : out.corrections) EXPECT_DOUBLE_EQ(c, 0.0);
}

TEST(PingPong, MoreRoundsNeverHurtPrecision) {
  // Bounded delays below the probe spacing keep the per-link RNG draw
  // order identical across runs, so the k-round execution's messages are a
  // superset of the (k-1)-round one's and the estimates only tighten.
  SystemModel model = test::bounded_model(make_ring(4), 0.005, 0.02);
  double prev = kInfDist;
  for (std::size_t rounds : {1u, 4u, 16u}) {
    const SimResult sim = test::run_ping_pong(model, 10, 0.2, rounds);
    const auto views = sim.execution.views();
    const SyncOutcome out = synchronize(model, views);
    ASSERT_TRUE(out.bounded());
    EXPECT_LE(out.optimal_precision.finite(), prev + 1e-12);
    prev = out.optimal_precision.finite();
  }
}

}  // namespace
}  // namespace cs
