#include "proto/gossip.hpp"

#include <gtest/gtest.h>

#include "core/precision.hpp"
#include "core/synchronizer.hpp"
#include "support/builders.hpp"

namespace cs {
namespace {

SimResult run_gossip(const SystemModel& model, std::uint64_t seed,
                     double skew, std::size_t rounds = 16) {
  Rng rng(seed);
  SimOptions opts;
  opts.start_offsets =
      random_start_offsets(model.processor_count(), skew, rng);
  opts.seed = seed;
  GossipParams params;
  params.warmup = Duration{skew + 0.1};
  params.rounds = rounds;
  params.seed = seed;
  return simulate(model, make_gossip(params), opts);
}

TEST(Gossip, GeneratesTrafficAndStaysAdmissible) {
  const SystemModel model = test::bounded_model(make_complete(5), 0.01, 0.05);
  const SimResult r = run_gossip(model, 3, 0.2);
  // Every probe gets a reply: delivered count is even and positive.
  EXPECT_GT(r.delivered_messages, 0u);
  EXPECT_EQ(r.delivered_messages % 2, 0u);
  EXPECT_TRUE(model.admissible(r.execution));
}

TEST(Gossip, Deterministic) {
  const SystemModel model = test::bounded_model(make_ring(5), 0.01, 0.05);
  const SimResult a = run_gossip(model, 9, 0.2);
  const SimResult b = run_gossip(model, 9, 0.2);
  EXPECT_TRUE(a.execution.equivalent_to(b.execution));
}

TEST(Gossip, PipelineSoundOnIrregularTraffic) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const SystemModel model =
        test::bounded_model(make_star(6), 0.005, 0.03);
    const SimResult r = run_gossip(model, seed, 0.25, 24);
    const auto views = r.execution.views();
    const SyncOutcome out = synchronize(model, views);
    ASSERT_TRUE(out.bounded());
    EXPECT_LE(realized_precision(r.execution.start_times(),
                                 out.corrections),
              out.optimal_precision.finite() + 1e-9);
  }
}

TEST(Gossip, SparseRoundsMayLeaveInstanceUnbounded) {
  // One gossip round on a lower-bound-only line rarely covers both
  // directions of both links: per-component sync must kick in gracefully.
  const SystemModel model = test::lower_bound_model(make_line(3), 0.01);
  const SimResult r = run_gossip(model, 2, 0.1, 1);
  const auto views = r.execution.views();
  const SyncOutcome out = synchronize(model, views);
  // Either outcome is legitimate; what matters is no crash and soundness.
  if (out.bounded()) {
    EXPECT_LE(realized_precision(r.execution.start_times(),
                                 out.corrections),
              out.optimal_precision.finite() + 1e-9);
  } else {
    EXPECT_GT(out.components.component_count, 1u);
  }
}

}  // namespace
}  // namespace cs
