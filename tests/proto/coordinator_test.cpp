// The §7 coordinator protocol: in-band distributed synchronization.
#include "proto/coordinator.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/precision.hpp"
#include "core/synchronizer.hpp"
#include "support/builders.hpp"

namespace cs {
namespace {

struct CoordinatorRun {
  CoordinatorResults results;
  SimResult sim;
};

CoordinatorRun run_coordinator(const SystemModel& model, std::uint64_t seed,
                               double skew, CoordinatorParams params = {}) {
  Rng rng(seed);
  SimOptions opts;
  opts.start_offsets =
      random_start_offsets(model.processor_count(), skew, rng);
  opts.seed = seed;
  params.warmup = Duration{skew + 0.1};
  CoordinatorRun run;
  const AutomatonFactory factory =
      make_coordinator(&model, params, &run.results);
  run.sim = simulate(model, factory, opts);
  return run;
}

TEST(Coordinator, EveryProcessorLearnsItsCorrection) {
  for (const char* topo : {"line", "ring", "star", "complete"}) {
    Rng rng(1);
    SystemModel model =
        test::bounded_model(make_named(topo, 5, rng), 0.01, 0.05);
    const CoordinatorRun run = run_coordinator(model, 3, 0.2);
    EXPECT_TRUE(run.results.complete()) << topo;
  }
}

TEST(Coordinator, LeaderIsGaugeZero) {
  SystemModel model = test::bounded_model(make_ring(5), 0.01, 0.05);
  const CoordinatorRun run = run_coordinator(model, 4, 0.2);
  ASSERT_TRUE(run.results.complete());
  EXPECT_DOUBLE_EQ(*run.results.corrections[0], 0.0);
}

TEST(Coordinator, RealizedPrecisionWithinClaim) {
  // The leader's claimed precision is ρ̄ w.r.t. probe-phase information;
  // the actual execution is one member of that equivalence class.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    SystemModel model = test::bounded_model(make_ring(6), 0.01, 0.05);
    const CoordinatorRun run = run_coordinator(model, seed, 0.3);
    ASSERT_TRUE(run.results.complete());
    ASSERT_TRUE(run.results.claimed_precision.has_value());
    std::vector<double> x(model.processor_count());
    for (std::size_t p = 0; p < x.size(); ++p)
      x[p] = *run.results.corrections[p];
    EXPECT_LE(realized_precision(run.sim.execution.start_times(), x),
              *run.results.claimed_precision + 1e-9);
  }
}

TEST(Coordinator, OfflinePipelineOnFullViewsIsAtLeastAsTight) {
  // The report/correction traffic extends the views, so re-running the
  // offline pipeline afterwards can only improve the bound (§7's remark).
  SystemModel model = test::bounded_model(make_line(5), 0.01, 0.05);
  const CoordinatorRun run = run_coordinator(model, 9, 0.2);
  ASSERT_TRUE(run.results.complete());
  const auto views = run.sim.execution.views();
  const SyncOutcome offline = synchronize(model, views);
  EXPECT_LE(offline.optimal_precision.finite(),
            *run.results.claimed_precision + 1e-9);
}

TEST(Coordinator, NonDefaultLeader) {
  SystemModel model = test::bounded_model(make_line(4), 0.01, 0.05);
  CoordinatorParams params;
  params.leader = 3;
  const CoordinatorRun run = run_coordinator(model, 11, 0.2, params);
  ASSERT_TRUE(run.results.complete());
  EXPECT_DOUBLE_EQ(*run.results.corrections[3], 0.0);
}

TEST(Coordinator, SingleProcessorDegenerate) {
  SystemModel model{make_line(1)};
  const CoordinatorRun run = run_coordinator(model, 12, 0.0);
  EXPECT_TRUE(run.results.complete());
  EXPECT_DOUBLE_EQ(*run.results.corrections[0], 0.0);
  EXPECT_DOUBLE_EQ(*run.results.claimed_precision, 0.0);
}

TEST(Coordinator, ParameterValidation) {
  SystemModel model = test::bounded_model(make_line(2), 0.01, 0.05);
  CoordinatorResults results;
  CoordinatorParams params;
  params.report_at = Duration{0.1};  // before probes finish
  EXPECT_THROW(make_coordinator(&model, params, &results), Error);

  CoordinatorParams bad_leader;
  bad_leader.leader = 9;
  EXPECT_THROW(make_coordinator(&model, bad_leader, &results), Error);
  EXPECT_THROW(make_coordinator(nullptr, CoordinatorParams{}, &results),
               Error);
}

TEST(Coordinator, MessageLossCanStallTheProtocol) {
  // Known limitation, kept visible: the coordinator floods each report
  // once, so losing a report (or the correction broadcast) on a cut link
  // stalls completion.  On a line, heavy loss reliably does so; the
  // protocol must fail *quietly* (incomplete results), never with wrong
  // corrections.
  SystemModel model = test::bounded_model(make_line(4), 0.01, 0.05);
  CoordinatorResults results;
  CoordinatorParams params;
  params.warmup = Duration{0.3};
  const AutomatonFactory factory =
      make_coordinator(&model, params, &results);
  SimOptions opts;
  opts.start_offsets.assign(4, Duration{0.0});
  opts.seed = 5;
  std::vector<std::unique_ptr<DelaySampler>> samplers;
  for (std::size_t i = 0; i < 3; ++i)
    samplers.push_back(make_lossy_sampler(
        make_uniform_sampler(0.01, 0.05, 0.01, 0.05), 0.7));
  const SimResult sim =
      simulate(model, factory, std::move(samplers), opts);
  (void)sim;
  if (results.complete()) {
    // Got lucky; corrections must still be sound for the claimed bound.
    SUCCEED();
  } else {
    // Some processor never learned its correction.
    EXPECT_FALSE(results.complete());
  }
}

TEST(Coordinator, BiasModelEndToEnd) {
  SystemModel model = test::bias_model(make_ring(5), 0.02);
  const CoordinatorRun run = run_coordinator(model, 13, 0.2);
  ASSERT_TRUE(run.results.complete());
  EXPECT_TRUE(std::isfinite(*run.results.claimed_precision));
}

}  // namespace
}  // namespace cs
