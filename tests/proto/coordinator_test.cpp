// The §7 coordinator protocol: in-band distributed synchronization.
#include "proto/coordinator.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/precision.hpp"
#include "core/synchronizer.hpp"
#include "sim/fault_plan.hpp"
#include "support/builders.hpp"

namespace cs {
namespace {

struct CoordinatorRun {
  CoordinatorResults results;
  SimResult sim;
};

CoordinatorRun run_coordinator(const SystemModel& model, std::uint64_t seed,
                               double skew, CoordinatorParams params = {}) {
  Rng rng(seed);
  SimOptions opts;
  opts.start_offsets =
      random_start_offsets(model.processor_count(), skew, rng);
  opts.seed = seed;
  params.warmup = Duration{skew + 0.1};
  CoordinatorRun run;
  const AutomatonFactory factory =
      make_coordinator(&model, params, &run.results);
  run.sim = simulate(model, factory, opts);
  return run;
}

TEST(Coordinator, EveryProcessorLearnsItsCorrection) {
  for (const char* topo : {"line", "ring", "star", "complete"}) {
    Rng rng(1);
    SystemModel model =
        test::bounded_model(make_named(topo, 5, rng), 0.01, 0.05);
    const CoordinatorRun run = run_coordinator(model, 3, 0.2);
    EXPECT_TRUE(run.results.complete()) << topo;
  }
}

TEST(Coordinator, LeaderIsGaugeZero) {
  SystemModel model = test::bounded_model(make_ring(5), 0.01, 0.05);
  const CoordinatorRun run = run_coordinator(model, 4, 0.2);
  ASSERT_TRUE(run.results.complete());
  EXPECT_DOUBLE_EQ(*run.results.corrections[0], 0.0);
}

TEST(Coordinator, RealizedPrecisionWithinClaim) {
  // The leader's claimed precision is ρ̄ w.r.t. probe-phase information;
  // the actual execution is one member of that equivalence class.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    SystemModel model = test::bounded_model(make_ring(6), 0.01, 0.05);
    const CoordinatorRun run = run_coordinator(model, seed, 0.3);
    ASSERT_TRUE(run.results.complete());
    ASSERT_TRUE(run.results.claimed_precision.has_value());
    std::vector<double> x(model.processor_count());
    for (std::size_t p = 0; p < x.size(); ++p)
      x[p] = *run.results.corrections[p];
    EXPECT_LE(realized_precision(run.sim.execution.start_times(), x),
              *run.results.claimed_precision + 1e-9);
  }
}

TEST(Coordinator, OfflinePipelineOnFullViewsIsAtLeastAsTight) {
  // The report/correction traffic extends the views, so re-running the
  // offline pipeline afterwards can only improve the bound (§7's remark).
  SystemModel model = test::bounded_model(make_line(5), 0.01, 0.05);
  const CoordinatorRun run = run_coordinator(model, 9, 0.2);
  ASSERT_TRUE(run.results.complete());
  const auto views = run.sim.execution.views();
  const SyncOutcome offline = synchronize(model, views);
  EXPECT_LE(offline.optimal_precision.finite(),
            *run.results.claimed_precision + 1e-9);
}

TEST(Coordinator, NonDefaultLeader) {
  SystemModel model = test::bounded_model(make_line(4), 0.01, 0.05);
  CoordinatorParams params;
  params.leader = 3;
  const CoordinatorRun run = run_coordinator(model, 11, 0.2, params);
  ASSERT_TRUE(run.results.complete());
  EXPECT_DOUBLE_EQ(*run.results.corrections[3], 0.0);
}

TEST(Coordinator, SingleProcessorDegenerate) {
  SystemModel model{make_line(1)};
  const CoordinatorRun run = run_coordinator(model, 12, 0.0);
  EXPECT_TRUE(run.results.complete());
  EXPECT_DOUBLE_EQ(*run.results.corrections[0], 0.0);
  EXPECT_DOUBLE_EQ(*run.results.claimed_precision, 0.0);
}

TEST(Coordinator, ParameterValidation) {
  SystemModel model = test::bounded_model(make_line(2), 0.01, 0.05);
  CoordinatorResults results;
  CoordinatorParams params;
  params.report_at = Duration{0.1};  // before probes finish
  EXPECT_THROW(make_coordinator(&model, params, &results), Error);

  CoordinatorParams bad_leader;
  bad_leader.leader = 9;
  EXPECT_THROW(make_coordinator(&model, bad_leader, &results), Error);
  EXPECT_THROW(make_coordinator(nullptr, CoordinatorParams{}, &results),
               Error);
}

TEST(Coordinator, MessageLossCanStallTheProtocol) {
  // Known limitation, kept visible: the coordinator floods each report
  // once, so losing a report (or the correction broadcast) on a cut link
  // stalls completion.  On a line, heavy loss reliably does so; the
  // protocol must fail *quietly* (incomplete results), never with wrong
  // corrections.
  SystemModel model = test::bounded_model(make_line(4), 0.01, 0.05);
  CoordinatorResults results;
  CoordinatorParams params;
  params.warmup = Duration{0.3};
  const AutomatonFactory factory =
      make_coordinator(&model, params, &results);
  SimOptions opts;
  opts.start_offsets.assign(4, Duration{0.0});
  opts.seed = 5;
  std::vector<std::unique_ptr<DelaySampler>> samplers;
  for (std::size_t i = 0; i < 3; ++i)
    samplers.push_back(make_lossy_sampler(
        make_uniform_sampler(0.01, 0.05, 0.01, 0.05), 0.7));
  const SimResult sim =
      simulate(model, factory, std::move(samplers), opts);
  (void)sim;
  if (results.complete()) {
    // Got lucky; corrections must still be sound for the claimed bound.
    SUCCEED();
  } else {
    // Some processor never learned its correction.
    EXPECT_FALSE(results.complete());
  }
}

// --- compute_grace: the watchdog path (ISSUE 4 satellite) -----------------

TEST(CoordinatorWatchdog, FaultFreeRunWithGraceCompletesNormally) {
  // With no faults the grace timer fires after the compute already
  // happened: the watchdog must be a no-op, not a second compute.
  SystemModel model = test::bounded_model(make_ring(5), 0.01, 0.05);
  CoordinatorParams params;
  params.compute_grace = Duration{1.0};
  const CoordinatorRun run = run_coordinator(model, 7, 0.2, params);
  ASSERT_TRUE(run.results.complete());
  EXPECT_EQ(run.results.status, CoordinatorStatus::kComplete);
  EXPECT_EQ(run.results.reports_absorbed, 5u);
}

TEST(CoordinatorWatchdog, ComputesDegradedFromPartialReportsUnderLoss) {
  // The historic hazard MessageLossCanStallTheProtocol documents: lost
  // reports leave the leader waiting forever.  With a grace deadline it
  // computes from whatever arrived and flags the outcome degraded.
  SystemModel model = test::bounded_model(make_line(4), 0.01, 0.05);
  CoordinatorResults results;
  CoordinatorParams params;
  params.warmup = Duration{0.3};
  params.compute_grace = Duration{1.0};
  const AutomatonFactory factory =
      make_coordinator(&model, params, &results);

  // Deterministic omission: the 2-3 link is down for the whole run, so
  // processor 3's report can never reach the leader.
  FaultPlan faults;
  faults.link(2, 3).down.push_back(TimeWindow{});
  SimOptions opts;
  opts.start_offsets.assign(4, Duration{0.0});
  opts.seed = 5;
  opts.faults = &faults;

  const SimResult sim = simulate(model, factory, opts);
  (void)sim;
  EXPECT_EQ(results.status, CoordinatorStatus::kDegraded);
  ASSERT_TRUE(results.claimed_precision.has_value());
  EXPECT_LT(results.reports_absorbed, 4u);
  EXPECT_GE(results.reports_absorbed, 1u);
  // The leader always learns its own correction from the partial compute.
  EXPECT_TRUE(results.corrections[0].has_value());
  // No silent hang: the simulation drained (this test returning at all is
  // the point), and the leader did not stay kPending.
  EXPECT_NE(results.status, CoordinatorStatus::kPending);
}

TEST(CoordinatorWatchdog, SeveredLeaderStaysPendingButTerminates) {
  // Cut both of the leader's links on a ring of 4: no report other than
  // its own, but also no probe traffic *into* the leader... it still has
  // its own report (absorbed locally), so the watchdog computes degraded
  // per-component corrections rather than hanging.
  SystemModel model = test::bounded_model(make_ring(4), 0.01, 0.05);
  CoordinatorResults results;
  CoordinatorParams params;
  params.warmup = Duration{0.3};
  params.compute_grace = Duration{0.5};
  const AutomatonFactory factory =
      make_coordinator(&model, params, &results);

  FaultPlan faults;
  faults.link(0, 1).down.push_back(TimeWindow{});
  faults.link(0, 3).down.push_back(TimeWindow{});
  SimOptions opts;
  opts.start_offsets.assign(4, Duration{0.0});
  opts.seed = 6;
  opts.faults = &faults;

  simulate(model, factory, opts);
  EXPECT_EQ(results.status, CoordinatorStatus::kDegraded);
  EXPECT_EQ(results.reports_absorbed, 1u);  // only the leader's own
  // An isolated leader has no delay estimates at all: the per-component
  // precision for its singleton component is 0 and its correction is the
  // gauge zero.
  ASSERT_TRUE(results.corrections[0].has_value());
  EXPECT_DOUBLE_EQ(*results.corrections[0], 0.0);
}

TEST(CoordinatorWatchdog, GraceValidation) {
  SystemModel model = test::bounded_model(make_line(2), 0.01, 0.05);
  CoordinatorResults results;
  CoordinatorParams params;
  params.compute_grace = Duration{-0.5};
  EXPECT_THROW(make_coordinator(&model, params, &results), Error);
}

TEST(Coordinator, BiasModelEndToEnd) {
  SystemModel model = test::bias_model(make_ring(5), 0.02);
  const CoordinatorRun run = run_coordinator(model, 13, 0.2);
  ASSERT_TRUE(run.results.complete());
  EXPECT_TRUE(std::isfinite(*run.results.claimed_precision));
}

}  // namespace
}  // namespace cs
