#include "model/pairing.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "support/builders.hpp"

namespace cs {
namespace {

TEST(Pairing, EstimatedDelayLemma61) {
  // d̃(m) = d(m) + S_send - S_recv, and equals recv clock - send clock.
  const double s0 = 2.0, s1 = 5.0;
  const Execution e = test::two_node_execution(s0, s1, {0.4}, {0.7});
  for (const TracedMessage& t : trace_messages(e)) {
    const double s_from = (t.msg.from == 0) ? s0 : s1;
    const double s_to = (t.msg.to == 0) ? s0 : s1;
    EXPECT_NEAR(t.msg.estimated_delay().sec,
                t.delay().sec + s_from - s_to, 1e-12);
  }
}

TEST(Pairing, ActualDelaysMatchConstruction) {
  const Execution e = test::two_node_execution(1.0, 2.0, {0.25, 0.5}, {});
  const auto msgs = trace_messages(e);
  ASSERT_EQ(msgs.size(), 2u);
  std::vector<double> delays{msgs[0].delay().sec, msgs[1].delay().sec};
  std::sort(delays.begin(), delays.end());
  EXPECT_NEAR(delays[0], 0.25, 1e-12);
  EXPECT_NEAR(delays[1], 0.5, 1e-12);
}

TEST(Pairing, FromViewsAlone) {
  // pair_messages must work on views (no real times).
  const Execution e = test::two_node_execution(3.0, 1.0, {0.4}, {0.2});
  const auto views = e.views();
  const auto paired = pair_messages(views);
  ASSERT_EQ(paired.size(), 2u);
  for (const PairedMessage& m : paired) {
    EXPECT_NE(m.from, m.to);
    // d̃ = d + S_from - S_to with d in {0.4, 0.2}.
    if (m.from == 0) {
      EXPECT_NEAR(m.estimated_delay().sec, 0.4 + 2.0, 1e-12);
    }
    if (m.from == 1) {
      EXPECT_NEAR(m.estimated_delay().sec, 0.2 - 2.0, 1e-12);
    }
  }
}

TEST(Pairing, UnreceivedSendsAreDropped) {
  History h0(0, RealTime{0.0});
  ViewEvent send;
  send.kind = EventKind::kSend;
  send.when = ClockTime{1.0};
  send.msg = 42;
  send.peer = 1;
  h0.append(send);
  History h1(1, RealTime{0.0});
  std::vector<View> views{h0.view(), h1.view()};
  EXPECT_TRUE(pair_messages(views).empty());
}

TEST(Pairing, ReceiveWithoutSendThrows) {
  History h0(0, RealTime{0.0});
  History h1(1, RealTime{0.0});
  ViewEvent recv;
  recv.kind = EventKind::kReceive;
  recv.when = ClockTime{1.0};
  recv.msg = 7;
  recv.peer = 0;
  h1.append(recv);
  std::vector<View> views{h0.view(), h1.view()};
  EXPECT_THROW(pair_messages(views), InvalidExecution);
}

TEST(Pairing, DuplicateSendIdThrows) {
  History h0(0, RealTime{0.0});
  ViewEvent send;
  send.kind = EventKind::kSend;
  send.when = ClockTime{1.0};
  send.msg = 7;
  send.peer = 1;
  h0.append(send);
  send.when = ClockTime{2.0};
  h0.append(send);  // same id again
  History h1(1, RealTime{0.0});
  std::vector<View> views{h0.view(), h1.view()};
  EXPECT_THROW(pair_messages(views), InvalidExecution);
}

TEST(Pairing, DuplicateReceiveThrows) {
  // Regression: exactly one PairedMessage may exist per send.  A faulty
  // network re-delivering message id 7 must not inflate the sample set.
  History h0(0, RealTime{0.0});
  ViewEvent send;
  send.kind = EventKind::kSend;
  send.when = ClockTime{1.0};
  send.msg = 7;
  send.peer = 1;
  h0.append(send);
  History h1(1, RealTime{0.0});
  ViewEvent recv;
  recv.kind = EventKind::kReceive;
  recv.when = ClockTime{2.0};
  recv.msg = 7;
  recv.peer = 0;
  h1.append(recv);
  recv.when = ClockTime{3.0};
  h1.append(recv);
  std::vector<View> views{h0.view(), h1.view()};
  EXPECT_THROW(pair_messages(views, MatchPolicy::kStrict),
               InvalidExecution);
}

TEST(Pairing, DropOrphansKeepsEarliestDuplicate) {
  History h0(0, RealTime{0.0});
  ViewEvent send;
  send.kind = EventKind::kSend;
  send.when = ClockTime{1.0};
  send.msg = 7;
  send.peer = 1;
  h0.append(send);
  History h1(1, RealTime{0.0});
  ViewEvent recv;
  recv.kind = EventKind::kReceive;
  recv.when = ClockTime{2.0};
  recv.msg = 7;
  recv.peer = 0;
  h1.append(recv);
  recv.when = ClockTime{3.0};
  h1.append(recv);  // duplicate re-delivery, later
  std::vector<View> views{h0.view(), h1.view()};

  PairingStats stats;
  const auto paired =
      pair_messages(views, MatchPolicy::kDropOrphans, &stats);
  ASSERT_EQ(paired.size(), 1u);
  EXPECT_EQ(paired[0].recv_clock, ClockTime{2.0});  // the earliest copy
  EXPECT_EQ(stats.paired, 1u);
  EXPECT_EQ(stats.duplicate_receives, 1u);
  EXPECT_EQ(stats.orphan_receives, 0u);
  EXPECT_EQ(stats.unreceived_sends, 0u);
}

TEST(Pairing, StatsTallyOrphansAndUnreceivedSends) {
  History h0(0, RealTime{0.0});
  ViewEvent send;
  send.kind = EventKind::kSend;
  send.when = ClockTime{1.0};
  send.msg = 1;
  send.peer = 1;
  h0.append(send);
  send.when = ClockTime{2.0};
  send.msg = 2;  // never received (dropped in transit)
  h0.append(send);
  History h1(1, RealTime{0.0});
  ViewEvent recv;
  recv.kind = EventKind::kReceive;
  recv.when = ClockTime{1.5};
  recv.msg = 1;
  recv.peer = 0;
  h1.append(recv);
  recv.when = ClockTime{2.5};
  recv.msg = 99;  // orphan: send outside these views
  h1.append(recv);
  std::vector<View> views{h0.view(), h1.view()};

  PairingStats stats;
  const auto paired =
      pair_messages(views, MatchPolicy::kDropOrphans, &stats);
  ASSERT_EQ(paired.size(), 1u);
  EXPECT_EQ(stats.paired, 1u);
  EXPECT_EQ(stats.orphan_receives, 1u);
  EXPECT_EQ(stats.duplicate_receives, 0u);
  EXPECT_EQ(stats.unreceived_sends, 1u);
}

TEST(Pairing, EndpointMismatchThrows) {
  History h0(0, RealTime{0.0});
  ViewEvent send;
  send.kind = EventKind::kSend;
  send.when = ClockTime{1.0};
  send.msg = 7;
  send.peer = 2;  // declared destination: 2
  h0.append(send);
  History h1(1, RealTime{0.0});
  ViewEvent recv;
  recv.kind = EventKind::kReceive;  // but received by 1
  recv.when = ClockTime{2.0};
  recv.msg = 7;
  recv.peer = 0;
  h1.append(recv);
  History h2(2, RealTime{0.0});
  std::vector<View> views{h0.view(), h1.view(), h2.view()};
  EXPECT_THROW(pair_messages(views), InvalidExecution);
}

}  // namespace
}  // namespace cs
