#include "model/execution.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "support/builders.hpp"

namespace cs {
namespace {

TEST(Execution, RequiresPidIndexedHistories) {
  std::vector<History> hs;
  hs.emplace_back(1, RealTime{0.0});  // wrong: index 0 should hold pid 0
  EXPECT_THROW(Execution{std::move(hs)}, InvalidExecution);
}

TEST(Execution, StartTimesAndViews) {
  const Execution e =
      test::two_node_execution(1.0, 3.0, {0.5, 0.7}, {0.6});
  const auto starts = e.start_times();
  ASSERT_EQ(starts.size(), 2u);
  EXPECT_EQ(starts[0], RealTime{1.0});
  EXPECT_EQ(starts[1], RealTime{3.0});
  const auto views = e.views();
  EXPECT_EQ(views[0].pid, 0u);
  EXPECT_EQ(views[0].sends().size(), 2u);
  EXPECT_EQ(views[1].receives().size(), 2u);
}

TEST(Execution, ShiftedIsEquivalent) {
  const Execution e = test::two_node_execution(1.0, 2.0, {0.5}, {0.5});
  const std::vector<Duration> s{Duration{0.2}, Duration{-0.3}};
  const Execution e2 = e.shifted(s);
  EXPECT_TRUE(e.equivalent_to(e2));
  EXPECT_EQ(e2.start_times()[0], RealTime{0.8});
  EXPECT_EQ(e2.start_times()[1], RealTime{2.3});
}

TEST(Execution, ShiftChangesDelays) {
  // Shifting receiver q earlier by s reduces p->q delays by s and raises
  // q->p delays by s (the §4.1 sign convention the estimators rely on).
  const Execution e = test::two_node_execution(0.0, 0.0, {0.5}, {0.5});
  const std::vector<Duration> s{Duration{0.0}, Duration{0.2}};
  const Execution e2 = e.shifted(s);
  const auto msgs = trace_messages(e2);
  ASSERT_EQ(msgs.size(), 2u);
  for (const TracedMessage& m : msgs) {
    if (m.msg.from == 0) {
      EXPECT_NEAR(m.delay().sec, 0.3, 1e-12);
    } else {
      EXPECT_NEAR(m.delay().sec, 0.7, 1e-12);
    }
  }
}

TEST(Execution, EquivalenceDetectsDifferentViews) {
  const Execution a = test::two_node_execution(0.0, 0.0, {0.5}, {0.5});
  const Execution b = test::two_node_execution(0.0, 0.0, {0.5, 0.6}, {0.5});
  EXPECT_FALSE(a.equivalent_to(b));
}

TEST(Execution, EquivalentIffShifted) {
  // Two equivalent executions differ exactly by a shift vector: recover it.
  const Execution a = test::two_node_execution(1.0, 2.0, {0.4}, {0.6});
  const std::vector<Duration> s{Duration{0.5}, Duration{-0.1}};
  const Execution b = a.shifted(s);
  ASSERT_TRUE(a.equivalent_to(b));
  for (ProcessorId p = 0; p < 2; ++p) {
    const Duration recovered = a.start_times()[p] - b.start_times()[p];
    EXPECT_NEAR(recovered.sec, s[p].sec, 1e-12);
  }
}

TEST(Execution, EstimatedDelayInvariantUnderShift) {
  // d̃(m) is view-derived, so shifting cannot change it.
  const Execution a = test::two_node_execution(1.0, 2.5, {0.4, 0.9}, {0.6});
  const std::vector<Duration> s{Duration{0.7}, Duration{-0.4}};
  const Execution b = a.shifted(s);
  const auto ma = trace_messages(a);
  const auto mb = trace_messages(b);
  ASSERT_EQ(ma.size(), mb.size());
  for (std::size_t i = 0; i < ma.size(); ++i)
    EXPECT_NEAR(ma[i].msg.estimated_delay().sec,
                mb[i].msg.estimated_delay().sec, 1e-12);
}

}  // namespace
}  // namespace cs
