#include "model/history.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace cs {
namespace {

ViewEvent send_event(double clock, MessageId id, ProcessorId peer) {
  ViewEvent e;
  e.kind = EventKind::kSend;
  e.when = ClockTime{clock};
  e.msg = id;
  e.peer = peer;
  return e;
}

TEST(History, StartEventRecordedAtClockZero) {
  const History h(3, RealTime{7.5});
  ASSERT_EQ(h.events().size(), 1u);
  EXPECT_EQ(h.events()[0].kind, EventKind::kStart);
  EXPECT_EQ(h.events()[0].when, ClockTime{0.0});
  EXPECT_EQ(h.pid(), 3u);
  EXPECT_EQ(h.start(), RealTime{7.5});
}

TEST(History, ClockRealTimeInvariant) {
  // §2.1 condition 4: clock time of a step at real time t is t - S.
  History h(0, RealTime{2.0});
  h.append(send_event(1.5, 1, 1));
  EXPECT_EQ(h.real_time_of(0), RealTime{2.0});
  EXPECT_EQ(h.real_time_of(1), RealTime{3.5});
}

TEST(History, RejectsOutOfOrderEvents) {
  History h(0, RealTime{0.0});
  h.append(send_event(2.0, 1, 1));
  EXPECT_THROW(h.append(send_event(1.0, 2, 1)), InvalidExecution);
}

TEST(History, AllowsSimultaneousEvents) {
  History h(0, RealTime{0.0});
  h.append(send_event(1.0, 1, 1));
  EXPECT_NO_THROW(h.append(send_event(1.0, 2, 1)));
}

TEST(History, RejectsEventsBeforeStart) {
  History h(0, RealTime{0.0});
  EXPECT_THROW(h.append(send_event(-0.5, 1, 1)), InvalidExecution);
}

TEST(History, RejectsSecondStart) {
  History h(0, RealTime{0.0});
  ViewEvent e;
  e.kind = EventKind::kStart;
  EXPECT_THROW(h.append(e), InvalidExecution);
}

TEST(History, ShiftLemma41) {
  // Lemma 4.1: shift(pi, s) is a history of p with S' = S - s, and the view
  // is unchanged (the whole point of shifting).
  History h(0, RealTime{5.0});
  h.append(send_event(1.0, 1, 1));
  h.append(send_event(2.0, 2, 1));

  const History pos = h.shifted(Duration{1.5});
  EXPECT_EQ(pos.start(), RealTime{3.5});
  EXPECT_EQ(pos.view(), h.view());
  // Events moved 1.5 earlier in real time.
  EXPECT_EQ(pos.real_time_of(1), RealTime{4.5});

  const History neg = h.shifted(Duration{-2.0});
  EXPECT_EQ(neg.start(), RealTime{7.0});
  EXPECT_EQ(neg.view(), h.view());
}

TEST(History, ShiftComposition) {
  History h(0, RealTime{1.0});
  h.append(send_event(1.0, 1, 1));
  const History twice = h.shifted(Duration{0.3}).shifted(Duration{0.7});
  EXPECT_EQ(twice.start(), RealTime{0.0});
  EXPECT_EQ(twice.view(), h.view());
}

TEST(History, ViewDropsRealTimes) {
  History a(0, RealTime{0.0});
  History b(0, RealTime{100.0});
  a.append(send_event(1.0, 1, 1));
  b.append(send_event(1.0, 1, 1));
  EXPECT_EQ(a.view(), b.view());  // identical clock timelines
}

}  // namespace
}  // namespace cs
