// Faulty network: synchronize through message loss, a link outage, and a
// crashed processor.
//
// Demonstrates the degraded-mode toolchain end to end:
//   1. layer a FaultPlan over the simulator (drops + an outage + a crash),
//   2. drive sliding-window epochs over the faulty views,
//   3. read the per-epoch coverage census and the per-component precision
//      report when the surviving traffic leaves the instance partitioned,
//   4. turn on staleness carry-forward and watch the outage get bridged.
//
// Build & run:  ./build/examples/faulty_network

#include <cmath>
#include <cstdio>

#include "core/epochs.hpp"
#include "proto/beacon.hpp"
#include "sim/fault_plan.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace cs;

  // 1. A six-node ring, [2ms, 10ms] links — and a hostile environment:
  //    every link drops 15% of its messages, the 2-3 link goes down for a
  //    second, and processor 5 crashes at t=2s and never comes back.
  SystemModel model(make_ring(6));
  for (auto [a, b] : model.topology().links)
    model.set_constraint(make_bounds(a, b, 0.002, 0.010));

  FaultPlan plan;
  plan.default_link.drop_probability = 0.15;
  plan.link(2, 3).down.push_back(TimeWindow{RealTime{1.0}, RealTime{2.0}});
  plan.crash(5, RealTime{2.0});

  Metrics metrics;
  SimOptions sim_opts;
  sim_opts.start_offsets.assign(6, Duration{0.0});
  sim_opts.seed = 7;
  sim_opts.faults = &plan;
  sim_opts.metrics = &metrics;

  BeaconParams probe;
  probe.warmup = Duration{0.1};
  probe.period = Duration{0.05};
  probe.count = 70;  // beacons through ~3.55s
  const SimResult sim = simulate(model, make_beacon(probe), sim_opts);
  std::printf("delivered %zu, dropped %zu, lost to the crash %zu\n",
              sim.delivered_messages, sim.fault_dropped_messages,
              sim.crash_dropped_deliveries);

  // 2. Sliding-window epochs: each boundary sees only the last 600ms, so
  //    the outage and the crash genuinely starve links.
  const std::vector<View> views = sim.execution.views();
  const std::vector<ClockTime> boundaries{
      ClockTime{0.8}, ClockTime{1.4}, ClockTime{2.0}, ClockTime{2.6},
      ClockTime{3.2}};
  EpochOptions opts;
  opts.window = Duration{0.6};

  auto describe = [&](const std::vector<EpochOutcome>& epochs) {
    for (const EpochOutcome& ep : epochs) {
      std::printf("  t=%.1f  coverage %4.0f%%  carried %zu  ",
                  ep.boundary.sec, 100.0 * ep.coverage.fraction(),
                  ep.carried_edges);
      if (ep.sync.bounded()) {
        std::printf("precision %.6f s\n",
                    ep.sync.optimal_precision.finite());
        continue;
      }
      // 3. Partitioned epoch: report per-component guarantees instead.
      std::printf("partitioned ->");
      const auto members = ep.sync.components.members();
      for (std::size_t c = 0; c < members.size(); ++c) {
        std::printf(" {");
        for (std::size_t i = 0; i < members[c].size(); ++i)
          std::printf("%s%u", i ? "," : "", members[c][i]);
        std::printf("}@%.4f", ep.sync.component_precision[c]);
      }
      std::printf("\n");
    }
  };

  std::printf("\nwithout carry-forward:\n");
  describe(epochal_synchronize(model, views, boundaries, opts));

  // 4. Carry-forward: reuse the last observed m̃ls bound for silent links,
  //    widened 5ms per epoch of staleness, for at most 2 epochs.  The
  //    one-second outage is bridged; the dead processor eventually ages
  //    out and the partition is admitted.
  opts.staleness.carry_forward = true;
  opts.staleness.widen_per_epoch = 0.005;
  opts.staleness.max_carry_epochs = 2;
  std::printf("\nwith carry-forward (widen 5ms/epoch, max age 2):\n");
  describe(epochal_synchronize(model, views, boundaries, opts));

  std::printf("\nfault counters: dropped=%llu link_down=%llu crash=%llu\n",
              static_cast<unsigned long long>(metrics.counter("fault.dropped")),
              static_cast<unsigned long long>(
                  metrics.counter("fault.link_down_drops")),
              static_cast<unsigned long long>(
                  metrics.counter("fault.crash_dropped_deliveries")));
  return 0;
}
