// Multi-host convergence over the chronosync-wire v1 protocol.
//
// Eight NetDaemons — each with its own UDP socket, its own clock offset,
// and no shared memory — run the §7 protocol purely over datagrams:
// compact 24-bit probe/echo frames estimate per-direction delays, the
// boundary floods canonical full-width reports to the leader, the leader
// runs the optimal pipeline and floods corrections back.  This is the same
// daemon `cs_syncd --peers` runs as separate processes on a LAN; here all
// eight live in one process (one thread each) so the example is a single
// command.
//
// Checks (the ISSUE acceptance for the net subsystem):
//   * every daemon converges and holds the SAME corrections bit-for-bit;
//   * recomputing offline from the leader's collected extremes reproduces
//     the flooded corrections exactly (Lemma 6.2/6.5: extremes suffice);
//   * the realized corrected-clock spread respects the claimed Thm 4.6
//     optimal precision.
//
// Build & run:  ./build/examples/multihost_lan
// Exit: 0 = converged and verified, 1 = no convergence, 2 = check failed.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>
#include <vector>

#include "net/daemon.hpp"
#include "net/server.hpp"

int main() {
  using namespace cs;
  using namespace cs::net;

  constexpr std::size_t kN = 8;

  SystemModel model(make_complete(kN));
  for (auto [a, b] : model.topology().links)
    model.set_constraint(make_bounds(a, b, 0.0, 0.05));

  // Reserve one ephemeral loopback port per daemon (bind, record, release).
  std::vector<SocketAddress> peers(kN, loopback(0));
  {
    std::vector<int> fds;
    for (auto& addr : peers) fds.push_back(open_udp_socket(addr));
    for (const int fd : fds) ::close(fd);
  }

  // Distinct start offsets: these are the "wrong clocks" the run corrects.
  std::vector<double> offsets(kN);
  for (std::size_t p = 0; p < kN; ++p)
    offsets[p] = 0.007 * static_cast<double>(p);

  const double base =
      std::chrono::duration<double>(
          std::chrono::system_clock::now().time_since_epoch())
          .count() +
      0.3;

  std::printf("multihost_lan: %zu daemons over UDP/127.0.0.1 (wire v1)...\n",
              kN);

  std::vector<NetDaemonReport> reports(kN);
  std::vector<std::thread> threads;
  for (std::size_t p = 0; p < kN; ++p) {
    threads.emplace_back([&, p] {
      NetDaemonConfig config;
      config.id = static_cast<ProcessorId>(p);
      config.peers = peers;
      config.leader = 0;
      config.model = &model;
      config.base = base;
      config.start_offset = Duration{offsets[p]};
      config.warmup = Duration{0.05};
      config.spacing = Duration{0.02};
      config.rounds = 6;
      config.report_at = Duration{0.5};
      config.retry = Duration{0.05};
      config.linger = Duration{0.3};
      config.deadline = Duration{15.0};
      NetDaemon daemon(config);
      reports[p] = daemon.run();
    });
  }
  for (std::thread& t : threads) t.join();

  const NetDaemonReport& leader = reports[0];
  if (!leader.computed || !std::isfinite(leader.precision)) {
    std::printf("leader did not compute (reports %zu/%zu)\n",
                leader.collected.size(), kN);
    return 1;
  }
  for (std::size_t p = 0; p < kN; ++p) {
    if (!reports[p].converged) {
      std::printf("daemon %zu did not converge\n", p);
      return 1;
    }
  }

  std::uint64_t probe_obs = 0;
  std::uint64_t echo_obs = 0;
  for (const NetDaemonReport& r : reports) {
    probe_obs += r.probe_obs;
    echo_obs += r.echo_obs;
  }
  std::printf("banked %llu forward + %llu reverse observations\n",
              static_cast<unsigned long long>(probe_obs),
              static_cast<unsigned long long>(echo_obs));
  std::printf("claimed optimal precision: %.3f us\n\n",
              leader.precision * 1e6);

  // Every daemon must hold the leader's corrections exactly — they arrive
  // as canonical full-width doubles, not re-derived locally.
  for (std::size_t p = 0; p < kN; ++p) {
    if (reports[p].corrections != leader.corrections ||
        reports[p].precision != leader.precision) {
      std::printf("daemon %zu disagrees with the leader's corrections\n", p);
      return 2;
    }
  }

  // Offline cross-check: the collected extremes reproduce the flooded
  // corrections bit for bit.
  const SyncOutcome offline =
      synchronize_from_extremes(model, leader.collected, /*root=*/0);
  const bool offline_matches =
      offline.corrections == leader.corrections &&
      offline.optimal_precision.is_finite() &&
      offline.optimal_precision.value() == leader.precision;
  std::printf("offline recompute from reported extremes: %s\n",
              offline_matches ? "matches live bit-for-bit" : "DIFFERS");
  if (!offline_matches) return 2;

  // Thm 4.6 realized: corrected clock of p = local_p + x_p; local clocks
  // differ by the start offsets, so the spread of (x_p - S_p) must come in
  // under the claimed bound.
  std::vector<double> corrected(kN);
  std::printf("\n  p   offset S_p      correction x_p    corrected residual\n");
  for (std::size_t p = 0; p < kN; ++p) {
    corrected[p] = leader.corrections[p] - offsets[p];
    std::printf("  %zu   %+.6f s     %+.9f s    %+.9f s\n", p, offsets[p],
                leader.corrections[p], corrected[p]);
  }
  const auto [lo, hi] = std::minmax_element(corrected.begin(),
                                            corrected.end());
  const double realized = *hi - *lo;
  std::printf("\nrealized spread %.3f us vs claimed %.3f us: %s\n",
              realized * 1e6, leader.precision * 1e6,
              realized <= leader.precision + 1e-9 ? "within bound"
                                                  : "BOUND VIOLATED");
  if (realized > leader.precision + 1e-9) return 2;
  return 0;
}
