// Live synchronization over real UDP sockets on localhost.
//
// Eight agents, each with its own datagram socket, run the §7 protocol in
// wall-clock time: probe rounds estimate per-direction delays online,
// reports flood to the leader at an agreed *clock* time, the leader runs
// the optimal pipeline and floods corrections back.  Nothing is simulated
// — the delays are whatever the kernel's loopback interface actually does.
//
// Because real localhost delays are tiny but positive, an admissible
// declared model needs a lower bound of 0 (here [0, 1] per link).  Theorem
// 4.6 then applies to the real run: the achieved (ground-truth) precision
// must come in under the claimed bound, and the offline pipeline over the
// recorded views must agree with the live corrections bit-for-bit.
//
// Build & run:  ./build/examples/live_lan

#include <cstdio>

#include "runtime/daemon.hpp"

int main() {
  using namespace cs;

  SystemModel model(make_complete(8));
  for (auto [a, b] : model.topology().links)
    model.set_constraint(make_bounds(a, b, 0.0, 1.0));

  LiveConfig config;
  config.seed = 11;
  config.transport = LiveTransportKind::kUdp;
  config.skew = 0.05;
  config.agent.warmup = Duration{0.05};
  config.agent.spacing = Duration{0.02};
  config.agent.rounds = 4;
  config.agent.report_at = Duration{0.3};
  config.agent.period = Duration{0.3};
  config.agent.epochs = 2;
  config.deadline = Duration{20.0};

  std::printf("live_lan: 8 agents over UDP/127.0.0.1, 2 epochs...\n");
  const LiveReport report = run_live(model, config);

  if (!report.converged) {
    std::printf("did not converge (deadline %s)\n",
                report.timed_out ? "hit" : "not hit");
    return 1;
  }

  std::printf("dispatched %zu events; ingest latency mean %.1f us\n\n",
              report.dispatched,
              report.metrics.series_snapshot("runtime.ingest_latency_seconds")
                      .mean() *
                  1e6);

  for (const LiveEpochReport& ep : report.epochs) {
    std::printf("epoch %zu (boundary T=%.1f):\n", ep.epoch, ep.boundary.sec);
    std::printf("  claimed precision   %11.3f us  (leader's optimal bound)\n",
                *ep.claimed_precision * 1e6);
    std::printf("  achieved precision  %11.3f us  (ground-truth spread)\n",
                *ep.realized_precision * 1e6);
    std::printf("  offline pipeline    %11.3f us  (%s)\n",
                *ep.offline_precision * 1e6,
                ep.matches_offline ? "matches live bit-for-bit"
                                   : "differs from live");
    std::printf("  within bound: %s\n\n",
                *ep.realized_precision <= *ep.claimed_precision ? "yes"
                                                                : "NO");
  }

  std::printf("corrections (epoch %zu, seconds):\n",
              report.epochs.back().epoch);
  const auto& x = report.epochs.back().corrections;
  for (std::size_t p = 0; p < x.size(); ++p)
    std::printf("  p%zu  %+.9f\n", p, x[p]);
  return 0;
}
