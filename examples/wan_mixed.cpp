// Mixed-assumption WAN: the paper's headline use case.
//
// A 12-node two-level WAN where different links genuinely satisfy
// different delay assumptions:
//   * backbone ring links — symmetric routing, so a round-trip *bias*
//     bound holds even though absolute delays are loose (§6.2);
//   * stub access links — well-provisioned, tight [lb, ub] bounds (§6.1);
//   * one congested link — only a lower bound is known.
//
// The optimal pipeline consumes all of it at once (decomposition theorem /
// locality); an NTP-style baseline cannot use declared bounds at all.
//
// Build & run:  ./build/examples/wan_mixed

#include <cstdio>

#include "baselines/cristian.hpp"
#include "core/precision.hpp"
#include "core/synchronizer.hpp"
#include "proto/ping_pong.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace cs;

  Rng topo_rng(2026);
  SystemModel model(make_wan(12, 4, topo_rng));

  // Classify links: ring links among hubs {0..3} get bias bounds, the rest
  // get tight bounds, except one "congested" stub link.
  bool congested_assigned = false;
  for (auto [a, b] : model.topology().links) {
    const bool backbone = a < 4 && b < 4;
    if (backbone) {
      model.set_constraint(make_bias(a, b, /*bias=*/0.004));
    } else if (!congested_assigned) {
      model.set_constraint(make_lower_bound_only(a, b, /*lb=*/0.003));
      congested_assigned = true;
    } else {
      model.set_constraint(make_bounds(a, b, 0.001, 0.006));
    }
  }

  Rng rng(7);
  SimOptions opts;
  opts.start_offsets = random_start_offsets(12, /*max_skew=*/1.0, rng);
  opts.seed = 7;
  opts.delay_scale = 0.005;

  PingPongParams probe;
  probe.warmup = Duration{1.1};
  probe.rounds = 6;
  const SimResult sim = simulate(model, make_ping_pong(probe), opts);
  const auto views = sim.execution.views();

  const SyncOutcome opt = synchronize(model, views);
  const auto ntp = cristian_corrections(model, views);

  const auto starts = sim.execution.start_times();
  std::printf("12-node WAN, %zu links (bias backbone + bounded stubs + one "
              "lower-bound-only)\n\n",
              model.topology().link_count());
  std::printf("%-22s | %-14s | %-14s\n", "", "optimal", "NTP-style");
  std::printf("%-22s | %12.3f   | %12.3f\n", "guaranteed (ms)",
              opt.optimal_precision.finite() * 1e3,
              guaranteed_precision(opt.ms_estimates, ntp).finite() * 1e3);
  std::printf("%-22s | %12.3f   | %12.3f\n", "realized (ms)",
              realized_precision(starts, opt.corrections) * 1e3,
              realized_precision(starts, ntp) * 1e3);

  std::printf("\nper-processor corrections (s):\n");
  for (std::size_t p = 0; p < 12; ++p)
    std::printf("  p%-2zu  start %+8.4f   optimal %+8.4f   ntp %+8.4f\n", p,
                starts[p].sec, opt.corrections[p], ntp[p]);
  return 0;
}
