// Execution traces as a debugging instrument: record a run, replay it
// bit-identically with no simulator in the loop, then perturb a single
// recorded delivery and read off the first divergence.
//
// The replay contract (docs/TRACE.md): a trace carries every event of the
// run with round-trip-exact clock times, so re-driving the epoch pipeline
// from the trace alone must reproduce the recorded corrections, precision
// and fault counters *bitwise*.  Any edit that matters — here, one
// delivery timestamp moved 1 ms earlier, making it the binding minimum
// for its link direction — shows up as a named first divergence instead
// of a silently different answer.
//
// Build & run:  ./build/examples/trace_replay

#include <cstdio>
#include <sstream>

#include "proto/ping_pong.hpp"
#include "trace/replay.hpp"
#include "trace/writer.hpp"

int main() {
  using namespace cs;

  // A 5-ring with classical [2ms, 10ms] bounds, probed by ping-pong.
  SystemModel model(make_ring(5));
  for (auto [a, b] : model.topology().links)
    model.set_constraint(make_bounds(a, b, 0.002, 0.010));

  SimOptions opts;
  opts.seed = 42;
  opts.start_offsets = {Duration{0.02}, Duration{0.08}, Duration{0.04},
                        Duration{0.05}, Duration{0.19}};

  // 1. Record: simulate + run the epoch pipeline, streaming the trace.
  //    (cs_sync simulate does exactly this to a file.)
  std::stringstream stream;
  TraceWriter writer(stream);
  record_run(model, make_ping_pong({}), opts, ReplayPlan{}, writer);
  Trace trace = load_trace(stream);
  std::printf("recorded %zu events, %zu epoch(s)\n", trace.events.size(),
              trace.recorded.size());

  // 2. Replay: views and pipeline recomputed from the trace alone.
  const ReplayResult clean = replay(trace);
  std::printf("replay matches recording: %s\n",
              clean.matches_recording() ? "yes (bit-identical)" : "NO");
  std::printf("  precision %.17g, correction[2] %.17g\n\n",
              clean.epochs[0].sync.optimal_precision.value(),
              clean.epochs[0].sync.corrections[2]);

  // 3. Perturb: shift the first delivery 1 ms earlier.  The pipeline's
  //    m̃ls estimates are minima over delivery samples, so only a binding
  //    sample changes the answer — the first delivery of this run is one.
  for (TraceEvent& ev : trace.events)
    if (ev.kind == TraceEvent::Kind::kDeliver) {
      std::printf("perturbing delivery of msg %llu (%u -> %u): clock %.17g"
                  " - 1ms\n",
                  static_cast<unsigned long long>(ev.msg), ev.b, ev.a,
                  ev.clock.sec);
      ev.clock.sec -= 0.001;
      break;
    }

  // 4. Diagnose: the replay still runs, but no longer matches what the
  //    trace recorded — the report names the first field that moved.
  const ReplayResult perturbed = replay(trace);
  std::printf("perturbed replay matches recording: %s\n",
              perturbed.matches_recording() ? "yes" : "no");
  for (const std::string& d : perturbed.divergences)
    std::printf("  divergence: %s\n", d.c_str());
  return perturbed.matches_recording() ? 1 : 0;
}
