// Sensor grid with no upper delay bounds — the regime the paper opens up.
//
// A 4x4 grid of sensors over a lossy radio mesh: transmission and
// processing give a known *minimum* delay per hop, but congestion makes
// any upper bound a lie.  Worst-case-optimal theory says "unboundable";
// the per-instance notion (§3) still yields a concrete guarantee for each
// actual run — and repeated synchronization epochs show the guarantee
// varying with the network's mood, not with a pessimist's constant.
//
// Build & run:  ./build/examples/sensor_network

#include <cstdio>

#include "core/precision.hpp"
#include "core/synchronizer.hpp"
#include "proto/ping_pong.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace cs;

  constexpr double kFloor = 0.0015;  // 1.5ms per-hop minimum
  SystemModel model(make_grid(4, 4));
  for (auto [a, b] : model.topology().links)
    model.set_constraint(make_lower_bound_only(a, b, kFloor));

  std::printf("4x4 sensor grid, lower-bound-only links (worst case: "
              "unbounded)\n\n");
  std::printf("epoch | congestion | guaranteed (ms) | realized (ms)\n");

  for (int epoch = 0; epoch < 6; ++epoch) {
    // Every other epoch the network is congested: heavy delay tails.
    const bool congested = epoch % 2 == 1;
    const double tail = congested ? 0.030 : 0.004;

    std::vector<std::unique_ptr<DelaySampler>> samplers;
    for (std::size_t i = 0; i < model.topology().link_count(); ++i)
      samplers.push_back(make_shifted_exponential_sampler(kFloor, tail));

    Rng rng(100 + static_cast<std::uint64_t>(epoch));
    SimOptions opts;
    opts.start_offsets = random_start_offsets(16, 0.5, rng);
    opts.seed = 100 + static_cast<std::uint64_t>(epoch);

    PingPongParams probe;
    probe.warmup = Duration{0.6};
    probe.rounds = 8;
    const SimResult sim = simulate(model, make_ping_pong(probe),
                                   std::move(samplers), opts);
    const auto views = sim.execution.views();
    const SyncOutcome out = synchronize(model, views);

    std::printf("  %d   | %-10s | %12.3f    | %10.3f\n", epoch,
                congested ? "heavy" : "light",
                out.optimal_precision.finite() * 1e3,
                realized_precision(sim.execution.start_times(),
                                   out.corrections) *
                    1e3);
  }

  std::printf("\nNote: every guarantee above is finite and instance-exact "
              "even though no finite worst-case bound exists for this "
              "system.\n");
  return 0;
}
