// Campaign walkthrough: the Frank–Welch odd-ary m-toroid sweep.
//
// Frank & Welch (arXiv:1807.05139) prove the gradient-clock lower bound is
// tight exactly on odd-ary m-toroids — tori whose every side is odd — which
// makes them the natural stress family for Theorem 4.6: on every instance
// the SHIFTS precision ρ̄ must *equal* the closed-form optimum Ã^max, not
// merely bound it.  This example reproduces that sweep with the lab
// campaign engine:
//   1. expand the built-in "toroid" preset — rings and 2-D/3-D toroids with
//      odd sides, 25 seeds per cell, 200 fault-free tasks,
//   2. fan the tasks across the work-stealing pool (simulate + synchronize
//      + validate per task),
//   3. aggregate per-cell statistics and check the Theorem 4.6 equality on
//      every single instance,
//   4. re-run single-threaded and verify the deterministic report is
//      byte-identical — the seed-derivation contract of docs/LAB.md.
//
// Build & run:  ./build/examples/campaign_toroid
// CLI twin:     ./build/tools/cs_lab run --preset toroid --check

#include <cstdio>
#include <sstream>

#include "lab/campaign.hpp"
#include "lab/spec.hpp"
#include "lab/stats.hpp"

int main() {
  using namespace cs;

  // 1. The preset: 8 odd-ary cells (ring 3/5/9, toroid 3x3, 5x5, 3x3x3,
  //    5x5x5, 3x5x7), uniform [1ms, 3ms] bounds, 25 seeds each.
  const lab::CampaignSpec spec = lab::preset_campaign("toroid");
  std::printf("campaign '%s': %zu cells x %u seeds = %zu tasks\n",
              spec.name.c_str(), spec.cell_count(), spec.seeds_per_cell,
              spec.task_count());
  for (const lab::TopoSpec& topo : spec.topologies)
    std::printf("  %-14s %zu nodes, odd-ary toroid: %s\n",
                topo.describe().c_str(), topo.node_count(),
                topo.odd_ary_toroid() ? "yes" : "no");

  // 2. Run on every core.  Each task derives all of its randomness from
  //    derive_task_seed(campaign seed, task index), so the scheduling
  //    order cannot leak into the results.
  Metrics metrics;
  lab::RunOptions options;
  options.metrics = &metrics;
  const lab::CampaignResult run = lab::run_campaign(spec, options);
  std::printf("\nran %zu tasks on %zu workers (%llu steals) in %.2fs\n",
              run.results.size(), run.threads,
              static_cast<unsigned long long>(
                  metrics.counter("lab.pool.steals")),
              run.wall_seconds);

  // 3. Aggregate and interrogate: on an odd-ary toroid every fault-free
  //    task must realize ρ̄ == Ã^max up to IEEE rounding noise (the
  //    kThm46Tolerance contract), and ground truth must stay sound.
  const lab::CampaignReport report = lab::aggregate(run);
  std::printf("\n%-14s %5s %9s %12s %12s %14s\n", "cell", "tasks", "A^max",
              "ratio p95", "gap p99", "thm4.6 max gap");
  for (const lab::CellStats& cell : report.cells)
    std::printf("%-14s %5zu %9.6f %12.3f %12.3e %14.3e\n",
                cell.topology.c_str(), cell.tasks, cell.claimed.acc.mean(),
                cell.ratio.quantiles.quantile(0.95),
                cell.optimality_gap.quantiles.quantile(0.99),
                cell.thm46_max_gap);

  if (!lab::report_ok(report)) {
    std::printf("\nFAIL: a cell violated the Theorem 4.6 equality\n");
    return 1;
  }
  std::printf("\nTheorem 4.6 equality holds on all %zu instances "
              "(max gap %.3e <= tolerance %.0e)\n",
              report.bounded, report.thm46_max_gap, lab::kThm46Tolerance);

  // 4. The determinism regression, in-process: a single-threaded re-run
  //    must produce the identical timing-free report bytes.
  lab::RunOptions serial;
  serial.threads = 1;
  const lab::CampaignReport again = lab::aggregate(run_campaign(spec, serial));
  std::ostringstream parallel_json, serial_json;
  lab::write_report_json(parallel_json, report, /*include_timing=*/false);
  lab::write_report_json(serial_json, again, /*include_timing=*/false);
  if (parallel_json.str() != serial_json.str()) {
    std::printf("FAIL: thread count leaked into the report bytes\n");
    return 1;
  }
  std::printf("threads=%zu and threads=1 reports are byte-identical "
              "(%zu bytes)\n",
              run.threads, parallel_json.str().size());
  return 0;
}
