// In-band distributed synchronization with the coordinator protocol (§7).
//
// Unlike the other examples (which extract views and compute corrections
// "offline"), here the processors do everything themselves with messages:
// probe their neighbors, flood their delay statistics to a leader, and
// receive their corrections back — no outside observer involved.
//
// Build & run:  ./build/examples/distributed_sync

#include <cstdio>

#include "core/precision.hpp"
#include "proto/coordinator.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace cs;

  SystemModel model(make_ring(8));
  for (auto [a, b] : model.topology().links)
    model.set_constraint(make_bounds(a, b, 0.002, 0.008));

  Rng rng(11);
  SimOptions opts;
  opts.start_offsets = random_start_offsets(8, /*max_skew=*/0.4, rng);
  opts.seed = 11;

  CoordinatorParams params;
  params.warmup = Duration{0.5};
  params.rounds = 5;
  params.report_at = Duration{1.5};
  params.leader = 0;

  CoordinatorResults results;
  const AutomatonFactory factory =
      make_coordinator(&model, params, &results);
  const SimResult sim = simulate(model, factory, opts);

  if (!results.complete()) {
    std::printf("protocol did not complete!\n");
    return 1;
  }

  std::printf("ring of 8, coordinator protocol, leader = p0\n");
  std::printf("messages delivered: %zu (probes + reports + corrections)\n\n",
              sim.delivered_messages);

  const auto starts = sim.execution.start_times();
  std::vector<double> x(8);
  for (std::size_t p = 0; p < 8; ++p) {
    x[p] = *results.corrections[p];
    std::printf("  p%zu: start %+7.4f  learned correction %+8.5f\n", p,
                starts[p].sec, x[p]);
  }

  std::printf("\nleader's claimed precision : %8.3f ms\n",
              *results.claimed_precision * 1e3);
  std::printf("realized precision         : %8.3f ms\n",
              realized_precision(starts, x) * 1e3);
  std::printf("uncorrected spread         : %8.3f ms\n",
              realized_precision(starts, std::vector<double>(8, 0.0)) * 1e3);
  return 0;
}
