// Quickstart: synchronize a five-node ring with known delay bounds.
//
// Walks the whole public API end to end:
//   1. describe the system (topology + per-link delay assumptions),
//   2. run a probing protocol in the simulator to obtain views,
//   3. compute optimal corrections with cs::synchronize,
//   4. evaluate against ground truth (which only the simulator knows).
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/critical_cycle.hpp"
#include "core/precision.hpp"
#include "core/synchronizer.hpp"
#include "proto/ping_pong.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace cs;

  // 1. A ring of five processors; every link promises delays in
  //    [2ms, 10ms].
  SystemModel model(make_ring(5));
  for (auto [a, b] : model.topology().links)
    model.set_constraint(make_bounds(a, b, 0.002, 0.010));

  // 2. Processors start up to 500ms apart (this is the skew to fix).
  Rng rng(/*seed=*/42);
  SimOptions sim_opts;
  sim_opts.start_offsets = random_start_offsets(5, /*max_skew=*/0.5, rng);
  sim_opts.seed = 42;

  PingPongParams probe;
  probe.warmup = Duration{0.6};
  probe.rounds = 4;
  const SimResult sim = simulate(model, make_ping_pong(probe), sim_opts);

  // 3. The correction function sees only the views (Claim 3.1).
  const std::vector<View> views = sim.execution.views();
  const SyncOutcome sync = synchronize(model, views);

  // 4. Ground truth: how far apart were the clocks, and how close are the
  //    corrected clocks?
  const std::vector<RealTime> starts = sim.execution.start_times();
  const std::vector<double> zero(5, 0.0);

  std::printf("processor | start skew (s) | correction (s)\n");
  for (std::size_t p = 0; p < 5; ++p)
    std::printf("    %zu     |    %8.6f    |   %+9.6f\n", p, starts[p].sec,
                sync.corrections[p]);

  std::printf("\nuncorrected spread : %.6f s\n",
              realized_precision(starts, zero));
  std::printf("corrected spread   : %.6f s\n",
              realized_precision(starts, sync.corrections));
  std::printf("optimal guarantee  : %.6f s  (= A^max for this instance)\n",
              sync.optimal_precision.value());

  // Which processors limit the precision?  The critical cycle names them:
  // tightening the delay knowledge on its links is the only way to improve.
  const auto cycle =
      critical_cycle(sync.ms_estimates, sync.optimal_precision.value());
  std::printf("critical cycle     : ");
  for (std::size_t i = 0; i < cycle.size(); ++i)
    std::printf("p%u%s", cycle[i], i + 1 < cycle.size() ? " -> " : "");
  std::printf(" -> p%u\n", cycle.empty() ? 0 : cycle.front());
  return 0;
}
