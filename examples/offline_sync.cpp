// Offline synchronization tool: the deployment workflow end to end.
//
//   offline_sync <model-file> <views-file>
//
// Nodes log their message timestamps (views), an operator describes the
// network's delay assumptions (model), and this tool computes the optimal
// corrections plus diagnostics.  Run without arguments for a built-in
// demo that first *generates* the two files from a simulated network, then
// processes them — so the example is runnable out of the box and doubles
// as format documentation.
//
// Build & run:  ./build/examples/offline_sync

#include <cstdio>
#include <string>

#include "core/report.hpp"
#include "core/synchronizer.hpp"
#include "io/views_io.hpp"
#include "proto/ping_pong.hpp"
#include "sim/simulator.hpp"

namespace {

void run(const std::string& model_path, const std::string& views_path) {
  using namespace cs;
  const SystemModel model = load_model_file(model_path);
  const std::vector<View> views = load_views_file(views_path);
  const SyncOutcome out = synchronize(model, views);
  std::fputs(format_report(model, out).c_str(), stdout);

  // A rendering of the estimate graph for `dot -Tsvg`.
  const std::string dot_path = "/tmp/chronosync_mls.dot";
  std::FILE* f = std::fopen(dot_path.c_str(), "w");
  if (f != nullptr) {
    std::fputs(to_dot(out).c_str(), f);
    std::fclose(f);
    std::printf("wrote %s (render: dot -Tsvg %s)\n", dot_path.c_str(),
                dot_path.c_str());
  }
}

void demo() {
  using namespace cs;
  std::printf("no arguments: generating demo model + views files in /tmp\n");

  SystemModel model(make_ring(5));
  for (auto [a, b] : model.topology().links)
    model.set_constraint(make_bounds(a, b, 0.002, 0.010));

  Rng rng(2025);
  SimOptions opts;
  opts.start_offsets = random_start_offsets(5, 0.5, rng);
  opts.seed = 2025;
  PingPongParams probe;
  probe.warmup = Duration{0.6};
  const SimResult sim = simulate(model, make_ping_pong(probe), opts);

  const std::string model_path = "/tmp/chronosync_demo_model.txt";
  const std::string views_path = "/tmp/chronosync_demo_views.txt";
  save_model_file(model_path, model);
  const auto views = sim.execution.views();
  save_views_file(views_path, views);
  std::printf("wrote %s and %s\n\n", model_path.c_str(),
              views_path.c_str());

  run(model_path, views_path);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc == 3) {
      run(argv[1], argv[2]);
    } else {
      demo();
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
