// Byzantine walkthrough: two equivocators on a chorded 9-ring.
//
// Nine agents on a circulant graph (ring plus stride-2/3 chords, so every
// node has six neighbours) probe each other with ping-pong while two of
// them equivocate: each liar feeds clockwise neighbours one story and
// counter-clockwise neighbours the opposite one, at per-peer magnitudes
// drawn inside [3/8, 1/2] of mag — the sign-coordinated adversary of
// docs/BYZ.md, shaped to bias the m̃ls estimates without immediately
// tripping the negative-cycle detector.
//
//   1. run the naive pipeline against the attack: every re-sync epoch the
//      lies force GLOBAL ESTIMATES into a negative m̃ls cycle and the
//      epoch is a *detection outage* — loud, nobody is handed a bound,
//      but nobody is synchronized either;
//   2. run the identical attack against quorum validation: each m̃ls edge
//      must be corroborated by a majority of interior-disjoint 2-hop
//      routes, the equivocators' edges fail the vote and are dropped, and
//      the surviving honest subgraph synchronizes soundly — the honest
//      agents' realized spread stays inside the published bound;
//   3. print the per-epoch scorecard of both arms.
//
// Build & run:  ./build/examples/byzantine_ring
// CLI twin:     ./build/tools/cs_lab run --preset byz-quorum --check

#include <cstdio>

#include "byz/harness.hpp"

int main() {
  using namespace cs;

  // The byz presets' 9-node circulant: connectivity 6, so with f = 2 the
  // honest majority still owns most (though not all) 2-hop routes.
  static constexpr std::size_t kStrides[] = {1, 2, 3};
  SystemModel model(make_circulant(9, kStrides));
  for (auto [a, b] : model.topology().links)
    model.set_constraint(make_bounds(a, b, 0.001, 0.101));

  // One shared trial shape: 3 re-sync epochs over a 32 s horizon, delays
  // sampled from the middle quarter of the declared band so honest epochs
  // carry slack — the regime where a sub-threshold lie is even possible.
  byz::ByzTrialConfig base;
  base.horizon = 32.0;
  base.interval = 8.0;
  base.skew = 0.25;
  base.sample_lo = 0.001 + 0.375 * 0.1;
  base.sample_hi = 0.001 + 0.625 * 0.1;
  base.sim_seed = 11;
  {
    Rng rng(23);
    for (std::size_t i = 0; i < 9; ++i)
      base.start_offsets.push_back(Duration{base.skew * rng.uniform01()});
  }
  base.plan.behavior = byz::Behavior::kEquivocate;
  base.plan.f = 2;
  base.plan.magnitude = 0.10;
  base.plan.seed = 0xB12A;

  const auto score = [](const char* arm, const byz::ByzTrialResult& r) {
    std::printf("\n%s:\n", arm);
    std::printf("  %-8s %-10s %-10s %-10s %-8s\n", "epoch", "verdict",
                "claimed", "realized", "qdrop");
    for (const byz::ByzEpochRow& row : r.rows)
      std::printf("  t=%-6.0f %-10s %-10.4f %-10.4f %-8zu\n", row.boundary,
                  row.detected ? "DETECTED" : (row.sound ? "sound" : "VIOLATED"),
                  row.claimed_honest, row.realized_honest,
                  row.quorum_dropped);
    std::printf("  epochs %zu, detected %zu, violations %zu, lied stamps "
                "%zu\n",
                r.epochs, r.detected_epochs, r.violations, r.lied_stamps);
  };

  // 1. Undefended: the coordinated lies contradict each other across the
  //    chords and every epoch collapses into a detection outage.
  byz::ByzTrialConfig naive = base;
  const byz::ByzTrialResult undefended = byz::run_byz_trial(model, naive);
  if (!undefended.ok) {
    std::printf("naive trial failed: %s\n", undefended.failure.c_str());
    return 1;
  }
  score("naive estimator, f=2 equivocators", undefended);

  // 2. Defended: quorum-validate each m̃ls edge against a majority of
  //    interior-disjoint routes; the equivocators lose the vote.
  byz::ByzTrialConfig defended = base;
  defended.robust.quorum = 3;
  defended.robust.quorum_tolerance = 0.002;
  const byz::ByzTrialResult quorum = byz::run_byz_trial(model, defended);
  if (!quorum.ok) {
    std::printf("quorum trial failed: %s\n", quorum.failure.c_str());
    return 1;
  }
  score("quorum-validated estimator, same adversary", quorum);

  // 3. The contract this example exists to show.
  const bool naive_loud = undefended.detected_epochs == undefended.epochs;
  const bool quorum_clean =
      quorum.detected_epochs == 0 && quorum.violations == 0 && quorum.sound;
  std::printf("\nnaive arm all-outage: %s;  quorum arm sound: %s\n",
              naive_loud ? "yes" : "NO", quorum_clean ? "yes" : "NO");
  return naive_loud && quorum_clean ? 0 : 1;
}
