// run_live(): one fully assembled live synchronization run — transport,
// host, n SyncAgents — plus the post-run analysis: ground-truth realized
// precision, the offline cross-check over the recorded views, and optional
// trace recording for bit-for-bit replay.
//
// This is the layer `cs_sync live`, the cs_syncd daemon, examples and tests
// all call; everything below it is reusable parts, everything above it is
// argument parsing and printing.  See docs/RUNTIME.md.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "byz/plan.hpp"
#include "common/metrics.hpp"
#include "drift/scheduler.hpp"
#include "runtime/agent.hpp"
#include "runtime/udp_transport.hpp"

namespace cs {

struct ZonePlan;

enum class LiveTransportKind {
  kLoopback,          ///< virtual time, deterministic (the tier-1 mode)
  kLoopbackThreaded,  ///< wall time, in-process dispatcher thread
  kUdp,               ///< wall time, real datagram sockets on 127.0.0.1
};

const char* to_string(LiveTransportKind kind);

struct LiveConfig {
  std::uint64_t seed{1};
  /// Start offsets S_p; empty = uniform in [0, skew] drawn from the seed.
  std::vector<Duration> start_offsets;
  double skew{0.05};

  LiveTransportKind transport{LiveTransportKind::kLoopback};
  /// Loopback delay/drop knobs (ignored by UDP, which has real delays).
  double delay_scale{0.01};
  double drop_probability{0.0};
  /// UDP endpoint options (bind address, receive buffer); ignored by the
  /// loopback transports.  A bad bind address throws cs::Error at setup.
  UdpTransportOptions udp;

  /// Protocol schedule and pipeline options.
  SyncAgentParams agent;

  /// Record the run to this trace file ("" = off).  Recorded traces replay
  /// through `cs_sync replay` like simulator traces.
  std::string trace_path;

  /// Re-run the offline pipeline over the recorded views and compare
  /// per-epoch corrections/precision against the live protocol's.
  bool offline_check{true};

  /// Wall-mode run budget (virtual mode runs to quiescence).
  Duration deadline{30.0};
  std::size_t max_events{1'000'000};

  /// Optional zone plan (core/zones.hpp): splits each epoch's ground-truth
  /// realized precision into per-zone and cross-zone components in the
  /// report rows.  Not owned; must outlive the run and cover the model's
  /// processors.
  const ZonePlan* zones{nullptr};

  /// Optional drift budget (drift/scheduler.hpp).  When active, the epoch
  /// schedule is fitted to the budget before the run: `agent.period` is
  /// clamped to max_resync_interval(rho, slack) and `agent.epochs`
  /// stretched so the schedule still covers the requested span — drift can
  /// then add at most `slack` to any epoch's precision between
  /// re-synchronizations.  The fitted schedule, per-epoch drift-adjusted
  /// bounds and "runtime.drift.*" metrics land in the report.
  drift::DriftBudget drift;

  /// Optional Byzantine plan (--byz-plan grammar; byz/plan.hpp).  Lying
  /// agents corrupt the stamps in their probe/echo payloads, so the
  /// leader's computed corrections are built from poisoned d̃ streams.
  /// The recorded views keep the *true* stamps (lies are reports, not
  /// physics), so the offline bitwise cross-check is skipped on dishonest
  /// runs — it would compare against an execution the liars never showed
  /// anyone.  The ground-truth realized_precision rows still tell you what
  /// the adversary cost.
  byz::ByzPlanSpec byz;
};

struct LiveEpochReport {
  std::size_t epoch{0};
  ClockTime boundary{};
  std::vector<double> corrections;
  std::optional<double> claimed_precision;
  bool degraded{false};
  /// Detected outage: the leader's pipeline rejected the epoch's traffic
  /// (negative m̃ls cycle — wrong declared bounds or a lying agent).  No
  /// corrections; claimed_precision is +inf.
  bool detected{false};
  std::size_t reports_absorbed{0};
  std::size_t acks{0};

  /// Ground truth: max pairwise spread of the corrected clocks,
  /// max_{p,q} |(x_p - S_p) - (x_q - S_q)| — time-independent under the
  /// paper's drift-free clocks.  Thm 4.6: <= claimed_precision on every
  /// admissible run.  Unset until the epoch computed.
  std::optional<double> realized_precision;

  /// Zone split of realized_precision (set iff LiveConfig::zones and the
  /// epoch computed): max within-zone / max cross-zone discrepancy.
  std::optional<double> realized_intra;
  std::optional<double> realized_cross;

  /// Drift-adjusted promise for this epoch (set iff the run's drift budget
  /// is active and the epoch computed): claimed_precision + the budget's
  /// slack, the bound the deployment can hold until the next
  /// re-synchronization (drift/scheduler.hpp).
  std::optional<double> drift_bound;

  /// Offline pipeline over the recorded views at the same boundary
  /// (set when LiveConfig::offline_check).
  std::optional<double> offline_precision;
  std::vector<double> offline_corrections;
  /// Live corrections and precision equal the offline ones bit-for-bit.
  bool matches_offline{false};
};

struct LiveReport {
  std::string transport;
  std::size_t agents{0};
  std::vector<Duration> start_offsets;
  std::vector<LiveEpochReport> epochs;

  /// Every epoch computed and disseminated to every agent.
  bool converged{false};
  /// Offline cross-check ran and every computed epoch matched bit-for-bit.
  bool checked{false};
  bool all_match{false};
  /// The run had lying agents (LiveConfig::byz); the offline cross-check
  /// was skipped even if requested.
  bool byzantine{false};
  std::size_t byz_liars{0};
  /// Epochs the leader rejected as inadmissible (LiveEpochReport::detected).
  std::size_t detected_epochs{0};

  std::size_t dispatched{0};
  bool timed_out{false};

  /// The epoch schedule actually run (== the config's agent schedule
  /// unless an active drift budget clamped it).
  Duration resync_period{0.0};
  std::size_t resync_epochs{0};
  bool resync_clamped{false};

  /// "runtime.*" host counters merged with the offline pipeline's
  /// "stage.*"/"apsp.*" instrumentation.
  Metrics metrics;
};

/// Assemble and run a live synchronization over `model` (its processor
/// count is the agent count).  Throws cs::Error on invalid configuration.
LiveReport run_live(const SystemModel& model, const LiveConfig& config);

}  // namespace cs
