// The transport abstraction: how live agents' datagrams travel.
//
// A Transport moves WireMessages between agent endpoints opened on it.  The
// runtime keeps the surface deliberately datagram-shaped — unreliable,
// unordered, fire-and-forget — because that is the §7 protocol's actual
// requirement (probes whose loss merely starves an estimator) and because
// it keeps the two implementations honest equals:
//
//   * LoopbackTransport (loopback.hpp) — in-process bus with per-link
//     sampled delays and injectable drop.  Deterministic under a
//     VirtualTimeBase (delivery scheduling is delegated to the host's
//     event heap via VirtualScheduler); threaded with real sleeps under a
//     WallTimeBase.
//   * UdpTransport (udp_transport.hpp) — real AF_INET datagram sockets
//     over 127.0.0.1, one receive thread per agent.
//
// Threading contract: open() all endpoints, then start(), then send() from
// the host dispatch thread only.  Deliver callbacks may arrive on
// transport-owned threads (threaded modes) — hosts enqueue into a mailbox
// and dispatch on their own thread — or inline inside send() scheduling
// (virtual mode).  stop() joins all transport threads; no callback runs
// after it returns.
#pragma once

#include <functional>

#include "model/ids.hpp"
#include "sim/event.hpp"

namespace cs {

/// A datagram on the wire: the protocol payload plus addressing and the
/// globally unique message id the host assigned at send time.
struct WireMessage {
  MessageId id{0};
  ProcessorId from{0};
  ProcessorId to{0};
  Payload payload;
};

/// The scheduling capability a virtual-time transport borrows from its
/// host: instead of sleeping, it schedules the delivery onto the host's
/// deterministic event heap.
class VirtualScheduler {
 public:
  virtual ~VirtualScheduler() = default;
  virtual void schedule_delivery(RealTime at, WireMessage msg) = 0;
};

class Transport {
 public:
  using DeliverFn = std::function<void(WireMessage)>;

  virtual ~Transport() = default;

  /// Register the delivery sink for one endpoint.  All endpoints must be
  /// opened before start().
  virtual void open(ProcessorId pid, DeliverFn sink) = 0;

  virtual void start() {}

  /// Stops delivery and joins any transport threads.  Idempotent.
  virtual void stop() {}

  /// Hand a datagram to the transport.  Returns false when the transport
  /// dropped it locally (injected loss, serialization overflow) — the
  /// caller records the loss; a true return is *not* a delivery guarantee
  /// (datagram semantics).
  virtual bool send(const WireMessage& msg) = 0;

  virtual const char* name() const = 0;

  /// True when deliveries are scheduled inline through a VirtualScheduler
  /// (no transport threads, deterministic); false when they arrive on
  /// transport threads under wall time.
  virtual bool inline_delivery() const { return false; }
};

}  // namespace cs
