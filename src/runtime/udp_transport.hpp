// Real datagram transport: one AF_INET UDP socket per agent on 127.0.0.1.
//
// This is the production-shaped path of the runtime — real sockets, real
// kernel queues, real (tiny) localhost delays, one receive thread per
// endpoint.  Ports are ephemeral: every socket binds port 0 in open() and
// the actual port is learned via getsockname(), so parallel test runs never
// collide.  start() publishes the pid→address table and spawns the receive
// threads; stop() flags them down and they exit on their poll timeout.
//
// The wire format is a fixed little header plus the payload doubles,
// memcpy'd — both ends are the same process on the same machine, so no
// byte-order or layout negotiation is needed (documented limitation; this
// is a localhost lab transport, not an internet protocol).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.hpp"
#include "runtime/transport.hpp"

namespace cs {

class UdpTransport final : public Transport {
 public:
  /// Invoked (on the endpoint's receive thread) when that endpoint's
  /// receive loop gives up after persistent socket errors.
  using ErrorFn = std::function<void(ProcessorId, const std::string&)>;

  /// `agents` endpoints, ids 0..agents-1.
  explicit UdpTransport(std::size_t agents);
  ~UdpTransport() override;

  void open(ProcessorId pid, DeliverFn sink) override;
  void start() override;
  void stop() override;
  bool send(const WireMessage& msg) override;
  const char* name() const override { return "udp"; }

  /// Error-path instrumentation sink ("runtime.udp.poll_error",
  /// "runtime.udp.endpoint_failed").  Must outlive the transport; set
  /// before start().  nullptr = off.
  void set_metrics(Metrics* metrics) { metrics_ = metrics; }

  /// Failure notification for the host; set before start().
  void set_error_handler(ErrorFn handler) { on_error_ = std::move(handler); }

  /// Endpoints whose receive loop shut down on a persistent socket error
  /// (poll/recvfrom failing repeatedly — EBADF, POLLNVAL, ...).  A healthy
  /// transport reports 0 for its whole lifetime.
  std::size_t failed_endpoints() const {
    return failed_.load(std::memory_order_acquire);
  }

  /// Failure injection for tests and operators: closes the endpoint's
  /// socket out from under its receive loop.  The stale fd number is left
  /// in place so the loop observes exactly what a vanished descriptor
  /// produces (POLLNVAL / EBADF); the destructor will not double-close it.
  void close_endpoint(ProcessorId pid);

  /// Bound port of an endpoint (valid after its open()).
  std::uint16_t port_of(ProcessorId pid) const;

  /// Largest payload (in doubles) that fits one datagram.
  static std::size_t max_payload_doubles();

 private:
  void recv_loop(ProcessorId pid);

  /// Accounts one receive-path error: bumps the poll_error metric, applies
  /// bounded exponential backoff, and — after kMaxConsecutiveRecvErrors in
  /// a row — marks the endpoint failed, notifies the host, and returns
  /// false to terminate the loop.
  bool note_recv_error(ProcessorId pid, const char* what, int err,
                       int& consecutive);

  struct Endpoint {
    int fd{-1};
    std::uint16_t port{0};
    DeliverFn sink;
    std::thread reader;
    bool injected_close{false};
  };

  std::vector<Endpoint> endpoints_;
  std::atomic<bool> running_{false};
  std::atomic<std::size_t> failed_{0};
  Metrics* metrics_{nullptr};
  ErrorFn on_error_;
};

}  // namespace cs
