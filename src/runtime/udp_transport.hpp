// Real datagram transport: one AF_INET UDP socket per agent.
//
// This is the production-shaped path of the runtime — real sockets, real
// kernel queues, real (tiny) localhost delays, one receive thread per
// endpoint.  Ports are ephemeral: every socket binds port 0 in open() and
// the actual port is learned via getsockname(), so parallel test runs never
// collide.  start() publishes the pid→address table and spawns the receive
// threads; stop() flags them down and they exit on their poll timeout.
//
// The wire format is chronosync-wire v1 (net/wire.hpp): every WireMessage
// travels as one canonical Full frame — explicit framing, versioned header,
// varint ids, doubles as exact little-endian bit patterns.  A frame encoded
// here decodes identically anywhere (cs_syncd --serve, the multihost
// daemons, another architecture); the old memcpy'd struct-layout datagrams
// are gone.  Inbound datagrams that do not decode are dropped and counted
// ("runtime.udp.decode_error"), truncated ones likewise
// ("runtime.udp.recv_truncated") — never delivered, never UB.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.hpp"
#include "net/address.hpp"
#include "runtime/transport.hpp"

namespace cs {

struct UdpTransportOptions {
  /// Bind address for every endpoint, parsed with net::parse_ipv4 ("*" =
  /// INADDR_ANY).  Invalid input throws cs::Error at construction — the
  /// transport never silently falls back to loopback.
  std::string bind_address{"127.0.0.1"};
  /// Receive buffer per endpoint.  Datagrams larger than this surface as
  /// MSG_TRUNC and are dropped + counted, not decoded.  The default fits
  /// any legal datagram; tests shrink it to exercise the truncation path.
  std::size_t recv_buffer_bytes{65507};
};

class UdpTransport final : public Transport {
 public:
  /// Invoked (on the endpoint's receive thread) when that endpoint's
  /// receive loop gives up after persistent socket errors.
  using ErrorFn = std::function<void(ProcessorId, const std::string&)>;

  /// `agents` endpoints, ids 0..agents-1.  Throws cs::Error on a malformed
  /// bind address or a recv buffer too small for any frame.
  explicit UdpTransport(std::size_t agents, UdpTransportOptions options = {});
  ~UdpTransport() override;

  void open(ProcessorId pid, DeliverFn sink) override;
  void start() override;
  void stop() override;
  bool send(const WireMessage& msg) override;
  const char* name() const override { return "udp"; }

  /// Error-path instrumentation sink ("runtime.udp.poll_error",
  /// "runtime.udp.endpoint_failed", "runtime.udp.recv_truncated",
  /// "runtime.udp.decode_error", byte counters).  Must outlive the
  /// transport; set before start().  nullptr = off.
  void set_metrics(Metrics* metrics) { metrics_ = metrics; }

  /// Failure notification for the host; set before start().
  void set_error_handler(ErrorFn handler) { on_error_ = std::move(handler); }

  /// Endpoints whose receive loop shut down on a persistent socket error
  /// (poll/recvfrom failing repeatedly — EBADF, POLLNVAL, ...).  A healthy
  /// transport reports 0 for its whole lifetime.
  std::size_t failed_endpoints() const {
    return failed_.load(std::memory_order_acquire);
  }

  /// Failure injection for tests and operators: closes the endpoint's
  /// socket out from under its receive loop.  The stale fd number is left
  /// in place so the loop observes exactly what a vanished descriptor
  /// produces (POLLNVAL / EBADF); the destructor will not double-close it.
  void close_endpoint(ProcessorId pid);

  /// Bound address of an endpoint (valid after its open()).
  net::SocketAddress address_of(ProcessorId pid) const;

  /// Bound port of an endpoint (valid after its open()).
  std::uint16_t port_of(ProcessorId pid) const;

  /// Largest payload (in doubles) that fits one datagram, under the wire
  /// codec's worst-case framing overhead (net::max_full_doubles).
  static std::size_t max_payload_doubles();

 private:
  void recv_loop(ProcessorId pid);

  /// Accounts one receive-path error: bumps the poll_error metric, applies
  /// bounded exponential backoff, and — after kMaxConsecutiveRecvErrors in
  /// a row — marks the endpoint failed, notifies the host, and returns
  /// false to terminate the loop.
  bool note_recv_error(ProcessorId pid, const char* what, int err,
                       int& consecutive);

  struct Endpoint {
    int fd{-1};
    net::SocketAddress addr;
    DeliverFn sink;
    std::thread reader;
    bool injected_close{false};
  };

  UdpTransportOptions options_;
  std::uint32_t bind_ip_{0};  ///< host order, parsed once in the ctor
  std::vector<Endpoint> endpoints_;
  std::atomic<bool> running_{false};
  std::atomic<std::size_t> failed_{0};
  Metrics* metrics_{nullptr};
  ErrorFn on_error_;
};

}  // namespace cs
