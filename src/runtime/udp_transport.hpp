// Real datagram transport: one AF_INET UDP socket per agent on 127.0.0.1.
//
// This is the production-shaped path of the runtime — real sockets, real
// kernel queues, real (tiny) localhost delays, one receive thread per
// endpoint.  Ports are ephemeral: every socket binds port 0 in open() and
// the actual port is learned via getsockname(), so parallel test runs never
// collide.  start() publishes the pid→address table and spawns the receive
// threads; stop() flags them down and they exit on their poll timeout.
//
// The wire format is a fixed little header plus the payload doubles,
// memcpy'd — both ends are the same process on the same machine, so no
// byte-order or layout negotiation is needed (documented limitation; this
// is a localhost lab transport, not an internet protocol).
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "runtime/transport.hpp"

namespace cs {

class UdpTransport final : public Transport {
 public:
  /// `agents` endpoints, ids 0..agents-1.
  explicit UdpTransport(std::size_t agents);
  ~UdpTransport() override;

  void open(ProcessorId pid, DeliverFn sink) override;
  void start() override;
  void stop() override;
  bool send(const WireMessage& msg) override;
  const char* name() const override { return "udp"; }

  /// Bound port of an endpoint (valid after its open()).
  std::uint16_t port_of(ProcessorId pid) const;

  /// Largest payload (in doubles) that fits one datagram.
  static std::size_t max_payload_doubles();

 private:
  void recv_loop(ProcessorId pid);

  struct Endpoint {
    int fd{-1};
    std::uint16_t port{0};
    DeliverFn sink;
    std::thread reader;
  };

  std::vector<Endpoint> endpoints_;
  std::atomic<bool> running_{false};
};

}  // namespace cs
