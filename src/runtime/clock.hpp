// Time bases for the live runtime.
//
// The offline simulator owns real time outright: it *is* the outside
// observer, advancing `now_` as it pops its event queue.  A live runtime
// has to get real time from somewhere, and which somewhere decides whether
// a run is reproducible:
//
//   * WallTimeBase reads the process steady clock — the production mode,
//     and the mode the UDP transport runs under.  Nondeterministic by
//     nature (scheduling, network timing).
//   * VirtualTimeBase is advanced explicitly by the agent host as it
//     dispatches its deterministic event heap — the virtual-time mode the
//     tier-1 tests run the loopback transport under.  Given identical
//     seeds and configuration, two virtual runs produce identical event
//     sequences, identical traces, identical corrections (the determinism
//     contract; see docs/RUNTIME.md).
//
// Per-agent clocks reuse cs::Clock (sim/clock.hpp): the host instantiates
// one per agent with the configured start offset, and converts between the
// shared RealTime base and each agent's ClockTime exactly the way the
// simulator does — same arithmetic, same doubles, which is what makes live
// corrections bit-comparable with the offline pipeline's.
#pragma once

#include <atomic>
#include <cassert>
#include <chrono>

#include "common/time.hpp"

namespace cs {

class TimeBase {
 public:
  virtual ~TimeBase() = default;

  /// Current real time on the shared runtime timeline.
  virtual RealTime now() const = 0;

  /// True when time only moves via an explicit advance by the host (the
  /// deterministic mode); false when time flows by itself.
  virtual bool is_virtual() const = 0;
};

/// Process steady clock, zeroed at construction.
class WallTimeBase final : public TimeBase {
 public:
  WallTimeBase() : epoch_(std::chrono::steady_clock::now()) {}

  RealTime now() const override {
    const auto elapsed = std::chrono::steady_clock::now() - epoch_;
    return RealTime{std::chrono::duration<double>(elapsed).count()};
  }
  bool is_virtual() const override { return false; }

 private:
  std::chrono::steady_clock::time_point epoch_;
};

/// Host-advanced time.  Reads are thread-safe (threaded transports observe
/// it for delay scheduling); advancing is the host's privilege and must be
/// monotone.
class VirtualTimeBase final : public TimeBase {
 public:
  RealTime now() const override {
    return RealTime{now_.load(std::memory_order_acquire)};
  }
  bool is_virtual() const override { return true; }

  void advance_to(RealTime t) {
    assert(t.sec >= now_.load(std::memory_order_relaxed));
    now_.store(t.sec, std::memory_order_release);
  }

 private:
  std::atomic<double> now_{0.0};
};

}  // namespace cs
