#include "runtime/loopback.hpp"

#include <cmath>
#include <utility>

#include "common/error.hpp"

namespace cs {

namespace {

std::uint64_t link_key(ProcessorId a, ProcessorId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

}  // namespace

LoopbackTransport::LoopbackTransport(const SystemModel& model,
                                     const TimeBase& time,
                                     VirtualScheduler* sched,
                                     LoopbackOptions options)
    : model_(&model), time_(&time), sched_(sched), options_(options) {
  if (time.is_virtual() != (sched != nullptr))
    throw Error(
        "LoopbackTransport: virtual time requires a VirtualScheduler and "
        "wall time forbids one");
  if (options_.drop_probability < 0.0 || options_.drop_probability >= 1.0)
    throw Error("LoopbackTransport: drop_probability must be in [0, 1)");

  const Rng master(options_.seed);
  const auto& topo = model.topology();
  links_.reserve(topo.links.size());
  for (std::size_t i = 0; i < topo.links.size(); ++i) {
    const auto [a, b] = topo.links[i];
    Rng setup = master.split(0x5A00000u + i);
    Link link{make_admissible_sampler(model.constraint(a, b),
                                      options_.delay_scale, setup),
              master.split(2 * i), master.split(2 * i + 1)};
    link_index_[link_key(a, b)] = links_.size();
    links_.push_back(std::move(link));
  }
  sinks_.resize(model.processor_count());
}

LoopbackTransport::~LoopbackTransport() { stop(); }

void LoopbackTransport::open(ProcessorId pid, DeliverFn sink) {
  if (pid >= sinks_.size())
    throw Error("LoopbackTransport: endpoint id out of range");
  sinks_[pid] = std::move(sink);
}

void LoopbackTransport::start() {
  if (sched_ != nullptr || running_) return;
  running_ = true;
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

void LoopbackTransport::stop() {
  if (sched_ != nullptr) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    running_ = false;
  }
  cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

bool LoopbackTransport::send(const WireMessage& msg) {
  const auto it = link_index_.find(link_key(msg.from, msg.to));
  if (it == link_index_.end())
    throw Error("LoopbackTransport: send across a non-link pair " +
                std::to_string(msg.from) + "-" + std::to_string(msg.to));
  Link& link = links_[it->second];

  if (options_.drop_probability > 0.0 &&
      link.drop_rng.uniform01() < options_.drop_probability) {
    ++dropped_;
    return false;
  }

  const bool a_to_b = msg.from < msg.to;
  const RealTime now = time_->now();
  const double delay = link.sampler->sample(a_to_b, now, link.delay_rng);
  if (!std::isfinite(delay) || delay < 0.0) {
    // A lossy sampler's +inf is modeled transit loss; treat like a drop.
    ++dropped_;
    return false;
  }

  const RealTime due = now + Duration{delay};
  if (sched_ != nullptr) {
    sched_->schedule_delivery(due, msg);
    return true;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    heap_.push(Pending{due.sec, seq_++, msg});
  }
  cv_.notify_all();
  return true;
}

void LoopbackTransport::dispatcher_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (!running_) return;
    if (heap_.empty()) {
      cv_.wait(lock, [this] { return !running_ || !heap_.empty(); });
      continue;
    }
    const double due = heap_.top().due;
    const double now = time_->now().sec;
    if (now < due) {
      cv_.wait_for(lock, std::chrono::duration<double>(due - now));
      continue;
    }
    const Pending next = heap_.top();
    heap_.pop();
    lock.unlock();
    if (const DeliverFn& sink = sinks_[next.msg.to]) sink(next.msg);
    lock.lock();
  }
}

}  // namespace cs
