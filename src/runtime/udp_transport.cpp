#include "runtime/udp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/error.hpp"

namespace cs {

namespace {

// Wire layout: header then payload.data doubles.  65507 bytes is the
// largest safe UDP payload; the header is 24 bytes.
struct WireHeader {
  std::uint64_t id;
  std::uint32_t from;
  std::uint32_t to;
  std::uint32_t tag;
  std::uint32_t count;
};

constexpr std::size_t kMaxDatagram = 65507;
constexpr std::size_t kMaxDoubles =
    (kMaxDatagram - sizeof(WireHeader)) / sizeof(double);

// Receive-path errors beyond this many in a row mean the socket is gone for
// good (EBADF, shutdown-under-us); the loop then surfaces the failure and
// exits instead of spinning.  With the exponential backoff below the loop
// gives up after ~250 ms of a persistent error.
constexpr int kMaxConsecutiveRecvErrors = 8;

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

std::size_t UdpTransport::max_payload_doubles() { return kMaxDoubles; }

UdpTransport::UdpTransport(std::size_t agents) : endpoints_(agents) {}

UdpTransport::~UdpTransport() {
  stop();
  for (Endpoint& ep : endpoints_)
    if (ep.fd >= 0 && !ep.injected_close) ::close(ep.fd);
}

void UdpTransport::close_endpoint(ProcessorId pid) {
  if (pid >= endpoints_.size())
    throw Error("UdpTransport: endpoint id out of range");
  Endpoint& ep = endpoints_[pid];
  if (ep.fd < 0 || ep.injected_close) return;
  ::close(ep.fd);
  // Keep the stale fd number: the receive loop must see the descriptor
  // vanish (POLLNVAL), not silently poll a negative fd forever.
  ep.injected_close = true;
}

void UdpTransport::open(ProcessorId pid, DeliverFn sink) {
  if (pid >= endpoints_.size())
    throw Error("UdpTransport: endpoint id out of range");
  Endpoint& ep = endpoints_[pid];
  if (ep.fd >= 0) throw Error("UdpTransport: endpoint opened twice");

  ep.fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (ep.fd < 0) throw Error("UdpTransport: socket() failed");
  sockaddr_in addr = loopback_addr(0);
  if (::bind(ep.fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0)
    throw Error("UdpTransport: bind() failed");
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(ep.fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0)
    throw Error("UdpTransport: getsockname() failed");
  ep.port = ntohs(bound.sin_port);
  ep.sink = std::move(sink);
}

std::uint16_t UdpTransport::port_of(ProcessorId pid) const {
  if (pid >= endpoints_.size())
    throw Error("UdpTransport: endpoint id out of range");
  return endpoints_[pid].port;
}

void UdpTransport::start() {
  if (running_.exchange(true)) return;
  for (std::size_t pid = 0; pid < endpoints_.size(); ++pid) {
    if (endpoints_[pid].fd < 0)
      throw Error("UdpTransport: start() before all endpoints opened");
    endpoints_[pid].reader = std::thread(
        [this, pid] { recv_loop(static_cast<ProcessorId>(pid)); });
  }
}

void UdpTransport::stop() {
  if (!running_.exchange(false)) return;
  for (Endpoint& ep : endpoints_)
    if (ep.reader.joinable()) ep.reader.join();
}

bool UdpTransport::send(const WireMessage& msg) {
  if (msg.from >= endpoints_.size() || msg.to >= endpoints_.size())
    throw Error("UdpTransport: send endpoint out of range");
  if (msg.payload.data.size() > kMaxDoubles) return false;  // would truncate

  WireHeader header{msg.id, msg.from, msg.to, msg.payload.tag,
                    static_cast<std::uint32_t>(msg.payload.data.size())};
  std::vector<char> buf(sizeof header +
                        msg.payload.data.size() * sizeof(double));
  std::memcpy(buf.data(), &header, sizeof header);
  if (!msg.payload.data.empty())
    std::memcpy(buf.data() + sizeof header, msg.payload.data.data(),
                msg.payload.data.size() * sizeof(double));

  const sockaddr_in dst = loopback_addr(endpoints_[msg.to].port);
  const ssize_t sent =
      ::sendto(endpoints_[msg.from].fd, buf.data(), buf.size(), 0,
               reinterpret_cast<const sockaddr*>(&dst), sizeof dst);
  return sent == static_cast<ssize_t>(buf.size());
}

bool UdpTransport::note_recv_error(ProcessorId pid, const char* what, int err,
                                   int& consecutive) {
  metrics_increment(metrics_, "runtime.udp.poll_error");
  if (++consecutive >= kMaxConsecutiveRecvErrors) {
    metrics_increment(metrics_, "runtime.udp.endpoint_failed");
    failed_.fetch_add(1, std::memory_order_release);
    if (on_error_)
      on_error_(pid, std::string("UdpTransport endpoint ") +
                         std::to_string(pid) + ": " + what +
                         " failed persistently (errno " +
                         std::to_string(err) + ")");
    return false;
  }
  // Bounded exponential backoff: a persistent error (EBADF after the fd
  // vanished, say) must not busy-spin the thread between retries.
  std::this_thread::sleep_for(
      std::chrono::milliseconds(1L << std::min(consecutive, 6)));
  return true;
}

void UdpTransport::recv_loop(ProcessorId pid) {
  Endpoint& ep = endpoints_[pid];
  std::vector<char> buf(kMaxDatagram);
  int consecutive_errors = 0;
  while (running_.load(std::memory_order_acquire)) {
    pollfd pfd{ep.fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 50 /*ms*/);
    if (ready < 0) {
      if (errno == EINTR) continue;  // benign signal: re-check running_
      if (!note_recv_error(pid, "poll", errno, consecutive_errors)) return;
      continue;
    }
    if (ready == 0) continue;  // timeout: re-check running_
    if (pfd.revents & (POLLERR | POLLNVAL)) {
      // POLLNVAL is how a closed-under-us fd manifests: poll() "succeeds"
      // instantly with no data — the shape of the historical busy-spin.
      const int err = (pfd.revents & POLLNVAL) ? EBADF : EIO;
      if (!note_recv_error(pid, "poll-revents", err, consecutive_errors))
        return;
      continue;
    }
    const ssize_t got = ::recvfrom(ep.fd, buf.data(), buf.size(), 0,
                                   nullptr, nullptr);
    if (got < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      if (!note_recv_error(pid, "recvfrom", errno, consecutive_errors))
        return;
      continue;
    }
    consecutive_errors = 0;
    if (got < static_cast<ssize_t>(sizeof(WireHeader))) continue;

    WireHeader header;
    std::memcpy(&header, buf.data(), sizeof header);
    const std::size_t want =
        sizeof header + header.count * sizeof(double);
    if (header.count > kMaxDoubles ||
        static_cast<std::size_t>(got) != want)
      continue;  // malformed datagram: drop

    WireMessage msg;
    msg.id = header.id;
    msg.from = header.from;
    msg.to = header.to;
    msg.payload.tag = header.tag;
    msg.payload.data.resize(header.count);
    if (header.count > 0)
      std::memcpy(msg.payload.data.data(), buf.data() + sizeof header,
                  header.count * sizeof(double));
    if (ep.sink) ep.sink(std::move(msg));
  }
}

}  // namespace cs
