#include "runtime/udp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/error.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"

namespace cs {

namespace {

// Receive-path errors beyond this many in a row mean the socket is gone for
// good (EBADF, shutdown-under-us); the loop then surfaces the failure and
// exits instead of spinning.  With the exponential backoff below the loop
// gives up after ~250 ms of a persistent error.
constexpr int kMaxConsecutiveRecvErrors = 8;

}  // namespace

std::size_t UdpTransport::max_payload_doubles() {
  return net::max_full_doubles();
}

UdpTransport::UdpTransport(std::size_t agents, UdpTransportOptions options)
    : options_(std::move(options)), endpoints_(agents) {
  // Validate the bind address up front: a typo is a loud cs::Error here,
  // not a silent loopback fallback discovered in production.
  bind_ip_ = net::parse_ipv4(options_.bind_address);
  if (options_.recv_buffer_bytes < net::kHeaderBytes)
    throw Error("UdpTransport: recv_buffer_bytes smaller than a frame header");
}

UdpTransport::~UdpTransport() {
  stop();
  for (Endpoint& ep : endpoints_)
    if (ep.fd >= 0 && !ep.injected_close) ::close(ep.fd);
}

void UdpTransport::close_endpoint(ProcessorId pid) {
  if (pid >= endpoints_.size())
    throw Error("UdpTransport: endpoint id out of range");
  Endpoint& ep = endpoints_[pid];
  if (ep.fd < 0 || ep.injected_close) return;
  ::close(ep.fd);
  // Keep the stale fd number: the receive loop must see the descriptor
  // vanish (POLLNVAL), not silently poll a negative fd forever.
  ep.injected_close = true;
}

void UdpTransport::open(ProcessorId pid, DeliverFn sink) {
  if (pid >= endpoints_.size())
    throw Error("UdpTransport: endpoint id out of range");
  Endpoint& ep = endpoints_[pid];
  if (ep.fd >= 0) throw Error("UdpTransport: endpoint opened twice");

  net::SocketAddress addr{bind_ip_, 0};
  ep.fd = net::open_udp_socket(addr);  // binds, resolves the ephemeral port
  // Sends target the bound address; a wildcard bind is reachable via
  // loopback.
  if (addr.ip == INADDR_ANY) addr.ip = INADDR_LOOPBACK;
  ep.addr = addr;
  ep.sink = std::move(sink);
}

net::SocketAddress UdpTransport::address_of(ProcessorId pid) const {
  if (pid >= endpoints_.size())
    throw Error("UdpTransport: endpoint id out of range");
  return endpoints_[pid].addr;
}

std::uint16_t UdpTransport::port_of(ProcessorId pid) const {
  return address_of(pid).port;
}

void UdpTransport::start() {
  if (running_.exchange(true)) return;
  for (std::size_t pid = 0; pid < endpoints_.size(); ++pid) {
    if (endpoints_[pid].fd < 0)
      throw Error("UdpTransport: start() before all endpoints opened");
    endpoints_[pid].reader = std::thread(
        [this, pid] { recv_loop(static_cast<ProcessorId>(pid)); });
  }
}

void UdpTransport::stop() {
  if (!running_.exchange(false)) return;
  for (Endpoint& ep : endpoints_)
    if (ep.reader.joinable()) ep.reader.join();
}

bool UdpTransport::send(const WireMessage& msg) {
  if (msg.from >= endpoints_.size() || msg.to >= endpoints_.size())
    throw Error("UdpTransport: send endpoint out of range");
  if (msg.payload.data.size() > net::max_full_doubles())
    return false;  // would exceed one datagram

  net::FullMessage full;
  full.id = msg.id;
  full.from = msg.from;
  full.to = msg.to;
  full.tag = msg.payload.tag;
  full.data = msg.payload.data;
  const std::vector<std::uint8_t> buf =
      net::encode(net::Frame{std::move(full)});

  sockaddr_in dst;
  net::to_sockaddr(endpoints_[msg.to].addr, dst);
  const ssize_t sent =
      ::sendto(endpoints_[msg.from].fd, buf.data(), buf.size(), 0,
               reinterpret_cast<const sockaddr*>(&dst), sizeof dst);
  if (sent != static_cast<ssize_t>(buf.size())) return false;
  metrics_increment(metrics_, "runtime.udp.bytes_sent", buf.size());
  metrics_increment(metrics_, "runtime.udp.datagrams_sent");
  return true;
}

bool UdpTransport::note_recv_error(ProcessorId pid, const char* what, int err,
                                   int& consecutive) {
  metrics_increment(metrics_, "runtime.udp.poll_error");
  if (++consecutive >= kMaxConsecutiveRecvErrors) {
    metrics_increment(metrics_, "runtime.udp.endpoint_failed");
    failed_.fetch_add(1, std::memory_order_release);
    if (on_error_)
      on_error_(pid, std::string("UdpTransport endpoint ") +
                         std::to_string(pid) + ": " + what +
                         " failed persistently (errno " +
                         std::to_string(err) + ")");
    return false;
  }
  // Bounded exponential backoff: a persistent error (EBADF after the fd
  // vanished, say) must not busy-spin the thread between retries.
  std::this_thread::sleep_for(
      std::chrono::milliseconds(1L << std::min(consecutive, 6)));
  return true;
}

void UdpTransport::recv_loop(ProcessorId pid) {
  Endpoint& ep = endpoints_[pid];
  std::vector<std::uint8_t> buf(options_.recv_buffer_bytes);
  int consecutive_errors = 0;
  while (running_.load(std::memory_order_acquire)) {
    pollfd pfd{ep.fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 50 /*ms*/);
    if (ready < 0) {
      if (errno == EINTR) continue;  // benign signal: re-check running_
      if (!note_recv_error(pid, "poll", errno, consecutive_errors)) return;
      continue;
    }
    if (ready == 0) continue;  // timeout: re-check running_
    if (pfd.revents & (POLLERR | POLLNVAL)) {
      // POLLNVAL is how a closed-under-us fd manifests: poll() "succeeds"
      // instantly with no data — the shape of the historical busy-spin.
      const int err = (pfd.revents & POLLNVAL) ? EBADF : EIO;
      if (!note_recv_error(pid, "poll-revents", err, consecutive_errors))
        return;
      continue;
    }
    // MSG_TRUNC makes recvfrom report the datagram's REAL size even when
    // it exceeded the buffer — the only reliable truncation signal UDP
    // offers.
    const ssize_t got = ::recvfrom(ep.fd, buf.data(), buf.size(), MSG_TRUNC,
                                   nullptr, nullptr);
    if (got < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      if (!note_recv_error(pid, "recvfrom", errno, consecutive_errors))
        return;
      continue;
    }
    consecutive_errors = 0;
    if (static_cast<std::size_t>(got) > buf.size()) {
      // Truncated: the kernel discarded the tail; decoding the torso would
      // at best yield a short-frame error and at worst a wrong-but-valid
      // prefix.  Drop and count.
      metrics_increment(metrics_, "runtime.udp.recv_truncated");
      continue;
    }
    metrics_increment(metrics_, "runtime.udp.bytes_received",
                      static_cast<std::uint64_t>(got));

    const net::DecodeResult result = net::decode(std::span<const std::uint8_t>(
        buf.data(), static_cast<std::size_t>(got)));
    if (!result.ok()) {
      metrics_increment(metrics_, "runtime.udp.decode_error");
      continue;
    }
    const auto* full = std::get_if<net::FullMessage>(&result.frame.body);
    if (full == nullptr) {
      // A valid compact frame aimed at the wrong port; this transport
      // speaks Full only.
      metrics_increment(metrics_, "runtime.udp.unexpected_frame");
      continue;
    }

    WireMessage msg;
    msg.id = full->id;
    msg.from = full->from;
    msg.to = full->to;
    msg.payload.tag = full->tag;
    msg.payload.data = full->data;
    if (ep.sink) ep.sink(std::move(msg));
  }
}

}  // namespace cs
