// SyncAgent: the §7 probe → report → compute → disseminate protocol as a
// live, multi-epoch automaton.
//
// Each agent ping-pongs probes with its neighbors (every probe and echo
// carries its send clock, so the receiver banks d̃ = T_recv − T_send per
// incoming direction — Lemma 6.1 online, via OnlineEstimator).  At each
// epoch boundary T_k = report_at + (k−1)·period it snapshots the boundary's
// cumulative cut as a *delta report* (observations newly inside the cut)
// and floods it; the leader accumulates deltas into the cumulative
// LinkTraffic, and when it holds all n reports of epoch k it runs the same
// pipeline tail the offline epoch driver runs — mls_graph_from_traffic
// followed by IncrementalSynchronizer::step_mls — and floods corrections.
// Because the cut predicate, the pairing dedup, the d̃ doubles, and the
// pipeline entry point all match the offline path exactly, a deterministic
// run's converged corrections equal the offline pipeline's bit-for-bit
// (for constraints whose m̃ls depends on delays only through per-direction
// extremes — bounds and bias; the windowed-bias m̃ls is order-sensitive
// and matches only approximately).  docs/RUNTIME.md states the contract.
//
// Watchdog: with `grace` > 0 the leader arms a deadline at T_k + grace; if
// reports are still missing when it fires, it computes from what arrived —
// degraded coverage, possibly per-component precision — and floods the
// (flagged) result rather than stalling the protocol forever.  Reports
// arriving after a degraded compute still join the cumulative traffic for
// the next epoch.
//
// The automaton runs over Context (sim/automaton.hpp), so the same class
// runs under the simulator and under the live AgentHost unchanged — the
// runtime's own automata stay on the processor side of the clock fence.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "byz/plan.hpp"
#include "core/synchronizer.hpp"
#include "sim/simulator.hpp"

namespace cs {

inline constexpr std::uint32_t kTagLiveProbe = 20;
inline constexpr std::uint32_t kTagLiveEcho = 21;
inline constexpr std::uint32_t kTagLiveReport = 22;
inline constexpr std::uint32_t kTagLiveCorrections = 23;

struct SyncAgentParams {
  /// First probe fires at this clock time.
  Duration warmup{0.2};
  /// Gap between probe rounds (and before the first round of later epochs).
  Duration spacing{0.05};
  /// Probe rounds per epoch (each round pings every neighbor).
  std::size_t rounds{4};
  /// First epoch boundary T_1 (a clock time; must exceed the probe phase).
  Duration report_at{1.0};
  /// Boundary spacing: T_{k+1} = T_k + period.
  Duration period{1.0};
  std::size_t epochs{1};
  /// Leader watchdog: at T_k + grace a still-incomplete epoch is computed
  /// from the reports that made it (degraded).  Zero disables — the leader
  /// then waits indefinitely, and only the host deadline bounds the run.
  Duration grace{0.0};
  ProcessorId leader{0};
  /// Pipeline options for the leader's compute (root is forced to
  /// `leader`, match to kDropOrphans — the epoch-cut pairing policy).
  SyncOptions sync;
  /// Optional Byzantine plan (byz/plan.hpp): lying agents corrupt the
  /// clock stamps they write into probe/echo *payloads* — the values their
  /// peers' online estimators consume — via lie_payload_stamp.  The host's
  /// own event records stay truthful (lies are reports, never physics), so
  /// the offline cross-check over recorded views diverges by design;
  /// run_live skips the bitwise comparison when the plan is dishonest.
  /// Not owned; must outlive the run.  nullptr = all honest.
  const byz::ByzPlan* byz{nullptr};
};

/// One epoch's converged state in the shared results sink.
struct LiveEpoch {
  std::size_t epoch{0};  ///< 1-based protocol epoch number
  ClockTime boundary{};
  std::vector<double> corrections;  ///< empty until computed
  std::optional<double> claimed_precision;  ///< +inf encodes unbounded
  bool degraded{false};
  /// The leader's pipeline hit a negative m̃ls cycle at this boundary: the
  /// traffic contradicts the declared assumptions (wrong bounds, or a lying
  /// agent — byz/plan.hpp).  The epoch is an outage: no corrections, the
  /// claimed precision is +inf, and the outage notice was flooded so the
  /// protocol still terminates.
  bool detected{false};
  std::size_t reports_absorbed{0};
  std::size_t acks{0};  ///< agents that saw the corrections flood

  bool computed() const { return claimed_precision.has_value(); }
};

/// Shared by all agents of one run.  Thread-compatible, not thread-safe:
/// the host dispatches every callback on one thread, and results are read
/// after the run quiesces.
class LiveResults {
 public:
  LiveResults(std::size_t agents, const SyncAgentParams& params);

  std::size_t agent_count() const { return agents_; }
  LiveEpoch& epoch(std::size_t k);  ///< 1-based
  const std::vector<LiveEpoch>& epochs() const { return epochs_; }

  /// Record that `pid` received (or, for the leader, produced) epoch k's
  /// corrections; idempotent per (k, pid).
  void ack(std::size_t k, ProcessorId pid);

  /// Every epoch computed and its corrections seen by every agent.
  bool all_complete() const;

 private:
  std::size_t agents_;
  std::vector<LiveEpoch> epochs_;
  std::vector<std::vector<bool>> acked_;
};

/// The epoch boundary schedule the agents follow — the exact ClockTime
/// doubles, for handing to the offline epoch driver as its boundary list.
std::vector<ClockTime> sync_agent_boundaries(const SyncAgentParams& params);

/// `model` and `results` must outlive the run.  Validates the schedule
/// (probe phase before T_1, probes of each epoch before its boundary).
AutomatonFactory make_sync_agents(const SystemModel* model,
                                  SyncAgentParams params,
                                  LiveResults* results);

}  // namespace cs
