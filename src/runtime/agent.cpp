#include "runtime/agent.hpp"

#include <limits>
#include <map>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "core/incremental.hpp"
#include "core/local_estimates.hpp"
#include "runtime/online.hpp"

namespace cs {

LiveResults::LiveResults(std::size_t agents, const SyncAgentParams& params)
    : agents_(agents) {
  const std::vector<ClockTime> bounds = sync_agent_boundaries(params);
  epochs_.resize(bounds.size());
  acked_.assign(bounds.size(), std::vector<bool>(agents, false));
  for (std::size_t k = 0; k < bounds.size(); ++k) {
    epochs_[k].epoch = k + 1;
    epochs_[k].boundary = bounds[k];
  }
}

LiveEpoch& LiveResults::epoch(std::size_t k) {
  if (k == 0 || k > epochs_.size())
    throw Error("LiveResults: epoch index out of range");
  return epochs_[k - 1];
}

void LiveResults::ack(std::size_t k, ProcessorId pid) {
  LiveEpoch& e = epoch(k);
  std::vector<bool>& seen = acked_[k - 1];
  if (pid >= agents_ || seen[pid]) return;
  seen[pid] = true;
  ++e.acks;
}

bool LiveResults::all_complete() const {
  for (const LiveEpoch& e : epochs_)
    if (!e.computed() || e.acks < agents_) return false;
  return true;
}

std::vector<ClockTime> sync_agent_boundaries(const SyncAgentParams& params) {
  std::vector<ClockTime> out;
  out.reserve(params.epochs);
  // Iterative addition: agents arm their report timers with exactly these
  // doubles, so the offline driver handed this vector cuts at identical
  // boundaries.
  ClockTime t = ClockTime{} + params.report_at;
  for (std::size_t k = 0; k < params.epochs; ++k) {
    out.push_back(t);
    t = t + params.period;
  }
  return out;
}

namespace {

class SyncAgentAutomaton final : public Automaton {
 public:
  SyncAgentAutomaton(ProcessorId self, const SystemModel* model,
                     const SyncAgentParams& params, LiveResults* results)
      : self_(self), model_(model), params_(params), results_(results) {
    if (params_.byz != nullptr) {
      const byz::AgentPlan* a = params_.byz->agent(self_);
      if (a != nullptr && a->lies()) {
        liar_ = a;
        // Same per-pid stream split as the simulator's ByzInjector, so a
        // live liar and a simulated one draw identical noise.
        byz_rng_ = Rng(params_.byz->seed).split(self_);
      }
    }
    if (self_ == params_.leader) {
      SyncOptions sync = params_.sync;
      sync.root = params_.leader;
      sync.match = MatchPolicy::kDropOrphans;
      synchronizer_.emplace(*model_, sync);
      report_count_.assign(params_.epochs + 1, 0);
      pending_obs_.resize(params_.epochs + 1);
    }
  }

  void on_start(Context& ctx) override {
    boundaries_ = sync_agent_boundaries(params_);
    if (params_.rounds > 0)
      arm(ctx, ctx.now() + params_.warmup, Timer::kProbe, 1);
    arm(ctx, boundaries_[0], Timer::kReport, 1);
  }

  void on_timer(Context& ctx, ClockTime at) override {
    // Timers are discriminated by their armed clock value, which the host
    // and the simulator both hand back verbatim.
    const auto it = timers_.find(at.sec);
    if (it == timers_.end()) return;
    const Armed armed = it->second;
    timers_.erase(it);
    switch (armed.kind) {
      case Timer::kProbe:
        do_probe(ctx, armed.epoch);
        break;
      case Timer::kReport:
        do_report(ctx, armed.epoch);
        break;
      case Timer::kGrace:
        do_grace(ctx, armed.epoch);
        break;
    }
  }

  void on_message(Context& ctx, const Message& msg) override {
    switch (msg.payload.tag) {
      case kTagLiveProbe: {
        ingest(ctx, msg);
        Payload echo;
        echo.tag = kTagLiveEcho;
        echo.data = {stamp_for(ctx, msg.from)};
        ctx.send(msg.from, echo);
        break;
      }
      case kTagLiveEcho:
        ingest(ctx, msg);
        break;
      case kTagLiveReport:
        handle_report(ctx, msg);
        break;
      case kTagLiveCorrections:
        handle_corrections(ctx, msg);
        break;
      default:
        break;
    }
  }

 private:
  enum class Timer { kProbe, kReport, kGrace };
  struct Armed {
    Timer kind;
    std::size_t epoch;  // 1-based
  };

  void arm(Context& ctx, ClockTime at, Timer kind, std::size_t epoch) {
    timers_.emplace(at.sec, Armed{kind, epoch});
    ctx.set_timer(at);
  }

  void ingest(Context& ctx, const Message& msg) {
    if (msg.payload.data.empty()) return;
    estimator_.ingest(msg.from, msg.id, ClockTime{msg.payload.data[0]},
                      ctx.now());
  }

  void do_probe(Context& ctx, std::size_t epoch) {
    // Per-neighbor payloads: honest agents stamp identical values, an
    // equivocator tells each neighbor its own story.
    for (ProcessorId nb : ctx.neighbors()) {
      Payload probe;
      probe.tag = kTagLiveProbe;
      probe.data = {stamp_for(ctx, nb)};
      ctx.send(nb, probe);
    }
    if (++rounds_sent_ < params_.rounds)
      arm(ctx, ctx.now() + params_.spacing, Timer::kProbe, epoch);
  }

  /// The clock stamp written into a payload addressed to `peer`; truthful
  /// unless this agent is assigned a lie (byz/plan.hpp).
  double stamp_for(Context& ctx, ProcessorId peer) {
    const ClockTime truth = ctx.now();
    if (liar_ == nullptr) return truth.sec;
    return byz::lie_payload_stamp(*liar_, params_.byz->seed, truth, peer,
                                  byz_rng_, byz_last_truth_)
        .sec;
  }

  // Report payload: [origin, epoch, ndirs, then per direction: peer, count,
  // then count x (send, delay)].  The delta observations reconstruct the
  // cumulative LinkTraffic at the leader exactly.
  void do_report(Context& ctx, std::size_t epoch) {
    const ClockTime boundary = boundaries_[epoch - 1];
    const std::vector<ReportObs> delta = estimator_.take_report(boundary);

    Payload report;
    report.tag = kTagLiveReport;
    report.data = {static_cast<double>(self_), static_cast<double>(epoch)};
    const std::size_t ndirs_slot = report.data.size();
    report.data.push_back(0.0);
    std::size_t ndirs = 0;
    for (std::size_t i = 0; i < delta.size();) {
      const ProcessorId peer = delta[i].peer;
      std::size_t j = i;
      while (j < delta.size() && delta[j].peer == peer) ++j;
      report.data.push_back(static_cast<double>(peer));
      report.data.push_back(static_cast<double>(j - i));
      for (; i < j; ++i) {
        report.data.push_back(delta[i].obs.send);
        report.data.push_back(delta[i].obs.delay);
      }
      ++ndirs;
    }
    report.data[ndirs_slot] = static_cast<double>(ndirs);

    if (self_ == params_.leader) {
      absorb_report(report.data);
      maybe_compute(ctx);
      if (params_.grace > Duration{0.0} && computed_through_ < epoch)
        arm(ctx, ctx.now() + params_.grace, Timer::kGrace, epoch);
    } else {
      for (ProcessorId nb : ctx.neighbors()) ctx.send(nb, report);
    }

    // Schedule the next epoch: a fresh probe phase, then its boundary.
    if (epoch < params_.epochs) {
      rounds_sent_ = 0;
      if (params_.rounds > 0)
        arm(ctx, ctx.now() + params_.spacing, Timer::kProbe, epoch + 1);
      arm(ctx, boundaries_[epoch], Timer::kReport, epoch + 1);
    }
  }

  void handle_report(Context& ctx, const Message& msg) {
    const auto& d = msg.payload.data;
    if (d.size() < 3) return;
    const auto origin = static_cast<ProcessorId>(d[0]);
    const auto epoch = static_cast<std::size_t>(d[1]);
    const std::uint64_t key =
        (static_cast<std::uint64_t>(origin) << 32) | epoch;
    if (!seen_reports_.insert(key).second) return;  // flood duplicate

    if (self_ == params_.leader) {
      if (epoch == 0 || epoch > params_.epochs) return;
      absorb_report(d);
      maybe_compute(ctx);
    } else {
      for (ProcessorId nb : ctx.neighbors())
        if (nb != msg.from) ctx.send(nb, msg.payload);
    }
  }

  void absorb_report(const std::vector<double>& d) {
    const auto origin = static_cast<ProcessorId>(d[0]);
    const auto epoch = static_cast<std::size_t>(d[1]);
    const auto ndirs = static_cast<std::size_t>(d[2]);
    std::size_t pos = 3;
    std::vector<std::pair<ProcessorId, TimedObs>> parsed;
    for (std::size_t dir = 0; dir < ndirs && pos + 2 <= d.size(); ++dir) {
      const auto peer = static_cast<ProcessorId>(d[pos]);
      const auto count = static_cast<std::size_t>(d[pos + 1]);
      pos += 2;
      for (std::size_t i = 0; i < count && pos + 2 <= d.size();
           ++i, pos += 2)
        parsed.emplace_back(peer, TimedObs{d[pos], d[pos + 1]});
    }

    if (epoch <= computed_through_) {
      // The epoch was already (degraded-)computed; the late observations
      // still join the cumulative traffic for the next boundary.
      for (const auto& [peer, obs] : parsed)
        traffic_.add(peer, origin, obs);
    } else {
      auto& staged = pending_obs_[epoch];
      for (const auto& [peer, obs] : parsed)
        staged.emplace_back(peer, origin, obs);
    }
    ++report_count_[epoch];
    results_->epoch(epoch).reports_absorbed = report_count_[epoch];
  }

  void maybe_compute(Context& ctx) {
    while (computed_through_ < params_.epochs &&
           report_count_[computed_through_ + 1] >=
               model_->processor_count())
      compute(ctx, computed_through_ + 1, /*degraded=*/false);
  }

  void do_grace(Context& ctx, std::size_t epoch) {
    // Deadline for epoch `epoch`: compute everything still owed up to it
    // from whatever arrived, then resume normal sequencing.
    while (computed_through_ < epoch) {
      const std::size_t next = computed_through_ + 1;
      compute(ctx, next,
              report_count_[next] < model_->processor_count());
    }
    maybe_compute(ctx);
  }

  void compute(Context& ctx, std::size_t epoch, bool degraded) {
    // Merge staged deltas of every epoch up to this boundary, in epoch
    // order then arrival order, into the cumulative traffic.
    for (std::size_t e = 1; e <= epoch; ++e) {
      for (const auto& [peer, origin, obs] : pending_obs_[e])
        traffic_.add(peer, origin, obs);
      pending_obs_[e].clear();
    }
    computed_through_ = epoch;

    Digraph mls = mls_graph_from_traffic(*model_, traffic_);
    LiveEpoch& result = results_->epoch(epoch);
    SyncOutcome out;
    bool detected = false;
    try {
      out = synchronizer_->step_mls(std::move(mls));
    } catch (const InvalidAssumption&) {
      // The cumulative traffic contradicts the declared delay assumptions —
      // either the bounds are wrong or someone is lying (byz/plan.hpp).
      // Treat it as a detected outage, not a crash: the epoch computes no
      // corrections, the outage is flooded so every agent acks and the
      // protocol terminates, and the next boundary retries from a clean
      // synchronizer (step_mls resets on failure).
      detected = true;
    }

    result.detected = detected;
    result.degraded = degraded;
    if (detected) {
      result.claimed_precision = std::numeric_limits<double>::infinity();
    } else {
      result.corrections = out.corrections;
      result.claimed_precision = out.optimal_precision.value();
    }
    results_->ack(epoch, self_);

    Payload corr;
    corr.tag = kTagLiveCorrections;
    corr.data = {static_cast<double>(epoch),
                 (degraded ? 1.0 : 0.0) + (detected ? 2.0 : 0.0),
                 *result.claimed_precision,
                 static_cast<double>(out.corrections.size())};
    corr.data.insert(corr.data.end(), out.corrections.begin(),
                     out.corrections.end());
    seen_corrections_.insert(epoch);
    for (ProcessorId nb : ctx.neighbors()) ctx.send(nb, corr);
  }

  void handle_corrections(Context& ctx, const Message& msg) {
    const auto& d = msg.payload.data;
    if (d.size() < 4) return;
    const auto epoch = static_cast<std::size_t>(d[0]);
    if (epoch == 0 || epoch > params_.epochs) return;
    if (!seen_corrections_.insert(epoch).second) return;
    results_->ack(epoch, self_);
    for (ProcessorId nb : ctx.neighbors())
      if (nb != msg.from) ctx.send(nb, msg.payload);
  }

  ProcessorId self_;
  const SystemModel* model_;
  SyncAgentParams params_;
  LiveResults* results_;

  std::vector<ClockTime> boundaries_;
  std::multimap<double, Armed> timers_;
  std::size_t rounds_sent_{0};

  OnlineEstimator estimator_;
  std::set<std::uint64_t> seen_reports_;
  std::set<std::size_t> seen_corrections_;

  // Byzantine payload-lie state (set iff this agent is assigned a lie).
  const byz::AgentPlan* liar_{nullptr};
  Rng byz_rng_{0};
  ClockTime byz_last_truth_{};

  // Leader-only state.
  std::optional<IncrementalSynchronizer> synchronizer_;
  LinkTraffic traffic_;
  std::vector<std::size_t> report_count_;  // indexed by epoch, 1-based
  std::vector<std::vector<std::tuple<ProcessorId, ProcessorId, TimedObs>>>
      pending_obs_;
  std::size_t computed_through_{0};
};

}  // namespace

AutomatonFactory make_sync_agents(const SystemModel* model,
                                  SyncAgentParams params,
                                  LiveResults* results) {
  if (model == nullptr || results == nullptr)
    throw Error("make_sync_agents: model and results must be non-null");
  if (params.epochs == 0)
    throw Error("make_sync_agents: at least one epoch required");
  if (params.leader >= model->processor_count())
    throw Error("make_sync_agents: leader id out of range");
  if (params.spacing <= Duration{0.0} || params.period <= Duration{0.0})
    throw Error("make_sync_agents: spacing and period must be positive");
  if (params.report_at.sec <=
      params.warmup.sec +
          static_cast<double>(params.rounds) * params.spacing.sec)
    throw Error(
        "make_sync_agents: report_at must come after the probe phase");
  if (params.period.sec <=
      static_cast<double>(params.rounds + 1) * params.spacing.sec)
    throw Error(
        "make_sync_agents: period too short for the per-epoch probe phase");
  if (results->agent_count() != model->processor_count() ||
      results->epochs().size() != params.epochs)
    throw Error("make_sync_agents: results sized for a different run");
  return [model, params, results](ProcessorId self) {
    return std::make_unique<SyncAgentAutomaton>(self, model, params,
                                                results);
  };
}

}  // namespace cs
