#include "runtime/online.hpp"

#include "common/error.hpp"

namespace cs {

OnlineViewBuilder::OnlineViewBuilder(std::size_t processors)
    : views_(processors) {
  for (std::size_t p = 0; p < processors; ++p)
    views_[p].pid = static_cast<ProcessorId>(p);
}

void OnlineViewBuilder::start(ProcessorId pid) {
  ViewEvent ev;
  ev.kind = EventKind::kStart;
  ev.when = ClockTime{0.0};
  views_.at(pid).events.push_back(ev);
}

void OnlineViewBuilder::send(ProcessorId pid, ClockTime when, MessageId msg,
                             ProcessorId peer) {
  ViewEvent ev;
  ev.kind = EventKind::kSend;
  ev.when = when;
  ev.msg = msg;
  ev.peer = peer;
  views_.at(pid).events.push_back(ev);
}

void OnlineViewBuilder::receive(ProcessorId pid, ClockTime when,
                                MessageId msg, ProcessorId peer) {
  ViewEvent ev;
  ev.kind = EventKind::kReceive;
  ev.when = when;
  ev.msg = msg;
  ev.peer = peer;
  views_.at(pid).events.push_back(ev);
}

void OnlineViewBuilder::timer_set(ProcessorId pid, ClockTime when,
                                  ClockTime at) {
  ViewEvent ev;
  ev.kind = EventKind::kTimerSet;
  ev.when = when;
  ev.timer_at = at;
  views_.at(pid).events.push_back(ev);
}

void OnlineViewBuilder::timer_fire(ProcessorId pid, ClockTime when,
                                   ClockTime at) {
  ViewEvent ev;
  ev.kind = EventKind::kTimerFire;
  ev.when = when;
  ev.timer_at = at;
  views_.at(pid).events.push_back(ev);
}

void OnlineEstimator::ingest(ProcessorId peer, MessageId msg,
                             ClockTime send_clock, ClockTime recv_clock) {
  if (!seen_.insert(msg).second) return;  // redelivery: keep the earliest
  Banked banked;
  banked.obs.send = send_clock.sec;
  banked.obs.delay = recv_clock.sec - send_clock.sec;
  banked.recv = recv_clock.sec;
  incoming_[peer].push_back(banked);
  ++total_;
}

std::vector<ReportObs> OnlineEstimator::take_report(ClockTime boundary) {
  std::vector<ReportObs> out;
  for (auto& [peer, list] : incoming_) {
    for (Banked& banked : list) {
      if (banked.reported) continue;
      if (!(banked.obs.send < boundary.sec && banked.recv < boundary.sec))
        continue;
      banked.reported = true;
      out.push_back(ReportObs{peer, banked.obs});
    }
  }
  return out;
}

DirectedStats OnlineEstimator::stats(ProcessorId peer) const {
  DirectedStats stats;
  const auto it = incoming_.find(peer);
  if (it == incoming_.end()) return stats;
  for (const Banked& banked : it->second) stats.add(banked.obs.delay);
  return stats;
}

DirectedStats OnlineEstimator::window_stats(ProcessorId peer,
                                            ClockTime boundary,
                                            Duration window) const {
  if (window <= Duration{0.0})
    throw Error("OnlineEstimator::window_stats: window must be positive");
  DirectedStats stats;
  const auto it = incoming_.find(peer);
  if (it == incoming_.end()) return stats;
  const double from = (boundary - window).sec;
  for (const Banked& banked : it->second)
    if (banked.recv >= from && banked.recv < boundary.sec)
      stats.add(banked.obs.delay);
  return stats;
}

}  // namespace cs
