// In-process loopback bus with sampled per-link delays and injectable drop.
//
// The loopback transport is the live runtime's counterpart of the
// simulator's delay layer: each topology link gets an admissible
// DelaySampler built from its declared constraint (make_admissible_sampler)
// and its own RNG stream split from the master seed, so traffic on one link
// never perturbs delays on another (§5.1 locality at the generator level)
// and a fixed seed fixes every delay draw.
//
// Two modes, chosen by the TimeBase handed in:
//   * virtual (deterministic): sends are sampled and handed to the host's
//     VirtualScheduler; the transport owns no threads and the whole run is
//     a deterministic single-threaded event loop.  This is the tier-1 mode
//     whose converged corrections must match the offline pipeline
//     bit-for-bit.
//   * threaded (wall time): a dispatcher thread holds a due-time heap and
//     sleeps until each delivery is due — a real concurrent transport with
//     the same sampled-delay distribution, used to exercise the mailbox /
//     thread-safety paths (and ThreadSanitizer) without sockets.
//
// Injected drop: each datagram is dropped with `drop_probability` from a
// dedicated RNG stream; send() returns false so the host can record the
// loss in the trace (LossCause::kFaultDrop — same bookkeeping as the fault
// injector's drops).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "delaymodel/assignment.hpp"
#include "runtime/clock.hpp"
#include "runtime/transport.hpp"
#include "sim/delay_sampler.hpp"

namespace cs {

struct LoopbackOptions {
  std::uint64_t seed{1};
  /// Typical delay magnitude where constraints leave freedom (same meaning
  /// as SimOptions::delay_scale).
  double delay_scale{0.1};
  /// Probability of dropping each datagram (independent per message).
  double drop_probability{0.0};
};

class LoopbackTransport final : public Transport {
 public:
  /// Virtual mode: `time` must be a VirtualTimeBase and `sched` non-null
  /// (the host); threaded mode: `time` is a WallTimeBase and `sched` is
  /// null.  `model` and `time` must outlive the transport.
  LoopbackTransport(const SystemModel& model, const TimeBase& time,
                    VirtualScheduler* sched, LoopbackOptions options);
  ~LoopbackTransport() override;

  void open(ProcessorId pid, DeliverFn sink) override;
  void start() override;
  void stop() override;
  bool send(const WireMessage& msg) override;
  const char* name() const override {
    return sched_ != nullptr ? "loopback" : "loopback-threaded";
  }
  bool inline_delivery() const override { return sched_ != nullptr; }

  /// Datagrams dropped by injected loss so far (dispatch-thread reads).
  std::size_t dropped() const { return dropped_; }

 private:
  struct Link {
    std::unique_ptr<DelaySampler> sampler;
    Rng delay_rng;
    Rng drop_rng;
  };

  struct Pending {
    double due;
    std::uint64_t seq;
    WireMessage msg;
    bool operator>(const Pending& other) const {
      return due != other.due ? due > other.due : seq > other.seq;
    }
  };

  void dispatcher_loop();

  const SystemModel* model_;
  const TimeBase* time_;
  VirtualScheduler* sched_;
  LoopbackOptions options_;

  std::unordered_map<std::uint64_t, std::size_t> link_index_;
  std::vector<Link> links_;
  std::vector<DeliverFn> sinks_;
  std::size_t dropped_{0};
  std::uint64_t seq_{0};

  // Threaded mode only.
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> heap_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::thread dispatcher_;
  bool running_{false};
};

}  // namespace cs
