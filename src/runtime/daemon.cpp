#include "runtime/daemon.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <optional>
#include <utility>

#include "common/error.hpp"
#include "core/epochs.hpp"
#include "core/zones.hpp"
#include "runtime/clock.hpp"
#include "runtime/host.hpp"
#include "runtime/loopback.hpp"
#include "runtime/udp_transport.hpp"
#include "trace/writer.hpp"

namespace cs {

const char* to_string(LiveTransportKind kind) {
  switch (kind) {
    case LiveTransportKind::kLoopback: return "loopback";
    case LiveTransportKind::kLoopbackThreaded: return "loopback-threaded";
    case LiveTransportKind::kUdp: return "udp";
  }
  return "?";
}

namespace {

/// Breaks the host <-> transport construction cycle in virtual mode: the
/// transport needs a scheduler at construction, the host needs the
/// transport at construction.
struct SchedulerProxy final : VirtualScheduler {
  VirtualScheduler* target{nullptr};
  void schedule_delivery(RealTime at, WireMessage msg) override {
    target->schedule_delivery(at, std::move(msg));
  }
};

double spread(const std::vector<double>& corrected) {
  const auto [lo, hi] =
      std::minmax_element(corrected.begin(), corrected.end());
  return *hi - *lo;
}

}  // namespace

LiveReport run_live(const SystemModel& model, const LiveConfig& config) {
  const std::size_t n = model.processor_count();
  if (n < 2) throw Error("run_live: need at least two agents");

  std::vector<Duration> offsets = config.start_offsets;
  if (offsets.empty()) {
    Rng rng(config.seed ^ 0xC10C0FF5E75ULL);
    offsets = random_start_offsets(n, config.skew, rng);
  }
  if (offsets.size() != n)
    throw Error("run_live: start_offsets size must equal processor count");

  // Fit the epoch schedule to the drift budget before anything is built:
  // an active budget clamps the period so clocks inside the declared band
  // cannot diverge by more than `slack` between re-synchronizations, and
  // stretches the epoch count to keep the requested coverage span
  // (drift/scheduler.hpp).  All downstream consumers — agents, boundary
  // list, offline cross-check — see only the fitted schedule.
  SyncAgentParams agent = config.agent;
  const drift::ResyncPlan resync =
      drift::plan_resync(config.drift, agent.period, agent.epochs);
  agent.period = resync.period;
  agent.epochs = resync.epochs;

  // Resolve the Byzantine plan against this model's processor count; the
  // plan must outlive the run (the agents hold a pointer).
  const byz::ByzPlan byz_plan = byz::resolve_byz_plan(config.byz, n);
  const bool dishonest = !byz_plan.honest();
  if (dishonest) agent.byz = &byz_plan;

  LiveResults results(n, agent);
  const AutomatonFactory factory = make_sync_agents(&model, agent, &results);

  LiveReport report;
  report.transport = to_string(config.transport);
  report.agents = n;
  report.start_offsets = offsets;
  report.resync_period = agent.period;
  report.resync_epochs = agent.epochs;
  report.resync_clamped = resync.clamped;
  if (config.drift.active()) {
    report.metrics.observe("runtime.drift.rho", config.drift.rho);
    report.metrics.observe("runtime.drift.slack", config.drift.slack);
    report.metrics.observe(
        "runtime.drift.max_interval",
        drift::max_resync_interval(config.drift.rho, config.drift.slack));
    report.metrics.observe("runtime.drift.period", agent.period.sec);
    if (resync.clamped) report.metrics.increment("runtime.drift.clamped");
  }

  // Time base, transport and host, wired per transport kind.
  const bool is_virtual = config.transport == LiveTransportKind::kLoopback;
  VirtualTimeBase virtual_time;
  WallTimeBase wall_time;
  TimeBase& time =
      is_virtual ? static_cast<TimeBase&>(virtual_time) : wall_time;

  SchedulerProxy proxy;
  std::unique_ptr<Transport> transport;
  switch (config.transport) {
    case LiveTransportKind::kLoopback:
    case LiveTransportKind::kLoopbackThreaded: {
      LoopbackOptions opts;
      opts.seed = config.seed;
      opts.delay_scale = config.delay_scale;
      opts.drop_probability = config.drop_probability;
      transport = std::make_unique<LoopbackTransport>(
          model, time, is_virtual ? &proxy : nullptr, opts);
      break;
    }
    case LiveTransportKind::kUdp:
      transport = std::make_unique<UdpTransport>(n, config.udp);
      break;
  }

  std::optional<TraceWriter> writer;
  if (!config.trace_path.empty()) writer.emplace(config.trace_path);

  HostOptions host_options;
  host_options.start_offsets = offsets;
  host_options.seed = config.seed;
  host_options.max_events = config.max_events;
  host_options.deadline = config.deadline;
  host_options.metrics = &report.metrics;
  host_options.trace = writer ? &*writer : nullptr;
  // Keep §7 control traffic (reports, corrections) out of the analyzed
  // views and the trace: the paper's remark after Lemma 7.1 — extra
  // messages would only extend the views and tighten the bound — so the
  // analyzed instance is the probe exchange alone, identically live and
  // offline.  Timers are always recorded.
  host_options.trace_filter = [](const Payload& payload) {
    return payload.tag == kTagLiveProbe || payload.tag == kTagLiveEcho;
  };

  AgentHost host(model, *transport, time, host_options);
  proxy.target = &host;

  transport->start();
  const RunStats stats =
      host.run(factory, [&results] { return results.all_complete(); });
  transport->stop();

  report.dispatched = stats.dispatched;
  report.timed_out = stats.timed_out;
  report.converged = results.all_complete();
  report.byzantine = dishonest;
  report.byz_liars = byz_plan.liar_count();
  if (dishonest)
    report.metrics.observe("runtime.byz.liars",
                           static_cast<double>(byz_plan.liar_count()));

  // Per-epoch report rows with ground-truth realized precision.
  for (const LiveEpoch& live : results.epochs()) {
    LiveEpochReport row;
    row.epoch = live.epoch;
    row.boundary = live.boundary;
    row.corrections = live.corrections;
    row.claimed_precision = live.claimed_precision;
    row.degraded = live.degraded;
    row.detected = live.detected;
    if (live.detected) {
      ++report.detected_epochs;
      report.metrics.increment("runtime.detected_epochs");
    }
    row.reports_absorbed = live.reports_absorbed;
    row.acks = live.acks;
    if (live.computed() && config.drift.active() &&
        live.claimed_precision.has_value()) {
      row.drift_bound = *live.claimed_precision + config.drift.slack;
      report.metrics.observe("runtime.drift.epoch_bound", *row.drift_bound);
    }
    if (live.computed() && live.corrections.size() == n) {
      std::vector<double> corrected(n);
      for (std::size_t p = 0; p < n; ++p)
        corrected[p] = live.corrections[p] - offsets[p].sec;
      row.realized_precision = spread(corrected);
      if (config.zones != nullptr) {
        // d_p = S_p - x_p is the negation of `corrected`; max-min spreads
        // are negation-invariant, so the zoned splitter applies as-is.
        std::vector<RealTime> starts(n);
        for (std::size_t p = 0; p < n; ++p)
          starts[p] = RealTime{offsets[p].sec};
        const ZoneRealized split = realized_precision_zoned(
            starts, live.corrections, *config.zones);
        row.realized_intra = split.intra;
        row.realized_cross = split.cross;
      }
    }
    report.epochs.push_back(std::move(row));
  }

  // Offline cross-check: the same pipeline over the recorded views at the
  // same boundaries.  In deterministic loopback mode (and in any run where
  // no report was missing) the live corrections must equal these
  // bit-for-bit.
  const std::vector<ClockTime> boundaries = sync_agent_boundaries(agent);
  Metrics pipeline_metrics;
  EpochOptions epoch_options;
  epoch_options.sync = agent.sync;
  epoch_options.sync.root = agent.leader;
  epoch_options.sync.match = MatchPolicy::kDropOrphans;
  epoch_options.sync.metrics = &pipeline_metrics;

  // On a dishonest run the recorded views carry the *true* stamps while
  // the live leader computed from lied payloads, so the bitwise comparison
  // is meaningless by construction — skip it (report.checked stays false)
  // and let the realized_precision rows carry the damage report.  A run
  // with detected outages skips it too: the offline pipeline would reject
  // the same inadmissible traffic by throwing instead of reporting.
  const bool skip_offline = dishonest || report.detected_epochs > 0;
  std::vector<EpochOutcome> offline;
  if (!skip_offline && (config.offline_check || writer)) {
    offline = epochal_synchronize_incremental(model, host.views(),
                                              boundaries, epoch_options);
  }
  if (config.offline_check && !skip_offline) {
    report.checked = true;
    report.all_match = true;
    for (std::size_t k = 0; k < offline.size(); ++k) {
      LiveEpochReport& row = report.epochs[k];
      const SyncOutcome& ref = offline[k].sync;
      row.offline_precision = ref.optimal_precision.value();
      row.offline_corrections = ref.corrections;
      row.matches_offline =
          row.claimed_precision.has_value() &&
          *row.claimed_precision == ref.optimal_precision.value() &&
          row.corrections == ref.corrections;
      if (row.claimed_precision.has_value() && !row.matches_offline)
        report.all_match = false;
      if (!row.claimed_precision.has_value()) report.all_match = false;
    }
    report.metrics.merge(pipeline_metrics);
  }

  if (writer) {
    // Post-event sections, mirroring record_run(): the plan, the offline
    // outcomes (which a replay recomputes bit-identically from the event
    // records), and the deterministic counters.  Replay derives its
    // "fault.dropped" from the recorded loss events, so the counters
    // section pre-seeds the same tally next to the pipeline's counters.
    ReplayPlan plan;
    plan.options = epoch_options;
    plan.options.sync.metrics = nullptr;
    plan.boundaries = boundaries;
    plan.incremental = true;
    writer->plan(plan);
    for (const EpochOutcome& outcome : offline) writer->outcome(outcome);

    std::size_t recorded_drops = 0;
    for (const TraceEvent& ev : writer->trace().events)
      if (ev.kind == TraceEvent::Kind::kLoss) ++recorded_drops;
    if (recorded_drops > 0)
      pipeline_metrics.increment("fault.dropped", recorded_drops);
    writer->counters(pipeline_metrics);
    writer->finish();
  }

  return report;
}

}  // namespace cs
