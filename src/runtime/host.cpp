#include "runtime/host.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <memory>
#include <utility>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "runtime/clock.hpp"
#include "sim/trace_sink.hpp"

namespace cs {

struct AgentHost::Agent {
  std::unique_ptr<Automaton> automaton;
  Clock clock;
  std::vector<ProcessorId> neighbors;
  bool started{false};
  std::deque<Inbound> deferred;  // wall mode: arrivals before the start
};

/// Context bound to one dispatch: self, the dispatch instant, and the
/// clock value computed once for everything inside the callback.
class AgentHost::Ctx final : public Context {
 public:
  Ctx(AgentHost& host, ProcessorId pid, RealTime tnow, ClockTime local)
      : host_(host), pid_(pid), tnow_(tnow), local_(local) {}

  ProcessorId self() const override { return pid_; }
  ClockTime now() const override { return local_; }
  std::span<const ProcessorId> neighbors() const override {
    return host_.agents_[pid_].neighbors;
  }
  void send(ProcessorId to, Payload payload) override {
    host_.do_send(pid_, to, std::move(payload), tnow_, local_);
  }
  void set_timer(ClockTime at) override {
    host_.do_set_timer(pid_, at, tnow_, local_);
  }

 private:
  AgentHost& host_;
  ProcessorId pid_;
  RealTime tnow_;
  ClockTime local_;
};

AgentHost::AgentHost(const SystemModel& model, Transport& transport,
                     TimeBase& time, HostOptions options)
    : model_(model), transport_(transport), time_(time),
      options_(std::move(options)), builder_(model.processor_count()) {
  const std::size_t n = model.processor_count();
  if (options_.start_offsets.size() != n)
    throw Error("AgentHost: start_offsets size must equal processor count");

  const auto adjacency = model.topology().adjacency();
  agents_.resize(n);
  for (ProcessorId p = 0; p < n; ++p) {
    const Duration offset = options_.start_offsets[p];
    if (offset < Duration{0.0})
      throw Error("AgentHost: start offsets must be non-negative");
    agents_[p].clock = Clock(RealTime{} + offset, 1.0);
    agents_[p].neighbors = adjacency[p];
    std::sort(agents_[p].neighbors.begin(), agents_[p].neighbors.end());
    transport_.open(p, [this, p](WireMessage msg) {
      // Transport-thread side of the mailbox (unused by virtual-time
      // transports, which schedule inline instead).
      std::lock_guard<std::mutex> lock(mu_);
      mailbox_.push_back(Inbound{std::move(msg), time_.now()});
      cv_.notify_all();
    });
  }
}

AgentHost::~AgentHost() = default;

RunStats AgentHost::run(const AutomatonFactory& factory,
                        const std::function<bool()>& done) {
  if (ran_) throw Error("AgentHost: run() is single-shot");
  ran_ = true;

  for (ProcessorId p = 0; p < agents_.size(); ++p)
    agents_[p].automaton = factory(p);

  if (options_.trace != nullptr) {
    SimOptions header;
    header.start_offsets = options_.start_offsets;
    header.seed = options_.seed;
    options_.trace->begin_run(model_, header);
  }

  for (ProcessorId p = 0; p < agents_.size(); ++p) {
    Pending ev;
    ev.kind = Pending::Kind::kStart;
    ev.due = agents_[p].clock.start();
    ev.seq = next_seq_++;
    ev.pid = p;
    heap_.push(std::move(ev));
  }

  RunStats stats;
  if (time_.is_virtual()) {
    run_virtual(done);
  } else {
    run_wall(done);
    stats.timed_out = done && !done();
  }
  stats.dispatched = dispatched_;

  if (options_.trace != nullptr) {
    // Tallies cover *recorded* events only, so a replay of the trace
    // reconciles against them even when control traffic is filtered out.
    SimResult result;
    result.delivered_messages = recorded_delivered_;
    result.fired_timers = recorded_timer_fires_;
    result.fault_dropped_messages = recorded_dropped_;
    options_.trace->end_run(result);
  }
  return stats;
}

void AgentHost::run_virtual(const std::function<bool()>& done) {
  auto* vt = dynamic_cast<VirtualTimeBase*>(&time_);
  if (vt == nullptr)
    throw Error("AgentHost: virtual TimeBase must be a VirtualTimeBase");
  while (!heap_.empty()) {
    if (done && done()) break;
    if (dispatched_ >= options_.max_events)
      throw Error("AgentHost: exceeded max_events (runaway protocol?)");
    const Pending ev = heap_.top();
    heap_.pop();
    vt->advance_to(ev.due);
    dispatch(ev);
  }
}

void AgentHost::run_wall(const std::function<bool()>& done) {
  const RealTime deadline = time_.now() + options_.deadline;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (done && done()) return;
    if (dispatched_ >= options_.max_events)
      throw Error("AgentHost: exceeded max_events (runaway protocol?)");
    const RealTime now = time_.now();
    if (!(now < deadline)) return;

    if (!mailbox_.empty()) {
      // Batch drain: swap the whole mailbox out under the lock it is
      // already holding, then dispatch lock-free — one lock round-trip per
      // burst instead of one per message.  Messages still dispatch in
      // arrival order, and the mailbox always drains ahead of due timers,
      // exactly as the one-at-a-time loop behaved.
      std::deque<Inbound> batch;
      batch.swap(mailbox_);
      lock.unlock();
      metrics_observe(options_.metrics, "runtime.mailbox_batch_size",
                      static_cast<double>(batch.size()));
      for (Inbound& in : batch) {
        // Re-check the loop guards per message: a done() flip or the event
        // budget must stop dispatch mid-batch just as it stopped the
        // per-message loop (the rest of the batch goes unprocessed either
        // way — it only ever lived in the mailbox).
        if (done && done()) return;
        if (dispatched_ >= options_.max_events)
          throw Error("AgentHost: exceeded max_events (runaway protocol?)");
        if (!(time_.now() < deadline)) return;
        Agent& agent = agents_[in.msg.to];
        if (!agent.started) {
          agent.deferred.push_back(std::move(in));
          continue;
        }
        metrics_observe(options_.metrics, "runtime.ingest_latency_seconds",
                        (time_.now() - in.enqueued).sec);
        Pending ev;
        ev.kind = Pending::Kind::kDelivery;
        ev.due = time_.now();
        ev.pid = in.msg.to;
        ev.message = Message{in.msg.id, in.msg.from, in.msg.to,
                             std::move(in.msg.payload)};
        dispatch(ev);
      }
      lock.lock();
      continue;
    }

    if (!heap_.empty() && !(now < heap_.top().due)) {
      Pending ev = heap_.top();
      heap_.pop();
      lock.unlock();
      ev.due = time_.now();  // dispatch at the actual instant
      dispatch(ev);
      lock.lock();
      continue;
    }

    const double until_deadline = (deadline - now).sec;
    double wait_s = heap_.empty()
                        ? 0.05
                        : std::max((heap_.top().due - now).sec, 0.0);
    wait_s = std::min({wait_s, until_deadline, 0.05});
    cv_.wait_for(lock, std::chrono::duration<double>(
                           std::max(wait_s, 1e-4)));
  }
}

void AgentHost::dispatch(const Pending& ev) {
  ++dispatched_;
  metrics_increment(options_.metrics, "runtime.dispatched");
  Agent& agent = agents_[ev.pid];
  const RealTime tnow = ev.due;
  const ClockTime local = agent.clock.at(tnow);
  Ctx ctx(*this, ev.pid, tnow, local);

  switch (ev.kind) {
    case Pending::Kind::kStart: {
      agent.started = true;
      builder_.start(ev.pid);
      agent.automaton->on_start(ctx);
      // Wall mode: deliveries that raced ahead of the start now flow.
      while (!agent.deferred.empty()) {
        Inbound in = std::move(agent.deferred.front());
        agent.deferred.pop_front();
        Pending del;
        del.kind = Pending::Kind::kDelivery;
        del.due = time_.now();
        del.pid = in.msg.to;
        del.message = Message{in.msg.id, in.msg.from, in.msg.to,
                              std::move(in.msg.payload)};
        dispatch(del);
      }
      break;
    }
    case Pending::Kind::kDelivery: {
      const bool record = !options_.trace_filter ||
                          options_.trace_filter(ev.message.payload);
      if (record) {
        builder_.receive(ev.pid, local, ev.message.id, ev.message.from);
        ++recorded_delivered_;
        metrics_increment(options_.metrics, "runtime.delivered");
        if (options_.trace != nullptr)
          options_.trace->record_delivery(tnow, ev.pid, ev.message.from,
                                          ev.message.id, local);
      }
      agent.automaton->on_message(ctx, ev.message);
      break;
    }
    case Pending::Kind::kTimer: {
      builder_.timer_fire(ev.pid, local, ev.timer_at);
      ++recorded_timer_fires_;
      if (options_.trace != nullptr)
        options_.trace->record_timer_fire(tnow, ev.pid, local, ev.timer_at);
      agent.automaton->on_timer(ctx, ev.timer_at);
      break;
    }
  }
}

void AgentHost::do_send(ProcessorId from, ProcessorId to, Payload payload,
                        RealTime tnow, ClockTime local) {
  const Agent& sender = agents_[from];
  if (!std::binary_search(sender.neighbors.begin(), sender.neighbors.end(),
                          to))
    throw Error("AgentHost: agent sent to a non-adjacent processor");

  const MessageId id = next_msg_id_++;
  const bool record =
      !options_.trace_filter || options_.trace_filter(payload);
  if (record) {
    builder_.send(from, local, id, to);
    metrics_increment(options_.metrics, "runtime.sent");
    if (options_.trace != nullptr)
      options_.trace->record_send(tnow, from, to, id, local);
  }

  WireMessage wire;
  wire.id = id;
  wire.from = from;
  wire.to = to;
  wire.payload = std::move(payload);
  if (!transport_.send(wire)) {
    metrics_increment(options_.metrics, "runtime.dropped");
    if (record) {
      ++recorded_dropped_;
      if (options_.trace != nullptr)
        options_.trace->record_loss(tnow, from, to, id,
                                    LossCause::kFaultDrop);
    }
  }
}

void AgentHost::do_set_timer(ProcessorId pid, ClockTime at, RealTime tnow,
                             ClockTime local) {
  if (at < local) throw Error("AgentHost: timer set for the past");
  builder_.timer_set(pid, local, at);
  if (options_.trace != nullptr)
    options_.trace->record_timer_set(tnow, pid, local, at);

  Pending ev;
  ev.kind = Pending::Kind::kTimer;
  ev.due = agents_[pid].clock.real(at);
  ev.seq = next_seq_++;
  ev.pid = pid;
  ev.timer_at = at;
  heap_.push(std::move(ev));
}

void AgentHost::schedule_delivery(RealTime at, WireMessage msg) {
  assert(time_.is_virtual());
  Pending ev;
  ev.kind = Pending::Kind::kDelivery;
  // A message cannot be consumed before its receiver starts; it waits,
  // exactly as in the simulator.
  ev.due = std::max(at, agents_[msg.to].clock.start());
  ev.seq = next_seq_++;
  ev.pid = msg.to;
  ev.message =
      Message{msg.id, msg.from, msg.to, std::move(msg.payload)};
  heap_.push(std::move(ev));
}

}  // namespace cs
