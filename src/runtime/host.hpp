// AgentHost: the live-runtime counterpart of the simulator's event loop.
//
// The host owns n automata (the same Automaton interface the simulator
// runs), their clocks, and the dispatch loop that feeds them transport
// deliveries, starts and timers.  Two modes, chosen by the TimeBase:
//
//   * virtual time — the host is the VirtualScheduler a deterministic
//     LoopbackTransport schedules into: one thread, one event heap, time
//     advances to each event's due instant.  Event order is a pure
//     function of (model, factory, seed), so two runs are identical —
//     the determinism contract docs/RUNTIME.md spells out.
//   * wall time — deliveries arrive asynchronously from transport threads
//     into a mailbox; the run loop stamps each with its enqueue instant
//     (the "runtime.ingest_latency_seconds" series measures mailbox dwell)
//     and dispatches on one thread, interleaved with due timers.  The loop
//     drains the mailbox in batches — one lock round-trip per burst, not
//     per message (the "runtime.mailbox_batch_size" series tracks burst
//     sizes) — while preserving arrival order and the mailbox-before-
//     timers dispatch priority.
//
// Either way there is exactly ONE dispatch thread, and automata callbacks,
// the view builder and the results sink are only touched from it — the
// concurrency boundary is the mailbox, nothing else.
//
// Clock fence: per dispatch the host computes the processor's clock value
// once and uses that same double for (a) the recorded trace event, (b) the
// online view event, and (c) ctx.now() inside the callback — mirroring the
// simulator, where every action of one dispatch shares now_.  That single
// choice is what makes live corrections bit-comparable to the offline
// pipeline over the recorded views.
//
// Trace parity: with a TraceSink attached the host records sends,
// deliveries, losses and timers exactly like the simulator does, so
// views_from_trace(recorded) == host.views().  trace_filter (when set)
// excludes matching payloads from BOTH the trace and the online views —
// used by the daemon to keep §7 control traffic (reports, corrections)
// out of the analyzed views; see docs/RUNTIME.md for why that is sound.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <queue>
#include <vector>

#include "runtime/clock.hpp"
#include "runtime/online.hpp"
#include "runtime/transport.hpp"
#include "sim/clock.hpp"
#include "sim/simulator.hpp"

namespace cs {

struct HostOptions {
  /// Start skew S_p per agent (size must equal the processor count).
  std::vector<Duration> start_offsets;

  /// Recorded into the trace header; also the transport seed by
  /// convention (the host itself draws no randomness).
  std::uint64_t seed{1};

  /// Runaway guard, as in SimOptions.
  std::size_t max_events{1'000'000};

  /// Wall-time budget for the run loop (wall mode only; virtual mode runs
  /// until the event heap drains).
  Duration deadline{30.0};

  /// Optional "runtime.*" counters and ingest-latency series.
  Metrics* metrics{nullptr};

  /// Optional trace recording (same TraceSink seam the simulator uses).
  TraceSink* trace{nullptr};

  /// When set, only payloads for which this returns true produce trace and
  /// view events (timers are always recorded).  Null = record everything.
  std::function<bool(const Payload&)> trace_filter;
};

struct RunStats {
  std::size_t dispatched{0};
  /// Wall mode: the deadline expired before the done-predicate held.
  bool timed_out{false};
};

class AgentHost final : public VirtualScheduler {
 public:
  /// `model`, `transport` and `time` must outlive the host.  The transport
  /// must be constructed over the same TimeBase.  Endpoints are opened
  /// here; the caller start()s the transport before run().
  AgentHost(const SystemModel& model, Transport& transport, TimeBase& time,
            HostOptions options);
  ~AgentHost() override;  // Agent is incomplete in the header

  /// Instantiate one automaton per processor and dispatch until quiescence
  /// (virtual mode: heap empty), `done` holds, or the deadline expires.
  /// Single-shot: one run per host.
  RunStats run(const AutomatonFactory& factory,
               const std::function<bool()>& done = {});

  /// The incrementally built views of everything dispatched so far (read
  /// after run() returns).
  std::span<const View> views() const { return builder_.views(); }

  // VirtualScheduler (called by a deterministic transport inside send()):
  void schedule_delivery(RealTime at, WireMessage msg) override;

 private:
  struct Agent;
  class Ctx;

  struct Pending {
    enum class Kind : std::uint8_t { kStart, kDelivery, kTimer } kind{};
    RealTime due{};
    std::uint64_t seq{0};
    ProcessorId pid{0};
    Message message;     // kDelivery
    ClockTime timer_at{};  // kTimer

    bool operator>(const Pending& o) const {
      if (due.sec != o.due.sec) return due.sec > o.due.sec;
      return seq > o.seq;
    }
  };

  void dispatch(const Pending& ev);
  void do_send(ProcessorId from, ProcessorId to, Payload payload,
               RealTime tnow, ClockTime local);
  void do_set_timer(ProcessorId pid, ClockTime at, RealTime tnow,
                    ClockTime local);
  void run_virtual(const std::function<bool()>& done);
  void run_wall(const std::function<bool()>& done);

  const SystemModel& model_;
  Transport& transport_;
  TimeBase& time_;
  HostOptions options_;

  std::vector<Agent> agents_;
  OnlineViewBuilder builder_;

  // Virtual mode: the single event heap (dispatch thread only).
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>>
      heap_;
  std::uint64_t next_seq_{0};

  // Wall mode: transport threads feed the mailbox; timers/starts use the
  // heap above (popped under the same mutex for simplicity).
  struct Inbound {
    WireMessage msg;
    RealTime enqueued{};
  };
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Inbound> mailbox_;

  MessageId next_msg_id_{1};
  std::size_t dispatched_{0};
  std::size_t recorded_delivered_{0};
  std::size_t recorded_dropped_{0};
  std::size_t recorded_timer_fires_{0};
  bool ran_{false};
};

}  // namespace cs
