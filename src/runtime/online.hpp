// Streaming estimator state: what a live agent accumulates as messages
// arrive, and how it is cut at epoch boundaries.
//
// OnlineViewBuilder is the live counterpart of Execution::views(): the host
// appends each dispatched event as it happens, so at any moment views()
// holds exactly what an offline observer would have reconstructed from a
// trace of the run so far.  It is what the daemon's offline self-check and
// the recorded trace are computed from.
//
// OnlineEstimator is the per-agent ingest path of Lemma 6.1 done online:
// every probe carries its send clock, the receiver stamps its receive
// clock, and d̃ = T_recv − T_send is banked per incoming direction.  The
// subtlety is the epoch cut.  The offline pipeline cuts every view at
// boundary T with View::prefix (events strictly before T) and pairs under
// MatchPolicy::kDropOrphans, so an observation survives the epoch-k cut
// iff *both* its send clock and its receive clock are < T.  take_report(T)
// applies exactly that predicate — not "observations that arrived before
// my report timer fired", which can disagree with the prefix cut by one
// event when clock arithmetic lands within an ulp of the boundary.  Each
// observation is reported once (cumulative cuts ⇒ delta reports); the
// leader accumulates the deltas, which reconstructs the cumulative
// LinkTraffic of every epoch.
//
// Staleness: running extremes never expire under the paper's drift-free
// clocks (d̃min only tightens).  window_stats() is the bounded-memory /
// drift-aware variant — extremes over observations received in
// [T − window, T) — matching the offline sliding-window mode
// (EpochOptions::window); see docs/RUNTIME.md for the semantics.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <unordered_set>
#include <vector>

#include "delaymodel/link_stats.hpp"
#include "model/view.hpp"

namespace cs {

/// Incrementally maintained per-processor views.
class OnlineViewBuilder {
 public:
  explicit OnlineViewBuilder(std::size_t processors);

  void start(ProcessorId pid);
  void send(ProcessorId pid, ClockTime when, MessageId msg,
            ProcessorId peer);
  void receive(ProcessorId pid, ClockTime when, MessageId msg,
               ProcessorId peer);
  void timer_set(ProcessorId pid, ClockTime when, ClockTime at);
  void timer_fire(ProcessorId pid, ClockTime when, ClockTime at);

  std::span<const View> views() const { return views_; }

 private:
  std::vector<View> views_;
};

/// One reported (or reportable) delay observation.
struct ReportObs {
  ProcessorId peer{0};  ///< the sender: direction is peer -> self
  TimedObs obs;         ///< send clock + estimated delay d̃
};

/// One agent's incoming-direction estimator.
class OnlineEstimator {
 public:
  /// Bank one probe observation.  Duplicate message ids (a transport may
  /// redeliver) are ignored — keep-earliest, mirroring kDropOrphans.
  void ingest(ProcessorId peer, MessageId msg, ClockTime send_clock,
              ClockTime recv_clock);

  /// Observations inside the cumulative epoch cut at `boundary` (send < T
  /// and recv < T, the View::prefix × kDropOrphans predicate) that no
  /// earlier take_report() returned.  Deterministic order: by direction
  /// (peer ascending), then ingest order.
  std::vector<ReportObs> take_report(ClockTime boundary);

  /// Running per-direction extremes over everything ingested (live
  /// diagnostics; never expires).
  DirectedStats stats(ProcessorId peer) const;

  /// Extremes restricted to observations *received* in
  /// [boundary − window, boundary) — the staleness-windowed view of a
  /// direction.  A direction silent for a full window reports count 0.
  DirectedStats window_stats(ProcessorId peer, ClockTime boundary,
                             Duration window) const;

  std::size_t total_observations() const { return total_; }

 private:
  struct Banked {
    TimedObs obs;
    double recv{0.0};
    bool reported{false};
  };

  std::map<ProcessorId, std::vector<Banked>> incoming_;
  std::unordered_set<MessageId> seen_;
  std::size_t total_{0};
};

}  // namespace cs
