// Human-readable synchronization reports and Graphviz export.
//
// Operators debugging a deployment need to see what the pipeline saw: the
// per-orientation shift estimates, which pairs are unbounded, where the
// critical cycle runs, and what each processor should adjust by.  These
// helpers render exactly that — as text for logs, and as DOT for eyes.
#pragma once

#include <string>

#include "core/synchronizer.hpp"

namespace cs {

/// Multi-line text report: precision, per-processor corrections,
/// finiteness components (when unbounded), the critical cycle, and the
/// m̃ls edges that fed the computation.
std::string format_report(const SystemModel& model, const SyncOutcome& out);

/// Graphviz DOT of the m̃ls estimate graph.  Nodes are processors labeled
/// with corrections; edges carry m̃ls weights; critical-cycle edges are
/// highlighted.  Render with `dot -Tsvg`.
std::string to_dot(const SyncOutcome& out);

}  // namespace cs
