#include "core/critical_cycle.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "graph/bellman_ford.hpp"
#include "graph/digraph.hpp"

namespace cs {

std::vector<NodeId> critical_cycle(const DistanceMatrix& ms, double a_max,
                                   double tolerance) {
  const std::size_t n = ms.size();
  if (n < 2) return {};

  // Graph of finite entries under w = a_max - m̃s.
  Digraph g(n);
  for (std::size_t p = 0; p < n; ++p)
    for (std::size_t q = 0; q < n; ++q)
      if (p != q && ms.at(p, q) != kInfDist)
        g.add_edge(static_cast<NodeId>(p), static_cast<NodeId>(q),
                   a_max - ms.at(p, q));

  // Potentials via a super-source (h is finite everywhere reachable; every
  // node is, by construction of the augmented graph).
  Digraph aug(n + 1);
  for (const Edge& e : g.edges()) aug.add_edge(e.from, e.to, e.weight);
  const NodeId s = static_cast<NodeId>(n);
  for (NodeId v = 0; v < n; ++v) aug.add_edge(s, v, 0.0);
  const auto sp = bellman_ford(aug, s);
  if (!sp) return {};  // inconsistent matrix (negative cycle): no witness
  const std::vector<double>& h = sp->dist;

  // Tight subgraph: reduced weight ~ 0.
  std::vector<std::vector<NodeId>> tight(n);
  for (const Edge& e : g.edges()) {
    const double reduced = e.weight + h[e.from] - h[e.to];
    if (std::fabs(reduced) <= tolerance) tight[e.from].push_back(e.to);
  }

  // Any cycle in the tight subgraph attains the mean a_max.  Iterative DFS
  // with an on-stack marker.
  enum class Color : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<Color> color(n, Color::kWhite);
  std::vector<NodeId> parent(n, 0);

  for (NodeId root = 0; root < n; ++root) {
    if (color[root] != Color::kWhite) continue;
    std::vector<std::pair<NodeId, std::size_t>> stack{{root, 0}};
    color[root] = Color::kGray;
    while (!stack.empty()) {
      auto& [v, pos] = stack.back();
      if (pos < tight[v].size()) {
        const NodeId w = tight[v][pos++];
        if (color[w] == Color::kGray) {
          // Found a cycle: unwind from v back to w.
          std::vector<NodeId> cycle{w};
          NodeId cur = v;
          while (cur != w) {
            cycle.push_back(cur);
            cur = parent[cur];
          }
          std::reverse(cycle.begin() + 1, cycle.end());
          return cycle;
        }
        if (color[w] == Color::kWhite) {
          color[w] = Color::kGray;
          parent[w] = v;
          stack.emplace_back(w, 0);
        }
      } else {
        color[v] = Color::kBlack;
        stack.pop_back();
      }
    }
  }
  return {};
}

}  // namespace cs
