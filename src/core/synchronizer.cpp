#include "core/synchronizer.hpp"

#include "common/error.hpp"
#include "core/local_estimates.hpp"
#include "core/zones.hpp"

namespace cs {

namespace {

/// SyncOutcome view of a zoned solve (the SyncOptions::zones route).
/// Bounded: mirrors the dense bounded shape (one component covering all
/// nodes, component_precision = {composed bound}).  Unbounded: components
/// grouped by zone with the per-zone Ã^max (which may itself be +inf for an
/// internally-split zone).
SyncOutcome zoned_as_outcome(ZonedOutcome&& z) {
  SyncOutcome out;
  const std::size_t n = z.plan.zone_of.size();
  out.corrections = std::move(z.corrections);
  out.optimal_precision = z.composed_bound;
  if (z.composed_bound.is_finite()) {
    out.components.component.assign(n, 0);
    out.components.component_count = 1;
    out.component_precision = {z.composed_bound.finite()};
  } else {
    out.components.component.assign(z.plan.zone_of.begin(),
                                    z.plan.zone_of.end());
    out.components.component_count = z.plan.count;
    out.component_precision.reserve(z.zones.size());
    for (const ZoneStats& st : z.zones)
      out.component_precision.push_back(st.a_max);
  }
  out.mls_graph = std::move(z.mls_graph);
  return out;
}

}  // namespace

SyncOutcome synchronize(const SystemModel& model, std::span<const View> views,
                        const SyncOptions& options) {
  if (views.size() != model.processor_count())
    throw InvalidExecution("need exactly one view per processor");
  for (std::size_t i = 0; i < views.size(); ++i)
    if (views[i].pid != i)
      throw InvalidExecution("views must be ordered by processor id");

  Digraph mls;
  {
    auto timer =
        Metrics::scoped(options.metrics, "stage.local_estimates_seconds");
    if (options.robust.trim) {
      // The robust path materializes the traffic so the MAD gate can see
      // individual observations before the extreme folds.
      LinkTraffic traffic =
          LinkTraffic::estimated_from_views(views, options.match);
      traffic = trimmed_traffic(traffic, model, options.robust.trim_gate,
                                options.metrics);
      mls = mls_graph_from_traffic(model, traffic, options.threads);
    } else {
      mls =
          local_shift_estimates(model, views, options.match, options.threads);
    }
    if (options.robust.quorum > 0)
      mls = quorum_validated_mls(mls, options.robust, options.metrics);
  }
  return synchronize_mls(std::move(mls), options);
}

SyncOutcome synchronize_mls(Digraph mls_graph, const SyncOptions& options) {
  if (options.zones != nullptr)
    return zoned_as_outcome(
        synchronize_zoned_mls(std::move(mls_graph), *options.zones, options));

  SyncOutcome out;
  out.mls_graph = std::move(mls_graph);
  out.ms_estimates =
      global_shift_estimates(out.mls_graph, options.apsp, options.metrics);

  ShiftsOptions shift_options;
  shift_options.root = options.root;
  shift_options.algorithm = options.cycle_mean;
  shift_options.metrics = options.metrics;
  shift_options.threads = options.threads;
  ShiftsResult shifts = compute_shifts(out.ms_estimates, shift_options);
  out.corrections = std::move(shifts.corrections);
  out.optimal_precision = shifts.a_max;
  out.components = std::move(shifts.components);
  out.component_precision = std::move(shifts.component_a_max);
  metrics_increment(options.metrics, "pipeline.runs");
  return out;
}

}  // namespace cs
