#include "core/synchronizer.hpp"

#include "common/error.hpp"
#include "core/local_estimates.hpp"

namespace cs {

SyncOutcome synchronize(const SystemModel& model, std::span<const View> views,
                        const SyncOptions& options) {
  if (views.size() != model.processor_count())
    throw InvalidExecution("need exactly one view per processor");
  for (std::size_t i = 0; i < views.size(); ++i)
    if (views[i].pid != i)
      throw InvalidExecution("views must be ordered by processor id");

  Digraph mls;
  {
    auto timer =
        Metrics::scoped(options.metrics, "stage.local_estimates_seconds");
    mls = local_shift_estimates(model, views, options.match, options.threads);
  }
  return synchronize_mls(std::move(mls), options);
}

SyncOutcome synchronize_mls(Digraph mls_graph, const SyncOptions& options) {
  SyncOutcome out;
  out.mls_graph = std::move(mls_graph);
  out.ms_estimates =
      global_shift_estimates(out.mls_graph, options.apsp, options.metrics);

  ShiftsOptions shift_options;
  shift_options.root = options.root;
  shift_options.algorithm = options.cycle_mean;
  shift_options.metrics = options.metrics;
  shift_options.threads = options.threads;
  ShiftsResult shifts = compute_shifts(out.ms_estimates, shift_options);
  out.corrections = std::move(shifts.corrections);
  out.optimal_precision = shifts.a_max;
  out.components = std::move(shifts.components);
  out.component_precision = std::move(shifts.component_a_max);
  metrics_increment(options.metrics, "pipeline.runs");
  return out;
}

}  // namespace cs
