// Robust estimation: GLOBAL ESTIMATES inputs that survive lying agents.
//
// The clean pipeline trusts every d̃ observation and every m̃ls edge.  A
// Byzantine agent (src/byz) corrupts exactly those: noisy stamps corrupt
// individual observations, and consistent per-neighbor lies (equivocation)
// corrupt whole edges while keeping each per-link pair sum — and hence
// every two-cycle — intact, which is what makes them invisible to the
// InvalidAssumption negative-cycle check.  Two drop-in defenses, selected
// via SyncOptions::robust:
//
//   * trimmed folds — per direction, observations whose d̃ deviates from
//     the direction's median by more than `trim_gate` MADs are discarded
//     before the extremes are folded.  Catches white-noise stamp
//     corruption (Behavior::kLieRandom) and delay-spike-like outliers.
//     With honest data the gate never fires (uniform samples stay within
//     1.5 interquartile widths; the gate sits at 6 MADs ≈ 3 half-widths),
//     and a zero MAD keeps everything — so f = 0 is bit-identical to the
//     naive fold, which the property tests pin.
//
//   * quorum validation — an m̃ls edge pair {p, q} counts only when
//     independent routes corroborate it.  The per-pair shift reading
//     θ̃(p, q) = (m̃ls(p,q) − m̃ls(q,p)) / 2 estimates the gauge difference
//     the true clocks define, and that quantity is *route-independent*:
//     along any honest alternative path the edge readings telescope to
//     the same value, up to per-hop estimation slack.  So: examine up to
//     `quorum` interior-vertex-disjoint alternative paths (hop-limited);
//     a path corroborates when its telescoped reading agrees with the
//     direct edge within `quorum_tolerance` per hop; the pair survives
//     only if a majority of examined paths corroborate.  Equivocated
//     edges disagree with every honest route and are dropped; the APSP
//     then routes around the liar, and precision degrades to the honest
//     subgraph's per-component optimum instead of silently violating the
//     bound.  Pairs with no alternative route at all (bridges, trees) are
//     kept — corroboration needs connectivity > 2f, the classical bound,
//     and on a bare cycle f = 2 is information-theoretically
//     unlocalizable (docs/BYZ.md).
#pragma once

#include <cstddef>

#include "common/metrics.hpp"
#include "delaymodel/assignment.hpp"
#include "delaymodel/link_stats.hpp"
#include "graph/digraph.hpp"

namespace cs {

struct RobustOptions {
  /// MAD-gated trimming of per-direction d̃ observations before the
  /// extreme folds.
  bool trim{false};

  /// Trim gate in MAD multiples; observations with
  /// |d̃ − median| > trim_gate · MAD are dropped (MAD = 0 keeps all).
  double trim_gate{6.0};

  /// Number of interior-disjoint alternative paths examined per edge pair;
  /// 0 disables quorum validation.  For f liars the classical requirement
  /// is 2f + 1 examined routes (a majority then survives f corrupted
  /// ones).
  std::size_t quorum{0};

  /// Per-hop agreement tolerance in seconds: a route of h hops corroborates
  /// the direct reading when the telescoped θ̃ agree within
  /// quorum_tolerance · (h + 1).  Calibrate to the honest per-edge slack
  /// (the d̃ sampling width; docs/BYZ.md).
  double quorum_tolerance{0.0};

  /// Hop limit for alternative paths (path length in edges).
  std::size_t quorum_hops{4};

  bool active() const { return trim || quorum > 0; }
};

/// Per-direction MAD-trimmed copy of `traffic` (insertion order kept).
/// With no outliers the result is an element-for-element copy.
LinkTraffic trimmed_traffic(const LinkTraffic& traffic,
                            const SystemModel& model, double trim_gate,
                            Metrics* metrics = nullptr);

/// Quorum-validated copy of the m̃ls graph: edge pairs a majority of
/// examined disjoint routes contradicts are removed (both directions).
/// Edges whose reverse direction is absent, and pairs with no alternative
/// route, are kept unchanged.  Counts removals into
/// "robust.quorum_dropped_edges".
Digraph quorum_validated_mls(const Digraph& mls, const RobustOptions& options,
                             Metrics* metrics = nullptr);

}  // namespace cs
