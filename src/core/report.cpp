#include "core/report.hpp"

#include <set>
#include <sstream>

#include "core/critical_cycle.hpp"

namespace cs {
namespace {

/// Ordered pairs (from, to) on the critical cycle.
std::set<std::pair<NodeId, NodeId>> critical_edges(const SyncOutcome& out) {
  std::set<std::pair<NodeId, NodeId>> edges;
  if (!out.bounded()) return edges;
  const auto cycle =
      critical_cycle(out.ms_estimates, out.optimal_precision.finite());
  for (std::size_t i = 0; i < cycle.size(); ++i)
    edges.emplace(cycle[i], cycle[(i + 1) % cycle.size()]);
  return edges;
}

}  // namespace

std::string format_report(const SystemModel& model, const SyncOutcome& out) {
  std::ostringstream os;
  os << "chronosync report\n";
  os << "  processors: " << model.processor_count()
     << ", links: " << model.topology().link_count() << "\n";

  if (out.bounded()) {
    os << "  guaranteed precision: " << out.optimal_precision.str()
       << " s\n";
  } else {
    os << "  guaranteed precision: unbounded ("
       << out.components.component_count << " finiteness components)\n";
    for (std::size_t c = 0; c < out.component_precision.size(); ++c)
      os << "    component " << c
         << " precision: " << out.component_precision[c] << " s\n";
  }

  os << "  corrections:\n";
  for (std::size_t p = 0; p < out.corrections.size(); ++p) {
    os << "    p" << p << ": " << out.corrections[p];
    if (!out.bounded())
      os << "  (component " << out.components.component[p] << ")";
    os << "\n";
  }

  const auto critical = critical_edges(out);
  if (!critical.empty()) {
    os << "  critical cycle:";
    for (const auto& [a, b] : critical) os << " p" << a << "->p" << b;
    os << "\n";
  }

  os << "  shift estimates (m̃ls):\n";
  for (const Edge& e : out.mls_graph.edges())
    os << "    p" << e.from << " -> p" << e.to << ": " << e.weight << "\n";

  for (auto [a, b] : model.topology().links)
    os << "  link p" << a << "-p" << b << ": "
       << model.constraint(a, b).describe() << "\n";
  return os.str();
}

std::string to_dot(const SyncOutcome& out) {
  const auto critical = critical_edges(out);
  std::ostringstream os;
  os << "digraph mls {\n";
  os << "  rankdir=LR;\n  node [shape=circle];\n";
  for (std::size_t p = 0; p < out.corrections.size(); ++p)
    os << "  p" << p << " [label=\"p" << p << "\\n" << out.corrections[p]
       << "\"];\n";
  for (const Edge& e : out.mls_graph.edges()) {
    os << "  p" << e.from << " -> p" << e.to << " [label=\"" << e.weight
       << "\"";
    if (critical.contains({e.from, e.to}))
      os << ", color=red, penwidth=2";
    os << "];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace cs
