// Periodic re-synchronization (footnote 1 of the paper).
//
// Real clocks drift a little, so practice re-invokes clock synchronization
// periodically; each invocation sees the traffic exchanged so far.  This
// driver realizes that loop against the offline pipeline: at each epoch
// boundary T_k (a *clock* time — every processor snapshots when its own
// clock reads T_k, exactly what a deployed node can do), the pipeline runs
// on the per-processor view cuts and produces that epoch's corrections
// and guarantee.
//
// Because later epochs see strictly more traffic (cumulative-prefix mode),
// their estimates are monotonically at least as tight under drift-free
// clocks; under drift the freshness of the latest probes is what keeps
// corrections current (experiment E9 measures the sawtooth).
//
// Degraded mode: deployments lose messages, links, and whole processors
// (sim/fault_plan.hpp injects exactly that).  The drivers therefore report
// per-link observation coverage and pairing tallies for every epoch, can
// run on *sliding windows* instead of cumulative prefixes (bounded memory,
// drift-stale probes expire), and can carry forward the previous epochs'
// m̃ls edges for links with zero fresh observations, widened per epoch of
// staleness (core/degraded.hpp).  Epochs whose surviving traffic leaves
// the instance partitioned do not fail: they degrade to per-finiteness-
// component corrections and precision (shifts.hpp), reported in the
// outcome.
#pragma once

#include <span>

#include "core/degraded.hpp"
#include "core/incremental.hpp"
#include "core/synchronizer.hpp"

namespace cs {

struct EpochOutcome {
  ClockTime boundary{};
  SyncOutcome sync;

  /// Observation census of this epoch's cut (which link directions fed the
  /// estimators, and how much).
  LinkCoverage coverage;

  /// What pairing kept and skipped at this boundary (orphan receives,
  /// duplicate re-deliveries).
  PairingStats pairing;

  /// m̃ls edges reused from earlier epochs by the staleness carry
  /// (0 unless EpochOptions::staleness.carry_forward).
  std::size_t carried_edges{0};
};

/// Epoch-driver configuration: the per-epoch pipeline options plus the
/// degraded-mode knobs.
struct EpochOptions {
  SyncOptions sync;

  /// Carry-forward of m̃ls edges for links with no fresh observations.
  StalenessOptions staleness;

  /// Zero (default): epoch k sees the full view prefix before boundary k.
  /// Positive: epoch k sees only events in [boundary_k - window,
  /// boundary_k) — the bounded-memory / drift-aware mode in which links
  /// can genuinely lose all observations and staleness carry matters.
  Duration window{0.0};
};

/// Run the pipeline on the cut of every view at each boundary, in order.
/// Boundaries must be increasing.  Epochs whose cuts contain no pairable
/// traffic yield unbounded outcomes (per-component corrections of 0), like
/// any traffic-less instance.
std::vector<EpochOutcome> epochal_synchronize(
    const SystemModel& model, std::span<const View> views,
    std::span<const ClockTime> boundaries, const EpochOptions& options);

/// Same contract and (to float tolerance) same results as
/// epochal_synchronize, but epoch k+1 reuses epoch k's APSP closure via a
/// delta-aware update and warm-starts Howard's policy iteration from epoch
/// k's policy (when options.sync.cycle_mean is kHoward).  Consecutive
/// epoch cuts differ in few m̃ls edges, so this is the fast path for long
/// boundary sequences; BENCH_pipeline.json tracks the speedup.
/// options.sync.metrics additionally receives per-epoch stage timings and
/// incremental-vs-rebuild hit counters.
std::vector<EpochOutcome> epochal_synchronize_incremental(
    const SystemModel& model, std::span<const View> views,
    std::span<const ClockTime> boundaries, const EpochOptions& options);

/// Convenience overloads preserving the historical SyncOptions signature
/// (cumulative prefixes, no carry-forward).
std::vector<EpochOutcome> epochal_synchronize(
    const SystemModel& model, std::span<const View> views,
    std::span<const ClockTime> boundaries, const SyncOptions& options = {});
std::vector<EpochOutcome> epochal_synchronize_incremental(
    const SystemModel& model, std::span<const View> views,
    std::span<const ClockTime> boundaries, const SyncOptions& options = {});

}  // namespace cs
