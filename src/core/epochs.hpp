// Periodic re-synchronization (footnote 1 of the paper).
//
// Real clocks drift a little, so practice re-invokes clock synchronization
// periodically; each invocation sees the traffic exchanged so far.  This
// driver realizes that loop against the offline pipeline: at each epoch
// boundary T_k (a *clock* time — every processor snapshots when its own
// clock reads T_k, exactly what a deployed node can do), the pipeline runs
// on the per-processor view prefixes and produces that epoch's corrections
// and guarantee.
//
// Because later epochs see strictly more traffic, their estimates are
// monotonically at least as tight under drift-free clocks; under drift
// the freshness of the latest probes is what keeps corrections current
// (experiment E9 measures the sawtooth).
#pragma once

#include <span>

#include "core/incremental.hpp"
#include "core/synchronizer.hpp"

namespace cs {

struct EpochOutcome {
  ClockTime boundary{};
  SyncOutcome sync;
};

/// Run the pipeline on the prefix of every view at each boundary, in
/// order.  Boundaries must be increasing.  Epochs whose prefixes contain
/// no pairable traffic yield unbounded outcomes (per-component corrections
/// of 0), like any traffic-less instance.
std::vector<EpochOutcome> epochal_synchronize(
    const SystemModel& model, std::span<const View> views,
    std::span<const ClockTime> boundaries, const SyncOptions& options = {});

/// Same contract and (to float tolerance) same results as
/// epochal_synchronize, but epoch k+1 reuses epoch k's APSP closure via a
/// delta-aware update and warm-starts Howard's policy iteration from epoch
/// k's policy (when options.cycle_mean is kHoward).  Consecutive epoch
/// prefixes differ in few m̃ls edges, so this is the fast path for long
/// boundary sequences; BENCH_pipeline.json tracks the speedup.
/// options.metrics additionally receives per-epoch stage timings and
/// incremental-vs-rebuild hit counters.
std::vector<EpochOutcome> epochal_synchronize_incremental(
    const SystemModel& model, std::span<const View> views,
    std::span<const ClockTime> boundaries, const SyncOptions& options = {});

}  // namespace cs
