#include "core/precision.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "common/error.hpp"

namespace cs {

namespace {

void check_sizes(std::size_t have, std::size_t want, const char* what) {
  if (have != want)
    throw InvalidExecution(std::string(what) + ": corrections size " +
                           std::to_string(have) + " does not match " +
                           std::to_string(want));
}

}  // namespace

double realized_precision(std::span<const RealTime> starts,
                          std::span<const double> x) {
  check_sizes(x.size(), starts.size(), "realized precision");
  if (starts.size() < 2) return 0.0;
  // max_{p,q} |d_p − d_q| over discrepancies d = start − correction is
  // max d − min d: O(n), and bit-identical to the pairwise scan (the
  // extremal pair's subtraction is the same IEEE operation).
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (std::size_t p = 0; p < starts.size(); ++p) {
    const double d = starts[p].sec - x[p];
    if (std::isnan(d))
      throw InvalidExecution(
          "realized precision: non-finite discrepancy at processor " +
          std::to_string(p));
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  return hi - lo;
}

ExtReal guaranteed_precision(const DistanceMatrix& ms_estimates,
                             std::span<const double> x) {
  const std::size_t n = ms_estimates.size();
  check_sizes(x.size(), n, "guaranteed precision");
  for (std::size_t p = 0; p < n; ++p)
    if (std::isnan(x[p]))
      throw InvalidExecution("guaranteed precision: NaN correction at " +
                             std::to_string(p));
  ExtReal worst{0.0};
  for (std::size_t p = 0; p < n; ++p)
    for (std::size_t q = 0; q < n; ++q) {
      if (p == q) continue;
      if (ms_estimates.at(p, q) == kInfDist) return ExtReal::infinity();
      worst = max(worst, ExtReal{ms_estimates.at(p, q) - x[p] + x[q]});
    }
  return worst;
}

double guaranteed_precision_finite(const DistanceMatrix& ms_estimates,
                                   std::span<const double> x) {
  const std::size_t n = ms_estimates.size();
  check_sizes(x.size(), n, "guaranteed precision");
  for (std::size_t p = 0; p < n; ++p)
    if (std::isnan(x[p]))
      throw InvalidExecution("guaranteed precision: NaN correction at " +
                             std::to_string(p));
  double worst = 0.0;
  for (std::size_t p = 0; p < n; ++p)
    for (std::size_t q = 0; q < n; ++q) {
      if (p == q) continue;
      // Skip only the infinite direction: a one-way-bounded pair still
      // contributes its finite m̃s(p,q) − x_p + x_q term, and dropping it
      // under-reports the worst-case skew.
      if (ms_estimates.at(p, q) == kInfDist) continue;
      worst = std::max(worst, ms_estimates.at(p, q) - x[p] + x[q]);
    }
  return worst;
}

}  // namespace cs
