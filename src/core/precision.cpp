#include "core/precision.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace cs {

double realized_precision(std::span<const RealTime> starts,
                          std::span<const double> x) {
  assert(starts.size() == x.size());
  double worst = 0.0;
  for (std::size_t p = 0; p < starts.size(); ++p)
    for (std::size_t q = p + 1; q < starts.size(); ++q) {
      const double d =
          (starts[p].sec - x[p]) - (starts[q].sec - x[q]);
      worst = std::max(worst, std::fabs(d));
    }
  return worst;
}

ExtReal guaranteed_precision(const DistanceMatrix& ms_estimates,
                             std::span<const double> x) {
  const std::size_t n = ms_estimates.size();
  assert(x.size() == n);
  ExtReal worst{0.0};
  for (std::size_t p = 0; p < n; ++p)
    for (std::size_t q = 0; q < n; ++q) {
      if (p == q) continue;
      if (ms_estimates.at(p, q) == kInfDist) return ExtReal::infinity();
      worst = max(worst, ExtReal{ms_estimates.at(p, q) - x[p] + x[q]});
    }
  return worst;
}

double guaranteed_precision_finite(const DistanceMatrix& ms_estimates,
                                   std::span<const double> x) {
  const std::size_t n = ms_estimates.size();
  assert(x.size() == n);
  double worst = 0.0;
  for (std::size_t p = 0; p < n; ++p)
    for (std::size_t q = 0; q < n; ++q) {
      if (p == q) continue;
      // Skip only the infinite direction: a one-way-bounded pair still
      // contributes its finite m̃s(p,q) − x_p + x_q term, and dropping it
      // under-reports the worst-case skew.
      if (ms_estimates.at(p, q) == kInfDist) continue;
      worst = std::max(worst, ms_estimates.at(p, q) - x[p] + x[q]);
    }
  return worst;
}

}  // namespace cs
