#include "core/epochs.hpp"

#include "common/error.hpp"

namespace cs {
namespace {

void check_boundaries(std::span<const ClockTime> boundaries) {
  for (std::size_t i = 1; i < boundaries.size(); ++i)
    if (!(boundaries[i - 1] < boundaries[i]))
      throw Error("epoch boundaries must be strictly increasing");
}

/// Shared driver: cut the prefixes at each boundary, run `run_epoch`.
template <typename RunEpoch>
std::vector<EpochOutcome> drive_epochs(std::span<const View> views,
                                       std::span<const ClockTime> boundaries,
                                       Metrics* metrics,
                                       RunEpoch&& run_epoch) {
  std::vector<EpochOutcome> out;
  out.reserve(boundaries.size());
  std::vector<View> prefixes(views.size());
  for (const ClockTime boundary : boundaries) {
    auto timer = Metrics::scoped(metrics, "stage.epoch_seconds");
    for (std::size_t p = 0; p < views.size(); ++p)
      prefixes[p] = views[p].prefix(boundary);
    EpochOutcome epoch;
    epoch.boundary = boundary;
    epoch.sync = run_epoch(prefixes);
    out.push_back(std::move(epoch));
    metrics_increment(metrics, "pipeline.epochs");
  }
  return out;
}

}  // namespace

std::vector<EpochOutcome> epochal_synchronize(
    const SystemModel& model, std::span<const View> views,
    std::span<const ClockTime> boundaries, const SyncOptions& options) {
  check_boundaries(boundaries);

  SyncOptions epoch_options = options;
  epoch_options.match = MatchPolicy::kDropOrphans;

  return drive_epochs(views, boundaries, options.metrics,
                      [&](const std::vector<View>& prefixes) {
                        return synchronize(model, prefixes, epoch_options);
                      });
}

std::vector<EpochOutcome> epochal_synchronize_incremental(
    const SystemModel& model, std::span<const View> views,
    std::span<const ClockTime> boundaries, const SyncOptions& options) {
  check_boundaries(boundaries);

  SyncOptions epoch_options = options;
  epoch_options.match = MatchPolicy::kDropOrphans;

  IncrementalSynchronizer sync(model, epoch_options);
  return drive_epochs(views, boundaries, options.metrics,
                      [&](const std::vector<View>& prefixes) {
                        return sync.step(prefixes);
                      });
}

}  // namespace cs
