#include "core/epochs.hpp"

#include <utility>

#include "common/error.hpp"
#include "core/local_estimates.hpp"

namespace cs {
namespace {

void check_inputs(const SystemModel& model, std::span<const View> views,
                  std::span<const ClockTime> boundaries) {
  if (views.size() != model.processor_count())
    throw InvalidExecution("need exactly one view per processor");
  for (std::size_t i = 0; i < views.size(); ++i)
    if (views[i].pid != i)
      throw InvalidExecution("views must be ordered by processor id");
  for (std::size_t i = 1; i < boundaries.size(); ++i)
    if (!(boundaries[i - 1] < boundaries[i]))
      throw Error("epoch boundaries must be strictly increasing");
}

/// Shared driver: cut the views at each boundary, estimate m̃ls with
/// coverage reporting, apply the staleness carry, hand the effective graph
/// to `run_graph` (from-scratch or incremental pipeline tail).
template <typename RunGraph>
std::vector<EpochOutcome> drive_epochs(const SystemModel& model,
                                       std::span<const View> views,
                                       std::span<const ClockTime> boundaries,
                                       const EpochOptions& options,
                                       RunGraph&& run_graph) {
  check_inputs(model, views, boundaries);
  Metrics* metrics = options.sync.metrics;
  MlsCarry carry(options.staleness, metrics);

  std::vector<EpochOutcome> out;
  out.reserve(boundaries.size());
  std::vector<View> cuts(views.size());
  for (const ClockTime boundary : boundaries) {
    auto timer = Metrics::scoped(metrics, "stage.epoch_seconds");
    for (std::size_t p = 0; p < views.size(); ++p)
      cuts[p] = options.window > Duration{0.0}
                    ? views[p].window(boundary - options.window, boundary)
                    : views[p].prefix(boundary);

    EpochOutcome epoch;
    epoch.boundary = boundary;

    Digraph mls;
    {
      auto est_timer =
          Metrics::scoped(metrics, "stage.local_estimates_seconds");
      // Epoch cuts are taken at clock boundaries, so orphan receives are
      // normal; under fault injection so are duplicate re-deliveries.
      const LinkTraffic traffic = LinkTraffic::estimated_from_views(
          cuts, MatchPolicy::kDropOrphans, &epoch.pairing);
      epoch.coverage = link_coverage(model, traffic);
      mls = mls_graph_from_traffic(model, traffic);
    }
    metrics_increment(metrics, "degraded.orphan_receives",
                      epoch.pairing.orphan_receives);
    metrics_increment(metrics, "degraded.duplicate_receives",
                      epoch.pairing.duplicate_receives);
    metrics_increment(
        metrics, "degraded.unobserved_directions",
        epoch.coverage.total_directions - epoch.coverage.observed_directions);

    Digraph effective = carry.apply(mls);
    epoch.carried_edges = carry.last_carried();

    epoch.sync = run_graph(std::move(effective));
    out.push_back(std::move(epoch));
    metrics_increment(metrics, "pipeline.epochs");
  }
  return out;
}

}  // namespace

std::vector<EpochOutcome> epochal_synchronize(
    const SystemModel& model, std::span<const View> views,
    std::span<const ClockTime> boundaries, const EpochOptions& options) {
  return drive_epochs(model, views, boundaries, options,
                      [&](Digraph mls) {
                        return synchronize_mls(std::move(mls), options.sync);
                      });
}

std::vector<EpochOutcome> epochal_synchronize_incremental(
    const SystemModel& model, std::span<const View> views,
    std::span<const ClockTime> boundaries, const EpochOptions& options) {
  // The incremental synchronizer maintains a dense APSP closure across
  // epochs — the very matrix a zone plan exists to avoid.  Zoned epochs
  // therefore run the per-epoch zoned solve instead (itself the fast path;
  // there is no dense state to delta-update).
  if (options.sync.zones != nullptr) {
    metrics_increment(options.sync.metrics, "pipeline.zoned_epoch_fallbacks");
    return epochal_synchronize(model, views, boundaries, options);
  }
  IncrementalSynchronizer sync(model, options.sync);
  return drive_epochs(model, views, boundaries, options,
                      [&](Digraph mls) {
                        return sync.step_mls(std::move(mls));
                      });
}

std::vector<EpochOutcome> epochal_synchronize(
    const SystemModel& model, std::span<const View> views,
    std::span<const ClockTime> boundaries, const SyncOptions& options) {
  EpochOptions epoch_options;
  epoch_options.sync = options;
  return epochal_synchronize(model, views, boundaries, epoch_options);
}

std::vector<EpochOutcome> epochal_synchronize_incremental(
    const SystemModel& model, std::span<const View> views,
    std::span<const ClockTime> boundaries, const SyncOptions& options) {
  EpochOptions epoch_options;
  epoch_options.sync = options;
  return epochal_synchronize_incremental(model, views, boundaries,
                                         epoch_options);
}

}  // namespace cs
