#include "core/epochs.hpp"

#include "common/error.hpp"

namespace cs {

std::vector<EpochOutcome> epochal_synchronize(
    const SystemModel& model, std::span<const View> views,
    std::span<const ClockTime> boundaries, const SyncOptions& options) {
  for (std::size_t i = 1; i < boundaries.size(); ++i)
    if (!(boundaries[i - 1] < boundaries[i]))
      throw Error("epoch boundaries must be strictly increasing");

  SyncOptions epoch_options = options;
  epoch_options.match = MatchPolicy::kDropOrphans;

  std::vector<EpochOutcome> out;
  out.reserve(boundaries.size());
  std::vector<View> prefixes(views.size());
  for (const ClockTime boundary : boundaries) {
    for (std::size_t p = 0; p < views.size(); ++p)
      prefixes[p] = views[p].prefix(boundary);
    EpochOutcome epoch;
    epoch.boundary = boundary;
    epoch.sync = synchronize(model, prefixes, epoch_options);
    out.push_back(std::move(epoch));
  }
  return out;
}

}  // namespace cs
