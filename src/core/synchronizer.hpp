// The end-to-end optimal clock synchronization pipeline — the library's
// primary public API.
//
//   views ──(Lemma 6.1 + §6 closed forms)──► m̃ls graph
//         ──(GLOBAL ESTIMATES, Thm 5.5)───► m̃s matrix
//         ──(SHIFTS, Thm 4.6)─────────────► corrections + Ã^max
//
// The input is deliberately std::span<const View>: the correction function
// may depend on nothing else (Claim 3.1).  The SystemModel supplies the
// delay assumptions A; the paper's "interactive part" (which messages were
// sent) is whatever produced the views — any protocol, any message pattern,
// including none.
#pragma once

#include <span>

#include "core/global_estimates.hpp"
#include "core/robust.hpp"
#include "core/shifts.hpp"
#include "delaymodel/assignment.hpp"

namespace cs {

struct ZonePlan;  // core/zones.hpp

struct SyncOptions {
  /// Root processor for the gauge choice (correction of root is 0).
  NodeId root{0};
  ApspAlgorithm apsp{ApspAlgorithm::kJohnson};
  CycleMeanAlgorithm cycle_mean{CycleMeanAlgorithm::kKarp};
  /// kDropOrphans when the views are epoch-boundary prefixes.
  MatchPolicy match{MatchPolicy::kStrict};
  /// Optional instrumentation sink: per-stage wall-clock timings
  /// ("stage.*_seconds" series), APSP and Howard counters.  nullptr = off.
  Metrics* metrics{nullptr};

  /// Worker threads for the independently-parallel pipeline stages: the
  /// per-link m̃ls estimator folds and, on unbounded instances, the
  /// per-finiteness-component SHIFTS solves.  1 = serial (default); 0 =
  /// hardware concurrency.  Results are byte-identical for any value — the
  /// parallel stages only shard work whose writes are disjoint (see
  /// local_estimates.hpp and ShiftsOptions::threads).
  std::size_t threads{1};

  /// Robust estimation against lying agents (core/robust.hpp): MAD-trimmed
  /// observation folds and/or quorum-validated m̃ls edges, applied between
  /// the traffic build and GLOBAL ESTIMATES.  Inactive (the default) is
  /// bit-identical to the naive path; with f = 0 liars the active variants
  /// are too (property-tested).  synchronize() applies both; direct
  /// synchronize_mls() callers apply quorum_validated_mls() themselves.
  RobustOptions robust;

  /// Zone-hierarchical plan (core/zones.hpp); nullptr = dense pipeline.
  /// When set, synchronize()/synchronize_mls() compose per-zone SHIFTS with
  /// a leader-quotient solve (Thm 5.5/5.6) instead of running dense APSP +
  /// SHIFTS — the only practical path past n ≈ 1k.  The outcome then
  /// reports the *composed bound* as optimal_precision (an upper bound on
  /// realized precision, not the dense instance optimum unless the plan has
  /// a single zone), leaves ms_estimates empty (never materialized — that
  /// is the point), and groups components by zone when unbounded.  Use
  /// synchronize_zoned() directly for the full per-zone/quotient breakdown.
  const ZonePlan* zones{nullptr};
};

struct SyncOutcome {
  /// Correction offset per processor; corrected clock = local clock +
  /// correction (Definition 2.1).
  std::vector<double> corrections;

  /// The instance-optimal guaranteed precision Ã^max = A^max.  +inf when
  /// the views give no finite bound for some pair (the instance is then
  /// synchronized per finiteness component).
  ExtReal optimal_precision{0.0};

  /// Per-component data for unbounded instances (see shifts.hpp).
  SccResult components;
  std::vector<double> component_precision;

  /// Intermediate products, exposed for inspection, evaluation and tests.
  Digraph mls_graph;
  DistanceMatrix ms_estimates;

  bool bounded() const { return optimal_precision.is_finite(); }
};

/// Compute optimal corrections for the given views under the given system
/// assumptions.  Throws InvalidAssumption if the views contradict the
/// assumptions, InvalidExecution if the views are malformed.
SyncOutcome synchronize(const SystemModel& model, std::span<const View> views,
                        const SyncOptions& options = {});

/// Pipeline tail — GLOBAL ESTIMATES + SHIFTS — over an already-built m̃ls
/// graph.  synchronize() is local_shift_estimates() followed by this; the
/// epoch drivers call it directly so degraded-mode edge carry-forward
/// (core/degraded.hpp) can interpose between estimation and the closure.
SyncOutcome synchronize_mls(Digraph mls_graph,
                            const SyncOptions& options = {});

}  // namespace cs
