// Zone-hierarchical synchronization (Theorems 5.5/5.6 composition).
//
// The dense pipeline is O(n·m + n² log n) APSP + O(n³)/O(n·m) SHIFTS per
// epoch — nothing past n ≈ 1k is practical.  The paper's composition
// theorems license a two-level construction that scales to 100k+ agents:
//
//   1. Partition the processors into zones (explicit assignment, greedy BFS
//      clustering, or the natural cluster structure of a datacenter fabric).
//   2. Per zone Z: run GLOBAL ESTIMATES + SHIFTS on the m̃ls subgraph
//      induced by Z, with the zone leader L_Z as gauge root — corrections
//      x with x_{L_Z} = 0 and the zone-optimal bound Ã^max_Z (Thm 4.6).
//      Zones are independent, so these solves shard across the pool with
//      byte-identical results at any thread count.
//   3. Quotient: a digraph on zones where edge A→B carries
//
//         q(A,B) = min over m̃ls edges (u,v), u ∈ A, v ∈ B of
//                  [ m̃s_A(L_A, u) + m̃ls(u,v) + m̃s_B(v, L_B) ]
//
//      — an upper bound on the maximal global shift from L_A to L_B,
//      because each folded term is itself a path bound in the full m̃ls
//      graph (Thm 5.5: shifts compose along paths; Lemma 5.3 telescoping).
//      SHIFTS on the quotient yields leader corrections y.
//   4. Compose: correction(p) = x_p + y_{zone(p)}, re-gauged so the global
//      root's correction is exactly 0.
//
// Soundness: for p ∈ A, q ∈ B the composed corrections guarantee
//
//   ρ̄(p, q) ≤ Ã^max_A + Ã^max_B + ( q̃s(A,B) − y_A + y_B )        (A ≠ B)
//   ρ̄(p, q) ≤ Ã^max_A                                            (A = B)
//
// where q̃s is the quotient's m̃s closure; the reported composed bound is
// the max of these over all zone pairs.  It is an upper bound, generally
// *not* the instance optimum Ã^max — the price of never materializing the
// dense matrix (docs/ZONES.md quantifies the tradeoff).  With a single
// zone the construction degenerates to the dense pipeline bit-for-bit.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/time.hpp"
#include "core/synchronizer.hpp"
#include "graph/topology.hpp"

namespace cs {

/// A partition of the processors into zones with one designated leader per
/// zone.  Zone ids must be dense (every id in [0, count) non-empty).
struct ZonePlan {
  /// zone_of[v] = zone id of processor v.
  std::vector<std::uint32_t> zone_of;
  std::size_t count{0};

  /// Leader per zone; must be a member of its zone.  Empty = resolved by
  /// synchronize_zoned_mls to the smallest member id, except the zone
  /// containing the gauge root, whose leader becomes the root itself (this
  /// is what makes the single-zone case coincide with the dense pipeline
  /// exactly).
  std::vector<NodeId> leaders;

  /// Nodes of each zone, ascending within a zone.
  std::vector<std::vector<NodeId>> members() const;
};

/// Plan from an explicit node → zone assignment.  Normalizes ids to be
/// dense (first-appearance order); throws cs::Error on an empty assignment.
ZonePlan zone_plan_from_assignment(std::span<const std::uint32_t> zone_of);

/// METIS-style greedy BFS clustering over an undirected link set: repeatedly
/// seed a zone at the smallest unassigned node id and grow it
/// breadth-first (neighbor lists in ascending order) until `target_size`
/// nodes are absorbed or the frontier dies.  Deterministic; every zone is
/// connected in the undirected graph; zone count adapts to the topology.
/// target_size >= 1; target_size >= n yields a single zone.
ZonePlan greedy_bfs_zones(std::size_t node_count,
                          std::span<const std::pair<NodeId, NodeId>> links,
                          std::size_t target_size);
ZonePlan greedy_bfs_zones(const Topology& topo, std::size_t target_size);

/// The natural zone structure of make_datacenter(spines, racks, hosts):
/// one zone per rack (the ToR plus its hosts, ToR as leader) and one
/// singleton zone per spine.  Spines are not linked to each other, so a
/// combined spine zone would be internally disconnected; as singletons each
/// spine contributes Ã^max = 0 and synchronizes through the quotient.
ZonePlan datacenter_zones(std::size_t spines, std::size_t racks,
                          std::size_t hosts);

/// Per-zone diagnostics from a zoned solve.
struct ZoneStats {
  NodeId leader{0};
  std::uint32_t size{0};
  /// False iff the zone's induced m̃ls subgraph is not strongly connected
  /// in the finite part (the zone then contributes +inf to the composed
  /// bound and a_max below is +inf).
  bool bounded{true};
  /// Zone-internal optimal precision Ã^max_Z (Thm 4.6); 0 for singletons.
  double a_max{0.0};
  /// |ρ̄_Z(x) − Ã^max_Z| — the per-zone Theorem 4.6 equality residual
  /// (0 up to float rounding on bounded zones; 0 by convention otherwise).
  double thm46_gap{0.0};
};

struct ZonedOutcome {
  /// Composed correction per processor: x_p + y_{zone(p)}, re-gauged so
  /// corrections[root] == 0.
  std::vector<double> corrections;

  /// The composed guaranteed-precision bound (see file comment); +inf when
  /// any zone is internally unbounded or the quotient is not strongly
  /// connected.  Realized precision is always ≤ this bound; the dense
  /// instance optimum Ã^max is also ≤ this bound.
  ExtReal composed_bound{0.0};

  /// Max over bounded zones of Ã^max_Z (the intra-zone half of the bound).
  double max_zone_a_max{0.0};
  /// True iff every zone is internally bounded.
  bool zones_bounded{true};

  std::vector<ZoneStats> zones;

  /// The leader quotient: digraph on zone ids, its m̃s closure, its SHIFTS
  /// corrections y (per zone) and bound, and the quotient's own Thm 4.6
  /// equality residual.
  Digraph quotient;
  DistanceMatrix quotient_ms;
  std::vector<double> leader_corrections;
  ExtReal quotient_a_max{0.0};
  double quotient_thm46_gap{0.0};

  /// The effective plan (leaders resolved) and the input m̃ls graph.
  ZonePlan plan;
  Digraph mls_graph;

  bool bounded() const { return composed_bound.is_finite(); }
};

/// Zone-hierarchical tail of the pipeline: per-zone GLOBAL ESTIMATES +
/// SHIFTS in parallel, leader quotient solve, Thm 5.5/5.6 composition.
/// options.zones is ignored here (the plan argument wins); options.threads
/// shards the per-zone solves (byte-identical at any thread count).
/// Throws cs::Error if the plan does not cover the graph's nodes.
ZonedOutcome synchronize_zoned_mls(Digraph mls_graph, const ZonePlan& plan,
                                   const SyncOptions& options = {});

/// Views front-end: local_shift_estimates + synchronize_zoned_mls.
ZonedOutcome synchronize_zoned(const SystemModel& model,
                               std::span<const View> views,
                               const ZonePlan& plan,
                               const SyncOptions& options = {});

/// Realized-precision split by zone (ground-truth evaluation).  O(n + Z).
struct ZoneRealized {
  double overall{0.0};  ///< max pairwise discrepancy, all processors
  double intra{0.0};    ///< max over zones of the within-zone discrepancy
  double cross{0.0};    ///< max discrepancy over pairs in different zones
  std::vector<double> per_zone;
};
ZoneRealized realized_precision_zoned(std::span<const RealTime> starts,
                                      std::span<const double> x,
                                      const ZonePlan& plan);

}  // namespace cs
