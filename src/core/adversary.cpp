#include "core/adversary.hpp"

#include <cassert>

#include "graph/dijkstra.hpp"

namespace cs {

std::vector<Duration> adversarial_shifts(const Digraph& mls_actual,
                                         NodeId anchor, double gamma) {
  assert(gamma > 1.0);
  // mls weights are non-negative (0 is always locally admissible), so
  // Dijkstra applies.
  const ShortestPaths sp = dijkstra(mls_actual, anchor);
  std::vector<Duration> shifts(mls_actual.node_count(), Duration{0.0});
  for (NodeId v = 0; v < mls_actual.node_count(); ++v)
    if (sp.dist[v] != kInfDist) shifts[v] = Duration{sp.dist[v] / gamma};
  return shifts;
}

}  // namespace cs
