#include "core/shifts.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/error.hpp"
#include "graph/bellman_ford.hpp"
#include "graph/cycle_mean.hpp"

namespace cs {
namespace {

/// Builds the digraph of finite m̃s entries (off-diagonal).
Digraph finite_ms_graph(const DistanceMatrix& ms) {
  const std::size_t n = ms.size();
  Digraph g(n);
  for (std::size_t p = 0; p < n; ++p)
    for (std::size_t q = 0; q < n; ++q)
      if (p != q && ms.at(p, q) != kInfDist)
        g.add_edge(static_cast<NodeId>(p), static_cast<NodeId>(q),
                   ms.at(p, q));
  return g;
}

/// Corrections within one component: Bellman–Ford distances from the
/// component root under weights (a_max - m̃s).  Retries with a slightly
/// inflated a_max if float rounding manufactures a spurious negative cycle
/// (mathematically the max-mean cycle has weight exactly 0).
void component_corrections(const DistanceMatrix& ms,
                           const std::vector<NodeId>& members, NodeId root,
                           double a_max, std::vector<double>& corrections) {
  if (members.size() == 1) {
    corrections[members[0]] = 0.0;
    return;
  }
  std::vector<std::size_t> local(ms.size(),
                                 std::numeric_limits<std::size_t>::max());
  for (std::size_t i = 0; i < members.size(); ++i) local[members[i]] = i;

  double bump = 0.0;
  for (int attempt = 0; attempt < 3; ++attempt) {
    Digraph g(members.size());
    for (std::size_t i = 0; i < members.size(); ++i)
      for (std::size_t j = 0; j < members.size(); ++j)
        if (i != j)
          g.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j),
                     a_max + bump - ms.at(members[i], members[j]));
    const auto sp = bellman_ford(g, static_cast<NodeId>(local[root]));
    if (sp) {
      for (std::size_t i = 0; i < members.size(); ++i) {
        assert(sp->dist[i] != kInfDist);
        corrections[members[i]] = sp->dist[i];
      }
      return;
    }
    bump = (bump == 0.0) ? 1e-12 * std::max(1.0, std::fabs(a_max))
                         : bump * 1e3;
  }
  throw Error(
      "SHIFTS: persistent negative cycle under w = a_max - m̃s; "
      "m̃s matrix is inconsistent");
}

}  // namespace

ShiftsResult compute_shifts(const DistanceMatrix& ms, NodeId root,
                            CycleMeanAlgorithm algorithm) {
  const std::size_t n = ms.size();
  if (n == 0) throw Error("compute_shifts: empty instance");
  if (root >= n) throw Error("compute_shifts: root out of range");

  ShiftsResult res;
  res.corrections.assign(n, 0.0);

  const Digraph g = finite_ms_graph(ms);
  res.components = strongly_connected_components(g);
  const auto groups = res.components.members();
  res.component_a_max.assign(groups.size(), 0.0);

  bool bounded = groups.size() == 1;

  for (std::size_t c = 0; c < groups.size(); ++c) {
    const auto& members = groups[c];
    double a_max_c = 0.0;
    if (members.size() > 1) {
      // Max mean cycle within the component.  The m̃s entries between
      // component members are all finite (strong connectivity of the
      // finite graph + the matrix being a shortest-path closure).
      Digraph sub(members.size());
      std::vector<std::size_t> local(n,
                                     std::numeric_limits<std::size_t>::max());
      for (std::size_t i = 0; i < members.size(); ++i)
        local[members[i]] = i;
      for (std::size_t i = 0; i < members.size(); ++i)
        for (std::size_t j = 0; j < members.size(); ++j)
          if (i != j) {
            const double w = ms.at(members[i], members[j]);
            if (w == kInfDist)
              throw Error(
                  "compute_shifts: m̃s matrix is not a shortest-path "
                  "closure (finite component with infinite entry)");
            sub.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j), w);
          }
      const auto mean = (algorithm == CycleMeanAlgorithm::kKarp)
                            ? max_cycle_mean_karp(sub)
                            : max_cycle_mean_howard(sub);
      assert(mean.has_value());
      a_max_c = *mean;
    }
    res.component_a_max[c] = a_max_c;

    // Per-component root: the global root if it lives here, else the
    // smallest member (gauge choice only).
    const NodeId comp_root =
        (res.components.component[root] == c) ? root : members.front();
    component_corrections(ms, members, comp_root, a_max_c, res.corrections);
  }

  if (bounded) {
    res.a_max = ExtReal{res.component_a_max[0]};
  } else {
    res.a_max = ExtReal::infinity();
  }
  return res;
}

}  // namespace cs
