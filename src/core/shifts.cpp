#include "core/shifts.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/pool.hpp"
#include "graph/arena.hpp"

namespace cs {
namespace {

/// Builds the digraph of finite m̃s entries (off-diagonal).
Digraph finite_ms_graph(const DistanceMatrix& ms) {
  const std::size_t n = ms.size();
  Digraph g(n);
  for (std::size_t p = 0; p < n; ++p)
    for (std::size_t q = 0; q < n; ++q)
      if (p != q && ms.at(p, q) != kInfDist)
        g.add_edge(static_cast<NodeId>(p), static_cast<NodeId>(q),
                   ms.at(p, q));
  return g;
}

/// Corrections within one component: Bellman–Ford distances from the
/// component root under weights (a_max - m̃s), relaxed with a tolerance of
/// tolerance_scale * max(1, |a_max|) per step — the same epsilon semantics
/// as bellman_ford(g, s, epsilon), run directly on the matrix so the hot
/// epoch path skips materializing the complete component digraph.  The
/// max-mean cycle has weight exactly 0 mathematically, so any surviving
/// negative cycle beyond that tolerance proves the m̃s matrix inconsistent.
void component_corrections(const DistanceMatrix& ms,
                           const std::vector<NodeId>& members, NodeId root,
                           double a_max, double tolerance_scale,
                           std::vector<double>& corrections,
                           EpochArena& arena) {
  const std::size_t k = members.size();
  if (k == 1) {
    corrections[members[0]] = 0.0;
    return;
  }
  const double epsilon = tolerance_scale * std::max(1.0, std::fabs(a_max));
  std::span<double> dist = arena.alloc_fill<double>(k, kInfDist);
  for (std::size_t i = 0; i < k; ++i)
    if (members[i] == root) dist[i] = 0.0;

  // Up to k sweeps with early exit: k-1 relaxation sweeps settle all
  // distances absent negative cycles, so a k-th sweep that still improves
  // beyond epsilon is the detection sweep firing.
  bool changed = true;
  for (std::size_t sweep = 0; sweep < k && changed; ++sweep) {
    changed = false;
    for (std::size_t i = 0; i < k; ++i) {
      const double di = dist[i];
      if (!(di < kInfDist)) continue;
      for (std::size_t j = 0; j < k; ++j) {
        if (i == j) continue;
        const double cand = di + a_max - ms.at(members[i], members[j]);
        if (cand < dist[j] - epsilon) {
          dist[j] = cand;
          changed = true;
        }
      }
    }
  }
  if (changed)
    throw Error(
        "SHIFTS: negative cycle under w = a_max - m̃s beyond the float "
        "tolerance; m̃s matrix is inconsistent");
  for (std::size_t i = 0; i < k; ++i) {
    // Every member is reachable from the root in one hop of the complete
    // component graph, so a non-finite distance means the matrix carried a
    // non-finite entry (e.g. NaN from a broken estimator) — refuse to emit
    // garbage corrections.
    if (!(dist[i] < kInfDist) || std::isnan(dist[i]))
      throw Error(
          "SHIFTS: non-finite correction distance inside a finiteness "
          "component; m̃s matrix carries non-finite entries");
    corrections[members[i]] = dist[i];
  }
}

/// Local index of `want` within the ascending member list of component `c`,
/// or kNoPolicyEdge when `want` lives elsewhere — the warm-policy mapping
/// the per-component local[] array used to provide.
NodeId warm_local_index(const std::vector<NodeId>& members,
                        const SccResult& components, std::size_t c,
                        NodeId want, std::size_t n) {
  if (want == kNoPolicyEdge || want >= n) return kNoPolicyEdge;
  if (components.component[want] != c) return kNoPolicyEdge;
  const auto it = std::lower_bound(members.begin(), members.end(), want);
  return static_cast<NodeId>(it - members.begin());
}

/// Solves one finiteness component: dense max cycle mean over the compacted
/// k x k m̃s block, then matrix Bellman–Ford corrections.  Writes only this
/// component's slices of `res` (disjoint across components), so components
/// may be solved concurrently with byte-identical output.
void solve_component(const DistanceMatrix& ms, const ShiftsOptions& options,
                     const std::vector<NodeId>& members, std::size_t c,
                     ShiftsResult& res, EpochArena& arena) {
  const std::size_t n = ms.size();
  const std::size_t k = members.size();
  double a_max_c = 0.0;
  if (k > 1) {
    // Max mean cycle within the component.  The m̃s entries between
    // component members are all finite (strong connectivity of the finite
    // graph + the matrix being a shortest-path closure); compact them into
    // a dense block so the kernels run off flat rows.
    std::span<double> w = arena.alloc<double>(k * k);
    for (std::size_t i = 0; i < k; ++i) {
      double* wi = w.data() + i * k;
      for (std::size_t j = 0; j < k; ++j) {
        if (i == j) {
          wi[j] = 0.0;
          continue;
        }
        const double ms_ij = ms.at(members[i], members[j]);
        if (ms_ij == kInfDist)
          throw Error(
              "compute_shifts: m̃s matrix is not a shortest-path "
              "closure (finite component with infinite entry)");
        wi[j] = ms_ij;
      }
    }
    if (options.algorithm == CycleMeanAlgorithm::kKarp) {
      a_max_c = max_cycle_mean_karp_dense(w.data(), k, arena);
    } else {
      // Warm policy mapped into the component's local indices; entries
      // pointing outside this component fall back to greedy.
      std::span<NodeId> warm_local;
      if (options.warm_policy != nullptr && options.warm_policy->size() == n) {
        warm_local = arena.alloc<NodeId>(k);
        for (std::size_t i = 0; i < k; ++i)
          warm_local[i] = warm_local_index(
              members, res.components, c, (*options.warm_policy)[members[i]],
              n);
      }
      std::span<NodeId> policy_local = arena.alloc<NodeId>(k);
      const HowardDenseResult hr = max_cycle_mean_howard_dense(
          w.data(), k, warm_local, policy_local, arena, options.metrics);
      if (!hr.converged) {
        // Reported through metrics above; without a sink this must not
        // pass silently (the mean may undershoot and poison corrections).
        if (options.metrics == nullptr)
          throw Error(
              "compute_shifts: Howard iteration exited on its backstop "
              "without converging");
      }
      a_max_c = hr.mean;
      for (std::size_t i = 0; i < k; ++i)
        res.policy[members[i]] = members[policy_local[i]];
    }
  }
  res.component_a_max[c] = a_max_c;

  // Per-component root: the global root if it lives here, else the
  // smallest member (gauge choice only).
  const NodeId comp_root =
      (res.components.component[options.root] == c) ? options.root
                                                    : members.front();
  component_corrections(ms, members, comp_root, a_max_c,
                        options.tolerance_scale, res.corrections, arena);
}

}  // namespace

ShiftsResult compute_shifts(const DistanceMatrix& ms,
                            const ShiftsOptions& options) {
  const std::size_t n = ms.size();
  if (n == 0) throw Error("compute_shifts: empty instance");
  if (options.root >= n) throw Error("compute_shifts: root out of range");
  // NaN entries poison every downstream comparison silently (relaxations
  // and cycle-mean maxima all evaluate false), so reject them up front.
  for (std::size_t p = 0; p < n; ++p)
    for (std::size_t q = 0; q < n; ++q)
      if (std::isnan(ms.at(p, q)))
        throw Error("compute_shifts: m̃s matrix carries NaN entries");
  Metrics* metrics = options.metrics;
  auto timer = Metrics::scoped(metrics, "stage.shifts_seconds");

  ShiftsResult res;
  res.corrections.assign(n, 0.0);

  bool all_finite = true;
  for (std::size_t p = 0; p < n && all_finite; ++p)
    for (std::size_t q = 0; q < n; ++q)
      if (p != q && ms.at(p, q) == kInfDist) {
        all_finite = false;
        break;
      }
  if (all_finite) {
    // Bounded instance: one finiteness component holding every processor.
    // Skipping the graph build + Tarjan here keeps the per-epoch hot path
    // of the incremental pipeline O(n^2) outside the cycle mean itself.
    res.components.component.assign(n, 0);
    res.components.component_count = 1;
  } else {
    res.components = strongly_connected_components(finite_ms_graph(ms));
  }
  const auto groups = res.components.members();
  res.component_a_max.assign(groups.size(), 0.0);
  if (options.algorithm == CycleMeanAlgorithm::kHoward)
    res.policy.assign(n, kNoPolicyEdge);

  const bool bounded = groups.size() == 1;

  if (options.threads != 1 && groups.size() > 1) {
    // Components are independent: disjoint result slices, private arenas,
    // a thread-safe metrics sink — byte-identical for any worker count.
    PoolOptions pool;
    pool.threads = options.threads;
    run_indexed(
        groups.size(),
        [&](std::size_t c) {
          EpochArena worker_arena;
          solve_component(ms, options, groups[c], c, res, worker_arena);
        },
        pool);
  } else {
    EpochArena local;
    EpochArena& arena = options.arena != nullptr ? *options.arena : local;
    if (options.arena != nullptr) options.arena->reset();
    for (std::size_t c = 0; c < groups.size(); ++c)
      solve_component(ms, options, groups[c], c, res, arena);
  }

  if (bounded) {
    res.a_max = ExtReal{res.component_a_max[0]};
  } else {
    res.a_max = ExtReal::infinity();
  }
  metrics_increment(metrics, "shifts.runs");
  return res;
}

ShiftsResult compute_shifts(const DistanceMatrix& ms, NodeId root,
                            CycleMeanAlgorithm algorithm) {
  ShiftsOptions options;
  options.root = root;
  options.algorithm = algorithm;
  return compute_shifts(ms, options);
}

}  // namespace cs
