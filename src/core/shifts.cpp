#include "core/shifts.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace cs {
namespace {

/// Builds the digraph of finite m̃s entries (off-diagonal).
Digraph finite_ms_graph(const DistanceMatrix& ms) {
  const std::size_t n = ms.size();
  Digraph g(n);
  for (std::size_t p = 0; p < n; ++p)
    for (std::size_t q = 0; q < n; ++q)
      if (p != q && ms.at(p, q) != kInfDist)
        g.add_edge(static_cast<NodeId>(p), static_cast<NodeId>(q),
                   ms.at(p, q));
  return g;
}

/// Corrections within one component: Bellman–Ford distances from the
/// component root under weights (a_max - m̃s), relaxed with a tolerance of
/// tolerance_scale * max(1, |a_max|) per step — the same epsilon semantics
/// as bellman_ford(g, s, epsilon), run directly on the matrix so the hot
/// epoch path skips materializing the complete component digraph.  The
/// max-mean cycle has weight exactly 0 mathematically, so any surviving
/// negative cycle beyond that tolerance proves the m̃s matrix inconsistent.
void component_corrections(const DistanceMatrix& ms,
                           const std::vector<NodeId>& members, NodeId root,
                           double a_max, double tolerance_scale,
                           std::vector<double>& corrections) {
  const std::size_t k = members.size();
  if (k == 1) {
    corrections[members[0]] = 0.0;
    return;
  }
  const double epsilon = tolerance_scale * std::max(1.0, std::fabs(a_max));
  std::vector<double> dist(k, kInfDist);
  for (std::size_t i = 0; i < k; ++i)
    if (members[i] == root) dist[i] = 0.0;

  // Up to k sweeps with early exit: k-1 relaxation sweeps settle all
  // distances absent negative cycles, so a k-th sweep that still improves
  // beyond epsilon is the detection sweep firing.
  bool changed = true;
  for (std::size_t sweep = 0; sweep < k && changed; ++sweep) {
    changed = false;
    for (std::size_t i = 0; i < k; ++i) {
      const double di = dist[i];
      if (!(di < kInfDist)) continue;
      for (std::size_t j = 0; j < k; ++j) {
        if (i == j) continue;
        const double cand = di + a_max - ms.at(members[i], members[j]);
        if (cand < dist[j] - epsilon) {
          dist[j] = cand;
          changed = true;
        }
      }
    }
  }
  if (changed)
    throw Error(
        "SHIFTS: negative cycle under w = a_max - m̃s beyond the float "
        "tolerance; m̃s matrix is inconsistent");
  for (std::size_t i = 0; i < k; ++i) {
    // Every member is reachable from the root in one hop of the complete
    // component graph, so a non-finite distance means the matrix carried a
    // non-finite entry (e.g. NaN from a broken estimator) — refuse to emit
    // garbage corrections.
    if (!(dist[i] < kInfDist) || std::isnan(dist[i]))
      throw Error(
          "SHIFTS: non-finite correction distance inside a finiteness "
          "component; m̃s matrix carries non-finite entries");
    corrections[members[i]] = dist[i];
  }
}

}  // namespace

ShiftsResult compute_shifts(const DistanceMatrix& ms,
                            const ShiftsOptions& options) {
  const std::size_t n = ms.size();
  if (n == 0) throw Error("compute_shifts: empty instance");
  if (options.root >= n) throw Error("compute_shifts: root out of range");
  // NaN entries poison every downstream comparison silently (relaxations
  // and cycle-mean maxima all evaluate false), so reject them up front.
  for (std::size_t p = 0; p < n; ++p)
    for (std::size_t q = 0; q < n; ++q)
      if (std::isnan(ms.at(p, q)))
        throw Error("compute_shifts: m̃s matrix carries NaN entries");
  Metrics* metrics = options.metrics;
  auto timer = Metrics::scoped(metrics, "stage.shifts_seconds");

  ShiftsResult res;
  res.corrections.assign(n, 0.0);

  bool all_finite = true;
  for (std::size_t p = 0; p < n && all_finite; ++p)
    for (std::size_t q = 0; q < n; ++q)
      if (p != q && ms.at(p, q) == kInfDist) {
        all_finite = false;
        break;
      }
  if (all_finite) {
    // Bounded instance: one finiteness component holding every processor.
    // Skipping the graph build + Tarjan here keeps the per-epoch hot path
    // of the incremental pipeline O(n^2) outside the cycle mean itself.
    res.components.component.assign(n, 0);
    res.components.component_count = 1;
  } else {
    res.components = strongly_connected_components(finite_ms_graph(ms));
  }
  const auto groups = res.components.members();
  res.component_a_max.assign(groups.size(), 0.0);
  if (options.algorithm == CycleMeanAlgorithm::kHoward)
    res.policy.assign(n, kNoPolicyEdge);

  bool bounded = groups.size() == 1;

  for (std::size_t c = 0; c < groups.size(); ++c) {
    const auto& members = groups[c];
    double a_max_c = 0.0;
    if (members.size() > 1) {
      // Max mean cycle within the component.  The m̃s entries between
      // component members are all finite (strong connectivity of the
      // finite graph + the matrix being a shortest-path closure).
      Digraph sub(members.size());
      std::vector<std::size_t> local(n,
                                     std::numeric_limits<std::size_t>::max());
      for (std::size_t i = 0; i < members.size(); ++i)
        local[members[i]] = i;
      for (std::size_t i = 0; i < members.size(); ++i)
        for (std::size_t j = 0; j < members.size(); ++j)
          if (i != j) {
            const double w = ms.at(members[i], members[j]);
            if (w == kInfDist)
              throw Error(
                  "compute_shifts: m̃s matrix is not a shortest-path "
                  "closure (finite component with infinite entry)");
            sub.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j), w);
          }
      if (options.algorithm == CycleMeanAlgorithm::kKarp) {
        const auto mean = max_cycle_mean_karp(sub);
        if (!mean)
          throw Error("compute_shifts: component unexpectedly acyclic");
        a_max_c = *mean;
      } else {
        // Warm policy mapped into the component's local indices; entries
        // pointing outside this component fall back to greedy.
        std::vector<NodeId> warm_local;
        if (options.warm_policy != nullptr &&
            options.warm_policy->size() == n) {
          warm_local.assign(members.size(), kNoPolicyEdge);
          for (std::size_t i = 0; i < members.size(); ++i) {
            const NodeId want = (*options.warm_policy)[members[i]];
            if (want != kNoPolicyEdge && want < n &&
                local[want] != std::numeric_limits<std::size_t>::max())
              warm_local[i] = static_cast<NodeId>(local[want]);
          }
        }
        const HowardResult hr = max_cycle_mean_howard_warm(
            sub, warm_local.empty() ? nullptr : &warm_local, metrics);
        if (!hr.converged) {
          // Reported through metrics above; without a sink this must not
          // pass silently (the mean may undershoot and poison corrections).
          if (metrics == nullptr)
            throw Error(
                "compute_shifts: Howard iteration exited on its backstop "
                "without converging");
        }
        if (!hr.mean)
          throw Error("compute_shifts: component unexpectedly acyclic");
        a_max_c = *hr.mean;
        for (std::size_t i = 0; i < members.size(); ++i)
          if (hr.policy[i] != kNoPolicyEdge)
            res.policy[members[i]] = members[hr.policy[i]];
      }
    }
    res.component_a_max[c] = a_max_c;

    // Per-component root: the global root if it lives here, else the
    // smallest member (gauge choice only).
    const NodeId comp_root =
        (res.components.component[options.root] == c) ? options.root
                                                      : members.front();
    component_corrections(ms, members, comp_root, a_max_c,
                          options.tolerance_scale, res.corrections);
  }

  if (bounded) {
    res.a_max = ExtReal{res.component_a_max[0]};
  } else {
    res.a_max = ExtReal::infinity();
  }
  metrics_increment(metrics, "shifts.runs");
  return res;
}

ShiftsResult compute_shifts(const DistanceMatrix& ms, NodeId root,
                            CycleMeanAlgorithm algorithm) {
  ShiftsOptions options;
  options.root = root;
  options.algorithm = algorithm;
  return compute_shifts(ms, options);
}

}  // namespace cs
