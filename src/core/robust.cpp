#include "core/robust.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_map>
#include <unordered_set>

namespace cs {
namespace {

std::uint64_t dir_key(NodeId from, NodeId to) {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}

double median_of(std::vector<double> v) {
  const std::size_t n = v.size();
  std::sort(v.begin(), v.end());
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

/// One direction's MAD-gated copy appended to `out`.
void trim_direction(ProcessorId p, ProcessorId q,
                    std::span<const TimedObs> obs, double gate,
                    LinkTraffic& out, std::size_t& dropped) {
  if (obs.size() < 3 || gate <= 0.0) {
    for (const TimedObs& o : obs) out.add(p, q, o);
    return;
  }
  std::vector<double> delays;
  delays.reserve(obs.size());
  for (const TimedObs& o : obs) delays.push_back(o.delay);
  const double med = median_of(delays);
  std::vector<double> dev;
  dev.reserve(delays.size());
  for (double d : delays) dev.push_back(std::abs(d - med));
  const double mad = median_of(std::move(dev));
  if (mad == 0.0) {  // degenerate spread: no gate, keep everything
    for (const TimedObs& o : obs) out.add(p, q, o);
    return;
  }
  for (const TimedObs& o : obs) {
    if (std::abs(o.delay - med) <= gate * mad) {
      out.add(p, q, o);
    } else {
      ++dropped;
    }
  }
}

}  // namespace

LinkTraffic trimmed_traffic(const LinkTraffic& traffic,
                            const SystemModel& model, double trim_gate,
                            Metrics* metrics) {
  LinkTraffic out;
  std::size_t dropped = 0;
  for (const auto& [a, b] : model.topology().links) {
    trim_direction(a, b, traffic.direction(a, b), trim_gate, out, dropped);
    trim_direction(b, a, traffic.direction(b, a), trim_gate, out, dropped);
  }
  if (dropped != 0)
    metrics_increment(metrics, "robust.trimmed_observations", dropped);
  return out;
}

Digraph quorum_validated_mls(const Digraph& mls, const RobustOptions& options,
                             Metrics* metrics) {
  if (options.quorum == 0) return mls;
  const std::size_t n = mls.node_count();

  std::unordered_map<std::uint64_t, double> weight;
  weight.reserve(mls.edge_count() * 2);
  for (const Edge& e : mls.edges()) weight[dir_key(e.from, e.to)] = e.weight;

  // The pair graph H: u ~ v iff both directions carry an m̃ls edge — the
  // only pairs with a well-defined shift reading θ̃.
  std::vector<std::vector<NodeId>> adj(n);
  for (const Edge& e : mls.edges())
    if (e.from < e.to && weight.count(dir_key(e.to, e.from)) != 0) {
      adj[e.from].push_back(e.to);
      adj[e.to].push_back(e.from);
    }
  for (auto& nbrs : adj) std::sort(nbrs.begin(), nbrs.end());

  const auto reading = [&](NodeId u, NodeId v) {
    return 0.5 * (weight.at(dir_key(u, v)) - weight.at(dir_key(v, u)));
  };

  // Disjoint-path search: repeated hop-limited BFS from p to q, banning the
  // direct hop and the interiors of already-found paths.  Deterministic:
  // sorted adjacency, FIFO order.
  std::vector<std::uint32_t> parent(n), depth(n);
  std::vector<std::uint8_t> banned(n), seen(n);
  const auto find_path = [&](NodeId p, NodeId q,
                             std::vector<NodeId>& path) -> bool {
    std::fill(seen.begin(), seen.end(), std::uint8_t{0});
    std::deque<NodeId> frontier{p};
    seen[p] = 1;
    depth[p] = 0;
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop_front();
      if (depth[u] >= options.quorum_hops) continue;
      for (NodeId v : adj[u]) {
        if (seen[v] || banned[v]) continue;
        if (u == p && v == q) continue;  // the direct hop under test
        seen[v] = 1;
        parent[v] = u;
        depth[v] = depth[u] + 1;
        if (v == q) {
          path.clear();
          for (NodeId w = q; w != p; w = parent[w]) path.push_back(w);
          path.push_back(p);
          std::reverse(path.begin(), path.end());
          return true;
        }
        frontier.push_back(v);
      }
    }
    return false;
  };

  std::unordered_set<std::uint64_t> dropped_pairs;
  std::vector<NodeId> path;
  for (const Edge& e : mls.edges()) {
    if (e.from >= e.to) continue;
    const NodeId p = e.from, q = e.to;
    if (weight.count(dir_key(q, p)) == 0) continue;  // one-way: keep
    const double direct = reading(p, q);

    std::fill(banned.begin(), banned.end(), std::uint8_t{0});
    std::size_t found = 0, corroborated = 0;
    while (found < options.quorum && find_path(p, q, path)) {
      ++found;
      double telescoped = 0.0;
      for (std::size_t i = 0; i + 1 < path.size(); ++i)
        telescoped += reading(path[i], path[i + 1]);
      const double hops = static_cast<double>(path.size() - 1);
      if (std::abs(direct - telescoped) <=
          options.quorum_tolerance * (hops + 1.0))
        ++corroborated;
      for (std::size_t i = 1; i + 1 < path.size(); ++i)
        banned[path[i]] = 1;  // interiors consumed: routes stay disjoint
    }
    if (found == 0) continue;  // no alternative route: uncheckable, keep
    if (corroborated < found / 2 + 1)
      dropped_pairs.insert(dir_key(p, q));
  }

  if (dropped_pairs.empty()) return mls;
  Digraph out(n);
  std::size_t removed = 0;
  for (const Edge& e : mls.edges()) {
    const std::uint64_t pair = e.from < e.to ? dir_key(e.from, e.to)
                                             : dir_key(e.to, e.from);
    if (dropped_pairs.count(pair) != 0) {
      ++removed;
      continue;
    }
    out.add_edge(e.from, e.to, e.weight);
  }
  metrics_increment(metrics, "robust.quorum_dropped_edges", removed);
  return out;
}

}  // namespace cs
