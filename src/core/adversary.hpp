// Adversarial shift construction (the constructive half of Lemma 5.3).
//
// Given the *actual* mls graph of an admissible execution, the shift vector
// s_i = dist_mls(p, i) / γ (γ > 1) produces an equivalent execution that is
// again admissible, in which q has moved s_q ≈ ms(p, q)/γ later relative to
// p.  This is how the lower bound (Theorem 4.4) is realized concretely, and
// how the tests manufacture worst-case-equivalent executions to check that
// no algorithm's guaranteed precision is violated at run time.
#pragma once

#include <vector>

#include "common/time.hpp"
#include "graph/digraph.hpp"

namespace cs {

/// Shift vector realizing (1/γ of) the maximal admissible shifts away from
/// anchor p.  Nodes unreachable from p in the mls graph get shift 0 (their
/// pairs are unbounded; any value would do, 0 keeps them admissible).
/// Requires γ > 1; γ -> 1 approaches the supremum.
std::vector<Duration> adversarial_shifts(const Digraph& mls_actual,
                                         NodeId anchor, double gamma);

}  // namespace cs
