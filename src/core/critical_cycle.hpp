// Critical-cycle extraction: *why* is the precision what it is?
//
// A^max is attained by some cycle of processors θ = p_0, ..., p_k = p_0
// whose average m̃s-weight equals A^max (§4.3).  That cycle is the
// bottleneck: every pair on it is synchronized exactly at the guarantee,
// and no improvement is possible without tightening the delay knowledge of
// the links its shift estimates derive from.  Operators use this the way
// they use a critical path: it names the links worth upgrading or probing
// harder.
//
// Extraction: under weights w(p,q) = A^max - m̃s(p,q) there are no negative
// cycles and the critical cycles have weight exactly 0; with Bellman-Ford
// potentials h, reduced weights w + h_u - h_v are >= 0 and vanish on every
// edge of a 0-weight cycle.  So the critical cycles are exactly the cycles
// of the "tight" subgraph, found by DFS.
#pragma once

#include <vector>

#include "graph/floyd_warshall.hpp"

namespace cs {

/// A cycle p_0 -> p_1 -> ... -> p_{k-1} -> p_0 attaining the maximum mean
/// m̃s weight `a_max` in the finite part of `ms`, or empty if the instance
/// has no cycle (single processor).  `tolerance` absorbs float noise when
/// classifying edges as tight.
std::vector<NodeId> critical_cycle(const DistanceMatrix& ms, double a_max,
                                   double tolerance = 1e-9);

}  // namespace cs
