#include "core/zones.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <unordered_map>

#include "common/error.hpp"
#include "common/pool.hpp"
#include "core/local_estimates.hpp"
#include "core/precision.hpp"

namespace cs {

std::vector<std::vector<NodeId>> ZonePlan::members() const {
  std::vector<std::vector<NodeId>> groups(count);
  for (NodeId v = 0; v < zone_of.size(); ++v)
    groups[zone_of[v]].push_back(v);
  return groups;
}

ZonePlan zone_plan_from_assignment(std::span<const std::uint32_t> zone_of) {
  if (zone_of.empty()) fail("zone plan: empty assignment");
  ZonePlan plan;
  plan.zone_of.resize(zone_of.size());
  // Densify ids in first-appearance order so callers may hand in any
  // labeling (rack numbers, region codes, ...).
  std::unordered_map<std::uint32_t, std::uint32_t> dense;
  dense.reserve(zone_of.size());
  for (std::size_t v = 0; v < zone_of.size(); ++v) {
    const auto [it, fresh] = dense.try_emplace(
        zone_of[v], static_cast<std::uint32_t>(plan.count));
    if (fresh) ++plan.count;
    plan.zone_of[v] = it->second;
  }
  return plan;
}

ZonePlan greedy_bfs_zones(std::size_t node_count,
                          std::span<const std::pair<NodeId, NodeId>> links,
                          std::size_t target_size) {
  if (node_count == 0) fail("zone plan: empty graph");
  if (target_size == 0) fail("zone plan: target zone size must be >= 1");

  // Undirected adjacency, neighbors ascending for a deterministic BFS.
  std::vector<std::vector<NodeId>> adj(node_count);
  for (const auto& [a, b] : links) {
    if (a >= node_count || b >= node_count)
      fail("zone plan: link endpoint out of range");
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  for (auto& nbrs : adj) std::sort(nbrs.begin(), nbrs.end());

  ZonePlan plan;
  constexpr auto kUnassigned = std::numeric_limits<std::uint32_t>::max();
  plan.zone_of.assign(node_count, kUnassigned);
  for (NodeId seed = 0; seed < node_count; ++seed) {
    if (plan.zone_of[seed] != kUnassigned) continue;
    const auto zone = static_cast<std::uint32_t>(plan.count++);
    std::queue<NodeId> frontier;
    frontier.push(seed);
    plan.zone_of[seed] = zone;
    std::size_t absorbed = 1;
    while (!frontier.empty() && absorbed < target_size) {
      const NodeId v = frontier.front();
      frontier.pop();
      for (NodeId w : adj[v]) {
        if (plan.zone_of[w] != kUnassigned) continue;
        plan.zone_of[w] = zone;
        frontier.push(w);
        if (++absorbed >= target_size) break;
      }
    }
  }
  return plan;
}

ZonePlan greedy_bfs_zones(const Topology& topo, std::size_t target_size) {
  return greedy_bfs_zones(topo.node_count, topo.links, target_size);
}

ZonePlan datacenter_zones(std::size_t spines, std::size_t racks,
                          std::size_t hosts) {
  if (spines == 0 || racks == 0)
    fail("zone plan: datacenter needs spines >= 1, racks >= 1");
  const std::size_t n = spines + racks * (1 + hosts);
  ZonePlan plan;
  plan.zone_of.resize(n);
  plan.count = spines + racks;
  plan.leaders.resize(plan.count);
  for (std::size_t s = 0; s < spines; ++s)
    plan.leaders[s] = static_cast<NodeId>(s);
  for (std::size_t r = 0; r < racks; ++r)
    plan.leaders[spines + r] = static_cast<NodeId>(spines + r);  // the ToR
  // Node order matches make_datacenter: spines, ToRs, hosts rack-major.
  for (std::size_t s = 0; s < spines; ++s)
    plan.zone_of[s] = static_cast<std::uint32_t>(s);
  for (std::size_t r = 0; r < racks; ++r)
    plan.zone_of[spines + r] = static_cast<std::uint32_t>(spines + r);
  for (std::size_t r = 0; r < racks; ++r)
    for (std::size_t h = 0; h < hosts; ++h)
      plan.zone_of[spines + racks + r * hosts + h] =
          static_cast<std::uint32_t>(spines + r);
  return plan;
}

namespace {

struct ZoneSolve {
  bool bounded{true};
  double a_max{0.0};
  double thm46_gap{0.0};
  std::vector<double> x;            // local-index corrections, leader gauge
  std::vector<double> from_leader;  // m̃s_Z(L, i)
  std::vector<double> to_leader;    // m̃s_Z(i, L)
};

void validate_plan(const ZonePlan& plan, std::size_t n) {
  if (plan.zone_of.size() != n)
    fail("zone plan covers " + std::to_string(plan.zone_of.size()) +
         " nodes, graph has " + std::to_string(n));
  if (plan.count == 0) fail("zone plan: zero zones");
  std::vector<bool> seen(plan.count, false);
  for (const std::uint32_t z : plan.zone_of) {
    if (z >= plan.count) fail("zone plan: zone id out of range");
    seen[z] = true;
  }
  for (std::size_t z = 0; z < plan.count; ++z)
    if (!seen[z])
      fail("zone plan: zone " + std::to_string(z) + " is empty");
}

}  // namespace

ZonedOutcome synchronize_zoned_mls(Digraph mls_graph, const ZonePlan& plan_in,
                                   const SyncOptions& options) {
  const std::size_t n = mls_graph.node_count();
  validate_plan(plan_in, n);
  if (options.root >= n) fail("zone plan: root out of range");

  ZonedOutcome out;
  out.plan = plan_in;
  const std::size_t zcount = out.plan.count;
  const auto groups = out.plan.members();

  // Resolve leaders: smallest member, except the root's zone gets the root
  // itself — that makes the single-zone case coincide with the dense
  // pipeline bit-for-bit (same gauge, same matrix, same solve).
  if (out.plan.leaders.empty()) {
    out.plan.leaders.resize(zcount);
    for (std::size_t z = 0; z < zcount; ++z)
      out.plan.leaders[z] = groups[z].front();
    out.plan.leaders[out.plan.zone_of[options.root]] = options.root;
  } else {
    if (out.plan.leaders.size() != zcount)
      fail("zone plan: need one leader per zone");
    for (std::size_t z = 0; z < zcount; ++z) {
      const NodeId lead = out.plan.leaders[z];
      if (lead >= n || out.plan.zone_of[lead] != z)
        fail("zone plan: leader of zone " + std::to_string(z) +
             " is not a member");
    }
  }

  // Local index of each node within its zone.
  std::vector<std::uint32_t> local(n);
  for (std::size_t z = 0; z < zcount; ++z)
    for (std::size_t i = 0; i < groups[z].size(); ++i)
      local[groups[z][i]] = static_cast<std::uint32_t>(i);

  // Bucket m̃ls edges by zone (edge-id order is preserved per bucket, so
  // each induced subgraph is built exactly as the dense path would).
  std::vector<std::vector<EdgeId>> intra(zcount);
  std::vector<EdgeId> cross;
  {
    auto timer =
        Metrics::scoped(options.metrics, "stage.zone_partition_seconds");
    for (EdgeId e = 0; e < mls_graph.edge_count(); ++e) {
      const Edge& ed = mls_graph.edge(e);
      const std::uint32_t za = out.plan.zone_of[ed.from];
      const std::uint32_t zb = out.plan.zone_of[ed.to];
      if (za == zb)
        intra[za].push_back(e);
      else
        cross.push_back(e);
    }
  }

  // Per-zone GLOBAL ESTIMATES + SHIFTS across the pool.  Each task touches
  // only its own ZoneSolve slot and reads the frozen m̃ls graph, so any
  // thread count yields byte-identical results.
  mls_graph.freeze();
  std::vector<ZoneSolve> solved(zcount);
  {
    auto timer = Metrics::scoped(options.metrics, "stage.zone_solves_seconds");
    PoolOptions pool;
    pool.threads = options.threads;
    pool.metrics = options.metrics;
    run_indexed(
        zcount,
        [&](std::size_t z) {
          const auto& nodes = groups[z];
          const std::size_t k = nodes.size();
          Digraph sub(k);
          for (const EdgeId e : intra[z]) {
            const Edge& ed = mls_graph.edge(e);
            sub.add_edge(local[ed.from], local[ed.to], ed.weight);
          }
          const DistanceMatrix ms =
              global_shift_estimates(sub, options.apsp, nullptr);
          ShiftsOptions so;
          so.root = local[out.plan.leaders[z]];
          so.algorithm = options.cycle_mean;
          ShiftsResult sr = compute_shifts(ms, so);

          ZoneSolve& s = solved[z];
          s.bounded = sr.bounded();
          s.a_max = sr.a_max.value();
          if (sr.bounded()) {
            const ExtReal rho = guaranteed_precision(ms, sr.corrections);
            s.thm46_gap = std::fabs(rho.value() - sr.a_max.value());
          }
          s.from_leader.resize(k);
          s.to_leader.resize(k);
          const std::size_t lead = so.root;
          for (std::size_t i = 0; i < k; ++i) {
            s.from_leader[i] = ms.at(lead, i);
            s.to_leader[i] = ms.at(i, lead);
          }
          s.x = std::move(sr.corrections);
        },
        pool);
  }

  // Fold the leader quotient: edge A→B = tightest crossing-chain bound
  // m̃s_A(L_A, u) + m̃ls(u, v) + m̃s_B(v, L_B).  Serial, edge-id order, so
  // the quotient is identical for any thread count upstream.  The quotient
  // APSP re-applies kMlsSlack per quotient edge, covering the crossing
  // edge's slack; the intra-zone terms already carry theirs.
  out.quotient = Digraph(zcount);
  {
    auto timer =
        Metrics::scoped(options.metrics, "stage.zone_quotient_seconds");
    std::vector<double> best(zcount * zcount, kInfDist);
    for (const EdgeId e : cross) {
      const Edge& ed = mls_graph.edge(e);
      const std::uint32_t za = out.plan.zone_of[ed.from];
      const std::uint32_t zb = out.plan.zone_of[ed.to];
      const double head = solved[za].from_leader[local[ed.from]];
      const double tail = solved[zb].to_leader[local[ed.to]];
      if (head == kInfDist || tail == kInfDist) continue;
      double& slot = best[za * zcount + zb];
      slot = std::min(slot, head + ed.weight + tail);
    }
    for (std::size_t a = 0; a < zcount; ++a)
      for (std::size_t b = 0; b < zcount; ++b)
        if (best[a * zcount + b] != kInfDist)
          out.quotient.add_edge(static_cast<NodeId>(a),
                                static_cast<NodeId>(b),
                                best[a * zcount + b]);
  }

  out.quotient_ms =
      global_shift_estimates(out.quotient, options.apsp, options.metrics);
  {
    ShiftsOptions qo;
    qo.root = out.plan.zone_of[options.root];
    qo.algorithm = options.cycle_mean;
    qo.metrics = options.metrics;
    ShiftsResult qs = compute_shifts(out.quotient_ms, qo);
    out.quotient_a_max = qs.a_max;
    if (qs.bounded()) {
      const ExtReal rho = guaranteed_precision(out.quotient_ms,
                                               qs.corrections);
      out.quotient_thm46_gap = std::fabs(rho.value() - qs.a_max.value());
    }
    out.leader_corrections = std::move(qs.corrections);
  }

  // Compose and re-gauge to the global root.
  out.corrections.resize(n);
  for (std::size_t z = 0; z < zcount; ++z)
    for (std::size_t i = 0; i < groups[z].size(); ++i)
      out.corrections[groups[z][i]] =
          solved[z].x[i] + out.leader_corrections[z];
  const double c_root = out.corrections[options.root];
  if (c_root != 0.0)
    for (double& c : out.corrections) c -= c_root;

  // Per-zone stats + the composed bound.
  out.zones.resize(zcount);
  out.zones_bounded = true;
  out.max_zone_a_max = 0.0;
  for (std::size_t z = 0; z < zcount; ++z) {
    ZoneStats& st = out.zones[z];
    st.leader = out.plan.leaders[z];
    st.size = static_cast<std::uint32_t>(groups[z].size());
    st.bounded = solved[z].bounded;
    st.a_max = solved[z].a_max;
    st.thm46_gap = solved[z].thm46_gap;
    if (st.bounded)
      out.max_zone_a_max = std::max(out.max_zone_a_max, st.a_max);
    else
      out.zones_bounded = false;
  }

  if (!out.zones_bounded || (zcount > 1 && !out.quotient_a_max.is_finite())) {
    out.composed_bound = ExtReal::infinity();
  } else if (zcount == 1) {
    out.composed_bound = ExtReal{solved[0].a_max};
  } else {
    // max over zone pairs of Ã^max_A + Ã^max_B + q̃s(A,B) − y_A + y_B; the
    // quotient being bounded guarantees every off-diagonal q̃s is finite.
    const auto& y = out.leader_corrections;
    double worst = out.max_zone_a_max;
    for (std::size_t a = 0; a < zcount; ++a)
      for (std::size_t b = 0; b < zcount; ++b) {
        if (a == b) continue;
        worst = std::max(worst, solved[a].a_max + solved[b].a_max +
                                    out.quotient_ms.at(a, b) - y[a] + y[b]);
      }
    out.composed_bound = ExtReal{worst};
  }

  metrics_increment(options.metrics, "pipeline.zoned_runs");
  out.mls_graph = std::move(mls_graph);
  return out;
}

ZonedOutcome synchronize_zoned(const SystemModel& model,
                               std::span<const View> views,
                               const ZonePlan& plan,
                               const SyncOptions& options) {
  if (views.size() != model.processor_count())
    throw InvalidExecution("need exactly one view per processor");
  for (std::size_t i = 0; i < views.size(); ++i)
    if (views[i].pid != i)
      throw InvalidExecution("views must be ordered by processor id");

  Digraph mls;
  {
    auto timer =
        Metrics::scoped(options.metrics, "stage.local_estimates_seconds");
    mls = local_shift_estimates(model, views, options.match, options.threads);
  }
  return synchronize_zoned_mls(std::move(mls), plan, options);
}

ZoneRealized realized_precision_zoned(std::span<const RealTime> starts,
                                      std::span<const double> x,
                                      const ZonePlan& plan) {
  const std::size_t n = starts.size();
  if (x.size() != n)
    throw InvalidExecution("realized precision: starts/corrections mismatch");
  if (plan.zone_of.size() != n)
    throw InvalidExecution("realized precision: plan does not cover starts");

  ZoneRealized r;
  r.per_zone.assign(plan.count, 0.0);
  if (n < 2) return r;

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> lo(plan.count, kInf), hi(plan.count, -kInf);
  for (std::size_t p = 0; p < n; ++p) {
    const double d = starts[p].sec - x[p];
    if (std::isnan(d))
      throw InvalidExecution("realized precision: non-finite discrepancy");
    const std::uint32_t z = plan.zone_of[p];
    lo[z] = std::min(lo[z], d);
    hi[z] = std::max(hi[z], d);
  }

  double glo = kInf, ghi = -kInf;
  for (std::size_t z = 0; z < plan.count; ++z) {
    r.per_zone[z] = hi[z] - lo[z];
    r.intra = std::max(r.intra, r.per_zone[z]);
    glo = std::min(glo, lo[z]);
    ghi = std::max(ghi, hi[z]);
  }
  r.overall = ghi - glo;

  if (plan.count >= 2) {
    // cross = max over A of (hi_A − min over B ≠ A of lo_B): track the two
    // smallest zone minima so the "B ≠ A" exclusion is O(1) per zone.
    std::size_t best = 0;
    for (std::size_t z = 1; z < plan.count; ++z)
      if (lo[z] < lo[best]) best = z;
    double second = kInf;
    for (std::size_t z = 0; z < plan.count; ++z)
      if (z != best) second = std::min(second, lo[z]);
    for (std::size_t z = 0; z < plan.count; ++z) {
      const double other = (z == best) ? second : lo[best];
      r.cross = std::max(r.cross, hi[z] - other);
    }
    r.cross = std::max(r.cross, 0.0);
  }
  return r;
}

}  // namespace cs
