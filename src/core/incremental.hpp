// Incremental epoch pipeline — the stateful counterpart of synchronize().
//
// Periodic re-synchronization (core/epochs) runs the full pipeline at every
// epoch boundary, but consecutive boundaries see almost the same traffic:
// only the m̃ls edges whose links absorbed new probes change, and with
// growing view prefixes they only tighten (d̃min never grows).  The
// from-scratch pipeline recomputes the APSP closure and the max-cycle-mean
// from nothing each time; IncrementalSynchronizer carries the previous
// epoch's state across:
//
//   * the APSP closure is delta-updated (graph/incremental_apsp.hpp),
//     falling back to a full Johnson rebuild only when the m̃ls delta is
//     large or the node set changed;
//   * Howard's policy iteration warm-starts from the previous epoch's
//     optimal policy (graph/cycle_mean.hpp) when SyncOptions::cycle_mean is
//     kHoward.
//
// Results are equivalent to synchronize() up to float tolerance — enforced
// by the 200-sequence property test in
// tests/core/incremental_pipeline_test.cpp; the speedup on single-edge-
// change epochs is tracked in BENCH_pipeline.json (bench/bench_e11).
#pragma once

#include <span>

#include "core/synchronizer.hpp"
#include "graph/incremental_apsp.hpp"

namespace cs {

class IncrementalSynchronizer {
 public:
  /// `model` must outlive the synchronizer.  options.metrics (optional) is
  /// shared with every step; it also receives the incremental/full APSP
  /// counters ("apsp.incremental_updates", "apsp.full_rebuilds",
  /// "apsp.dirty_fallbacks") and Howard warm-start counters.
  explicit IncrementalSynchronizer(const SystemModel& model,
                                   SyncOptions options = {});

  /// Runs the pipeline on `views`, reusing the previous call's APSP matrix
  /// and Howard policy where the m̃ls delta allows.  Same contract as
  /// synchronize(): throws InvalidAssumption on inadmissible views,
  /// InvalidExecution on malformed ones.
  SyncOutcome step(std::span<const View> views);

  /// Pipeline tail over an already-built m̃ls graph (the counterpart of
  /// synchronize_mls): the degraded-mode epoch driver estimates and
  /// carry-forwards the graph itself, then delta-updates through here.
  SyncOutcome step_mls(Digraph mls_graph);

  /// Drops all carried state; the next step() rebuilds from scratch.
  void reset();

  /// Stats of the last step's APSP update (incremental vs rebuild, dirty
  /// rows) — exposed for benches and tests.
  const IncrementalApsp::StepStats& last_apsp_step() const {
    return apsp_.last_step();
  }

 private:
  const SystemModel* model_;
  SyncOptions options_;
  IncrementalApsp apsp_;
  std::vector<NodeId> policy_;  // previous epoch's Howard policy
  EpochArena shifts_arena_;     // SHIFTS scratch, reused across epochs
};

}  // namespace cs
