// Precision evaluation (§3).
//
// Two quantities matter:
//
//   ρ(α, x)   — the realized discrepancy in one concrete execution:
//               max_{p,q} |(S_p - x_p) - (S_q - x_q)|.  Ground-truth-only.
//
//   ρ̄_α(x)    — the guaranteed precision over the whole equivalence class:
//               sup{ρ(α', x) : α' ≡ α}.  By Claim 4.2 this equals
//               max_{p≠q} [ m̃s(p,q) - x_p + x_q ], so — pleasingly — it is
//               computable from the views alone, like the corrections
//               themselves.
//
// Theorems 4.4/4.6 in these terms: ρ̄_α(x) >= A^max for every x, with
// equality for the SHIFTS corrections.  The property tests check exactly
// that, plus ρ <= ρ̄ on adversarially shifted equivalent executions.
#pragma once

#include <span>

#include "common/extreal.hpp"
#include "common/time.hpp"
#include "graph/floyd_warshall.hpp"

namespace cs {

/// Realized discrepancy of corrections x in an execution with the given
/// start times.  O(n): max − min of the per-processor discrepancies, which
/// equals the pairwise maximum bit-for-bit.  0 for n <= 1 (a singleton has
/// no pairs).  Throws InvalidExecution on a size mismatch or a NaN
/// discrepancy — at 100k+ agents a silent debug-only assert is how NaNs
/// leak into reports.
double realized_precision(std::span<const RealTime> starts,
                          std::span<const double> x);

/// Guaranteed precision ρ̄ of corrections x given the m̃s estimate matrix.
/// +inf if any pair with infinite m̃s exists (n >= 2); 0 for n <= 1.
/// Throws InvalidExecution on size mismatch or NaN corrections.
ExtReal guaranteed_precision(const DistanceMatrix& ms_estimates,
                             std::span<const double> x);

/// As above, restricted to the *directed* pairs with finite m̃s — the
/// meaningful quantity on unbounded instances synchronized per component.
/// A one-way-bounded pair still contributes its finite direction's
/// m̃s(p,q) − x_p + x_q term; only genuinely unconstrained directions are
/// skipped (skipping the pair wholesale under-reports worst-case skew).
double guaranteed_precision_finite(const DistanceMatrix& ms_estimates,
                                   std::span<const double> x);

}  // namespace cs
