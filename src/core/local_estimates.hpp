// Step 1 of the pipeline: estimated maximal local shifts from views.
//
// For every link {a, b} and both orientations, apply the link constraint's
// closed form (§6) to the estimated per-direction delay statistics
// (Lemma 6.1) to get m̃ls(p, q).  The result is a directed graph whose edge
// weights are the finite m̃ls values; +inf estimates (no information at all
// in that orientation) are represented by edge absence.
#pragma once

#include <span>

#include "delaymodel/assignment.hpp"
#include "delaymodel/link_stats.hpp"
#include "graph/digraph.hpp"

namespace cs {

/// m̃ls graph from views — the pipeline path (uses estimated delays only).
/// Use MatchPolicy::kDropOrphans when the views are epoch-boundary
/// prefixes (see View::prefix).  `threads` shards the per-link constraint
/// folds across the work-stealing pool (1 = serial; byte-identical output
/// for any value — see mls_graph_from_traffic).
Digraph local_shift_estimates(const SystemModel& model,
                              std::span<const View> views,
                              MatchPolicy policy = MatchPolicy::kStrict,
                              std::size_t threads = 1);

/// mls graph from ground truth — observer path, for lower-bound evaluation
/// and tests.  Identical formulas over actual delays (Lemma 6.2/6.5 give
/// mls; Cor 6.3/6.6 give m̃ls — the same function of the respective stats).
Digraph local_shifts_actual(const SystemModel& model, const Execution& exec);

/// Shared kernel: m̃ls (or mls) graph from pre-aggregated per-direction
/// statistics.  Used by the coordinator protocol, whose leader receives
/// remotely aggregated stats rather than raw views.  Note: time-aware
/// constraints (windowed bias) fall back to their conservative stats-only
/// envelope on this path — the coordinator's report format carries only
/// extremes.  Use the traffic path for full fidelity.
Digraph mls_graph_from_stats(const SystemModel& model,
                             const LinkStats& stats);

/// Full-fidelity kernel over per-direction timed observations; what
/// local_shift_estimates / local_shifts_actual use.  With threads != 1 the
/// per-link m̃ls folds (independent closed-form evaluations over disjoint
/// observation spans) run across the work-stealing pool; edges are then
/// inserted serially in link order, so the resulting Digraph is
/// byte-identical to the serial build for any thread count.
Digraph mls_graph_from_traffic(const SystemModel& model,
                               const LinkTraffic& traffic,
                               std::size_t threads = 1);

}  // namespace cs
