// Step 3: Function SHIFTS (§4.4, Theorem 4.6).
//
// Inputs: the matrix of estimated maximal global shifts m̃s(p, q).
// Outputs: the optimal corrections and their precision Ã^max = A^max.
//
//   1. Ã^max = maximum mean cycle of the shift graph (Karp).
//   2. correction(p) = dist_w(root, p) under w(p,q) = Ã^max - m̃s(p,q)
//      (Bellman–Ford: weights may be negative; Theorem 4.6 guarantees no
//      negative cycles).
//
// Unbounded instances: if some pair's m̃s is +inf, A^max = +inf — no finite
// precision can be guaranteed across that pair (§3's motivation).  SHIFTS
// then degrades gracefully: the strongly connected components of the
// finite-m̃s graph ("finiteness components") are synchronized independently,
// each with its own optimal per-component precision; the reported overall
// a_max is +inf.  Within a component the corrections coincide with what
// SHIFTS would produce on that component's sub-instance, so per-component
// optimality is preserved.
#pragma once

#include <vector>

#include "common/extreal.hpp"
#include "graph/floyd_warshall.hpp"
#include "graph/scc.hpp"

namespace cs {

struct ShiftsResult {
  /// The instance-optimal precision Ã^max; +inf on unbounded instances.
  ExtReal a_max{0.0};

  /// Correction offset per processor.  The corrected logical clock of p is
  /// its local clock plus corrections[p] (Definition 2.1).
  std::vector<double> corrections;

  /// Finiteness components of the m̃s graph (a single component iff the
  /// instance is bounded).
  SccResult components;

  /// Optimal precision within each component (0 for singletons).
  std::vector<double> component_a_max;

  bool bounded() const { return a_max.is_finite(); }
};

/// Which maximum-cycle-mean algorithm drives step 1.  Karp is the paper's
/// prescription and the default; Howard's policy iteration is measurably
/// faster on large dense instances (bench E8a) with identical results.
enum class CycleMeanAlgorithm { kKarp, kHoward };

/// `ms` is the m̃s matrix from global_shift_estimates (diagonal 0, +inf for
/// unconstrained pairs).  `root` breaks the additive-constant gauge freedom;
/// any root yields corrections differing by a per-component constant, which
/// does not affect pairwise precision.
ShiftsResult compute_shifts(
    const DistanceMatrix& ms, NodeId root = 0,
    CycleMeanAlgorithm algorithm = CycleMeanAlgorithm::kKarp);

}  // namespace cs
