// Step 3: Function SHIFTS (§4.4, Theorem 4.6).
//
// Inputs: the matrix of estimated maximal global shifts m̃s(p, q).
// Outputs: the optimal corrections and their precision Ã^max = A^max.
//
//   1. Ã^max = maximum mean cycle of the shift graph (Karp).
//   2. correction(p) = dist_w(root, p) under w(p,q) = Ã^max - m̃s(p,q)
//      (Bellman–Ford: weights may be negative; Theorem 4.6 guarantees no
//      negative cycles).
//
// Unbounded instances: if some pair's m̃s is +inf, A^max = +inf — no finite
// precision can be guaranteed across that pair (§3's motivation).  SHIFTS
// then degrades gracefully: the strongly connected components of the
// finite-m̃s graph ("finiteness components") are synchronized independently,
// each with its own optimal per-component precision; the reported overall
// a_max is +inf.  Within a component the corrections coincide with what
// SHIFTS would produce on that component's sub-instance, so per-component
// optimality is preserved.
#pragma once

#include <vector>

#include "common/extreal.hpp"
#include "common/metrics.hpp"
#include "graph/cycle_mean.hpp"
#include "graph/floyd_warshall.hpp"
#include "graph/scc.hpp"

namespace cs {

struct ShiftsResult {
  /// The instance-optimal precision Ã^max; +inf on unbounded instances.
  ExtReal a_max{0.0};

  /// Correction offset per processor.  The corrected logical clock of p is
  /// its local clock plus corrections[p] (Definition 2.1).
  std::vector<double> corrections;

  /// Finiteness components of the m̃s graph (a single component iff the
  /// instance is bounded).
  SccResult components;

  /// Optimal precision within each component (0 for singletons).
  std::vector<double> component_a_max;

  /// Howard policy (successor per processor, kNoPolicyEdge where none) when
  /// the Howard algorithm ran; empty under Karp.  Feed back through
  /// ShiftsOptions::warm_policy on the next epoch.
  std::vector<NodeId> policy;

  bool bounded() const { return a_max.is_finite(); }
};

/// Which maximum-cycle-mean algorithm drives step 1.  Karp is the paper's
/// prescription and the default; Howard's policy iteration is measurably
/// faster on large dense instances (bench E8a) with identical results.
enum class CycleMeanAlgorithm { kKarp, kHoward };

struct ShiftsOptions {
  /// Breaks the additive-constant gauge freedom; any root yields corrections
  /// differing by a per-component constant, which does not affect pairwise
  /// precision.
  NodeId root{0};
  CycleMeanAlgorithm algorithm{CycleMeanAlgorithm::kKarp};

  /// Relative scale of the Bellman–Ford relaxation tolerance in the
  /// corrections step: epsilon = tolerance_scale * max(1, |Ã^max|).  The
  /// max-mean cycle has weight exactly 0 under w = Ã^max − m̃s, so float
  /// rounding can manufacture cycles of weight ~-1 ulp; the tolerance
  /// absorbs them in a single principled pass (DESIGN.md "Numeric tolerance
  /// contract").  Cycles more negative than epsilon still throw.
  double tolerance_scale{1e-9};

  /// Previous epoch's ShiftsResult::policy to warm-start Howard's policy
  /// iteration (ignored under Karp; nullptr = cold start).
  const std::vector<NodeId>* warm_policy{nullptr};

  /// Optional instrumentation sink (stage timings, Howard iteration counts,
  /// backstop reports).  nullptr = no instrumentation.
  Metrics* metrics{nullptr};

  /// Scratch arena for the dense cycle-mean kernels and correction
  /// distances (walk tables, policy/value vectors).  The call reset()s it
  /// on entry and leaves its allocations dead on exit.  nullptr = the call
  /// uses a private arena (still no per-component heap churn, but capacity
  /// is not retained across epochs).
  EpochArena* arena{nullptr};

  /// Worker threads for per-component solves on unbounded instances.
  /// Components are independent — each writes a disjoint slice of the
  /// corrections/policy arrays and all float work is confined to its own
  /// members — so any thread count produces byte-identical results
  /// (enforced by tests/core/shifts_threads_test.cpp).  1 = serial; only
  /// engaged when there is more than one component.
  std::size_t threads{1};
};

/// `ms` is the m̃s matrix from global_shift_estimates (diagonal 0, +inf for
/// unconstrained pairs).
ShiftsResult compute_shifts(const DistanceMatrix& ms,
                            const ShiftsOptions& options);

/// Convenience overload preserving the historical signature.
ShiftsResult compute_shifts(
    const DistanceMatrix& ms, NodeId root = 0,
    CycleMeanAlgorithm algorithm = CycleMeanAlgorithm::kKarp);

}  // namespace cs
