#include "core/global_estimates.hpp"

#include "common/error.hpp"
#include "graph/johnson.hpp"

namespace cs {

DistanceMatrix global_shift_estimates(const Digraph& mls_graph,
                                      ApspAlgorithm algorithm) {
  // Measured delays carry ~1 ulp of float noise, so executions that sit
  // exactly on their bounds can produce m̃ls cycles of weight ~-1e-16 where
  // the theory guarantees >= 0.  A picosecond of per-edge slack keeps the
  // matrix a valid (conservative) over-approximation — negligible against
  // any physical delay scale — while real assumption violations still
  // produce decisively negative cycles and are rejected below.
  constexpr double kSlack = 1e-12;
  Digraph relaxed(mls_graph.node_count());
  for (const Edge& e : mls_graph.edges())
    relaxed.add_edge(e.from, e.to, e.weight + kSlack);

  std::optional<DistanceMatrix> m;
  switch (algorithm) {
    case ApspAlgorithm::kJohnson:
      m = johnson(relaxed);
      break;
    case ApspAlgorithm::kFloydWarshall:
      m = floyd_warshall(relaxed);
      break;
  }
  if (!m)
    throw InvalidAssumption(
        "negative m̃ls cycle: the observed execution contradicts the "
        "declared delay assumptions");
  return *m;
}

}  // namespace cs
