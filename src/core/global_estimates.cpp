#include "core/global_estimates.hpp"

#include "common/error.hpp"
#include "graph/johnson.hpp"

namespace cs {

Digraph slack_relaxed_mls(const Digraph& mls_graph) {
  // Measured delays carry ~1 ulp of float noise, so executions that sit
  // exactly on their bounds can produce m̃ls cycles of weight ~-1e-16 where
  // the theory guarantees >= 0.  A picosecond of per-edge slack keeps the
  // matrix a valid (conservative) over-approximation — negligible against
  // any physical delay scale — while real assumption violations still
  // produce decisively negative cycles and are rejected by APSP.
  Digraph relaxed(mls_graph.node_count());
  for (const Edge& e : mls_graph.edges())
    relaxed.add_edge(e.from, e.to, e.weight + kMlsSlack);
  return relaxed;
}

DistanceMatrix global_shift_estimates(const Digraph& mls_graph,
                                      ApspAlgorithm algorithm,
                                      Metrics* metrics) {
  auto timer = Metrics::scoped(metrics, "stage.global_estimates_seconds");
  const Digraph relaxed = slack_relaxed_mls(mls_graph);

  std::optional<DistanceMatrix> m;
  switch (algorithm) {
    case ApspAlgorithm::kJohnson:
      m = johnson(relaxed);
      break;
    case ApspAlgorithm::kFloydWarshall:
      m = floyd_warshall(relaxed);
      break;
  }
  if (!m)
    throw InvalidAssumption(
        "negative m̃ls cycle: the observed execution contradicts the "
        "declared delay assumptions");
  metrics_increment(metrics, "apsp.from_scratch_runs");
  return *m;
}

}  // namespace cs
