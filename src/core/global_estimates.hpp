// Step 2: GLOBAL ESTIMATES (Theorem 5.5).
//
// In a local system, the maximal global shift is the shortest-path distance
// over maximal local shifts (Lemma 5.3), and the same holds verbatim for
// the estimated quantities because start-time terms telescope along paths.
// So m̃s = APSP(m̃ls graph), with +inf for pairs no constraint chain
// connects.
#pragma once

#include "graph/floyd_warshall.hpp"

namespace cs {

enum class ApspAlgorithm {
  kJohnson,        ///< default: O(nm + n^2 log n), right for sparse networks
  kFloydWarshall,  ///< O(n^3) reference; ablation bench E8 compares
};

/// Throws InvalidAssumption if the m̃ls graph has a negative cycle — that is
/// a proof the observed execution is not admissible under the declared
/// assumptions (cycle weights are invariant between mls and m̃ls, and true
/// mls cycles are non-negative).
DistanceMatrix global_shift_estimates(
    const Digraph& mls_graph,
    ApspAlgorithm algorithm = ApspAlgorithm::kJohnson);

}  // namespace cs
