// Step 2: GLOBAL ESTIMATES (Theorem 5.5).
//
// In a local system, the maximal global shift is the shortest-path distance
// over maximal local shifts (Lemma 5.3), and the same holds verbatim for
// the estimated quantities because start-time terms telescope along paths.
// So m̃s = APSP(m̃ls graph), with +inf for pairs no constraint chain
// connects.
#pragma once

#include "common/metrics.hpp"
#include "graph/floyd_warshall.hpp"

namespace cs {

enum class ApspAlgorithm {
  kJohnson,        ///< default: O(nm + n^2 log n), right for sparse networks
  kFloydWarshall,  ///< O(n^3) reference; ablation bench E8 compares
};

/// Per-edge slack added before APSP so that executions sitting exactly on
/// their delay bounds (cycle weight ~-1 ulp where theory guarantees >= 0)
/// stay admissible; see the numeric tolerance contract in DESIGN.md.
inline constexpr double kMlsSlack = 1e-12;

/// The m̃ls graph with kMlsSlack added to every edge — the graph APSP
/// actually runs on.  Exposed so the incremental epoch pipeline diffs the
/// same graph the from-scratch path closes over.
Digraph slack_relaxed_mls(const Digraph& mls_graph);

/// Throws InvalidAssumption if the m̃ls graph has a negative cycle — that is
/// a proof the observed execution is not admissible under the declared
/// assumptions (cycle weights are invariant between mls and m̃ls, and true
/// mls cycles are non-negative).  `metrics` (optional) receives the
/// "stage.global_estimates_seconds" timing.
DistanceMatrix global_shift_estimates(
    const Digraph& mls_graph,
    ApspAlgorithm algorithm = ApspAlgorithm::kJohnson,
    Metrics* metrics = nullptr);

}  // namespace cs
