// Degraded-mode synchronization: what the pipeline does when links go
// quiet.
//
// Fault injection (sim/fault_plan.hpp) — and any real deployment — produces
// epochs in which some links contributed no usable observations: messages
// were dropped, the link was down, a processor was crashed, or (in
// sliding-window mode) every observation aged out of the window.  Absent
// observations mean absent m̃ls edges, and absent edges mean the epoch's
// instance may be partitioned: no finite precision is guaranteed across the
// cut, only within each finiteness component (shifts.hpp).
//
// This header provides the two degraded-mode primitives the epoch drivers
// layer over the plain pipeline:
//
//   * LinkCoverage — the per-direction observation census of one epoch, so
//     operators can see *which* links starved rather than puzzle over a
//     loosened precision report;
//   * MlsCarry — cross-epoch carry-forward of m̃ls edges for links with
//     zero fresh observations, with configurable staleness widening.  A
//     carried edge reuses the last observed m̃ls bound, loosened by
//     `widen_per_epoch` for every epoch of age: under drift-free clocks
//     the old bound is still exact (observations never expire), and under
//     bounded drift rho the widening rate `rho * epoch_length` keeps the
//     carried bound sound.  Edges older than `max_carry_epochs` are
//     dropped — at some point a guess is worse than admitting partition.
//
// Both are deterministic: coverage follows topology order and the carry
// memory iterates in sorted key order, so fixed seeds keep producing
// identical epoch reports.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <vector>

#include "common/metrics.hpp"
#include "delaymodel/assignment.hpp"
#include "delaymodel/link_stats.hpp"
#include "graph/digraph.hpp"

namespace cs {

/// Observation census of one direction of one link in one epoch.
struct DirectedCoverage {
  ProcessorId from{0};
  ProcessorId to{0};
  std::size_t observations{0};

  /// True when the link is known to have *disappeared* (churn: a link-down
  /// window covers the census instant).  An absent direction's
  /// observations may be non-zero — they are stale traffic from before the
  /// link vanished — but it does not count as observed: a gone link must
  /// not masquerade as a quiet-but-healthy one.
  bool absent{false};
};

/// Per-link observation coverage of an epoch: two entries per topology link
/// (a->b then b->a, in topology order).
struct LinkCoverage {
  std::vector<DirectedCoverage> directions;
  std::size_t observed_directions{0};
  std::size_t total_directions{0};
  std::size_t absent_directions{0};

  /// Fraction of link directions with at least one observation; 1 on an
  /// edgeless topology.
  double fraction() const {
    return total_directions == 0
               ? 1.0
               : static_cast<double>(observed_directions) /
                     static_cast<double>(total_directions);
  }
};

/// Census the traffic of one epoch against the model's topology.
LinkCoverage link_coverage(const SystemModel& model,
                           const LinkTraffic& traffic);

/// Churn-aware census: `link_down` flags (topology link order, e.g. from
/// cs::byz::links_down_at) mark links dark at the census instant; both
/// directions of a dark link are counted absent rather than observed,
/// whatever stale traffic the window still holds.  (vector<bool> because
/// that is what the census producers return; span cannot view it.)
LinkCoverage link_coverage(const SystemModel& model,
                           const LinkTraffic& traffic,
                           const std::vector<bool>& link_down);

/// Staleness policy for carrying m̃ls edges across epochs.
struct StalenessOptions {
  /// Off by default: an unobserved link is simply an absent edge and the
  /// epoch degrades to per-component guarantees.
  bool carry_forward{false};

  /// Widening added per epoch of age to a carried edge's m̃ls weight
  /// (m̃ls is an upper bound, so widening loosens — stays sound under
  /// drift bounded by widen_per_epoch / epoch_length).
  double widen_per_epoch{0.0};

  /// Carried edges older than this many epochs are dropped.
  std::size_t max_carry_epochs{std::numeric_limits<std::size_t>::max()};
};

/// Cross-epoch m̃ls edge memory.  Feed each epoch's freshly estimated m̃ls
/// graph through apply(); edges present in the fresh graph reset their age,
/// edges remembered from earlier epochs but missing now are re-emitted with
/// staleness widening.  Counts carried edges into the
/// "degraded.carried_edges" metric.
class MlsCarry {
 public:
  explicit MlsCarry(StalenessOptions options, Metrics* metrics = nullptr)
      : options_(options), metrics_(metrics) {}

  /// The effective m̃ls graph for this epoch.  With carry_forward off this
  /// is `fresh` unchanged (and nothing is remembered).
  Digraph apply(const Digraph& fresh);

  /// Number of edges carried forward by the last apply() call.
  std::size_t last_carried() const { return last_carried_; }

  void reset();

 private:
  static std::uint64_t key(NodeId from, NodeId to) {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  }

  struct Remembered {
    double weight{0.0};
    std::size_t age{0};  ///< epochs since last fresh observation
  };

  StalenessOptions options_;
  Metrics* metrics_;
  // std::map: deterministic iteration order => deterministic edge order in
  // the emitted graph (Howard tie-breaks depend on it).
  std::map<std::uint64_t, Remembered> memory_;
  std::size_t node_count_{0};
  std::size_t last_carried_{0};
};

}  // namespace cs
