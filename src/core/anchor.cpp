#include "core/anchor.hpp"

#include "common/error.hpp"

namespace cs {

std::vector<double> anchor_to_reference(std::span<const double> corrections,
                                        const SccResult& components,
                                        NodeId reference,
                                        double reference_offset) {
  if (reference >= corrections.size())
    throw Error("anchor_to_reference: reference out of range");
  if (components.component.size() != corrections.size())
    throw Error("anchor_to_reference: component map size mismatch");

  std::vector<double> out(corrections.begin(), corrections.end());
  const std::size_t comp = components.component[reference];
  const double delta = reference_offset - corrections[reference];
  for (std::size_t p = 0; p < out.size(); ++p)
    if (components.component[p] == comp) out[p] += delta;
  return out;
}

}  // namespace cs
