#include "core/local_estimates.hpp"

#include "delaymodel/link_stats.hpp"

namespace cs {

Digraph mls_graph_from_stats(const SystemModel& model,
                             const LinkStats& stats) {
  Digraph g(model.processor_count());
  for (auto [a, b] : model.topology().links) {
    const LinkConstraint& c = model.constraint(a, b);
    const DirectedStats& ab = stats.direction(a, b);
    const DirectedStats& ba = stats.direction(b, a);
    const ExtReal mls_ab = c.mls(a, ab, ba);  // shift of b w.r.t. a
    const ExtReal mls_ba = c.mls(b, ba, ab);  // shift of a w.r.t. b
    if (mls_ab.is_finite()) g.add_edge(a, b, mls_ab.finite());
    if (mls_ba.is_finite()) g.add_edge(b, a, mls_ba.finite());
  }
  return g;
}

Digraph mls_graph_from_traffic(const SystemModel& model,
                               const LinkTraffic& traffic) {
  Digraph g(model.processor_count());
  for (auto [a, b] : model.topology().links) {
    const LinkConstraint& c = model.constraint(a, b);
    const auto ab = traffic.direction(a, b);
    const auto ba = traffic.direction(b, a);
    const ExtReal mls_ab = c.mls_timed(a, ab, ba);
    const ExtReal mls_ba = c.mls_timed(b, ba, ab);
    if (mls_ab.is_finite()) g.add_edge(a, b, mls_ab.finite());
    if (mls_ba.is_finite()) g.add_edge(b, a, mls_ba.finite());
  }
  return g;
}

Digraph local_shift_estimates(const SystemModel& model,
                              std::span<const View> views,
                              MatchPolicy policy) {
  return mls_graph_from_traffic(
      model, LinkTraffic::estimated_from_views(views, policy));
}

Digraph local_shifts_actual(const SystemModel& model, const Execution& exec) {
  return mls_graph_from_traffic(model,
                                LinkTraffic::actual_from_execution(exec));
}

}  // namespace cs
