#include "core/local_estimates.hpp"

#include <vector>

#include "common/pool.hpp"
#include "delaymodel/link_stats.hpp"

namespace cs {

Digraph mls_graph_from_stats(const SystemModel& model,
                             const LinkStats& stats) {
  Digraph g(model.processor_count());
  for (auto [a, b] : model.topology().links) {
    const LinkConstraint& c = model.constraint(a, b);
    const DirectedStats& ab = stats.direction(a, b);
    const DirectedStats& ba = stats.direction(b, a);
    const ExtReal mls_ab = c.mls(a, ab, ba);  // shift of b w.r.t. a
    const ExtReal mls_ba = c.mls(b, ba, ab);  // shift of a w.r.t. b
    if (mls_ab.is_finite()) g.add_edge(a, b, mls_ab.finite());
    if (mls_ba.is_finite()) g.add_edge(b, a, mls_ba.finite());
  }
  return g;
}

Digraph mls_graph_from_traffic(const SystemModel& model,
                               const LinkTraffic& traffic,
                               std::size_t threads) {
  const auto& links = model.topology().links;
  Digraph g(model.processor_count());

  // Each link's fold is an independent closed-form evaluation over its own
  // observation spans (constraints are stateless const objects), so the
  // folds shard cleanly; edge insertion stays serial in link order, which
  // keeps the edge-id assignment — and thus every downstream iteration
  // order — byte-identical to the serial build.
  struct LinkMls {
    ExtReal ab{ExtReal::infinity()};
    ExtReal ba{ExtReal::infinity()};
  };
  std::vector<LinkMls> folds(links.size());
  const auto fold_one = [&](std::size_t i) {
    const auto [a, b] = links[i];
    const LinkConstraint& c = model.constraint(a, b);
    const auto ab = traffic.direction(a, b);
    const auto ba = traffic.direction(b, a);
    folds[i].ab = c.mls_timed(a, ab, ba);  // shift of b w.r.t. a
    folds[i].ba = c.mls_timed(b, ba, ab);  // shift of a w.r.t. b
  };
  if (threads == 1 || links.size() < 2) {
    for (std::size_t i = 0; i < links.size(); ++i) fold_one(i);
  } else {
    PoolOptions pool;
    pool.threads = threads;
    run_indexed(links.size(), fold_one, pool);
  }

  for (std::size_t i = 0; i < links.size(); ++i) {
    const auto [a, b] = links[i];
    if (folds[i].ab.is_finite()) g.add_edge(a, b, folds[i].ab.finite());
    if (folds[i].ba.is_finite()) g.add_edge(b, a, folds[i].ba.finite());
  }
  return g;
}

Digraph local_shift_estimates(const SystemModel& model,
                              std::span<const View> views,
                              MatchPolicy policy, std::size_t threads) {
  return mls_graph_from_traffic(
      model, LinkTraffic::estimated_from_views(views, policy), threads);
}

Digraph local_shifts_actual(const SystemModel& model, const Execution& exec) {
  return mls_graph_from_traffic(model,
                                LinkTraffic::actual_from_execution(exec));
}

}  // namespace cs
