#include "core/incremental.hpp"

#include "common/error.hpp"
#include "core/local_estimates.hpp"

namespace cs {

IncrementalSynchronizer::IncrementalSynchronizer(const SystemModel& model,
                                                 SyncOptions options)
    : model_(&model),
      options_(options),
      apsp_(IncrementalApspOptions{}, options.metrics) {}

void IncrementalSynchronizer::reset() {
  apsp_ = IncrementalApsp(IncrementalApspOptions{}, options_.metrics);
  policy_.clear();
}

SyncOutcome IncrementalSynchronizer::step(std::span<const View> views) {
  if (views.size() != model_->processor_count())
    throw InvalidExecution("need exactly one view per processor");
  for (std::size_t i = 0; i < views.size(); ++i)
    if (views[i].pid != i)
      throw InvalidExecution("views must be ordered by processor id");

  Digraph mls;
  {
    auto timer =
        Metrics::scoped(options_.metrics, "stage.local_estimates_seconds");
    mls = local_shift_estimates(*model_, views, options_.match,
                                options_.threads);
  }
  return step_mls(std::move(mls));
}

SyncOutcome IncrementalSynchronizer::step_mls(Digraph mls_graph) {
  if (mls_graph.node_count() != model_->processor_count())
    throw InvalidExecution("m̃ls graph node count must equal processor count");
  Metrics* metrics = options_.metrics;

  SyncOutcome out;
  out.mls_graph = std::move(mls_graph);

  {
    auto timer = Metrics::scoped(metrics, "stage.global_estimates_seconds");
    // Diff the same slack-relaxed graph the from-scratch path closes over,
    // so both paths agree to float tolerance.
    if (!apsp_.update(slack_relaxed_mls(out.mls_graph))) {
      // Invalid state is not carried: the next step() starts clean.
      reset();
      throw InvalidAssumption(
          "negative m̃ls cycle: the observed execution contradicts the "
          "declared delay assumptions");
    }
    out.ms_estimates = apsp_.distances();
  }

  ShiftsOptions shift_options;
  shift_options.root = options_.root;
  shift_options.algorithm = options_.cycle_mean;
  shift_options.metrics = metrics;
  shift_options.arena = &shifts_arena_;
  shift_options.threads = options_.threads;
  if (options_.cycle_mean == CycleMeanAlgorithm::kHoward &&
      policy_.size() == out.mls_graph.node_count())
    shift_options.warm_policy = &policy_;
  ShiftsResult shifts = compute_shifts(out.ms_estimates, shift_options);
  policy_ = shifts.policy;  // empty under Karp: next step stays cold

  out.corrections = std::move(shifts.corrections);
  out.optimal_precision = shifts.a_max;
  out.components = std::move(shifts.components);
  out.component_precision = std::move(shifts.component_a_max);
  metrics_increment(metrics, "pipeline.incremental_steps");
  return out;
}

}  // namespace cs
