// Anchoring corrections to an external time reference.
//
// The paper synchronizes clocks *to each other*; its introduction notes
// that "it is easy to adapt our results to obtain [closeness to real
// time] if a perfect real time clock is available".  This is that
// adaptation: corrections are unique only up to a per-component additive
// constant (the gauge), so if one processor knows its absolute offset —
// from GPS, a radio clock, an NTP stratum-0 source — re-gauging makes
// every corrected clock track real time, with pairwise precision
// untouched.
#pragma once

#include <span>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/scc.hpp"

namespace cs {

/// Re-gauge `corrections` so that `reference`'s correction becomes
/// `reference_offset` (the externally known adjustment that makes the
/// reference's corrected clock read real time).  Only the reference's
/// finiteness component is shifted: other components share no finite
/// constraint chain with the reference, so anchoring them to it would
/// assert precision that does not exist.  Pass the components from the
/// SyncOutcome; for bounded instances there is exactly one.
std::vector<double> anchor_to_reference(std::span<const double> corrections,
                                        const SccResult& components,
                                        NodeId reference,
                                        double reference_offset);

}  // namespace cs
