#include "core/degraded.hpp"

#include <unordered_set>
#include <utility>

#include "common/error.hpp"

namespace cs {

LinkCoverage link_coverage(const SystemModel& model,
                           const LinkTraffic& traffic) {
  return link_coverage(model, traffic, std::vector<bool>{});
}

LinkCoverage link_coverage(const SystemModel& model,
                           const LinkTraffic& traffic,
                           const std::vector<bool>& link_down) {
  if (!link_down.empty() &&
      link_down.size() != model.topology().link_count())
    throw InvalidExecution(
        "link_coverage: need one down flag per topology link");
  LinkCoverage cov;
  cov.directions.reserve(2 * model.topology().link_count());
  for (std::size_t i = 0; i < model.topology().link_count(); ++i) {
    const auto [a, b] = model.topology().links[i];
    const bool down = !link_down.empty() && link_down[i];
    for (const auto& [p, q] : {std::pair{a, b}, std::pair{b, a}}) {
      DirectedCoverage d;
      d.from = p;
      d.to = q;
      d.observations = traffic.direction(p, q).size();
      d.absent = down;
      if (down) {
        ++cov.absent_directions;
      } else if (d.observations > 0) {
        ++cov.observed_directions;
      }
      cov.directions.push_back(d);
    }
  }
  cov.total_directions = cov.directions.size();
  return cov;
}

void MlsCarry::reset() {
  memory_.clear();
  node_count_ = 0;
  last_carried_ = 0;
}

Digraph MlsCarry::apply(const Digraph& fresh) {
  last_carried_ = 0;
  if (!options_.carry_forward) return fresh;
  if (fresh.node_count() != node_count_) {
    // Different instance shape: stale memory is meaningless.
    memory_.clear();
    node_count_ = fresh.node_count();
  }

  std::unordered_set<std::uint64_t> present;
  present.reserve(fresh.edge_count());
  for (const Edge& e : fresh.edges()) {
    present.insert(key(e.from, e.to));
    memory_[key(e.from, e.to)] = Remembered{e.weight, 0};
  }

  Digraph out(fresh.node_count());
  for (const Edge& e : fresh.edges()) out.add_edge(e.from, e.to, e.weight);

  for (auto it = memory_.begin(); it != memory_.end();) {
    if (present.contains(it->first)) {
      ++it;
      continue;
    }
    Remembered& rem = it->second;
    ++rem.age;
    if (rem.age > options_.max_carry_epochs) {
      it = memory_.erase(it);
      continue;
    }
    const NodeId from = static_cast<NodeId>(it->first >> 32);
    const NodeId to = static_cast<NodeId>(it->first & 0xffffffffu);
    out.add_edge(from, to,
                 rem.weight +
                     static_cast<double>(rem.age) * options_.widen_per_epoch);
    ++last_carried_;
    ++it;
  }
  metrics_increment(metrics_, "degraded.carried_edges", last_carried_);
  return out;
}

}  // namespace cs
