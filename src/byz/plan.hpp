// Byzantine behavior plans: which agents lie, how, and when.
//
// The paper's guarantees (Thm 4.6, Thm 5.5/5.6) assume every processor
// reports its view honestly.  A ByzPlan names the processors that do not,
// mirroring FaultPlan's shape: a declarative schedule, deterministic given
// (plan, seed), executed by a stateful injector (byz/injector.hpp for the
// simulator, runtime/agent.cpp for live payload stamps).
//
// Behavior taxonomy — all lies are on *reported clock stamps*, never on
// physical behavior (see sim/tamper.hpp for why):
//
//   * lie-const   — every stamp shifted by +magnitude.  A *consistent*
//                   lie: indistinguishable from an honest processor whose
//                   clock started magnitude earlier (Lemma 4.1's shift,
//                   applied to the clock instead of real time), so it is
//                   gauge-equivalent and provably harmless to honest
//                   pairs.  Kept as the null-attack control.
//   * lie-ramp    — shift grows linearly from 0 to magnitude over
//                   ramp_span seconds of clock time: a slow, inconsistent
//                   lie (a fake drift) that skews d̃ differently early
//                   and late.
//   * lie-random  — each stamp independently shifted by
//                   uniform(-magnitude, +magnitude) from the agent's
//                   split RNG stream: white-noise corruption, the target
//                   of the MAD-trimmed robust estimator.
//   * replay      — each stamp reports the *previous* event's true stamp
//                   (the first reports its own): stale reports, an
//                   inconsistent lag that varies with event spacing.
//   * equivocate  — receive stamps are shifted by a *sign-coordinated*
//                   per-peer offset: pulled down for lower-id peers,
//                   pushed up for higher-id ones, at a per-peer magnitude
//                   in [3·mag/8, mag/2] (stateless hash of (seed, agent,
//                   peer)); send and timer stamps are untouched.  The
//                   agent tells every neighbor a different story about
//                   their common link — the classical Byzantine attack —
//                   and the sign discipline makes every corrupted 2-hop
//                   path low→liar→high tighten the same way, so honest-
//                   pair m̃s shrinks below the truth while each per-link
//                   pair sum stays intact (no negative 2-cycles, so no
//                   cheap detection).
//
// Magnitude calibration against detection: lies large enough to create a
// negative m̃ls cycle make GLOBAL ESTIMATES throw InvalidAssumption — the
// pipeline *detects* the attack (harness outcome "detected").  The harmful
// regime is below that threshold; docs/BYZ.md derives the slack budget.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "model/ids.hpp"
#include "model/step.hpp"

namespace cs::byz {

enum class Behavior : std::uint8_t {
  kHonest,
  kLieConst,
  kLieRamp,
  kLieRandom,
  kReplay,
  kEquivocate,
};

const char* behavior_name(Behavior b);
/// Inverse of behavior_name; throws cs::Error on unknown names.
Behavior behavior_from_name(const std::string& name);

/// One agent's assignment: a behavior, its amplitude, and the clock-time
/// window in which it is active (outside the window the agent is honest —
/// the recovery harness ends attacks this way).
struct AgentPlan {
  ProcessorId pid{0};
  Behavior behavior{Behavior::kHonest};
  /// Lie amplitude in seconds; see the per-behavior semantics above.
  double magnitude{0.0};
  /// Seconds of clock time over which the ramp lie reaches full magnitude.
  double ramp_span{10.0};
  /// Active clock-time window [from, until); lies apply only to stamps
  /// inside it.
  double from{0.0};
  double until{std::numeric_limits<double>::infinity()};

  bool active_at(ClockTime t) const { return from <= t.sec && t.sec < until; }
  bool lies() const { return behavior != Behavior::kHonest && magnitude >= 0.0 &&
                             (behavior == Behavior::kReplay || magnitude > 0.0); }
};

/// The full Byzantine schedule of a run.  Deterministic given (plan,
/// seed): agent selection, per-agent noise streams and per-peer
/// equivocation offsets are all split from `seed`, independent of the sim
/// and fault seeds.
class ByzPlan {
 public:
  /// Seed of the Byzantine randomness streams.
  std::uint64_t seed{0xB12Au};

  /// Register one agent; throws cs::Error on duplicate pids, negative
  /// magnitudes or inverted windows.
  void add(AgentPlan agent);

  /// Assign `f` distinct agents (drawn without replacement from [0, n) on
  /// a stream split from `seed`) the given behavior.  The common path for
  /// lab arms and benches: the *choice* of liars is part of the seeded
  /// experiment, not of the spec.
  void assign_random(std::size_t n, std::size_t f, Behavior behavior,
                     double magnitude);

  const std::vector<AgentPlan>& agents() const { return agents_; }

  /// The assignment of `pid`, or nullptr when honest.
  const AgentPlan* agent(ProcessorId pid) const;

  /// True iff no agent ever lies (empty plan, all-honest behaviors, or
  /// zero-amplitude lies) — the admissibility check stays meaningful.
  bool honest() const;

  /// Number of lying agents.
  std::size_t liar_count() const;

  /// Human-readable one-liner ("equivocate f=2 mag=0.05").
  std::string describe() const;

 private:
  std::vector<AgentPlan> agents_;
};

/// Parse the --byz-plan / campaign grammar:
///
///   none
///   <behavior> f=<count> mag=<seconds> [seed=<u64>] [ramp=<s>]
///              [from=<s>] [until=<s>]
///   <behavior> agents=<pid>[,<pid>...] mag=<seconds> [...]
///
/// with <behavior> one of lie-const | lie-ramp | lie-random | replay |
/// equivocate.  `f=` plans defer agent selection to assign_random at the
/// point of use (the caller knows n); resolve_byz_plan() finishes them.
/// Throws cs::Error on malformed input.
struct ByzPlanSpec {
  Behavior behavior{Behavior::kHonest};
  std::size_t f{0};                    ///< used when agents is empty
  std::vector<ProcessorId> agents;     ///< explicit pids (wins over f)
  double magnitude{0.0};
  double ramp_span{10.0};
  double from{0.0};
  double until{std::numeric_limits<double>::infinity()};
  std::uint64_t seed{0xB12Au};

  bool byzantine() const { return behavior != Behavior::kHonest; }
  std::string describe() const;
};

ByzPlanSpec parse_byz_plan(const std::string& text);

/// Materialize a spec against a concrete processor count.  Throws on
/// out-of-range pids or f >= n.
ByzPlan resolve_byz_plan(const ByzPlanSpec& spec, std::size_t n);

/// The shared lie kernel: the stamp `pid` reports for an event of `kind`
/// with true clock time `truth` and counterparty `peer`.  `rng` is the
/// agent's private stream (exactly one uniform is drawn per call whenever
/// the agent lies, regardless of behavior, so streams stay aligned across
/// behavior changes); `last_truth` carries the replay state (previous true
/// stamp) and `floor` the monotone clamp (History requires nondecreasing
/// stamps), both owned by the caller per agent.
ClockTime lie_stamp(const AgentPlan& agent, std::uint64_t plan_seed,
                    EventKind kind, ClockTime truth, ProcessorId peer,
                    Rng& rng, ClockTime& last_truth, ClockTime& floor);

/// The lie kernel for *payload* stamps — the clock values a live SyncAgent
/// writes into its probe/echo messages (runtime/agent.cpp).  Same draw
/// discipline as lie_stamp (one uniform per call whenever the agent lies),
/// but per-destination: each message has exactly one receiver, so
/// equivocation applies at send time, and there is no monotone floor —
/// payload stamps feed the peer's OnlineEstimator, not a History tape.
ClockTime lie_payload_stamp(const AgentPlan& agent, std::uint64_t plan_seed,
                            ClockTime truth, ProcessorId peer, Rng& rng,
                            ClockTime& last_truth);

}  // namespace cs::byz
