// Link churn: topologies whose links appear and disappear mid-run.
//
// Churn is compiled into FaultPlan link-down windows rather than executed
// by its own injector: the FaultInjector's down_at() check consumes no RNG
// draws (fault_plan.hpp), so churn layers over any existing fault plan —
// and composes with the Byzantine stamp tamper — without perturbing a
// single random stream.  The schedule is a seeded duty cycle per chosen
// link: each churning link is up for `duty` of every `period`, with a
// per-link random phase, so at any instant a deterministic but staggered
// subset of links is dark.
//
// The mls graph then genuinely changes mid-run: epochs whose window falls
// in a link's dark stretch lose that link's observations (sliding windows)
// or see only stale ones (cumulative prefixes).  links_down_at() provides
// the per-epoch census the degraded-mode coverage report consumes — a
// disappeared link is *absent*, not merely stale (core/degraded.hpp).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/topology.hpp"
#include "sim/fault_plan.hpp"

namespace cs::byz {

struct ChurnSpec {
  /// Full up+down cycle length in seconds; 0 = no churn.
  double period{0.0};

  /// Fraction of each cycle the link is up, in (0, 1]; 1 = never down.
  double duty{0.75};

  /// Compile down windows for cycles overlapping [0, horizon).
  double horizon{0.0};

  /// How many links churn (a seeded without-replacement choice); anything
  /// >= the topology's link count means all of them.
  std::size_t links{std::numeric_limits<std::size_t>::max()};

  /// Seed of the phase / link-choice randomness (independent of the fault
  /// plan's own seed).
  std::uint64_t seed{0xC402u};

  bool active() const { return period > 0.0 && duty < 1.0; }
};

/// Layer the churn schedule's down windows onto `plan`.  Throws cs::Error
/// on invalid parameters (duty outside (0, 1], active churn without a
/// horizon).
void apply_churn(const ChurnSpec& spec, const Topology& topo,
                 FaultPlan& plan);

/// Per-link down flags at real time `t` under `plan` (in topology link
/// order) — the instantaneous view census any epoch boundary can take.
std::vector<bool> links_down_at(const FaultPlan& plan, const Topology& topo,
                                RealTime t);

}  // namespace cs::byz
