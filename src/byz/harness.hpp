// The Byzantine trial harness: one adversarial run, measured end to end.
//
// A trial simulates ping-pong probing over a model while a ByzPlan
// corrupts the chosen agents' recorded stamps (and, optionally, churn
// darkens links and a fault plan drops messages), then re-runs the
// pipeline at every epoch boundary over sliding view windows with the
// selected estimator variant (naive / trimmed / quorum) and scores each
// epoch three ways:
//
//   * detected  — GLOBAL ESTIMATES threw InvalidAssumption: the lies
//                 created a negative m̃ls cycle and the pipeline refused.
//                 Loud failure; nobody is misled.
//   * sound     — on every finiteness component with >= 2 honest members,
//                 the honest agents' ground-truth corrected spread stays
//                 within the component's claimed bound.  The honest-
//                 subgraph reading of Thm 4.6: liars' own corrections are
//                 garbage by definition, so only honest pairs are scored.
//   * violated  — neither: the pipeline published a bound the honest
//                 agents measurably exceed.  The silent failure the
//                 robust estimators exist to prevent.
//
// Recovery: when every liar's active window ends before the horizon, the
// trial counts epochs from the attack's end until the first epoch that is
// undetected, sound, and back on the Thm 4.6 equality (ρ̄ == Ã^max within
// tolerance).  With sliding windows this is finite by construction —
// corrupted observations age out — and the count measures exactly how
// long the corrupted estimator state (window remnants plus any staleness
// carry) keeps poisoning corrections.  docs/BYZ.md defines the metric.
#pragma once

#include <string>
#include <vector>

#include "byz/churn.hpp"
#include "byz/plan.hpp"
#include "core/degraded.hpp"
#include "core/robust.hpp"
#include "delaymodel/assignment.hpp"

namespace cs::byz {

struct ByzTrialConfig {
  /// The adversary (resolved against the model's processor count).
  ByzPlanSpec plan;

  /// Estimator variant under test; inactive = the naive pipeline.
  RobustOptions robust;

  /// Optional link churn, compiled into the trial's fault plan (horizon
  /// defaults to the trial horizon).
  ChurnSpec churn;

  /// Optional extra fault plan (drops, crashes); churn layers on top of a
  /// copy, the original is never mutated.
  const FaultPlan* faults{nullptr};

  double horizon{32.0};
  /// Epoch boundaries at interval, 2·interval, ... < horizon (clock time).
  double interval{8.0};
  /// Sliding estimation window; 0 = one interval.  Recovery time scales
  /// with window / interval — the window is the corrupted state.
  double window{0.0};

  /// Maximum random start offset (must match start_offsets' generation).
  double skew{0.25};
  /// Uniform delay sampling band; keep it strictly inside the model's
  /// declared [lb, ub] (e.g. the middle quarter) so honest epochs carry
  /// slack and sub-detection-threshold lies are *possible* — the regime
  /// worth measuring.
  double sample_lo{0.0};
  double sample_hi{0.0};

  std::uint64_t sim_seed{1};
  std::vector<Duration> start_offsets;

  /// Optional staleness carry (recovery experiments: carried poisoned
  /// edges outlive the window).
  StalenessOptions staleness;

  double tolerance{1e-9};
  std::size_t sync_threads{1};
  std::size_t max_events{0};  ///< 0 = auto
  Metrics* metrics{nullptr};
};

struct ByzEpochRow {
  double boundary{0.0};
  bool detected{false};
  bool bounded{false};
  /// Full-graph Ã^max when bounded (what the pipeline *publishes*).
  double claimed{0.0};
  /// Honest-subgraph claim/realized: max over finiteness components with
  /// >= 2 honest members of (component bound, honest corrected spread).
  double claimed_honest{0.0};
  double realized_honest{0.0};
  bool sound{true};
  /// |ρ̄ − Ã^max| on bounded epochs (the Thm 4.6 equality residue).
  double thm46_gap{0.0};
  std::size_t honest_components{0};
  std::size_t quorum_dropped{0};
  std::size_t carried_edges{0};
  /// Churn census at the boundary (core/degraded.hpp absent semantics).
  std::size_t absent_directions{0};
};

struct ByzTrialResult {
  bool ok{false};
  std::string failure;

  std::vector<ByzEpochRow> rows;
  std::size_t epochs{0};
  std::size_t detected_epochs{0};
  std::size_t violations{0};  ///< undetected epochs that broke the bound
  bool sound{true};           ///< violations == 0

  double claimed_honest_max{0.0};
  double realized_honest_max{0.0};
  double thm46_gap{0.0};  ///< max over fully-clean epochs

  /// Recovery metric (see header comment); measured only when the attack
  /// ends before the horizon.
  bool recovery_measured{false};
  bool recovered{false};
  std::size_t recovery_epochs{0};

  std::size_t lied_stamps{0};
  std::size_t quorum_dropped_max{0};
  std::size_t delivered{0};
  std::size_t dropped{0};
  std::size_t events{0};
};

ByzTrialResult run_byz_trial(const SystemModel& model,
                             const ByzTrialConfig& config);

}  // namespace cs::byz
