#include "byz/churn.hpp"

#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace cs::byz {

void apply_churn(const ChurnSpec& spec, const Topology& topo,
                 FaultPlan& plan) {
  if (spec.period < 0.0) throw Error("churn: period must be non-negative");
  if (!spec.active()) {
    if (spec.period > 0.0 && !(spec.duty > 0.0 && spec.duty <= 1.0))
      throw Error("churn: duty must be in (0, 1]");
    return;
  }
  if (!(spec.duty > 0.0 && spec.duty < 1.0))
    throw Error("churn: duty must be in (0, 1) when churn is active");
  if (!(spec.horizon > 0.0))
    throw Error("churn: active churn needs a positive horizon");

  const Rng master(spec.seed);
  Rng pick = master.split(~std::uint64_t{0});
  std::vector<std::size_t> order(topo.link_count());
  std::iota(order.begin(), order.end(), std::size_t{0});
  const std::size_t churning = std::min(spec.links, topo.link_count());
  for (std::size_t i = 0; i < churning; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(pick.uniform_int(
                                  static_cast<std::uint64_t>(
                                      order.size() - i)));
    std::swap(order[i], order[j]);
  }

  for (std::size_t i = 0; i < churning; ++i) {
    const std::size_t link = order[i];
    const auto [a, b] = topo.links[link];
    Rng phase_rng = master.split(link);
    const double phase = phase_rng.uniform01() * spec.period;
    const double up = spec.duty * spec.period;
    // Start one cycle early so a phase landing the link mid-dark at t=0 is
    // represented.
    for (double cycle = phase - spec.period; cycle < spec.horizon;
         cycle += spec.period) {
      TimeWindow w;
      w.from = RealTime{cycle + up};
      w.until = RealTime{cycle + spec.period};
      if (w.until.sec <= 0.0) continue;
      plan.link(a, b).down.push_back(w);
    }
  }
}

std::vector<bool> links_down_at(const FaultPlan& plan, const Topology& topo,
                                RealTime t) {
  std::vector<bool> down;
  down.reserve(topo.link_count());
  for (const auto& [a, b] : topo.links)
    down.push_back(plan.link_faults(a, b).down_at(t));
  return down;
}

}  // namespace cs::byz
