#include "byz/injector.hpp"

#include "common/error.hpp"

namespace cs::byz {

ByzInjector::ByzInjector(const ByzPlan& plan, std::size_t processor_count,
                         Metrics* metrics)
    : plan_(&plan), metrics_(metrics) {
  agent_of_.assign(processor_count, nullptr);
  for (const AgentPlan& a : plan.agents()) {
    if (a.pid >= processor_count)
      throw Error("ByzPlan names a non-existent processor " +
                  std::to_string(a.pid));
    agent_of_[a.pid] = &a;
  }
  const Rng master(plan.seed);
  rngs_.reserve(processor_count);
  for (std::size_t p = 0; p < processor_count; ++p)
    rngs_.push_back(master.split(p));
  last_truth_.assign(processor_count, ClockTime{});
  floor_.assign(processor_count, ClockTime{});
}

ClockTime ByzInjector::stamp(ProcessorId pid, EventKind kind,
                             ClockTime truth, ProcessorId peer) {
  const AgentPlan* agent = agent_of_[pid];
  if (agent == nullptr) return truth;  // honest: no draw, no clamp state
  const ClockTime out =
      lie_stamp(*agent, plan_->seed, kind, truth, peer, rngs_[pid],
                last_truth_[pid], floor_[pid]);
  if (out != truth) {
    ++lied_;
    metrics_increment(metrics_, "byz.lied_stamps");
  }
  return out;
}

}  // namespace cs::byz
