// ByzInjector: the stateful executor of a ByzPlan inside one simulation
// run — the StampTamper the simulator routes every history stamp through.
//
// Determinism contract (mirrors FaultInjector's):
//   * one private RNG stream per processor, split from the plan's own
//     seed — independent of the sim's delay streams and the fault plan's
//     link streams, so Byzantine lies never perturb delays or fault
//     decisions and the three axes compose in any order;
//   * exactly one uniform is drawn per stamped event of a lying agent,
//     regardless of behavior or active window, so runs differing only in
//     behavior parameters stay stream-aligned;
//   * equivocation offsets are a stateless hash of (seed, agent, peer) —
//     no draws at all.
//
// Counters (via cs::Metrics): "byz.lied_stamps" — stamps actually altered.
#pragma once

#include "byz/plan.hpp"
#include "common/metrics.hpp"
#include "sim/tamper.hpp"

namespace cs::byz {

class ByzInjector final : public StampTamper {
 public:
  /// `plan` must outlive the injector.  `metrics` may be null.
  ByzInjector(const ByzPlan& plan, std::size_t processor_count,
              Metrics* metrics = nullptr);

  ClockTime stamp(ProcessorId pid, EventKind kind, ClockTime truth,
                  ProcessorId peer) override;

  bool honest() const override { return plan_->honest(); }

  /// Stamps altered so far (diagnostic; mirrors "byz.lied_stamps").
  std::size_t lied_stamps() const { return lied_; }

 private:
  const ByzPlan* plan_;
  Metrics* metrics_;
  std::vector<const AgentPlan*> agent_of_;  ///< per pid; nullptr = honest
  std::vector<Rng> rngs_;                   ///< per pid, split from plan seed
  std::vector<ClockTime> last_truth_;       ///< replay state, per pid
  std::vector<ClockTime> floor_;            ///< monotone clamp, per pid
  std::size_t lied_{0};
};

}  // namespace cs::byz
