#include "byz/plan.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <sstream>

#include "common/error.hpp"

namespace cs::byz {
namespace {

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

/// Stateless per-(seed, agent, peer) uniform in [0, 1): the equivocation
/// offsets.  splitmix64 finalizer over a mixed key — no stream draws, so
/// equivocation never perturbs the agent's noise stream.
double hash01(std::uint64_t seed, ProcessorId pid, ProcessorId peer) {
  std::uint64_t x = seed ^ (0x9e3779b97f4a7c15ULL * (pid + 1)) ^
                    (0xbf58476d1ce4e5b9ULL * (peer + 2));
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace

const char* behavior_name(Behavior b) {
  switch (b) {
    case Behavior::kHonest: return "none";
    case Behavior::kLieConst: return "lie-const";
    case Behavior::kLieRamp: return "lie-ramp";
    case Behavior::kLieRandom: return "lie-random";
    case Behavior::kReplay: return "replay";
    case Behavior::kEquivocate: return "equivocate";
  }
  return "none";
}

Behavior behavior_from_name(const std::string& name) {
  if (name == "none" || name == "honest") return Behavior::kHonest;
  if (name == "lie-const") return Behavior::kLieConst;
  if (name == "lie-ramp") return Behavior::kLieRamp;
  if (name == "lie-random") return Behavior::kLieRandom;
  if (name == "replay") return Behavior::kReplay;
  if (name == "equivocate") return Behavior::kEquivocate;
  throw Error("unknown Byzantine behavior '" + name +
              "' (want lie-const|lie-ramp|lie-random|replay|equivocate)");
}

void ByzPlan::add(AgentPlan agent) {
  if (agent.magnitude < 0.0)
    throw Error("ByzPlan: magnitude must be non-negative");
  if (agent.ramp_span <= 0.0)
    throw Error("ByzPlan: ramp_span must be positive");
  if (!(agent.from <= agent.until))
    throw Error("ByzPlan: inverted active window");
  for (const AgentPlan& a : agents_)
    if (a.pid == agent.pid)
      throw Error("ByzPlan: duplicate assignment for processor " +
                  std::to_string(agent.pid));
  agents_.push_back(agent);
}

void ByzPlan::assign_random(std::size_t n, std::size_t f, Behavior behavior,
                            double magnitude) {
  if (f >= n && f != 0)
    throw Error("ByzPlan: need f < n lying agents");
  Rng master(seed);
  Rng pick = master.split(0);
  std::vector<ProcessorId> ids(n);
  std::iota(ids.begin(), ids.end(), ProcessorId{0});
  for (std::size_t i = 0; i < f; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(pick.uniform_int(
                static_cast<std::uint64_t>(n - i)));
    std::swap(ids[i], ids[j]);
    AgentPlan agent;
    agent.pid = ids[i];
    agent.behavior = behavior;
    agent.magnitude = magnitude;
    add(agent);
  }
}

const AgentPlan* ByzPlan::agent(ProcessorId pid) const {
  for (const AgentPlan& a : agents_)
    if (a.pid == pid) return &a;
  return nullptr;
}

bool ByzPlan::honest() const {
  return std::none_of(agents_.begin(), agents_.end(),
                      [](const AgentPlan& a) { return a.lies(); });
}

std::size_t ByzPlan::liar_count() const {
  return static_cast<std::size_t>(
      std::count_if(agents_.begin(), agents_.end(),
                    [](const AgentPlan& a) { return a.lies(); }));
}

std::string ByzPlan::describe() const {
  if (honest()) return "none";
  const AgentPlan* first = nullptr;
  for (const AgentPlan& a : agents_)
    if (a.lies() && first == nullptr) first = &a;
  return std::string(behavior_name(first->behavior)) +
         " f=" + std::to_string(liar_count()) + " mag=" +
         fmt(first->magnitude);
}

std::string ByzPlanSpec::describe() const {
  if (!byzantine()) return "none";
  std::string out = behavior_name(behavior);
  if (!agents.empty()) {
    out += " agents=";
    for (std::size_t i = 0; i < agents.size(); ++i)
      out += (i > 0 ? "," : "") + std::to_string(agents[i]);
  } else {
    out += " f=" + std::to_string(f);
  }
  out += " mag=" + fmt(magnitude);
  if (behavior == Behavior::kLieRamp) out += " ramp=" + fmt(ramp_span);
  if (from != 0.0) out += " from=" + fmt(from);
  if (std::isfinite(until)) out += " until=" + fmt(until);
  return out;
}

ByzPlanSpec parse_byz_plan(const std::string& text) {
  std::istringstream in(text);
  std::string token;
  if (!(in >> token)) throw Error("byz plan: empty specification");

  ByzPlanSpec spec;
  spec.behavior = behavior_from_name(token);
  if (spec.behavior == Behavior::kHonest) {
    if (in >> token) throw Error("byz plan: 'none' takes no arguments");
    return spec;
  }

  const auto num = [](const std::string& key, const std::string& value) {
    char* end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    if (end == nullptr || *end != '\0' || value.empty())
      throw Error("byz plan: " + key + " expects a number, got '" + value +
                  "'");
    return v;
  };

  bool have_count = false, have_mag = false;
  while (in >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos)
      throw Error("byz plan: expected key=value, got '" + token + "'");
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "f") {
      spec.f = static_cast<std::size_t>(num(key, value));
      have_count = true;
    } else if (key == "agents") {
      std::istringstream list(value);
      std::string pid;
      while (std::getline(list, pid, ','))
        spec.agents.push_back(
            static_cast<ProcessorId>(num("agents", pid)));
      if (spec.agents.empty())
        throw Error("byz plan: agents= needs at least one pid");
      have_count = true;
    } else if (key == "mag") {
      spec.magnitude = num(key, value);
      have_mag = true;
    } else if (key == "ramp") {
      spec.ramp_span = num(key, value);
    } else if (key == "from") {
      spec.from = num(key, value);
    } else if (key == "until") {
      spec.until = num(key, value);
    } else if (key == "seed") {
      spec.seed = static_cast<std::uint64_t>(num(key, value));
    } else {
      throw Error("byz plan: unknown key '" + key + "'");
    }
  }
  if (!have_count)
    throw Error("byz plan: need f=<count> or agents=<pids>");
  if (!have_mag && spec.behavior != Behavior::kReplay)
    throw Error("byz plan: need mag=<seconds>");
  if (spec.magnitude < 0.0)
    throw Error("byz plan: mag must be non-negative");
  if (spec.ramp_span <= 0.0) throw Error("byz plan: ramp must be positive");
  if (!(spec.from <= spec.until))
    throw Error("byz plan: inverted from/until window");
  return spec;
}

ByzPlan resolve_byz_plan(const ByzPlanSpec& spec, std::size_t n) {
  ByzPlan plan;
  plan.seed = spec.seed;
  if (!spec.byzantine()) return plan;
  const auto configure = [&](AgentPlan& a) {
    a.behavior = spec.behavior;
    a.magnitude = spec.magnitude;
    a.ramp_span = spec.ramp_span;
    a.from = spec.from;
    a.until = spec.until;
  };
  if (!spec.agents.empty()) {
    for (ProcessorId pid : spec.agents) {
      if (pid >= n)
        throw Error("byz plan: agent " + std::to_string(pid) +
                    " out of range for n=" + std::to_string(n));
      AgentPlan a;
      a.pid = pid;
      configure(a);
      plan.add(a);
    }
    return plan;
  }
  // assign_random fixes the seeded pid choice; re-apply the remaining
  // spec knobs (window, ramp) on top.
  plan.assign_random(n, spec.f, spec.behavior, spec.magnitude);
  ByzPlan full;
  full.seed = spec.seed;
  for (AgentPlan a : plan.agents()) {
    const ProcessorId pid = a.pid;
    configure(a);
    a.pid = pid;
    full.add(a);
  }
  return full;
}

ClockTime lie_stamp(const AgentPlan& agent, std::uint64_t plan_seed,
                    EventKind kind, ClockTime truth, ProcessorId peer,
                    Rng& rng, ClockTime& last_truth, ClockTime& floor) {
  const ClockTime previous = last_truth;
  last_truth = truth;
  double out = truth.sec;
  if (agent.lies()) {
    // Exactly one uniform per stamped event, drawn before any branching,
    // so the agent's stream stays aligned across behaviors and windows.
    const double u = rng.uniform01();
    if (agent.active_at(truth)) {
      switch (agent.behavior) {
        case Behavior::kHonest:
          break;
        case Behavior::kLieConst:
          out += agent.magnitude;
          break;
        case Behavior::kLieRamp: {
          const double frac = std::clamp(
              (truth.sec - agent.from) / agent.ramp_span, 0.0, 1.0);
          out += agent.magnitude * frac;
          break;
        }
        case Behavior::kLieRandom:
          out += agent.magnitude * (2.0 * u - 1.0);
          break;
        case Behavior::kReplay:
          out = previous.sec;
          break;
        case Behavior::kEquivocate:
          // Coordinated equivocation: lower-id peers are told one story
          // (receive stamps pulled down), higher-id peers the opposite, at
          // a per-peer magnitude in [3·mag/8, mag/2] (stateless hash — no
          // draws).  The sign discipline is what makes the attack bite:
          // every corrupted 2-hop path low->liar->high tightens the same
          // way, so correction errors *compound* across the honest set
          // instead of cancelling, while each individual 2-cycle stays
          // inside its slack (undetected).  Random per-peer offsets are
          // provably capped by the pair-window geometry; this is the
          // worst-case adversary the quorum validation exists for.
          if (kind == EventKind::kReceive && peer != agent.pid) {
            const double scale =
                0.375 + 0.125 * hash01(plan_seed, agent.pid, peer);
            out += (peer > agent.pid ? 1.0 : -1.0) * agent.magnitude * scale;
          }
          break;
      }
    }
  }
  // History requires nondecreasing stamps; a lie may not rewind the tape.
  out = std::max(out, floor.sec);
  floor = ClockTime{out};
  return floor;
}

ClockTime lie_payload_stamp(const AgentPlan& agent, std::uint64_t plan_seed,
                            ClockTime truth, ProcessorId peer, Rng& rng,
                            ClockTime& last_truth) {
  const ClockTime previous = last_truth;
  last_truth = truth;
  double out = truth.sec;
  if (agent.lies()) {
    const double u = rng.uniform01();  // one draw per call, as in lie_stamp
    if (agent.active_at(truth)) {
      switch (agent.behavior) {
        case Behavior::kHonest:
          break;
        case Behavior::kLieConst:
          out += agent.magnitude;
          break;
        case Behavior::kLieRamp: {
          const double frac = std::clamp(
              (truth.sec - agent.from) / agent.ramp_span, 0.0, 1.0);
          out += agent.magnitude * frac;
          break;
        }
        case Behavior::kLieRandom:
          out += agent.magnitude * (2.0 * u - 1.0);
          break;
        case Behavior::kReplay:
          out = previous.sec;
          break;
        case Behavior::kEquivocate:
          // Same sign-coordinated per-peer story as lie_stamp's receive
          // branch, applied at send time: the payload stamp each neighbor
          // reads is this message's only audience.
          if (peer != agent.pid) {
            const double scale =
                0.375 + 0.125 * hash01(plan_seed, agent.pid, peer);
            out += (peer > agent.pid ? 1.0 : -1.0) * agent.magnitude * scale;
          }
          break;
      }
    }
  }
  return ClockTime{out};
}

}  // namespace cs::byz
