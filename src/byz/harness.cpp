#include "byz/harness.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "byz/injector.hpp"
#include "common/error.hpp"
#include "core/local_estimates.hpp"
#include "core/precision.hpp"
#include "core/synchronizer.hpp"
#include "proto/ping_pong.hpp"
#include "sim/simulator.hpp"

namespace cs::byz {
namespace {

/// Ground-truth corrected spread over `members` (drift-free clocks: the
/// corrected clock of p reads t - S_p + x_p, so the spread is the spread
/// of x_p - S_p).  0 for fewer than two members.
double honest_spread(std::span<const ProcessorId> members,
                     std::span<const Duration> offsets,
                     std::span<const double> corrections) {
  if (members.size() < 2) return 0.0;
  double lo = 0.0, hi = 0.0;
  bool first = true;
  for (ProcessorId p : members) {
    const double c = corrections[p] - offsets[p].sec;
    if (first) {
      lo = hi = c;
      first = false;
    } else {
      lo = std::min(lo, c);
      hi = std::max(hi, c);
    }
  }
  return hi - lo;
}

}  // namespace

ByzTrialResult run_byz_trial(const SystemModel& model,
                             const ByzTrialConfig& config) {
  ByzTrialResult result;
  try {
    const std::size_t n = model.processor_count();
    if (config.start_offsets.size() != n)
      throw Error("byz trial: need one start offset per processor");
    if (config.horizon <= 0.0 || config.interval <= 0.0)
      throw Error("byz trial: horizon and interval must be positive");
    if (!(config.sample_lo > 0.0) || config.sample_hi < config.sample_lo)
      throw Error("byz trial: need 0 < sample_lo <= sample_hi");

    const ByzPlan plan = resolve_byz_plan(config.plan, n);

    // Honest membership is a property of the *plan*, not of the window: an
    // agent that ever lies is scored as Byzantine for the whole trial.
    std::vector<ProcessorId> honest;
    honest.reserve(n);
    for (ProcessorId p = 0; p < n; ++p) {
      const AgentPlan* a = plan.agent(p);
      if (a == nullptr || !a->lies()) honest.push_back(p);
    }

    // When does the attack end (clock time)?  +inf = never.
    double attack_end = 0.0;
    for (const AgentPlan& a : plan.agents())
      if (a.lies()) attack_end = std::max(attack_end, a.until);

    // Fault plan: the caller's (copied), with churn layered on top.  Down
    // windows consume no fault-stream draws, so this composes cleanly.
    FaultPlan faults = config.faults != nullptr ? *config.faults : FaultPlan{};
    ChurnSpec churn = config.churn;
    if (churn.period > 0.0 && churn.horizon == 0.0)
      churn.horizon = config.horizon + config.skew;
    apply_churn(churn, model.topology(), faults);
    const bool any_faults = config.faults != nullptr || churn.active();

    const double warmup = config.skew + 0.1;
    if (config.interval <= warmup)
      throw Error("byz trial: first epoch boundary must exceed the warmup");
    const double spacing = config.interval / 8.0;
    const auto rounds = static_cast<std::size_t>(
        std::ceil((config.horizon - warmup) / spacing)) + 1;

    ByzInjector tamper(plan, n, config.metrics);

    SimOptions opts;
    opts.start_offsets = config.start_offsets;
    opts.seed = config.sim_seed;
    opts.metrics = config.metrics;
    opts.tamper = &tamper;
    if (any_faults) opts.faults = &faults;
    opts.max_events =
        config.max_events != 0
            ? config.max_events
            : std::max<std::size_t>(
                  1'000'000, 64 * (rounds + 1) *
                                 (model.topology().link_count() + n));

    std::vector<std::unique_ptr<DelaySampler>> samplers;
    samplers.reserve(model.topology().link_count());
    for (std::size_t i = 0; i < model.topology().link_count(); ++i)
      samplers.push_back(make_uniform_sampler(config.sample_lo,
                                              config.sample_hi,
                                              config.sample_lo,
                                              config.sample_hi));

    PingPongParams probes;
    probes.warmup = Duration{warmup};
    probes.spacing = Duration{spacing};
    probes.rounds = rounds;
    const SimResult sim =
        simulate(model, make_ping_pong(probes), std::move(samplers), opts);
    result.lied_stamps = tamper.lied_stamps();
    result.delivered = sim.delivered_messages;
    result.dropped = sim.fault_dropped_messages;
    result.events = sim.delivered_messages + sim.fired_timers;

    const std::vector<View> views = sim.execution.views();
    const double window =
        config.window > 0.0 ? config.window : config.interval;

    SyncOptions sync_opts;
    sync_opts.threads = config.sync_threads;
    sync_opts.metrics = config.metrics;
    sync_opts.match = MatchPolicy::kDropOrphans;

    MlsCarry carry(config.staleness, config.metrics);

    bool counting_recovery = false;
    bool recovered = false;
    std::size_t recovery_epochs = 0;

    for (double boundary = config.interval; boundary < config.horizon - 1e-9;
         boundary += config.interval) {
      ByzEpochRow row;
      row.boundary = boundary;

      std::vector<View> cut;
      cut.reserve(n);
      for (const View& v : views)
        cut.push_back(v.window(ClockTime{boundary - window},
                               ClockTime{boundary}));

      LinkTraffic traffic =
          LinkTraffic::estimated_from_views(cut, sync_opts.match);
      if (config.robust.trim)
        traffic = trimmed_traffic(traffic, model, config.robust.trim_gate,
                                  config.metrics);

      // Churn census: which links are dark right now.  Boundaries are
      // clock times; with start skew << churn period the real-time census
      // at the same instant is the honest approximation.
      if (churn.active()) {
        const std::vector<bool> down =
            links_down_at(faults, model.topology(), RealTime{boundary});
        const LinkCoverage cov = link_coverage(model, traffic, down);
        row.absent_directions = cov.absent_directions;
      }

      Digraph mls = mls_graph_from_traffic(model, traffic,
                                           config.sync_threads);
      mls = carry.apply(mls);
      row.carried_edges = carry.last_carried();
      if (config.robust.quorum > 0) {
        const std::size_t before = mls.edge_count();
        mls = quorum_validated_mls(mls, config.robust, config.metrics);
        row.quorum_dropped = before - mls.edge_count();
        result.quorum_dropped_max =
            std::max(result.quorum_dropped_max, row.quorum_dropped);
      }

      bool clean_equality = false;
      try {
        const SyncOutcome out = synchronize_mls(std::move(mls), sync_opts);
        row.bounded = out.bounded();
        row.claimed = row.bounded ? out.optimal_precision.finite() : 0.0;

        // Score every finiteness component with >= 2 honest members.
        std::vector<ProcessorId> members;
        for (std::size_t c = 0; c < out.components.component_count; ++c) {
          members.clear();
          for (ProcessorId p : honest)
            if (out.components.component[p] == c) members.push_back(p);
          if (members.size() < 2) continue;
          ++row.honest_components;
          const double claim =
              row.bounded ? row.claimed : out.component_precision[c];
          const double realized =
              honest_spread(members, config.start_offsets, out.corrections);
          row.claimed_honest = std::max(row.claimed_honest, claim);
          row.realized_honest = std::max(row.realized_honest, realized);
          if (realized > claim + config.tolerance) row.sound = false;
        }

        if (row.bounded) {
          const double guaranteed =
              guaranteed_precision(out.ms_estimates, out.corrections)
                  .finite();
          row.thm46_gap = std::abs(guaranteed - row.claimed);
          clean_equality = row.thm46_gap <= 1e-9;
        }
      } catch (const InvalidAssumption&) {
        // The lies contradicted the declared delay assumptions outright:
        // a negative m̃ls cycle.  Loud, safe, counted separately.
        row.detected = true;
        row.sound = true;
      }

      if (row.detected) {
        ++result.detected_epochs;
      } else if (!row.sound) {
        ++result.violations;
      }
      result.claimed_honest_max =
          std::max(result.claimed_honest_max, row.claimed_honest);
      result.realized_honest_max =
          std::max(result.realized_honest_max, row.realized_honest);
      if (!row.detected && row.sound && row.thm46_gap > 0.0)
        result.thm46_gap = std::max(result.thm46_gap, row.thm46_gap);

      // Recovery count: epochs strictly after the attack's end until the
      // first fully-clean one (undetected, sound, Thm 4.6 equality).
      if (std::isfinite(attack_end) && boundary > attack_end &&
          plan.liar_count() > 0) {
        counting_recovery = true;
        if (!recovered) {
          ++recovery_epochs;
          if (!row.detected && row.sound && row.bounded && clean_equality)
            recovered = true;
        }
      }

      result.rows.push_back(row);
    }

    if (result.rows.empty())
      throw Error("byz trial: horizon admits no epoch boundary");
    result.epochs = result.rows.size();
    result.sound = result.violations == 0;
    result.recovery_measured = counting_recovery;
    result.recovered = recovered;
    result.recovery_epochs = recovery_epochs;
    result.ok = true;
  } catch (const Error& e) {
    result.ok = false;
    result.failure = e.what();
  }
  return result;
}

}  // namespace cs::byz
