#include "common/extreal.hpp"

#include <sstream>

namespace cs {

std::string ExtReal::str() const {
  if (is_pos_inf()) return "+inf";
  if (is_neg_inf()) return "-inf";
  std::ostringstream os;
  os << v_;
  return os.str();
}

}  // namespace cs
