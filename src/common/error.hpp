// Error handling policy.
//
// Per the Core Guidelines (E.*): exceptions for errors that the immediate
// caller cannot be expected to handle (malformed inputs crossing a public API
// boundary), assertions for internal invariants.  All library exceptions
// derive from cs::Error so applications can catch one type.
#pragma once

#include <stdexcept>
#include <string>

namespace cs {

class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The views/trace handed to the pipeline violate the execution model
/// (unmatched messages, negative measured delay under a non-negative model,
/// duplicate message ids, ...).
class InvalidExecution : public Error {
 public:
  using Error::Error;
};

/// A delay-assumption configuration is self-contradictory (e.g. lb > ub), or
/// the observed execution is not admissible under the declared assumptions.
class InvalidAssumption : public Error {
 public:
  using Error::Error;
};

/// Requested a computation that is undefined for this instance, e.g. finite
/// corrections for a pair whose maximal shift estimate is +inf.
class UnboundedInstance : public Error {
 public:
  using Error::Error;
};

/// Throw helper that keeps call sites one line.
[[noreturn]] inline void fail(const std::string& msg) { throw Error(msg); }

}  // namespace cs
