// Deterministic pseudo-random number generation for simulations.
//
// We use xoshiro256++ (public domain, Blackman & Vigna) rather than
// std::mt19937 for speed and for a guaranteed-stable stream across standard
// library implementations: experiment tables must be reproducible bit-for-bit
// from a seed regardless of toolchain.
#pragma once

#include <array>
#include <cstdint>

namespace cs {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed);

  /// UniformRandomBitGenerator interface (usable with std distributions,
  /// though we provide our own samplers for stream stability).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n);

  /// Standard exponential with the given rate (mean 1/rate).
  double exponential(double rate);

  /// Normal via Box–Muller (stable across platforms).
  double normal(double mean, double stddev);

  /// Pareto with scale xm > 0 and shape a > 0 (heavy tail for WAN delays).
  double pareto(double xm, double a);

  /// Derive an independent stream (for per-link samplers) using splitmix64
  /// over (seed, stream-index).
  Rng split(std::uint64_t stream) const;

 private:
  std::array<std::uint64_t, 4> s_{};
  std::uint64_t seed_{};
  bool have_spare_normal_{false};
  double spare_normal_{0.0};
};

}  // namespace cs
