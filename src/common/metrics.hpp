// Lightweight instrumentation for the synchronization pipeline.
//
// The pipeline's performance story (ROADMAP: "as fast as the hardware
// allows") needs numbers, and its numeric robustness story needs visibility
// into events that were previously silent — Howard iteration backstops,
// APSP fallbacks from incremental to full recompute, Bellman–Ford retries.
// cs::Metrics is the one sink for both: named monotonic counters plus named
// value series (used for per-stage wall-clock timings and any other scalar
// observations).  A null sink is always legal — every pipeline entry point
// takes `Metrics*` defaulting to nullptr and pays nothing when absent.
//
// Thread safety: producers (increment/observe/merge/clear) may run
// concurrently from any number of threads — the live runtime's transports
// and agent host share one sink.  Point reads (counter(), series(),
// to_json()) take the same lock and are safe at any time.  The bulk
// const-reference accessors counters()/all_series() hand out the internal
// maps and are safe only once producers have quiesced (after a run, after
// joining worker threads) — the same moment the numbers become meaningful.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace cs {

/// Summary of a value series (timings in seconds, sizes, iteration counts).
struct MetricSeries {
  std::uint64_t count{0};
  double sum{0.0};
  double min{0.0};
  double max{0.0};

  double mean() const { return count == 0 ? 0.0 : sum / count; }

  /// Folds another summary into this one.  A never-observed series
  /// (count == 0) is the identity element: its zero-initialized min/max
  /// carry no observation and must not poison the fold.
  void merge(const MetricSeries& other);
};

class Metrics {
 public:
  Metrics() = default;

  // The mutex kills the defaulted special members; Metrics still travels by
  // value (RecordResult, LiveReport) so they are written out by hand.  Copy
  // and move lock the source; each object gets its own fresh mutex.
  Metrics(const Metrics& other);
  Metrics(Metrics&& other) noexcept;
  Metrics& operator=(const Metrics& other);
  Metrics& operator=(Metrics&& other) noexcept;

  /// Adds `by` to the named monotonic counter (created at 0 on first use).
  void increment(const std::string& counter, std::uint64_t by = 1);

  /// Records one sample into the named series.
  void observe(const std::string& series, double value);

  /// RAII wall-clock timer; records elapsed seconds into `series` on
  /// destruction.  Safe on a null Metrics (records nothing).
  class Timer {
   public:
    Timer(Metrics* sink, std::string series)
        : sink_(sink), series_(std::move(series)),
          start_(std::chrono::steady_clock::now()) {}
    Timer(const Timer&) = delete;
    Timer& operator=(const Timer&) = delete;
    ~Timer() {
      if (sink_ == nullptr) return;
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      sink_->observe(series_,
                     std::chrono::duration<double>(elapsed).count());
    }

   private:
    Metrics* sink_;
    std::string series_;
    std::chrono::steady_clock::time_point start_;
  };

  /// Times a scope against `series`; usable on a null sink:
  ///   auto t = Metrics::scoped(metrics, "stage.shifts");
  static Timer scoped(Metrics* sink, std::string series) {
    return Timer(sink, std::move(series));
  }

  /// Value of a counter (0 when never incremented).
  std::uint64_t counter(const std::string& name) const;

  /// Point-in-time copy of a series summary; count 0 when never observed.
  /// (A copy, not a pointer: concurrent producers may keep appending.)
  MetricSeries series_snapshot(const std::string& name) const;

  /// Series summary, or nullptr when never observed.  The pointer stays
  /// valid for the Metrics' lifetime (map nodes are stable), but reading
  /// through it is only safe once producers have quiesced.
  const MetricSeries* series(const std::string& name) const;

  /// Quiesced-only bulk accessors (see the thread-safety note above).
  const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  const std::map<std::string, MetricSeries>& all_series() const {
    return series_;
  }

  /// Folds another run's metrics into this one (counters add, series
  /// concatenate).  Safe against concurrent producers on either side;
  /// merging a Metrics into itself is a no-op (everything is already
  /// there), not a deadlock.
  void merge(const Metrics& other);

  void clear();

  /// Machine-readable dump: {"counters": {...}, "series": {name:
  /// {count,sum,min,max,mean}}}.  Keys are sorted (std::map), so output is
  /// deterministic and diffable.
  std::string to_json(int indent = 2) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, MetricSeries> series_;
};

/// Null-safe increment helper (pipeline code calls with possibly-null sink).
inline void metrics_increment(Metrics* m, const std::string& counter,
                              std::uint64_t by = 1) {
  if (m != nullptr) m->increment(counter, by);
}

inline void metrics_observe(Metrics* m, const std::string& series,
                            double value) {
  if (m != nullptr) m->observe(series, value);
}

}  // namespace cs
