// Strong time types.
//
// The paper's central hygiene rule is the distinction between *real time*
// (visible only to an outside observer) and *clock time* (the only notion of
// time a processor can see).  A correction function must be computable from
// clock times alone (Claim 3.1).  We enforce this statically: RealTime and
// ClockTime are distinct vocabulary types that do not convert into each
// other; the only bridge is Clock (sim/clock.hpp), which models the paper's
// "clock time = real time - start time" relation.
//
// All quantities are in seconds, stored as double.
#pragma once

#include <compare>
#include <cstdint>

namespace cs {

/// A length of time (difference of two instants), in seconds.
struct Duration {
  double sec{0.0};

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration o) const { return {sec + o.sec}; }
  constexpr Duration operator-(Duration o) const { return {sec - o.sec}; }
  constexpr Duration operator-() const { return {-sec}; }
  constexpr Duration operator*(double k) const { return {sec * k}; }
  constexpr Duration operator/(double k) const { return {sec / k}; }
  constexpr Duration& operator+=(Duration o) { sec += o.sec; return *this; }
  constexpr Duration& operator-=(Duration o) { sec -= o.sec; return *this; }
};

constexpr Duration operator*(double k, Duration d) { return {k * d.sec}; }

/// Convenience literal-ish constructors.
constexpr Duration seconds(double s) { return Duration{s}; }
constexpr Duration millis(double ms) { return Duration{ms * 1e-3}; }
constexpr Duration micros(double us) { return Duration{us * 1e-6}; }

/// An instant on the outside observer's absolute timeline.  Processors never
/// see RealTime values; they exist in traces and in the shifting machinery.
struct RealTime {
  double sec{0.0};

  constexpr auto operator<=>(const RealTime&) const = default;

  constexpr RealTime operator+(Duration d) const { return {sec + d.sec}; }
  constexpr RealTime operator-(Duration d) const { return {sec - d.sec}; }
  constexpr Duration operator-(RealTime o) const { return {sec - o.sec}; }
};

/// An instant on one processor's local clock.  Comparable and subtractable
/// only against other ClockTime values (of the same processor, by
/// convention; the type system cannot distinguish processors).
struct ClockTime {
  double sec{0.0};

  constexpr auto operator<=>(const ClockTime&) const = default;

  constexpr ClockTime operator+(Duration d) const { return {sec + d.sec}; }
  constexpr ClockTime operator-(Duration d) const { return {sec - d.sec}; }
  constexpr Duration operator-(ClockTime o) const { return {sec - o.sec}; }
};

}  // namespace cs
