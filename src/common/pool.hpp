// Work-stealing parallel executor for independent task lists.
//
// The executor runs `count` independent tasks identified by dense indices
// [0, count).  Indices are dealt round-robin into per-worker deques; a
// worker pops its own deque from the back (LIFO keeps its cache warm) and,
// when empty, steals from a sibling's front (FIFO steals take the oldest —
// and typically largest remaining — batch head).  Each deque is guarded by
// its own mutex: contention is one uncontended lock per task in the common
// case, which is noise next to a simulate() + synchronize() task body.
//
// Determinism: the pool imposes *no* ordering semantics at all.  Task
// bodies must derive everything from their index and write only to their
// own slot of a pre-sized result vector; then results are byte-identical
// for any thread count and any steal interleaving.  The pool itself only
// reports scheduling telemetry ("lab.pool.*" counters), which is explicitly
// excluded from deterministic campaign output.
//
// This lived in src/lab (campaign fan-out was its first customer); it moved
// here so per-epoch pipeline stages in src/core can shard over it without a
// core -> lab dependency edge.  src/lab/pool.hpp re-exports these names
// into cs::lab, and the counter names keep their historical "lab.pool."
// prefix so recorded metrics stay comparable.
#pragma once

#include <cstddef>
#include <functional>

#include "common/metrics.hpp"

namespace cs {

struct PoolOptions {
  /// Worker count; 0 = std::thread::hardware_concurrency().
  std::size_t threads{0};

  /// Scheduling telemetry sink ("lab.pool.tasks", "lab.pool.steals",
  /// "lab.pool.threads").  May be null.  Must be thread-safe (cs::Metrics
  /// is); the pool shares it across workers.
  Metrics* metrics{nullptr};
};

/// Resolved worker count for the given request (never 0).
std::size_t resolve_threads(std::size_t requested);

/// Runs fn(0) ... fn(count - 1), each exactly once, across the pool.
/// `fn` must be safe to call concurrently from different threads for
/// different indices.  With threads == 1 everything runs on the calling
/// thread in index order.  If any task throws, the first exception (in
/// completion order) is rethrown after all workers have drained.
void run_indexed(std::size_t count, const std::function<void(std::size_t)>& fn,
                 const PoolOptions& options = {});

}  // namespace cs
