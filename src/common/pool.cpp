#include "common/pool.hpp"

#include <algorithm>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace cs {
namespace {

/// One worker's task queue.  Owner pops back, thieves pop front.
struct WorkDeque {
  std::mutex mu;
  std::deque<std::size_t> tasks;

  bool pop_back(std::size_t& out) {
    std::lock_guard<std::mutex> lock(mu);
    if (tasks.empty()) return false;
    out = tasks.back();
    tasks.pop_back();
    return true;
  }

  bool pop_front(std::size_t& out) {
    std::lock_guard<std::mutex> lock(mu);
    if (tasks.empty()) return false;
    out = tasks.front();
    tasks.pop_front();
    return true;
  }
};

}  // namespace

std::size_t resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void run_indexed(std::size_t count,
                 const std::function<void(std::size_t)>& fn,
                 const PoolOptions& options) {
  if (count == 0) return;
  const std::size_t threads = std::min(resolve_threads(options.threads), count);
  metrics_increment(options.metrics, "lab.pool.tasks", count);
  metrics_increment(options.metrics, "lab.pool.threads", threads);

  if (threads == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::vector<WorkDeque> deques(threads);
  // Round-robin deal in reverse so the owner's LIFO pops walk indices in
  // ascending order (pleasant for progress output; irrelevant for results).
  for (std::size_t i = count; i-- > 0;) deques[i % threads].tasks.push_back(i);

  std::mutex error_mu;
  std::exception_ptr first_error;

  const auto worker = [&](std::size_t me) {
    std::size_t task = 0;
    for (;;) {
      bool found = deques[me].pop_back(task);
      for (std::size_t k = 1; !found && k < threads; ++k) {
        found = deques[(me + k) % threads].pop_front(task);
        if (found) metrics_increment(options.metrics, "lab.pool.steals");
      }
      if (!found) return;
      try {
        fn(task);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> crew;
  crew.reserve(threads);
  for (std::size_t w = 0; w < threads; ++w) crew.emplace_back(worker, w);
  for (std::thread& t : crew) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace cs
