// Descriptive statistics for experiment tables.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace cs {

/// Online accumulator (Welford) for mean/variance plus min/max.
class Accumulator {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const;
  double variance() const;  ///< sample variance (n-1 denominator)
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  std::size_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
  double sum_{0.0};
};

/// Percentile with linear interpolation; q in [0, 1].  Copies and sorts.
double percentile(std::span<const double> xs, double q);

double mean(std::span<const double> xs);
double stddev(std::span<const double> xs);

/// Fixed-width histogram over [lo, hi] with `bins` buckets; values outside
/// the range clamp to the end buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;

  /// ASCII rendering for experiment logs, one line per bucket.
  std::vector<std::string> render(std::size_t width = 40) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_{0};
};

}  // namespace cs
