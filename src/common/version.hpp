// Library version, surfaced by the command-line tools (`cs_sync --version`,
// `cs_syncd --version`).  Bumped per shipped change set; the minor number
// tracks the subsystem milestones in CHANGES.md.
#pragma once

namespace cs {

inline constexpr const char kVersion[] = "0.5.0";
inline constexpr const char kVersionBanner[] = "chronosync 0.5.0";

}  // namespace cs
