#include "common/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace cs {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  // Seed the state with splitmix64, the recommended initialization.
  std::uint64_t x = seed;
  for (auto& w : s_) w = splitmix64(x);
  // All-zero state is invalid for xoshiro; splitmix64 never yields it for
  // four consecutive outputs, but keep a belt-and-braces fix.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  // xoshiro256++
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  assert(lo <= hi);
  return lo + (hi - lo) * uniform01();
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % n;
  std::uint64_t x = next();
  while (x >= limit) x = next();
  return x % n;
}

double Rng::exponential(double rate) {
  assert(rate > 0.0);
  // -log(1-u) with u in [0,1) keeps the argument in (0,1].
  return -std::log1p(-uniform01()) / rate;
}

double Rng::normal(double mean, double stddev) {
  assert(stddev >= 0.0);
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u1 = uniform01();
  while (u1 == 0.0) u1 = uniform01();
  const double u2 = uniform01();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  spare_normal_ = r * std::sin(theta);
  have_spare_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::pareto(double xm, double a) {
  assert(xm > 0.0 && a > 0.0);
  double u = uniform01();
  while (u == 0.0) u = uniform01();
  return xm / std::pow(u, 1.0 / a);
}

Rng Rng::split(std::uint64_t stream) const {
  std::uint64_t x = seed_ ^ (0x5851f42d4c957f2dULL * (stream + 1));
  return Rng(splitmix64(x));
}

}  // namespace cs
