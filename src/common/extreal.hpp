// Extended reals: R ∪ {−∞, +∞} with checked arithmetic.
//
// The theory makes essential use of infinities:
//   * an upper delay bound ub(p,q) may be +∞ (lower-bound-only / no-bounds
//     models, §6.1);
//   * when no message was received on a direction, d̃max = −∞ and d̃min = +∞
//     (paper's convention before Lemma 6.2);
//   * maximal shifts ms / mls may be +∞, in which case the instance has
//     unbounded precision and SHIFTS must degrade gracefully.
//
// Raw IEEE doubles would mostly work, but (+∞) + (−∞) = NaN silently poisons
// shortest-path computations.  ExtReal makes that case a programming error
// caught at the call site.
#pragma once

#include <cassert>
#include <cmath>
#include <compare>
#include <limits>
#include <string>

namespace cs {

class ExtReal {
 public:
  constexpr ExtReal() = default;
  constexpr ExtReal(double v) : v_(v) { assert(!std::isnan(v)); }  // NOLINT(google-explicit-constructor)

  static constexpr ExtReal infinity() {
    return ExtReal{std::numeric_limits<double>::infinity()};
  }
  static constexpr ExtReal neg_infinity() {
    return ExtReal{-std::numeric_limits<double>::infinity()};
  }

  constexpr double value() const { return v_; }
  constexpr bool is_finite() const { return std::isfinite(v_); }
  constexpr bool is_pos_inf() const {
    return v_ == std::numeric_limits<double>::infinity();
  }
  constexpr bool is_neg_inf() const {
    return v_ == -std::numeric_limits<double>::infinity();
  }

  /// Finite value accessor; asserts finiteness.
  constexpr double finite() const {
    assert(is_finite());
    return v_;
  }

  constexpr auto operator<=>(const ExtReal&) const = default;

  /// Addition is defined except for (+∞) + (−∞), which is asserted against.
  constexpr ExtReal operator+(ExtReal o) const {
    assert(!((is_pos_inf() && o.is_neg_inf()) ||
             (is_neg_inf() && o.is_pos_inf())));
    return ExtReal{v_ + o.v_};
  }
  constexpr ExtReal operator-(ExtReal o) const { return *this + (-o); }
  constexpr ExtReal operator-() const { return ExtReal{-v_}; }
  constexpr ExtReal& operator+=(ExtReal o) { return *this = *this + o; }

  /// Division by a positive finite scalar (used for cycle means and the
  /// γ-scaling in Lemma 5.3).
  constexpr ExtReal operator/(double k) const {
    assert(k > 0.0 && std::isfinite(k));
    return ExtReal{v_ / k};
  }

  std::string str() const;

 private:
  double v_{0.0};
};

constexpr ExtReal min(ExtReal a, ExtReal b) { return a < b ? a : b; }
constexpr ExtReal max(ExtReal a, ExtReal b) { return a < b ? b : a; }

}  // namespace cs
