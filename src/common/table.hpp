// Minimal fixed-width table printer for experiment binaries.  Benches print
// human-readable tables (the "rows the paper reports" analogue); keeping the
// formatter here avoids each bench reinventing column alignment.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace cs {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; cells are preformatted strings.  Row length must match
  /// the header count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format a double with the given precision.
  static std::string num(double v, int precision = 4);
  static std::string num(const class ExtReal& v, int precision = 4);

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cs
