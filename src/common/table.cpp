#include "common/table.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <ostream>

#include "common/extreal.hpp"

namespace cs {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  assert(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", precision, v);
  return buf;
}

std::string Table::num(const ExtReal& v, int precision) {
  if (!v.is_finite()) return v.str();
  return num(v.value(), precision);
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };

  print_row(headers_);
  os << "|";
  for (auto w : widths) os << std::string(w + 2, '-') << "|";
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace cs
