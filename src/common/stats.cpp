#include "common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>

namespace cs {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::mean() const {
  assert(n_ > 0);
  return mean_;
}

double Accumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::min() const {
  assert(n_ > 0);
  return min_;
}

double Accumulator::max() const {
  assert(n_ > 0);
  return max_;
}

double percentile(std::span<const double> xs, double q) {
  assert(!xs.empty());
  assert(q >= 0.0 && q <= 1.0);
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  if (v.size() == 1) return v.front();
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto i = static_cast<std::size_t>(pos);
  if (i + 1 >= v.size()) return v.back();
  const double frac = pos - static_cast<double>(i);
  return v[i] * (1.0 - frac) + v[i + 1] * frac;
}

double mean(std::span<const double> xs) {
  Accumulator a;
  for (double x : xs) a.add(x);
  return a.mean();
}

double stddev(std::span<const double> xs) {
  Accumulator a;
  for (double x : xs) a.add(x);
  return a.stddev();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(lo < hi && bins > 0);
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(t * static_cast<double>(bins()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(bins()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(bins());
}

double Histogram::bin_hi(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i + 1) /
                   static_cast<double>(bins());
}

std::vector<std::string> Histogram::render(std::size_t width) const {
  std::vector<std::string> lines;
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  for (std::size_t i = 0; i < bins(); ++i) {
    const auto bar = counts_[i] * width / peak;
    char buf[64];
    std::snprintf(buf, sizeof buf, "[%8.4g, %8.4g) %6zu ", bin_lo(i),
                  bin_hi(i), counts_[i]);
    lines.push_back(std::string(buf) + std::string(bar, '#'));
  }
  return lines;
}

}  // namespace cs
