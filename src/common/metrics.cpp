#include "common/metrics.hpp"

#include <cmath>
#include <sstream>
#include <utility>

namespace cs {

Metrics::Metrics(const Metrics& other) {
  std::lock_guard<std::mutex> lock(other.mu_);
  counters_ = other.counters_;
  series_ = other.series_;
}

Metrics::Metrics(Metrics&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.mu_);
  counters_ = std::move(other.counters_);
  series_ = std::move(other.series_);
}

Metrics& Metrics::operator=(const Metrics& other) {
  if (this == &other) return *this;
  std::scoped_lock lock(mu_, other.mu_);
  counters_ = other.counters_;
  series_ = other.series_;
  return *this;
}

Metrics& Metrics::operator=(Metrics&& other) noexcept {
  if (this == &other) return *this;
  std::scoped_lock lock(mu_, other.mu_);
  counters_ = std::move(other.counters_);
  series_ = std::move(other.series_);
  return *this;
}

void Metrics::increment(const std::string& counter, std::uint64_t by) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[counter] += by;
}

void Metrics::observe(const std::string& series, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = series_.try_emplace(series);
  MetricSeries& s = it->second;
  if (inserted) {
    s.min = value;
    s.max = value;
  } else {
    s.min = std::min(s.min, value);
    s.max = std::max(s.max, value);
  }
  ++s.count;
  s.sum += value;
}

std::uint64_t Metrics::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

MetricSeries Metrics::series_snapshot(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = series_.find(name);
  return it == series_.end() ? MetricSeries{} : it->second;
}

const MetricSeries* Metrics::series(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second;
}

void MetricSeries::merge(const MetricSeries& other) {
  if (other.count == 0) return;  // identity: nothing was ever observed
  if (count == 0) {
    *this = other;
    return;
  }
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  count += other.count;
  sum += other.sum;
}

void Metrics::merge(const Metrics& other) {
  // Self-merge would scoped_lock the same mutex twice (deadlock) and
  // corrupt the maps mid-iteration; a == b means every entry is already
  // accounted for, so it is a no-op by definition.
  if (this == &other) return;
  std::scoped_lock lock(mu_, other.mu_);
  for (const auto& [name, value] : other.counters_) counters_[name] += value;
  for (const auto& [name, s] : other.series_)
    series_.try_emplace(name).first->second.merge(s);
}

void Metrics::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  series_.clear();
}

namespace {

/// JSON number formatting: finite doubles with enough digits to round-trip;
/// infinities are not expected in metrics but rendered as strings to keep
/// the output parseable.
void append_number(std::ostringstream& out, double v) {
  if (std::isfinite(v)) {
    out.precision(17);
    out << v;
  } else {
    out << '"' << (v > 0 ? "inf" : (v < 0 ? "-inf" : "nan")) << '"';
  }
}

}  // namespace

std::string Metrics::to_json(int indent) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  const std::string pad2 = pad + pad;
  const std::string pad3 = pad2 + pad;
  std::ostringstream out;
  out << "{\n" << pad << "\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    out << (first ? "\n" : ",\n") << pad2 << '"' << name << "\": " << value;
    first = false;
  }
  out << (first ? "" : "\n" + pad) << "},\n" << pad << "\"series\": {";
  first = true;
  for (const auto& [name, s] : series_) {
    out << (first ? "\n" : ",\n") << pad2 << '"' << name << "\": {\n";
    out << pad3 << "\"count\": " << s.count << ",\n";
    out << pad3 << "\"sum\": ";
    append_number(out, s.sum);
    out << ",\n" << pad3 << "\"min\": ";
    append_number(out, s.min);
    out << ",\n" << pad3 << "\"max\": ";
    append_number(out, s.max);
    out << ",\n" << pad3 << "\"mean\": ";
    append_number(out, s.mean());
    out << "\n" << pad2 << "}";
    first = false;
  }
  out << (first ? "" : "\n" + pad) << "}\n}";
  return out.str();
}

}  // namespace cs
