// Closed extended-real intervals [lo, hi], the natural carrier for delay
// bounds: lb(p,q) >= 0 and ub(p,q) <= +inf per §6.1.
#pragma once

#include <cassert>

#include "common/extreal.hpp"

namespace cs {

class Interval {
 public:
  /// Default: [0, +inf), the "no bounds" model of §6.1.
  constexpr Interval() : lo_(0.0), hi_(ExtReal::infinity()) {}

  constexpr Interval(ExtReal lo, ExtReal hi) : lo_(lo), hi_(hi) {
    assert(lo_ <= hi_);
  }

  constexpr ExtReal lo() const { return lo_; }
  constexpr ExtReal hi() const { return hi_; }

  constexpr bool contains(ExtReal x) const { return lo_ <= x && x <= hi_; }
  constexpr bool contains(double x) const { return contains(ExtReal{x}); }

  constexpr ExtReal width() const { return hi_ - lo_; }
  constexpr bool is_point() const { return lo_ == hi_; }

  /// Intersection; empty intersections are a caller error (asserted).  Used
  /// by the decomposition theorem machinery when combining bound sets.
  constexpr Interval intersect(Interval o) const {
    const ExtReal lo = max(lo_, o.lo_);
    const ExtReal hi = min(hi_, o.hi_);
    assert(lo <= hi);
    return Interval{lo, hi};
  }

  constexpr bool operator==(const Interval&) const = default;

 private:
  ExtReal lo_;
  ExtReal hi_;
};

}  // namespace cs
