#include "net/daemon.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <limits>
#include <utility>

#include "common/error.hpp"
#include "core/local_estimates.hpp"
#include "delaymodel/link_stats.hpp"
#include "net/server.hpp"

namespace cs::net {

namespace {

double realtime_seconds() {
  timespec ts{};
  ::clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

}  // namespace

std::vector<double> encode_extremes(
    const std::vector<DirectionExtremes>& dirs) {
  std::vector<double> data;
  data.reserve(1 + 4 * dirs.size());
  data.push_back(static_cast<double>(dirs.size()));
  for (const DirectionExtremes& d : dirs) {
    data.push_back(static_cast<double>(d.peer));
    data.push_back(d.dmin);
    data.push_back(d.dmax);
    data.push_back(static_cast<double>(d.count));
  }
  return data;
}

bool decode_extremes(std::span<const double> data,
                     std::vector<DirectionExtremes>& out) {
  out.clear();
  if (data.empty()) return false;
  const double count_d = data[0];
  if (!(count_d >= 0.0) || count_d != std::floor(count_d)) return false;
  const std::size_t count = static_cast<std::size_t>(count_d);
  if (data.size() != 1 + 4 * count) return false;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double* f = data.data() + 1 + 4 * i;
    if (!(f[0] >= 0.0) || f[0] != std::floor(f[0])) return false;
    if (!(f[3] >= 0.0) || f[3] != std::floor(f[3])) return false;
    out.push_back(DirectionExtremes{static_cast<ProcessorId>(f[0]), f[1],
                                    f[2], static_cast<std::uint64_t>(f[3])});
  }
  return true;
}

SyncOutcome synchronize_from_extremes(const SystemModel& model,
                                      std::span<const ReportedExtremes> reports,
                                      ProcessorId root) {
  LinkStats stats;
  for (const ReportedExtremes& report : reports)
    for (const DirectionExtremes& d : report.dirs) {
      DirectedStats ds;
      ds.dmin = ExtReal{d.dmin};
      ds.dmax = ExtReal{d.dmax};
      ds.count = d.count;
      // Direction peer -> reporter: the reporter observed these arrivals.
      stats.add_stats(d.peer, report.agent, ds);
    }
  SyncOptions options;
  options.root = root;
  return synchronize_mls(mls_graph_from_stats(model, stats), options);
}

NetDaemon::NetDaemon(NetDaemonConfig config)
    : config_(std::move(config)),
      base_clock_(config_.base_clock ? config_.base_clock : realtime_seconds),
      loop_(config_.backend),
      recv_buf_(kMaxDatagramBytes) {
  if (config_.model == nullptr) throw Error("NetDaemon: model is required");
  n_ = config_.model->processor_count();
  if (config_.peers.size() != n_)
    throw Error("NetDaemon: peers.size() != processor_count()");
  if (config_.id >= n_ || config_.leader >= n_)
    throw Error("NetDaemon: id/leader out of range");
  const double last_probe =
      config_.warmup.sec +
      static_cast<double>(config_.rounds) * config_.spacing.sec;
  if (config_.report_at.sec <= last_probe)
    throw Error("NetDaemon: report_at must follow the last probe round");
  if (config_.deadline.sec <= config_.report_at.sec)
    throw Error("NetDaemon: deadline must follow report_at");
  const double now = local_clock();
  if (now >= config_.report_at.sec)
    throw Error("NetDaemon: shared base is already past the boundary (clock " +
                std::to_string(now) + "s)");

  peers_.resize(n_);
  const auto adjacency = config_.model->topology().adjacency();
  for (const NodeId q : adjacency[config_.id]) {
    peers_[q].neighbor = true;
    neighbors_.push_back(q);
  }

  local_ = config_.peers[config_.id];
  fd_ = open_udp_socket(local_);
  loop_.add(fd_, /*want_read=*/true, /*want_write=*/false,
            [this](bool r, bool w) { on_socket(r, w); });
}

NetDaemon::~NetDaemon() {
  if (fd_ >= 0) ::close(fd_);
}

void NetDaemon::send_frames(ProcessorId to, std::span<const Frame> frames) {
  std::vector<std::uint8_t> datagram;
  for (const Frame& frame : frames) encode(frame, datagram);
  sockaddr_in dst;
  to_sockaddr(config_.peers[to], dst);
  const ssize_t sent =
      ::sendto(fd_, datagram.data(), datagram.size(), 0,
               reinterpret_cast<const sockaddr*>(&dst), sizeof dst);
  if (sent != static_cast<ssize_t>(datagram.size())) {
    // Retries at the protocol layer recover; count and move on.
    metrics_increment(config_.metrics, "runtime.net.send_error");
    return;
  }
  metrics_increment(config_.metrics, "runtime.net.datagrams_sent");
  metrics_increment(config_.metrics, "runtime.net.frames_sent",
                    frames.size());
  metrics_increment(config_.metrics, "runtime.net.bytes_sent",
                    datagram.size());
}

void NetDaemon::send_probe_round(double now) {
  for (const ProcessorId q : neighbors_) {
    std::vector<Frame> frames;
    if (!peers_[q].hello_acked)
      frames.push_back(Frame{Hello{config_.id, to_ticks(now)}});
    ProbeBatch probe;
    probe.from = config_.id;
    probe.to = q;
    probe.samples.push_back(
        ProbeSample{next_seq_++, compress24(to_ticks(local_clock()))});
    frames.push_back(Frame{std::move(probe)});
    ++report_.probes_sent;
    // Piggyback pending echoes: probe + echo share the datagram.
    if (!peers_[q].pending_echo.empty()) {
      EchoBatch echo;
      echo.from = config_.id;
      echo.to = q;
      echo.eseq = peers_[q].echo_seq++;
      echo.t_reply24 = compress24(to_ticks(local_clock()));
      echo.samples = std::move(peers_[q].pending_echo);
      peers_[q].pending_echo.clear();
      frames.push_back(Frame{std::move(echo)});
    }
    send_frames(q, frames);
  }
}

void NetDaemon::flush_echoes(ProcessorId q, double now) {
  (void)now;
  if (peers_[q].pending_echo.empty()) return;
  EchoBatch echo;
  echo.from = config_.id;
  echo.to = q;
  echo.eseq = peers_[q].echo_seq++;
  echo.t_reply24 = compress24(to_ticks(local_clock()));
  echo.samples = std::move(peers_[q].pending_echo);
  peers_[q].pending_echo.clear();
  send_frame(q, Frame{std::move(echo)});
}

void NetDaemon::bank(ProcessorId peer, double delay) {
  incoming_[peer].add(delay);
}

void NetDaemon::on_socket(bool readable, bool writable) {
  (void)writable;  // sends are fire-and-forget; retries cover EAGAIN
  if (!readable) return;
  for (;;) {
    sockaddr_in src{};
    socklen_t src_len = sizeof src;
    const ssize_t got =
        ::recvfrom(fd_, recv_buf_.data(), recv_buf_.size(), MSG_TRUNC,
                   reinterpret_cast<sockaddr*>(&src), &src_len);
    if (got < 0) {
      if (errno == EINTR) continue;
      return;
    }
    metrics_increment(config_.metrics, "runtime.net.datagrams_received");
    if (static_cast<std::size_t>(got) > recv_buf_.size()) {
      metrics_increment(config_.metrics, "runtime.net.recv_truncated");
      continue;
    }
    metrics_increment(config_.metrics, "runtime.net.bytes_received",
                      static_cast<std::uint64_t>(got));
    handle_datagram(std::span<const std::uint8_t>(
        recv_buf_.data(), static_cast<std::size_t>(got)));
  }
}

void NetDaemon::handle_datagram(std::span<const std::uint8_t> bytes) {
  // One arrival stamp per datagram: every frame (and every probe sample)
  // in it shares the receive time, exactly like the batched encoding
  // shares the send stamp.
  const double now = local_clock();
  while (!bytes.empty()) {
    const DecodeResult result = decode_prefix(bytes);
    if (!result.ok()) {
      metrics_increment(config_.metrics, "runtime.net.decode_error");
      return;
    }
    metrics_increment(config_.metrics, "runtime.net.frames_received");
    handle_frame(result.frame, now);
    bytes = bytes.subspan(result.consumed);
  }
}

void NetDaemon::handle_frame(const Frame& frame, double now) {
  const std::int64_t now_ticks = to_ticks(now);

  if (const auto* hello = std::get_if<Hello>(&frame.body)) {
    if (hello->agent >= n_ || hello->agent == config_.id) return;
    const std::int64_t skew = hello->clock_ticks - now_ticks;
    if (skew > config_.max_hello_skew_ticks ||
        skew < -config_.max_hello_skew_ticks) {
      report_.window_violation = true;
      metrics_increment(config_.metrics, "runtime.net.hello_window_reject");
      return;
    }
    send_frame(hello->agent, Frame{HelloAck{config_.id, now_ticks}});
    return;
  }

  if (const auto* ack = std::get_if<HelloAck>(&frame.body)) {
    if (ack->agent >= n_ || ack->agent == config_.id) return;
    const std::int64_t skew = ack->clock_ticks - now_ticks;
    if (skew > config_.max_hello_skew_ticks ||
        skew < -config_.max_hello_skew_ticks) {
      report_.window_violation = true;
      metrics_increment(config_.metrics, "runtime.net.hello_window_reject");
      return;
    }
    peers_[ack->agent].hello_acked = true;
    return;
  }

  if (const auto* probe = std::get_if<ProbeBatch>(&frame.body)) {
    const ProcessorId q = probe->from;
    if (q >= n_ || q == config_.id || !peers_[q].neighbor) return;
    PeerState& peer = peers_[q];
    const std::uint32_t recv24 = compress24(now_ticks);
    for (const ProbeSample& s : probe->samples) {
      if (!peer.seen_probe.insert(s.seq).second) continue;  // retransmit
      const Reconstructed send = reconstruct24(s.t_send24, now_ticks,
                                               config_.guard_ticks);
      if (send.ambiguous) {
        ++report_.ambiguous_dropped;
        metrics_increment(config_.metrics,
                          "runtime.net.reconstruct_ambiguous");
      } else {
        bank(q, now - from_ticks(send.ticks));
        ++report_.probe_obs;
      }
      peer.pending_echo.push_back(EchoSample{s.seq, s.t_send24, recv24});
    }
    if (peer.pending_echo.size() >= config_.echo_flush_batch ||
        round_ >= config_.rounds)
      flush_echoes(q, now);
    return;
  }

  if (const auto* echo = std::get_if<EchoBatch>(&frame.body)) {
    const ProcessorId q = echo->from;
    if (q >= n_ || q == config_.id || !peers_[q].neighbor) return;
    if (!peers_[q].seen_echo.insert(echo->eseq).second) return;
    // The echo's own send stamp is a fresh reverse-direction probe.
    const Reconstructed reply = reconstruct24(echo->t_reply24, now_ticks,
                                              config_.guard_ticks);
    if (reply.ambiguous) {
      ++report_.ambiguous_dropped;
      metrics_increment(config_.metrics, "runtime.net.reconstruct_ambiguous");
    } else {
      bank(q, now - from_ticks(reply.ticks));
      ++report_.echo_obs;
    }
    return;
  }

  if (const auto* full = std::get_if<FullMessage>(&frame.body)) {
    handle_full(*full);
    return;
  }

  metrics_increment(config_.metrics, "runtime.net.frames_unhandled");
}

void NetDaemon::handle_full(const FullMessage& full) {
  if (full.from >= n_) return;

  if (full.tag == kTagNetReport && config_.id == config_.leader) {
    ReportedExtremes incoming;
    incoming.agent = full.from;
    if (!decode_extremes(full.data, incoming.dirs)) {
      metrics_increment(config_.metrics, "runtime.net.decode_error");
      return;
    }
    const bool fresh =
        std::none_of(report_.collected.begin(), report_.collected.end(),
                     [&](const ReportedExtremes& r) {
                       return r.agent == incoming.agent;
                     });
    if (fresh) report_.collected.push_back(std::move(incoming));
    if (report_.computed) {
      // Late or retrying reporter: its corrections reply was lost.
      send_corrections(full.from);
    } else {
      leader_try_compute();
    }
    return;
  }

  if (full.tag == kTagNetCorrections && config_.id != config_.leader) {
    if (full.data.size() != 1 + n_) return;
    if (!done_) {
      report_.precision = full.data[0];
      report_.corrections.assign(full.data.begin() + 1, full.data.end());
      report_.converged = true;
      done_ = true;
      linger_end_ = local_clock() + config_.linger.sec;
    }
    send_frame(config_.leader,
               Frame{FullMessage{next_msg_id_++, config_.id, config_.leader,
                                 kTagNetAck, {}}});
    return;
  }

  if (full.tag == kTagNetAck && config_.id == config_.leader) {
    if (full.from != config_.id) acks_.insert(full.from);
    return;
  }

  metrics_increment(config_.metrics, "runtime.net.frames_unhandled");
}

void NetDaemon::boundary(double now) {
  reported_ = true;
  ReportedExtremes own;
  own.agent = config_.id;
  for (const auto& [peer, stats] : incoming_)
    if (stats.count > 0 && stats.dmin.is_finite() && stats.dmax.is_finite())
      own.dirs.push_back(DirectionExtremes{peer, stats.dmin.finite(),
                                           stats.dmax.finite(), stats.count});
  report_.collected.push_back(std::move(own));

  if (config_.id == config_.leader) {
    leader_try_compute();
  } else {
    send_report();
  }
  next_retry_ = now + config_.retry.sec;
}

void NetDaemon::send_report() {
  const ReportedExtremes& own = report_.collected.front();
  send_frame(config_.leader,
             Frame{FullMessage{next_msg_id_++, config_.id, config_.leader,
                               kTagNetReport, encode_extremes(own.dirs)}});
}

void NetDaemon::send_corrections(ProcessorId to) {
  std::vector<double> data;
  data.reserve(1 + n_);
  data.push_back(report_.precision);
  data.insert(data.end(), report_.corrections.begin(),
              report_.corrections.end());
  send_frame(to, Frame{FullMessage{next_msg_id_++, config_.id, to,
                                   kTagNetCorrections, std::move(data)}});
}

void NetDaemon::leader_try_compute() {
  if (report_.computed || report_.detected || !reported_) return;
  if (report_.collected.size() < n_) return;
  try {
    const SyncOutcome outcome = synchronize_from_extremes(
        *config_.model, report_.collected, config_.leader);
    report_.corrections = outcome.corrections;
    report_.precision = outcome.optimal_precision.is_finite()
                            ? outcome.optimal_precision.finite()
                            : std::numeric_limits<double>::infinity();
    report_.computed = true;
    report_.converged = true;
  } catch (const Error&) {
    // The views contradict the assumptions (§8 detection): no corrections
    // exist.  Followers time out at their deadline.
    report_.detected = true;
    metrics_increment(config_.metrics, "runtime.net.compute_rejected");
    return;
  }
  for (ProcessorId q = 0; q < n_; ++q)
    if (q != config_.id) send_corrections(q);
}

bool NetDaemon::finished(double now) const {
  if (now >= config_.deadline.sec) return true;
  if (config_.id == config_.leader)
    return report_.computed && acks_.size() + 1 >= n_;
  return done_ && now >= linger_end_;
}

double NetDaemon::next_due(double now) const {
  double due = config_.deadline.sec;
  if (round_ < config_.rounds)
    due = std::min(due, config_.warmup.sec +
                            static_cast<double>(round_) * config_.spacing.sec);
  if (!reported_) due = std::min(due, config_.report_at.sec);
  if (reported_ && !(config_.id == config_.leader
                         ? report_.computed && acks_.size() + 1 >= n_
                         : done_))
    due = std::min(due, next_retry_);
  if (done_ && config_.id != config_.leader) due = std::min(due, linger_end_);
  (void)now;
  return due;
}

void NetDaemon::on_timers(double now) {
  while (round_ < config_.rounds &&
         now >= config_.warmup.sec +
                    static_cast<double>(round_) * config_.spacing.sec) {
    send_probe_round(now);
    ++round_;
  }
  if (round_ >= config_.rounds)
    for (const ProcessorId q : neighbors_) flush_echoes(q, now);

  if (!reported_ && now >= config_.report_at.sec) boundary(now);

  if (reported_ && now >= next_retry_) {
    if (config_.id == config_.leader) {
      if (report_.computed && acks_.size() + 1 < n_) {
        for (ProcessorId q = 0; q < n_; ++q)
          if (q != config_.id && acks_.count(q) == 0) send_corrections(q);
        ++report_.report_retries;
      }
    } else if (!done_) {
      send_report();
      ++report_.report_retries;
      metrics_increment(config_.metrics, "runtime.net.report_retries");
    }
    next_retry_ = now + config_.retry.sec;
  }
}

NetDaemonReport NetDaemon::run() {
  // Announce: Hello to every neighbor (retried via probe piggyback until
  // acked) verifies the clock-window assumption before stamps are trusted.
  for (const ProcessorId q : neighbors_)
    send_frame(q, Frame{Hello{config_.id, to_ticks(local_clock())}});

  for (;;) {
    double now = local_clock();
    if (finished(now)) break;
    const double due = next_due(now);
    const double wait = due - now;
    const int timeout_ms =
        wait <= 0.0 ? 0 : static_cast<int>(std::min(wait * 1000.0, 50.0)) + 1;
    loop_.poll_once(timeout_ms);
    now = local_clock();
    on_timers(now);
    if (finished(now)) break;
  }
  return report_;
}

}  // namespace cs::net
