// Socket addresses: parsing, formatting, and sockaddr conversion.
//
// The one place "addr:port" strings become validated addresses.  Every
// parse failure is a cs::Error with the offending input quoted — never a
// silent fallback to loopback (the historical UdpTransport behavior this
// subsystem retires).  IPv4 only, matching the transport layer.
#pragma once

#include <cstdint>
#include <string>

struct sockaddr_in;

namespace cs::net {

struct SocketAddress {
  /// IPv4 address in host byte order; 0 == INADDR_ANY ("*" / "0.0.0.0").
  std::uint32_t ip{0};
  /// Port in host byte order; 0 lets the kernel pick an ephemeral port.
  std::uint16_t port{0};

  bool operator==(const SocketAddress&) const = default;
  /// Total order for session-table keys.
  auto operator<=>(const SocketAddress&) const = default;
};

/// The loopback address with the given port.
SocketAddress loopback(std::uint16_t port = 0);

/// Parses "a.b.c.d" or "*" (INADDR_ANY).  Throws cs::Error on anything
/// else (hostnames are intentionally not resolved — daemons bind and dial
/// explicit addresses).
std::uint32_t parse_ipv4(const std::string& text);

/// Parses "addr:port" ("127.0.0.1:7000", "*:7000", "0.0.0.0:0").  Throws
/// cs::Error when either half is malformed or the port is out of range.
SocketAddress parse_hostport(const std::string& text);

/// "a.b.c.d:port" (INADDR_ANY renders as 0.0.0.0).
std::string to_string(const SocketAddress& addr);

/// Conversions to/from the kernel's sockaddr_in.
void to_sockaddr(const SocketAddress& addr, sockaddr_in& out);
SocketAddress from_sockaddr(const sockaddr_in& sa);

}  // namespace cs::net
