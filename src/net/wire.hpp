// chronosync-wire v1 — the versioned binary wire format.
//
// Every frame opens with a fixed 4-byte header:
//
//   offset  size  field
//   0       1     magic0 = 0xC5
//   1       1     magic1 = 0x77
//   2       1     version = 0x01
//   3       1     type (FrameType)
//
// followed by a type-specific body built from three primitives: LEB128
// varints (varint.hpp), 24-bit compressed timestamps (timestamp.hpp, 3
// bytes little-endian), and full-width IEEE-754 doubles (8 bytes, bit
// pattern little-endian — exact round-trip, no text formatting).  A
// datagram may carry several frames back to back; every frame is
// self-delimiting, so a decoder walks them with decode_prefix().
// docs/NET.md specifies each body byte for byte.
//
// Two encodings of clock stamps coexist by design:
//   * compact — ProbeBatch / EchoBatch carry 24-bit stamps and amortize
//     the header over many samples; this is the hot probing path and the
//     ≥3× bytes-per-epoch win BENCH_net.json records.
//   * canonical full-width — the Full frame carries any (id, from, to,
//     tag, doubles) message verbatim.  It is the self-describing fallback
//     (anything expressible in the runtime's Payload travels uncompressed),
//     the UdpTransport encoding, and the report/corrections carrier where
//     bit-exactness is non-negotiable.
//
// Decoding is TOTAL: decode() never throws and never reads out of bounds;
// every malformed input maps to a typed DecodeError (bad magic, bad
// version, short frame, varint overflow, count overflow, trailing bytes).
// Sample counts are validated against the remaining byte budget *before*
// any allocation, so a hostile count cannot force an OOM.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "net/timestamp.hpp"
#include "net/varint.hpp"

namespace cs::net {

inline constexpr std::uint8_t kMagic0 = 0xC5;
inline constexpr std::uint8_t kMagic1 = 0x77;
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kHeaderBytes = 4;

/// Largest safe UDP payload (IPv4, no fragmentation headroom games).
inline constexpr std::size_t kMaxDatagramBytes = 65507;

enum class FrameType : std::uint8_t {
  kFull = 1,        ///< canonical full-width message
  kProbeBatch = 2,  ///< compact probe samples, one link direction
  kEchoBatch = 3,   ///< compact echo records + reply stamp
  kHello = 4,       ///< session open: agent id + full-width clock stamp
  kHelloAck = 5,    ///< session accept: server agent id + clock stamp
  kBye = 6,         ///< session close
};

enum class DecodeError : std::uint8_t {
  kNone = 0,
  kShortFrame,      ///< ran out of bytes mid-frame
  kBadMagic,        ///< first two bytes are not C5 77
  kBadVersion,      ///< version byte != 1
  kBadType,         ///< type byte names no known frame
  kVarintOverflow,  ///< varint truncated or wider than 64 bits
  kCountOverflow,   ///< declared count cannot fit the remaining bytes
  kTrailingBytes,   ///< decode() consumed the frame but bytes remain
};

const char* to_string(DecodeError error);

/// Canonical full-width message — mirrors the runtime's WireMessage
/// (id/from/to/tag/doubles) without depending on the runtime layer.
struct FullMessage {
  std::uint64_t id{0};
  std::uint32_t from{0};
  std::uint32_t to{0};
  std::uint32_t tag{0};
  std::vector<double> data;

  bool operator==(const FullMessage&) const = default;
};

/// One probe observation-to-be: sequence number + compressed send stamp.
struct ProbeSample {
  std::uint64_t seq{0};
  std::uint32_t t_send24{0};  ///< low 24 bits of the sender's send ticks

  bool operator==(const ProbeSample&) const = default;
};

struct ProbeBatch {
  std::uint32_t from{0};
  std::uint32_t to{0};
  std::vector<ProbeSample> samples;

  bool operator==(const ProbeBatch&) const = default;
};

/// One echoed probe: the original sequence and send stamp plus the
/// echoer's banked receive stamp.
struct EchoSample {
  std::uint64_t seq{0};
  std::uint32_t t_send24{0};
  std::uint32_t t_recv24{0};

  bool operator==(const EchoSample&) const = default;
};

struct EchoBatch {
  std::uint32_t from{0};
  std::uint32_t to{0};
  /// Dedup id for this echo frame (the reverse-direction observation it
  /// carries must be banked once even if the datagram is duplicated).
  std::uint64_t eseq{0};
  /// Echoer's send clock for THIS frame, compressed — the receiver banks
  /// the reverse-direction delay  d̃ = t_arrival − reconstruct(t_reply24).
  std::uint32_t t_reply24{0};
  std::vector<EchoSample> samples;

  bool operator==(const EchoBatch&) const = default;
};

struct Hello {
  std::uint32_t agent{0};
  /// Full-width local clock in ticks at send time: lets the peer verify
  /// the 24-bit reconstruction window assumption before any compact
  /// traffic flows (timestamp.hpp failure mode).
  std::int64_t clock_ticks{0};

  bool operator==(const Hello&) const = default;
};

struct HelloAck {
  std::uint32_t agent{0};
  std::int64_t clock_ticks{0};

  bool operator==(const HelloAck&) const = default;
};

struct Bye {
  std::uint32_t agent{0};

  bool operator==(const Bye&) const = default;
};

using FrameBody =
    std::variant<FullMessage, ProbeBatch, EchoBatch, Hello, HelloAck, Bye>;

struct Frame {
  FrameBody body;

  FrameType type() const;
  bool operator==(const Frame&) const = default;
};

/// Appends the encoding of `frame` to `out` (frames concatenate into one
/// datagram).  Returns the encoded size in bytes.
std::size_t encode(const Frame& frame, std::vector<std::uint8_t>& out);

/// Convenience single-frame encode.
std::vector<std::uint8_t> encode(const Frame& frame);

struct DecodeResult {
  DecodeError error{DecodeError::kNone};
  Frame frame;
  /// Bytes this frame occupied (valid when error == kNone).
  std::size_t consumed{0};

  bool ok() const { return error == DecodeError::kNone; }
};

/// Decodes the first frame of `bytes`, leaving any following frames for
/// the next call.  Never throws; malformed input yields a typed error.
DecodeResult decode_prefix(std::span<const std::uint8_t> bytes);

/// Decodes exactly one frame spanning all of `bytes`
/// (kTrailingBytes otherwise).
DecodeResult decode(std::span<const std::uint8_t> bytes);

/// Encoded size of a Full frame carrying `doubles` payload doubles, with
/// worst-case varint widths — the datagram budget check transports use.
std::size_t max_full_frame_bytes(std::size_t doubles);

/// Largest payload (in doubles) a Full frame can carry in one datagram of
/// `datagram_bytes`, under worst-case varint widths.
std::size_t max_full_doubles(std::size_t datagram_bytes = kMaxDatagramBytes);

}  // namespace cs::net
