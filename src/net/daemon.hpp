// NetDaemon: the §7 protocol over real sockets — N processes (or threads),
// one UDP socket each, converging to the Thm 4.6 optimal corrections.
//
// Role of each daemon p with local clock  c_p(t) = base_clock(t) − base − S_p
// (the repo convention: clock time = real time − start time; `base` is a
// shared origin all daemons of one run agree on out of band):
//
//   1. PROBE   — every `spacing`, send one ProbeBatch to each topology
//                neighbor; echo incoming probes back in batched EchoBatch
//                frames (compact 24-bit stamps both ways, frames of one
//                tick concatenated into a single datagram).
//   2. BANK    — each incoming probe sample yields an estimated delay
//                d̃ = T_recv − T_send (Lemma 6.1) for the direction q → p,
//                reconstructed from the 24-bit stamp against the local
//                clock; each incoming echo's t_reply yields one more.
//                Duplicates are deduplicated by (peer, seq); ambiguous
//                reconstructions (window edge) are dropped and counted.
//   3. REPORT  — at the boundary `report_at`, send the per-direction
//                extremes (the Lemma 6.2/6.5 sufficient statistic) to the
//                leader as a canonical full-width frame: bit-exact doubles,
//                so the leader's pipeline input equals what an offline
//                recompute from the same table sees.
//   4. COMPUTE — the leader folds all reports into LinkStats, runs
//                mls_graph_from_stats → synchronize_mls (root = leader),
//                and floods [precision, x_0 … x_{n-1}] to every agent.
//   5. ACK     — followers acknowledge; everything REPORT-and-later is
//                retried on a timer, so any single datagram may be lost.
//
// The control plane (reports, corrections, acks) rides the same socket as
// the probe plane but is out of band with respect to the analyzed instance:
// only probe/echo traffic is banked, mirroring how the trace tooling keeps
// coordinator traffic out of views.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <unordered_set>
#include <vector>

#include "common/metrics.hpp"
#include "common/time.hpp"
#include "core/synchronizer.hpp"
#include "net/address.hpp"
#include "net/event_loop.hpp"
#include "net/wire.hpp"

namespace cs::net {

/// Control-plane tags carried in Full frames (disjoint from the runtime's
/// live tags; these never enter views).
inline constexpr std::uint32_t kTagNetReport = 40;
inline constexpr std::uint32_t kTagNetCorrections = 41;
inline constexpr std::uint32_t kTagNetAck = 42;

/// Extremes of one incoming direction peer → reporter.
struct DirectionExtremes {
  ProcessorId peer{0};
  double dmin{0.0};
  double dmax{0.0};
  std::uint64_t count{0};

  bool operator==(const DirectionExtremes&) const = default;
};

/// One agent's report: every incoming direction it observed.
struct ReportedExtremes {
  ProcessorId agent{0};
  std::vector<DirectionExtremes> dirs;

  bool operator==(const ReportedExtremes&) const = default;
};

/// Report payload codec (doubles are exact for the values involved):
///   [dir_count, (peer, dmin, dmax, count) ...]
std::vector<double> encode_extremes(const std::vector<DirectionExtremes>& dirs);
bool decode_extremes(std::span<const double> data,
                     std::vector<DirectionExtremes>& out);

/// The leader's compute step as a pure function: LinkStats from the
/// reported extremes → mls_graph_from_stats → synchronize_mls(root).
/// Exposed so harnesses can recompute offline from a daemon's collected
/// table and compare bit-for-bit against the corrections it flooded.
SyncOutcome synchronize_from_extremes(const SystemModel& model,
                                      std::span<const ReportedExtremes> reports,
                                      ProcessorId root);

struct NetDaemonConfig {
  /// This daemon's agent id (index into `peers` and the model).
  ProcessorId id{0};
  /// Socket address of every agent, indexed by id; peers[id] is this
  /// daemon's bind address (port 0 = ephemeral, see local_address()).
  std::vector<SocketAddress> peers;
  ProcessorId leader{0};
  /// System assumptions (G, A); must outlive the daemon.  Probing follows
  /// the topology's links; peers.size() must equal processor_count().
  const SystemModel* model{nullptr};

  /// Shared clock origin in base_clock units: all daemons of one run use
  /// the same value (the harness picks e.g. now + 1s), so their schedules
  /// align without any in-band coordination.
  double base{0.0};
  /// This daemon's start offset S_p; local clock = base_clock − base − S_p.
  Duration start_offset{0.0};
  /// Wall clock shared across processes; default CLOCK_REALTIME seconds.
  std::function<double()> base_clock;

  // Schedule, in local clock seconds.
  Duration warmup{0.3};     ///< first probe round
  Duration spacing{0.05};   ///< between probe rounds
  std::size_t rounds{8};
  Duration report_at{1.2};  ///< boundary: snapshot extremes, start REPORT
  Duration retry{0.1};      ///< report / corrections resend interval
  Duration linger{0.4};     ///< follower lifetime after acking (re-acks)
  Duration deadline{15.0};  ///< hard stop, converged or not
  /// Reconstruction guard band (timestamp.hpp).
  std::int64_t guard_ticks{kDefaultGuardTicks};
  /// Refuse Hellos whose full-width stamp differs by more than this.
  std::int64_t max_hello_skew_ticks{kTimestampHalfWindow / 2};
  /// Flush pending echo samples once this many accumulate (otherwise they
  /// piggyback on the next probe datagram to that peer).
  std::size_t echo_flush_batch{8};

  LoopBackend backend{LoopBackend::kAuto};
  Metrics* metrics{nullptr};  ///< must outlive the daemon; nullptr = off
};

struct NetDaemonReport {
  /// Followers: corrections received.  Leader: outcome computed.
  bool converged{false};
  /// Leader only: all n reports arrived and the pipeline ran.
  bool computed{false};
  /// Leader only: the pipeline rejected the traffic (InvalidAssumption) —
  /// the §8 detection outcome surfaced over the network.
  bool detected{false};
  /// A peer's Hello fell outside the compact-stamp window contract.
  bool window_violation{false};

  double precision{0.0};           ///< claimed Ã^max (+inf if unbounded)
  std::vector<double> corrections;  ///< x_p per agent, empty until converged

  /// Leader: every agent's report (the offline cross-check input).
  /// Followers: just their own.
  std::vector<ReportedExtremes> collected;

  std::uint64_t probes_sent{0};
  std::uint64_t probe_obs{0};        ///< banked forward observations
  std::uint64_t echo_obs{0};         ///< banked reverse (t_reply) observations
  std::uint64_t ambiguous_dropped{0};
  std::uint64_t report_retries{0};
};

class NetDaemon {
 public:
  /// Binds peers[id] (throws cs::Error on failure or malformed config —
  /// including a schedule whose boundary precedes the last probe round).
  explicit NetDaemon(NetDaemonConfig config);
  ~NetDaemon();

  NetDaemon(const NetDaemon&) = delete;
  NetDaemon& operator=(const NetDaemon&) = delete;

  /// Bound address with the kernel-resolved port (rewrite peers[id] with
  /// this when using ephemeral ports, before constructing the *other*
  /// daemons of an in-process run).
  SocketAddress local_address() const { return local_; }

  /// Runs the protocol to completion (converged + settled, or deadline).
  /// Blocking; in-process multi-daemon harnesses call this from one thread
  /// per daemon.
  NetDaemonReport run();

 private:
  struct PeerState {
    bool neighbor{false};
    bool hello_acked{false};
    std::uint64_t echo_seq{0};
    std::unordered_set<std::uint64_t> seen_probe;
    std::unordered_set<std::uint64_t> seen_echo;
    std::vector<EchoSample> pending_echo;
  };

  double local_clock() const {
    return base_clock_() - config_.base - config_.start_offset.sec;
  }
  void on_socket(bool readable, bool writable);
  void handle_datagram(std::span<const std::uint8_t> bytes);
  void handle_frame(const Frame& frame, double now);
  void handle_full(const FullMessage& full);
  void bank(ProcessorId peer, double delay);
  void send_frames(ProcessorId to, std::span<const Frame> frames);
  void send_frame(ProcessorId to, const Frame& frame) {
    send_frames(to, std::span<const Frame>(&frame, 1));
  }
  void send_probe_round(double now);
  void flush_echoes(ProcessorId q, double now);
  void boundary(double now);
  void leader_try_compute();
  void send_report();
  void send_corrections(ProcessorId to);
  void on_timers(double now);
  double next_due(double now) const;
  bool finished(double now) const;

  NetDaemonConfig config_;
  std::function<double()> base_clock_;
  std::size_t n_{0};
  SocketAddress local_;
  int fd_{-1};
  EventLoop loop_;
  std::vector<PeerState> peers_;
  std::vector<ProcessorId> neighbors_;
  std::vector<std::uint8_t> recv_buf_;

  // Estimator state (direction peer → self), ordered for deterministic
  // report layout.
  std::map<ProcessorId, DirectedStats> incoming_;

  // Protocol state machine.
  std::size_t round_{0};
  std::uint64_t next_seq_{0};
  std::uint64_t next_msg_id_{1};
  bool reported_{false};
  double next_retry_{0.0};
  double linger_end_{0.0};
  bool done_{false};
  std::unordered_set<ProcessorId> acks_;  ///< leader: who acked corrections

  NetDaemonReport report_;
};

}  // namespace cs::net
