// 24-bit compressed timestamps with windowed reconstruction.
//
// The TimeSync idea: a clock stamp does not need all 64 bits on the wire
// when sender and receiver are already coarsely synchronized.  Quantize
// clock seconds to 1 µs ticks, truncate to the low 24 bits (3 bytes), and
// let the receiver rebuild the full value against its own local reference:
// of all tick values congruent to the truncated stamp mod 2^24, exactly one
// lies within ±2^23 ticks (±8.39 s) of the reference — that one is the
// answer whenever the true stamp is within half a window of the reference.
//
// Failure mode (documented in docs/NET.md): if sender and receiver clocks
// disagree by MORE than half a window (2^23 µs ≈ 8.39 s), reconstruction
// silently lands a whole window (16.78 s) away — truncation cannot detect a
// full wrap.  The guard band is the mitigation for the *near-miss* case:
// a reconstruction landing within `guard` ticks of the ±2^23 edge is
// flagged ambiguous (the true value could plausibly be on the other side of
// the wrap), and callers drop the sample and count it
// (runtime.net.reconstruct_ambiguous) instead of banking a possibly
// window-shifted delay.  Full wraps are excluded by protocol: the Hello
// handshake carries a full-width stamp and refuses sessions whose clocks
// disagree by more than a quarter window (session.hpp).
#pragma once

#include <cstdint>

namespace cs::net {

/// One tick = 1 µs; 24 bits of ticks = a 16.777216 s window.
inline constexpr double kTickSeconds = 1e-6;
inline constexpr std::uint32_t kTimestampBits = 24;
inline constexpr std::uint32_t kTimestampMask = (1u << kTimestampBits) - 1;
inline constexpr std::int64_t kTimestampWindow = std::int64_t{1}
                                                 << kTimestampBits;
inline constexpr std::int64_t kTimestampHalfWindow = kTimestampWindow / 2;

/// Default ambiguity guard: 2^16 ticks = 65.5 ms on either side of the
/// wrap edge.  Generous against real clock disagreement (the sync protocol
/// holds peers to well under a second) while costing under 1% of the
/// usable window.
inline constexpr std::int64_t kDefaultGuardTicks = std::int64_t{1} << 16;

/// Clock seconds -> ticks (round-to-nearest; exact back to ±2^62 µs).
std::int64_t to_ticks(double seconds);

/// Ticks -> clock seconds.
double from_ticks(std::int64_t ticks);

/// The wire form: low 24 bits of the tick count.
inline std::uint32_t compress24(std::int64_t ticks) {
  return static_cast<std::uint32_t>(ticks) & kTimestampMask;
}

struct Reconstructed {
  /// The unique tick count congruent to the compressed stamp (mod 2^24)
  /// within (ref − 2^23, ref + 2^23].
  std::int64_t ticks{0};
  /// Distance to the reference landed within `guard` of the ±2^23 edge:
  /// the true stamp could be a full window away.  Drop the sample.
  bool ambiguous{false};
};

/// Rebuilds a full tick count from a 24-bit stamp and the receiver's local
/// reference (its own clock, in ticks, at receive time).  Total: any input
/// yields a result; `ambiguous` is the only failure signal.
Reconstructed reconstruct24(std::uint32_t stamp24, std::int64_t ref_ticks,
                            std::int64_t guard_ticks = kDefaultGuardTicks);

}  // namespace cs::net
