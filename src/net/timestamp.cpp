#include "net/timestamp.hpp"

#include <cmath>

namespace cs::net {

std::int64_t to_ticks(double seconds) {
  return std::llround(seconds / kTickSeconds);
}

double from_ticks(std::int64_t ticks) {
  return static_cast<double>(ticks) * kTickSeconds;
}

Reconstructed reconstruct24(std::uint32_t stamp24, std::int64_t ref_ticks,
                            std::int64_t guard_ticks) {
  // Signed difference of the low 24 bits, mapped into [-2^23, 2^23):
  // delta = ((stamp - ref) mod 2^24), then recentered.
  const std::uint32_t ref24 = compress24(ref_ticks);
  std::int64_t delta =
      static_cast<std::int64_t>((stamp24 - ref24) & kTimestampMask);
  if (delta >= kTimestampHalfWindow) delta -= kTimestampWindow;

  Reconstructed out;
  out.ticks = ref_ticks + delta;
  // |delta| within `guard` of the half-window edge: a true stamp just past
  // the wrap would reconstruct to the same bits.  Both edges are hot —
  // delta == -2^23 is the wrap image of +2^23.
  const std::int64_t margin =
      kTimestampHalfWindow - (delta < 0 ? -delta : delta);
  out.ambiguous = margin <= guard_ticks;
  return out;
}

}  // namespace cs::net
