// Per-client session state for the multi-client daemon.
//
// A session is everything the daemon remembers about one remote agent,
// keyed by its socket address.  Lifecycle (docs/NET.md):
//
//   (datagram from unknown peer)
//        │ Hello ──────────────► kEstablished   (clock window verified)
//        │ ProbeBatch ─────────► kImplicit      (probe-before-hello is
//        │                                       served, but flagged)
//   kImplicit ── Hello ────────► kEstablished
//   any ─────── Bye ───────────► closed (erased immediately)
//   any ─────── idle > timeout ► expired (erased by the sweep)
//
// Backpressure: each session owns a bounded send queue.  When the socket
// will not take a reply synchronously (EAGAIN), the datagram is queued
// against the session's byte budget; a full budget drops the *new* frame
// and counts it — a slow or dead client can never grow daemon memory
// unboundedly nor stall other sessions.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "common/time.hpp"
#include "net/address.hpp"

namespace cs::net {

struct SessionConfig {
  /// Sessions idle longer than this are expired by the sweep; <= 0 never
  /// expires (the multihost daemons manage their own peers).
  Duration idle_timeout{30.0};
  /// Hard cap on concurrent sessions; find_or_create refuses past it.
  std::size_t max_sessions{100'000};
  /// Per-session send-queue budget in bytes.
  std::size_t max_queue_bytes{256 * 1024};
};

struct Session {
  enum class State : std::uint8_t {
    kImplicit,     ///< traffic before any Hello
    kEstablished,  ///< Hello accepted
  };

  SocketAddress peer;
  State state{State::kImplicit};
  std::uint32_t agent{0};  ///< peer's claimed agent id (Hello)
  double last_seen{0.0};   ///< daemon clock, seconds

  /// Peer clock minus local clock at Hello time, in ticks — the measured
  /// offset the 24-bit window assumption is checked against.
  std::int64_t hello_skew_ticks{0};

  /// Pending datagrams the socket would not take synchronously.
  std::deque<std::vector<std::uint8_t>> send_queue;
  std::size_t queued_bytes{0};

  std::uint64_t frames_in{0};
  std::uint64_t frames_out{0};
  std::uint64_t echo_seq{0};  ///< next outgoing EchoBatch eseq
  std::uint64_t dropped_backpressure{0};
};

/// Address-keyed session registry with idle expiry and queue accounting.
/// Single-threaded: owned and touched only by the daemon's loop thread.
class SessionTable {
 public:
  explicit SessionTable(SessionConfig config) : config_(config) {}

  const SessionConfig& config() const { return config_; }

  /// nullptr when the peer has no session.
  Session* find(const SocketAddress& peer);

  /// Existing session (touched) or a fresh kImplicit one; nullptr when the
  /// table is at max_sessions and the peer is unknown.
  Session* find_or_create(const SocketAddress& peer, double now);

  /// Marks activity (refreshes the idle clock).
  void touch(Session& session, double now) { session.last_seen = now; }

  /// Erases the peer's session; false when none existed.
  bool close(const SocketAddress& peer);

  /// Erases every session idle since before `now - idle_timeout`; calls
  /// `on_expire` (when set) for each just before erasure.  Returns the
  /// number expired.  No-op when idle_timeout <= 0.
  std::size_t expire_idle(double now,
                          const std::function<void(Session&)>& on_expire = {});

  /// Queues `datagram` against the session's byte budget.  False (and
  /// dropped_backpressure++) when the budget cannot take it.
  bool enqueue(Session& session, std::vector<std::uint8_t> datagram);

  /// Pops the oldest queued datagram; empty vector when the queue is dry.
  std::vector<std::uint8_t> dequeue(Session& session);

  std::size_t size() const { return sessions_.size(); }
  std::size_t peak_size() const { return peak_; }

  /// Total bytes queued across all sessions (write-interest bookkeeping).
  std::size_t total_queued_bytes() const { return total_queued_; }

  /// Iterate all sessions (drain scheduling, diagnostics).
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (auto& [addr, session] : sessions_) fn(session);
  }

 private:
  SessionConfig config_;
  std::map<SocketAddress, Session> sessions_;
  std::size_t peak_{0};
  std::size_t total_queued_{0};
};

}  // namespace cs::net
