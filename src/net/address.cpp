#include "net/address.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>

#include <cstring>

#include "common/error.hpp"

namespace cs::net {

SocketAddress loopback(std::uint16_t port) {
  return SocketAddress{INADDR_LOOPBACK, port};
}

std::uint32_t parse_ipv4(const std::string& text) {
  if (text == "*") return INADDR_ANY;
  in_addr parsed{};
  if (inet_pton(AF_INET, text.c_str(), &parsed) != 1)
    throw Error("net: invalid IPv4 address '" + text + "'");
  return ntohl(parsed.s_addr);
}

SocketAddress parse_hostport(const std::string& text) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos)
    throw Error("net: expected addr:port, got '" + text + "'");
  const std::string host = text.substr(0, colon);
  const std::string port_text = text.substr(colon + 1);
  if (host.empty() || port_text.empty())
    throw Error("net: expected addr:port, got '" + text + "'");

  long port = 0;
  for (char ch : port_text) {
    if (ch < '0' || ch > '9')
      throw Error("net: invalid port in '" + text + "'");
    port = port * 10 + (ch - '0');
    if (port > 65535) throw Error("net: port out of range in '" + text + "'");
  }
  return SocketAddress{parse_ipv4(host), static_cast<std::uint16_t>(port)};
}

std::string to_string(const SocketAddress& addr) {
  in_addr ia{};
  ia.s_addr = htonl(addr.ip);
  char buf[INET_ADDRSTRLEN] = {};
  inet_ntop(AF_INET, &ia, buf, sizeof buf);
  return std::string(buf) + ":" + std::to_string(addr.port);
}

void to_sockaddr(const SocketAddress& addr, sockaddr_in& out) {
  std::memset(&out, 0, sizeof out);
  out.sin_family = AF_INET;
  out.sin_port = htons(addr.port);
  out.sin_addr.s_addr = htonl(addr.ip);
}

SocketAddress from_sockaddr(const sockaddr_in& sa) {
  return SocketAddress{ntohl(sa.sin_addr.s_addr), ntohs(sa.sin_port)};
}

}  // namespace cs::net
