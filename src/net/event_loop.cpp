#include "net/event_loop.hpp"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include "common/error.hpp"

namespace cs::net {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    throw Error("EventLoop: fcntl(O_NONBLOCK) failed");
}

}  // namespace

EventLoop::EventLoop(LoopBackend backend) {
#ifdef __linux__
  if (backend != LoopBackend::kPoll) {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0 && backend == LoopBackend::kEpoll)
      throw Error("EventLoop: epoll_create1 failed");
  }
#else
  if (backend == LoopBackend::kEpoll)
    throw Error("EventLoop: epoll is not available on this platform");
#endif
  (void)backend;

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    throw Error("EventLoop: pipe() failed");
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  set_nonblocking(wake_read_fd_);
  set_nonblocking(wake_write_fd_);

#ifdef __linux__
  if (epoll_fd_ >= 0) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wake_read_fd_;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_read_fd_, &ev) != 0)
      throw Error("EventLoop: epoll_ctl(wake pipe) failed");
  }
#endif
}

EventLoop::~EventLoop() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
}

void EventLoop::apply(int fd, const Entry& entry, bool adding) {
#ifdef __linux__
  if (epoll_fd_ >= 0) {
    epoll_event ev{};
    ev.events = (entry.want_read ? EPOLLIN : 0u) |
                (entry.want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    const int op = adding ? EPOLL_CTL_ADD : EPOLL_CTL_MOD;
    if (::epoll_ctl(epoll_fd_, op, fd, &ev) != 0)
      throw Error(std::string("EventLoop: epoll_ctl failed: ") +
                  std::strerror(errno));
    return;
  }
#endif
  (void)fd;
  (void)entry;
  (void)adding;  // poll backend rebuilds its pollfd set per wait
}

void EventLoop::add(int fd, bool want_read, bool want_write, IoFn fn) {
  if (fd < 0) throw Error("EventLoop: add of negative fd");
  if (entries_.count(fd) != 0)
    throw Error("EventLoop: fd " + std::to_string(fd) + " already watched");
  Entry entry{want_read, want_write, std::move(fn)};
  apply(fd, entry, /*adding=*/true);
  entries_.emplace(fd, std::move(entry));
}

void EventLoop::modify(int fd, bool want_read, bool want_write) {
  const auto it = entries_.find(fd);
  if (it == entries_.end())
    throw Error("EventLoop: modify of unwatched fd " + std::to_string(fd));
  it->second.want_read = want_read;
  it->second.want_write = want_write;
  apply(fd, it->second, /*adding=*/false);
}

void EventLoop::remove(int fd) {
  const auto it = entries_.find(fd);
  if (it == entries_.end()) return;
#ifdef __linux__
  if (epoll_fd_ >= 0) ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
#endif
  entries_.erase(it);
}

int EventLoop::wait_epoll(int timeout_ms,
                          std::vector<std::pair<int, int>>& ready) {
#ifdef __linux__
  epoll_event events[64];
  const int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
  if (n < 0) return errno == EINTR ? 0 : -1;
  for (int i = 0; i < n; ++i) {
    // Error conditions (EPOLLERR/EPOLLHUP) surface as readable so the
    // owner's read path observes the failure and can unregister.
    const bool r = (events[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0;
    const bool w = (events[i].events & EPOLLOUT) != 0;
    const int fd = events[i].data.fd;  // copy out of the packed struct
    ready.emplace_back(fd, (r ? 1 : 0) | (w ? 2 : 0));
  }
  return n;
#else
  (void)timeout_ms;
  (void)ready;
  return -1;
#endif
}

int EventLoop::wait_poll(int timeout_ms,
                         std::vector<std::pair<int, int>>& ready) {
  std::vector<pollfd> fds;
  fds.reserve(entries_.size() + 1);
  fds.push_back(pollfd{wake_read_fd_, POLLIN, 0});
  for (const auto& [fd, entry] : entries_)
    fds.push_back(pollfd{fd,
                         static_cast<short>((entry.want_read ? POLLIN : 0) |
                                            (entry.want_write ? POLLOUT : 0)),
                         0});
  const int n = ::poll(fds.data(), fds.size(), timeout_ms);
  if (n < 0) return errno == EINTR ? 0 : -1;
  for (const pollfd& pfd : fds) {
    const bool r =
        (pfd.revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL)) != 0;
    const bool w = (pfd.revents & POLLOUT) != 0;
    if (r || w) ready.emplace_back(pfd.fd, (r ? 1 : 0) | (w ? 2 : 0));
  }
  return n;
}

int EventLoop::poll_once(int timeout_ms) {
  std::vector<std::pair<int, int>> ready;
  const int n = epoll_fd_ >= 0 ? wait_epoll(timeout_ms, ready)
                               : wait_poll(timeout_ms, ready);
  if (n < 0)
    throw Error(std::string("EventLoop: wait failed: ") +
                std::strerror(errno));

  int dispatched = 0;
  for (const auto& [fd, mask] : ready) {
    if (fd == wake_read_fd_) {
      drain_wake_pipe();
      continue;
    }
    // Re-check registration: an earlier callback this round may have
    // removed this fd.
    const auto it = entries_.find(fd);
    if (it == entries_.end()) continue;
    ++dispatched;
    if (it->second.fn) {
      // Invoke a copy: the callback may remove() its own fd, which erases
      // the entry and would destroy the closure out from under this call.
      const IoFn fn = it->second.fn;
      fn((mask & 1) != 0, (mask & 2) != 0);
    }
  }
  return dispatched;
}

void EventLoop::wake() {
  const char byte = 1;
  // Best effort: a full pipe already guarantees a pending wakeup.
  [[maybe_unused]] const ssize_t n = ::write(wake_write_fd_, &byte, 1);
}

void EventLoop::drain_wake_pipe() {
  char buf[64];
  while (::read(wake_read_fd_, buf, sizeof buf) > 0) {
  }
}

}  // namespace cs::net
