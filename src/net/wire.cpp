#include "net/wire.hpp"

#include <bit>
#include <cstring>

namespace cs::net {

namespace {

// ---- primitive writers -------------------------------------------------

void put_u24(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_double(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

// ---- primitive readers -------------------------------------------------
//
// A Cursor walks the frame body; every read checks the remaining size and
// latches the first error.  Once failed, every later read reports failure
// too, so decode bodies read straight-line without per-field branching.

struct Cursor {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos{0};
  DecodeError error{DecodeError::kNone};

  bool fail(DecodeError e) {
    if (error == DecodeError::kNone) error = e;
    return false;
  }

  bool ok() const { return error == DecodeError::kNone; }
  std::size_t remaining() const { return size - pos; }

  std::uint64_t varint() {
    if (!ok()) return 0;
    const VarintResult r = get_varint(data + pos, remaining());
    if (!r.ok()) {
      // Distinguish "ran off the end" from "10 well-formed bytes that
      // overflow": both are refusals, but the corpus tests pin the types.
      fail(remaining() < kMaxVarintBytes ? DecodeError::kShortFrame
                                         : DecodeError::kVarintOverflow);
      return 0;
    }
    pos += r.consumed;
    return r.value;
  }

  std::uint32_t varint32() {
    const std::uint64_t v = varint();
    if (ok() && v > UINT32_MAX) fail(DecodeError::kVarintOverflow);
    return static_cast<std::uint32_t>(v);
  }

  std::uint32_t u24() {
    if (!ok()) return 0;
    if (remaining() < 3) {
      fail(DecodeError::kShortFrame);
      return 0;
    }
    const std::uint32_t v = static_cast<std::uint32_t>(data[pos]) |
                            static_cast<std::uint32_t>(data[pos + 1]) << 8 |
                            static_cast<std::uint32_t>(data[pos + 2]) << 16;
    pos += 3;
    return v;
  }

  std::uint64_t u64() {
    if (!ok()) return 0;
    if (remaining() < 8) {
      fail(DecodeError::kShortFrame);
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(data[pos + i]) << (8 * i);
    pos += 8;
    return v;
  }

  double f64() { return std::bit_cast<double>(u64()); }

  /// Validates a declared element count against the bytes actually left:
  /// every element needs at least `min_bytes`, so a count the buffer
  /// cannot possibly hold is rejected before any allocation.
  std::size_t count(std::size_t min_bytes) {
    const std::uint64_t n = varint();
    if (!ok()) return 0;
    if (n > remaining() / min_bytes) {
      fail(DecodeError::kCountOverflow);
      return 0;
    }
    return static_cast<std::size_t>(n);
  }
};

// ---- per-type bodies ---------------------------------------------------

void encode_body(const FullMessage& m, std::vector<std::uint8_t>& out) {
  put_varint(out, m.id);
  put_varint(out, m.from);
  put_varint(out, m.to);
  put_varint(out, m.tag);
  put_varint(out, m.data.size());
  for (double d : m.data) put_double(out, d);
}

void encode_body(const ProbeBatch& b, std::vector<std::uint8_t>& out) {
  put_varint(out, b.from);
  put_varint(out, b.to);
  put_varint(out, b.samples.size());
  for (const ProbeSample& s : b.samples) {
    put_varint(out, s.seq);
    put_u24(out, s.t_send24 & kTimestampMask);
  }
}

void encode_body(const EchoBatch& b, std::vector<std::uint8_t>& out) {
  put_varint(out, b.from);
  put_varint(out, b.to);
  put_varint(out, b.eseq);
  put_u24(out, b.t_reply24 & kTimestampMask);
  put_varint(out, b.samples.size());
  for (const EchoSample& s : b.samples) {
    put_varint(out, s.seq);
    put_u24(out, s.t_send24 & kTimestampMask);
    put_u24(out, s.t_recv24 & kTimestampMask);
  }
}

void encode_body(const Hello& h, std::vector<std::uint8_t>& out) {
  put_varint(out, h.agent);
  put_u64(out, static_cast<std::uint64_t>(h.clock_ticks));
}

void encode_body(const HelloAck& h, std::vector<std::uint8_t>& out) {
  put_varint(out, h.agent);
  put_u64(out, static_cast<std::uint64_t>(h.clock_ticks));
}

void encode_body(const Bye& b, std::vector<std::uint8_t>& out) {
  put_varint(out, b.agent);
}

FullMessage decode_full(Cursor& c) {
  FullMessage m;
  m.id = c.varint();
  m.from = c.varint32();
  m.to = c.varint32();
  m.tag = c.varint32();
  const std::size_t n = c.count(sizeof(double));
  if (!c.ok()) return m;
  m.data.resize(n);
  for (std::size_t i = 0; i < n; ++i) m.data[i] = c.f64();
  return m;
}

ProbeBatch decode_probe(Cursor& c) {
  ProbeBatch b;
  b.from = c.varint32();
  b.to = c.varint32();
  const std::size_t n = c.count(1 + 3);  // min: 1-byte seq + u24 stamp
  if (!c.ok()) return b;
  b.samples.resize(n);
  for (ProbeSample& s : b.samples) {
    s.seq = c.varint();
    s.t_send24 = c.u24();
  }
  return b;
}

EchoBatch decode_echo(Cursor& c) {
  EchoBatch b;
  b.from = c.varint32();
  b.to = c.varint32();
  b.eseq = c.varint();
  b.t_reply24 = c.u24();
  const std::size_t n = c.count(1 + 3 + 3);
  if (!c.ok()) return b;
  b.samples.resize(n);
  for (EchoSample& s : b.samples) {
    s.seq = c.varint();
    s.t_send24 = c.u24();
    s.t_recv24 = c.u24();
  }
  return b;
}

Hello decode_hello(Cursor& c) {
  Hello h;
  h.agent = c.varint32();
  h.clock_ticks = static_cast<std::int64_t>(c.u64());
  return h;
}

HelloAck decode_hello_ack(Cursor& c) {
  HelloAck h;
  h.agent = c.varint32();
  h.clock_ticks = static_cast<std::int64_t>(c.u64());
  return h;
}

Bye decode_bye(Cursor& c) {
  Bye b;
  b.agent = c.varint32();
  return b;
}

}  // namespace

const char* to_string(DecodeError error) {
  switch (error) {
    case DecodeError::kNone: return "none";
    case DecodeError::kShortFrame: return "short-frame";
    case DecodeError::kBadMagic: return "bad-magic";
    case DecodeError::kBadVersion: return "bad-version";
    case DecodeError::kBadType: return "bad-type";
    case DecodeError::kVarintOverflow: return "varint-overflow";
    case DecodeError::kCountOverflow: return "count-overflow";
    case DecodeError::kTrailingBytes: return "trailing-bytes";
  }
  return "?";
}

FrameType Frame::type() const {
  struct Visitor {
    FrameType operator()(const FullMessage&) { return FrameType::kFull; }
    FrameType operator()(const ProbeBatch&) { return FrameType::kProbeBatch; }
    FrameType operator()(const EchoBatch&) { return FrameType::kEchoBatch; }
    FrameType operator()(const Hello&) { return FrameType::kHello; }
    FrameType operator()(const HelloAck&) { return FrameType::kHelloAck; }
    FrameType operator()(const Bye&) { return FrameType::kBye; }
  };
  return std::visit(Visitor{}, body);
}

std::size_t encode(const Frame& frame, std::vector<std::uint8_t>& out) {
  const std::size_t start = out.size();
  out.push_back(kMagic0);
  out.push_back(kMagic1);
  out.push_back(kWireVersion);
  out.push_back(static_cast<std::uint8_t>(frame.type()));
  std::visit([&out](const auto& body) { encode_body(body, out); },
             frame.body);
  return out.size() - start;
}

std::vector<std::uint8_t> encode(const Frame& frame) {
  std::vector<std::uint8_t> out;
  encode(frame, out);
  return out;
}

DecodeResult decode_prefix(std::span<const std::uint8_t> bytes) {
  DecodeResult result;
  if (bytes.size() < kHeaderBytes) {
    result.error = DecodeError::kShortFrame;
    return result;
  }
  if (bytes[0] != kMagic0 || bytes[1] != kMagic1) {
    result.error = DecodeError::kBadMagic;
    return result;
  }
  if (bytes[2] != kWireVersion) {
    result.error = DecodeError::kBadVersion;
    return result;
  }

  Cursor c{bytes.data(), bytes.size(), kHeaderBytes};
  switch (static_cast<FrameType>(bytes[3])) {
    case FrameType::kFull: result.frame.body = decode_full(c); break;
    case FrameType::kProbeBatch: result.frame.body = decode_probe(c); break;
    case FrameType::kEchoBatch: result.frame.body = decode_echo(c); break;
    case FrameType::kHello: result.frame.body = decode_hello(c); break;
    case FrameType::kHelloAck: result.frame.body = decode_hello_ack(c); break;
    case FrameType::kBye: result.frame.body = decode_bye(c); break;
    default: result.error = DecodeError::kBadType; return result;
  }
  if (!c.ok()) {
    result.error = c.error;
    return result;
  }
  result.consumed = c.pos;
  return result;
}

DecodeResult decode(std::span<const std::uint8_t> bytes) {
  DecodeResult result = decode_prefix(bytes);
  if (result.ok() && result.consumed != bytes.size())
    result.error = DecodeError::kTrailingBytes;
  return result;
}

std::size_t max_full_frame_bytes(std::size_t doubles) {
  // Header + five worst-case varints + the doubles.
  return kHeaderBytes + 5 * kMaxVarintBytes + doubles * sizeof(double);
}

std::size_t max_full_doubles(std::size_t datagram_bytes) {
  const std::size_t overhead = kHeaderBytes + 5 * kMaxVarintBytes;
  if (datagram_bytes <= overhead) return 0;
  return (datagram_bytes - overhead) / sizeof(double);
}

}  // namespace cs::net
