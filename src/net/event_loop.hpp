// The I/O multiplexer behind the multi-client daemon.
//
// One EventLoop watches any number of descriptors and dispatches readable/
// writable callbacks from poll_once() — the single-threaded reactor that
// lets one cs_syncd process multiplex thousands of concurrent agent
// sessions over a handful of sockets (one today) instead of a
// thread-per-endpoint.
//
// Backend: epoll on Linux (O(ready) dispatch, the only sane choice at
// thousands of sessions), with a poll(2) fallback that is always compiled
// and selectable — kPoll exists for portability and so tests exercise both
// paths on the same machine.  kAuto picks epoll where available.
//
// Threading: add/modify/remove/poll_once belong to the loop thread.
// wake() is the one cross-thread entry point — it writes a self-pipe the
// loop watches internally, so a blocked poll_once() returns promptly
// (how stop() interrupts a daemon sleeping in epoll_wait).
//
// Reentrancy: a callback may remove() any descriptor, including its own.
// Dispatch collects the ready set first and re-checks registration before
// each callback, so a removal mid-dispatch is safe.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

namespace cs::net {

enum class LoopBackend : std::uint8_t {
  kAuto,   ///< epoll where available, else poll
  kEpoll,  ///< require epoll; throws cs::Error where unsupported
  kPoll,   ///< force the poll(2) fallback
};

class EventLoop {
 public:
  /// (readable, writable) — both may be true in one dispatch.
  using IoFn = std::function<void(bool readable, bool writable)>;

  explicit EventLoop(LoopBackend backend = LoopBackend::kAuto);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` with its interest set.  Throws cs::Error on duplicate
  /// registration or kernel refusal.
  void add(int fd, bool want_read, bool want_write, IoFn fn);

  /// Updates the interest set of a registered fd (typically toggling write
  /// interest as send queues fill and drain).
  void modify(int fd, bool want_read, bool want_write);

  /// Unregisters; unknown fds are ignored (close() may race an error path).
  void remove(int fd);

  /// Waits up to `timeout_ms` (-1 = indefinitely, 0 = nonblocking), then
  /// dispatches every ready callback.  Returns the number of descriptors
  /// dispatched (wake() pipe excluded).  Throws cs::Error only on
  /// unrecoverable kernel errors; EINTR retries internally.
  int poll_once(int timeout_ms);

  /// Thread-safe: makes a concurrent or future poll_once() return early.
  void wake();

  bool using_epoll() const { return epoll_fd_ >= 0; }
  std::size_t watched() const { return entries_.size(); }

 private:
  struct Entry {
    bool want_read{false};
    bool want_write{false};
    IoFn fn;
  };

  void apply(int fd, const Entry& entry, bool adding);
  int wait_epoll(int timeout_ms, std::vector<std::pair<int, int>>& ready);
  int wait_poll(int timeout_ms, std::vector<std::pair<int, int>>& ready);
  void drain_wake_pipe();

  std::map<int, Entry> entries_;
  int epoll_fd_{-1};      ///< -1 = poll backend
  int wake_read_fd_{-1};  ///< self-pipe, watched internally
  int wake_write_fd_{-1};
};

}  // namespace cs::net
