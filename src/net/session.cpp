#include "net/session.hpp"

#include <utility>

namespace cs::net {

Session* SessionTable::find(const SocketAddress& peer) {
  const auto it = sessions_.find(peer);
  return it == sessions_.end() ? nullptr : &it->second;
}

Session* SessionTable::find_or_create(const SocketAddress& peer, double now) {
  const auto it = sessions_.find(peer);
  if (it != sessions_.end()) {
    it->second.last_seen = now;
    return &it->second;
  }
  if (sessions_.size() >= config_.max_sessions) return nullptr;
  Session session;
  session.peer = peer;
  session.last_seen = now;
  auto [inserted, _] = sessions_.emplace(peer, std::move(session));
  peak_ = std::max(peak_, sessions_.size());
  return &inserted->second;
}

bool SessionTable::close(const SocketAddress& peer) {
  const auto it = sessions_.find(peer);
  if (it == sessions_.end()) return false;
  total_queued_ -= it->second.queued_bytes;
  sessions_.erase(it);
  return true;
}

std::size_t SessionTable::expire_idle(
    double now, const std::function<void(Session&)>& on_expire) {
  if (config_.idle_timeout.sec <= 0.0) return 0;
  std::size_t expired = 0;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (now - it->second.last_seen > config_.idle_timeout.sec) {
      if (on_expire) on_expire(it->second);
      total_queued_ -= it->second.queued_bytes;
      it = sessions_.erase(it);
      ++expired;
    } else {
      ++it;
    }
  }
  return expired;
}

bool SessionTable::enqueue(Session& session,
                           std::vector<std::uint8_t> datagram) {
  if (session.queued_bytes + datagram.size() > config_.max_queue_bytes) {
    ++session.dropped_backpressure;
    return false;
  }
  session.queued_bytes += datagram.size();
  total_queued_ += datagram.size();
  session.send_queue.push_back(std::move(datagram));
  return true;
}

std::vector<std::uint8_t> SessionTable::dequeue(Session& session) {
  if (session.send_queue.empty()) return {};
  std::vector<std::uint8_t> datagram = std::move(session.send_queue.front());
  session.send_queue.pop_front();
  session.queued_bytes -= datagram.size();
  total_queued_ -= datagram.size();
  return datagram;
}

}  // namespace cs::net
