// LEB128 variable-length integers — the id encoding of chronosync-wire v1.
//
// Unsigned base-128, little-endian groups, continuation bit 0x80: the
// canonical LEB128 every wire format since DWARF uses.  Small ids (the
// common case — processor ids, tags, sample counts) cost one byte instead
// of the fixed four or eight of the legacy ad-hoc header.
//
// Decoding is total: every byte string either yields a value and a
// consumed-byte count, or a zero consumed count meaning "not a varint here"
// (truncated input, or a value that would overflow 64 bits).  Decoders
// never throw and never read past `size` — the property the wire fuzz
// suite pins down (tests/net/varint_test.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cs::net {

/// Longest legal encoding of a 64-bit value: ceil(64 / 7) bytes.
inline constexpr std::size_t kMaxVarintBytes = 10;

/// Appends the LEB128 encoding of `v` to `out`.
inline void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Encoded size of `v` in bytes (for datagram budgeting).
inline std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

struct VarintResult {
  std::uint64_t value{0};
  /// Bytes consumed; 0 means decode failure (truncated or 64-bit overflow).
  std::size_t consumed{0};

  bool ok() const { return consumed != 0; }
};

/// Decodes one varint from the front of [data, data+size).  On failure
/// (`consumed == 0`) no bytes past `size` were read.  The tenth byte of a
/// maximal encoding may contribute only one bit (64 = 9*7 + 1); anything
/// larger is an overflow, as is a continuation bit on the tenth byte.
inline VarintResult get_varint(const std::uint8_t* data, std::size_t size) {
  std::uint64_t value = 0;
  unsigned shift = 0;
  for (std::size_t i = 0; i < size && i < kMaxVarintBytes; ++i) {
    const std::uint8_t byte = data[i];
    const std::uint64_t group = byte & 0x7F;
    if (shift == 63 && group > 1) return {};  // would overflow 64 bits
    value |= group << shift;
    if ((byte & 0x80) == 0) return {value, i + 1};
    shift += 7;
  }
  return {};  // truncated, or continuation past the 10th byte
}

}  // namespace cs::net
