// SyncServer: the multi-client synchronization daemon core.
//
// One process, one UDP socket, one event loop — multiplexing thousands of
// concurrent agent sessions where the runtime's UdpTransport spends a
// thread per endpoint.  This is the "cs_syncd --listen --serve" engine and
// the ≥1000-session scale target BENCH_net.json measures.
//
// Service contract (the probe side of §7 as a network service):
//   * Hello        → verify the 24-bit clock-window assumption against the
//                    full-width stamp, establish the session, HelloAck.
//   * ProbeBatch   → stamp arrival once per datagram, echo every sample
//                    back in one EchoBatch (compact stamps) — the N:M
//                    amortization: one reply datagram per probe datagram
//                    regardless of how many samples it carried.
//   * Bye          → close the session.
//   * anything malformed → typed decode error, counted, dropped; the
//                    daemon never throws on wire input.
//
// All replies go through the session's backpressure-aware send queue
// (session.hpp): synchronous send when the socket takes it, bounded
// queueing behind EPOLLOUT when it does not, counted drops past the
// budget.  Idle sessions are swept on a timer.  Metrics land under
// "runtime.net.*" (docs/NET.md lists the full table).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/metrics.hpp"
#include "common/time.hpp"
#include "net/event_loop.hpp"
#include "net/session.hpp"
#include "net/wire.hpp"

namespace cs::net {

struct SyncServerConfig {
  /// Bind address; port 0 = ephemeral (read back via local_address()).
  SocketAddress listen = loopback(0);
  /// Agent id this server announces in HelloAck frames.
  std::uint32_t agent{0};
  SessionConfig session;
  /// Idle-session sweep cadence.
  Duration sweep_period{1.0};
  /// Hellos whose clock differs from ours by more than this many ticks are
  /// refused (the compact-stamp window would be unsound).  Default: a
  /// quarter window, half the reconstruction margin in reserve.
  std::int64_t max_hello_skew_ticks{kTimestampHalfWindow / 2};
  LoopBackend backend{LoopBackend::kAuto};
  /// Local clock in seconds (monotonic by default; injectable for tests).
  std::function<double()> clock;
  /// Metric sink; must outlive the server.  nullptr = off.
  Metrics* metrics{nullptr};
};

class SyncServer {
 public:
  /// Binds and registers the socket.  Throws cs::Error on bind/socket
  /// failure or malformed configuration.
  explicit SyncServer(SyncServerConfig config);
  ~SyncServer();

  SyncServer(const SyncServer&) = delete;
  SyncServer& operator=(const SyncServer&) = delete;

  /// The bound address with the kernel-resolved port.
  SocketAddress local_address() const { return local_; }

  /// Spawns the loop thread.  stop() joins it; idempotent both ways.
  void start();
  void stop();

  /// Single-threaded alternative to start(): one loop iteration (wait up
  /// to timeout, dispatch, sweep if due).  Tests and embedders drive this
  /// directly instead of spawning the thread.
  void step(int timeout_ms = 50);

  std::size_t active_sessions() const {
    return active_.load(std::memory_order_acquire);
  }
  std::size_t peak_sessions() const {
    return peak_.load(std::memory_order_acquire);
  }
  std::uint64_t frames_received() const {
    return frames_in_.load(std::memory_order_acquire);
  }

 private:
  void on_socket(bool readable, bool writable);
  void handle_datagram(const SocketAddress& peer,
                       std::span<const std::uint8_t> bytes);
  /// Returns true when the frame closed (erased) the session.
  bool handle_frame(Session& session, const Frame& frame, double now);
  /// Encodes and sends (or queues) one reply datagram to the session.
  void reply(Session& session, const Frame& frame);
  void flush_queues();
  void sweep(double now);
  void run_loop();
  double now() const { return clock_(); }

  SyncServerConfig config_;
  std::function<double()> clock_;
  SocketAddress local_;
  int fd_{-1};
  EventLoop loop_;
  SessionTable sessions_;
  std::vector<std::uint8_t> recv_buf_;
  double next_sweep_{0.0};
  bool write_interest_{false};

  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::size_t> active_{0};
  std::atomic<std::size_t> peak_{0};
  std::atomic<std::uint64_t> frames_in_{0};
};

/// Opens a nonblocking UDP socket bound to `addr` (shared by the server,
/// the multihost daemon and the transports).  Returns the fd and rewrites
/// `addr.port` with the kernel-resolved port.  Throws cs::Error with the
/// rendered address on failure.
int open_udp_socket(SocketAddress& addr);

}  // namespace cs::net
